// Audit recording overhead: SmallBank at the Figure 10f proxy configuration,
// run with and without the client-side history recorder attached. The
// recorder sits on every Begin/Read/Write/Commit, so this measures the
// full per-operation cost of capture (clock reads + thread-confined
// appends + value copies). Acceptance bar for the subsystem: <= 5%
// throughput loss.
#include <memory>

#include "bench/bench_apps_common.h"
#include "src/audit/recorder.h"

namespace obladi {
namespace {

struct RunOutcome {
  double tps = 0;
  uint64_t committed = 0;
  uint64_t trace_bytes = 0;
};

RunOutcome RunOnce(bool record, double scale, double seconds, bool full) {
  auto workload = MakeAppWorkload(AppKind::kSmallBank, full);
  auto records = workload->InitialRecords();
  uint64_t capacity = records.size() + records.size() / 2 + 4096;
  ObladiConfig config = AppObladiConfig(AppKind::kSmallBank, capacity);

  LatencyProfile local = LatencyProfile::LocalServer(scale);
  auto base = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                  config.oram.slots_per_bucket(), 2);
  auto latency = std::make_shared<LatencyBucketStore>(base, local);
  latency->SetBypass(true);
  ObladiStore proxy(config, latency, nullptr);
  Status st = proxy.Load(records);
  latency->SetBypass(false);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  proxy.Start();

  DriverOptions opts;
  opts.num_threads = 96;
  opts.duration_ms = static_cast<uint64_t>(seconds * 1000);
  opts.warmup_ms = 200;
  std::unique_ptr<HistoryRecorder> recorder;
  if (record) {
    recorder = std::make_unique<HistoryRecorder>(opts.num_threads);
    recorder->RecordInitialDb(records);
    opts.recorder = recorder.get();
  }
  DriverResult result = RunWorkload(proxy, *workload, opts);
  proxy.Stop();

  RunOutcome out;
  out.tps = result.throughput_tps;
  out.committed = result.committed;
  out.trace_bytes = result.audit_trace_bytes;
  return out;
}

void Run() {
  double scale = BenchScale() * 10;  // app benches run at absolute latencies
  double seconds = BenchSeconds();
  bool full = BenchFull();
  const int kTrials = 3;

  Table table("Audit recording overhead — SmallBank, Fig 10f proxy config (96 clients)");
  table.Columns({"trial", "plain_tps", "recorded_tps", "overhead%", "trace_KB"});

  double plain_sum = 0;
  double recorded_sum = 0;
  uint64_t trace_bytes = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    // Interleave the arms so drift (allocator warmup, frequency scaling)
    // lands on both sides evenly.
    RunOutcome plain = RunOnce(/*record=*/false, scale, seconds, full);
    RunOutcome recorded = RunOnce(/*record=*/true, scale, seconds, full);
    plain_sum += plain.tps;
    recorded_sum += recorded.tps;
    trace_bytes = recorded.trace_bytes;
    double overhead = plain.tps > 0 ? 100.0 * (plain.tps - recorded.tps) / plain.tps : 0.0;
    table.Row({FmtInt(trial + 1), Fmt(plain.tps), Fmt(recorded.tps), Fmt(overhead, 2),
               FmtInt(trace_bytes / 1024)});
  }
  double mean_overhead =
      plain_sum > 0 ? 100.0 * (plain_sum - recorded_sum) / plain_sum : 0.0;
  table.Row({"mean", Fmt(plain_sum / kTrials), Fmt(recorded_sum / kTrials),
             Fmt(mean_overhead, 2), FmtInt(trace_bytes / 1024)});
  table.Print();
  WriteBenchJson("BENCH_audit_overhead.json",
                 Json::Object()
                     .Set("bench", Json::Str("audit_overhead"))
                     .Set("mean_overhead_pct", Json::Num(mean_overhead, 2))
                     .Set("trace_kb", Json::Int(trace_bytes / 1024))
                     .Set("table", TableToJson(table)));
  std::printf("acceptance bar: recording overhead <= 5%% of plain throughput "
              "(mean over %d interleaved trials: %.2f%%)\n",
              kTrials, mean_overhead);
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
