// Remote storage over a real loopback socket vs. the latency decorators'
// simulation of it.
//
// Part 1 — batch-size sweep: reads the same slot workload through
// RemoteBucketStore with growing ReadSlotsBatch sizes and lines the measured
// round trips / payload bytes up against what a LatencyBucketStore charges
// for the identical call sequence. Batched RPCs must cut round trips by
// exactly the batch factor (one round trip per batch), which is the property
// the decorators assume when they charge one latency per batched request.
//
// Part 2 — connection-pool sweep: fixed thread count hammering unary reads
// through blocking NetClient pools of growing size. Pool slots are the real
// analogue of the decorators' "N outstanding requests overlap when issued
// from N threads"; throughput should scale with the pool until the
// loopback/CPU saturates.
//
// Part 3 — async multiplexing sweep: ONE event-loop thread and ONE
// connection, with outstanding ∈ {1, 16, 64, 256} requests in flight
// against the same 1 ms storage node. 64 outstanding should match or beat
// the 16-thread blocking pool — overlap without a thread per RPC. Also
// measures an epoch's batched-GC round trips (must equal the shard count).
// Emits machine-readable BENCH_net_async.json for the perf trajectory.
//
// Honors OBLADI_BENCH_FULL=1 for a larger sweep.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "src/net/async_client.h"
#include "src/net/remote_store.h"
#include "src/net/storage_server.h"
#include "tests/gc_probe.h"

namespace obladi {
namespace {

constexpr size_t kSlotsPerBucket = 8;
constexpr size_t kSlotBytes = 256;
constexpr size_t kNumBuckets = 1024;

std::shared_ptr<MemoryBucketStore> MakeLoadedStore() {
  auto store = std::make_shared<MemoryBucketStore>(kNumBuckets, kSlotsPerBucket);
  std::vector<Bytes> image(kSlotsPerBucket, Bytes(kSlotBytes, 0xc1));
  for (BucketIndex b = 0; b < kNumBuckets; ++b) {
    (void)store->WriteBucket(b, 0, image);
  }
  return store;
}

std::vector<SlotRef> MakeWorkload(size_t n, Rng& rng) {
  std::vector<SlotRef> refs;
  refs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    refs.push_back(SlotRef{static_cast<BucketIndex>(rng.NextU64() % kNumBuckets), 0,
                           static_cast<SlotIndex>(rng.NextU64() % kSlotsPerBucket)});
  }
  return refs;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

void RunBatchSweep(uint16_t port, bool full) {
  size_t total_reads = full ? 65536 : 16384;
  std::vector<size_t> batch_sizes = {1, 4, 16, 64, 256};

  Rng rng(0xbe7c4);
  std::vector<SlotRef> workload = MakeWorkload(total_reads, rng);

  // The simulated wire: same calls against a zero-latency decorator, whose
  // NetworkStats are the decorators' *prediction* of the traffic.
  auto simulated =
      std::make_shared<LatencyBucketStore>(MakeLoadedStore(), LatencyProfile::Dummy());

  Table table("Remote storage — batch size sweep (" + FmtInt(total_reads) +
              " slot reads over loopback, pool=4)");
  table.Columns({"batch", "round_trips", "rt_predicted", "MB_read", "MB_predicted",
                 "MB_wire_down", "MB_wire_pred", "wall_ms", "reads/s", "rt_cut_vs_unary"});

  uint64_t unary_round_trips = 0;
  for (size_t batch : batch_sizes) {
    RemoteStoreOptions opts;
    opts.port = port;
    opts.pool_size = 4;
    auto remote = RemoteBucketStore::Connect(opts);
    if (!remote.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", remote.status().ToString().c_str());
      return;
    }
    (*remote)->stats().Reset();
    simulated->mutable_stats().Reset();

    auto start = std::chrono::steady_clock::now();
    for (size_t off = 0; off < workload.size(); off += batch) {
      size_t end = std::min(off + batch, workload.size());
      std::vector<SlotRef> refs(workload.begin() + static_cast<ptrdiff_t>(off),
                                workload.begin() + static_cast<ptrdiff_t>(end));
      auto real = (*remote)->ReadSlotsBatch(refs);
      auto sim = simulated->ReadSlotsBatch(refs);
      for (size_t i = 0; i < real.size(); ++i) {
        if (!real[i].ok() || !sim[i].ok() || real[i]->size() != sim[i]->size()) {
          std::fprintf(stderr, "real/simulated results diverge at batch %zu\n", batch);
          return;
        }
      }
    }
    double wall_ms = MillisSince(start);

    const NetworkStats& real_stats = (*remote)->stats();
    const NetworkStats& sim_stats = simulated->stats();
    if (batch == 1) {
      unary_round_trips = real_stats.round_trips.load();
    }
    double cut = unary_round_trips > 0 ? static_cast<double>(unary_round_trips) /
                                             static_cast<double>(real_stats.round_trips.load())
                                       : 0.0;
    table.Row({FmtInt(batch), FmtInt(real_stats.round_trips.load()),
               FmtInt(sim_stats.round_trips.load()),
               Fmt(static_cast<double>(real_stats.bytes_read.load()) / 1e6, 2),
               Fmt(static_cast<double>(sim_stats.bytes_read.load()) / 1e6, 2),
               Fmt(static_cast<double>(real_stats.bytes_received.load()) / 1e6, 2),
               Fmt(static_cast<double>(sim_stats.bytes_received.load()) / 1e6, 2),
               Fmt(wall_ms),
               FmtInt(static_cast<uint64_t>(1000.0 * static_cast<double>(total_reads) /
                                            wall_ms)),
               Fmt(cut, 1) + "x"});
  }
  table.Print();
  std::printf("(rt_cut_vs_unary should track the batch factor: one RPC round trip per "
              "batched request. MB_wire_down is the measured client-side wire download — "
              "frames + length prefixes — next to the latency decorator's model of it.)\n");
}

// The pool sweep runs against a server whose backend charges a 1 ms
// per-request service time (a latency decorator *behind* the socket): with
// storage that slow, overlapping outstanding requests — the connection
// pool's job — is the only lever, so throughput tracks pool size until it
// matches the thread count. Against a zero-latency memory backend the sweep
// would be flat: loopback syscall cost dominates and one connection already
// saturates it. (1 ms also keeps the decorator in its true-sleep regime
// rather than its sub-500us spin-wait, which would serialize on small
// hosts.) Returns reads/s per pool size for the JSON trajectory.
std::map<size_t, double> RunPoolSweep(uint16_t port, bool full) {
  size_t reads_per_thread = full ? 512 : 128;
  constexpr size_t kThreads = 16;
  std::vector<size_t> pool_sizes = {1, 2, 4, 8, 16};
  std::map<size_t, double> reads_per_sec;

  Table table("Remote storage — blocking pool sweep (" + FmtInt(kThreads) +
              " threads x " + FmtInt(reads_per_thread) +
              " unary reads, 1ms backend service time)");
  table.Columns({"pool", "wall_ms", "reads/s", "speedup_vs_pool1"});

  double pool1_ms = 0;
  for (size_t pool : pool_sizes) {
    RemoteStoreOptions opts;
    opts.port = port;
    opts.pool_size = pool;
    auto client = NetClient::Connect(opts);
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", client.status().ToString().c_str());
      return reads_per_sec;
    }
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(0x9000 + t);
        for (size_t i = 0; i < reads_per_thread; ++i) {
          NetRequest req;
          req.type = MsgType::kReadSlots;
          req.reads = {{static_cast<BucketIndex>(rng.NextU64() % kNumBuckets), 0,
                        static_cast<SlotIndex>(rng.NextU64() % kSlotsPerBucket)}};
          auto result = (*client)->Call(std::move(req));
          if (!result.ok() || !result->ToStatus().ok()) {
            std::fprintf(stderr, "read failed\n");
            return;
          }
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    double wall_ms = MillisSince(start);
    if (pool == 1) {
      pool1_ms = wall_ms;
    }
    uint64_t total = kThreads * reads_per_thread;
    reads_per_sec[pool] = 1000.0 * static_cast<double>(total) / wall_ms;
    table.Row({FmtInt(pool), Fmt(wall_ms), FmtInt(static_cast<uint64_t>(reads_per_sec[pool])),
               Fmt(pool1_ms / wall_ms, 2) + "x"});
  }
  table.Print();
  return reads_per_sec;
}

// One event-loop thread, one socket, `outstanding` requests kept in flight
// via a completion queue: every drained completion immediately funds the
// next submission. No client thread ever blocks on a response.
std::map<size_t, double> RunAsyncSweep(uint16_t port, bool full) {
  double seconds = BenchSeconds() * (full ? 1.0 : 0.5);
  std::vector<size_t> outstanding_sweep = {1, 16, 64, 256};
  std::map<size_t, double> reads_per_sec;

  Table table("Remote storage — async multiplexing sweep (1 event-loop thread, "
              "1 connection, 1ms backend service time)");
  table.Columns({"outstanding", "completions", "wall_ms", "reads/s", "speedup_vs_1"});

  double serial_rps = 0;
  for (size_t outstanding : outstanding_sweep) {
    AsyncClientOptions opts;
    opts.port = port;
    opts.num_connections = 1;
    auto client = AsyncNetClient::Connect(opts);
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", client.status().ToString().c_str());
      return reads_per_sec;
    }
    Rng rng(0xa54c);
    CompletionQueue cq;
    auto submit_one = [&] {
      NetRequest req;
      req.type = MsgType::kReadSlots;
      req.reads = {{static_cast<BucketIndex>(rng.NextU64() % kNumBuckets), 0,
                    static_cast<SlotIndex>(rng.NextU64() % kSlotsPerBucket)}};
      (*client)->Submit(std::move(req), &cq, 0);
    };

    auto start = std::chrono::steady_clock::now();
    auto deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(seconds));
    for (size_t i = 0; i < outstanding; ++i) {
      submit_one();
    }
    uint64_t completions = 0;
    size_t in_flight = outstanding;
    // The queue outlives every in-flight request only if we drain fully —
    // including on the error path, or a late completion would Push into a
    // destroyed queue.
    auto drain = [&] {
      while (in_flight > 0) {
        (void)cq.Next();
        --in_flight;
      }
    };
    bool failed = false;
    while (std::chrono::steady_clock::now() < deadline) {
      auto c = cq.Next();
      --in_flight;
      if (!c.result.ok() || !c.result->ToStatus().ok()) {
        std::fprintf(stderr, "async read failed\n");
        failed = true;
        break;
      }
      ++completions;
      submit_one();
      ++in_flight;
    }
    drain();
    if (failed) {
      return reads_per_sec;
    }
    double wall_ms = MillisSince(start);
    reads_per_sec[outstanding] = 1000.0 * static_cast<double>(completions) / wall_ms;
    if (outstanding == 1) {
      serial_rps = reads_per_sec[outstanding];
    }
    table.Row({FmtInt(outstanding), FmtInt(completions), Fmt(wall_ms),
               FmtInt(static_cast<uint64_t>(reads_per_sec[outstanding])),
               Fmt(serial_rps > 0 ? reads_per_sec[outstanding] / serial_rps : 0.0, 1) + "x"});
  }
  table.Print();
  std::printf("(one thread drives all outstanding requests; compare reads/s against the "
              "16-thread pool above.)\n");
  return reads_per_sec;
}

void EmitJson(const std::map<size_t, double>& async_rps, const std::map<size_t, double>& pool_rps,
              const GcProbeResult& gc) {
  double serial = async_rps.count(1) ? async_rps.at(1) : 0;
  double async64 = async_rps.count(64) ? async_rps.at(64) : 0;
  double pool16 = pool_rps.count(16) ? pool_rps.at(16) : 0;
  Json async_sweep = Json::Array();
  for (const auto& [outstanding, rps] : async_rps) {
    async_sweep.Push(Json::Object()
                         .Set("outstanding", Json::Int(outstanding))
                         .Set("reads_per_sec", Json::Num(rps, 1)));
  }
  Json pool_sweep = Json::Array();
  for (const auto& [pool, rps] : pool_rps) {
    pool_sweep.Push(
        Json::Object().Set("pool", Json::Int(pool)).Set("reads_per_sec", Json::Num(rps, 1)));
  }
  Json root = Json::Object()
                  .Set("bench", Json::Str("net_async"))
                  .Set("service_time_us", Json::Int(1000))
                  .Set("async_sweep", std::move(async_sweep))
                  .Set("pool_sweep", std::move(pool_sweep))
                  .Set("serial_reads_per_sec", Json::Num(serial, 1))
                  .Set("pool16_reads_per_sec", Json::Num(pool16, 1))
                  .Set("async64_reads_per_sec", Json::Num(async64, 1))
                  .Set("async64_vs_serial", Json::Num(serial > 0 ? async64 / serial : 0, 2))
                  .Set("async64_vs_pool16", Json::Num(pool16 > 0 ? async64 / pool16 : 0, 2))
                  .Set("gc_shards", Json::Int(gc.shards))
                  .Set("gc_round_trips", Json::Int(gc.round_trips))
                  .Set("gc_buckets", Json::Int(gc.buckets));
  if (WriteBenchJson("BENCH_net_async.json", root)) {
    std::printf("async64 %.0f reads/s = %.1fx serial, %.2fx pool16\n", async64,
                serial > 0 ? async64 / serial : 0, pool16 > 0 ? async64 / pool16 : 0);
  }
}

void Run() {
  TuneAllocatorForBenchmarks();
  bool full = BenchFull();

  auto backend = MakeLoadedStore();
  StorageServerOptions server_opts;
  server_opts.num_workers = 32;
  StorageServer server(backend, std::make_shared<MemoryLogStore>(), server_opts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("loopback StorageServer on 127.0.0.1:%u (%zu buckets x %zu slots x %zu B)\n",
              server.port(), kNumBuckets, kSlotsPerBucket, kSlotBytes);

  RunBatchSweep(server.port(), full);

  // Separate storage node for the overlap sweeps: same data, 1 ms service
  // time, provisioned wide enough that 64+ multiplexed requests from one
  // connection can all be in the backend simultaneously.
  LatencyProfile slow_profile{"slow", 1000, 1000, 0};
  auto slow_backend = std::make_shared<LatencyBucketStore>(backend, slow_profile);
  StorageServerOptions slow_opts;
  slow_opts.num_workers = 96;
  StorageServer slow_server(slow_backend, nullptr, slow_opts);
  st = slow_server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "slow server start failed: %s\n", st.ToString().c_str());
    return;
  }
  auto pool_rps = RunPoolSweep(slow_server.port(), full);
  auto async_rps = RunAsyncSweep(slow_server.port(), full);
  // Epoch GC over the wire (shared probe with net_test): round trips must
  // equal the shard count, not the bucket count.
  GcProbeResult gc = RunGcRoundTripProbe(4);
  std::printf("epoch GC over the wire: %llu round trips for %u shards (%u buckets)%s\n",
              static_cast<unsigned long long>(gc.round_trips), gc.shards, gc.buckets,
              gc.ok ? "" : "  [probe FAILED]");
  EmitJson(async_rps, pool_rps, gc);

  std::printf("\nbatch-sweep server: %llu requests, %.2f MB in, %.2f MB out\n",
              static_cast<unsigned long long>(server.stats().requests_served.load()),
              static_cast<double>(server.stats().bytes_received.load()) / 1e6,
              static_cast<double>(server.stats().bytes_sent.load()) / 1e6);
  std::printf("1ms-node server: %llu requests, %llu out-of-order replies\n",
              static_cast<unsigned long long>(slow_server.stats().requests_served.load()),
              static_cast<unsigned long long>(
                  slow_server.stats().out_of_order_replies.load()));
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::Run();
  return 0;
}
