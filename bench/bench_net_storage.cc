// Remote storage over a real loopback socket vs. the latency decorators'
// simulation of it.
//
// Part 1 — batch-size sweep: reads the same slot workload through
// RemoteBucketStore with growing ReadSlotsBatch sizes and lines the measured
// round trips / payload bytes up against what a LatencyBucketStore charges
// for the identical call sequence. Batched RPCs must cut round trips by
// exactly the batch factor (one round trip per batch), which is the property
// the decorators assume when they charge one latency per batched request.
//
// Part 2 — connection-pool sweep: fixed thread count hammering unary reads
// through pools of growing size. Pool slots are the real analogue of the
// decorators' "N outstanding requests overlap when issued from N threads";
// throughput should scale with the pool until the loopback/CPU saturates.
//
// Honors OBLADI_BENCH_FULL=1 for a larger sweep.
#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "src/net/remote_store.h"
#include "src/net/storage_server.h"

namespace obladi {
namespace {

constexpr size_t kSlotsPerBucket = 8;
constexpr size_t kSlotBytes = 256;
constexpr size_t kNumBuckets = 1024;

std::shared_ptr<MemoryBucketStore> MakeLoadedStore() {
  auto store = std::make_shared<MemoryBucketStore>(kNumBuckets, kSlotsPerBucket);
  std::vector<Bytes> image(kSlotsPerBucket, Bytes(kSlotBytes, 0xc1));
  for (BucketIndex b = 0; b < kNumBuckets; ++b) {
    (void)store->WriteBucket(b, 0, image);
  }
  return store;
}

std::vector<SlotRef> MakeWorkload(size_t n, Rng& rng) {
  std::vector<SlotRef> refs;
  refs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    refs.push_back(SlotRef{static_cast<BucketIndex>(rng.NextU64() % kNumBuckets), 0,
                           static_cast<SlotIndex>(rng.NextU64() % kSlotsPerBucket)});
  }
  return refs;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

void RunBatchSweep(uint16_t port, bool full) {
  size_t total_reads = full ? 65536 : 16384;
  std::vector<size_t> batch_sizes = {1, 4, 16, 64, 256};

  Rng rng(0xbe7c4);
  std::vector<SlotRef> workload = MakeWorkload(total_reads, rng);

  // The simulated wire: same calls against a zero-latency decorator, whose
  // NetworkStats are the decorators' *prediction* of the traffic.
  auto simulated =
      std::make_shared<LatencyBucketStore>(MakeLoadedStore(), LatencyProfile::Dummy());

  Table table("Remote storage — batch size sweep (" + FmtInt(total_reads) +
              " slot reads over loopback, pool=4)");
  table.Columns({"batch", "round_trips", "rt_predicted", "MB_read", "MB_predicted",
                 "wall_ms", "reads/s", "rt_cut_vs_unary"});

  uint64_t unary_round_trips = 0;
  for (size_t batch : batch_sizes) {
    RemoteStoreOptions opts;
    opts.port = port;
    opts.pool_size = 4;
    auto remote = RemoteBucketStore::Connect(opts);
    if (!remote.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", remote.status().ToString().c_str());
      return;
    }
    (*remote)->stats().Reset();
    simulated->mutable_stats().Reset();

    auto start = std::chrono::steady_clock::now();
    for (size_t off = 0; off < workload.size(); off += batch) {
      size_t end = std::min(off + batch, workload.size());
      std::vector<SlotRef> refs(workload.begin() + static_cast<ptrdiff_t>(off),
                                workload.begin() + static_cast<ptrdiff_t>(end));
      auto real = (*remote)->ReadSlotsBatch(refs);
      auto sim = simulated->ReadSlotsBatch(refs);
      for (size_t i = 0; i < real.size(); ++i) {
        if (!real[i].ok() || !sim[i].ok() || real[i]->size() != sim[i]->size()) {
          std::fprintf(stderr, "real/simulated results diverge at batch %zu\n", batch);
          return;
        }
      }
    }
    double wall_ms = MillisSince(start);

    const NetworkStats& real_stats = (*remote)->stats();
    const NetworkStats& sim_stats = simulated->stats();
    if (batch == 1) {
      unary_round_trips = real_stats.round_trips.load();
    }
    double cut = unary_round_trips > 0 ? static_cast<double>(unary_round_trips) /
                                             static_cast<double>(real_stats.round_trips.load())
                                       : 0.0;
    table.Row({FmtInt(batch), FmtInt(real_stats.round_trips.load()),
               FmtInt(sim_stats.round_trips.load()),
               Fmt(static_cast<double>(real_stats.bytes_read.load()) / 1e6, 2),
               Fmt(static_cast<double>(sim_stats.bytes_read.load()) / 1e6, 2), Fmt(wall_ms),
               FmtInt(static_cast<uint64_t>(1000.0 * static_cast<double>(total_reads) /
                                            wall_ms)),
               Fmt(cut, 1) + "x"});
  }
  table.Print();
  std::printf("(rt_cut_vs_unary should track the batch factor: one RPC round trip per "
              "batched request.)\n");
}

// The pool sweep runs against a server whose backend charges a 1 ms
// per-request service time (a latency decorator *behind* the socket): with
// storage that slow, overlapping outstanding requests — the connection
// pool's job — is the only lever, so throughput tracks pool size until it
// matches the thread count. Against a zero-latency memory backend the sweep
// would be flat: loopback syscall cost dominates and one connection already
// saturates it. (1 ms also keeps the decorator in its true-sleep regime
// rather than its sub-500us spin-wait, which would serialize on small
// hosts.)
void RunPoolSweep(uint16_t port, bool full) {
  size_t reads_per_thread = full ? 512 : 128;
  constexpr size_t kThreads = 16;
  std::vector<size_t> pool_sizes = {1, 2, 4, 8, 16};

  Table table("Remote storage — connection pool sweep (" + FmtInt(kThreads) +
              " threads x " + FmtInt(reads_per_thread) +
              " unary reads, 1ms backend service time)");
  table.Columns({"pool", "wall_ms", "reads/s", "speedup_vs_pool1"});

  double pool1_ms = 0;
  for (size_t pool : pool_sizes) {
    RemoteStoreOptions opts;
    opts.port = port;
    opts.pool_size = pool;
    auto remote = RemoteBucketStore::Connect(opts);
    if (!remote.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", remote.status().ToString().c_str());
      return;
    }
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(0x9000 + t);
        for (size_t i = 0; i < reads_per_thread; ++i) {
          auto result = (*remote)->ReadSlot(
              static_cast<BucketIndex>(rng.NextU64() % kNumBuckets), 0,
              static_cast<SlotIndex>(rng.NextU64() % kSlotsPerBucket));
          if (!result.ok()) {
            std::fprintf(stderr, "read failed: %s\n", result.status().ToString().c_str());
            return;
          }
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    double wall_ms = MillisSince(start);
    if (pool == 1) {
      pool1_ms = wall_ms;
    }
    uint64_t total = kThreads * reads_per_thread;
    table.Row({FmtInt(pool), Fmt(wall_ms),
               FmtInt(static_cast<uint64_t>(1000.0 * static_cast<double>(total) / wall_ms)),
               Fmt(pool1_ms / wall_ms, 2) + "x"});
  }
  table.Print();
}

void Run() {
  TuneAllocatorForBenchmarks();
  bool full = BenchFull();

  auto backend = MakeLoadedStore();
  StorageServerOptions server_opts;
  server_opts.num_workers = 32;
  StorageServer server(backend, std::make_shared<MemoryLogStore>(), server_opts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("loopback StorageServer on 127.0.0.1:%u (%zu buckets x %zu slots x %zu B)\n",
              server.port(), kNumBuckets, kSlotsPerBucket, kSlotBytes);

  RunBatchSweep(server.port(), full);

  // Separate storage node for the pool sweep: same data, 1 ms service time.
  LatencyProfile slow_profile{"slow", 1000, 1000, 0};
  auto slow_backend = std::make_shared<LatencyBucketStore>(backend, slow_profile);
  StorageServer slow_server(slow_backend, nullptr, server_opts);
  st = slow_server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "slow server start failed: %s\n", st.ToString().c_str());
    return;
  }
  RunPoolSweep(slow_server.port(), full);

  std::printf("\nserver totals: %llu requests, %.2f MB in, %.2f MB out\n",
              static_cast<unsigned long long>(server.stats().requests_served.load()),
              static_cast<double>(server.stats().bytes_received.load()) / 1e6,
              static_cast<double>(server.stats().bytes_sent.load()) / 1e6);
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::Run();
  return 0;
}
