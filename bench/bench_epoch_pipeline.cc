// Epoch pipelining: serial vs. overlapped epoch changes over the remote
// async store, against a storage node with 1 ms service time.
//
// The serial proxy (pipeline_epochs=false) stops the world at every epoch
// boundary: flush all shards' deferred write-back, append + sync the delta
// checkpoint, truncate stale versions — all network-bound — before admitting
// the next epoch's work. The pipelined proxy closes the epoch, hands that
// whole tail to the background retirement stage, and immediately starts
// dispatching epoch N+1's batches; commit decisions release asynchronously
// once N's checkpoint is durable (fate sharing preserved). Epoch cadence is
// then R*Δ instead of R*Δ + retirement time, so throughput improves by
// exactly the fraction of the epoch the serial design spends blocked on
// storage latency.
//
// Topology per cell: loopback StorageServer whose bucket and log backends
// sit behind 1 ms latency decorators (the storage node's service time), the
// proxy connecting through RemoteBucketStore/RemoteLogStore (async
// multiplexed client). K ∈ {1, 4} shards.
//
// Depth sweep: the pipelined cells run at pipeline_depth D ∈ {1, 2, 3}.
// Depth 1 admits one retiring epoch — the close stalls whenever the
// retirement tail (write-back wave + checkpoint append/sync + truncate)
// outlasts one epoch of paced batches. Depth 2 keeps a second epoch's tail
// in flight behind the first, so the cadence stays R*Δ until the tail
// exceeds TWO epochs; depth 3 shows the diminishing return past that. Δ is
// sized so the tail genuinely overruns one epoch at this node latency —
// otherwise every depth measures the same thing.
//
// Emits machine-readable BENCH_epoch_pipeline.json for the perf trajectory
// (CI smoke-checks it). Honors OBLADI_BENCH_SECONDS / OBLADI_BENCH_FULL.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/net/remote_store.h"
#include "src/net/storage_server.h"
#include "src/proxy/obladi_store.h"

namespace obladi {
namespace {

constexpr uint64_t kServiceTimeUs = 1000;

struct CellResult {
  uint32_t shards = 0;
  bool pipelined = false;
  size_t depth = 1;
  double tps = 0;
  double epochs_per_sec = 0;
  double overlapped_frac = 0;
  double stall_ms = 0;
  uint64_t max_inflight_stash = 0;
  uint64_t sched_overlapped = 0;
  uint64_t stash_stalls = 0;
};

ObladiConfig MakeConfig(uint32_t shards, bool pipelined, size_t depth) {
  ObladiConfig config = ObladiConfig::ForCapacity(512, /*z=*/4, /*payload=*/128);
  config.num_shards = shards;
  config.read_batches_per_epoch = 2;
  // Sized so the epoch is latency-bound, not compute-bound: a batch costs
  // ~2 log round trips (§8 plan logging) plus one read wave, and the
  // retirement tail is a short sequence of round trips (write-back wave,
  // checkpoint append+sync, truncate) — exactly the storage latency the
  // pipeline hides behind the next epoch's paced execution.
  config.read_batch_size = 8;
  config.write_batch_size = 8;
  // Short enough that the retirement tail outlasts one epoch (R*Δ = 6 ms
  // vs a ~4-8 ms tail at 1 ms/round-trip): depth 1's ordering gate then
  // stalls the close, which is exactly the stall depth 2 removes.
  config.batch_interval_us = 3000;
  config.timed_mode = true;
  config.pipeline_depth = depth;
  // The serial baseline is the pre-pipelining proxy end to end: stop-the-
  // world retirement, the write batch's schedule movement (and its eviction
  // read wave) at the close, and the old log layout (one plan record per
  // shard sub-batch, K serialized appends per batch). Pipelined runs the
  // full two-stage state machine: combined per-batch plan records, write
  // schedule riding the paced batches, background retirement.
  config.pipeline_epochs = pipelined;
  config.combine_batch_plan_logs = pipelined;
  config.recovery.enabled = true;  // the checkpoint append is part of the tail
  config.oram_options.io_threads = 8;
  return config;
}

CellResult RunCell(uint32_t shards, bool pipelined, size_t depth, double seconds,
                   size_t num_clients) {
  CellResult cell;
  cell.shards = shards;
  cell.pipelined = pipelined;
  cell.depth = depth;

  ObladiConfig config = MakeConfig(shards, pipelined, depth);
  LatencyProfile node{"node1ms", kServiceTimeUs, kServiceTimeUs, 0};
  auto buckets = std::make_shared<MemoryBucketStore>(
      config.StoreBuckets(), config.MakeLayout().shard_config.slots_per_bucket());
  auto log = std::make_shared<MemoryLogStore>();
  StorageServerOptions server_opts;
  server_opts.num_workers = 24;  // wide enough for every sub-batch in flight
  StorageServer server(std::make_shared<LatencyBucketStore>(buckets, node),
                       std::make_shared<LatencyLogStore>(log, node), server_opts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return cell;
  }

  RemoteStoreOptions opts;
  opts.port = server.port();
  auto remote_buckets = RemoteBucketStore::Connect(opts);
  auto remote_log = RemoteLogStore::Connect(opts);
  if (!remote_buckets.ok() || !remote_log.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return cell;
  }
  ObladiStore proxy(config, std::move(*remote_buckets), std::move(*remote_log));

  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < 448; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  st = proxy.Load(records);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return cell;
  }

  proxy.Start();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      // Delayed visibility's intended client model: the commit decision for
      // epoch N arrives asynchronously (after N's retirement), so a client
      // pipelines its own transactions instead of blocking on each decision
      // — otherwise decision latency, not proxy capacity, bounds txn/s.
      Rng rng(0x9e11 + c);
      std::vector<std::shared_future<Status>> pending;
      auto reap = [&](bool block) {
        while (!pending.empty()) {
          // Bounded even when blocking: if the proxy dies (pacer fatal
          // error), undecided futures must not hang the harness.
          auto wait = block ? std::chrono::seconds(5) : std::chrono::seconds(0);
          if (pending.front().wait_for(wait) != std::future_status::ready) {
            if (block) {
              pending.clear();  // abandoned: counted as not committed
            }
            return;
          }
          if (pending.front().get().ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
          }
          pending.erase(pending.begin());
        }
      };
      while (!stop.load(std::memory_order_relaxed)) {
        reap(/*block=*/pending.size() >= 2);
        std::string key = "key" + std::to_string(rng.Uniform(448));
        Timestamp t = proxy.Begin();
        auto v = proxy.Read(t, key);
        if (!v.ok()) {
          proxy.Abort(t);
          std::this_thread::sleep_for(std::chrono::microseconds(500));
          continue;
        }
        if (!proxy.Write(t, key, *v + "!").ok()) {
          proxy.Abort(t);
          continue;
        }
        auto fut = proxy.CommitAsync(t);
        if (fut.ok()) {
          pending.push_back(std::move(*fut));
        }
      }
      reap(/*block=*/true);
    });
  }

  // Warmup, then measure over the steady state.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ObladiStats warm = proxy.stats();
  uint64_t committed_warm = committed.load();
  uint64_t start_us = NowMicros();
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<uint64_t>(seconds * 1e6)));
  uint64_t wall_us = NowMicros() - start_us;
  uint64_t committed_run = committed.load() - committed_warm;
  ObladiStats stats = proxy.stats();

  stop.store(true);
  for (auto& c : clients) {
    c.join();
  }
  proxy.Stop();
  (void)proxy.DrainRetirement();

  double wall_s = static_cast<double>(wall_us) / 1e6;
  uint64_t epochs = stats.epochs - warm.epochs;
  cell.tps = static_cast<double>(committed_run) / wall_s;
  cell.epochs_per_sec = static_cast<double>(epochs) / wall_s;
  cell.overlapped_frac =
      epochs > 0 ? static_cast<double>(stats.epochs_overlapped - warm.epochs_overlapped) /
                       static_cast<double>(epochs)
                 : 0.0;
  cell.stall_ms =
      static_cast<double>(stats.retire_stall_us - warm.retire_stall_us) / 1000.0;
  cell.max_inflight_stash = stats.max_inflight_stash_blocks;
  cell.sched_overlapped = stats.sched_overlapped_accesses - warm.sched_overlapped_accesses;
  cell.stash_stalls = stats.stash_budget_stalls - warm.stash_budget_stalls;
  return cell;
}

void EmitJson(const std::vector<CellResult>& cells, double k1_speedup, double k4_speedup,
              double d2_vs_d1_k1, double d2_vs_d1_k4) {
  Json cell_array = Json::Array();
  for (const CellResult& c : cells) {
    cell_array.Push(Json::Object()
                        .Set("shards", Json::Int(c.shards))
                        .Set("pipelined", Json::Bool(c.pipelined))
                        .Set("pipeline_depth", Json::Int(c.depth))
                        .Set("txn_per_sec", Json::Num(c.tps, 1))
                        .Set("epochs_per_sec", Json::Num(c.epochs_per_sec, 1))
                        .Set("overlapped_frac", Json::Num(c.overlapped_frac, 2))
                        .Set("retire_stall_ms", Json::Num(c.stall_ms, 1))
                        .Set("max_inflight_stash_blocks", Json::Int(c.max_inflight_stash))
                        .Set("sched_overlapped_accesses", Json::Int(c.sched_overlapped))
                        .Set("stash_budget_stalls", Json::Int(c.stash_stalls)));
  }
  Json root = Json::Object()
                  .Set("bench", Json::Str("epoch_pipeline"))
                  .Set("service_time_us", Json::Int(kServiceTimeUs))
                  .Set("cells", std::move(cell_array))
                  .Set("k1_speedup", Json::Num(k1_speedup, 2))
                  .Set("k4_speedup", Json::Num(k4_speedup, 2))
                  .Set("depth2_vs_depth1_k1", Json::Num(d2_vs_d1_k1, 2))
                  .Set("depth2_vs_depth1_k4", Json::Num(d2_vs_d1_k4, 2));
  if (WriteBenchJson("BENCH_epoch_pipeline.json", root)) {
    std::printf("pipelined(d2) vs serial: %.2fx at K=1, %.2fx at K=4; "
                "depth2 vs depth1: %.2fx at K=1, %.2fx at K=4\n",
                k1_speedup, k4_speedup, d2_vs_d1_k1, d2_vs_d1_k4);
  }
}

void Run() {
  double seconds = BenchSeconds() * (BenchFull() ? 4.0 : 2.0);
  // Saturating load (~2x the epoch's read capacity): commit decisions arrive
  // one retirement later under pipelining, so per-client latency cannot be
  // allowed to bound throughput — with the batch slots contended in both
  // modes, txn/s = batch capacity x epoch rate, which is what the pipeline
  // improves.
  size_t num_clients = 24;

  Table table("Epoch pipelining — serial vs depth-D overlapped epoch changes "
              "(remote async store, 1 ms node, Δ=3ms, R=2)");
  table.Columns({"shards", "mode", "depth", "txn/s", "epochs/s", "ovl%", "stall_ms",
                 "max_stash", "early"});

  std::vector<CellResult> cells;
  // tps[shards][depth]; depth 0 holds the serial baseline.
  double tps[5][4] = {{0}};
  for (uint32_t shards : {1u, 4u}) {
    for (size_t depth : {size_t{0}, size_t{1}, size_t{2}, size_t{3}}) {
      bool pipelined = depth != 0;
      CellResult c = RunCell(shards, pipelined, pipelined ? depth : 1, seconds,
                             num_clients);
      cells.push_back(c);
      tps[shards][depth] = c.tps;
      table.Row({FmtInt(shards), pipelined ? "pipelined" : "serial",
                 pipelined ? FmtInt(depth) : "-",
                 FmtInt(static_cast<uint64_t>(c.tps)), Fmt(c.epochs_per_sec, 1),
                 Fmt(100.0 * c.overlapped_frac, 0) + "%", Fmt(c.stall_ms, 1),
                 FmtInt(c.max_inflight_stash), FmtInt(c.sched_overlapped)});
    }
  }
  table.Print();

  double k1 = tps[1][0] > 0 ? tps[1][2] / tps[1][0] : 0;
  double k4 = tps[4][0] > 0 ? tps[4][2] / tps[4][0] : 0;
  double d2d1_k1 = tps[1][1] > 0 ? tps[1][2] / tps[1][1] : 0;
  double d2d1_k4 = tps[4][1] > 0 ? tps[4][2] / tps[4][1] : 0;
  std::printf("depth 1 re-serializes on the retirement tail once it outlasts one epoch; "
              "depth 2 keeps a second tail in flight so the cadence stays R*Δ.\n");
  EmitJson(cells, k1, k4, d2d1_k1, d2d1_k4);
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
