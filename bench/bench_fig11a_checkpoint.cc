// Figure 11a: throughput vs full-checkpoint frequency with durability
// enabled (path logging before every batch, delta checkpoints every epoch,
// full checkpoints every N epochs).
//
// Expected shape (paper): computing diffs mitigates checkpointing costs —
// throughput rises sharply as full checkpoints become rarer, then flattens
// once delta checkpoints dominate.
#include "bench/bench_common.h"
#include "src/recovery/recovery_unit.h"

namespace obladi {
namespace {

double RunWithCheckpointInterval(const std::string& backend, uint64_t n, size_t interval,
                                 double scale, double seconds) {
  // The paper's configuration (Z=100) makes the permutation map — and hence
  // full checkpoints — heavy; short epochs (one small batch) expose the
  // amortization benefit of delta checkpoints.
  constexpr size_t kBatch = 16;
  RingOramOptions options;
  options.parallel = true;
  options.defer_writes = true;
  options.io_threads = 192;
  options.verify_decoded_ids = false;
  auto env = MakeMicroOram(backend, n, /*z=*/100, /*payload=*/64, options, scale);

  auto log_base = std::make_shared<MemoryLogStore>();
  auto log = std::make_shared<LatencyLogStore>(log_base, ProfileByName(backend, scale));
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("ck"), false, 3));
  RecoveryConfig rcfg;
  rcfg.full_checkpoint_interval = interval;
  rcfg.posmap_delta_pad_entries = kBatch;
  RecoveryUnit recovery(rcfg, log, encryptor);
  Status st = recovery.LogFullCheckpoint(*env.oram);
  if (!st.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  env.oram->SetBatchPlannedHook(
      [&](const BatchPlan& plan) { return recovery.LogReadBatchPlan(plan); });

  Rng rng(17);
  uint64_t start = NowMicros();
  uint64_t deadline = start + static_cast<uint64_t>(seconds * 1e6);
  uint64_t ops = 0;
  std::vector<uint8_t> used(n, 0);
  while (NowMicros() < deadline) {
    std::vector<BlockId> ids;
    while (ids.size() < kBatch) {
      BlockId id = rng.Uniform(n);
      if (!used[id]) {
        used[id] = 1;
        ids.push_back(id);
      }
    }
    for (BlockId id : ids) {
      used[id] = 0;
    }
    auto result = env.oram->ReadBatch(ids);
    if (!result.ok()) {
      std::fprintf(stderr, "batch failed: %s\n", result.status().ToString().c_str());
      std::abort();
    }
    ops += ids.size();
    (void)env.oram->FinishEpoch();
    (void)recovery.LogEpochCommit(*env.oram);
    (void)env.oram->TruncateStaleVersions();
  }
  return static_cast<double>(ops) / (static_cast<double>(NowMicros() - start) / 1e6);
}

void Run() {
  double scale = BenchScale();
  double seconds = BenchSeconds();
  bool full = BenchFull();
  uint64_t n = full ? 100000 : 50000;

  Table table("Figure 11a — Checkpoint frequency vs throughput (ops/s)");
  table.Columns({"full_ckpt_every", "server", "server_wan", "dynamo"});
  for (size_t interval : {1, 4, 16, 64, 256}) {
    std::vector<std::string> row = {FmtInt(interval)};
    for (const std::string backend : {"server", "server_wan", "dynamo"}) {
      row.push_back(Fmt(RunWithCheckpointInterval(backend, n, interval, scale, seconds)));
    }
    table.Row(row);
  }
  table.Print();
  WriteBenchJson("BENCH_fig11a_checkpoint.json",
                 Json::Object()
                     .Set("bench", Json::Str("fig11a_checkpoint"))
                     .Set("table", TableToJson(table)));
  std::printf("paper shape: throughput rises then flattens as full checkpoints become "
              "rarer (deltas dominate)\n");
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
