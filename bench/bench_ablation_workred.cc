// Ablation of the §6.3 work-reduction optimizations, beyond what the paper
// plots directly:
//   * version-cache read caching (proxy dedup of repeated reads)
//   * dummiless writes (write batches that skip the ORAM read)
//   * the INSECURE cache-everything variant, to quantify how much performance
//     the security argument of §6.3 gives up (it also demonstrates the skew
//     the paper warns about — see the security tests).
#include "bench/bench_common.h"

namespace obladi {
namespace {

// Measure writes with/without the dummiless-write optimization by comparing
// a WriteBatch (dummiless) against read-then-write (what a generic ORAM
// would do: every write costs a physical path read).
void DummilessWrites(double scale, double seconds, Json* doc) {
  uint64_t n = 20000;
  RingOramOptions options;
  options.parallel = true;
  options.defer_writes = true;
  options.io_threads = 192;

  Table table("Ablation — dummiless writes (write ops/s)");
  table.Columns({"backend", "read+write(generic ORAM)", "dummiless(Obladi)", "speedup"});
  for (const std::string backend : {"server", "server_wan"}) {
    double results[2] = {0, 0};
    for (int dummiless = 0; dummiless < 2; ++dummiless) {
      auto env = MakeMicroOram(backend, n, 16, 128, options, scale);
      Rng rng(21);
      Bytes value(64, 0x77);
      uint64_t start = NowMicros();
      uint64_t deadline = start + static_cast<uint64_t>(seconds * 1e6);
      uint64_t ops = 0;
      std::vector<uint8_t> used(n, 0);
      while (NowMicros() < deadline) {
        std::vector<BlockId> ids;
        while (ids.size() < 200) {
          BlockId id = rng.Uniform(n);
          if (!used[id]) {
            used[id] = 1;
            ids.push_back(id);
          }
        }
        for (BlockId id : ids) {
          used[id] = 0;
        }
        if (dummiless == 0) {
          // Generic ORAM write = physical read of the path, then update.
          auto r = env.oram->ReadBatch(ids);
          if (!r.ok()) {
            std::abort();
          }
        }
        std::vector<std::pair<BlockId, Bytes>> writes;
        writes.reserve(ids.size());
        for (BlockId id : ids) {
          writes.emplace_back(id, value);
        }
        if (!env.oram->WriteBatch(writes, ids.size()).ok()) {
          std::abort();
        }
        (void)env.oram->FinishEpoch();
        ops += ids.size();
      }
      results[dummiless] =
          static_cast<double>(ops) / (static_cast<double>(NowMicros() - start) / 1e6);
    }
    table.Row({backend, Fmt(results[0]), Fmt(results[1]), Fmt(results[1] / results[0], 2)});
  }
  table.Print();
  doc->Set("dummiless_writes", TableToJson(table));
}

// Quantify what the secure stash-caching rule costs versus the insecure
// cache-everything variant on a skewed workload.
void StashCachingRule(double scale, double seconds, Json* doc) {
  uint64_t n = 20000;
  Table table("Ablation — §6.3 stash caching rule (hot workload, ops/s)");
  table.Columns({"backend", "secure(dummy reads)", "insecure(cache all)", "insecure_gain"});
  for (const std::string backend : {"server", "server_wan"}) {
    double results[2] = {0, 0};
    for (int insecure = 0; insecure < 2; ++insecure) {
      RingOramOptions options;
      options.parallel = true;
      options.defer_writes = true;
      options.io_threads = 192;
      options.cache_all_stash = insecure == 1;
      auto env = MakeMicroOram(backend, n, 16, 128, options, scale);
      Rng rng(31);
      uint64_t start = NowMicros();
      uint64_t deadline = start + static_cast<uint64_t>(seconds * 1e6);
      uint64_t ops = 0;
      while (NowMicros() < deadline) {
        // 64 hot blocks hammered: with cache_all_stash, most accesses skip
        // physical reads entirely (and leak the skew).
        std::vector<BlockId> ids;
        std::vector<uint8_t> used(64, 0);
        while (ids.size() < 32) {
          BlockId id = rng.Uniform(64);
          if (!used[id]) {
            used[id] = 1;
            ids.push_back(id);
          }
        }
        auto r = env.oram->ReadBatch(ids);
        if (!r.ok()) {
          std::abort();
        }
        (void)env.oram->FinishEpoch();
        ops += ids.size();
      }
      results[insecure] =
          static_cast<double>(ops) / (static_cast<double>(NowMicros() - start) / 1e6);
    }
    table.Row({backend, Fmt(results[0]), Fmt(results[1]), Fmt(results[1] / results[0], 2)});
  }
  table.Print();
  doc->Set("stash_caching_rule", TableToJson(table));
  std::printf("note: the insecure variant skews the observable leaf distribution; see "
              "RingOramSecurityTest.CacheAllStashAblationSkipsPhysicalReads\n");
}

void Run() {
  double scale = BenchScale();
  double seconds = BenchSeconds();
  Json doc = Json::Object().Set("bench", Json::Str("ablation_workred"));
  DummilessWrites(scale, seconds, &doc);
  StashCachingRule(scale, seconds, &doc);
  WriteBenchJson("BENCH_ablation_workred.json", doc);
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
