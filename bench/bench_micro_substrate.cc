// Substrate micro-benchmarks (google-benchmark): crypto primitives, codecs,
// RNGs, MVTSO operations, and single ORAM accesses. These are the building
// blocks whose costs explain the figure-level results (e.g. why the dummy
// backend is crypto/CPU-bound).
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/csprng.h"
#include "src/crypto/encryptor.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/oram/ring_oram.h"
#include "src/storage/memory_store.h"
#include "src/txn/mvtso.h"

namespace obladi {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = BytesFromString("bench-key");
  Bytes data(static_cast<size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256::Compute(key, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(4096);

void BM_ChaCha20(benchmark::State& state) {
  uint8_t key[32] = {1};
  uint8_t nonce[12] = {2};
  Bytes data(static_cast<size_t>(state.range(0)), 0xee);
  for (auto _ : state) {
    ChaCha20 cipher(key, nonce);
    cipher.Crypt(data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(268)->Arg(1024)->Arg(65536);

void BM_EncryptorRoundTrip(benchmark::State& state) {
  Encryptor enc = Encryptor::FromMasterKey(BytesFromString("k"), state.range(1) != 0, 1);
  Bytes pt(static_cast<size_t>(state.range(0)), 0x33);
  for (auto _ : state) {
    Bytes ct = enc.Encrypt(pt);
    auto back = enc.Decrypt(ct);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EncryptorRoundTrip)
    ->Args({268, 0})   // slot-sized, unauthenticated
    ->Args({268, 1})   // slot-sized, MAC'd (Appendix A)
    ->Args({1036, 0});

void BM_CsprngPermutation(benchmark::State& state) {
  Csprng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.RandomPermutation(static_cast<uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_CsprngPermutation)->Arg(9)->Arg(44)->Arg(296);  // Z+S for Z=4/16/100

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(2);
  ZipfianGenerator zipf(1000000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.NextScrambled(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_MvtsoReadWrite(benchmark::State& state) {
  MvtsoEngine engine;
  engine.InstallBase("k", "v");
  for (auto _ : state) {
    Timestamp ts = engine.Begin();
    benchmark::DoNotOptimize(engine.Read(ts, "k"));
    (void)engine.Write(ts, "k2", "x");
    (void)engine.Finish(ts);
    if (state.iterations() % 512 == 0) {
      engine.EndEpoch(0);
      engine.InstallBase("k", "v");
    }
  }
}
BENCHMARK(BM_MvtsoReadWrite);

void BM_OramSingleAccess(benchmark::State& state) {
  RingOramConfig config = RingOramConfig::ForCapacity(4096, 8, 128);
  RingOramOptions options;
  options.parallel = false;
  auto store = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                   config.slots_per_bucket(), 2);
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("k"), false, 1));
  RingOram oram(config, options, store, encryptor, 1);
  std::vector<Bytes> values(4096);
  if (!oram.Initialize(values).ok()) {
    state.SkipWithError("init failed");
    return;
  }
  Rng rng(3);
  for (auto _ : state) {
    BlockId id = rng.Uniform(4096);
    auto result = oram.ReadBatch({id});
    benchmark::DoNotOptimize(result);
  }
  state.counters["levels"] = config.num_levels;
}
BENCHMARK(BM_OramSingleAccess);

void BM_BinarySerde(benchmark::State& state) {
  for (auto _ : state) {
    BinaryWriter w;
    for (int i = 0; i < 16; ++i) {
      w.PutU64(static_cast<uint64_t>(i) * 7919);
      w.PutString("field");
    }
    Bytes buf = w.Take();
    BinaryReader r(buf);
    uint64_t sum = 0;
    for (int i = 0; i < 16; ++i) {
      sum += r.GetU64();
      benchmark::DoNotOptimize(r.GetString());
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BinarySerde);

}  // namespace
}  // namespace obladi

BENCHMARK_MAIN();
