// Sharded ORAM scaling: read-batch throughput of the ShardedOramSet for
// K in {1, 2, 4, 8} shards over YCSB-uniform and YCSB-Zipf(0.99) request
// streams on the Dynamo latency profile (1ms reads / 3ms writes, 64-way
// connection pool *per shard* — sharding multiplies storage connections,
// which is the cloud deployment the subsystem models).
//
// Expected shape: throughput grows with K on the latency-bound backend
// (smaller trees, K concurrent connection pools, K overlapped epoch
// flushes), and the uniform and Zipf columns match closely at every K —
// the per-shard quota padding makes the request shape, and therefore the
// cost, workload independent.
//
// Honours OBLADI_BENCH_SCALE / OBLADI_BENCH_SECONDS / OBLADI_BENCH_FULL
// like the figure benches (scale here defaults to the paper-scale 1.0 via
// ShardScale() unless OBLADI_BENCH_SCALE is set: at the default micro scale
// of 0.1 the latency is too small to dominate a laptop's crypto).
#include "bench/bench_common.h"
#include "src/shard/sharded_oram_set.h"
#include "src/workload/ycsb.h"

namespace obladi {
namespace {

double ShardScale() {
  const char* env = std::getenv("OBLADI_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 1.0;
}

struct ShardedBench {
  ShardLayout layout;
  std::vector<std::shared_ptr<LatencyBucketStore>> latency;
  std::unique_ptr<ShardedOramSet> set;
};

ShardedBench MakeSharded(uint32_t k, uint64_t n, size_t batch, double scale) {
  ShardedBench env;
  env.layout = ShardLayout::Make(RingOramConfig::ForCapacity(n, 4, 64), k);
  ShardedOramOptions options;
  options.oram.io_threads = 64;
  options.read_quota = (batch + k - 1) / k;
  options.write_quota = options.read_quota;
  std::vector<std::shared_ptr<BucketStore>> stores;
  for (uint32_t s = 0; s < k; ++s) {
    auto base = std::make_shared<MemoryBucketStore>(
        env.layout.shard_config.num_buckets(), env.layout.shard_config.slots_per_bucket(),
        /*max_versions=*/2);
    env.latency.push_back(
        std::make_shared<LatencyBucketStore>(base, LatencyProfile::Dynamo(scale)));
    stores.push_back(env.latency.back());
  }
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("shard-bench"), false, k));
  env.set = std::make_unique<ShardedOramSet>(env.layout, options, stores, encryptor,
                                             /*seed=*/k * 131 + 7);
  for (auto& l : env.latency) {
    l->SetBypass(true);
  }
  Status st = env.set->Initialize(std::vector<Bytes>(n));
  if (!st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  for (auto& l : env.latency) {
    l->SetBypass(false);
  }
  return env;
}

// Drive distinct-id read batches (quota-respecting, like the proxy's
// admission) for ~seconds; finish an epoch every 2 batches.
double RunShardedBatches(ShardedOramSet& set, uint64_t n, size_t batch, double theta,
                         double seconds) {
  Rng rng(42);
  ZipfianGenerator zipf(n, theta > 0 ? theta : 0.99);
  size_t quota = set.read_quota();
  uint64_t start = NowMicros();
  uint64_t deadline = start + static_cast<uint64_t>(seconds * 1e6);
  uint64_t ops = 0;
  size_t in_epoch = 0;
  std::vector<uint8_t> used(n, 0);
  while (NowMicros() < deadline) {
    std::vector<BlockId> ids;
    std::vector<size_t> per_shard(set.num_shards(), 0);
    while (ids.size() < batch) {
      BlockId id = theta > 0 ? zipf.NextScrambled(rng) : rng.Uniform(n);
      uint32_t s = set.router().ShardOf(id);
      if (used[id] || per_shard[s] >= quota) {
        continue;
      }
      used[id] = 1;
      per_shard[s]++;
      ids.push_back(id);
    }
    for (BlockId id : ids) {
      used[id] = 0;
    }
    auto result = set.ReadBatch(ids);
    if (!result.ok()) {
      std::fprintf(stderr, "batch failed: %s\n", result.status().ToString().c_str());
      std::abort();
    }
    ops += batch;
    if (++in_epoch >= 2) {
      Status st = set.FinishEpoch();
      if (!st.ok()) {
        std::fprintf(stderr, "epoch failed: %s\n", st.ToString().c_str());
        std::abort();
      }
      in_epoch = 0;
    }
  }
  if (in_epoch > 0) {
    (void)set.FinishEpoch();
  }
  return static_cast<double>(ops) / (static_cast<double>(NowMicros() - start) / 1e6);
}

void Run() {
  double scale = ShardScale();
  double seconds = BenchSeconds();
  bool full = BenchFull();
  uint64_t n = full ? 65536 : 8192;
  size_t batch = full ? 64 : 32;

  Table table("Sharded ORAM scaling — Dynamo profile, read batches of " +
              std::to_string(batch));
  table.Columns({"K", "levels/shard", "uniform_ops_s", "zipf_ops_s", "zipf/uniform",
                 "speedup_vs_K1"});

  double base_uniform = 0;
  double k4_uniform = 0, k1_uniform = 0;
  for (uint32_t k : {1u, 2u, 4u, 8u}) {
    auto env = MakeSharded(k, n, batch, scale);
    double uniform = RunShardedBatches(*env.set, n, batch, /*theta=*/0.0, seconds);
    double zipf = RunShardedBatches(*env.set, n, batch, /*theta=*/0.99, seconds);
    if (k == 1) {
      base_uniform = uniform;
      k1_uniform = uniform;
    }
    if (k == 4) {
      k4_uniform = uniform;
    }
    table.Row({FmtInt(k), FmtInt(env.layout.shard_config.num_levels), Fmt(uniform),
               Fmt(zipf), Fmt(zipf / uniform, 2), Fmt(uniform / base_uniform, 2)});
  }
  table.Print();
  WriteBenchJson("BENCH_shard_scaling.json",
                 Json::Object()
                     .Set("bench", Json::Str("shard_scaling"))
                     .Set("table", TableToJson(table))
                     .Set("k4_vs_k1_uniform",
                          Json::Num(k1_uniform > 0 ? k4_uniform / k1_uniform : 0, 2)));
  std::printf("expected shape: speedup grows with K (smaller trees + K connection pools "
              "+ overlapped flushes); zipf/uniform ~1.0 at every K (quota padding makes "
              "cost workload independent).\n");
  std::printf("K=4 vs K=1 (uniform): %.2fx %s\n", k4_uniform / k1_uniform,
              k4_uniform > k1_uniform ? "— scaling confirmed" : "— NO SCALING");
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
