// Shared setup for the figure/table reproduction benches.
//
// Environment knobs (every bench honours these):
//   OBLADI_BENCH_SCALE    latency scale factor vs. the paper's testbed
//                         (default 0.1: local 30us, WAN 1ms, Dynamo 100/300us)
//   OBLADI_BENCH_SECONDS  target measurement seconds per data point (default 1.0)
//   OBLADI_BENCH_FULL     1 = paper-scale parameters (slower, closer numbers)
#ifndef OBLADI_BENCH_BENCH_COMMON_H_
#define OBLADI_BENCH_BENCH_COMMON_H_

#include <malloc.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/crypto/encryptor.h"
#include "src/harness/table.h"
#include "src/oram/ring_oram.h"
#include "src/storage/latency_store.h"
#include "src/storage/memory_store.h"

namespace obladi {

// Keep freed memory in the process instead of returning it to the OS: the
// write phase allocates megabytes of fresh ciphertext per epoch, and on
// virtualized hosts re-faulting those pages costs far more than the crypto.
// After a couple of warmup epochs the buffers recycle.
inline void TuneAllocatorForBenchmarks() {
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
  mallopt(M_MMAP_THRESHOLD, 1 << 24);
}

inline double BenchScale() {
  const char* env = std::getenv("OBLADI_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.1;
}

inline double BenchSeconds() {
  const char* env = std::getenv("OBLADI_BENCH_SECONDS");
  return env != nullptr ? std::atof(env) : 1.0;
}

inline bool BenchFull() {
  const char* env = std::getenv("OBLADI_BENCH_FULL");
  return env != nullptr && std::atoi(env) != 0;
}

inline LatencyProfile ProfileByName(const std::string& name, double scale) {
  if (name == "dummy") {
    return LatencyProfile::Dummy();
  }
  if (name == "server") {
    return LatencyProfile::LocalServer(scale);
  }
  if (name == "server_wan") {
    return LatencyProfile::WanServer(scale);
  }
  return LatencyProfile::Dynamo(scale);
}

struct MicroOram {
  RingOramConfig config;
  std::shared_ptr<LatencyBucketStore> store;
  std::unique_ptr<RingOram> oram;
};

// Build an ORAM over the named backend and bulk-load it (latency bypassed
// during loading). The "dummy" backend stores nothing; decoded-id
// verification is disabled for it.
inline MicroOram MakeMicroOram(const std::string& backend, uint64_t n, uint32_t z,
                               size_t payload, RingOramOptions options, double scale,
                               uint64_t seed = 1) {
  MicroOram env;
  env.config = RingOramConfig::ForCapacity(n, z, payload);
  std::shared_ptr<BucketStore> base;
  if (backend == "dummy") {
    Encryptor sizer = Encryptor::FromMasterKey(BytesFromString("k"), false, 1);
    base = std::make_shared<DummyBucketStore>(env.config.num_buckets(),
                                              env.config.slot_plaintext_size() +
                                                  sizer.Overhead());
    options.verify_decoded_ids = false;
  } else {
    // Keep only the two latest versions: the figure benches never recover
    // from a crash mid-run, so deeper shadow-paging history is dead weight.
    base = std::make_shared<MemoryBucketStore>(env.config.num_buckets(),
                                               env.config.slots_per_bucket(),
                                               /*max_versions=*/2);
  }
  env.store = std::make_shared<LatencyBucketStore>(base, ProfileByName(backend, scale));
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("bench-key"), false, seed));
  env.oram = std::make_unique<RingOram>(env.config, options, env.store, encryptor, seed);

  env.store->SetBypass(true);
  std::vector<Bytes> values(n);  // empty payloads: content is irrelevant here
  Status st = env.oram->Initialize(values);
  if (!st.ok()) {
    std::fprintf(stderr, "ORAM init failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  env.store->SetBypass(false);
  return env;
}

// --- bench JSON emission ----------------------------------------------------
//
// Every bench binary writes a BENCH_<name>.json artifact through this one
// builder, so CI scrapes a uniform format and schema changes happen in one
// place. Insertion order is preserved (objects render keys in Set order).
class Json {
 public:
  Json() = default;
  static Json Object() { return Json(Kind::kObject); }
  static Json Array() { return Json(Kind::kArray); }
  static Json Str(std::string s) {
    Json j(Kind::kString);
    j.str_ = std::move(s);
    return j;
  }
  static Json Bool(bool b) {
    Json j(Kind::kBool);
    j.num_ = b ? 1 : 0;
    return j;
  }
  static Json Int(uint64_t v) {
    Json j(Kind::kInt);
    j.int_ = v;
    return j;
  }
  // precision < 0 renders the shortest round-trippable form.
  static Json Num(double v, int precision = -1) {
    Json j(Kind::kNumber);
    j.num_ = v;
    j.precision_ = precision;
    return j;
  }

  Json& Set(std::string key, Json value) {
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Json& Push(Json value) {
    items_.push_back(std::move(value));
    return *this;
  }

  std::string Render() const {
    std::string out;
    RenderTo(&out, 0);
    return out;
  }

 private:
  enum class Kind { kNull, kObject, kArray, kString, kBool, kInt, kNumber };
  explicit Json(Kind kind) : kind_(kind) {}

  static void AppendEscaped(std::string* out, const std::string& s) {
    for (char c : s) {
      switch (c) {
        case '"': *out += "\\\""; break;
        case '\\': *out += "\\\\"; break;
        case '\n': *out += "\\n"; break;
        case '\t': *out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            *out += buf;
          } else {
            *out += c;
          }
      }
    }
  }

  void RenderTo(std::string* out, int indent) const {
    char buf[64];
    switch (kind_) {
      case Kind::kNull: *out += "null"; break;
      case Kind::kBool: *out += num_ != 0 ? "true" : "false"; break;
      case Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(int_));
        *out += buf;
        break;
      case Kind::kNumber:
        if (precision_ >= 0) {
          std::snprintf(buf, sizeof(buf), "%.*f", precision_, num_);
        } else {
          std::snprintf(buf, sizeof(buf), "%.10g", num_);
        }
        *out += buf;
        break;
      case Kind::kString:
        *out += '"';
        AppendEscaped(out, str_);
        *out += '"';
        break;
      case Kind::kArray: {
        if (items_.empty()) {
          *out += "[]";
          break;
        }
        *out += "[";
        for (size_t i = 0; i < items_.size(); ++i) {
          *out += i == 0 ? "\n" : ",\n";
          out->append((indent + 1) * 2, ' ');
          items_[i].RenderTo(out, indent + 1);
        }
        *out += "\n";
        out->append(indent * 2, ' ');
        *out += "]";
        break;
      }
      case Kind::kObject: {
        if (members_.empty()) {
          *out += "{}";
          break;
        }
        *out += "{";
        for (size_t i = 0; i < members_.size(); ++i) {
          *out += i == 0 ? "\n" : ",\n";
          out->append((indent + 1) * 2, ' ');
          *out += '"';
          AppendEscaped(out, members_[i].first);
          *out += "\": ";
          members_[i].second.RenderTo(out, indent + 1);
        }
        *out += "\n";
        out->append(indent * 2, ' ');
        *out += "}";
        break;
      }
    }
  }

  Kind kind_ = Kind::kNull;
  std::string str_;
  double num_ = 0;
  uint64_t int_ = 0;
  int precision_ = -1;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;
};

inline bool WriteBenchJson(const std::string& path, const Json& root) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return false;
  }
  std::string body = root.Render();
  body += "\n";
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// The printed Table, as JSON — the uniform fallback artifact for benches
// whose headline numbers live in table cells rather than named fields.
inline Json TableToJson(const Table& table) {
  Json rows = Json::Array();
  for (const auto& row : table.rows()) {
    Json cells = Json::Array();
    for (const auto& cell : row) {
      cells.Push(Json::Str(cell));
    }
    rows.Push(std::move(cells));
  }
  Json columns = Json::Array();
  for (const auto& h : table.headers()) {
    columns.Push(Json::Str(h));
  }
  return Json::Object()
      .Set("title", Json::Str(table.title()))
      .Set("columns", std::move(columns))
      .Set("rows", std::move(rows));
}

struct BatchRunResult {
  double ops_per_sec = 0;
  double mean_batch_latency_us = 0;
  uint64_t ops = 0;
  double physical_reqs_per_op = 0;
};

// Drive read batches of `batch_size` distinct uniform keys; finish an epoch
// every `batches_per_epoch` batches; run for ~`seconds`.
inline BatchRunResult RunReadBatches(RingOram& oram, uint64_t n, size_t batch_size,
                                     size_t batches_per_epoch, double seconds,
                                     uint64_t seed = 42) {
  Rng rng(seed);
  oram.ResetStats();
  uint64_t start = NowMicros();
  uint64_t deadline = start + static_cast<uint64_t>(seconds * 1e6);
  uint64_t ops = 0;
  uint64_t batch_latency_total = 0;
  uint64_t batches = 0;
  size_t in_epoch = 0;
  std::vector<uint8_t> used(n, 0);
  while (NowMicros() < deadline) {
    std::vector<BlockId> ids;
    ids.reserve(batch_size);
    // Distinct ids within a batch (the proxy's dedup guarantees this).
    while (ids.size() < batch_size) {
      BlockId id = rng.Uniform(n);
      if (!used[id]) {
        used[id] = 1;
        ids.push_back(id);
      }
    }
    for (BlockId id : ids) {
      used[id] = 0;
    }
    Stopwatch sw;
    auto result = oram.ReadBatch(ids);
    if (!result.ok()) {
      std::fprintf(stderr, "ReadBatch failed: %s\n", result.status().ToString().c_str());
      std::abort();
    }
    batch_latency_total += sw.ElapsedMicros();
    ++batches;
    ops += batch_size;
    if (++in_epoch >= batches_per_epoch) {
      Status st = oram.FinishEpoch();
      if (!st.ok()) {
        std::fprintf(stderr, "FinishEpoch failed: %s\n", st.ToString().c_str());
        std::abort();
      }
      in_epoch = 0;
    }
  }
  uint64_t elapsed = NowMicros() - start;
  if (in_epoch > 0) {
    (void)oram.FinishEpoch();
  }
  BatchRunResult out;
  out.ops = ops;
  out.ops_per_sec = static_cast<double>(ops) / (static_cast<double>(elapsed) / 1e6);
  out.mean_batch_latency_us =
      batches > 0 ? static_cast<double>(batch_latency_total) / static_cast<double>(batches) : 0;
  auto stats = oram.stats();
  if (stats.logical_accesses > 0) {
    out.physical_reqs_per_op =
        static_cast<double>(stats.physical_slot_reads + stats.physical_bucket_writes) /
        static_cast<double>(stats.logical_accesses);
  }
  return out;
}

}  // namespace obladi

#endif  // OBLADI_BENCH_BENCH_COMMON_H_
