// Shared setup for the figure/table reproduction benches.
//
// Environment knobs (every bench honours these):
//   OBLADI_BENCH_SCALE    latency scale factor vs. the paper's testbed
//                         (default 0.1: local 30us, WAN 1ms, Dynamo 100/300us)
//   OBLADI_BENCH_SECONDS  target measurement seconds per data point (default 1.0)
//   OBLADI_BENCH_FULL     1 = paper-scale parameters (slower, closer numbers)
#ifndef OBLADI_BENCH_BENCH_COMMON_H_
#define OBLADI_BENCH_BENCH_COMMON_H_

#include <malloc.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/crypto/encryptor.h"
#include "src/harness/table.h"
#include "src/oram/ring_oram.h"
#include "src/storage/latency_store.h"
#include "src/storage/memory_store.h"

namespace obladi {

// Keep freed memory in the process instead of returning it to the OS: the
// write phase allocates megabytes of fresh ciphertext per epoch, and on
// virtualized hosts re-faulting those pages costs far more than the crypto.
// After a couple of warmup epochs the buffers recycle.
inline void TuneAllocatorForBenchmarks() {
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
  mallopt(M_MMAP_THRESHOLD, 1 << 24);
}

inline double BenchScale() {
  const char* env = std::getenv("OBLADI_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.1;
}

inline double BenchSeconds() {
  const char* env = std::getenv("OBLADI_BENCH_SECONDS");
  return env != nullptr ? std::atof(env) : 1.0;
}

inline bool BenchFull() {
  const char* env = std::getenv("OBLADI_BENCH_FULL");
  return env != nullptr && std::atoi(env) != 0;
}

inline LatencyProfile ProfileByName(const std::string& name, double scale) {
  if (name == "dummy") {
    return LatencyProfile::Dummy();
  }
  if (name == "server") {
    return LatencyProfile::LocalServer(scale);
  }
  if (name == "server_wan") {
    return LatencyProfile::WanServer(scale);
  }
  return LatencyProfile::Dynamo(scale);
}

struct MicroOram {
  RingOramConfig config;
  std::shared_ptr<LatencyBucketStore> store;
  std::unique_ptr<RingOram> oram;
};

// Build an ORAM over the named backend and bulk-load it (latency bypassed
// during loading). The "dummy" backend stores nothing; decoded-id
// verification is disabled for it.
inline MicroOram MakeMicroOram(const std::string& backend, uint64_t n, uint32_t z,
                               size_t payload, RingOramOptions options, double scale,
                               uint64_t seed = 1) {
  MicroOram env;
  env.config = RingOramConfig::ForCapacity(n, z, payload);
  std::shared_ptr<BucketStore> base;
  if (backend == "dummy") {
    Encryptor sizer = Encryptor::FromMasterKey(BytesFromString("k"), false, 1);
    base = std::make_shared<DummyBucketStore>(env.config.num_buckets(),
                                              env.config.slot_plaintext_size() +
                                                  sizer.Overhead());
    options.verify_decoded_ids = false;
  } else {
    // Keep only the two latest versions: the figure benches never recover
    // from a crash mid-run, so deeper shadow-paging history is dead weight.
    base = std::make_shared<MemoryBucketStore>(env.config.num_buckets(),
                                               env.config.slots_per_bucket(),
                                               /*max_versions=*/2);
  }
  env.store = std::make_shared<LatencyBucketStore>(base, ProfileByName(backend, scale));
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("bench-key"), false, seed));
  env.oram = std::make_unique<RingOram>(env.config, options, env.store, encryptor, seed);

  env.store->SetBypass(true);
  std::vector<Bytes> values(n);  // empty payloads: content is irrelevant here
  Status st = env.oram->Initialize(values);
  if (!st.ok()) {
    std::fprintf(stderr, "ORAM init failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  env.store->SetBypass(false);
  return env;
}

struct BatchRunResult {
  double ops_per_sec = 0;
  double mean_batch_latency_us = 0;
  uint64_t ops = 0;
  double physical_reqs_per_op = 0;
};

// Drive read batches of `batch_size` distinct uniform keys; finish an epoch
// every `batches_per_epoch` batches; run for ~`seconds`.
inline BatchRunResult RunReadBatches(RingOram& oram, uint64_t n, size_t batch_size,
                                     size_t batches_per_epoch, double seconds,
                                     uint64_t seed = 42) {
  Rng rng(seed);
  oram.ResetStats();
  uint64_t start = NowMicros();
  uint64_t deadline = start + static_cast<uint64_t>(seconds * 1e6);
  uint64_t ops = 0;
  uint64_t batch_latency_total = 0;
  uint64_t batches = 0;
  size_t in_epoch = 0;
  std::vector<uint8_t> used(n, 0);
  while (NowMicros() < deadline) {
    std::vector<BlockId> ids;
    ids.reserve(batch_size);
    // Distinct ids within a batch (the proxy's dedup guarantees this).
    while (ids.size() < batch_size) {
      BlockId id = rng.Uniform(n);
      if (!used[id]) {
        used[id] = 1;
        ids.push_back(id);
      }
    }
    for (BlockId id : ids) {
      used[id] = 0;
    }
    Stopwatch sw;
    auto result = oram.ReadBatch(ids);
    if (!result.ok()) {
      std::fprintf(stderr, "ReadBatch failed: %s\n", result.status().ToString().c_str());
      std::abort();
    }
    batch_latency_total += sw.ElapsedMicros();
    ++batches;
    ops += batch_size;
    if (++in_epoch >= batches_per_epoch) {
      Status st = oram.FinishEpoch();
      if (!st.ok()) {
        std::fprintf(stderr, "FinishEpoch failed: %s\n", st.ToString().c_str());
        std::abort();
      }
      in_epoch = 0;
    }
  }
  uint64_t elapsed = NowMicros() - start;
  if (in_epoch > 0) {
    (void)oram.FinishEpoch();
  }
  BatchRunResult out;
  out.ops = ops;
  out.ops_per_sec = static_cast<double>(ops) / (static_cast<double>(elapsed) / 1e6);
  out.mean_batch_latency_us =
      batches > 0 ? static_cast<double>(batch_latency_total) / static_cast<double>(batches) : 0;
  auto stats = oram.stats();
  if (stats.logical_accesses > 0) {
    out.physical_reqs_per_op =
        static_cast<double>(stats.physical_slot_reads + stats.physical_bucket_writes) /
        static_cast<double>(stats.logical_accesses);
  }
  return out;
}

}  // namespace obladi

#endif  // OBLADI_BENCH_BENCH_COMMON_H_
