// Figure 10d: the delayed-visibility optimization — buffering and
// deduplicating bucket writes until the end of an epoch of 8 batches —
// against the "Normal" executor that runs each eviction's write phase at its
// trigger point (with the §7 barrier).
//
// Expected shape (paper): ~1.5x on server/dynamo, ~1.6x on WAN, only ~1.1x on
// dummy (the gains come from eliminating duplicate bucket writes — the root
// is written once instead of once per eviction — and from removing barriers,
// both of which matter more when writes are expensive).
#include "bench/bench_common.h"

namespace obladi {
namespace {

void Run() {
  double scale = BenchScale();
  double seconds = BenchSeconds();
  bool full = BenchFull();
  uint64_t n = full ? 100000 : 20000;
  uint32_t z = 16;
  size_t batch = 500;
  size_t batches_per_epoch = 8;  // the paper's FreeHealth/TPC-C-like setup

  Table table("Figure 10d — Delayed visibility (ops/s, epoch = 8 batches of 500)");
  table.Columns({"backend", "Normal", "WriteBack", "speedup"});

  for (const std::string backend : {"dummy", "server", "server_wan", "dynamo"}) {
    double results[2] = {0, 0};
    for (int deferred = 0; deferred < 2; ++deferred) {
      RingOramOptions options;
      options.parallel = true;
      options.defer_writes = deferred == 1;
      options.io_threads = 192;
      auto env = MakeMicroOram(backend, n, z, 128, options, scale);
      auto result = RunReadBatches(*env.oram, n, batch, batches_per_epoch, seconds);
      results[deferred] = result.ops_per_sec;
    }
    table.Row({backend, Fmt(results[0]), Fmt(results[1]), Fmt(results[1] / results[0], 2)});
  }
  table.Print();
  WriteBenchJson("BENCH_fig10d_delayed_visibility.json",
                 Json::Object()
                     .Set("bench", Json::Str("fig10d_delayed_visibility"))
                     .Set("table", TableToJson(table)));
  std::printf("paper shape: ~1.5x on server/dynamo, ~1.6x on WAN, ~1.1x on dummy\n");
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
