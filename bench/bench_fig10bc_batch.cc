// Figures 10b and 10c: throughput and batch latency vs batch size for the
// parallel ORAM on the four backends.
//
// Expected shape (paper): batch size 1 already gains ~11x on latency-bound
// backends from intra-request parallelism (the tree's levels are read
// concurrently); growing batches add inter-request parallelism with little
// latency cost until a resource saturates. Dynamo plateaus earliest (its
// blocking client caps in-flight requests); dummy bottlenecks on crypto/CPU.
#include "bench/bench_common.h"

namespace obladi {
namespace {

void Run() {
  double scale = BenchScale();
  double seconds = BenchSeconds();
  bool full = BenchFull();
  uint64_t n = full ? 100000 : 20000;
  uint32_t z = 16;

  std::vector<size_t> batch_sizes = {1, 10, 100, 500, 1000, 2000};
  if (full) {
    batch_sizes.push_back(5000);
    batch_sizes.push_back(10000);
  }

  Table tput("Figure 10b — Batch size vs throughput (ops/s)");
  Table lat("Figure 10c — Batch size vs batch latency (us)");
  std::vector<std::string> headers = {"batch"};
  for (const std::string backend : {"dummy", "server", "server_wan", "dynamo"}) {
    headers.push_back(backend);
  }
  tput.Columns(headers);
  lat.Columns(headers);

  std::map<std::string, MicroOram> envs;
  for (const std::string backend : {"dummy", "server", "server_wan", "dynamo"}) {
    RingOramOptions options;
    options.parallel = true;
    options.defer_writes = true;
    options.io_threads = 192;
    envs.emplace(backend, MakeMicroOram(backend, n, z, 128, options, scale));
  }

  for (size_t batch : batch_sizes) {
    std::vector<std::string> tput_row = {FmtInt(batch)};
    std::vector<std::string> lat_row = {FmtInt(batch)};
    for (const std::string backend : {"dummy", "server", "server_wan", "dynamo"}) {
      auto& env = envs.at(backend);
      // Small batches on slow backends need more wall time per point to get
      // past a handful of samples.
      double secs = batch < 100 && backend == "server_wan" ? seconds * 1.5 : seconds;
      auto result = RunReadBatches(*env.oram, n, batch, /*batches_per_epoch=*/1, secs,
                                   /*seed=*/batch * 7 + 1);
      tput_row.push_back(Fmt(result.ops_per_sec));
      lat_row.push_back(Fmt(result.mean_batch_latency_us));
    }
    tput.Row(tput_row);
    lat.Row(lat_row);
  }
  tput.Print();
  lat.Print();
  WriteBenchJson("BENCH_fig10bc_batch.json",
                 Json::Object()
                     .Set("bench", Json::Str("fig10bc_batch"))
                     .Set("throughput", TableToJson(tput))
                     .Set("latency", TableToJson(lat)));
  std::printf("paper shape: throughput rises with batch size then plateaus; dynamo "
              "saturates earliest; latency grows slowly until saturation\n");
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
