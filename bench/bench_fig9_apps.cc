// Figure 9: end-to-end application throughput (9a) and latency (9b) for
// Obladi, NoPriv, MySQL(=strict 2PL), ObladiW, NoPrivW on TPC-C, SmallBank,
// and FreeHealth.
//
// Expected shape (paper): Obladi within ~5-12x of NoPriv's throughput
// (TPC-C 8x, SmallBank 12x, FreeHealth 4x), latency 20-70x worse (fixed
// epoch structure + atomic write-back); the extra WAN latency hurts Obladi
// comparatively little because commits are already batched.
#include "bench/bench_apps_common.h"

namespace obladi {
namespace {

void Run() {
  // Application benches run at the paper's absolute latencies by default
  // (local 300us, WAN 10ms) — i.e. 10x the microbench scale factor.
  double scale = BenchScale() * 10;
  double seconds = BenchSeconds() * 2;  // app runs need a longer steady state
  bool full = BenchFull();

  LatencyProfile local = LatencyProfile::LocalServer(scale);
  LatencyProfile wan = LatencyProfile::WanServer(scale);

  Table tput("Figure 9a — Application throughput (txn/s)");
  tput.Columns({"app", "Obladi", "NoPriv", "MySQL(2PL)", "ObladiW", "NoPrivW",
                "NoPriv/Obladi"});
  Table lat("Figure 9b — Application mean latency (us)");
  lat.Columns({"app", "Obladi", "NoPriv", "MySQL(2PL)", "ObladiW", "NoPrivW",
               "Obladi/NoPriv"});

  struct App {
    const char* name;
    AppKind kind;
  };
  for (const App app : {App{"TPC-C", AppKind::kTpcc}, App{"SmallBank", AppKind::kSmallBank},
                        App{"FreeHealth", AppKind::kFreeHealth}}) {
    auto wl_obladi = MakeAppWorkload(app.kind, full);
    DriverResult obladi = RunObladiApp(app.kind, local, *wl_obladi, seconds);

    auto wl_nopriv = MakeAppWorkload(app.kind, full);
    DriverResult nopriv = RunBaselineApp<NoPrivStore>(*wl_nopriv, local, seconds);

    auto wl_mysql = MakeAppWorkload(app.kind, full);
    DriverResult mysql = RunBaselineApp<TwoPlStore>(*wl_mysql, local, seconds);

    auto wl_obladi_w = MakeAppWorkload(app.kind, full);
    DriverResult obladi_w = RunObladiApp(app.kind, wan, *wl_obladi_w, seconds);

    auto wl_nopriv_w = MakeAppWorkload(app.kind, full);
    DriverResult nopriv_w = RunBaselineApp<NoPrivStore>(*wl_nopriv_w, wan, seconds);

    tput.Row({app.name, Fmt(obladi.throughput_tps), Fmt(nopriv.throughput_tps),
              Fmt(mysql.throughput_tps), Fmt(obladi_w.throughput_tps),
              Fmt(nopriv_w.throughput_tps),
              Fmt(nopriv.throughput_tps / std::max(1.0, obladi.throughput_tps), 1)});
    lat.Row({app.name, Fmt(obladi.mean_latency_us), Fmt(nopriv.mean_latency_us),
             Fmt(mysql.mean_latency_us), Fmt(obladi_w.mean_latency_us),
             Fmt(nopriv_w.mean_latency_us),
             Fmt(obladi.mean_latency_us / std::max(1.0, nopriv.mean_latency_us), 1)});
  }
  tput.Print();
  lat.Print();
  WriteBenchJson("BENCH_fig9_apps.json",
                 Json::Object()
                     .Set("bench", Json::Str("fig9_apps"))
                     .Set("throughput", TableToJson(tput))
                     .Set("latency", TableToJson(lat)));
  std::printf("paper shape: Obladi within ~4-12x of NoPriv throughput; latency 20-70x "
              "higher; WAN hurts Obladi comparatively little\n");
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
