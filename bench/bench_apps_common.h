// Shared application-benchmark setup: builds Obladi / NoPriv / 2PL stacks
// sized for the three paper workloads.
#ifndef OBLADI_BENCH_BENCH_APPS_COMMON_H_
#define OBLADI_BENCH_BENCH_APPS_COMMON_H_

#include <memory>

#include "bench/bench_common.h"
#include "src/baseline/nopriv_store.h"
#include "src/baseline/twopl_store.h"
#include "src/proxy/obladi_store.h"
#include "src/workload/driver.h"
#include "src/workload/freehealth.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"

namespace obladi {

enum class AppKind { kTpcc, kSmallBank, kFreeHealth };

inline std::unique_ptr<Workload> MakeAppWorkload(AppKind kind, bool full) {
  switch (kind) {
    case AppKind::kTpcc: {
      TpccConfig cfg;  // "lite" scale; PaperScale() when full
      if (full) {
        cfg = TpccConfig::PaperScale();
      } else {
        cfg.num_warehouses = 2;
        cfg.districts_per_warehouse = 4;
        cfg.customers_per_district = 100;
        cfg.num_items = 2000;
        cfg.initial_orders_per_district = 20;
        cfg.stock_level_orders = 2;
        cfg.max_order_lines = 8;
      }
      return std::make_unique<TpccWorkload>(cfg);
    }
    case AppKind::kSmallBank: {
      SmallBankConfig cfg;
      cfg.num_accounts = full ? 1000000 : 20000;
      return std::make_unique<SmallBankWorkload>(cfg);
    }
    case AppKind::kFreeHealth: {
      FreeHealthConfig cfg;
      cfg.num_patients = full ? 20000 : 2000;
      cfg.num_users = full ? 500 : 100;
      cfg.num_drugs = 500;
      return std::make_unique<FreeHealthWorkload>(cfg);
    }
  }
  return nullptr;
}

// Epoch parameters tuned per application, following §6.4: TPC-C needs many
// read batches (long transactions) and a large write batch; SmallBank is
// short and homogeneous; FreeHealth is read-heavy with a small write batch.
inline ObladiConfig AppObladiConfig(AppKind kind, uint64_t capacity) {
  ObladiConfig cfg = ObladiConfig::ForCapacity(capacity, /*z=*/16, /*payload=*/512);
  cfg.timed_mode = true;
  cfg.recovery.enabled = false;
  cfg.oram_options.io_threads = 128;
  switch (kind) {
    case AppKind::kTpcc:
      // Long transactions: many read batches and a large write batch (the
      // paper used b_write = 2000 at 10-warehouse scale).
      cfg.read_batches_per_epoch = 28;
      cfg.read_batch_size = 64;
      cfg.write_batch_size = 512;
      cfg.batch_interval_us = 300;
      break;
    case AppKind::kSmallBank:
      cfg.read_batches_per_epoch = 8;
      cfg.read_batch_size = 64;
      cfg.write_batch_size = 160;
      cfg.batch_interval_us = 300;
      break;
    case AppKind::kFreeHealth:
      // Read-heavy: small write batch (paper: 200 vs TPC-C's 2000).
      cfg.read_batches_per_epoch = 8;
      cfg.read_batch_size = 64;
      cfg.write_batch_size = 64;
      cfg.batch_interval_us = 300;
      break;
  }
  return cfg;
}

struct ObladiApp {
  std::shared_ptr<MemoryBucketStore> store;
  std::unique_ptr<ObladiStore> proxy;
};

inline ObladiApp MakeObladiApp(AppKind kind, Workload& workload, LatencyProfile profile,
                               ObladiConfig* config_out = nullptr) {
  auto records = workload.InitialRecords();
  // Leave headroom for keys created at runtime (orders, history rows, ...).
  uint64_t capacity = records.size() + records.size() / 2 + 4096;
  ObladiConfig config = AppObladiConfig(kind, capacity);
  ObladiApp app;
  // Keep only the two latest bucket versions (recovery is off here).
  auto base = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                  config.oram.slots_per_bucket(),
                                                  /*max_versions=*/2);
  auto latency = std::make_shared<LatencyBucketStore>(base, profile);
  latency->SetBypass(true);
  app.store = base;
  app.proxy = std::make_unique<ObladiStore>(config, latency, nullptr);
  Status st = app.proxy->Load(records);
  latency->SetBypass(false);
  if (!st.ok()) {
    std::fprintf(stderr, "Obladi load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  if (config_out != nullptr) {
    *config_out = config;
  }
  return app;
}

inline DriverResult RunObladiApp(AppKind kind, LatencyProfile profile, Workload& workload,
                                 double seconds, size_t threads = 96) {
  auto app = MakeObladiApp(kind, workload, profile);
  app.proxy->Start();
  DriverOptions opts;
  opts.num_threads = threads;
  opts.duration_ms = static_cast<uint64_t>(seconds * 1000);
  opts.warmup_ms = static_cast<uint64_t>(seconds * 250);
  DriverResult result = RunWorkload(*app.proxy, workload, opts);
  app.proxy->Stop();
  return result;
}

template <typename StoreT>
inline DriverResult RunBaselineApp(Workload& workload, LatencyProfile profile, double seconds,
                                   size_t threads = 0) {
  if (threads == 0) {
    // High-latency backends need more closed-loop clients to reach the same
    // offered load (the paper drives hundreds of clients).
    threads = profile.read_latency_us >= 1000 ? 64 : 24;
  }
  auto storage = std::make_shared<RemoteKv>(profile);
  StoreT store(storage);
  Status st = store.Load(workload.InitialRecords());
  if (!st.ok()) {
    std::fprintf(stderr, "baseline load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  DriverOptions opts;
  opts.num_threads = threads;
  opts.duration_ms = static_cast<uint64_t>(seconds * 1000);
  opts.warmup_ms = static_cast<uint64_t>(seconds * 250);
  return RunWorkload(store, workload, opts);
}

}  // namespace obladi

#endif  // OBLADI_BENCH_BENCH_APPS_COMMON_H_
