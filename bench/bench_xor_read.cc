// Server-side XOR path reads: bytes on the wire and throughput on a
// bandwidth-capped link.
//
// Part 1 — per-path download, measured: one ORAM path read touches (L+1)
// slots. Slot-by-slot the client downloads (L+1) full slot ciphertexts;
// via kReadPathsXor it downloads every slot's 44-byte nonce||tag header
// plus ONE XORed body. Both run over a real loopback StorageServer and are
// measured with the wire-layer NetworkStats byte counters, path count and
// slot sizes pinned to a Fig-10-style tree (L = 10, 1 KB blocks).
//
// Part 2 — end-to-end ORAM over the socket: a RingOram driving real read
// batches against RemoteBucketStore, XOR reads off vs on. Reports download
// bytes per logical access (eviction/reshuffle reads — not yet XORed — are
// included, so this is the honest whole-system reduction).
//
// Part 3 — throughput on a bandwidth-capped link: the latency decorator's
// bytes/sec pipe model (shared, serialized link) under Fig-10-style epochs.
// With round trips already batched, download bytes are the bottleneck —
// XOR reads should buy >= 2x.
//
// Emits BENCH_xor_read.json. Honors OBLADI_BENCH_SECONDS / OBLADI_BENCH_FULL.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/net/remote_store.h"
#include "src/net/storage_server.h"

namespace obladi {
namespace {

constexpr size_t kPayloadBytes = 1024;
constexpr uint32_t kHeaderBytes = 12;   // Encryptor::kNonceSize
constexpr uint32_t kTrailerBytes = 32;  // Encryptor::kTagSize (authenticated mode)

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

struct PathBytesResult {
  size_t path_len = 0;        // L + 1
  size_t slot_bytes = 0;      // one slot ciphertext
  double plain_per_path = 0;  // measured download bytes per path, slot-by-slot
  double xor_per_path = 0;    // measured download bytes per path, kReadPathsXor
  bool bound_ok = false;      // xor_per_path <= slot_bytes + path_len * 64
};

// Raw store-level measurement: the same (L+1)-slot path fetched both ways
// over a loopback socket, wire bytes from the client's counters.
PathBytesResult RunPathBytes(bool full) {
  PathBytesResult out;
  const uint32_t levels = 10;  // Fig-10-style tree depth
  out.path_len = levels + 1;
  out.slot_bytes = kHeaderBytes + (12 + kPayloadBytes) + kTrailerBytes;

  auto backend = std::make_shared<MemoryBucketStore>(out.path_len, 4);
  std::vector<Bytes> image(4, Bytes(out.slot_bytes, 0x6b));
  for (BucketIndex b = 0; b < out.path_len; ++b) {
    (void)backend->WriteBucket(b, 0, image);
  }
  StorageServer server(backend, nullptr);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return out;
  }
  RemoteStoreOptions opts;
  opts.port = server.port();
  auto store = RemoteBucketStore::Connect(opts);
  if (!store.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", store.status().ToString().c_str());
    return out;
  }

  const size_t paths_per_request = 8;
  const size_t requests = full ? 256 : 64;
  std::vector<PathSlots> paths(paths_per_request);
  for (auto& path : paths) {
    for (BucketIndex b = 0; b < out.path_len; ++b) {
      path.slots.push_back(SlotRef{b, 0, b % 4});
    }
  }
  std::vector<SlotRef> flat;
  for (const auto& path : paths) {
    flat.insert(flat.end(), path.slots.begin(), path.slots.end());
  }
  const double total_paths = static_cast<double>(paths_per_request * requests);

  (*store)->stats().Reset();
  for (size_t i = 0; i < requests; ++i) {
    auto results = (*store)->ReadSlotsBatch(flat);
    for (const auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "slot read failed\n");
        return out;
      }
    }
  }
  out.plain_per_path =
      static_cast<double>((*store)->stats().bytes_received.load()) / total_paths;

  (*store)->stats().Reset();
  for (size_t i = 0; i < requests; ++i) {
    auto results = (*store)->ReadPathsXor(paths, kHeaderBytes, kTrailerBytes);
    for (const auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "xor read failed: %s\n", r.status().ToString().c_str());
        return out;
      }
    }
  }
  out.xor_per_path =
      static_cast<double>((*store)->stats().bytes_received.load()) / total_paths;
  out.bound_ok = out.xor_per_path <=
                 static_cast<double>(out.slot_bytes + out.path_len * 64);

  Table table("XOR path reads — download per (L+1)-slot path, measured on loopback (L=" +
              FmtInt(levels) + ", " + FmtInt(out.slot_bytes) + " B slots)");
  table.Columns({"mode", "bytes/path", "slots_downloaded_equiv", "reduction"});
  table.Row({"slot-by-slot", FmtInt(static_cast<uint64_t>(out.plain_per_path)),
             Fmt(out.plain_per_path / static_cast<double>(out.slot_bytes), 1), "1.0x"});
  table.Row({"kReadPathsXor", FmtInt(static_cast<uint64_t>(out.xor_per_path)),
             Fmt(out.xor_per_path / static_cast<double>(out.slot_bytes), 1),
             Fmt(out.plain_per_path / out.xor_per_path, 1) + "x"});
  table.Print();
  std::printf("(bound: xor bytes/path <= slot + (L+1)*64 B = %zu B: %s)\n",
              out.slot_bytes + out.path_len * 64, out.bound_ok ? "HOLDS" : "VIOLATED");
  return out;
}

struct OramWireResult {
  double plain_bytes_per_access = 0;
  double xor_bytes_per_access = 0;
  uint64_t xor_paths = 0;
};

// End-to-end: a real RingOram over RemoteBucketStore, XOR reads off vs on.
OramWireResult RunOramOverWire(bool full) {
  OramWireResult out;
  const uint64_t n = full ? 4096 : 1024;
  const size_t batch = 8;
  const size_t batches_per_epoch = 4;
  const size_t epochs = full ? 6 : 3;

  for (bool use_xor : {false, true}) {
    RingOramConfig config = RingOramConfig::ForCapacity(n, 4, kPayloadBytes);
    config.authenticated = true;
    auto backend = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                       config.slots_per_bucket(),
                                                       /*max_versions=*/2);
    StorageServerOptions server_opts;
    server_opts.num_workers = 16;
    StorageServer server(backend, nullptr, server_opts);
    Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
      return out;
    }
    RemoteStoreOptions opts;
    opts.port = server.port();
    auto remote = RemoteBucketStore::Connect(opts);
    if (!remote.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", remote.status().ToString().c_str());
      return out;
    }
    std::shared_ptr<RemoteBucketStore> store = std::move(*remote);

    RingOramOptions oram_opts;
    oram_opts.parallel = true;
    oram_opts.defer_writes = true;
    oram_opts.xor_path_reads = use_xor;
    oram_opts.io_threads = 16;
    auto encryptor = std::make_shared<Encryptor>(
        Encryptor::FromMasterKey(BytesFromString("xor-bench"), /*authenticated=*/true, 3));
    RingOram oram(config, oram_opts, store, encryptor, 3);
    st = oram.Initialize(std::vector<Bytes>(n));
    if (!st.ok()) {
      std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
      return out;
    }

    store->stats().Reset();
    oram.ResetStats();
    Rng rng(77);
    for (size_t e = 0; e < epochs; ++e) {
      for (size_t b = 0; b < batches_per_epoch; ++b) {
        std::vector<BlockId> ids;
        std::vector<uint8_t> used(n, 0);
        while (ids.size() < batch) {
          BlockId id = rng.Uniform(n);
          if (!used[id]) {
            used[id] = 1;
            ids.push_back(id);
          }
        }
        auto result = oram.ReadBatch(ids);
        if (!result.ok()) {
          std::fprintf(stderr, "ReadBatch failed: %s\n", result.status().ToString().c_str());
          return out;
        }
      }
      st = oram.FinishEpoch();
      if (!st.ok()) {
        std::fprintf(stderr, "FinishEpoch failed: %s\n", st.ToString().c_str());
        return out;
      }
    }
    auto stats = oram.stats();
    double per_access = static_cast<double>(store->stats().bytes_received.load()) /
                        static_cast<double>(stats.logical_accesses);
    if (use_xor) {
      out.xor_bytes_per_access = per_access;
      out.xor_paths = stats.xor_path_reads;
    } else {
      out.plain_bytes_per_access = per_access;
    }
  }

  Table table("End-to-end ORAM over loopback — download per logical access "
              "(eviction reads included)");
  table.Columns({"xor_path_reads", "bytes/access", "reduction"});
  table.Row({"off", FmtInt(static_cast<uint64_t>(out.plain_bytes_per_access)), "1.0x"});
  table.Row({"on", FmtInt(static_cast<uint64_t>(out.xor_bytes_per_access)),
             Fmt(out.plain_bytes_per_access / out.xor_bytes_per_access, 1) + "x"});
  table.Print();
  std::printf("(%llu path reads went through kReadPathsXor; eviction/reshuffle bucket "
              "pulls stay slot-by-slot — the ROADMAP's next lever.)\n",
              static_cast<unsigned long long>(out.xor_paths));
  return out;
}

struct BandwidthResult {
  double plain_ops_per_sec = 0;
  double xor_ops_per_sec = 0;
  uint64_t bandwidth_bytes_per_sec = 0;
};

// Fig-10-style epochs (the paper's Z=100 bucket parameter, where online
// path reads dominate the amortized eviction reads) against a Dynamo-
// latency storage model whose DOWNLOAD direction is a capped serialized
// pipe — egress is the direction cloud providers meter, and the one XOR
// reads shrink. Fixed work (whole eviction cycles, identical access
// sequences) so the two modes amortize eviction traffic identically:
// speedup = wall_plain / wall_xor.
BandwidthResult RunBandwidthCapped(bool full) {
  BandwidthResult out;
  const uint64_t n = 16384;
  const uint32_t z = 100;  // Obladi's evaluation parameter: A=168, S=196
  out.bandwidth_bytes_per_sec = 4u << 20;  // 4 MB/s egress: a metered WAN link

  RingOramConfig config = RingOramConfig::ForCapacity(n, z, kPayloadBytes);
  const size_t batch = 8;
  // Whole eviction cycles per run, so eviction lumps amortize identically.
  size_t cycles = full ? 4 : 2;
  if (BenchSeconds() < 0.5) {
    cycles = 1;  // CI smoke
  }
  const size_t batches = (static_cast<size_t>(config.a) * cycles + batch - 1) / batch;
  const size_t batches_per_epoch = 4;

  Table table("Download-capped link (" +
              FmtInt(out.bandwidth_bytes_per_sec / (1u << 20)) +
              " MB/s egress, Dynamo latency) — Fig-10 config Z=" + FmtInt(z) + ", L=" +
              FmtInt(config.num_levels) + ", " + FmtInt(batches) + " batches of " +
              FmtInt(batch));
  table.Columns({"xor_path_reads", "wall_ms", "ops/s", "MB_downloaded", "speedup"});

  double plain_ms = 0;
  for (bool use_xor : {false, true}) {
    RingOramOptions opts;
    opts.parallel = true;
    opts.defer_writes = true;
    opts.xor_path_reads = use_xor;
    opts.io_threads = 16;
    auto base = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                    config.slots_per_bucket(),
                                                    /*max_versions=*/2);
    LatencyProfile profile = LatencyProfile::Dynamo(BenchScale());
    profile.download_bandwidth_bytes_per_sec = out.bandwidth_bytes_per_sec;
    auto store = std::make_shared<LatencyBucketStore>(base, profile);
    auto encryptor = std::make_shared<Encryptor>(
        Encryptor::FromMasterKey(BytesFromString("bw-key"), false, 9));
    RingOram oram(config, opts, store, encryptor, 9);
    store->SetBypass(true);
    Status st = oram.Initialize(std::vector<Bytes>(n));
    if (!st.ok()) {
      std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
      return out;
    }
    store->SetBypass(false);

    Rng rng(41);  // identical access sequence in both modes
    auto start = std::chrono::steady_clock::now();
    size_t in_epoch = 0;
    for (size_t b = 0; b < batches; ++b) {
      std::vector<BlockId> ids;
      std::vector<uint8_t> used(n, 0);
      while (ids.size() < batch) {
        BlockId id = rng.Uniform(n);
        if (!used[id]) {
          used[id] = 1;
          ids.push_back(id);
        }
      }
      auto result = oram.ReadBatch(ids);
      if (!result.ok()) {
        std::fprintf(stderr, "ReadBatch failed: %s\n", result.status().ToString().c_str());
        return out;
      }
      if (++in_epoch >= batches_per_epoch) {
        st = oram.FinishEpoch();
        if (!st.ok()) {
          std::fprintf(stderr, "FinishEpoch failed: %s\n", st.ToString().c_str());
          return out;
        }
        in_epoch = 0;
      }
    }
    if (in_epoch > 0) {
      (void)oram.FinishEpoch();
    }
    double wall_ms = MillisSince(start);
    double ops_per_sec = 1000.0 * static_cast<double>(batches * batch) / wall_ms;
    double mb = static_cast<double>(store->stats().bytes_received.load()) / 1e6;
    if (use_xor) {
      out.xor_ops_per_sec = ops_per_sec;
    } else {
      out.plain_ops_per_sec = ops_per_sec;
      plain_ms = wall_ms;
    }
    table.Row({use_xor ? "on" : "off", Fmt(wall_ms), FmtInt(static_cast<uint64_t>(ops_per_sec)),
               Fmt(mb, 2), use_xor ? Fmt(plain_ms / wall_ms, 2) + "x" : "1.0x"});
  }
  table.Print();
  return out;
}

void EmitJson(const PathBytesResult& path, const OramWireResult& wire,
              const BandwidthResult& bw) {
  double path_reduction = path.xor_per_path > 0 ? path.plain_per_path / path.xor_per_path : 0;
  double bw_speedup =
      bw.plain_ops_per_sec > 0 ? bw.xor_ops_per_sec / bw.plain_ops_per_sec : 0;
  Json root =
      Json::Object()
          .Set("bench", Json::Str("xor_read"))
          .Set("path_len", Json::Int(path.path_len))
          .Set("slot_bytes", Json::Int(path.slot_bytes))
          .Set("plain_bytes_per_path", Json::Num(path.plain_per_path, 1))
          .Set("xor_bytes_per_path", Json::Num(path.xor_per_path, 1))
          .Set("path_bytes_reduction", Json::Num(path_reduction, 2))
          .Set("path_bytes_bound_ok", Json::Bool(path.bound_ok))
          .Set("oram_bytes_per_access_plain", Json::Num(wire.plain_bytes_per_access, 1))
          .Set("oram_bytes_per_access_xor", Json::Num(wire.xor_bytes_per_access, 1))
          .Set("oram_xor_path_reads", Json::Int(wire.xor_paths))
          .Set("bandwidth_bytes_per_sec", Json::Int(bw.bandwidth_bytes_per_sec))
          .Set("bw_capped_ops_per_sec_plain", Json::Num(bw.plain_ops_per_sec, 1))
          .Set("bw_capped_ops_per_sec_xor", Json::Num(bw.xor_ops_per_sec, 1))
          .Set("bw_capped_speedup", Json::Num(bw_speedup, 2));
  if (WriteBenchJson("BENCH_xor_read.json", root)) {
    std::printf("%.1fx fewer bytes/path, %.2fx on the capped link\n", path_reduction,
                bw_speedup);
  }
}

void Run() {
  TuneAllocatorForBenchmarks();
  bool full = BenchFull();
  PathBytesResult path = RunPathBytes(full);
  OramWireResult wire = RunOramOverWire(full);
  BandwidthResult bw = RunBandwidthCapped(full);
  EmitJson(path, wire, bw);
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::Run();
  return 0;
}
