// Figure 10f: epoch size impact at the proxy level — application throughput
// as a function of epoch duration for SmallBank, FreeHealth, and TPC-C.
//
// Expected shape (paper): unimodal. Epochs too short starve long transactions
// (they straddle epoch boundaries and repeatedly abort); epochs too long
// leave the system idle waiting for the epoch to close.
#include "bench/bench_apps_common.h"

namespace obladi {
namespace {

void Run() {
  // Application benches run at the paper's absolute latencies by default
  // (local 300us, WAN 10ms) — i.e. 10x the microbench scale factor.
  double scale = BenchScale() * 10;
  double seconds = BenchSeconds();
  bool full = BenchFull();
  LatencyProfile local = LatencyProfile::LocalServer(scale);

  std::vector<uint64_t> intervals_us = {100, 200, 400, 800, 1600, 3200};

  Table table("Figure 10f — Epoch size impact on application throughput (txn/s)");
  // The pipeline columns report SmallBank's run: what fraction of epochs
  // overlapped their predecessor's retirement, how long epoch closes stalled
  // on the depth-1 pipeline cap, and the peak in-flight stash blocks.
  table.Columns({"batch_interval_us", "epoch_ms(SB)", "SmallBank", "FreeHealth", "TPC-C",
                 "ovl%(SB)", "stall_ms(SB)", "max_stash(SB)"});

  for (uint64_t interval : intervals_us) {
    std::vector<std::string> row = {FmtInt(interval)};
    bool first = true;
    ObladiStats pipeline_stats;
    for (AppKind kind : {AppKind::kSmallBank, AppKind::kFreeHealth, AppKind::kTpcc}) {
      auto workload = MakeAppWorkload(kind, full);
      auto records_probe = workload->InitialRecords();
      uint64_t capacity = records_probe.size() + records_probe.size() / 2 + 4096;
      ObladiConfig config = AppObladiConfig(kind, capacity);
      config.batch_interval_us = interval;
      auto base = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                      config.oram.slots_per_bucket(), 2);
      auto latency = std::make_shared<LatencyBucketStore>(base, local);
      latency->SetBypass(true);
      ObladiStore proxy(config, latency, nullptr);
      Status st = proxy.Load(records_probe);
      latency->SetBypass(false);
      if (!st.ok()) {
        std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
        std::abort();
      }
      if (first) {
        double epoch_ms = static_cast<double>(interval) *
                          static_cast<double>(config.read_batches_per_epoch) / 1000.0;
        row.push_back(Fmt(epoch_ms, 1));
        first = false;
      }
      proxy.Start();
      DriverOptions opts;
      opts.num_threads = 96;
      opts.duration_ms = static_cast<uint64_t>(seconds * 1000);
      opts.warmup_ms = 200;
      DriverResult result = RunWorkload(proxy, *workload, opts);
      proxy.Stop();
      row.push_back(Fmt(result.throughput_tps));
      if (kind == AppKind::kSmallBank) {
        pipeline_stats = proxy.stats();
      }
    }
    double ovl = pipeline_stats.epochs > 0 ? 100.0 *
                                                 static_cast<double>(pipeline_stats.epochs_overlapped) /
                                                 static_cast<double>(pipeline_stats.epochs)
                                           : 0.0;
    row.push_back(Fmt(ovl, 0) + "%");
    row.push_back(Fmt(static_cast<double>(pipeline_stats.retire_stall_us) / 1000.0, 1));
    row.push_back(FmtInt(pipeline_stats.max_inflight_stash_blocks));
    table.Row(row);
  }
  table.Print();
  WriteBenchJson("BENCH_fig10f_epoch_proxy.json",
                 Json::Object()
                     .Set("bench", Json::Str("fig10f_epoch_proxy"))
                     .Set("table", TableToJson(table)));
  std::printf("paper shape: unimodal — too-short epochs abort long transactions, "
              "too-long epochs idle\n");
  std::printf("pipeline: epoch N's ORAM write-back retires in the background while epoch "
              "N+1 executes (ovl%% > 0 means real overlap; stall_ms is time closes waited "
              "on the depth-1 cap)\n");
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
