// Figure 10a: ORAM throughput (ops/s) for Sequential vs Parallel vs
// ParallelCrypto executors across the four storage backends, batch size 500.
//
// Expected shape (paper): parallelism *hurts* on the zero-latency dummy
// backend (coordination overhead on a CPU-bound workload) and helps more the
// higher the storage latency — 12x on the local server, ~50x on Dynamo, and
// hundreds-of-x on the WAN backend.
#include "bench/bench_common.h"

namespace obladi {
namespace {

void Run() {
  double scale = BenchScale();
  double seconds = BenchSeconds();
  bool full = BenchFull();
  uint64_t n = full ? 100000 : 20000;
  uint32_t z = 16;  // (A=20, S=28): 11 tree levels at 20K, like the paper's setup
  size_t batch = 500;

  Table table("Figure 10a — Parallelism (batch size 500, ops/s)");
  table.Columns({"backend", "Sequential", "Parallel", "ParallelCrypto",
                 "par_speedup", "crypto_speedup"});

  for (const std::string backend : {"dummy", "server", "server_wan", "dynamo"}) {
    double results[3] = {0, 0, 0};
    for (int mode = 0; mode < 3; ++mode) {
      RingOramOptions options;
      options.parallel = mode != 0;
      options.defer_writes = mode != 0;
      options.parallel_crypto = mode == 2;
      options.io_threads = 192;
      auto env = MakeMicroOram(backend, n, z, /*payload=*/128, options, scale);
      // Sequential on high-latency backends is extremely slow; give it a
      // smaller batch budget but the same per-point wall time.
      double secs = mode == 0 && backend != "dummy" ? seconds * 2 : seconds;
      auto result = RunReadBatches(*env.oram, n, batch, /*batches_per_epoch=*/1, secs);
      results[mode] = result.ops_per_sec;
    }
    table.Row({backend, Fmt(results[0]), Fmt(results[1]), Fmt(results[2]),
               Fmt(results[1] / results[0], 2), Fmt(results[2] / results[0], 2)});
  }
  table.Print();
  WriteBenchJson("BENCH_fig10a_parallelism.json",
                 Json::Object()
                     .Set("bench", Json::Str("fig10a_parallelism"))
                     .Set("table", TableToJson(table)));
  std::printf("paper shape: dummy slows down under parallelism; speedup grows with "
              "storage latency (server < dynamo < WAN)\n");
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
