// Observability overhead: SmallBank at the Figure 10f proxy configuration,
// run with the flight recorder fully off and fully on (span tracer +
// metrics registry + admin listener + trace-shape watchdog). The tracer
// sits on every epoch close/retire, RPC, and server op; the watchdog adds
// a mutexed tally per per-shard sub-batch. Acceptance bar for the
// subsystem (ISSUE): <= 2% mean throughput loss.
#include <algorithm>
#include <memory>
#include <vector>

#include "bench/bench_apps_common.h"
#include "src/obs/trace.h"

namespace obladi {
namespace {

struct RunOutcome {
  double tps = 0;
  uint64_t committed = 0;
  uint64_t spans = 0;
};

RunOutcome RunOnce(bool observed, double scale, double seconds, bool full) {
  auto workload = MakeAppWorkload(AppKind::kSmallBank, full);
  auto records = workload->InitialRecords();
  uint64_t capacity = records.size() + records.size() / 2 + 4096;
  ObladiConfig config = AppObladiConfig(AppKind::kSmallBank, capacity);
  if (observed) {
    config.obs.trace = true;
    config.obs.metrics = true;
    config.obs.admin_listener = true;  // scrape thread parked on accept()
    config.obs.watchdog = true;
  }

  LatencyProfile local = LatencyProfile::LocalServer(scale);
  auto base = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                  config.oram.slots_per_bucket(), 2);
  auto latency = std::make_shared<LatencyBucketStore>(base, local);
  latency->SetBypass(true);
  ObladiStore proxy(config, latency, nullptr);
  Status st = proxy.Load(records);
  latency->SetBypass(false);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  proxy.Start();

  DriverOptions opts;
  opts.num_threads = 96;
  opts.duration_ms = static_cast<uint64_t>(seconds * 1000);
  opts.warmup_ms = 200;
  DriverResult result = RunWorkload(proxy, *workload, opts);
  proxy.Stop();

  RunOutcome out;
  out.tps = result.throughput_tps;
  out.committed = result.committed;
  if (observed) {
    out.spans = Tracer::Get().CollectedCount();
    // The tracer is process-global; disarm and drop the rings so the next
    // plain arm starts from the one-relaxed-load fast path.
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
  return out;
}

void Run() {
  double scale = BenchScale() * 10;  // app benches run at absolute latencies
  double seconds = BenchSeconds();
  bool full = BenchFull();
  const int kTrials = 3;

  Table table("Observability overhead — SmallBank, Fig 10f proxy config (96 clients)");
  table.Columns({"trial", "plain_tps", "observed_tps", "overhead%", "spans"});

  // Discard one cold run: the first workload in the process runs ahead of
  // the steady state (thread/allocator spin-up) and would inflate whichever
  // arm went first.
  (void)RunOnce(/*observed=*/false, scale, seconds * 0.5, full);

  double plain_sum = 0;
  double observed_sum = 0;
  std::vector<double> overheads;
  uint64_t spans = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    // Interleave the arms so drift (allocator warmup, frequency scaling)
    // lands on both sides evenly.
    RunOutcome plain = RunOnce(/*observed=*/false, scale, seconds, full);
    RunOutcome observed = RunOnce(/*observed=*/true, scale, seconds, full);
    plain_sum += plain.tps;
    observed_sum += observed.tps;
    spans = observed.spans;
    double overhead =
        plain.tps > 0 ? 100.0 * (plain.tps - observed.tps) / plain.tps : 0.0;
    overheads.push_back(overhead);
    table.Row({FmtInt(trial + 1), Fmt(plain.tps), Fmt(observed.tps), Fmt(overhead, 2),
               FmtInt(spans)});
  }
  double mean_overhead =
      plain_sum > 0 ? 100.0 * (plain_sum - observed_sum) / plain_sum : 0.0;
  // Headline is the MEDIAN per-trial overhead: this workload config
  // occasionally breaks its pacing bound and runs ~1.5x for one arm of one
  // trial (pre-existing; the audit-overhead bench shows it too), which
  // would swamp a mean-of-sums with a single outlier in either direction.
  std::sort(overheads.begin(), overheads.end());
  double median_overhead = overheads[overheads.size() / 2];
  table.Row({"mean", Fmt(plain_sum / kTrials), Fmt(observed_sum / kTrials),
             Fmt(mean_overhead, 2), FmtInt(spans)});
  table.Row({"median", "-", "-", Fmt(median_overhead, 2), "-"});
  table.Print();
  WriteBenchJson("BENCH_obs_overhead.json",
                 Json::Object()
                     .Set("bench", Json::Str("obs_overhead"))
                     .Set("median_overhead_pct", Json::Num(median_overhead, 2))
                     .Set("mean_overhead_pct", Json::Num(mean_overhead, 2))
                     .Set("spans_last_trial", Json::Int(spans))
                     .Set("table", TableToJson(table)));
  std::printf("acceptance bar: full observability (trace + metrics + scrape listener + "
              "watchdog) <= 2%% of plain throughput "
              "(median over %d interleaved trials: %.2f%%)\n",
              kTrials, median_overhead);
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
