// Table 11b: durability cost and recovery-time breakdown for ORAM sizes
// 10K / 100K / 1M objects (Z=100, like the paper: 7 / 11 / 14 tree levels).
//
// Rows reproduced: Levels, Slowdown (durable vs non-durable throughput),
// RecTime (total recovery time), Network (bytes fetched during recovery),
// Pos / Perm (position & permutation map decrypt+rebuild time), Paths
// (logged-path replay time).
//
// Expected shape (paper): slowdown mild (0.83-0.89x); RecTime grows with N;
// Pos/Perm grow with the number of keys while Paths starts larger and grows
// only with tree depth.
#include "bench/bench_common.h"
#include "src/recovery/recovery_unit.h"

namespace obladi {
namespace {

struct SizeResult {
  uint32_t levels = 0;
  double slowdown = 0;
  double rec_time_ms = 0;
  double network_kb = 0;
  double pos_ms = 0;
  double perm_ms = 0;
  double paths_ms = 0;
};

double DriveBatches(RingOram& oram, uint64_t n, bool durable, RecoveryUnit* recovery,
                    double seconds, size_t batch = 200, size_t batches_per_epoch = 2) {
  Rng rng(durable ? 5 : 6);
  uint64_t start = NowMicros();
  uint64_t deadline = start + static_cast<uint64_t>(seconds * 1e6);
  uint64_t ops = 0;
  std::vector<uint8_t> used(n, 0);
  while (NowMicros() < deadline) {
    for (size_t b = 0; b < batches_per_epoch; ++b) {
      std::vector<BlockId> ids;
      while (ids.size() < batch) {
        BlockId id = rng.Uniform(n);
        if (!used[id]) {
          used[id] = 1;
          ids.push_back(id);
        }
      }
      for (BlockId id : ids) {
        used[id] = 0;
      }
      auto result = oram.ReadBatch(ids);
      if (!result.ok()) {
        std::fprintf(stderr, "batch failed: %s\n", result.status().ToString().c_str());
        std::abort();
      }
      ops += ids.size();
    }
    (void)oram.FinishEpoch();
    if (durable && recovery != nullptr) {
      (void)recovery->LogEpochCommit(oram);
    }
  }
  return static_cast<double>(ops) / (static_cast<double>(NowMicros() - start) / 1e6);
}

SizeResult RunSize(uint64_t n, double scale, double seconds) {
  SizeResult out;
  RingOramOptions options;
  options.parallel = true;
  options.defer_writes = true;
  options.io_threads = 192;
  options.verify_decoded_ids = false;

  // Baseline throughput without durability.
  {
    auto env = MakeMicroOram("dummy", n, /*z=*/100, /*payload=*/64, options, scale);
    out.levels = env.config.num_levels;
    double base_tput = DriveBatches(*env.oram, n, false, nullptr, seconds);

    // Durable run on a fresh instance with path logging + checkpoints.
    auto env2 = MakeMicroOram("dummy", n, 100, 64, options, scale, /*seed=*/2);
    auto log_base = std::make_shared<MemoryLogStore>();
    auto log = std::make_shared<LatencyLogStore>(log_base, LatencyProfile::WanServer(scale));
    auto encryptor = std::make_shared<Encryptor>(
        Encryptor::FromMasterKey(BytesFromString("rk"), false, 4));
    RecoveryConfig rcfg;
    rcfg.full_checkpoint_interval = 8;
    rcfg.posmap_delta_pad_entries = 2 * 200;
    auto recovery = std::make_unique<RecoveryUnit>(rcfg, log, encryptor);
    Status st = recovery->LogFullCheckpoint(*env2.oram);
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
      std::abort();
    }
    env2.oram->SetBatchPlannedHook(
        [&](const BatchPlan& plan) { return recovery->LogReadBatchPlan(plan); });
    double durable_tput = DriveBatches(*env2.oram, n, true, recovery.get(), seconds);
    out.slowdown = durable_tput / base_tput;

    // Crash mid-epoch: run one more batch whose epoch never commits.
    {
      Rng rng(9);
      std::vector<BlockId> ids;
      std::vector<uint8_t> used(n, 0);
      while (ids.size() < 200) {
        BlockId id = rng.Uniform(n);
        if (!used[id]) {
          used[id] = 1;
          ids.push_back(id);
        }
      }
      auto result = env2.oram->ReadBatch(ids);
      if (!result.ok()) {
        std::abort();
      }
    }

    // Proxy dies; recover on a fresh RingOram.
    log->stats();  // (bytes counted cumulatively; measure the recovery delta)
    uint64_t bytes_before = log->stats().bytes_read.load();
    Stopwatch total;
    auto recovered = recovery->Recover();
    if (!recovered.ok() || !recovered->has_state || recovered->shards.size() != 1) {
      std::fprintf(stderr, "recovery failed\n");
      std::abort();
    }
    auto& shard0 = recovered->shards[0];
    auto env3 = MakeMicroOram("dummy", n, 100, 64, options, scale, /*seed=*/3);
    Status rst = env3.oram->RestoreState(std::move(shard0.position_map),
                                         std::move(shard0.metas),
                                         std::move(shard0.stash),
                                         shard0.access_count, shard0.evict_count,
                                         recovered->epoch);
    if (!rst.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", rst.ToString().c_str());
      std::abort();
    }
    Stopwatch replay;
    for (const RecoveryUnit::PendingPlan& pending : recovered->pending_plans) {
      auto r = env3.oram->ReplayReadBatch(pending.plan);
      if (!r.ok()) {
        std::fprintf(stderr, "replay failed: %s\n", r.status().ToString().c_str());
        std::abort();
      }
    }
    (void)env3.oram->FinishEpoch();
    out.paths_ms = static_cast<double>(replay.ElapsedMicros()) / 1000.0;
    out.rec_time_ms = static_cast<double>(total.ElapsedMicros()) / 1000.0;
    out.pos_ms = static_cast<double>(recovered->breakdown.pos_us) / 1000.0;
    out.perm_ms = static_cast<double>(recovered->breakdown.perm_us) / 1000.0;
    out.network_kb =
        static_cast<double>(log->stats().bytes_read.load() - bytes_before) / 1024.0;
  }
  return out;
}

void Run() {
  double scale = BenchScale();
  double seconds = BenchSeconds();
  bool full = BenchFull();

  std::vector<std::pair<const char*, uint64_t>> sizes = {{"10K", 10000}, {"100K", 100000}};
  if (full) {
    sizes.emplace_back("1M", 1000000);
  }

  Table table("Table 11b — Durability & recovery (Z=100, WAN log)");
  table.Columns({"size", "Levels", "Slowdown", "RecTime_ms", "Network_KB", "Pos_ms",
                 "Perm_ms", "Paths_ms"});
  for (const auto& [label, n] : sizes) {
    SizeResult r = RunSize(n, scale, seconds);
    table.Row({label, FmtInt(r.levels), Fmt(r.slowdown, 2), Fmt(r.rec_time_ms, 1),
               Fmt(r.network_kb, 1), Fmt(r.pos_ms, 2), Fmt(r.perm_ms, 2),
               Fmt(r.paths_ms, 2)});
  }
  table.Print();
  WriteBenchJson("BENCH_table11b_recovery.json",
                 Json::Object()
                     .Set("bench", Json::Str("table11b_recovery"))
                     .Set("table", TableToJson(table)));
  std::printf("paper shape: levels 7/11/14; slowdown ~0.83-0.89; Pos/Perm grow with N; "
              "Paths grows with tree depth only. Set OBLADI_BENCH_FULL=1 for the 1M row.\n");
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
