// Figure 10e: epoch size impact at the ORAM level — relative throughput
// increase as the number of batches per epoch grows (batch size 500).
//
// Expected shape (paper): near-logarithmic growth — longer epochs buffer more
// buckets at the proxy, so more reads are served locally and duplicate bucket
// writes collapse; metadata computation eventually bottlenecks the dummy
// backend. The paper reports 41 physical requests per logical op with one
// batch per epoch, dropping to 24 with eight; we print the same metric.
#include "bench/bench_common.h"

namespace obladi {
namespace {

void Run() {
  double scale = BenchScale();
  double seconds = BenchSeconds();
  bool full = BenchFull();
  uint64_t n = full ? 100000 : 20000;
  uint32_t z = 16;
  size_t batch = 500;

  std::vector<size_t> epoch_sizes = {1, 2, 8, 32, 128};

  Table table("Figure 10e — Epoch size impact (relative throughput vs 1 batch/epoch)");
  std::vector<std::string> headers = {"batches/epoch"};
  for (const std::string backend : {"dummy", "server", "server_wan", "dynamo"}) {
    headers.push_back(backend);
  }
  headers.push_back("phys_reqs/op(server)");
  table.Columns(headers);

  std::map<std::string, double> baselines;
  std::map<size_t, std::map<std::string, double>> tput;
  std::map<size_t, double> reqs_per_op;

  for (const std::string backend : {"dummy", "server", "server_wan", "dynamo"}) {
    RingOramOptions options;
    options.parallel = true;
    options.defer_writes = true;
    options.io_threads = 192;
    auto env = MakeMicroOram(backend, n, z, 128, options, scale);
    for (size_t epoch : epoch_sizes) {
      auto result = RunReadBatches(*env.oram, n, batch, epoch, seconds, epoch * 13 + 7);
      tput[epoch][backend] = result.ops_per_sec;
      if (backend == "server") {
        reqs_per_op[epoch] = result.physical_reqs_per_op;
      }
    }
    baselines[backend] = tput[1][backend];
  }

  for (size_t epoch : epoch_sizes) {
    std::vector<std::string> row = {FmtInt(epoch)};
    for (const std::string backend : {"dummy", "server", "server_wan", "dynamo"}) {
      row.push_back(Fmt(tput[epoch][backend] / baselines[backend], 2));
    }
    row.push_back(Fmt(reqs_per_op[epoch], 1));
    table.Row(row);
  }
  table.Print();
  WriteBenchJson("BENCH_fig10e_epoch_oram.json",
                 Json::Object()
                     .Set("bench", Json::Str("fig10e_epoch_oram"))
                     .Set("table", TableToJson(table)));
  std::printf("paper shape: throughput grows ~logarithmically with epoch size; physical "
              "requests per logical op fall (paper: 41 -> 24 from 1 to 8 batches)\n");
}

}  // namespace
}  // namespace obladi

int main() {
  obladi::TuneAllocatorForBenchmarks();
  obladi::Run();
  return 0;
}
