# Empty dependencies file for bench_fig10bc_batch.
# This may be replaced when dependencies are built.
