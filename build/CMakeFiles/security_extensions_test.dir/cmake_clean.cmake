file(REMOVE_RECURSE
  "CMakeFiles/security_extensions_test.dir/tests/security_extensions_test.cc.o"
  "CMakeFiles/security_extensions_test.dir/tests/security_extensions_test.cc.o.d"
  "security_extensions_test"
  "security_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
