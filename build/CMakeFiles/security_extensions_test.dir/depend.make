# Empty dependencies file for security_extensions_test.
# This may be replaced when dependencies are built.
