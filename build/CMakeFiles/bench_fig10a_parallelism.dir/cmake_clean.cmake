file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_parallelism.dir/bench/bench_fig10a_parallelism.cc.o"
  "CMakeFiles/bench_fig10a_parallelism.dir/bench/bench_fig10a_parallelism.cc.o.d"
  "bench_fig10a_parallelism"
  "bench_fig10a_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
