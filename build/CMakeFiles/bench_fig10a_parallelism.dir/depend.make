# Empty dependencies file for bench_fig10a_parallelism.
# This may be replaced when dependencies are built.
