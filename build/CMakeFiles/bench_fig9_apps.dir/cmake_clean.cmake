file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_apps.dir/bench/bench_fig9_apps.cc.o"
  "CMakeFiles/bench_fig9_apps.dir/bench/bench_fig9_apps.cc.o.d"
  "bench_fig9_apps"
  "bench_fig9_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
