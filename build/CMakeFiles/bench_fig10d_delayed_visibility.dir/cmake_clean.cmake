file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10d_delayed_visibility.dir/bench/bench_fig10d_delayed_visibility.cc.o"
  "CMakeFiles/bench_fig10d_delayed_visibility.dir/bench/bench_fig10d_delayed_visibility.cc.o.d"
  "bench_fig10d_delayed_visibility"
  "bench_fig10d_delayed_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10d_delayed_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
