# Empty dependencies file for bench_fig10d_delayed_visibility.
# This may be replaced when dependencies are built.
