file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_workred.dir/bench/bench_ablation_workred.cc.o"
  "CMakeFiles/bench_ablation_workred.dir/bench/bench_ablation_workred.cc.o.d"
  "bench_ablation_workred"
  "bench_ablation_workred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_workred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
