# Empty dependencies file for bench_ablation_workred.
# This may be replaced when dependencies are built.
