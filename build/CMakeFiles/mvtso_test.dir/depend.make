# Empty dependencies file for mvtso_test.
# This may be replaced when dependencies are built.
