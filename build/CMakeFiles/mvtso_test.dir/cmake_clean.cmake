file(REMOVE_RECURSE
  "CMakeFiles/mvtso_test.dir/tests/mvtso_test.cc.o"
  "CMakeFiles/mvtso_test.dir/tests/mvtso_test.cc.o.d"
  "mvtso_test"
  "mvtso_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvtso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
