# Empty dependencies file for oram_path_test.
# This may be replaced when dependencies are built.
