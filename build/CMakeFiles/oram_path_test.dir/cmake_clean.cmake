file(REMOVE_RECURSE
  "CMakeFiles/oram_path_test.dir/tests/oram_path_test.cc.o"
  "CMakeFiles/oram_path_test.dir/tests/oram_path_test.cc.o.d"
  "oram_path_test"
  "oram_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oram_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
