# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for oram_path_test.
