file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10e_epoch_oram.dir/bench/bench_fig10e_epoch_oram.cc.o"
  "CMakeFiles/bench_fig10e_epoch_oram.dir/bench/bench_fig10e_epoch_oram.cc.o.d"
  "bench_fig10e_epoch_oram"
  "bench_fig10e_epoch_oram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10e_epoch_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
