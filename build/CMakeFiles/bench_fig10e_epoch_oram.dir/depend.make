# Empty dependencies file for bench_fig10e_epoch_oram.
# This may be replaced when dependencies are built.
