# Empty dependencies file for example_medical_records.
# This may be replaced when dependencies are built.
