file(REMOVE_RECURSE
  "CMakeFiles/example_medical_records.dir/examples/medical_records.cpp.o"
  "CMakeFiles/example_medical_records.dir/examples/medical_records.cpp.o.d"
  "example_medical_records"
  "example_medical_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_medical_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
