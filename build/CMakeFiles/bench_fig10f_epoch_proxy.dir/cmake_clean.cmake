file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10f_epoch_proxy.dir/bench/bench_fig10f_epoch_proxy.cc.o"
  "CMakeFiles/bench_fig10f_epoch_proxy.dir/bench/bench_fig10f_epoch_proxy.cc.o.d"
  "bench_fig10f_epoch_proxy"
  "bench_fig10f_epoch_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10f_epoch_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
