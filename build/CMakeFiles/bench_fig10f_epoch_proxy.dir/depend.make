# Empty dependencies file for bench_fig10f_epoch_proxy.
# This may be replaced when dependencies are built.
