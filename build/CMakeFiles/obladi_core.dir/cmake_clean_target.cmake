file(REMOVE_RECURSE
  "libobladi_core.a"
)
