# Empty dependencies file for obladi_core.
# This may be replaced when dependencies are built.
