
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/twopl_store.cc" "CMakeFiles/obladi_core.dir/src/baseline/twopl_store.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/baseline/twopl_store.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/obladi_core.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/crypto/chacha20.cc" "CMakeFiles/obladi_core.dir/src/crypto/chacha20.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/crypto/chacha20.cc.o.d"
  "/root/repo/src/crypto/csprng.cc" "CMakeFiles/obladi_core.dir/src/crypto/csprng.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/crypto/csprng.cc.o.d"
  "/root/repo/src/crypto/encryptor.cc" "CMakeFiles/obladi_core.dir/src/crypto/encryptor.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/crypto/encryptor.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "CMakeFiles/obladi_core.dir/src/crypto/hmac.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "CMakeFiles/obladi_core.dir/src/crypto/sha256.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/crypto/sha256.cc.o.d"
  "/root/repo/src/oram/block_codec.cc" "CMakeFiles/obladi_core.dir/src/oram/block_codec.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/oram/block_codec.cc.o.d"
  "/root/repo/src/oram/config.cc" "CMakeFiles/obladi_core.dir/src/oram/config.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/oram/config.cc.o.d"
  "/root/repo/src/oram/ring_oram.cc" "CMakeFiles/obladi_core.dir/src/oram/ring_oram.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/oram/ring_oram.cc.o.d"
  "/root/repo/src/proxy/obladi_store.cc" "CMakeFiles/obladi_core.dir/src/proxy/obladi_store.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/proxy/obladi_store.cc.o.d"
  "/root/repo/src/recovery/recovery_unit.cc" "CMakeFiles/obladi_core.dir/src/recovery/recovery_unit.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/recovery/recovery_unit.cc.o.d"
  "/root/repo/src/shard/sharded_oram_set.cc" "CMakeFiles/obladi_core.dir/src/shard/sharded_oram_set.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/shard/sharded_oram_set.cc.o.d"
  "/root/repo/src/storage/file_log_store.cc" "CMakeFiles/obladi_core.dir/src/storage/file_log_store.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/storage/file_log_store.cc.o.d"
  "/root/repo/src/storage/latency_store.cc" "CMakeFiles/obladi_core.dir/src/storage/latency_store.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/storage/latency_store.cc.o.d"
  "/root/repo/src/storage/memory_store.cc" "CMakeFiles/obladi_core.dir/src/storage/memory_store.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/storage/memory_store.cc.o.d"
  "/root/repo/src/txn/mvtso.cc" "CMakeFiles/obladi_core.dir/src/txn/mvtso.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/txn/mvtso.cc.o.d"
  "/root/repo/src/workload/driver.cc" "CMakeFiles/obladi_core.dir/src/workload/driver.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/workload/driver.cc.o.d"
  "/root/repo/src/workload/freehealth.cc" "CMakeFiles/obladi_core.dir/src/workload/freehealth.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/workload/freehealth.cc.o.d"
  "/root/repo/src/workload/smallbank.cc" "CMakeFiles/obladi_core.dir/src/workload/smallbank.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/workload/smallbank.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "CMakeFiles/obladi_core.dir/src/workload/tpcc.cc.o" "gcc" "CMakeFiles/obladi_core.dir/src/workload/tpcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
