file(REMOVE_RECURSE
  "CMakeFiles/bench_table11b_recovery.dir/bench/bench_table11b_recovery.cc.o"
  "CMakeFiles/bench_table11b_recovery.dir/bench/bench_table11b_recovery.cc.o.d"
  "bench_table11b_recovery"
  "bench_table11b_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11b_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
