# Empty dependencies file for bench_table11b_recovery.
# This may be replaced when dependencies are built.
