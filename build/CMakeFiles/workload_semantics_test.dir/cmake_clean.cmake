file(REMOVE_RECURSE
  "CMakeFiles/workload_semantics_test.dir/tests/workload_semantics_test.cc.o"
  "CMakeFiles/workload_semantics_test.dir/tests/workload_semantics_test.cc.o.d"
  "workload_semantics_test"
  "workload_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
