# Empty dependencies file for workload_semantics_test.
# This may be replaced when dependencies are built.
