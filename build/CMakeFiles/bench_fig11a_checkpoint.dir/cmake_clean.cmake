file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_checkpoint.dir/bench/bench_fig11a_checkpoint.cc.o"
  "CMakeFiles/bench_fig11a_checkpoint.dir/bench/bench_fig11a_checkpoint.cc.o.d"
  "bench_fig11a_checkpoint"
  "bench_fig11a_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
