# Empty dependencies file for bench_fig11a_checkpoint.
# This may be replaced when dependencies are built.
