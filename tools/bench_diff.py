#!/usr/bin/env python3
"""Diff a fresh bench JSON against its checked-in baseline.

Walks both documents in lockstep and reports every numeric leaf whose
relative drift exceeds the threshold, keying array elements by their
identifying fields (shards/pipelined/pipeline_depth/outstanding/pool/...)
rather than position, so reordering or appending cells is not "drift".

Throughput REGRESSIONS gate: a throughput-like leaf (txn_per_sec,
reads_per_sec, *_speedup, *_vs_* ratios) dropping more than the threshold
below its baseline exits 1 and fails CI. Set BENCH_DIFF_WARN_ONLY=1 to
demote that to a warning (noisy shared runner, or a PR that knowingly
trades throughput and will regenerate the baselines). All other drift —
improvements, non-throughput leaves — is report-only: the trajectory stays
visible in every PR log without gating on noise. --gate escalates ALL
drift to exit 1 for local perf work on quiet machines.

Usage:
  tools/bench_diff.py BASELINE CANDIDATE [--threshold 0.25] [--gate]
"""

import argparse
import json
import os
import sys

# Fields that identify an array element (used to match cells across files).
KEY_FIELDS = ("shards", "pipelined", "pipeline_depth", "outstanding", "pool",
              "backend", "mode", "name")

# Leaves that are configuration, not measurement: drift here means the bench
# definition changed and the baseline must be regenerated, so say that
# instead of reporting a percentage.
CONFIG_FIELDS = {"bench", "service_time_us", "gc_shards", "gc_buckets"}

# Raw totals that scale with OBLADI_BENCH_SECONDS (stall time, event counts
# over the run): meaningless to compare across runs of different lengths, so
# skipped — the per-second rates carry the signal.
DURATION_FIELDS = {"retire_stall_ms", "sched_overlapped_accesses",
                   "stash_budget_stalls"}


def is_throughput(leaf):
    """Higher-is-better rate/ratio leaves whose regressions gate CI."""
    return any(tag in leaf for tag in ("per_sec", "tps", "throughput",
                                       "speedup", "_vs_"))


def element_key(el):
    if not isinstance(el, dict):
        return None
    key = tuple((f, el[f]) for f in KEY_FIELDS if f in el)
    return key if key else None


def walk(path, base, cand, drifts, threshold):
    if isinstance(base, dict) and isinstance(cand, dict):
        for k in base:
            if k not in cand:
                drifts.append((path + "/" + k, "missing from candidate", None, False))
                continue
            walk(path + "/" + k, base[k], cand[k], drifts, threshold)
        for k in cand:
            if k not in base:
                drifts.append((path + "/" + k, "new in candidate", None, False))
    elif isinstance(base, list) and isinstance(cand, list):
        keyed = {element_key(el): el for el in cand}
        if None in keyed and len(cand) > 1:
            # Unkeyed elements: fall back to positional matching.
            for i, (b, c) in enumerate(zip(base, cand)):
                walk("%s[%d]" % (path, i), b, c, drifts, threshold)
            return
        for el in base:
            key = element_key(el)
            label = path + str(dict(key) if key else "[?]")
            if key not in keyed:
                drifts.append((label, "cell missing from candidate", None, False))
                continue
            walk(label, el, keyed[key], drifts, threshold)
    elif isinstance(base, bool) or isinstance(cand, bool):
        if base != cand:
            drifts.append((path, "changed %r -> %r" % (base, cand), None, False))
    elif isinstance(base, (int, float)) and isinstance(cand, (int, float)):
        leaf = path.rsplit("/", 1)[-1]
        if leaf in DURATION_FIELDS:
            return
        if leaf in CONFIG_FIELDS:
            if base != cand:
                drifts.append((path, "config changed %r -> %r (regenerate baseline)"
                               % (base, cand), None, False))
            return
        if base == cand:
            return
        denom = max(abs(base), abs(cand), 1e-9)
        rel = abs(cand - base) / denom
        if rel > threshold:
            regression = is_throughput(leaf) and cand < base
            drifts.append((path, "%.6g -> %.6g" % (base, cand), rel, regression))
    elif base != cand:
        drifts.append((path, "changed %r -> %r" % (base, cand), None, False))


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative drift to report (default 0.25 = 25%%)")
    ap.add_argument("--gate", action="store_true",
                    help="exit 1 on drift instead of warn-only")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)

    drifts = []
    walk("", base, cand, drifts, args.threshold)

    name = base.get("bench", args.baseline) if isinstance(base, dict) else args.baseline
    if not drifts:
        print("bench_diff [%s]: within %.0f%% of baseline" % (name, args.threshold * 100))
        return 0
    print("bench_diff [%s]: %d leaves drifted past %.0f%%:"
          % (name, len(drifts), args.threshold * 100))
    regressions = []
    for path, desc, rel, regression in drifts:
        suffix = "  (%+.0f%%)" % (rel * 100) if rel is not None else ""
        tag = "  [THROUGHPUT REGRESSION]" if regression else ""
        print("  %-60s %s%s%s" % (path, desc, suffix, tag))
        if regression:
            regressions.append(path)
    if args.gate:
        return 1
    if regressions:
        if os.environ.get("BENCH_DIFF_WARN_ONLY") == "1":
            print("(%d throughput regression(s); BENCH_DIFF_WARN_ONLY=1 set, "
                  "not failing the build)" % len(regressions))
            return 0
        print("%d throughput regression(s) past %.0f%% — failing the build "
              "(set BENCH_DIFF_WARN_ONLY=1 to demote to a warning)"
              % (len(regressions), args.threshold * 100))
        return 1
    print("(warn-only drift: not failing the build)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
