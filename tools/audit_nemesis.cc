// audit_nemesis: runs the fault-injecting nemesis workload against a full
// loopback deployment and writes the recorded client traces for audit_check.
//
//   audit_nemesis [--duration-ms=N] [--clients=N] [--shards=N]
//                 [--zipf=THETA] [--fault-period-ms=N] [--seed=N]
//                 [--no-storage-kill] [--no-proxy-crash]
//                 [--partition] [--slow-disk] [--clock-skew]
//                 [--progress-timeout-ms=N] [--pipeline-depth=N]
//                 [--heartbeat-ms=N] [--metrics-out=PATH]
//                 [--data-dir=DIR] --trace-dir=DIR
//
// Chaos scenarios (combinable; usually run with --no-storage-kill
// --no-proxy-crash so one fault class is isolated per run):
//   --partition   per-shard deployment; blackhole one shard's link
//                 mid-epoch through a fault relay, hold, heal, recover
//   --slow-disk   fsync-stall the storage node's WAL during retirement
//   --clock-skew  jump the proxy's claimed-timestamp offset (order-
//                 preserving, so audit_check must still pass)
//   --kill-primary / --kill-replica
//                 replicated deployment (--replicas, default 2 in these
//                 modes; --write-quorum): blackhole the initial primary /
//                 a follower mid-epoch, hold, heal — NO proxy crash.
//                 Commits must keep flowing through automatic failover
//                 and the healed replica must resync; these runs assert
//                 failovers > 0, resyncs > 0, and that the longest commit
//                 stall stays within --stall-budget-ms (default 1500).
//
// A progress watchdog (default 30 s, --progress-timeout-ms=0 to disable)
// exits 3 and prints the scenario seed if any client thread stops finishing
// attempts — a hung client must fail the run, not silently shrink it.
//
// With --heartbeat-ms a one-line progress report prints periodically (long
// fault-injection runs otherwise look hung while recoveries stall commits).
// The final proxy metrics are dumped as JSON lines next to the traces
// (override the path with --metrics-out, or pass --metrics-out=- to skip).
//
// Prints run statistics (throughput, recoveries, restarts, trace bytes) and
// exits 0 on a completed run; the serializability verdict is audit_check's
// job, not this tool's.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/audit/nemesis.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: audit_nemesis [--duration-ms=N] [--clients=N] [--shards=N] "
               "[--zipf=THETA]\n                     [--fault-period-ms=N] [--seed=N] "
               "[--no-storage-kill] [--no-proxy-crash]\n                     "
               "[--partition] [--slow-disk] [--clock-skew] "
               "[--progress-timeout-ms=N]\n                     "
               "[--pipeline-depth=N] "
               "[--heartbeat-ms=N] [--metrics-out=PATH]\n                     "
               "[--replicas=N] [--write-quorum=N] [--kill-primary] "
               "[--kill-replica]\n                     "
               "[--stall-budget-ms=N] [--data-dir=DIR] --trace-dir=DIR\n");
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name, std::string& out) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  obladi::NemesisOptions options;
  options.progress_timeout_ms = 30000;  // hung-client watchdog on by default
  uint64_t stall_budget_ms = 1500;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (ParseFlag(arg, "duration-ms", value)) {
      options.duration_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "clients", value)) {
      options.num_clients = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "shards", value)) {
      options.num_shards = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "zipf", value)) {
      options.zipf_theta = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "fault-period-ms", value)) {
      options.fault_period_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "seed", value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "heartbeat-ms", value)) {
      options.heartbeat_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "metrics-out", value)) {
      options.metrics_out = value;
    } else if (ParseFlag(arg, "data-dir", value)) {
      options.data_dir = value;
    } else if (ParseFlag(arg, "trace-dir", value)) {
      options.trace_dir = value;
    } else if (ParseFlag(arg, "progress-timeout-ms", value)) {
      options.progress_timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "pipeline-depth", value)) {
      options.pipeline_depth = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--no-storage-kill") {
      options.kill_storage = false;
    } else if (arg == "--no-proxy-crash") {
      options.crash_proxy = false;
    } else if (ParseFlag(arg, "replicas", value)) {
      options.replicas = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "write-quorum", value)) {
      options.write_quorum =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "stall-budget-ms", value)) {
      stall_budget_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--kill-primary") {
      options.kill_primary = true;
    } else if (arg == "--kill-replica") {
      options.kill_replica = true;
    } else if (arg == "--partition") {
      options.partition_shard = true;
    } else if (arg == "--slow-disk") {
      options.slow_disk = true;
    } else if (arg == "--clock-skew") {
      options.clock_skew = true;
    } else {
      return Usage();
    }
  }
  if (options.trace_dir.empty()) {
    return Usage();
  }
  const bool replica_kill = options.kill_primary || options.kill_replica;
  if (replica_kill) {
    // Replica loss must be carried by quorum writes + automatic failover
    // alone; a concurrent proxy crash or storage kill would make the
    // commit-stall assertion below unfair.
    options.kill_storage = false;
    options.crash_proxy = false;
  }

  auto result = obladi::RunNemesis(options);
  if (!result.ok()) {
    std::fprintf(stderr, "audit_nemesis: %s\n", result.status().ToString().c_str());
    return 2;
  }
  std::printf(
      "nemesis run complete: %.1f tps, %llu committed, %llu failed, "
      "%llu attempts, %llu retries (%.3f aborts/committed)\n",
      result->driver.throughput_tps,
      static_cast<unsigned long long>(result->driver.committed),
      static_cast<unsigned long long>(result->driver.failed),
      static_cast<unsigned long long>(result->driver.attempts),
      static_cast<unsigned long long>(result->driver.retries),
      result->driver.aborts_per_committed_txn);
  std::printf(
      "faults: %llu storage restarts, %llu proxy recoveries, %llu partitions, "
      "%llu WAL stalls, %llu skew jumps, %llu injected; traces: %llu bytes "
      "in %s (%llu txn records)\n",
      static_cast<unsigned long long>(result->storage_restarts),
      static_cast<unsigned long long>(result->proxy_recoveries),
      static_cast<unsigned long long>(result->partitions),
      static_cast<unsigned long long>(result->wal_stalls),
      static_cast<unsigned long long>(result->skew_jumps),
      static_cast<unsigned long long>(result->faults_injected),
      static_cast<unsigned long long>(result->driver.audit_trace_bytes),
      options.trace_dir.c_str(),
      static_cast<unsigned long long>(result->history.txns.size()));
  if (replica_kill || options.replicas > 1) {
    std::printf(
        "replication: %llu failovers, %llu resyncs (%llu epochs replayed), "
        "max commit stall %llu ms (budget %llu ms)\n",
        static_cast<unsigned long long>(result->failovers),
        static_cast<unsigned long long>(result->replica_resyncs),
        static_cast<unsigned long long>(result->replica_resync_epochs),
        static_cast<unsigned long long>(result->max_commit_stall_ms),
        static_cast<unsigned long long>(stall_budget_ms));
  }
  if (replica_kill) {
    // Killing the primary must move reads (failovers); killing a follower
    // must not — there the proof is the demote/resync cycle alone.
    const bool exercised =
        result->replica_resyncs > 0 && (!options.kill_primary || result->failovers > 0);
    if (!exercised) {
      std::fprintf(stderr,
                   "audit_nemesis: replica-kill run injected %llu partitions but "
                   "saw %llu failovers / %llu resyncs — replication never "
                   "exercised\n",
                   static_cast<unsigned long long>(result->partitions),
                   static_cast<unsigned long long>(result->failovers),
                   static_cast<unsigned long long>(result->replica_resyncs));
      return 4;
    }
    if (result->max_commit_stall_ms > stall_budget_ms) {
      std::fprintf(stderr,
                   "audit_nemesis: commits stalled %llu ms, over the %llu ms "
                   "failover budget\n",
                   static_cast<unsigned long long>(result->max_commit_stall_ms),
                   static_cast<unsigned long long>(stall_budget_ms));
      return 4;
    }
  }
  return 0;
}
