// obs_trace_demo: drives a full loopback deployment (pipelined K-shard
// proxy -> remote async stores -> storage server behind a simulated node
// latency) with the whole observability stack armed — span tracer, metrics
// registries + admin listeners on both tiers, and the trace-shape watchdog
// fed live wire bytes — then:
//
//   * writes the flight recorder as Chrome trace-event JSON (--out), ready
//     for https://ui.perfetto.dev; a pipelined run shows epoch N's
//     retirement overlapping epoch N+1's execution,
//   * performs a live Prometheus scrape of both admin listeners over real
//     TCP and prints a digest,
//   * exits non-zero if the watchdog flagged any trace-shape violation.
//
// With --inject-violation it instead runs the watchdog self-test: feed one
// deliberately mis-padded per-shard sub-batch and require the watchdog to
// catch it (exit 0 iff caught).
//
//   obs_trace_demo [--seconds=S] [--shards=K] [--out=PATH]
//                  [--inject-violation]
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/net/remote_store.h"
#include "src/net/socket.h"
#include "src/net/storage_server.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/latency_store.h"
#include "src/storage/memory_store.h"

namespace {

bool ParseFlag(const std::string& arg, const char* name, std::string& out) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  out = arg.substr(prefix.size());
  return true;
}

}  // namespace

namespace obladi {
namespace {

std::string HttpGet(uint16_t port, const std::string& path) {
  auto sock = TcpSocket::Connect("127.0.0.1", port);
  if (!sock.ok()) {
    return "";
  }
  std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!sock->SendAll(reinterpret_cast<const uint8_t*>(req.data()), req.size()).ok()) {
    return "";
  }
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(sock->fd(), buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

int Run(uint32_t shards, double seconds, const std::string& out_path,
        bool inject_violation) {
  ObladiConfig config = ObladiConfig::ForCapacity(512, /*z=*/4, /*payload=*/128);
  config.num_shards = shards;
  config.read_batches_per_epoch = 2;
  config.read_batch_size = 8;
  config.write_batch_size = 8;
  config.batch_interval_us = 2500;
  config.timed_mode = true;
  config.pipeline_epochs = true;
  config.combine_batch_plan_logs = true;
  config.recovery.enabled = true;  // the checkpoint append is part of the tail
  config.oram_options.io_threads = 8;
  config.obs.trace = true;
  config.obs.metrics = true;
  config.obs.admin_listener = true;
  config.obs.watchdog = true;

  // Storage node with a small service time: the retirement tail (write-back
  // wave + checkpoint append + truncate) then takes long enough that the
  // pipeline visibly overlaps it with the next epoch's execution.
  LatencyProfile node{"node500us", 500, 500, 0};
  auto buckets = std::make_shared<MemoryBucketStore>(
      config.StoreBuckets(), config.MakeLayout().shard_config.slots_per_bucket());
  auto log = std::make_shared<MemoryLogStore>();
  StorageServerOptions server_opts;
  server_opts.num_workers = 24;
  server_opts.admin_listener = true;
  StorageServer server(std::make_shared<LatencyBucketStore>(buckets, node),
                       std::make_shared<LatencyLogStore>(log, node), server_opts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 2;
  }

  RemoteStoreOptions opts;
  opts.port = server.port();
  auto remote_buckets = RemoteBucketStore::Connect(opts);
  auto remote_log = RemoteLogStore::Connect(opts);
  if (!remote_buckets.ok() || !remote_log.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 2;
  }
  std::shared_ptr<RemoteBucketStore> rbuckets = std::move(*remote_buckets);
  std::shared_ptr<RemoteLogStore> rlog = std::move(*remote_log);
  // The proxy wires the watchdog's wire-byte band to its remote stores'
  // transport counters by default — no manual SetWireByteSource needed.
  ObladiStore proxy(config, rbuckets, rlog);

  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < 256; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  st = proxy.Load(records);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 2;
  }

  if (inject_violation) {
    // Self-test: a sub-batch that dodges the padded quota must be flagged.
    size_t quota = config.read_quota();
    uint64_t before = proxy.watchdog()->violations();
    proxy.watchdog()->ObserveShardBatch(0, quota + 3);
    proxy.watchdog()->ResetEpoch();  // don't poison the shutdown epoch tally
    if (proxy.watchdog()->violations() != before + 1) {
      std::fprintf(stderr, "watchdog MISSED an injected quota violation\n");
      return 3;
    }
    std::printf("watchdog caught the injected quota violation: %s\n",
                proxy.watchdog()->recent_violations().back().c_str());
    return 0;
  }

  proxy.Start();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0xb0b + c);
      while (!stop.load(std::memory_order_relaxed)) {
        std::string key = "key" + std::to_string(rng.Uniform(256));
        Timestamp t = proxy.Begin();
        auto v = proxy.Read(t, key);
        if (!v.ok()) {
          proxy.Abort(t);
          std::this_thread::sleep_for(std::chrono::microseconds(500));
          continue;
        }
        if (!proxy.Write(t, key, *v + "!").ok() || !proxy.Commit(t).ok()) {
          proxy.Abort(t);
          continue;
        }
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<uint64_t>(seconds * 1e6)));

  // Live scrapes while traffic is still flowing — this is the deployment's
  // actual pull path, not a post-mortem dump.
  std::string proxy_scrape = HttpGet(proxy.admin_port(), "/metrics");
  std::string server_scrape = HttpGet(server.admin_port(), "/metrics");

  stop.store(true);
  for (auto& c : clients) {
    c.join();
  }
  proxy.Stop();
  (void)proxy.DrainRetirement();

  ObladiStats stats = proxy.stats();
  std::printf("run: %llu committed, %llu epochs, %llu overlapped, watchdog: %llu "
              "epochs checked, %llu violations\n",
              static_cast<unsigned long long>(committed.load()),
              static_cast<unsigned long long>(stats.epochs),
              static_cast<unsigned long long>(stats.epochs_overlapped),
              static_cast<unsigned long long>(proxy.watchdog()->epochs_checked()),
              static_cast<unsigned long long>(proxy.watchdog()->violations()));

  auto digest = [](const char* who, const std::string& scrape) {
    if (scrape.find(" 200 ") == std::string::npos) {
      std::fprintf(stderr, "%s scrape failed\n", who);
      return false;
    }
    size_t lines = 0;
    for (char ch : scrape) {
      lines += ch == '\n' ? 1 : 0;
    }
    std::printf("%s scrape: HTTP 200, %zu lines, %zu bytes\n", who, lines,
                scrape.size());
    return true;
  };
  bool scrapes_ok = digest("proxy", proxy_scrape);
  scrapes_ok = digest("server", server_scrape) && scrapes_ok;
  if (proxy_scrape.find("obs_watchdog_violations_total") == std::string::npos ||
      server_scrape.find("server_op_service_time_us") == std::string::npos) {
    std::fprintf(stderr, "scrape missing expected metric families\n");
    scrapes_ok = false;
  }

  Status wrote = Tracer::Get().WriteChromeTrace(out_path);
  if (!wrote.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n", wrote.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s (%zu events)\n", out_path.c_str(),
              Tracer::Get().CollectedCount());

  if (proxy.watchdog()->violations() != 0) {
    for (const auto& v : proxy.watchdog()->recent_violations()) {
      std::fprintf(stderr, "violation: %s\n", v.c_str());
    }
    return 4;
  }
  return scrapes_ok ? 0 : 5;
}

}  // namespace
}  // namespace obladi

int main(int argc, char** argv) {
  double seconds = 1.0;
  uint32_t shards = 4;
  std::string out_path = "obs_trace.json";
  bool inject = false;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (ParseFlag(arg, "seconds", value)) {
      seconds = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "shards", value)) {
      shards = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "out", value)) {
      out_path = value;
    } else if (arg == "--inject-violation") {
      inject = true;
    } else {
      std::fprintf(stderr,
                   "usage: obs_trace_demo [--seconds=S] [--shards=K] [--out=PATH] "
                   "[--inject-violation]\n");
      return 2;
    }
  }
  return obladi::Run(shards, seconds, out_path, inject);
}
