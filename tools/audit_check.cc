// audit_check: offline serializability verifier for recorded histories.
//
//   audit_check [--inject=drop_write|swap_reads|fracture_epoch] [--seed=N]
//               <trace-dir-or-file>...
//
// Without --inject, loads and merges the traces, verifies them, and prints
// the audit summary; any violation is printed with its minimal cycle.
// Exit codes: 0 = serializable, 1 = violations found, 2 = usage/load error.
//
// With --inject, the named violation class is injected into the (honest)
// history first and the exit codes invert into a self-test: 0 = the verifier
// flagged a violation of the expected class, 1 = the corruption slipped
// through (a verifier bug), 2 = error.
#include <cstdio>
#include <string>
#include <vector>

#include "src/audit/history.h"
#include "src/audit/verifier.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: audit_check [--inject=drop_write|swap_reads|fracture_epoch] "
               "[--seed=N] <trace-dir-or-file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string inject;
  uint64_t seed = 1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--inject=", 0) == 0) {
      inject = arg.substr(9);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    return Usage();
  }

  obladi::History history;
  for (const std::string& path : paths) {
    auto loaded = obladi::LoadHistory(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "audit_check: %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 2;
    }
    for (const auto& kv : loaded->initial) {
      history.initial.push_back(kv);
    }
    for (auto& txn : loaded->txns) {
      history.txns.push_back(std::move(txn));
    }
  }

  obladi::InjectKind inject_kind{};
  if (!inject.empty()) {
    auto kind = obladi::ParseInjectKind(inject);
    if (!kind.ok()) {
      std::fprintf(stderr, "audit_check: %s\n", kind.status().ToString().c_str());
      return 2;
    }
    inject_kind = *kind;
    auto mutation = obladi::InjectViolation(history, inject_kind, seed);
    if (!mutation.ok()) {
      std::fprintf(stderr, "audit_check: injection failed: %s\n",
                   mutation.status().ToString().c_str());
      return 2;
    }
    std::printf("injected (%s): %s\n", inject.c_str(), mutation->c_str());
  }

  auto report = obladi::VerifyHistory(history);
  if (!report.ok()) {
    std::fprintf(stderr, "audit_check: %s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", report->Summary().c_str());
  for (const obladi::Violation& v : report->violations) {
    std::printf("%s\n", v.ToString().c_str());
  }

  if (inject.empty()) {
    return report->serializable ? 0 : 1;
  }
  // Self-test mode: the injected class must be among the flagged kinds.
  for (const obladi::Violation& v : report->violations) {
    for (obladi::ViolationKind expected :
         obladi::ExpectedViolationsFor(inject_kind)) {
      if (v.kind == expected) {
        std::printf("self-test: injected %s violation was caught\n",
                    inject.c_str());
        return 0;
      }
    }
  }
  std::fprintf(stderr, "self-test FAILED: injected %s violation was not flagged\n",
               inject.c_str());
  return 1;
}
