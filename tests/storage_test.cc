#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "src/common/clock.h"
#include "src/shard/shard_store_view.h"
#include "src/storage/file_bucket_store.h"
#include "src/storage/file_log_store.h"
#include "src/storage/latency_store.h"
#include "src/storage/memory_store.h"
#include "tests/store_conformance.h"

namespace obladi {
namespace {

std::vector<Bytes> MakeBucket(size_t slots, uint8_t fill) {
  return std::vector<Bytes>(slots, Bytes(8, fill));
}

TEST(MemoryBucketStoreTest, WriteThenReadSlot) {
  MemoryBucketStore store(4, 3);
  ASSERT_TRUE(store.WriteBucket(1, 0, MakeBucket(3, 0xaa)).ok());
  auto slot = store.ReadSlot(1, 0, 2);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ((*slot)[0], 0xaa);
}

TEST(MemoryBucketStoreTest, VersionsAreShadowPaged) {
  MemoryBucketStore store(2, 2);
  ASSERT_TRUE(store.WriteBucket(0, 0, MakeBucket(2, 0x01)).ok());
  ASSERT_TRUE(store.WriteBucket(0, 1, MakeBucket(2, 0x02)).ok());
  // Both versions remain readable until truncation (recovery relies on this).
  EXPECT_EQ((*store.ReadSlot(0, 0, 0))[0], 0x01);
  EXPECT_EQ((*store.ReadSlot(0, 1, 0))[0], 0x02);
  ASSERT_TRUE(store.TruncateBucket(0, 1).ok());
  EXPECT_FALSE(store.ReadSlot(0, 0, 0).ok());
  EXPECT_TRUE(store.ReadSlot(0, 1, 0).ok());
}

TEST(MemoryBucketStoreTest, OverwritingAVersionReplacesIt) {
  MemoryBucketStore store(1, 1);
  ASSERT_TRUE(store.WriteBucket(0, 5, MakeBucket(1, 0x01)).ok());
  ASSERT_TRUE(store.WriteBucket(0, 5, MakeBucket(1, 0x09)).ok());
  EXPECT_EQ((*store.ReadSlot(0, 5, 0))[0], 0x09);
  EXPECT_EQ(store.TotalVersions(), 1u);
}

TEST(MemoryBucketStoreTest, RejectsOutOfRange) {
  MemoryBucketStore store(2, 2);
  EXPECT_FALSE(store.WriteBucket(7, 0, MakeBucket(2, 0)).ok());
  EXPECT_FALSE(store.ReadSlot(0, 0, 9).ok());
  EXPECT_FALSE(store.WriteBucket(0, 0, MakeBucket(3, 0)).ok());  // wrong slot count
}

TEST(MemoryBucketStoreTest, MissingVersionIsNotFound) {
  MemoryBucketStore store(1, 1);
  EXPECT_EQ(store.ReadSlot(0, 3, 0).status().code(), StatusCode::kNotFound);
}

TEST(DummyBucketStoreTest, ServesStaticValueAndIgnoresWrites) {
  DummyBucketStore store(8, 16);
  auto v = store.ReadSlot(3, 99, 7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 16u);
  EXPECT_TRUE(store.WriteBucket(3, 0, {}).ok());
}

TEST(MemoryLogStoreTest, AppendReadTruncate) {
  MemoryLogStore log;
  auto l0 = log.Append(Bytes{1});
  auto l1 = log.Append(Bytes{2});
  auto l2 = log.Append(Bytes{3});
  ASSERT_TRUE(l0.ok() && l1.ok() && l2.ok());
  EXPECT_EQ(*l0, 0u);
  EXPECT_EQ(*l2, 2u);
  auto all = log.ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  ASSERT_TRUE(log.Truncate(*l1).ok());
  all = log.ReadAll();
  EXPECT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0], Bytes{2});
}

TEST(FileLogStoreTest, SurvivesReopen) {
  std::string path = testing::TempDir() + "/obladi_log_test.wal";
  std::remove(path.c_str());
  {
    FileLogStore log(path);
    ASSERT_TRUE(log.Append(BytesFromString("alpha")).ok());
    ASSERT_TRUE(log.Append(BytesFromString("beta")).ok());
    ASSERT_TRUE(log.Sync().ok());
  }
  {
    FileLogStore log(path);
    auto all = log.ReadAll();
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), 2u);
    EXPECT_EQ(StringFromBytes((*all)[1]), "beta");
    EXPECT_EQ(log.NextLsn(), 2u);
    // New appends continue the LSN sequence.
    auto lsn = log.Append(BytesFromString("gamma"));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 2u);
  }
  std::remove(path.c_str());
}

TEST(FileLogStoreTest, TruncateDropsPrefix) {
  std::string path = testing::TempDir() + "/obladi_log_trunc.wal";
  std::remove(path.c_str());
  FileLogStore log(path);
  ASSERT_TRUE(log.Append(BytesFromString("a")).ok());
  auto keep = log.Append(BytesFromString("b"));
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(log.Truncate(*keep).ok());
  auto all = log.ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ(StringFromBytes((*all)[0]), "b");
  std::remove(path.c_str());
}

TEST(FileLogStoreTest, IgnoresTornTailRecord) {
  std::string path = testing::TempDir() + "/obladi_log_torn.wal";
  std::remove(path.c_str());
  {
    FileLogStore log(path);
    ASSERT_TRUE(log.Append(BytesFromString("whole")).ok());
    ASSERT_TRUE(log.Sync().ok());
  }
  {
    // Simulate a crash mid-append: write a header claiming more bytes than
    // are present.
    FILE* f = std::fopen(path.c_str(), "ab");
    uint8_t torn[12] = {9, 0, 0, 0, 0, 0, 0, 0, 200, 0, 0, 0};
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  FileLogStore log(path);
  auto all = log.ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ(StringFromBytes((*all)[0]), "whole");
  std::remove(path.c_str());
}

TEST(FileLogStoreTest, CorruptRecordFailsClosedNotTorn) {
  std::string path = testing::TempDir() + "/obladi_log_corrupt.wal";
  std::remove(path.c_str());
  {
    FileLogStore log(path);
    ASSERT_TRUE(log.Append(BytesFromString("whole")).ok());
    ASSERT_TRUE(log.Sync().ok());
  }
  {
    // Flip one payload byte of a complete record. Unlike a torn tail this
    // is corruption: the record frames correctly but its CRC cannot match.
    FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 8 + 12, SEEK_SET);  // file header + lsn/len framing
    uint8_t b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
    b ^= 0xFF;
    std::fseek(f, 8 + 12, SEEK_SET);
    std::fwrite(&b, 1, 1, f);
    std::fclose(f);
  }
  FileLogStore log(path);
  auto all = log.ReadAll();
  ASSERT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(all.status().message().find("corrupted record"), std::string::npos)
      << all.status().ToString();
  std::remove(path.c_str());
}

// A store opened over a corrupt log refuses writes, not just reads: the
// scan could not establish next_lsn_, so an append would stack duplicate
// LSNs behind the corrupt region (and shadow the diagnostic for any caller
// that never reads). The file itself stays untouched for forensics.
TEST(FileLogStoreTest, CorruptLogRefusesAppendAndSync) {
  std::string path = testing::TempDir() + "/obladi_log_corrupt_latch.wal";
  std::remove(path.c_str());
  {
    FileLogStore log(path);
    ASSERT_TRUE(log.Append(BytesFromString("whole")).ok());
    ASSERT_TRUE(log.Sync().ok());
  }
  {
    FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 8 + 12, SEEK_SET);  // file header + lsn/len framing
    uint8_t b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
    b ^= 0xFF;
    std::fseek(f, 8 + 12, SEEK_SET);
    std::fwrite(&b, 1, 1, f);
    std::fclose(f);
  }
  FileLogStore log(path);
  auto lsn = log.Append(BytesFromString("late"));
  ASSERT_FALSE(lsn.ok());
  EXPECT_EQ(lsn.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(log.Sync().code(), StatusCode::kDataLoss);
  // Nothing was written past the corruption: a reopen still fails closed
  // with the original diagnostic.
  FileLogStore again(path);
  EXPECT_EQ(again.ReadAll().status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(FileLogStoreTest, ReadsLegacyHeaderlessV1File) {
  std::string path = testing::TempDir() + "/obladi_log_v1.wal";
  std::remove(path.c_str());
  {
    // A v1 file has no magic header and no per-record CRC trailers:
    // u64 lsn | u32 len | payload.
    FILE* f = std::fopen(path.c_str(), "wb");
    uint8_t rec0[15] = {0, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 'o', 'l', 'd'};
    uint8_t rec1[15] = {1, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 't', 'w', 'o'};
    std::fwrite(rec0, 1, sizeof(rec0), f);
    std::fwrite(rec1, 1, sizeof(rec1), f);
    std::fclose(f);
  }
  {
    FileLogStore log(path);
    auto all = log.ReadAll();
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    ASSERT_EQ(all->size(), 2u);
    EXPECT_EQ(StringFromBytes((*all)[0]), "old");
    EXPECT_EQ(StringFromBytes((*all)[1]), "two");
    EXPECT_EQ(log.NextLsn(), 2u);
    // Appends keep working against the legacy format.
    ASSERT_TRUE(log.Append(BytesFromString("new")).ok());
    ASSERT_TRUE(log.Sync().ok());
  }
  FileLogStore reopened(path);
  auto all = reopened.ReadAll();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ(StringFromBytes((*all)[2]), "new");
  std::remove(path.c_str());
}

TEST(FileBucketStoreTest, CorruptRecordFailsClosedNotTorn) {
  std::string path = testing::TempDir() + "/obladi_fbs_corrupt.dat";
  std::remove(path.c_str());
  {
    FileBucketStore store(path, 8, 2);
    ASSERT_TRUE(store.WriteBucket(0, 0, MakeBucket(2, 0x77)).ok());
  }
  {
    // Flip a payload byte inside the (complete) write record: the frame
    // still parses, so only the CRC can catch it — and the store must
    // refuse to serve rather than return the flipped ciphertext.
    FILE* f = std::fopen(path.c_str(), "rb+");
    // file header (8) + type/bucket/version/slot_count (13) + slot len (4)
    std::fseek(f, 8 + 13 + 4, SEEK_SET);
    uint8_t b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
    b ^= 0xFF;
    std::fseek(f, 8 + 13 + 4, SEEK_SET);
    std::fwrite(&b, 1, 1, f);
    std::fclose(f);
  }
  FileBucketStore store(path, 8, 2);
  auto slot = store.ReadSlot(0, 0, 0);
  ASSERT_FALSE(slot.ok());
  EXPECT_EQ(slot.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(slot.status().message().find("corrupted record"), std::string::npos)
      << slot.status().ToString();
  // Writes fail closed too: the store cannot know what state it holds.
  EXPECT_FALSE(store.WriteBucket(1, 0, MakeBucket(2, 0x10)).ok());
  std::remove(path.c_str());
}

TEST(FileBucketStoreTest, ReadsLegacyHeaderlessV1File) {
  std::string path = testing::TempDir() + "/obladi_fbs_v1.dat";
  std::remove(path.c_str());
  {
    // v1 write record, no CRC: u8 type=1 | u32 bucket | u32 version |
    // u32 slot_count | per slot (u32 len | bytes).
    FILE* f = std::fopen(path.c_str(), "wb");
    uint8_t head[13] = {1, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0};
    std::fwrite(head, 1, sizeof(head), f);
    for (int s = 0; s < 2; ++s) {
      uint8_t slot[12] = {8, 0, 0, 0, 0x77, 0x77, 0x77, 0x77, 0x77, 0x77, 0x77, 0x77};
      std::fwrite(slot, 1, sizeof(slot), f);
    }
    std::fclose(f);
  }
  {
    FileBucketStore store(path, 8, 2);
    auto slot = store.ReadSlot(0, 0, 1);
    ASSERT_TRUE(slot.ok()) << slot.status().ToString();
    EXPECT_EQ((*slot)[0], 0x77);
    // New writes append in the legacy framing and survive a reopen.
    ASSERT_TRUE(store.WriteBucket(3, 5, MakeBucket(2, 0x42)).ok());
  }
  FileBucketStore reopened(path, 8, 2);
  EXPECT_EQ((*reopened.ReadSlot(0, 0, 0))[0], 0x77);
  EXPECT_EQ((*reopened.ReadSlot(3, 5, 1))[0], 0x42);
  std::remove(path.c_str());
}

TEST(StoreConformanceTest, FileBucketStore) {
  std::string path = testing::TempDir() + "/obladi_fbs_conf.dat";
  std::remove(path.c_str());
  FileBucketStore store(path, 16, 3);
  RunBucketStoreConformance(store, 3);
  std::remove(path.c_str());
}

TEST(FileBucketStoreTest, SurvivesReopen) {
  std::string path = testing::TempDir() + "/obladi_fbs_reopen.dat";
  std::remove(path.c_str());
  {
    FileBucketStore store(path, 8, 2);
    ASSERT_TRUE(store.WriteBucket(3, 1, MakeBucket(2, 0x5a)).ok());
    ASSERT_TRUE(store.WriteBucket(3, 2, MakeBucket(2, 0x5b)).ok());
    ASSERT_TRUE(store.WriteBucket(5, 1, MakeBucket(2, 0x5c)).ok());
    // GC'd versions must stay gone after reopen too.
    ASSERT_TRUE(store.TruncateBucket(3, 2).ok());
  }
  FileBucketStore store(path, 8, 2);
  EXPECT_FALSE(store.ReadSlot(3, 1, 0).ok());
  auto v2 = store.ReadSlot(3, 2, 1);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ((*v2)[0], 0x5b);
  auto other = store.ReadSlot(5, 1, 0);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ((*other)[0], 0x5c);
  EXPECT_EQ(store.TotalVersions(), 2u);
  std::remove(path.c_str());
}

TEST(FileBucketStoreTest, OverwritingAVersionIsAReplay) {
  // Recovery replays bucket writes at their original versions; the last
  // write of a version must win, across reopen as well.
  std::string path = testing::TempDir() + "/obladi_fbs_replay.dat";
  std::remove(path.c_str());
  FileBucketStore store(path, 8, 2);
  ASSERT_TRUE(store.WriteBucket(1, 4, MakeBucket(2, 0x01)).ok());
  ASSERT_TRUE(store.WriteBucket(1, 4, MakeBucket(2, 0x02)).ok());
  auto slot = store.ReadSlot(1, 4, 0);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ((*slot)[0], 0x02);
  FileBucketStore reopened(path, 8, 2);
  auto again = reopened.ReadSlot(1, 4, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)[0], 0x02);
  std::remove(path.c_str());
}

TEST(FileBucketStoreTest, IgnoresTornTailRecord) {
  std::string path = testing::TempDir() + "/obladi_fbs_torn.dat";
  std::remove(path.c_str());
  {
    FileBucketStore store(path, 8, 2);
    ASSERT_TRUE(store.WriteBucket(0, 0, MakeBucket(2, 0x77)).ok());
  }
  {
    // Simulate a crash mid-append: a write-record header promising more
    // slot bytes than exist.
    FILE* f = std::fopen(path.c_str(), "ab");
    uint8_t torn[17] = {1, 2, 0, 0, 0, 9, 0, 0, 0, 2, 0, 0, 0, 200, 0, 0, 0};
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }
  FileBucketStore store(path, 8, 2);
  auto whole = store.ReadSlot(0, 0, 1);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  EXPECT_EQ((*whole)[0], 0x77);
  EXPECT_FALSE(store.ReadSlot(2, 9, 0).ok());
  // The torn bytes were cut off: new writes append cleanly and survive
  // another reopen.
  ASSERT_TRUE(store.WriteBucket(2, 9, MakeBucket(2, 0x78)).ok());
  FileBucketStore reopened(path, 8, 2);
  auto after = reopened.ReadSlot(2, 9, 0);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)[0], 0x78);
  std::remove(path.c_str());
}

TEST(LatencyStoreTest, CountsRequestsAndBytes) {
  auto base = std::make_shared<MemoryBucketStore>(2, 2);
  LatencyBucketStore store(base, LatencyProfile::Dummy());
  ASSERT_TRUE(store.WriteBucket(0, 0, MakeBucket(2, 1)).ok());
  ASSERT_TRUE(store.ReadSlot(0, 0, 0).ok());
  EXPECT_EQ(store.stats().writes.load(), 1u);
  EXPECT_EQ(store.stats().reads.load(), 1u);
  EXPECT_EQ(store.stats().bytes_written.load(), 16u);
  EXPECT_EQ(store.stats().bytes_read.load(), 8u);
}

TEST(LatencyStoreTest, InjectsLatency) {
  auto base = std::make_shared<MemoryBucketStore>(1, 1);
  LatencyProfile profile;
  profile.read_latency_us = 2000;
  LatencyBucketStore store(base, profile);
  ASSERT_TRUE(base->WriteBucket(0, 0, MakeBucket(1, 1)).ok());
  uint64_t start = NowMicros();
  ASSERT_TRUE(store.ReadSlot(0, 0, 0).ok());
  EXPECT_GE(NowMicros() - start, 1800u);
}

TEST(LatencyStoreTest, ChargesWireBytes) {
  auto base = std::make_shared<MemoryBucketStore>(4, 2);
  LatencyBucketStore store(base, LatencyProfile::Dummy());
  ASSERT_TRUE(store.WriteBucket(0, 0, MakeBucket(2, 1)).ok());
  ASSERT_TRUE(store.ReadSlotsBatch({{0, 0, 0}, {0, 0, 1}})[0].ok());
  // Exact framing is a model; what matters is that requests charge the send
  // side and responses (payload included) charge the receive side.
  EXPECT_GT(store.stats().bytes_sent.load(), 0u);
  EXPECT_GT(store.stats().bytes_received.load(), 2 * 8u);
}

TEST(LatencyStoreTest, BandwidthCapSerializesTransfers) {
  auto base = std::make_shared<MemoryBucketStore>(4, 4);
  // 1 MB/s download pipe, zero latency: time is bandwidth-dominated. Two
  // concurrent ~32 KB downloads must serialize on the shared link (~64 ms
  // total), not overlap (~32 ms).
  LatencyProfile profile;
  profile.download_bandwidth_bytes_per_sec = 1'000'000;
  LatencyBucketStore store(base, profile);
  std::vector<Bytes> big(4, Bytes(8192, 0x5a));
  ASSERT_TRUE(base->WriteBucket(0, 0, big).ok());
  auto read_all = [&] {
    auto out = store.ReadSlotsBatch({{0, 0, 0}, {0, 0, 1}, {0, 0, 2}, {0, 0, 3}});
    for (const auto& r : out) {
      ASSERT_TRUE(r.ok());
    }
  };
  uint64_t start = NowMicros();
  std::thread other(read_all);
  read_all();
  other.join();
  uint64_t elapsed = NowMicros() - start;
  EXPECT_GE(elapsed, 55'000u) << "transfers overlapped on a serialized link";
}

TEST(LatencyLogStoreTest, FusedAppendSyncIsOneRoundTrip) {
  LatencyLogStore log(std::make_shared<MemoryLogStore>(), LatencyProfile::Dummy());
  ASSERT_TRUE(log.Append(BytesFromString("a")).ok());
  ASSERT_TRUE(log.Sync().ok());
  EXPECT_EQ(log.stats().round_trips.load(), 2u);
  ASSERT_TRUE(log.AppendSync(BytesFromString("b")).ok());
  EXPECT_EQ(log.stats().round_trips.load(), 3u);  // +1, not +2
}

TEST(LatencyProfileTest, NamedProfilesScale) {
  auto wan = LatencyProfile::WanServer(0.1);
  EXPECT_EQ(wan.read_latency_us, 1000u);
  auto dynamo = LatencyProfile::Dynamo(1.0);
  EXPECT_EQ(dynamo.read_latency_us, 1000u);
  EXPECT_EQ(dynamo.write_latency_us, 3000u);
  EXPECT_GT(dynamo.max_inflight, 0u);
  EXPECT_EQ(LatencyProfile::Dummy().read_latency_us, 0u);
}


// --- shared conformance suites (also run against the remote stores over a
// --- loopback StorageServer in net_test.cc) --------------------------------

TEST(StoreConformanceTest, MemoryBucketStore) {
  MemoryBucketStore store(16, 3);
  RunBucketStoreConformance(store, 3);
}

TEST(StoreConformanceTest, MemoryLogStore) {
  MemoryLogStore log;
  RunLogStoreConformance(log);
}

// The latency decorator must be semantically transparent (it only adds
// sleeps and accounting) — including the XOR path reads it models.
TEST(StoreConformanceTest, LatencyBucketStore) {
  auto base = std::make_shared<MemoryBucketStore>(16, 3);
  LatencyBucketStore store(base, LatencyProfile::Dummy());
  RunBucketStoreConformance(store, 3);
}

TEST(StoreConformanceTest, LatencyLogStore) {
  LatencyLogStore log(std::make_shared<MemoryLogStore>(), LatencyProfile::Dummy());
  RunLogStoreConformance(log);
}

// A shard's bucket-namespace window behaves exactly like a private store —
// XOR path reads translate their slot refs like every other batched form.
TEST(StoreConformanceTest, ShardStoreView) {
  auto base = std::make_shared<MemoryBucketStore>(24, 3);
  ShardStoreView view(base, /*offset=*/8, /*num_buckets=*/16);
  RunBucketStoreConformance(view, 3);
}

// Batched entry points of the memory store (the defaults loop over the
// unary forms; verify results stay in request order with per-entry errors).
TEST(MemoryBucketStoreTest, BatchedFormsPreserveOrderAndErrors) {
  MemoryBucketStore store(8, 2);
  std::vector<BucketImage> images;
  for (BucketIndex b = 0; b < 4; ++b) {
    images.push_back(BucketImage{b, 1, MakeBucket(2, static_cast<uint8_t>(b + 1))});
  }
  // One bad image in the middle fails the whole batch at that point.
  images.insert(images.begin() + 2, BucketImage{99, 1, MakeBucket(2, 0)});
  EXPECT_FALSE(store.WriteBucketsBatch(images).ok());
  images.erase(images.begin() + 2);
  ASSERT_TRUE(store.WriteBucketsBatch(images).ok());

  auto results = store.ReadSlotsBatch({{0, 1, 0}, {9, 1, 0}, {3, 1, 1}, {1, 7, 0}});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ((*results[0])[0], 1);
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ((*results[2])[0], 4);
  EXPECT_EQ(results[3].status().code(), StatusCode::kNotFound);
}

TEST(MemoryLogStoreTest, TruncationEdgeCases) {
  MemoryLogStore log;
  // Truncating an empty log at any LSN is a no-op.
  ASSERT_TRUE(log.Truncate(0).ok());
  ASSERT_TRUE(log.Truncate(100).ok());
  EXPECT_EQ(log.NextLsn(), 0u);

  auto l0 = log.Append(Bytes{1});
  auto l1 = log.Append(Bytes{2});
  ASSERT_TRUE(l0.ok() && l1.ok());
  // Truncating beyond the end drops everything but never rewinds the LSN
  // counter (recovery depends on LSNs being unique forever).
  ASSERT_TRUE(log.Truncate(1000).ok());
  EXPECT_TRUE(log.ReadAll()->empty());
  auto l2 = log.Append(Bytes{3});
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(*l2, 2u);
}

}  // namespace
}  // namespace obladi
