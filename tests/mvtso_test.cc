#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "src/common/rng.h"
#include "src/txn/mvtso.h"

namespace obladi {
namespace {

TEST(MvtsoTest, ReadNeedsBaseUntilInstalled) {
  MvtsoEngine engine;
  Timestamp t = engine.Begin();
  EXPECT_EQ(engine.Read(t, "k").kind, ReadOutcome::kNeedBase);
  engine.InstallBase("k", "base");
  auto outcome = engine.Read(t, "k");
  EXPECT_EQ(outcome.kind, ReadOutcome::kValue);
  EXPECT_EQ(outcome.value, "base");
}

TEST(MvtsoTest, ReadYourOwnWrites) {
  MvtsoEngine engine;
  Timestamp t = engine.Begin();
  ASSERT_TRUE(engine.Write(t, "k", "mine").ok());
  auto outcome = engine.Read(t, "k");
  EXPECT_EQ(outcome.kind, ReadOutcome::kValue);
  EXPECT_EQ(outcome.value, "mine");
}

TEST(MvtsoTest, UncommittedWritesVisibleToLaterTransactions) {
  MvtsoEngine engine;
  Timestamp t1 = engine.Begin();
  Timestamp t2 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "k", "from-t1").ok());
  auto outcome = engine.Read(t2, "k");
  EXPECT_EQ(outcome.kind, ReadOutcome::kValue);
  EXPECT_EQ(outcome.value, "from-t1");
}

TEST(MvtsoTest, EarlierTransactionDoesNotSeeLaterWrite) {
  MvtsoEngine engine;
  engine.InstallBase("k", "base");
  Timestamp t1 = engine.Begin();
  Timestamp t2 = engine.Begin();
  ASSERT_TRUE(engine.Write(t2, "k", "future").ok());
  auto outcome = engine.Read(t1, "k");
  EXPECT_EQ(outcome.kind, ReadOutcome::kValue);
  EXPECT_EQ(outcome.value, "base");
}

TEST(MvtsoTest, WriteAbortsWhenPredecessorReadByLaterTxn) {
  // The Figure 5 scenario: t3 reads d0, then t2's write to d must abort.
  MvtsoEngine engine;
  engine.InstallBase("d", "d0");
  Timestamp t2 = engine.Begin();
  Timestamp t3 = engine.Begin();
  EXPECT_EQ(engine.Read(t3, "d").kind, ReadOutcome::kValue);
  Status st = engine.Write(t2, "d", "d2");
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_EQ(engine.GetState(t2), TxnState::kAborted);
  EXPECT_EQ(engine.GetState(t3), TxnState::kActive);
}

TEST(MvtsoTest, CascadingAbort) {
  // t3 reads t1's uncommitted write; aborting t1 must abort t3 (Figure 5).
  MvtsoEngine engine;
  Timestamp t1 = engine.Begin();
  Timestamp t3 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "a", "a1").ok());
  EXPECT_EQ(engine.Read(t3, "a").value, "a1");
  engine.Abort(t1);
  EXPECT_EQ(engine.GetState(t3), TxnState::kAborted);
  EXPECT_GE(engine.stats().aborts_cascade, 1u);
}

TEST(MvtsoTest, CascadeIsTransitive) {
  MvtsoEngine engine;
  Timestamp t1 = engine.Begin();
  Timestamp t2 = engine.Begin();
  Timestamp t3 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "x", "v1").ok());
  EXPECT_EQ(engine.Read(t2, "x").value, "v1");
  ASSERT_TRUE(engine.Write(t2, "y", "v2").ok());
  EXPECT_EQ(engine.Read(t3, "y").value, "v2");
  engine.Abort(t1);
  EXPECT_EQ(engine.GetState(t2), TxnState::kAborted);
  EXPECT_EQ(engine.GetState(t3), TxnState::kAborted);
}

TEST(MvtsoTest, AbortRemovesVersions) {
  MvtsoEngine engine;
  engine.InstallBase("k", "base");
  Timestamp t1 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "k", "dirty").ok());
  engine.Abort(t1);
  Timestamp t2 = engine.Begin();
  EXPECT_EQ(engine.Read(t2, "k").value, "base");
}

TEST(MvtsoTest, EpochCommitInTimestampOrderWithDependencies) {
  MvtsoEngine engine;
  Timestamp t1 = engine.Begin();
  Timestamp t2 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "a", "a1").ok());
  EXPECT_EQ(engine.Read(t2, "a").value, "a1");
  ASSERT_TRUE(engine.Write(t2, "b", "b2").ok());
  ASSERT_TRUE(engine.Finish(t1).ok());
  ASSERT_TRUE(engine.Finish(t2).ok());
  EpochOutcome outcome = engine.EndEpoch(0);
  EXPECT_EQ(outcome.committed.size(), 2u);
  ASSERT_EQ(outcome.final_writes.size(), 2u);
}

TEST(MvtsoTest, DependentAbortsWhenDependencyUnfinished) {
  MvtsoEngine engine;
  Timestamp t1 = engine.Begin();
  Timestamp t2 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "a", "a1").ok());
  EXPECT_EQ(engine.Read(t2, "a").value, "a1");
  ASSERT_TRUE(engine.Finish(t2).ok());
  // t1 never finishes: it aborts at epoch end, cascading to t2.
  EpochOutcome outcome = engine.EndEpoch(0);
  EXPECT_TRUE(outcome.committed.empty());
  EXPECT_EQ(outcome.aborted.size(), 2u);
  EXPECT_GE(engine.stats().aborts_unfinished_epoch, 1u);
}

TEST(MvtsoTest, EpochWriteCapAbortsOverflowingTransactions) {
  MvtsoEngine engine;
  Timestamp t1 = engine.Begin();
  Timestamp t2 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "k1", "v").ok());
  ASSERT_TRUE(engine.Write(t1, "k2", "v").ok());
  ASSERT_TRUE(engine.Write(t2, "k3", "v").ok());
  ASSERT_TRUE(engine.Write(t2, "k4", "v").ok());
  ASSERT_TRUE(engine.Finish(t1).ok());
  ASSERT_TRUE(engine.Finish(t2).ok());
  EpochOutcome outcome = engine.EndEpoch(/*max_write_keys=*/3);
  ASSERT_EQ(outcome.committed.size(), 1u);
  EXPECT_EQ(outcome.committed[0], t1);  // earlier timestamp wins the batch space
  EXPECT_EQ(outcome.final_writes.size(), 2u);
  EXPECT_GE(engine.stats().aborts_batch_overflow, 1u);
}

TEST(MvtsoTest, FinalWritesTakeLastCommittedVersion) {
  MvtsoEngine engine;
  Timestamp t1 = engine.Begin();
  Timestamp t2 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "k", "v1").ok());
  // t2 must observe t1's write before overwriting, else MVTSO admits both
  // orders; reading first creates the dependency chain the epoch needs.
  EXPECT_EQ(engine.Read(t2, "k").value, "v1");
  ASSERT_TRUE(engine.Write(t2, "k", "v2").ok());
  ASSERT_TRUE(engine.Finish(t1).ok());
  ASSERT_TRUE(engine.Finish(t2).ok());
  EpochOutcome outcome = engine.EndEpoch(0);
  ASSERT_EQ(outcome.final_writes.size(), 1u);
  EXPECT_EQ(outcome.final_writes[0].second, "v2");
}

TEST(MvtsoTest, EpochEndClearsVersionCache) {
  MvtsoEngine engine;
  engine.InstallBase("k", "base");
  engine.EndEpoch(0);
  Timestamp t = engine.Begin();
  EXPECT_EQ(engine.Read(t, "k").kind, ReadOutcome::kNeedBase);
}

TEST(MvtsoTest, ImmediateCommitWaitsForDependency) {
  MvtsoEngine engine;
  Timestamp t1 = engine.Begin();
  Timestamp t2 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "a", "a1").ok());
  EXPECT_EQ(engine.Read(t2, "a").value, "a1");

  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(engine.TryCommitImmediate(t1).ok());
  });
  // t2 blocks until t1 commits.
  EXPECT_TRUE(engine.TryCommitImmediate(t2).ok());
  committer.join();
}

TEST(MvtsoTest, ImmediateCommitCascadeOnDependencyAbort) {
  MvtsoEngine engine;
  Timestamp t1 = engine.Begin();
  Timestamp t2 = engine.Begin();
  ASSERT_TRUE(engine.Write(t1, "a", "a1").ok());
  EXPECT_EQ(engine.Read(t2, "a").value, "a1");
  engine.Abort(t1);
  EXPECT_EQ(engine.TryCommitImmediate(t2).code(), StatusCode::kAborted);
}

TEST(MvtsoTest, TooOldWriterAbortsAfterPruning) {
  MvtsoEngine engine;
  engine.InstallBase("k", "base");
  Timestamp t_old = engine.Begin();
  Timestamp t_new = engine.Begin();
  ASSERT_TRUE(engine.Write(t_new, "k", "new").ok());
  ASSERT_TRUE(engine.TryCommitImmediate(t_new).ok());
  // t_old's predecessor version (and read markers) were pruned at commit.
  EXPECT_EQ(engine.Write(t_old, "k", "old").code(), StatusCode::kAborted);
}

TEST(MvtsoTest, OperationsOnDecidedTransactionsFail) {
  MvtsoEngine engine;
  Timestamp t = engine.Begin();
  engine.Abort(t);
  EXPECT_EQ(engine.Read(t, "k").kind, ReadOutcome::kAborted);
  EXPECT_EQ(engine.Write(t, "k", "v").code(), StatusCode::kAborted);
  EXPECT_EQ(engine.Finish(t).code(), StatusCode::kAborted);
}

TEST(MvtsoTest, ResetDropsEverything) {
  MvtsoEngine engine;
  engine.InstallBase("k", "base");
  Timestamp t = engine.Begin();
  ASSERT_TRUE(engine.Write(t, "k", "v").ok());
  engine.Reset();
  EXPECT_EQ(engine.GetState(t), TxnState::kAborted);
  Timestamp t2 = engine.Begin();
  EXPECT_GT(t2, t);  // timestamps keep advancing across the crash
  EXPECT_EQ(engine.Read(t2, "k").kind, ReadOutcome::kNeedBase);
}

// Direct serializability property of the MVTSO schedule: a read of version w
// by transaction r is only valid if no committed writer w2 of the same key
// has w < w2 < r. We encode writer timestamps in values and check after a
// randomized concurrent run.
TEST(MvtsoTest, RandomizedEpochScheduleIsSerializable) {
  MvtsoEngine engine;
  const int kKeys = 8;
  for (int k = 0; k < kKeys; ++k) {
    engine.InstallBase("k" + std::to_string(k), "0");
  }

  struct ReadObs {
    Timestamp reader;
    std::string key;
    Timestamp observed_writer;
  };
  std::mutex obs_mu;
  std::vector<ReadObs> observations;
  std::map<std::pair<std::string, Timestamp>, bool> committed_writes;  // (key, ts)

  std::vector<std::thread> threads;
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&, th] {
      Rng rng(th + 100);
      for (int i = 0; i < 50; ++i) {
        Timestamp ts = engine.Begin();
        bool ok = true;
        std::vector<ReadObs> local_reads;
        std::vector<std::string> local_writes;
        for (int op = 0; op < 4 && ok; ++op) {
          std::string key = "k" + std::to_string(rng.Uniform(kKeys));
          if (rng.Bernoulli(0.5)) {
            auto outcome = engine.Read(ts, key);
            if (outcome.kind != ReadOutcome::kValue) {
              ok = false;
              break;
            }
            local_reads.push_back(
                ReadObs{ts, key, static_cast<Timestamp>(std::stoull(outcome.value))});
          } else {
            if (!engine.Write(ts, key, std::to_string(ts)).ok()) {
              ok = false;
              break;
            }
            local_writes.push_back(key);
          }
        }
        if (ok) {
          engine.Finish(ts);
          std::lock_guard<std::mutex> lk(obs_mu);
          for (auto& r : local_reads) {
            observations.push_back(r);
          }
          for (auto& w : local_writes) {
            committed_writes[{w, ts}] = false;  // decided at epoch end
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EpochOutcome outcome = engine.EndEpoch(0);
  std::set<Timestamp> committed(outcome.committed.begin(), outcome.committed.end());

  for (auto& [key_ts, unused] : committed_writes) {
    if (committed.count(key_ts.second)) {
      committed_writes[key_ts] = true;
    }
  }
  size_t checked = 0;
  for (const ReadObs& obs : observations) {
    if (!committed.count(obs.reader)) {
      continue;  // aborted reader: its observations don't matter
    }
    // Observed writer must be committed (or the base, ts 0).
    if (obs.observed_writer != 0) {
      EXPECT_TRUE(committed.count(obs.observed_writer))
          << "committed txn " << obs.reader << " observed aborted write";
    }
    // No committed write to the same key strictly between writer and reader.
    for (const auto& [key_ts, is_committed] : committed_writes) {
      if (!is_committed || key_ts.first != obs.key) {
        continue;
      }
      bool between = key_ts.second > obs.observed_writer && key_ts.second < obs.reader;
      EXPECT_FALSE(between) << "reader " << obs.reader << " of key " << obs.key
                            << " skipped committed version " << key_ts.second;
    }
    ++checked;
  }
  EXPECT_GT(checked, 20u) << "too few committed reads to be meaningful";
}

}  // namespace
}  // namespace obladi
