// Backend-agnostic conformance suites for the BucketStore and LogStore
// interfaces: every behavior the ORAM and recovery unit rely on, runnable
// against any implementation. storage_test.cc runs them against the memory
// stores; net_test.cc runs them against RemoteBucketStore / RemoteLogStore
// over a loopback StorageServer, which pins the wire protocol to the exact
// local semantics (including per-entry error propagation in batches).
#ifndef OBLADI_TESTS_STORE_CONFORMANCE_H_
#define OBLADI_TESTS_STORE_CONFORMANCE_H_

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/bucket_store.h"

namespace obladi {

// `store` must be empty, with >= 8 buckets of `slots_per_bucket` slots each.
inline void RunBucketStoreConformance(BucketStore& store, size_t slots_per_bucket) {
  ASSERT_GE(store.num_buckets(), 8u);
  auto bucket_image = [&](uint8_t fill) {
    return std::vector<Bytes>(slots_per_bucket, Bytes(16, fill));
  };

  // Unary write / read round trip.
  ASSERT_TRUE(store.WriteBucket(0, 0, bucket_image(0x11)).ok());
  auto slot = store.ReadSlot(0, 0, slots_per_bucket - 1);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_EQ((*slot)[0], 0x11);

  // Missing bucket version / out-of-range addresses are errors, and in a
  // batch they must not poison neighboring entries.
  EXPECT_FALSE(store.ReadSlot(0, 7, 0).ok());
  EXPECT_FALSE(store.ReadSlot(static_cast<BucketIndex>(store.num_buckets()), 0, 0).ok());

  // Batched write: all images land, each independently readable.
  std::vector<BucketImage> images;
  for (BucketIndex b = 1; b <= 4; ++b) {
    BucketImage image;
    image.bucket = b;
    image.version = 3;
    image.slots = bucket_image(static_cast<uint8_t>(0x20 + b));
    images.push_back(std::move(image));
  }
  ASSERT_TRUE(store.WriteBucketsBatch(std::move(images)).ok());

  // Batched read mixing hits and misses: results come back in request
  // order with per-entry statuses.
  std::vector<SlotRef> refs = {
      {1, 3, 0},        // hit
      {2, 9, 0},        // missing version
      {3, 3, 0},        // hit
      {0, 0, 0},        // hit (first write)
      {4, 3, kInvalidSlot},  // bad slot index
  };
  auto results = store.ReadSlotsBatch(refs);
  ASSERT_EQ(results.size(), refs.size());
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ((*results[0])[0], 0x21);
  EXPECT_FALSE(results[1].ok());
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ((*results[2])[0], 0x23);
  ASSERT_TRUE(results[3].ok());
  EXPECT_EQ((*results[3])[0], 0x11);
  EXPECT_FALSE(results[4].ok());

  // Empty batches are legal no-ops.
  EXPECT_TRUE(store.ReadSlotsBatch({}).empty());
  EXPECT_TRUE(store.WriteBucketsBatch({}).ok());

  // Shadow paging: several versions coexist until truncation; truncation
  // keeps keep_from_version and newer.
  ASSERT_TRUE(store.WriteBucket(5, 0, bucket_image(0x50)).ok());
  ASSERT_TRUE(store.WriteBucket(5, 1, bucket_image(0x51)).ok());
  ASSERT_TRUE(store.WriteBucket(5, 2, bucket_image(0x52)).ok());
  EXPECT_EQ((*store.ReadSlot(5, 0, 0))[0], 0x50);
  ASSERT_TRUE(store.TruncateBucket(5, 1).ok());
  EXPECT_FALSE(store.ReadSlot(5, 0, 0).ok());
  EXPECT_EQ((*store.ReadSlot(5, 1, 0))[0], 0x51);
  EXPECT_EQ((*store.ReadSlot(5, 2, 0))[0], 0x52);

  // Overwriting an existing version replaces it (recovery replays do this).
  ASSERT_TRUE(store.WriteBucket(5, 2, bucket_image(0x5f)).ok());
  EXPECT_EQ((*store.ReadSlot(5, 2, 0))[0], 0x5f);

  // Truncating everything below a version that was never written is legal
  // (an empty bucket's GC) and truncating an untouched bucket is a no-op.
  EXPECT_TRUE(store.TruncateBucket(6, 10).ok());

  // Batched GC: one request truncates many buckets (an epoch's cleanup is
  // one round trip per shard); buckets not named are untouched, and an
  // empty batch is a legal no-op.
  ASSERT_TRUE(store.WriteBucket(6, 0, bucket_image(0x60)).ok());
  ASSERT_TRUE(store.WriteBucket(6, 1, bucket_image(0x61)).ok());
  ASSERT_TRUE(store.WriteBucket(7, 0, bucket_image(0x70)).ok());
  ASSERT_TRUE(store.TruncateBucketsBatch({{5, 2}, {6, 1}}).ok());
  EXPECT_FALSE(store.ReadSlot(5, 1, 0).ok());
  EXPECT_EQ((*store.ReadSlot(5, 2, 0))[0], 0x5f);
  EXPECT_FALSE(store.ReadSlot(6, 0, 0).ok());
  EXPECT_EQ((*store.ReadSlot(6, 1, 0))[0], 0x61);
  EXPECT_EQ((*store.ReadSlot(7, 0, 0))[0], 0x70);
  EXPECT_TRUE(store.TruncateBucketsBatch({}).ok());

  // The asynchronous batched forms agree with their synchronous twins,
  // whether the store completes inline (defaults) or on a transport thread.
  {
    std::mutex mu;
    std::condition_variable cv;
    bool read_done = false;
    bool write_done = false;

    std::vector<BucketImage> async_images(1);
    async_images[0].bucket = 7;
    async_images[0].version = 1;
    async_images[0].slots = bucket_image(0x71);
    store.WriteBucketsBatchAsync(std::move(async_images), [&](Status st) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      std::lock_guard<std::mutex> lk(mu);
      write_done = true;
      cv.notify_all();
    });
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return write_done; });
    }

    std::vector<StatusOr<Bytes>> async_results;
    store.ReadSlotsBatchAsync({{7, 1, 0}, {7, 9, 0}},
                              [&](std::vector<StatusOr<Bytes>> results) {
                                std::lock_guard<std::mutex> lk(mu);
                                async_results = std::move(results);
                                read_done = true;
                                cv.notify_all();
                              });
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return read_done; });
    ASSERT_EQ(async_results.size(), 2u);
    ASSERT_TRUE(async_results[0].ok());
    EXPECT_EQ((*async_results[0])[0], 0x71);
    EXPECT_FALSE(async_results[1].ok());
  }

  // XOR path reads: per path, the store returns each slot's first
  // header_bytes + last trailer_bytes verbatim and the XOR of the bodies —
  // and must agree exactly with what slot-by-slot reads imply, per-path
  // errors included. (h, t) are arbitrary split points here; the ORAM uses
  // (nonce, tag).
  {
    const uint32_t h = 4, t = 2;
    std::vector<PathSlots> paths(3);
    paths[0].slots = {{1, 3, 0}, {3, 3, 0}, {0, 0, 0}};  // all hits
    paths[1].slots = {{1, 3, 0}, {2, 9, 0}};             // missing version fails the path
    paths[2].slots = {{7, 1, 0}};                        // single slot: xor == its own body
    auto xor_results = store.ReadPathsXor(paths, h, t);
    ASSERT_EQ(xor_results.size(), 3u);

    ASSERT_TRUE(xor_results[0].ok()) << xor_results[0].status().ToString();
    auto expected = BucketStore::XorCombineSlots(store.ReadSlotsBatch(paths[0].slots), h, t);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(xor_results[0]->headers, expected->headers);
    EXPECT_EQ(xor_results[0]->body_xor, expected->body_xor);
    EXPECT_EQ(xor_results[0]->headers.size(), paths[0].slots.size() * (h + t));

    EXPECT_FALSE(xor_results[1].ok());

    ASSERT_TRUE(xor_results[2].ok());
    auto whole = store.ReadSlot(7, 1, 0);
    ASSERT_TRUE(whole.ok());
    EXPECT_EQ(Bytes(xor_results[2]->body_xor),
              Bytes(whole->begin() + h, whole->end() - t));

    // Empty request list is a legal no-op; a split larger than the slot
    // fails that path without poisoning the request.
    EXPECT_TRUE(store.ReadPathsXor({}, h, t).empty());
    auto oversized = store.ReadPathsXor({paths[2]}, 32, 32);
    ASSERT_EQ(oversized.size(), 1u);
    EXPECT_FALSE(oversized[0].ok());

    // Slots of unequal size within one path cannot be XORed.
    std::vector<Bytes> ragged(slots_per_bucket, Bytes(16, 0x42));
    ragged[0] = Bytes(24, 0x42);
    ASSERT_TRUE(store.WriteBucket(2, 11, std::move(ragged)).ok());
    PathSlots mixed;
    mixed.slots = {{2, 11, 0}, {2, 11, 1}};
    auto mismatched = store.ReadPathsXor({mixed}, h, t);
    ASSERT_EQ(mismatched.size(), 1u);
    EXPECT_FALSE(mismatched[0].ok());

    // The asynchronous form agrees with the synchronous one.
    std::mutex mu;
    std::condition_variable cv;
    bool done_flag = false;
    std::vector<StatusOr<PathXorResult>> async_xor;
    store.ReadPathsXorAsync({paths[0], paths[2]}, h, t,
                            [&](std::vector<StatusOr<PathXorResult>> results) {
                              std::lock_guard<std::mutex> lk(mu);
                              async_xor = std::move(results);
                              done_flag = true;
                              cv.notify_all();
                            });
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done_flag; });
    ASSERT_EQ(async_xor.size(), 2u);
    ASSERT_TRUE(async_xor[0].ok());
    EXPECT_EQ(async_xor[0]->headers, xor_results[0]->headers);
    EXPECT_EQ(async_xor[0]->body_xor, xor_results[0]->body_xor);
    ASSERT_TRUE(async_xor[1].ok());
    EXPECT_EQ(async_xor[1]->body_xor, xor_results[2]->body_xor);
  }
}

// `log` must be empty.
inline void RunLogStoreConformance(LogStore& log) {
  EXPECT_EQ(log.NextLsn(), 0u);

  // Appends hand out dense LSNs starting at 0.
  auto l0 = log.Append(BytesFromString("rec0"));
  auto l1 = log.Append(BytesFromString("rec1"));
  auto l2 = log.Append(BytesFromString("rec2"));
  ASSERT_TRUE(l0.ok() && l1.ok() && l2.ok());
  EXPECT_EQ(*l0, 0u);
  EXPECT_EQ(*l1, 1u);
  EXPECT_EQ(*l2, 2u);
  EXPECT_EQ(log.NextLsn(), 3u);
  ASSERT_TRUE(log.Sync().ok());

  // Empty records are preserved, not dropped.
  auto l3 = log.Append(Bytes{});
  ASSERT_TRUE(l3.ok());

  auto all = log.ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 4u);
  EXPECT_EQ(StringFromBytes((*all)[1]), "rec1");
  EXPECT_TRUE((*all)[3].empty());

  // Truncate drops strictly-below; the boundary record survives.
  ASSERT_TRUE(log.Truncate(*l1).ok());
  all = log.ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ(StringFromBytes((*all)[0]), "rec1");

  // Truncate is idempotent, and truncating at an already-dropped LSN or at
  // 0 changes nothing.
  ASSERT_TRUE(log.Truncate(*l1).ok());
  ASSERT_TRUE(log.Truncate(0).ok());
  EXPECT_EQ(log.ReadAll()->size(), 3u);

  // Truncating everything (upto == NextLsn) leaves an empty but appendable
  // log whose LSN sequence continues without reuse.
  ASSERT_TRUE(log.Truncate(log.NextLsn()).ok());
  all = log.ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());
  auto l4 = log.Append(BytesFromString("rec4"));
  ASSERT_TRUE(l4.ok());
  EXPECT_EQ(*l4, 4u);
  EXPECT_EQ(log.NextLsn(), 5u);

  // Fused durable append: continues the same LSN sequence and the record is
  // immediately readable (and synced — one round trip on a remote log).
  auto fused = log.AppendSync(BytesFromString("fused"));
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(*fused, 5u);
  EXPECT_EQ(log.NextLsn(), 6u);
  all = log.ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ(StringFromBytes((*all)[1]), "fused");
}

}  // namespace obladi

#endif  // OBLADI_TESTS_STORE_CONFORMANCE_H_
