// Shared test harness for driving a manually-paced ObladiStore: the test's
// main thread turns epochs over while client threads run transactions.
#ifndef OBLADI_TESTS_PACED_PROXY_H_
#define OBLADI_TESTS_PACED_PROXY_H_

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/proxy/obladi_store.h"

namespace obladi {

// Retry with backoff: with manual pacing, an epoch's read batches are all
// dispatched for most of each FinishEpochNow call, so instant retries can
// burn every attempt inside that window (worse on a loaded host). Yield to
// the pacing thread for at least a batch interval between attempts.
inline Status RunPacedTransaction(ObladiStore& proxy,
                                  const std::function<Status(Txn&)>& body) {
  uint64_t backoff_us = std::max<uint64_t>(1000, proxy.config().batch_interval_us);
  Status last = Status::Aborted("no attempts made");
  for (int attempt = 0; attempt < 300; ++attempt) {
    last = RunTransaction(proxy, body, /*max_attempts=*/1);
    if (last.ok() || last.code() != StatusCode::kAborted) {
      return last;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
  }
  return last;
}

// Commit one write transaction, pacing epochs from the calling thread.
inline void CommitWrite(ObladiStore& proxy, const Key& key, const std::string& value) {
  std::atomic<bool> done{false};
  Status result;
  std::thread client([&] {
    result = RunPacedTransaction(proxy,
                                 [&](Txn& txn) -> Status { return txn.Write(key, value); });
    done.store(true);  // always: the pacing loop below must terminate
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(proxy.FinishEpochNow().ok());
  }
  client.join();
  ASSERT_TRUE(result.ok()) << result.ToString();
}

// Read one committed value, pacing epochs from the calling thread.
inline std::string ReadCommitted(ObladiStore& proxy, const Key& key) {
  std::string out;
  std::atomic<bool> done{false};
  Status result;
  std::thread client([&] {
    result = RunPacedTransaction(proxy, [&](Txn& txn) -> Status {
      auto v = txn.Read(key);
      if (!v.ok()) {
        return v.status();
      }
      out = *v;
      return Status::Ok();
    });
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(proxy.FinishEpochNow().ok());
  }
  client.join();
  EXPECT_TRUE(result.ok()) << result.ToString();
  return out;
}

}  // namespace obladi

#endif  // OBLADI_TESTS_PACED_PROXY_H_
