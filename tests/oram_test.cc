#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/crypto/encryptor.h"
#include "src/oram/path.h"
#include "src/oram/ring_oram.h"
#include "src/storage/memory_store.h"

namespace obladi {
namespace {

struct OramTestEnv {
  RingOramConfig config;
  std::shared_ptr<MemoryBucketStore> store;
  std::shared_ptr<Encryptor> encryptor;
  std::unique_ptr<RingOram> oram;
};

OramTestEnv MakeOram(uint64_t capacity, RingOramOptions options, uint32_t z = 4,
                     size_t payload = 64, uint64_t seed = 1234) {
  OramTestEnv env;
  env.config = RingOramConfig::ForCapacity(capacity, z, payload);
  env.store = std::make_shared<MemoryBucketStore>(env.config.num_buckets(),
                                                  env.config.slots_per_bucket());
  env.encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("test-key"), env.config.authenticated, seed));
  env.oram = std::make_unique<RingOram>(env.config, options, env.store, env.encryptor, seed);
  return env;
}

std::vector<Bytes> SequentialValues(uint64_t n, size_t payload = 64) {
  std::vector<Bytes> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = BytesFromString("value-" + std::to_string(i));
    values[i].resize(payload, 0);
  }
  return values;
}

// Three execution modes: sequential, parallel-immediate, parallel-deferred.
struct ModeParam {
  const char* name;
  bool parallel;
  bool defer;
};

class RingOramModeTest : public testing::TestWithParam<ModeParam> {
 protected:
  RingOramOptions Options() const {
    RingOramOptions opts;
    opts.parallel = GetParam().parallel;
    opts.defer_writes = GetParam().defer;
    opts.io_threads = 8;
    return opts;
  }
};

INSTANTIATE_TEST_SUITE_P(
    AllModes, RingOramModeTest,
    testing::Values(ModeParam{"sequential", false, false},
                    ModeParam{"parallel_immediate", true, false},
                    ModeParam{"parallel_deferred", true, true}),
    [](const testing::TestParamInfo<ModeParam>& info) { return info.param.name; });

TEST_P(RingOramModeTest, ReadsBackInitialValues) {
  auto env = MakeOram(64, Options());
  auto values = SequentialValues(64);
  ASSERT_TRUE(env.oram->Initialize(values).ok());

  for (BlockId id = 0; id < 64; id += 7) {
    auto result = env.oram->ReadBatch({id});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ((*result)[0], values[id]) << "block " << id;
  }
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  EXPECT_TRUE(env.oram->CheckInvariants().ok());
}

TEST_P(RingOramModeTest, WriteThenReadAcrossEpochs) {
  auto env = MakeOram(64, Options());
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(64)).ok());

  Bytes new_value = BytesFromString("updated!");
  new_value.resize(64, 0);
  ASSERT_TRUE(env.oram->WriteBatch({{5, new_value}}, 4).ok());
  ASSERT_TRUE(env.oram->FinishEpoch().ok());

  auto result = env.oram->ReadBatch({5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0], new_value);
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  EXPECT_TRUE(env.oram->CheckInvariants().ok());
}

TEST_P(RingOramModeTest, SustainedRandomWorkloadStaysCorrect) {
  const uint64_t kCapacity = 128;
  auto env = MakeOram(kCapacity, Options());
  auto values = SequentialValues(kCapacity);
  ASSERT_TRUE(env.oram->Initialize(values).ok());

  std::map<BlockId, Bytes> expected;
  for (BlockId id = 0; id < kCapacity; ++id) {
    expected[id] = values[id];
  }

  Rng rng(99);
  for (int epoch = 0; epoch < 30; ++epoch) {
    // A few read batches with distinct ids (the proxy guarantees dedup).
    for (int b = 0; b < 2; ++b) {
      std::vector<BlockId> ids;
      while (ids.size() < 4) {
        BlockId id = rng.Uniform(kCapacity);
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
      ids.push_back(kInvalidBlockId);  // padding request
      auto result = env.oram->ReadBatch(ids);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ((*result)[i], expected[ids[i]]) << "epoch " << epoch << " block " << ids[i];
      }
      EXPECT_TRUE((*result)[4].empty());
    }
    // A write batch.
    std::vector<std::pair<BlockId, Bytes>> writes;
    for (int w = 0; w < 3; ++w) {
      BlockId id = rng.Uniform(kCapacity);
      Bytes value = BytesFromString("e" + std::to_string(epoch) + "-w" + std::to_string(w));
      value.resize(64, 0);
      expected[id] = value;
      writes.emplace_back(id, value);
    }
    ASSERT_TRUE(env.oram->WriteBatch(writes, 4).ok());
    ASSERT_TRUE(env.oram->FinishEpoch().ok());
    ASSERT_TRUE(env.oram->CheckInvariants().ok()) << "epoch " << epoch;
  }

  // Final sweep: every block readable with its latest value.
  for (BlockId id = 0; id < kCapacity; ++id) {
    auto result = env.oram->ReadBatch({id});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((*result)[0], expected[id]) << "block " << id;
    if (id % 16 == 15) {
      ASSERT_TRUE(env.oram->FinishEpoch().ok());
    }
  }
}

TEST_P(RingOramModeTest, StashStaysBounded) {
  const uint64_t kCapacity = 256;
  auto env = MakeOram(kCapacity, Options());
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(kCapacity)).ok());

  Rng rng(5);
  size_t max_stash = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<BlockId> ids;
    while (ids.size() < 4) {
      BlockId id = rng.Uniform(kCapacity);
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    ASSERT_TRUE(env.oram->ReadBatch(ids).ok());
    if (round % 4 == 3) {
      ASSERT_TRUE(env.oram->FinishEpoch().ok());
      max_stash = std::max(max_stash, env.oram->stash().size());
    }
  }
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  EXPECT_LE(max_stash, env.config.max_stash_blocks)
      << "stash exceeded the analytic bound used for checkpoint padding";
}

TEST_P(RingOramModeTest, DummyRequestsReturnEmpty) {
  auto env = MakeOram(32, Options());
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(32)).ok());
  std::vector<BlockId> ids(8, kInvalidBlockId);
  auto result = env.oram->ReadBatch(ids);
  ASSERT_TRUE(result.ok());
  for (const auto& v : *result) {
    EXPECT_TRUE(v.empty());
  }
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  EXPECT_TRUE(env.oram->CheckInvariants().ok());
}

TEST_P(RingOramModeTest, BlindWriteToNeverReadBlock) {
  auto env = MakeOram(64, Options());
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(64)).ok());
  Bytes v1 = BytesFromString("blind-1");
  Bytes v2 = BytesFromString("blind-2");
  // Two blind writes to the same block in different epochs: no reads at all.
  ASSERT_TRUE(env.oram->WriteBatch({{9, v1}}, 2).ok());
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  ASSERT_TRUE(env.oram->WriteBatch({{9, v2}}, 2).ok());
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  auto result = env.oram->ReadBatch({9});
  ASSERT_TRUE(result.ok());
  v2.resize((*result)[0].size(), 0);
  EXPECT_EQ((*result)[0], v2);
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  EXPECT_TRUE(env.oram->CheckInvariants().ok());
}

TEST_P(RingOramModeTest, ReadAndWriteSameBlockInOneEpoch) {
  auto env = MakeOram(64, Options());
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(64)).ok());
  auto before = env.oram->ReadBatch({7});
  ASSERT_TRUE(before.ok());
  Bytes updated = BytesFromString("updated-in-epoch");
  ASSERT_TRUE(env.oram->WriteBatch({{7, updated}}, 2).ok());
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  auto after = env.oram->ReadBatch({7});
  ASSERT_TRUE(after.ok());
  updated.resize((*after)[0].size(), 0);
  EXPECT_EQ((*after)[0], updated);
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  EXPECT_TRUE(env.oram->CheckInvariants().ok());
}

// Deferred mode: a bucket rewritten k times in an epoch is physically written
// once (write deduplication, §7), and the root is written at most once.
TEST(RingOramDeferredTest, BucketWritesAreDeduplicated) {
  RingOramOptions opts;
  opts.parallel = true;
  opts.defer_writes = true;
  auto env = MakeOram(128, opts);
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(128)).ok());
  env.oram->ResetStats();

  Rng rng(3);
  for (int b = 0; b < 8; ++b) {
    std::vector<BlockId> ids;
    while (ids.size() < 8) {
      BlockId id = rng.Uniform(128);
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    ASSERT_TRUE(env.oram->ReadBatch(ids).ok());
  }
  ASSERT_TRUE(env.oram->FinishEpoch().ok());

  auto stats = env.oram->stats();
  EXPECT_GT(stats.evictions, 1u);
  EXPECT_GT(stats.planned_bucket_rewrites, stats.physical_bucket_writes)
      << "an epoch with >1 eviction must dedup overlapping bucket writes";
}

// In deferred mode the server must see no bucket writes until FinishEpoch.
TEST(RingOramDeferredTest, NoPhysicalWritesBeforeEpochEnd) {
  RingOramOptions opts;
  opts.parallel = true;
  opts.defer_writes = true;
  auto env = MakeOram(64, opts);
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(64)).ok());

  env.oram->trace().Enable();
  Rng rng(8);
  for (int b = 0; b < 4; ++b) {
    std::vector<BlockId> ids;
    while (ids.size() < 4) {
      BlockId id = rng.Uniform(64);
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    ASSERT_TRUE(env.oram->ReadBatch(ids).ok());
  }
  for (const auto& op : env.oram->trace().ops()) {
    EXPECT_EQ(op.type, PhysicalOpType::kReadSlot) << "write leaked before epoch end";
  }
  ASSERT_TRUE(env.oram->FinishEpoch().ok());
  bool saw_write = false;
  for (const auto& op : env.oram->trace().ops()) {
    saw_write |= op.type == PhysicalOpType::kWriteBucket;
  }
  EXPECT_TRUE(saw_write);
}

// Bucket invariant: no physical slot read twice between writes of the bucket.
TEST(RingOramSecurityTest, NoSlotReadTwiceBetweenBucketWrites) {
  RingOramOptions opts;
  opts.parallel = true;
  opts.defer_writes = true;
  auto env = MakeOram(128, opts);
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(128)).ok());
  env.oram->trace().Enable();

  Rng rng(21);
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int b = 0; b < 4; ++b) {
      std::vector<BlockId> ids;
      while (ids.size() < 4) {
        BlockId id = rng.Uniform(128);
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
      ASSERT_TRUE(env.oram->ReadBatch(ids).ok());
    }
    ASSERT_TRUE(env.oram->FinishEpoch().ok());
  }

  // For each bucket version, every (slot) read at most once.
  std::map<std::pair<BucketIndex, uint32_t>, std::set<SlotIndex>> reads;
  for (const auto& op : env.oram->trace().ops()) {
    if (op.type != PhysicalOpType::kReadSlot) {
      continue;
    }
    auto key = std::make_pair(op.bucket, op.version);
    EXPECT_TRUE(reads[key].insert(op.slot).second)
        << "slot " << op.slot << " of bucket " << op.bucket << " version " << op.version
        << " read twice";
  }
}

// Path invariant / uniformity: accessed leaves are uniformly distributed even
// under a highly skewed logical workload (chi-square test).
TEST(RingOramSecurityTest, AccessedLeavesAreUniform) {
  RingOramOptions opts;
  opts.parallel = true;
  opts.defer_writes = true;
  auto env = MakeOram(512, opts, /*z=*/4, /*payload=*/32);
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(512, 32)).ok());

  uint32_t leaves = env.config.num_leaves();
  std::vector<uint64_t> counts(leaves, 0);
  env.oram->SetBatchPlannedHook([&](const BatchPlan& plan) {
    for (const auto& req : plan.requests) {
      counts[req.leaf]++;
    }
    return Status::Ok();
  });

  // Skewed workload: 90% of accesses to 8 hot blocks — but never the same
  // block twice per epoch (the proxy's dedup guarantees this).
  Rng rng(77);
  const int kBatches = 3000;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<BlockId> ids;
    while (ids.size() < 4) {
      BlockId id = rng.Bernoulli(0.9) ? rng.Uniform(8) : rng.Uniform(512);
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    ASSERT_TRUE(env.oram->ReadBatch(ids).ok());
    ASSERT_TRUE(env.oram->FinishEpoch().ok());
  }

  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  double expected = static_cast<double>(total) / leaves;
  double chi2 = 0;
  for (uint64_t c : counts) {
    double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // dof = leaves - 1. For a uniform distribution chi2 concentrates around
  // dof; allow a generous margin (p ~ 1e-6).
  double dof = leaves - 1;
  EXPECT_LT(chi2, dof + 6 * std::sqrt(2 * dof))
      << "accessed-leaf distribution deviates from uniform";
}

// The §6.3 ablation: serving any stash-resident block without a dummy path
// read skews the observable distribution away from recently evicted paths.
// We verify the mechanism works (skips happen) — and that the secure default
// never skips.
TEST(RingOramSecurityTest, CacheAllStashAblationSkipsPhysicalReads) {
  RingOramOptions insecure;
  insecure.parallel = true;
  insecure.defer_writes = true;
  insecure.cache_all_stash = true;
  auto env = MakeOram(128, insecure);
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(128)).ok());

  Rng rng(31);
  for (int round = 0; round < 60; ++round) {
    std::vector<BlockId> ids;
    while (ids.size() < 4) {
      BlockId id = rng.Uniform(16);  // hot set: repeatedly re-read
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    ASSERT_TRUE(env.oram->ReadBatch(ids).ok());
    ASSERT_TRUE(env.oram->FinishEpoch().ok());
  }
  EXPECT_GT(env.oram->stats().stash_cache_skips, 0u);

  RingOramOptions secure;
  secure.parallel = true;
  secure.defer_writes = true;
  auto env2 = MakeOram(128, secure);
  ASSERT_TRUE(env2.oram->Initialize(SequentialValues(128)).ok());
  ASSERT_TRUE(env2.oram->ReadBatch({1, 2, 3}).ok());
  EXPECT_EQ(env2.oram->stats().stash_cache_skips, 0u);
}

TEST(RingOramTest, ReadBatchErrorsOnUnknownBlock) {
  RingOramOptions opts;
  auto env = MakeOram(32, opts);
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(8)).ok());  // only 8 of 32 mapped
  auto result = env.oram->ReadBatch({20});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RingOramTest, EvictionScheduleIsDeterministicPerEpochShape) {
  // Same batch structure => same number of evictions regardless of content.
  for (uint64_t seed : {1u, 2u}) {
    RingOramOptions opts;
    opts.parallel = true;
    opts.defer_writes = true;
    auto env = MakeOram(128, opts, 4, 64, seed);
    ASSERT_TRUE(env.oram->Initialize(SequentialValues(128)).ok());
    Rng rng(seed * 17);
    for (int b = 0; b < 3; ++b) {
      std::vector<BlockId> ids;
      while (ids.size() < 6) {
        BlockId id = rng.Uniform(128);
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
      ASSERT_TRUE(env.oram->ReadBatch(ids).ok());
    }
    ASSERT_TRUE(env.oram->WriteBatch({}, 6).ok());
    ASSERT_TRUE(env.oram->FinishEpoch().ok());
    // 3*6 + 6 = 24 accesses, A=3 -> exactly 8 evictions.
    EXPECT_EQ(env.oram->stats().evictions, 8u);
  }
}

TEST(RingOramTest, StatsCountLogicalAndPhysicalWork) {
  RingOramOptions opts;
  opts.parallel = true;
  opts.defer_writes = true;
  auto env = MakeOram(64, opts);
  ASSERT_TRUE(env.oram->Initialize(SequentialValues(64)).ok());
  env.oram->ResetStats();
  ASSERT_TRUE(env.oram->ReadBatch({1, 2, kInvalidBlockId}).ok());
  auto stats = env.oram->stats();
  EXPECT_EQ(stats.logical_accesses, 3u);
  EXPECT_GE(stats.physical_slot_reads, 3 * (env.config.num_levels - 1));
}

// ---------------------------------------------------------------------------
// Server-side XOR path reads
// ---------------------------------------------------------------------------

// The XOR read path is a pure transport optimization: with the same seed,
// the XOR and slot-by-slot executions must return identical values AND
// record identical adversary-visible traces (the same slots are touched;
// only the reply shrinks). Run the whole matrix: plain and authenticated.
TEST(RingOramXorReadTest, MatchesSlotReadsValueForValueAndTraceForTrace) {
  for (bool authenticated : {false, true}) {
    std::vector<std::vector<Bytes>> results;
    std::vector<std::vector<PhysicalOp>> traces;
    std::vector<uint64_t> xor_counts;
    for (bool use_xor : {false, true}) {
      RingOramOptions opts;
      opts.parallel = true;
      opts.defer_writes = true;
      opts.xor_path_reads = use_xor;
      opts.enable_trace = true;
      opts.io_threads = 8;
      OramTestEnv env;
      env.config = RingOramConfig::ForCapacity(64, 4, 64);
      env.config.authenticated = authenticated;
      env.store = std::make_shared<MemoryBucketStore>(env.config.num_buckets(),
                                                      env.config.slots_per_bucket());
      env.encryptor = std::make_shared<Encryptor>(
          Encryptor::FromMasterKey(BytesFromString("xor-key"), authenticated, 7));
      env.oram = std::make_unique<RingOram>(env.config, opts, env.store, env.encryptor, 7);
      ASSERT_TRUE(env.oram->Initialize(SequentialValues(64)).ok());

      std::vector<Bytes> got;
      for (int epoch = 0; epoch < 3; ++epoch) {
        // Real reads, repeats (stash-resident dummy paths), and padding
        // (pure dummy paths) all go through the XOR machinery.
        auto r1 = env.oram->ReadBatch({1, 9, 25, kInvalidBlockId});
        ASSERT_TRUE(r1.ok()) << r1.status().ToString();
        auto r2 = env.oram->ReadBatch({9, 40, kInvalidBlockId, kInvalidBlockId});
        ASSERT_TRUE(r2.ok()) << r2.status().ToString();
        got.insert(got.end(), r1->begin(), r1->end());
        got.insert(got.end(), r2->begin(), r2->end());
        Bytes v = BytesFromString("epoch-" + std::to_string(epoch));
        v.resize(64, 0);
        ASSERT_TRUE(env.oram->WriteBatch({{static_cast<BlockId>(epoch), v}}, 4).ok());
        ASSERT_TRUE(env.oram->FinishEpoch().ok());
      }
      EXPECT_TRUE(env.oram->CheckInvariants().ok());
      results.push_back(std::move(got));
      traces.push_back(env.oram->trace().Take());
      xor_counts.push_back(env.oram->stats().xor_path_reads);
    }
    EXPECT_EQ(results[0], results[1]) << "values diverge, authenticated=" << authenticated;
    EXPECT_EQ(traces[0], traces[1]) << "traces diverge, authenticated=" << authenticated;
    EXPECT_EQ(xor_counts[0], 0u);
    EXPECT_GT(xor_counts[1], 0u) << "XOR path never engaged";
  }
}

}  // namespace
}  // namespace obladi
