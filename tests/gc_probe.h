// Shared GC round-trip probe (net_test asserts on it, bench_net_storage
// records it): spin up a loopback storage node, run a K-shard ORAM over a
// RemoteBucketStore, age it one epoch, and count how many network round
// trips TruncateStaleVersions costs. With the batched truncate RPC the
// answer must be exactly K — one kTruncateBucketsBatch per shard — never
// the bucket count. No gtest dependency, so the bench can include it too.
#ifndef OBLADI_TESTS_GC_PROBE_H_
#define OBLADI_TESTS_GC_PROBE_H_

#include <memory>
#include <vector>

#include "src/net/remote_store.h"
#include "src/net/storage_server.h"
#include "src/shard/shard_router.h"
#include "src/shard/sharded_oram_set.h"
#include "src/storage/memory_store.h"

namespace obladi {

struct GcProbeResult {
  bool ok = false;
  uint32_t shards = 0;
  uint64_t round_trips = 0;
  uint32_t buckets = 0;
};

inline GcProbeResult RunGcRoundTripProbe(uint32_t num_shards = 4) {
  GcProbeResult out;
  ShardLayout layout = ShardLayout::Make(RingOramConfig::ForCapacity(256, 4, 64), num_shards);
  out.shards = layout.num_shards;
  out.buckets = layout.total_buckets();

  auto backing = std::make_shared<MemoryBucketStore>(
      layout.total_buckets(), layout.shard_config.slots_per_bucket());
  StorageServer server(backing, nullptr);
  if (!server.Start().ok()) {
    return out;
  }
  RemoteStoreOptions opts;
  opts.port = server.port();
  auto remote = RemoteBucketStore::Connect(opts);
  if (!remote.ok()) {
    return out;
  }
  std::shared_ptr<RemoteBucketStore> store = std::move(*remote);

  ShardedOramOptions options;
  options.read_quota = 8;
  options.write_quota = 8;
  options.oram.io_threads = 8;
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("gc-probe"), false, 7));
  ShardedOramSet set(layout, options, store, encryptor, 7);
  if (!set.Initialize(std::vector<Bytes>(256, BytesFromString("v"))).ok()) {
    return out;
  }
  // Age the tree a little so there are stale versions to drop.
  auto batch = set.ReadBatch({1, 2, 3, 4, 5, 6, 7, 8});
  if (!batch.ok() || !set.FinishEpoch().ok()) {
    return out;
  }

  uint64_t before = store->stats().round_trips.load();
  if (!set.TruncateStaleVersions().ok()) {
    return out;
  }
  out.round_trips = store->stats().round_trips.load() - before;
  out.ok = true;
  return out;
}

}  // namespace obladi

#endif  // OBLADI_TESTS_GC_PROBE_H_
