// Semantic consistency properties of the application workloads, in the style
// of TPC-C's consistency conditions. Run against NoPriv (fast backend); the
// differential test in integration_test.cc ties NoPriv and Obladi together.
#include <gtest/gtest.h>

#include <thread>

#include "src/baseline/nopriv_store.h"
#include "src/common/rng.h"
#include "src/workload/freehealth.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"

namespace obladi {
namespace {

std::unique_ptr<NoPrivStore> LoadedStore(Workload& workload) {
  auto storage = std::make_shared<RemoteKv>(LatencyProfile::Dummy());
  auto store = std::make_unique<NoPrivStore>(storage);
  EXPECT_TRUE(store->Load(workload.InitialRecords()).ok());
  return store;
}

std::string MustRead(NoPrivStore& store, const Key& key) {
  std::string out;
  EXPECT_TRUE(RunTransaction(store, [&](Txn& txn) -> Status {
                auto v = txn.Read(key);
                if (!v.ok()) {
                  return v.status();
                }
                out = *v;
                return Status::Ok();
              }).ok())
      << key;
  return out;
}

TpccConfig SmallTpcc() {
  TpccConfig cfg;
  cfg.num_warehouses = 1;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 20;
  cfg.num_items = 50;
  cfg.initial_orders_per_district = 8;
  cfg.stock_level_orders = 2;
  cfg.max_order_lines = 5;
  return cfg;
}

// TPC-C consistency condition 1 (adapted): after any number of new-order
// transactions, every order id below district.next_o_id has an order row with
// all its order lines present.
TEST(TpccConsistencyTest, OrdersDenseUpToNextOrderId) {
  TpccWorkload wl(SmallTpcc());
  auto store = LoadedStore(wl);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wl.NewOrder(*store, rng).ok());
  }
  for (uint32_t d = 0; d < 2; ++d) {
    TpccDistrict district =
        TpccDistrict::Decode(MustRead(*store, TpccWorkload::DistrictKey(0, d)));
    for (uint32_t o = 0; o < district.next_o_id; ++o) {
      TpccOrder order = TpccOrder::Decode(MustRead(*store, TpccWorkload::OrderKey(0, d, o)));
      ASSERT_GT(order.line_count, 0u) << "order " << o;
      for (uint32_t l = 0; l < order.line_count; ++l) {
        MustRead(*store, TpccWorkload::OrderLineKey(0, d, o, l));
      }
    }
  }
}

// New-order queue discipline: delivery pops the oldest undelivered order and
// stamps a carrier on it.
TEST(TpccConsistencyTest, DeliveryDrainsQueueInOrder) {
  TpccWorkload wl(SmallTpcc());
  auto store = LoadedStore(wl);
  Rng rng(6);
  auto queue_before =
      DecodeIdList(MustRead(*store, TpccWorkload::NewOrderQueueKey(0, 0)));
  ASSERT_FALSE(queue_before.empty());
  uint32_t oldest = queue_before.front();

  // Run deliveries until warehouse 0 district 0's queue shrinks.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wl.Delivery(*store, rng).ok());
  }
  auto queue_after = DecodeIdList(MustRead(*store, TpccWorkload::NewOrderQueueKey(0, 0)));
  ASSERT_LT(queue_after.size(), queue_before.size());
  TpccOrder delivered =
      TpccOrder::Decode(MustRead(*store, TpccWorkload::OrderKey(0, 0, oldest)));
  EXPECT_NE(delivered.carrier, 0u) << "popped order not stamped with a carrier";
}

// Payment conservation: warehouse YTD equals the sum of payments applied.
TEST(TpccConsistencyTest, PaymentsAccumulateInWarehouseYtd) {
  TpccWorkload wl(SmallTpcc());
  auto store = LoadedStore(wl);
  Rng rng(8);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(wl.Payment(*store, rng).ok());
  }
  Bytes raw = BytesFromString(MustRead(*store, TpccWorkload::WarehouseKey(0)));
  BinaryReader r(raw);
  r.GetString();  // name
  r.GetI64();     // tax
  int64_t ytd = r.GetI64();
  EXPECT_GT(ytd, 0);

  // Customer payment counters moved too.
  int64_t payment_count = 0;
  for (uint32_t d = 0; d < 2; ++d) {
    for (uint32_t c = 0; c < 20; ++c) {
      TpccCustomer customer =
          TpccCustomer::Decode(MustRead(*store, TpccWorkload::CustomerKey(0, d, c)));
      payment_count += customer.payment_count;
    }
  }
  EXPECT_EQ(payment_count, 15);
}

TEST(TpccConsistencyTest, NewOrderStockDecreases) {
  TpccWorkload wl(SmallTpcc());
  auto store = LoadedStore(wl);
  int64_t total_before = 0;
  for (uint32_t i = 0; i < 50; ++i) {
    total_before += TpccStock::Decode(MustRead(*store, TpccWorkload::StockKey(0, i))).quantity;
  }
  Rng rng(10);
  uint64_t orders = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wl.NewOrder(*store, rng).ok());
  }
  orders = wl.stats().new_order;
  int64_t total_after = 0;
  int64_t total_ordered = 0;
  for (uint32_t i = 0; i < 50; ++i) {
    TpccStock stock = TpccStock::Decode(MustRead(*store, TpccWorkload::StockKey(0, i)));
    total_after += stock.quantity;
    total_ordered += stock.ytd;
  }
  if (orders > 0) {
    EXPECT_GT(total_ordered, 0);
    // Quantity either decreases or wraps via the +91 restock rule; ytd is the
    // reliable monotone counter.
    EXPECT_NE(total_after, total_before);
  }
}

// SmallBank semantics beyond conservation.
TEST(SmallBankSemanticsTest, WriteCheckAppliesOverdraftPenalty) {
  SmallBankConfig cfg;
  cfg.num_accounts = 2;
  SmallBankWorkload wl(cfg);
  auto store = LoadedStore(wl);
  int64_t huge = 2 * SmallBankWorkload::kInitialBalanceCents + 500;
  ASSERT_TRUE(wl.WriteCheck(*store, 0, huge).ok());
  int64_t checking = SmallBankWorkload::DecodeBalance(
      MustRead(*store, SmallBankWorkload::CheckingKey(0)));
  // Initial checking - (amount + 100 penalty).
  EXPECT_EQ(checking, SmallBankWorkload::kInitialBalanceCents - huge - 100);
}

TEST(SmallBankSemanticsTest, TransactSavingsRejectsOverdraft) {
  SmallBankConfig cfg;
  cfg.num_accounts = 2;
  SmallBankWorkload wl(cfg);
  auto store = LoadedStore(wl);
  ASSERT_TRUE(
      wl.TransactSavings(*store, 1, -2 * SmallBankWorkload::kInitialBalanceCents).ok());
  int64_t savings = SmallBankWorkload::DecodeBalance(
      MustRead(*store, SmallBankWorkload::SavingsKey(1)));
  EXPECT_EQ(savings, SmallBankWorkload::kInitialBalanceCents);  // unchanged no-op
}

TEST(SmallBankSemanticsTest, SendPaymentRejectsInsufficientFunds) {
  SmallBankConfig cfg;
  cfg.num_accounts = 2;
  SmallBankWorkload wl(cfg);
  auto store = LoadedStore(wl);
  ASSERT_TRUE(
      wl.SendPayment(*store, 0, 1, 5 * SmallBankWorkload::kInitialBalanceCents).ok());
  EXPECT_EQ(SmallBankWorkload::DecodeBalance(
                MustRead(*store, SmallBankWorkload::CheckingKey(0))),
            SmallBankWorkload::kInitialBalanceCents);
  EXPECT_EQ(SmallBankWorkload::DecodeBalance(
                MustRead(*store, SmallBankWorkload::CheckingKey(1))),
            SmallBankWorkload::kInitialBalanceCents);
}

// FreeHealth: the contended episode counter is exact under concurrency —
// every committed CreateEpisode produced a distinct episode row.
TEST(FreeHealthSemanticsTest, ConcurrentEpisodeCreationIsExact) {
  FreeHealthConfig cfg;
  cfg.num_patients = 4;  // few patients: force counter contention
  cfg.num_users = 4;
  cfg.num_drugs = 10;
  FreeHealthWorkload wl(cfg);
  auto store = LoadedStore(wl);

  std::vector<std::thread> doctors;
  std::atomic<int> committed{0};
  for (int t = 0; t < 4; ++t) {
    doctors.emplace_back([&, t] {
      Rng rng(t + 50);
      for (int i = 0; i < 25; ++i) {
        if (wl.RunType(FreeHealthTxn::kCreateEpisode, *store, rng).ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& d : doctors) {
    d.join();
  }

  uint32_t total_episodes = 0;
  for (uint32_t p = 0; p < 4; ++p) {
    FhCounters counters =
        FhCounters::Decode(MustRead(*store, FreeHealthWorkload::PatientCountersKey(p)));
    // Every counted episode exists as a row.
    for (uint32_t e = 0; e < counters.episodes; ++e) {
      MustRead(*store, FreeHealthWorkload::EpisodeKey(p, e));
    }
    total_episodes += counters.episodes;
  }
  EXPECT_EQ(total_episodes, 4 * cfg.episodes_per_patient + committed.load());
}

TEST(FreeHealthSemanticsTest, DeactivationSticks) {
  FreeHealthConfig cfg;
  cfg.num_patients = 10;
  FreeHealthWorkload wl(cfg);
  auto store = LoadedStore(wl);
  Rng rng(60);
  ASSERT_TRUE(wl.RunType(FreeHealthTxn::kDeactivatePatient, *store, rng).ok());
  bool any_inactive = false;
  for (uint32_t p = 0; p < 10; ++p) {
    any_inactive |= MustRead(*store, FreeHealthWorkload::PatientKey(p)).find("inactive") !=
                    std::string::npos;
  }
  EXPECT_TRUE(any_inactive);
}

}  // namespace
}  // namespace obladi
