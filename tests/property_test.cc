// Property-style sweeps (parameterized gtest) across ORAM configurations,
// plus serialization round-trips for every checkpointable structure.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/crypto/encryptor.h"
#include "src/oram/path.h"
#include "src/oram/ring_oram.h"
#include "src/proxy/key_directory.h"
#include "src/recovery/recovery_unit.h"
#include "src/storage/latency_store.h"
#include "src/storage/memory_store.h"

namespace obladi {
namespace {

// ---------------------------------------------------------------------------
// Parameterized ORAM sweep: correctness + invariants must hold for every
// (Z, payload, parallel-mode) combination.
// ---------------------------------------------------------------------------

struct SweepParam {
  uint32_t z;
  size_t payload;
  bool parallel;
  bool defer;
};

class OramSweepTest : public testing::TestWithParam<SweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    Configs, OramSweepTest,
    testing::Values(SweepParam{2, 32, true, true}, SweepParam{4, 32, true, true},
                    SweepParam{8, 64, true, true}, SweepParam{16, 128, true, true},
                    SweepParam{4, 32, false, false}, SweepParam{8, 64, true, false},
                    SweepParam{4, 1024, true, true}),
    [](const testing::TestParamInfo<SweepParam>& info) {
      return "z" + std::to_string(info.param.z) + "_p" + std::to_string(info.param.payload) +
             (info.param.parallel ? (info.param.defer ? "_deferred" : "_eager") : "_seq");
    });

TEST_P(OramSweepTest, RandomWorkloadKeepsValuesAndInvariants) {
  const SweepParam& p = GetParam();
  const uint64_t kCapacity = 96;
  RingOramConfig config = RingOramConfig::ForCapacity(kCapacity, p.z, p.payload);
  RingOramOptions options;
  options.parallel = p.parallel;
  options.defer_writes = p.defer;
  options.io_threads = 4;
  auto store = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                   config.slots_per_bucket());
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("sweep"), false, p.z * 131 + p.payload));
  RingOram oram(config, options, store, encryptor, p.z * 7 + 3);

  std::vector<Bytes> values(kCapacity);
  std::map<BlockId, Bytes> expected;
  for (BlockId id = 0; id < kCapacity; ++id) {
    values[id] = BytesFromString("v" + std::to_string(id));
    values[id].resize(p.payload, 0);
    expected[id] = values[id];
  }
  ASSERT_TRUE(oram.Initialize(values).ok());

  Rng rng(p.z * 1000 + p.payload);
  for (int epoch = 0; epoch < 12; ++epoch) {
    std::vector<BlockId> ids;
    while (ids.size() < 5) {
      BlockId id = rng.Uniform(kCapacity);
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    auto result = oram.ReadBatch(ids);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ((*result)[i], expected[ids[i]]) << "epoch " << epoch;
    }
    BlockId wid = rng.Uniform(kCapacity);
    Bytes wval = BytesFromString("w" + std::to_string(epoch));
    wval.resize(p.payload, 0);
    expected[wid] = wval;
    ASSERT_TRUE(oram.WriteBatch({{wid, wval}}, 2).ok());
    ASSERT_TRUE(oram.FinishEpoch().ok());
    ASSERT_TRUE(oram.CheckInvariants().ok()) << "epoch " << epoch;
  }
}

TEST_P(OramSweepTest, EvictionCountDependsOnlyOnAccessCount) {
  const SweepParam& p = GetParam();
  RingOramConfig config = RingOramConfig::ForCapacity(64, p.z, p.payload);
  RingOramOptions options;
  options.parallel = p.parallel;
  options.defer_writes = p.defer;
  options.io_threads = 4;
  auto store = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                   config.slots_per_bucket());
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("k"), false, 5));
  RingOram oram(config, options, store, encryptor, 5);
  ASSERT_TRUE(oram.Initialize(std::vector<Bytes>(64)).ok());

  const uint64_t accesses = 4 * config.a + 1;
  std::vector<BlockId> batch;
  for (uint64_t i = 0; i < accesses; ++i) {
    batch.push_back(i % 2 == 0 ? kInvalidBlockId : static_cast<BlockId>(i % 64));
  }
  // Distinct real ids only — replace duplicates with padding.
  std::set<BlockId> seen;
  for (auto& id : batch) {
    if (id != kInvalidBlockId && !seen.insert(id).second) {
      id = kInvalidBlockId;
    }
  }
  ASSERT_TRUE(oram.ReadBatch(batch).ok());
  ASSERT_TRUE(oram.FinishEpoch().ok());
  EXPECT_EQ(oram.evict_count(), accesses / config.a);
  EXPECT_EQ(oram.access_count(), accesses);
}

// ---------------------------------------------------------------------------
// Serialization round-trips
// ---------------------------------------------------------------------------

TEST(BucketMetaSerdeTest, RoundTrip) {
  BucketMeta m;
  m.Init(4, 6);
  m.perm = {9, 3, 0, 1, 2, 4, 5, 6, 7, 8};
  m.valid[3] = 0;
  m.real_ids[1] = 42;
  m.real_leaves[1] = 7;
  m.reads_since_write = 3;
  m.dummies_used = 2;
  m.write_count = 11;

  BinaryWriter w;
  m.Serialize(w);
  Bytes buf = w.Take();
  BinaryReader r(buf);
  BucketMeta back = BucketMeta::Deserialize(r);
  EXPECT_EQ(back.perm, m.perm);
  EXPECT_EQ(back.valid, m.valid);
  EXPECT_EQ(back.real_ids, m.real_ids);
  EXPECT_EQ(back.real_leaves, m.real_leaves);
  EXPECT_EQ(back.reads_since_write, 3u);
  EXPECT_EQ(back.dummies_used, 2u);
  EXPECT_EQ(back.write_count, 11u);
}

TEST(StashSerdeTest, PaddedSizeIsOccupancyIndependent) {
  size_t payload = 48;
  Stash empty;
  Stash busy;
  for (int i = 0; i < 5; ++i) {
    StashEntry e;
    e.leaf = static_cast<Leaf>(i);
    e.value = BytesFromString("value" + std::to_string(i));
    e.value_ready = true;
    busy.Put(static_cast<BlockId>(i), std::move(e));
  }
  // §8: stash checkpoints are padded so their size leaks nothing.
  EXPECT_EQ(empty.SerializePadded(16, payload).size(), busy.SerializePadded(16, payload).size());
}

TEST(StashSerdeTest, RoundTripPreservesEntries) {
  Stash s;
  StashEntry e;
  e.leaf = 3;
  e.value = BytesFromString("hello");
  e.value_ready = true;
  e.from_logical_access = true;
  s.Put(77, std::move(e));
  Stash back = Stash::Deserialize(s.SerializePadded(8, 16));
  ASSERT_TRUE(back.Contains(77));
  EXPECT_EQ(back.Find(77)->leaf, 3u);
  Bytes expected = BytesFromString("hello");
  expected.resize(16, 0);
  EXPECT_EQ(back.Find(77)->value, expected);
  EXPECT_EQ(back.size(), 1u);  // padding entries are dropped
}

TEST(BatchPlanSerdeTest, RoundTrip) {
  BatchPlan plan;
  plan.epoch = 12;
  plan.batch_index = 3;
  plan.requests = {{5, 9}, {kInvalidBlockId, 2}, {7, 0}};
  BatchPlan back = BatchPlan::Deserialize(plan.Serialize());
  EXPECT_EQ(back.epoch, 12u);
  EXPECT_EQ(back.batch_index, 3u);
  ASSERT_EQ(back.requests.size(), 3u);
  EXPECT_EQ(back.requests[1].id, kInvalidBlockId);
  EXPECT_EQ(back.requests[2].leaf, 0u);
}

TEST(PositionMapTest, DeltaTracksDirtyEntriesAndPaddingIsIgnored) {
  PositionMap m(16);
  m.Set(3, 7);
  m.Set(9, 1);
  Bytes delta = m.SerializeDelta();
  EXPECT_EQ(m.dirty_count(), 0u);  // cleared by serialization

  PositionMap other(16);
  // Append padding entries like the recovery unit does.
  BinaryReader peek(delta);
  uint32_t n = peek.GetU32();
  BinaryWriter padded;
  padded.PutU32(n + 2);
  padded.PutRaw(delta.data() + 4, delta.size() - 4);
  for (int i = 0; i < 2; ++i) {
    padded.PutU64(kInvalidBlockId);
    padded.PutU32(kInvalidLeaf);
  }
  other.ApplyDelta(padded.Take());
  EXPECT_EQ(other.Get(3), 7u);
  EXPECT_EQ(other.Get(9), 1u);
  EXPECT_FALSE(other.Contains(0));
}

TEST(PositionMapTest, FullSerializationRoundTrip) {
  PositionMap m(8);
  for (BlockId id = 0; id < 8; ++id) {
    m.Set(id, static_cast<Leaf>(id * 3 % 5));
  }
  PositionMap back = PositionMap::DeserializeFull(m.SerializeFull());
  EXPECT_EQ(back.capacity(), 8u);
  for (BlockId id = 0; id < 8; ++id) {
    EXPECT_EQ(back.Get(id), m.Get(id));
  }
}

TEST(PositionMapTest, DeltaRoundTripAppliesOnlyDirtyEntries) {
  PositionMap m(16);
  for (BlockId id = 0; id < 16; ++id) {
    m.Set(id, 1);
  }
  m.ClearDirty();
  EXPECT_EQ(m.dirty_count(), 0u);
  m.Set(3, 7);
  m.Set(9, 4);
  EXPECT_EQ(m.dirty_count(), 2u);
  Bytes delta = m.SerializeDelta();
  EXPECT_EQ(m.dirty_count(), 0u);  // serializing consumes the dirty set

  PositionMap replica(16);
  for (BlockId id = 0; id < 16; ++id) {
    replica.Set(id, 1);
  }
  replica.ApplyDelta(delta);
  EXPECT_EQ(replica.Get(3), 7u);
  EXPECT_EQ(replica.Get(9), 4u);
  for (BlockId id = 0; id < 16; ++id) {
    if (id != 3 && id != 9) {
      EXPECT_EQ(replica.Get(id), 1u) << "id " << id << " touched by unrelated delta";
    }
  }
}

TEST(PositionMapTest, ApplyDeltaIgnoresOutOfRangePaddingIds) {
  // Checkpoint deltas are padded with (kInvalidBlockId, kInvalidLeaf) pairs
  // so their size is workload independent (§8); applying them must be a
  // no-op. Hand-build a delta that mixes real entries with padding.
  BinaryWriter w;
  w.PutU32(4);
  w.PutU64(2);
  w.PutU32(11);  // real: id 2 -> leaf 11
  w.PutU64(kInvalidBlockId);
  w.PutU32(kInvalidLeaf);  // padding
  w.PutU64(1000);
  w.PutU32(5);  // out of range for an 8-entry map: must be dropped
  w.PutU64(7);
  w.PutU32(3);  // real: id 7 -> leaf 3
  PositionMap m(8);
  m.ApplyDelta(w.Take());
  EXPECT_EQ(m.Get(2), 11u);
  EXPECT_EQ(m.Get(7), 3u);
  EXPECT_FALSE(m.Contains(5));  // untouched entries stay unmapped
}

// ---------------------------------------------------------------------------
// Key directory
// ---------------------------------------------------------------------------

TEST(KeyDirectoryTest, AssignsDenseIdsAndLooksUp) {
  KeyDirectory dir(4);
  EXPECT_EQ(*dir.GetOrCreate("a"), 0u);
  EXPECT_EQ(*dir.GetOrCreate("b"), 1u);
  EXPECT_EQ(*dir.GetOrCreate("a"), 0u);  // idempotent
  EXPECT_EQ(*dir.Lookup("b"), 1u);
  EXPECT_EQ(dir.Lookup("zzz").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dir.size(), 2u);
}

TEST(KeyDirectoryTest, EnforcesCapacity) {
  KeyDirectory dir(2);
  ASSERT_TRUE(dir.GetOrCreate("a").ok());
  ASSERT_TRUE(dir.GetOrCreate("b").ok());
  EXPECT_EQ(dir.GetOrCreate("c").status().code(), StatusCode::kResourceExhausted);
}

TEST(KeyDirectoryTest, ExhaustionLeavesDirectoryIntact) {
  // Hitting ORAM capacity must not corrupt the directory: existing ids keep
  // resolving, the failed key is not half-created, and an existing key's
  // GetOrCreate still succeeds afterwards.
  KeyDirectory dir(3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dir.GetOrCreate("k" + std::to_string(i)).ok());
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    EXPECT_EQ(dir.GetOrCreate("overflow").status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(dir.size(), 3u);
  EXPECT_EQ(dir.Lookup("overflow").status().code(), StatusCode::kNotFound);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(*dir.GetOrCreate("k" + std::to_string(i)), static_cast<BlockId>(i));
  }
  // The exhausted directory still serializes and rebuilds faithfully.
  KeyDirectory rebuilt(3);
  rebuilt.ApplyFull(dir.SerializeFull());
  EXPECT_EQ(rebuilt.size(), 3u);
  EXPECT_EQ(rebuilt.GetOrCreate("another").status().code(), StatusCode::kResourceExhausted);
}

TEST(KeyDirectoryTest, FullAndDeltaSerializationRoundTrip) {
  KeyDirectory dir(16);
  (void)dir.GetOrCreate("alpha");
  (void)dir.GetOrCreate("beta");
  Bytes full = dir.SerializeFull();
  (void)dir.GetOrCreate("gamma");
  Bytes delta = dir.SerializeDelta();

  KeyDirectory rebuilt(16);
  rebuilt.ApplyFull(full);
  EXPECT_EQ(rebuilt.size(), 2u);
  rebuilt.ApplyDelta(delta);
  EXPECT_EQ(rebuilt.size(), 3u);
  EXPECT_EQ(*rebuilt.Lookup("gamma"), 2u);
  // Applying the same delta twice is harmless (recovery may see overlaps).
  rebuilt.ApplyDelta(delta);
  EXPECT_EQ(rebuilt.size(), 3u);
}

// ---------------------------------------------------------------------------
// Recovery unit (unit level, no proxy)
// ---------------------------------------------------------------------------

TEST(RecoveryUnitTest, CheckpointAndRecoverRoundTrip) {
  RingOramConfig config = RingOramConfig::ForCapacity(64, 4, 32);
  RingOramOptions options;
  options.io_threads = 4;
  auto store = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                   config.slots_per_bucket());
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("k"), false, 2));
  RingOram oram(config, options, store, encryptor, 2);
  ASSERT_TRUE(oram.Initialize(std::vector<Bytes>(64)).ok());

  auto log = std::make_shared<MemoryLogStore>();
  RecoveryConfig rcfg;
  rcfg.full_checkpoint_interval = 2;
  rcfg.posmap_delta_pad_entries = 8;
  RecoveryUnit recovery(rcfg, log, encryptor);
  ASSERT_TRUE(recovery.LogFullCheckpoint(oram).ok());
  oram.SetBatchPlannedHook(
      [&](const BatchPlan& plan) { return recovery.LogReadBatchPlan(plan); });

  ASSERT_TRUE(oram.ReadBatch({1, 2, 3}).ok());
  ASSERT_TRUE(oram.FinishEpoch().ok());
  ASSERT_TRUE(recovery.LogEpochCommit(oram).ok());
  // One more batch in an epoch that never commits.
  ASSERT_TRUE(oram.ReadBatch({4, 5}).ok());

  auto recovered = recovery.Recover();
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(recovered->has_state);
  ASSERT_EQ(recovered->shards.size(), 1u);  // single-ORAM convenience API = shard 0
  EXPECT_EQ(recovered->shards[0].access_count, oram.access_count() - 2);  // pre-crash epoch
  EXPECT_EQ(recovered->pending_plans.size(), 1u);
  EXPECT_EQ(recovered->pending_plans[0].shard, 0u);
  EXPECT_EQ(recovered->pending_plans[0].plan.requests.size(), 2u);
  EXPECT_EQ(recovered->shards[0].metas.size(), config.num_buckets());
}

TEST(RecoveryUnitTest, PosmapDeltaIsPaddedToWorstCase) {
  RingOramConfig config = RingOramConfig::ForCapacity(64, 4, 32);
  RingOramOptions options;
  options.io_threads = 2;
  auto store = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                   config.slots_per_bucket());
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("k"), false, 3));

  auto record_sizes = [&](size_t touched) {
    RingOram oram(config, options, store, encryptor, 3);
    EXPECT_TRUE(oram.Initialize(std::vector<Bytes>(64)).ok());
    auto log = std::make_shared<MemoryLogStore>();
    RecoveryConfig rcfg;
    rcfg.full_checkpoint_interval = 100;  // keep logging deltas
    rcfg.posmap_delta_pad_entries = 16;
    RecoveryUnit recovery(rcfg, log, encryptor);
    EXPECT_TRUE(recovery.LogFullCheckpoint(oram).ok());
    std::vector<BlockId> ids;
    for (size_t i = 0; i < touched; ++i) {
      ids.push_back(static_cast<BlockId>(i));
    }
    EXPECT_TRUE(oram.ReadBatch(ids).ok());
    EXPECT_TRUE(oram.FinishEpoch().ok());
    EXPECT_TRUE(recovery.LogEpochCommit(oram).ok());
    auto all = log.get()->ReadAll();
    EXPECT_TRUE(all.ok());
    return all->back().size();
  };

  // The epoch-delta record's position-map section must not reveal how many
  // real requests ran. (Bucket metadata counts are public, so compare runs
  // with the same physical touch footprint: same batch size via padding.)
  size_t a = record_sizes(2);
  size_t b = record_sizes(2);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Latency store batch semantics
// ---------------------------------------------------------------------------

TEST(LatencyBatchTest, BatchedReadsPayOneRoundTrip) {
  auto base = std::make_shared<MemoryBucketStore>(4, 2);
  for (BucketIndex b = 0; b < 4; ++b) {
    ASSERT_TRUE(base->WriteBucket(b, 0, std::vector<Bytes>(2, Bytes(4, 1))).ok());
  }
  LatencyProfile profile;
  profile.read_latency_us = 3000;
  LatencyBucketStore store(base, profile);

  std::vector<SlotRef> refs;
  for (BucketIndex b = 0; b < 4; ++b) {
    refs.push_back(SlotRef{b, 0, 0});
  }
  uint64_t start = NowMicros();
  auto out = store.ReadSlotsBatch(refs);
  uint64_t elapsed = NowMicros() - start;
  ASSERT_EQ(out.size(), 4u);
  EXPECT_GE(elapsed, 2500u);
  EXPECT_LT(elapsed, 9000u);  // one round trip, not four
  EXPECT_EQ(store.stats().reads.load(), 4u);
}

TEST(LatencyBatchTest, InflightCapCausesWaves) {
  auto base = std::make_shared<MemoryBucketStore>(8, 1);
  for (BucketIndex b = 0; b < 8; ++b) {
    ASSERT_TRUE(base->WriteBucket(b, 0, std::vector<Bytes>(1, Bytes(4, 1))).ok());
  }
  LatencyProfile profile;
  profile.read_latency_us = 2000;
  profile.max_inflight = 2;  // 8 requests => 4 waves
  LatencyBucketStore store(base, profile);
  std::vector<SlotRef> refs;
  for (BucketIndex b = 0; b < 8; ++b) {
    refs.push_back(SlotRef{b, 0, 0});
  }
  uint64_t start = NowMicros();
  (void)store.ReadSlotsBatch(refs);
  uint64_t elapsed = NowMicros() - start;
  EXPECT_GE(elapsed, 7000u);  // ~4 waves x 2ms
}

// ---------------------------------------------------------------------------
// Shadow-paging determinism helper
// ---------------------------------------------------------------------------

TEST(ShadowPagingTest, BucketVersionsMatchEvictionTouchCounts) {
  // After E evictions with no early reshuffles, each bucket's write_count
  // equals EvictionTouchCount(E) — the determinism §8's recovery relies on.
  RingOramConfig config = RingOramConfig::ForCapacity(64, 4, 32);
  RingOramOptions options;
  options.parallel = true;
  options.defer_writes = true;
  options.io_threads = 4;
  auto store = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                   config.slots_per_bucket());
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("k"), false, 9));
  RingOram oram(config, options, store, encryptor, 9);
  ASSERT_TRUE(oram.Initialize(std::vector<Bytes>(64)).ok());

  // Dummy-only accesses: no real blocks => no early reshuffles.
  for (int epoch = 0; epoch < 6; ++epoch) {
    ASSERT_TRUE(oram.ReadBatch(std::vector<BlockId>(6, kInvalidBlockId)).ok());
    ASSERT_TRUE(oram.FinishEpoch().ok());
  }
  if (oram.stats().early_reshuffles == 0) {
    for (BucketIndex b = 0; b < config.num_buckets(); ++b) {
      EXPECT_EQ(oram.bucket_metas()[b].write_count,
                EvictionTouchCount(oram.evict_count(), b, config.num_levels))
          << "bucket " << b;
    }
  }
}

}  // namespace
}  // namespace obladi
