// End-to-end nemesis test: run the fault-injecting harness against a full
// loopback deployment (proxy -> remote stores -> storage server -> file-backed
// buckets + WAL), then audit the surviving client history offline. This is the
// subsystem's acceptance loop in miniature: faults must actually fire, the run
// must still make progress, and the observed history must verify serializable.
#include <cstdio>

#include "gtest/gtest.h"
#include "src/audit/history.h"
#include "src/audit/nemesis.h"
#include "src/audit/verifier.h"

namespace obladi {
namespace {

TEST(AuditNemesisTest, FaultyRunStillAuditsSerializable) {
  NemesisOptions options;
  options.num_shards = 4;
  options.num_clients = 8;
  options.duration_ms = 2200;
  options.warmup_ms = 150;
  options.fault_period_ms = 600;
  options.data_dir = testing::TempDir() + "/obladi_nemesis_test";
  options.trace_dir = testing::TempDir() + "/obladi_nemesis_traces";
  options.seed = 11;

  auto result = RunNemesis(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Faults fired: the alternating schedule must have hit both fault classes.
  EXPECT_GE(result->storage_restarts, 1u);
  EXPECT_GE(result->proxy_recoveries, 1u);
  // The run made progress despite the faults.
  EXPECT_GT(result->driver.committed, 0u);
  EXPECT_GT(result->history.txns.size(), 0u);
  EXPECT_GT(result->driver.audit_trace_bytes, 0u);

  auto report = VerifyHistory(result->history);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->serializable) << report->Summary();
  EXPECT_GT(report->reads_checked, 0u);

  // The traces written to disk round-trip into the same auditable history.
  auto reloaded = LoadHistory(options.trace_dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->txns.size(), result->history.txns.size());
  EXPECT_EQ(reloaded->initial.size(), result->history.initial.size());
  auto reloaded_report = VerifyHistory(*reloaded);
  ASSERT_TRUE(reloaded_report.ok()) << reloaded_report.status().ToString();
  EXPECT_TRUE(reloaded_report->serializable) << reloaded_report->Summary();
}

// The chaos palette in one short run: partition one shard's storage link
// mid-epoch (per-shard deployment through the fault relay), fsync-stall the
// WAL, and jump the claimed-timestamp offset — all at once, with the
// hung-client watchdog armed. The surviving history must still audit
// serializable; the clock-skew scenario in particular proves an
// order-preserving skew is invisible to the verifier.
TEST(AuditNemesisTest, ChaosPaletteRunStillAuditsSerializable) {
  NemesisOptions options;
  options.num_shards = 4;
  options.num_clients = 8;
  options.duration_ms = 2500;
  options.warmup_ms = 150;
  options.fault_period_ms = 500;
  options.kill_storage = false;
  options.crash_proxy = false;
  options.partition_shard = true;
  options.partition_hold_ms = 400;
  options.slow_disk = true;
  options.clock_skew = true;
  options.progress_timeout_ms = 60000;  // hung client = hard test failure
  options.data_dir = testing::TempDir() + "/obladi_chaos_test";
  options.trace_dir = testing::TempDir() + "/obladi_chaos_traces";
  options.seed = 13;

  auto result = RunNemesis(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every palette entry fired at least once.
  EXPECT_GE(result->partitions, 1u);
  EXPECT_GE(result->wal_stalls, 1u);
  EXPECT_GE(result->skew_jumps, 1u);
  EXPECT_GE(result->faults_injected, 1u);
  // The run made progress despite the chaos.
  EXPECT_GT(result->driver.committed, 0u);
  EXPECT_GT(result->history.txns.size(), 0u);

  auto report = VerifyHistory(result->history);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->serializable) << report->Summary();
  EXPECT_GT(report->reads_checked, 0u);
}

}  // namespace
}  // namespace obladi
