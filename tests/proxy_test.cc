#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/common/rng.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"

namespace obladi {
namespace {

struct ProxyEnv {
  ObladiConfig config;
  std::shared_ptr<MemoryBucketStore> store;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<ObladiStore> proxy;
};

ProxyEnv MakeProxy(uint64_t capacity = 256, bool recovery = true) {
  ProxyEnv env;
  env.config = ObladiConfig::ForCapacity(capacity, /*z=*/4, /*payload=*/128);
  env.config.read_batches_per_epoch = 3;
  env.config.read_batch_size = 8;
  env.config.write_batch_size = 8;
  env.config.recovery.enabled = recovery;
  env.config.recovery.full_checkpoint_interval = 4;
  env.config.oram_options.io_threads = 8;
  env.store = std::make_shared<MemoryBucketStore>(env.config.oram.num_buckets(),
                                                  env.config.oram.slots_per_bucket());
  env.log = std::make_shared<MemoryLogStore>();
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  return env;
}

std::vector<std::pair<Key, std::string>> SimpleRecords(int n) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  return records;
}

// Run a client function on a thread while the main thread paces epochs until
// the client finishes.
void RunWithPacing(ObladiStore& proxy, const std::function<void()>& client) {
  std::atomic<bool> done{false};
  std::thread client_thread([&] {
    client();
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(proxy.FinishEpochNow().ok());
  }
  client_thread.join();
}

TEST(ObladiStoreTest, LoadAndReadCommitted) {
  auto env = MakeProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(50)).ok());

  RunWithPacing(*env.proxy, [&] {
    Status st = RunTransaction(*env.proxy, [&](Txn& txn) -> Status {
      auto v = txn.Read("key7");
      if (!v.ok()) {
        return v.status();
      }
      EXPECT_EQ(*v, "value7");
      return Status::Ok();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
}

TEST(ObladiStoreTest, WriteCommitReadBack) {
  auto env = MakeProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(50)).ok());

  RunWithPacing(*env.proxy, [&] {
    Status st = RunTransaction(*env.proxy, [&](Txn& txn) -> Status {
      return txn.Write("key3", "updated3");
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = RunTransaction(*env.proxy, [&](Txn& txn) -> Status {
      auto v = txn.Read("key3");
      if (!v.ok()) {
        return v.status();
      }
      EXPECT_EQ(*v, "updated3");
      return Status::Ok();
    });
    EXPECT_TRUE(st.ok());
  });
}

TEST(ObladiStoreTest, UnknownKeyIsNotFound) {
  auto env = MakeProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(5)).ok());
  Timestamp t = env.proxy->Begin();
  auto v = env.proxy->Read(t, "no-such-key");
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  env.proxy->Abort(t);
}

TEST(ObladiStoreTest, BlindWriteCreatesKey) {
  auto env = MakeProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(5)).ok());
  RunWithPacing(*env.proxy, [&] {
    Status st = RunTransaction(
        *env.proxy, [&](Txn& txn) -> Status { return txn.Write("fresh-key", "fresh"); });
    ASSERT_TRUE(st.ok());
    st = RunTransaction(*env.proxy, [&](Txn& txn) -> Status {
      auto v = txn.Read("fresh-key");
      if (!v.ok()) {
        return v.status();
      }
      EXPECT_EQ(*v, "fresh");
      return Status::Ok();
    });
    EXPECT_TRUE(st.ok());
  });
}

TEST(ObladiStoreTest, CommitDecisionArrivesOnlyAtEpochEnd) {
  auto env = MakeProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(10)).ok());

  std::atomic<bool> committed{false};
  std::thread client([&] {
    Timestamp t = env.proxy->Begin();
    ASSERT_TRUE(env.proxy->Write(t, "key1", "epoch-write").ok());
    Status st = env.proxy->Commit(t);  // blocks until the epoch ends
    EXPECT_TRUE(st.ok()) << st.ToString();
    committed.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(committed.load()) << "commit decision leaked before epoch end";
  ASSERT_TRUE(env.proxy->FinishEpochNow().ok());
  client.join();
  EXPECT_TRUE(committed.load());
}

TEST(ObladiStoreTest, VersionCacheServesRepeatedReadsWithoutNewFetches) {
  auto env = MakeProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(20)).ok());

  std::atomic<bool> done{false};
  std::thread client([&] {
    // Two transactions in the same epoch read the same key; the second read
    // must be served from the version cache (one ORAM fetch total).
    Timestamp t1 = env.proxy->Begin();
    Timestamp t2 = env.proxy->Begin();
    auto v1 = env.proxy->Read(t1, "key5");
    ASSERT_TRUE(v1.ok());
    auto v2 = env.proxy->Read(t2, "key5");
    ASSERT_TRUE(v2.ok());
    env.proxy->Abort(t1);
    env.proxy->Abort(t2);
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(env.proxy->StepReadBatch().ok() ||
                true);  // keep stepping; FailedPrecondition is fine
  }
  client.join();
  auto stats = env.proxy->stats();
  EXPECT_EQ(stats.oram_fetches, 1u);
  EXPECT_GE(stats.cache_hits, 1u);
}

TEST(ObladiStoreTest, ConflictingWritersOneAborts) {
  auto env = MakeProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(10)).ok());

  RunWithPacing(*env.proxy, [&] {
    // t_old writes after t_new read the same key's base: per MVTSO, a write
    // whose predecessor was read by a later transaction aborts. The read
    // itself can abort when it lands in the window where the epoch's batches
    // are all dispatched; retry the scenario with fresh transactions.
    for (int attempt = 0; attempt < 300; ++attempt) {
      Timestamp t_old = env.proxy->Begin();
      Timestamp t_new = env.proxy->Begin();
      auto v = env.proxy->Read(t_new, "key2");
      if (!v.ok()) {
        env.proxy->Abort(t_new);
        env.proxy->Abort(t_old);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      Status st = env.proxy->Write(t_old, "key2", "conflict");
      EXPECT_EQ(st.code(), StatusCode::kAborted);
      env.proxy->Abort(t_new);
      return;
    }
    FAIL() << "read never scheduled across 300 attempts";
  });
}

TEST(ObladiStoreTest, EpochFateSharing) {
  // Two committed transactions in one epoch: both must be durable together.
  auto env = MakeProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(20)).ok());

  std::atomic<int> commits{0};
  std::thread c1([&] {
    if (RunTransaction(*env.proxy,
                       [&](Txn& txn) { return txn.Write("key1", "a"); })
            .ok()) {
      commits.fetch_add(1);
    }
  });
  std::thread c2([&] {
    if (RunTransaction(*env.proxy,
                       [&](Txn& txn) { return txn.Write("key2", "b"); })
            .ok()) {
      commits.fetch_add(1);
    }
  });
  while (commits.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(env.proxy->FinishEpochNow().ok());
  }
  c1.join();
  c2.join();
  EXPECT_EQ(commits.load(), 2);
}

TEST(ObladiStoreTest, ReadBatchOverflowAbortsTransaction) {
  // Tiny epoch: 1 batch of 2 slots; the third distinct fetch cannot be
  // scheduled this epoch and must abort its transaction.
  ObladiConfig config = ObladiConfig::ForCapacity(64, 4, 128);
  config.read_batches_per_epoch = 1;
  config.read_batch_size = 2;
  config.recovery.enabled = false;
  auto store = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                   config.oram.slots_per_bucket());
  ObladiStore proxy(config, store, nullptr);
  ASSERT_TRUE(proxy.Load(SimpleRecords(10)).ok());

  Timestamp ta = proxy.Begin();
  Timestamp tb = proxy.Begin();
  Timestamp tc = proxy.Begin();
  std::thread f1([&] { (void)proxy.Read(ta, "key1"); });
  std::thread f2([&] { (void)proxy.Read(tb, "key2"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Both slots taken: this fetch fails immediately with an abort.
  auto v = proxy.Read(tc, "key3");
  EXPECT_EQ(v.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(proxy.FinishEpochNow().ok());
  f1.join();
  f2.join();
  EXPECT_GE(proxy.stats().batch_overflow_aborts, 1u);
}

// ---------------------------------------------------------------------------
// Pipelined epoch state machine
// ---------------------------------------------------------------------------

TEST(ObladiStorePipelineTest, RetirementOverlapsNextEpochExecution) {
  // Hold epoch 1 in the retiring state and show that (a) its commit decision
  // is withheld until retirement completes and (b) epoch 2 admits and
  // executes reads in the meantime.
  auto env = MakeProxy(256, /*recovery=*/false);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(30)).ok());

  std::promise<void> release;
  std::shared_future<void> release_fut = release.get_future().share();
  std::atomic<int> hook_calls{0};
  env.proxy->SetRetireHookForTest([&] {
    if (hook_calls.fetch_add(1) == 0) {
      release_fut.wait();
    }
  });

  std::atomic<bool> committed{false};
  Status commit_status;
  std::thread writer([&] {
    Timestamp t = env.proxy->Begin();
    ASSERT_TRUE(env.proxy->Write(t, "key1", "pipelined").ok());
    commit_status = env.proxy->Commit(t);
    committed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Close epoch 1: returns immediately, retirement parked in the hook.
  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(committed.load()) << "commit decision leaked before the epoch was durable";

  // Epoch 2 executes while epoch 1 retires: an ORAM fetch completes.
  std::atomic<bool> read_done{false};
  std::thread reader([&] {
    Timestamp t = env.proxy->Begin();
    auto v = env.proxy->Read(t, "key7");
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    if (v.ok()) {
      EXPECT_EQ(*v, "value7");
    }
    env.proxy->Abort(t);
    read_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(env.proxy->StepReadBatch().ok());
  reader.join();
  EXPECT_TRUE(read_done.load());
  EXPECT_FALSE(committed.load());

  release.set_value();
  ASSERT_TRUE(env.proxy->DrainRetirement().ok());
  writer.join();
  EXPECT_TRUE(commit_status.ok()) << commit_status.ToString();
  EXPECT_TRUE(env.proxy->FinishEpochNow().ok());
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
}

TEST(ObladiStorePipelineTest, CloseWaitsForPreviousRetirementDepthOne) {
  auto env = MakeProxy(256, /*recovery=*/false);
  // This test encodes the depth-1 compatibility baseline: the second close
  // stalls until the first epoch's retirement completes.
  env.config.pipeline_depth = 1;
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(20)).ok());

  std::promise<void> release;
  std::shared_future<void> release_fut = release.get_future().share();
  std::atomic<int> hook_calls{0};
  env.proxy->SetRetireHookForTest([&] {
    if (hook_calls.fetch_add(1) == 0) {
      release_fut.wait();
    }
  });

  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());  // epoch 1 retiring (held)
  std::atomic<bool> second_closed{false};
  std::thread closer([&] {
    // Epoch 2's close must stall on the depth-1 cap until epoch 1 retires.
    EXPECT_TRUE(env.proxy->CloseEpochNow().ok());
    second_closed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(second_closed.load()) << "pipeline depth exceeded 1";

  release.set_value();
  closer.join();
  ASSERT_TRUE(env.proxy->DrainRetirement().ok());
  auto stats = env.proxy->stats();
  EXPECT_GE(stats.retire_stall_us, 1000u);  // the 60ms hold shows up as stall
  EXPECT_GE(stats.epochs_overlapped, 1u);
  EXPECT_EQ(stats.epochs, 2u);
}

TEST(ObladiStorePipelineTest, CommittedWritesServeFromVersionCacheNextEpoch) {
  // The epoch's final writes become next-epoch base versions, so a read of a
  // just-committed key is a cache hit even while its write-back retires.
  auto env = MakeProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(20)).ok());

  std::thread writer([&] {
    Timestamp t = env.proxy->Begin();
    ASSERT_TRUE(env.proxy->Write(t, "key2", "carried").ok());
    EXPECT_TRUE(env.proxy->Commit(t).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(env.proxy->FinishEpochNow().ok());
  writer.join();

  uint64_t fetches_before = env.proxy->stats().oram_fetches;
  Timestamp r = env.proxy->Begin();
  auto v = env.proxy->Read(r, "key2");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "carried");
  env.proxy->Abort(r);
  auto stats = env.proxy->stats();
  EXPECT_EQ(stats.oram_fetches, fetches_before)
      << "read of a committed write went to the ORAM instead of the version cache";
  EXPECT_GE(stats.cache_hits, 1u);
}

TEST(ObladiStorePipelineTest, PipelinedPacedRequestShapeIsEpochInvariant) {
  // Under the pipelined pacer with live clients, every closed epoch must
  // still present exactly R quota-sized sub-batch plans per shard — the
  // request-level shape the adversary sees does not depend on overlap.
  auto env = MakeProxy(512, /*recovery=*/false);
  env.config.timed_mode = true;
  env.config.batch_interval_us = 500;
  env.config.num_shards = 2;
  env.config.read_batch_size = 8;
  env.config.write_batch_size = 8;
  env.store = std::make_shared<MemoryBucketStore>(
      env.config.StoreBuckets(), env.config.MakeLayout().shard_config.slots_per_bucket());
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, nullptr);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(100)).ok());

  std::mutex plan_mu;
  std::map<std::pair<uint64_t, uint32_t>, std::vector<size_t>> plans;  // (epoch, shard)
  env.proxy->oram()->SetBatchPlannedHook([&](uint32_t shard, const BatchPlan& plan) {
    std::lock_guard<std::mutex> lk(plan_mu);
    plans[{plan.epoch, shard}].push_back(plan.requests.size());
    return Status::Ok();
  });

  env.proxy->Start();
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(c + 7);
      for (int i = 0; i < 4; ++i) {
        std::string key = "key" + std::to_string(rng.Uniform(100));
        (void)RunTransaction(*env.proxy, [&](Txn& txn) -> Status {
          auto v = txn.Read(key);
          if (!v.ok()) {
            return v.status();
          }
          return txn.Write(key, *v + "x");
        });
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  env.proxy->Stop();

  std::lock_guard<std::mutex> lk(plan_mu);
  ASSERT_FALSE(plans.empty());
  uint64_t last_epoch = 0;
  for (const auto& [key, sizes] : plans) {
    last_epoch = std::max(last_epoch, key.first);
  }
  size_t complete_epochs = 0;
  for (const auto& [key, sizes] : plans) {
    if (key.first == last_epoch) {
      continue;  // the run may stop mid-epoch
    }
    ++complete_epochs;
    EXPECT_EQ(sizes.size(), env.config.read_batches_per_epoch)
        << "epoch " << key.first << " shard " << key.second;
    for (size_t sz : sizes) {
      EXPECT_EQ(sz, env.config.read_quota())
          << "epoch " << key.first << " shard " << key.second;
    }
  }
  EXPECT_GT(complete_epochs, 0u);
}

TEST(ObladiStoreTest, TimedModeMakesProgressWithoutManualPacing) {
  auto env = MakeProxy();
  env.config.timed_mode = true;
  env.config.batch_interval_us = 500;
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(30)).ok());
  env.proxy->Start();

  Status st = RunTransaction(*env.proxy, [&](Txn& txn) -> Status {
    auto v = txn.Read("key4");
    if (!v.ok()) {
      return v.status();
    }
    return txn.Write("key4", *v + "+1");
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  env.proxy->Stop();
}

TEST(ObladiStoreTest, ManyConcurrentClientsTimedMode) {
  auto env = MakeProxy(512);
  env.config.timed_mode = true;
  env.config.batch_interval_us = 300;
  env.config.read_batch_size = 16;
  env.config.write_batch_size = 16;
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(100)).ok());
  env.proxy->Start();

  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(c + 1);
      for (int i = 0; i < 5; ++i) {
        std::string key = "key" + std::to_string(rng.Uniform(100));
        Status st = RunTransaction(*env.proxy, [&](Txn& txn) -> Status {
          auto v = txn.Read(key);
          if (!v.ok()) {
            return v.status();
          }
          return txn.Write(key, *v + "!");
        });
        if (st.ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  env.proxy->Stop();
  EXPECT_GT(committed.load(), 30);
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
}

}  // namespace
}  // namespace obladi
