// Tests for the sharded ORAM subsystem: routing correctness, obliviousness
// of the per-shard request shape under skew, proxy integration at K=4
// (read-your-writes, epoch fate sharing, crash recovery), and read-batch
// throughput scaling over a latency-bound backend.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/proxy/obladi_store.h"
#include "src/shard/shard_router.h"
#include "src/shard/sharded_oram_set.h"
#include "src/storage/latency_store.h"
#include "src/storage/memory_store.h"
#include "tests/paced_proxy.h"

namespace obladi {
namespace {

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, GlobalLocalRoundTrip) {
  ShardRouter router(4);
  for (BlockId g = 0; g < 1000; ++g) {
    uint32_t s = router.ShardOf(g);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(router.GlobalId(s, router.LocalId(g)), g);
  }
}

TEST(ShardRouterTest, DenseIdsStripeEvenly) {
  ShardRouter router(4);
  std::vector<uint64_t> counts(4, 0);
  std::vector<BlockId> max_local(4, 0);
  for (BlockId g = 0; g < 1024; ++g) {
    uint32_t s = router.ShardOf(g);
    counts[s]++;
    max_local[s] = std::max(max_local[s], router.LocalId(g));
  }
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(counts[s], 256u);
    EXPECT_EQ(max_local[s], 255u);  // per-shard local id space is dense
  }
}

TEST(ShardLayoutTest, SingleShardKeepsGlobalConfig) {
  RingOramConfig global = RingOramConfig::ForCapacity(1000, 4, 128);
  global.s += 1;  // hand-tuned parameter must survive K=1
  ShardLayout layout = ShardLayout::Make(global, 1);
  EXPECT_EQ(layout.shard_config.s, global.s);
  EXPECT_EQ(layout.total_buckets(), global.num_buckets());
}

TEST(ShardLayoutTest, MultiShardDerivesSmallerTrees) {
  RingOramConfig global = RingOramConfig::ForCapacity(4096, 4, 128);
  ShardLayout layout = ShardLayout::Make(global, 4);
  EXPECT_EQ(layout.shard_capacity(), 1024u);
  EXPECT_LT(layout.shard_config.num_levels, global.num_levels);
  EXPECT_TRUE(layout.shard_config.Validate().ok());
  EXPECT_EQ(layout.bucket_offset(2), 2 * layout.shard_config.num_buckets());
}

// ---------------------------------------------------------------------------
// ShardedOramSet correctness
// ---------------------------------------------------------------------------

struct ShardedEnv {
  ShardLayout layout;
  ShardedOramOptions options;
  std::shared_ptr<MemoryBucketStore> store;
  std::unique_ptr<ShardedOramSet> set;
};

ShardedEnv MakeSharded(uint32_t k, uint64_t capacity, size_t read_quota,
                       size_t write_quota, bool enable_trace = false,
                       uint64_t seed = 11) {
  ShardedEnv env;
  env.layout = ShardLayout::Make(RingOramConfig::ForCapacity(capacity, 4, 64), k);
  env.options.oram.io_threads = 8;
  env.options.oram.enable_trace = enable_trace;
  env.options.read_quota = read_quota;
  env.options.write_quota = write_quota;
  env.store = std::make_shared<MemoryBucketStore>(
      env.layout.total_buckets(), env.layout.shard_config.slots_per_bucket());
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("shard"), false, seed));
  env.set = std::make_unique<ShardedOramSet>(env.layout, env.options, env.store,
                                             encryptor, seed);
  return env;
}

Bytes ValueFor(BlockId id) {
  return BytesFromString("value-" + std::to_string(id));
}

// Block payloads are fixed-size; values read back from the tree are
// zero-padded to the block payload size (the proxy strips this with its
// length prefix). Compare the content prefix and require a zero tail.
void ExpectPayload(const Bytes& got, const Bytes& want) {
  ASSERT_GE(got.size(), want.size());
  EXPECT_EQ(Bytes(got.begin(), got.begin() + static_cast<ptrdiff_t>(want.size())), want);
  for (size_t i = want.size(); i < got.size(); ++i) {
    ASSERT_EQ(got[i], 0u) << "non-zero padding at byte " << i;
  }
}

TEST(ShardedOramSetTest, ReadWriteRoundTripAcrossShards) {
  auto env = MakeSharded(4, 256, /*read_quota=*/4, /*write_quota=*/4);
  std::vector<Bytes> values(256);
  for (BlockId id = 0; id < 256; ++id) {
    values[id] = ValueFor(id);
  }
  ASSERT_TRUE(env.set->Initialize(values).ok());

  // Reads hitting all four shards in one global batch, results in order.
  std::vector<BlockId> ids = {0, 1, 2, 3, 100, 101, 202, 255};
  auto result = env.set->ReadBatch(ids);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (size_t i = 0; i < ids.size(); ++i) {
    ExpectPayload((*result)[i], ValueFor(ids[i]));
  }

  // Writes route to their shards; read back after the epoch flush.
  std::vector<std::pair<BlockId, Bytes>> writes = {
      {0, BytesFromString("w0")}, {7, BytesFromString("w7")}, {42, BytesFromString("w42")}};
  ASSERT_TRUE(env.set->WriteBatch(writes).ok());
  ASSERT_TRUE(env.set->FinishEpoch().ok());

  auto back = env.set->ReadBatch({0, 7, 42, 9});
  ASSERT_TRUE(back.ok());
  ExpectPayload((*back)[0], BytesFromString("w0"));
  ExpectPayload((*back)[1], BytesFromString("w7"));
  ExpectPayload((*back)[2], BytesFromString("w42"));
  ExpectPayload((*back)[3], ValueFor(9));
  ASSERT_TRUE(env.set->FinishEpoch().ok());
  EXPECT_TRUE(env.set->CheckInvariants().ok());
}

TEST(ShardedOramSetTest, CrossShardCiphertextSpliceIsDetected) {
  // All shards share one MAC key, so each ciphertext's AAD must bind its
  // *global* bucket index: two shards' trees have identical shapes and
  // lockstep version counters, and a malicious server could otherwise swap
  // ciphertexts between shard namespaces without failing verification.
  ShardLayout layout = ShardLayout::Make(RingOramConfig::ForCapacity(64, 4, 64), 2);
  layout.shard_config.authenticated = true;
  ShardedOramOptions options;
  options.oram.io_threads = 4;
  // The MAC binding itself must reject the splice; the decoded-id
  // cross-check would mask an AAD regression for real slots (and dummy
  // slots have no id check at all).
  options.oram.verify_decoded_ids = false;
  options.read_quota = 4;
  options.write_quota = 4;
  auto store = std::make_shared<MemoryBucketStore>(layout.total_buckets(),
                                                   layout.shard_config.slots_per_bucket());
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("splice"), /*authenticated=*/true, 31));
  ShardedOramSet set(layout, options, store, encryptor, 31);
  ASSERT_TRUE(set.Initialize(std::vector<Bytes>(64)).ok());

  // Adversary: swap every bucket of shard 0's region with the same-index
  // bucket of shard 1's region (all at version 0 right after Initialize).
  uint32_t per_shard = layout.shard_config.num_buckets();
  uint32_t slots = layout.shard_config.slots_per_bucket();
  for (uint32_t b = 0; b < per_shard; ++b) {
    std::vector<Bytes> img0(slots), img1(slots);
    for (uint32_t sl = 0; sl < slots; ++sl) {
      img0[sl] = *store->ReadSlot(b, 0, sl);
      img1[sl] = *store->ReadSlot(per_shard + b, 0, sl);
    }
    ASSERT_TRUE(store->WriteBucket(b, 0, std::move(img1)).ok());
    ASSERT_TRUE(store->WriteBucket(per_shard + b, 0, std::move(img0)).ok());
  }

  auto result = set.ReadBatch({0, 1, 2, 3});
  ASSERT_FALSE(result.ok()) << "spliced ciphertexts were accepted";
  EXPECT_EQ(result.status().code(), StatusCode::kIntegrityViolation);
}

TEST(ShardedOramSetTest, ShardAadsBindTheGlobalBucketIndex) {
  // A ciphertext MACed by shard 1 for local tuple (bucket, version, slot)
  // must not verify under shard 0's AAD for the same local tuple — the
  // shards share one key, so the AAD offset is what separates them.
  ShardLayout layout = ShardLayout::Make(RingOramConfig::ForCapacity(64, 4, 64), 2);
  Encryptor enc = Encryptor::FromMasterKey(BytesFromString("aad"), /*authenticated=*/true, 5);
  Bytes aad0 =
      BlockCodec::MakeAad(layout.ConfigForShard(0).aad_bucket_offset + 3, /*version=*/0,
                          /*slot=*/2);
  Bytes aad1 =
      BlockCodec::MakeAad(layout.ConfigForShard(1).aad_bucket_offset + 3, 0, 2);
  Bytes ct = enc.Encrypt(BytesFromString("payload"), aad1);
  EXPECT_TRUE(enc.Decrypt(ct, aad1).ok());
  EXPECT_FALSE(enc.Decrypt(ct, aad0).ok()) << "shard AADs collide across namespaces";
}

TEST(ShardedOramSetTest, OverflowingAShardQuotaIsRejected) {
  auto env = MakeSharded(4, 64, /*read_quota=*/2, /*write_quota=*/2);
  ASSERT_TRUE(env.set->Initialize(std::vector<Bytes>(64)).ok());
  // Ids 0, 4, 8 all stripe to shard 0; quota is 2.
  auto result = env.set->ReadBatch({0, 4, 8});
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Obliviousness of routing under skew
// ---------------------------------------------------------------------------

// Build one batch of `real` distinct ids drawn by `next`, respecting the
// per-shard quota (the proxy's admission control does the same).
std::vector<BlockId> DrawBatch(const ShardRouter& router, size_t real, size_t quota,
                               const std::function<BlockId()>& next) {
  std::vector<BlockId> ids;
  std::vector<size_t> per_shard(router.num_shards(), 0);
  std::vector<uint8_t> used(1 << 16, 0);
  while (ids.size() < real) {
    BlockId id = next();
    uint32_t s = router.ShardOf(id);
    if (used[id] || per_shard[s] >= quota) {
      continue;
    }
    used[id] = 1;
    per_shard[s]++;
    ids.push_back(id);
  }
  return ids;
}

// Acceptance criterion (1): the per-shard physical trace sizes for a
// uniform and a Zipf-skewed request stream of equal logical size match.
// The *request-level* shape is exactly fixed — every shard receives exactly
// read_quota requests per batch, each a full path read — and the slot-level
// trace (whose residual variation comes only from workload-independent coin
// flips in reshuffle/overlap timing) matches within a small tolerance.
TEST(ShardObliviousnessTest, PerShardRequestCountsAreExactlyWorkloadIndependent) {
  constexpr uint32_t kShards = 4;
  constexpr size_t kQuota = 8;
  constexpr size_t kRealPerBatch = 16;
  constexpr int kBatches = 24;

  auto run = [&](bool zipf) {
    auto env = MakeSharded(kShards, 512, kQuota, kQuota, /*trace=*/false, /*seed=*/17);
    std::vector<Bytes> values(512);
    ASSERT_TRUE(env.set->Initialize(values).ok());

    // Every shard sub-batch plan must carry exactly kQuota requests.
    std::mutex mu;
    std::vector<std::vector<size_t>> plan_sizes(kShards);
    env.set->SetBatchPlannedHook([&](uint32_t shard, const BatchPlan& plan) {
      std::lock_guard<std::mutex> lk(mu);
      plan_sizes[shard].push_back(plan.requests.size());
      return Status::Ok();
    });

    Rng rng(99);
    ZipfianGenerator hot(512, 0.99);
    auto next = [&]() -> BlockId {
      return zipf ? hot.NextScrambled(rng) : rng.Uniform(512);
    };
    for (int b = 0; b < kBatches; ++b) {
      auto ids = DrawBatch(env.set->router(), kRealPerBatch, kQuota, next);
      ASSERT_TRUE(env.set->ReadBatch(ids).ok());
      if ((b + 1) % 3 == 0) {
        ASSERT_TRUE(env.set->FinishEpoch().ok());
      }
    }
    for (uint32_t s = 0; s < kShards; ++s) {
      ASSERT_EQ(plan_sizes[s].size(), static_cast<size_t>(kBatches)) << "shard " << s;
      for (size_t sz : plan_sizes[s]) {
        EXPECT_EQ(sz, kQuota) << "shard " << s << ": sub-batch not padded to quota";
      }
    }
  };

  run(/*zipf=*/false);
  run(/*zipf=*/true);
}

TEST(ShardObliviousnessTest, PerShardTraceSizesMatchAcrossWorkloads) {
  constexpr uint32_t kShards = 4;
  constexpr size_t kQuota = 8;
  constexpr size_t kRealPerBatch = 16;
  constexpr int kBatches = 36;

  auto run = [&](bool zipf) {
    auto env = MakeSharded(kShards, 512, kQuota, kQuota, /*trace=*/true, /*seed=*/23);
    std::vector<Bytes> values(512);
    EXPECT_TRUE(env.set->Initialize(values).ok());
    Rng rng(7);
    ZipfianGenerator hot(512, 0.99);
    auto next = [&]() -> BlockId {
      return zipf ? hot.NextScrambled(rng) : rng.Uniform(512);
    };
    for (int b = 0; b < kBatches; ++b) {
      auto ids = DrawBatch(env.set->router(), kRealPerBatch, kQuota, next);
      EXPECT_TRUE(env.set->ReadBatch(ids).ok());
      if ((b + 1) % 3 == 0) {
        EXPECT_TRUE(env.set->FinishEpoch().ok());
      }
    }
    std::vector<size_t> trace_sizes(kShards);
    for (uint32_t s = 0; s < kShards; ++s) {
      trace_sizes[s] = env.set->shard_trace(s).ops().size();
      EXPECT_GT(trace_sizes[s], 0u);
    }
    return trace_sizes;
  };

  auto uniform = run(false);
  auto skewed = run(true);
  for (uint32_t s = 0; s < kShards; ++s) {
    double ratio = static_cast<double>(skewed[s]) / static_cast<double>(uniform[s]);
    EXPECT_GT(ratio, 0.92) << "shard " << s << " trace shrank under skew";
    EXPECT_LT(ratio, 1.08) << "shard " << s << " trace grew under skew";
  }
  // Within the skewed run, no shard's trace betrays the hot keys: the
  // largest and smallest per-shard traces stay within a few percent.
  auto [lo, hi] = std::minmax_element(skewed.begin(), skewed.end());
  EXPECT_LT(static_cast<double>(*hi) / static_cast<double>(*lo), 1.08)
      << "per-shard trace sizes diverge under Zipf skew";
}

// ---------------------------------------------------------------------------
// Proxy integration at K=4
// ---------------------------------------------------------------------------

struct ShardedProxyEnv {
  ObladiConfig config;
  std::shared_ptr<MemoryBucketStore> store;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<ObladiStore> proxy;
};

ShardedProxyEnv MakeShardedProxy(uint32_t shards = 4, uint64_t capacity = 256) {
  ShardedProxyEnv env;
  env.config = ObladiConfig::ForCapacity(capacity, /*z=*/4, /*payload=*/128);
  env.config.num_shards = shards;
  env.config.read_batches_per_epoch = 3;
  env.config.read_batch_size = 16;  // quota 4 per shard
  env.config.write_batch_size = 16;
  env.config.recovery.enabled = true;
  env.config.recovery.full_checkpoint_interval = 4;
  env.config.oram_options.io_threads = 8;
  env.store = std::make_shared<MemoryBucketStore>(
      env.config.StoreBuckets(), env.config.MakeLayout().shard_config.slots_per_bucket());
  env.log = std::make_shared<MemoryLogStore>();
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  return env;
}

std::vector<std::pair<Key, std::string>> SimpleRecords(int n) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  return records;
}

TEST(ShardedProxyTest, ReadYourWritesAcrossShards) {
  auto env = MakeShardedProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(64)).ok());
  // Keys land on all four shards (dense ids stripe mod 4).
  for (int i = 0; i < 8; ++i) {
    CommitWrite(*env.proxy, "key" + std::to_string(i), "updated" + std::to_string(i));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(i)),
              "updated" + std::to_string(i));
  }
  // Untouched keys on every shard still read their loaded values.
  for (int i = 40; i < 44; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(i)),
              "value" + std::to_string(i));
  }
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
}

TEST(ShardedProxyTest, CommitDecisionArrivesOnlyAtEpochEnd) {
  auto env = MakeShardedProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(32)).ok());

  std::atomic<bool> committed{false};
  std::thread client([&] {
    Timestamp t = env.proxy->Begin();
    ASSERT_TRUE(env.proxy->Write(t, "key1", "epoch-write").ok());
    ASSERT_TRUE(env.proxy->Write(t, "key2", "other-shard").ok());
    Status st = env.proxy->Commit(t);  // blocks until the epoch ends
    EXPECT_TRUE(st.ok()) << st.ToString();
    committed.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(committed.load()) << "commit decision leaked before epoch end";
  ASSERT_TRUE(env.proxy->FinishEpochNow().ok());
  client.join();
  EXPECT_TRUE(committed.load());
}

TEST(ShardedProxyTest, EpochFateSharing) {
  auto env = MakeShardedProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(32)).ok());

  std::atomic<int> commits{0};
  std::thread c1([&] {
    if (RunTransaction(*env.proxy, [&](Txn& txn) { return txn.Write("key1", "a"); }).ok()) {
      commits.fetch_add(1);
    }
  });
  std::thread c2([&] {
    if (RunTransaction(*env.proxy, [&](Txn& txn) { return txn.Write("key2", "b"); }).ok()) {
      commits.fetch_add(1);
    }
  });
  while (commits.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(env.proxy->FinishEpochNow().ok());
  }
  c1.join();
  c2.join();
  EXPECT_EQ(commits.load(), 2);
}

TEST(ShardedProxyTest, CrashRecoveryRestoresAllShards) {
  auto env = MakeShardedProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(64)).ok());
  // One committed write per shard before the crash.
  for (int i = 0; i < 4; ++i) {
    CommitWrite(*env.proxy, "key" + std::to_string(i), "before-crash" + std::to_string(i));
  }

  env.proxy->SimulateCrash();
  RecoveryBreakdown breakdown;
  ASSERT_TRUE(env.proxy->RecoverFromCrash(&breakdown).ok());
  EXPECT_GT(breakdown.log_records, 0u);

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(i)),
              "before-crash" + std::to_string(i));
  }
  EXPECT_EQ(ReadCommitted(*env.proxy, "key17"), "value17");
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
}

TEST(ShardedProxyTest, UncommittedEpochRollsBackOnEveryShard) {
  auto env = MakeShardedProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(64)).ok());
  CommitWrite(*env.proxy, "key5", "committed-version");

  // Writes touching two different shards in a fresh epoch; crash before the
  // epoch ends: both must vanish together.
  Timestamp t = env.proxy->Begin();
  ASSERT_TRUE(env.proxy->Write(t, "key5", "doomed").ok());
  ASSERT_TRUE(env.proxy->Write(t, "key6", "also-doomed").ok());

  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());

  EXPECT_EQ(ReadCommitted(*env.proxy, "key5"), "committed-version");
  EXPECT_EQ(ReadCommitted(*env.proxy, "key6"), "value6");
}

TEST(ShardedProxyTest, RepeatedCrashesAndRecoveries) {
  auto env = MakeShardedProxy();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(64)).ok());
  for (int round = 0; round < 3; ++round) {
    std::string value = "round-" + std::to_string(round);
    CommitWrite(*env.proxy, "key" + std::to_string(round), value);
    env.proxy->SimulateCrash();
    ASSERT_TRUE(env.proxy->RecoverFromCrash().ok()) << "round " << round;
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(round)), value);
  }
  EXPECT_EQ(env.proxy->stats().recoveries, 3u);
}

TEST(ShardedProxyTest, ShardQuotaOverflowAbortsTransaction) {
  // One batch, quota 1 per shard: two distinct keys on the same shard cannot
  // both be fetched this epoch — the second aborts instead of stretching the
  // shard's sub-batch (which would leak the routing).
  ShardedProxyEnv env;
  env.config = ObladiConfig::ForCapacity(64, 4, 128);
  env.config.num_shards = 4;
  env.config.read_batches_per_epoch = 1;
  env.config.read_batch_size = 4;  // quota 1 per shard
  env.config.write_batch_size = 4;
  env.config.recovery.enabled = false;
  env.store = std::make_shared<MemoryBucketStore>(
      env.config.StoreBuckets(), env.config.MakeLayout().shard_config.slots_per_bucket());
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, nullptr);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(16)).ok());

  // key0 -> id 0 (shard 0), key4 -> id 4 (shard 0).
  Timestamp ta = env.proxy->Begin();
  Timestamp tb = env.proxy->Begin();
  std::thread f1([&] { (void)env.proxy->Read(ta, "key0"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto v = env.proxy->Read(tb, "key4");
  EXPECT_EQ(v.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(env.proxy->FinishEpochNow().ok());
  f1.join();
  EXPECT_GE(env.proxy->stats().batch_overflow_aborts, 1u);
}

// ---------------------------------------------------------------------------
// Scaling: K=4 beats K=1 on a latency-bound backend
// ---------------------------------------------------------------------------

double MeasureShardedThroughput(uint32_t k, double scale) {
  ShardLayout layout = ShardLayout::Make(RingOramConfig::ForCapacity(2048, 4, 64), k);
  ShardedOramOptions options;
  options.oram.io_threads = 32;
  options.oram.verify_decoded_ids = true;
  options.read_quota = 32 / k;
  options.write_quota = 32 / k;
  // One latency decorator (its own DynamoDB-style connection pool) per
  // shard: sharding multiplies the storage connections, which is exactly the
  // cloud deployment the subsystem models.
  std::vector<std::shared_ptr<BucketStore>> stores;
  std::vector<std::shared_ptr<LatencyBucketStore>> latency;
  for (uint32_t s = 0; s < k; ++s) {
    auto base = std::make_shared<MemoryBucketStore>(
        layout.shard_config.num_buckets(), layout.shard_config.slots_per_bucket(),
        /*max_versions=*/2);
    latency.push_back(
        std::make_shared<LatencyBucketStore>(base, LatencyProfile::Dynamo(scale)));
    stores.push_back(latency.back());
  }
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("scale"), false, k));
  ShardedOramSet set(layout, options, stores, encryptor, /*seed=*/k * 31 + 1);
  for (auto& l : latency) {
    l->SetBypass(true);
  }
  EXPECT_TRUE(set.Initialize(std::vector<Bytes>(2048)).ok());
  for (auto& l : latency) {
    l->SetBypass(false);
  }

  Rng rng(5);
  constexpr int kBatches = 16;
  uint64_t start = NowMicros();
  for (int b = 0; b < kBatches; ++b) {
    auto ids = DrawBatch(set.router(), 32, options.read_quota,
                         [&]() -> BlockId { return rng.Uniform(2048); });
    auto result = set.ReadBatch(ids);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if ((b + 1) % 2 == 0) {
      EXPECT_TRUE(set.FinishEpoch().ok());
    }
  }
  uint64_t elapsed = NowMicros() - start;
  return static_cast<double>(kBatches * 32) / (static_cast<double>(elapsed) / 1e6);
}

TEST(ShardScalingTest, FourShardsOutpaceOneOnDynamoProfile) {
  // Acceptance criterion (3), test-sized: the same 2048-block store behind
  // Dynamo-profile latency serves read batches faster split across 4 shards
  // (4 trees, 4 connection pools) than as one ORAM. bench_shard_scaling
  // sweeps the full K in {1,2,4,8} grid.
  // Paper-scale Dynamo latency (1ms reads / 3ms writes) so the comparison
  // exercises I/O overlap rather than this host's crypto throughput.
  double k1 = MeasureShardedThroughput(1, /*scale=*/1.0);
  double k4 = MeasureShardedThroughput(4, /*scale=*/1.0);
  EXPECT_GT(k4, k1 * 1.2) << "K=4: " << k4 << " ops/s vs K=1: " << k1 << " ops/s";
}

}  // namespace
}  // namespace obladi
