#include <gtest/gtest.h>

#include "src/oram/config.h"
#include "src/oram/path.h"

namespace obladi {
namespace {

TEST(PathTest, RootAndLeaves) {
  // 3 levels: buckets 0 | 1 2 | 3 4 5 6 ; leaves 0..3.
  EXPECT_EQ(PathBucket(0, 0, 3), 0u);
  EXPECT_EQ(PathBucket(3, 0, 3), 0u);
  EXPECT_EQ(PathBucket(0, 2, 3), 3u);
  EXPECT_EQ(PathBucket(3, 2, 3), 6u);
  EXPECT_EQ(PathBucket(2, 1, 3), 2u);
  EXPECT_EQ(PathBucket(1, 1, 3), 1u);
}

TEST(PathTest, LevelOfBucket) {
  EXPECT_EQ(LevelOfBucket(0), 0u);
  EXPECT_EQ(LevelOfBucket(1), 1u);
  EXPECT_EQ(LevelOfBucket(2), 1u);
  EXPECT_EQ(LevelOfBucket(3), 2u);
  EXPECT_EQ(LevelOfBucket(6), 2u);
  EXPECT_EQ(LevelOfBucket(7), 3u);
}

TEST(PathTest, PathContains) {
  EXPECT_TRUE(PathContains(2, 0, 3));   // root on every path
  EXPECT_TRUE(PathContains(2, 2, 3));   // right inner node on leaf 2's path
  EXPECT_FALSE(PathContains(2, 1, 3));
  EXPECT_TRUE(PathContains(2, 5, 3));
  EXPECT_FALSE(PathContains(2, 6, 3));
}

TEST(PathTest, CommonPathLevels) {
  EXPECT_EQ(CommonPathLevels(0, 0, 3), 3u);
  EXPECT_EQ(CommonPathLevels(0, 1, 3), 2u);  // share root + level-1 node
  EXPECT_EQ(CommonPathLevels(0, 3, 3), 1u);  // only the root
}

TEST(PathTest, EvictionOrderIsReverseLexicographic) {
  // 4 leaves => order of low bits reversed: 0,2,1,3,0,2,...
  EXPECT_EQ(EvictionLeaf(0, 3), 0u);
  EXPECT_EQ(EvictionLeaf(1, 3), 2u);
  EXPECT_EQ(EvictionLeaf(2, 3), 1u);
  EXPECT_EQ(EvictionLeaf(3, 3), 3u);
  EXPECT_EQ(EvictionLeaf(4, 3), 0u);
}

TEST(PathTest, EvictionOrderCoversAllLeavesEachCycle) {
  uint32_t levels = 5;
  uint32_t leaves = 1u << (levels - 1);
  std::vector<bool> seen(leaves, false);
  for (uint64_t g = 0; g < leaves; ++g) {
    Leaf leaf = EvictionLeaf(g, levels);
    ASSERT_LT(leaf, leaves);
    EXPECT_FALSE(seen[leaf]);
    seen[leaf] = true;
  }
}

TEST(PathTest, EvictionTouchCountMatchesSimulation) {
  uint32_t levels = 4;
  uint32_t buckets = (1u << levels) - 1;
  const uint64_t kEvictions = 133;
  std::vector<uint64_t> touched(buckets, 0);
  for (uint64_t g = 0; g < kEvictions; ++g) {
    Leaf leaf = EvictionLeaf(g, levels);
    for (uint32_t level = 0; level < levels; ++level) {
      touched[PathBucket(leaf, level, levels)]++;
    }
  }
  for (BucketIndex b = 0; b < buckets; ++b) {
    EXPECT_EQ(EvictionTouchCount(kEvictions, b, levels), touched[b]) << "bucket " << b;
  }
}

TEST(ConfigTest, PaperTreeSizes) {
  // Table 11b: with Z=100 (A=168), 10K objects -> 7 levels, 100K -> 11,
  // 1M -> 14.
  EXPECT_EQ(RingOramConfig::ForCapacity(10000, 100, 256).num_levels, 7u);
  EXPECT_EQ(RingOramConfig::ForCapacity(100000, 100, 256).num_levels, 11u);
  EXPECT_EQ(RingOramConfig::ForCapacity(1000000, 100, 256).num_levels, 14u);
}

TEST(ConfigTest, ParameterTable) {
  uint32_t a, s;
  RingOramConfig::ParametersForZ(100, &a, &s);
  EXPECT_EQ(a, 168u);  // the paper's configuration
  EXPECT_EQ(s, 196u);
  RingOramConfig::ParametersForZ(4, &a, &s);
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(s, 6u);
}

TEST(ConfigTest, ValidateCatchesBadConfigs) {
  RingOramConfig cfg = RingOramConfig::ForCapacity(1000, 4, 64);
  EXPECT_TRUE(cfg.Validate().ok());
  RingOramConfig bad = cfg;
  bad.z = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = cfg;
  bad.num_levels = 1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = cfg;
  bad.capacity = 1u << 30;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(ConfigTest, SlotSizesDeriveFromPayload) {
  RingOramConfig cfg = RingOramConfig::ForCapacity(100, 4, 128);
  EXPECT_EQ(cfg.slot_plaintext_size(), 140u);
  EXPECT_EQ(cfg.slots_per_bucket(), cfg.z + cfg.s);
  EXPECT_EQ(cfg.num_buckets(), (1u << cfg.num_levels) - 1);
}

}  // namespace
}  // namespace obladi
