// Tests for the src/net/ remote storage subsystem: wire-protocol framing
// (including fuzzed garbage), loopback unary/batched round trips, error
// propagation through the server, async multiplexing (out-of-order
// responses, interleaved frames, fail-fast redial, event-loop
// backpressure), storage-node restart, batched GC round trips, and the full
// K-shard proxy epoch pipeline over a loopback RemoteBucketStore +
// RemoteLogStore.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>

#include "src/fault/fault_relay.h"
#include "src/net/async_client.h"
#include "src/net/replicated_store.h"
#include "src/net/event_loop.h"
#include "src/net/remote_store.h"
#include "src/net/storage_server.h"
#include "src/net/wire.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/latency_store.h"
#include "src/storage/memory_store.h"
#include "tests/gc_probe.h"
#include "tests/paced_proxy.h"
#include "tests/store_conformance.h"

namespace obladi {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(WireTest, RequestRoundTripsEveryType) {
  NetRequest read;
  read.type = MsgType::kReadSlots;
  read.id = 42;
  read.reads = {{3, 1, 7}, {0, 0, 0}, {9999, 0xffffffff, 11}};

  NetRequest write;
  write.type = MsgType::kWriteBuckets;
  write.id = 43;
  BucketImage image;
  image.bucket = 5;
  image.version = 2;
  image.slots = {BytesFromString("slot-a"), Bytes{}, Bytes(300, 0xee)};
  write.writes.push_back(image);

  NetRequest trunc;
  trunc.type = MsgType::kTruncateBucket;
  trunc.id = 44;
  trunc.bucket = 17;
  trunc.keep_from_version = 6;

  NetRequest append;
  append.type = MsgType::kLogAppend;
  append.id = 45;
  append.record = BytesFromString("wal record");

  NetRequest log_trunc;
  log_trunc.type = MsgType::kLogTruncate;
  log_trunc.id = 46;
  log_trunc.lsn = 0xdeadbeefcafe;

  NetRequest trunc_batch;
  trunc_batch.type = MsgType::kTruncateBucketsBatch;
  trunc_batch.id = 47;
  trunc_batch.truncates = {{0, 1}, {17, 6}, {0xffffffff, 0xffffffff}};

  NetRequest xor_read;
  xor_read.type = MsgType::kReadPathsXor;
  xor_read.id = 48;
  xor_read.xor_header_bytes = 12;
  xor_read.xor_trailer_bytes = 32;
  xor_read.path_reads.resize(2);
  xor_read.path_reads[0].slots = {{1, 0, 3}, {2, 4, 0}, {9, 1, 7}};
  xor_read.path_reads[1].slots = {{0, 0, 0}};

  NetRequest fused_append;
  fused_append.type = MsgType::kLogAppendSync;
  fused_append.id = 49;
  fused_append.record = BytesFromString("durable in one round trip");

  for (const NetRequest* req :
       {&read, &write, &trunc, &append, &log_trunc, &trunc_batch, &xor_read, &fused_append}) {
    Bytes payload = EncodeRequest(*req);
    NetRequest decoded;
    ASSERT_TRUE(DecodeRequest(payload, &decoded).ok()) << MsgTypeName(req->type);
    EXPECT_EQ(decoded.type, req->type);
    EXPECT_EQ(decoded.id, req->id);
  }

  // Spot-check field fidelity on the interesting ones.
  NetRequest decoded;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(read), &decoded).ok());
  ASSERT_EQ(decoded.reads.size(), 3u);
  EXPECT_EQ(decoded.reads[2].bucket, 9999u);
  EXPECT_EQ(decoded.reads[2].version, 0xffffffffu);

  ASSERT_TRUE(DecodeRequest(EncodeRequest(write), &decoded).ok());
  ASSERT_EQ(decoded.writes.size(), 1u);
  EXPECT_EQ(decoded.writes[0].slots, image.slots);

  ASSERT_TRUE(DecodeRequest(EncodeRequest(log_trunc), &decoded).ok());
  EXPECT_EQ(decoded.lsn, 0xdeadbeefcafeull);

  ASSERT_TRUE(DecodeRequest(EncodeRequest(trunc_batch), &decoded).ok());
  ASSERT_EQ(decoded.truncates.size(), 3u);
  EXPECT_EQ(decoded.truncates[1].bucket, 17u);
  EXPECT_EQ(decoded.truncates[1].keep_from_version, 6u);
  EXPECT_EQ(decoded.truncates[2].bucket, 0xffffffffu);

  ASSERT_TRUE(DecodeRequest(EncodeRequest(xor_read), &decoded).ok());
  EXPECT_EQ(decoded.xor_header_bytes, 12u);
  EXPECT_EQ(decoded.xor_trailer_bytes, 32u);
  ASSERT_EQ(decoded.path_reads.size(), 2u);
  ASSERT_EQ(decoded.path_reads[0].slots.size(), 3u);
  EXPECT_EQ(decoded.path_reads[0].slots[1].bucket, 2u);
  EXPECT_EQ(decoded.path_reads[0].slots[1].version, 4u);
  EXPECT_EQ(decoded.path_reads[1].slots[0].slot, 0u);

  ASSERT_TRUE(DecodeRequest(EncodeRequest(fused_append), &decoded).ok());
  EXPECT_EQ(StringFromBytes(decoded.record), "durable in one round trip");

  // The async client pairs out-of-order responses by peeking the header.
  MsgType peeked_type;
  uint64_t peeked_id = 0;
  ASSERT_TRUE(PeekHeader(EncodeRequest(trunc_batch), &peeked_type, &peeked_id).ok());
  EXPECT_EQ(peeked_type, MsgType::kTruncateBucketsBatch);
  EXPECT_EQ(peeked_id, 47u);
  EXPECT_FALSE(PeekHeader(Bytes{kWireVersion}, &peeked_type, &peeked_id).ok());
}

TEST(WireTest, ResponseRoundTripsResultBodies) {
  NetResponse reads;
  reads.id = 7;
  reads.request_type = MsgType::kReadSlots;
  reads.reads.push_back(ReadResult{StatusCode::kOk, "", BytesFromString("payload")});
  reads.reads.push_back(ReadResult{StatusCode::kNotFound, "bucket version not present", {}});

  Bytes payload = EncodeResponse(reads);
  NetResponse decoded;
  ASSERT_TRUE(DecodeResponse(payload, MsgType::kReadSlots, &decoded).ok());
  EXPECT_EQ(decoded.id, 7u);
  ASSERT_EQ(decoded.reads.size(), 2u);
  EXPECT_TRUE(decoded.reads[0].ToStatusOr().ok());
  auto missing = decoded.reads[1].ToStatusOr();
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(missing.status().message(), "bucket version not present");

  NetResponse err;
  err.id = 8;
  err.request_type = MsgType::kWriteBuckets;
  err.code = StatusCode::kInvalidArgument;
  err.message = "bucket out of range";
  ASSERT_TRUE(DecodeResponse(EncodeResponse(err), MsgType::kWriteBuckets, &decoded).ok());
  EXPECT_EQ(decoded.ToStatus().code(), StatusCode::kInvalidArgument);

  NetResponse records;
  records.id = 9;
  records.request_type = MsgType::kLogReadAll;
  records.records = {BytesFromString("a"), Bytes{}, BytesFromString("ccc")};
  ASSERT_TRUE(DecodeResponse(EncodeResponse(records), MsgType::kLogReadAll, &decoded).ok());
  ASSERT_EQ(decoded.records.size(), 3u);
  EXPECT_TRUE(decoded.records[1].empty());

  NetResponse xor_resp;
  xor_resp.id = 10;
  xor_resp.request_type = MsgType::kReadPathsXor;
  xor_resp.xor_reads.push_back(
      XorReadResult{StatusCode::kOk, "", Bytes(88, 0x11), Bytes(256, 0x22)});
  xor_resp.xor_reads.push_back(
      XorReadResult{StatusCode::kNotFound, "bucket version not present", {}, {}});
  ASSERT_TRUE(DecodeResponse(EncodeResponse(xor_resp), MsgType::kReadPathsXor, &decoded).ok());
  ASSERT_EQ(decoded.xor_reads.size(), 2u);
  auto ok_path = decoded.xor_reads[0].ToStatusOr();
  ASSERT_TRUE(ok_path.ok());
  EXPECT_EQ(ok_path->headers.size(), 88u);
  EXPECT_EQ(ok_path->body_xor.size(), 256u);
  auto missing_path = decoded.xor_reads[1].ToStatusOr();
  EXPECT_EQ(missing_path.status().code(), StatusCode::kNotFound);

  NetResponse fused;
  fused.id = 11;
  fused.request_type = MsgType::kLogAppendSync;
  fused.u64 = 0x123456789abcull;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(fused), MsgType::kLogAppendSync, &decoded).ok());
  EXPECT_EQ(decoded.u64, 0x123456789abcull);
}

TEST(WireTest, RejectsMalformedPayloads) {
  NetRequest req;
  // Empty and sub-header payloads.
  EXPECT_FALSE(DecodeRequest(Bytes{}, &req).ok());
  EXPECT_FALSE(DecodeRequest(Bytes{kWireVersion}, &req).ok());
  // Wrong version.
  Bytes good = EncodeRequest(NetRequest{});
  Bytes bad_version = good;
  bad_version[0] = kWireVersion + 1;
  EXPECT_FALSE(DecodeRequest(bad_version, &req).ok());
  // Unknown message type.
  Bytes bad_type = good;
  bad_type[1] = 200;
  EXPECT_FALSE(DecodeRequest(bad_type, &req).ok());
  // Trailing garbage after a valid body.
  Bytes trailing = good;
  trailing.push_back(0x5a);
  EXPECT_FALSE(DecodeRequest(trailing, &req).ok());
  // A batch whose element count exceeds the payload (would otherwise
  // reserve gigabytes).
  NetRequest batch;
  batch.type = MsgType::kReadSlots;
  batch.reads = {{1, 1, 1}};
  Bytes huge_count = EncodeRequest(batch);
  huge_count[10] = 0xff;  // count field starts right after the 10-byte header
  huge_count[11] = 0xff;
  huge_count[12] = 0xff;
  huge_count[13] = 0xff;
  EXPECT_FALSE(DecodeRequest(huge_count, &req).ok());
  // Responses must not decode as requests and vice versa.
  NetResponse resp;
  EXPECT_FALSE(DecodeRequest(EncodeResponse(NetResponse{}), &req).ok());
  EXPECT_FALSE(DecodeResponse(good, MsgType::kPing, &resp).ok());
}

TEST(WireTest, FuzzedBytesNeverCrashTheDecoder) {
  std::mt19937_64 rng(0x0b1ad1f00d);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> len(0, 512);
  for (int i = 0; i < 20000; ++i) {
    Bytes payload(len(rng));
    for (auto& b : payload) {
      b = static_cast<uint8_t>(byte(rng));
    }
    NetRequest req;
    (void)DecodeRequest(payload, &req);
    NetResponse resp;
    (void)DecodeResponse(payload, MsgType::kReadSlots, &resp);
    (void)DecodeResponse(payload, MsgType::kLogReadAll, &resp);
    (void)DecodeResponse(payload, MsgType::kReadPathsXor, &resp);
    (void)DecodeResponse(payload, MsgType::kLogAppendSync, &resp);
  }
  // Mutated valid frames: flip bytes of real messages.
  NetRequest write;
  write.type = MsgType::kWriteBuckets;
  BucketImage image;
  image.bucket = 1;
  image.version = 1;
  image.slots = {Bytes(64, 0xab), Bytes(64, 0xcd)};
  write.writes = {image, image};
  Bytes base = EncodeRequest(write);
  std::uniform_int_distribution<size_t> pos(0, base.size() - 1);
  for (int i = 0; i < 20000; ++i) {
    Bytes mutated = base;
    for (int flips = 0; flips < 3; ++flips) {
      mutated[pos(rng)] = static_cast<uint8_t>(byte(rng));
    }
    NetRequest req;
    Status st = DecodeRequest(mutated, &req);
    if (st.ok()) {
      // A surviving decode must at least be internally consistent.
      EXPECT_EQ(req.type, MsgType::kWriteBuckets);
    }
  }
}

// v3 ops under the same mutation harness: flipped counts, truncated header
// buffers, and short XOR replies must decode to errors, never crash or
// over-reserve.
TEST(WireTest, FuzzedV3FramesNeverCrashTheDecoder) {
  std::mt19937_64 rng(0x0b1ad1f00e);
  std::uniform_int_distribution<int> byte(0, 255);

  NetRequest xor_req;
  xor_req.type = MsgType::kReadPathsXor;
  xor_req.xor_header_bytes = 12;
  xor_req.xor_trailer_bytes = 32;
  xor_req.path_reads.resize(3);
  for (auto& path : xor_req.path_reads) {
    path.slots = {{1, 0, 2}, {2, 0, 5}, {4, 1, 0}};
  }
  Bytes xor_base = EncodeRequest(xor_req);
  std::uniform_int_distribution<size_t> xor_pos(0, xor_base.size() - 1);
  for (int i = 0; i < 10000; ++i) {
    Bytes mutated = xor_base;
    for (int flips = 0; flips < 3; ++flips) {
      mutated[xor_pos(rng)] = static_cast<uint8_t>(byte(rng));
    }
    NetRequest req;
    Status st = DecodeRequest(mutated, &req);
    if (st.ok()) {
      EXPECT_EQ(req.type, MsgType::kReadPathsXor);
    }
  }

  NetResponse xor_resp;
  xor_resp.id = 12;
  xor_resp.request_type = MsgType::kReadPathsXor;
  xor_resp.xor_reads.push_back(
      XorReadResult{StatusCode::kOk, "", Bytes(132, 0x31), Bytes(96, 0x32)});
  xor_resp.xor_reads.push_back(
      XorReadResult{StatusCode::kOk, "", Bytes(44, 0x33), Bytes(96, 0x34)});
  Bytes resp_base = EncodeResponse(xor_resp);
  std::uniform_int_distribution<size_t> resp_pos(0, resp_base.size() - 1);
  for (int i = 0; i < 10000; ++i) {
    Bytes mutated = resp_base;
    for (int flips = 0; flips < 3; ++flips) {
      mutated[resp_pos(rng)] = static_cast<uint8_t>(byte(rng));
    }
    NetResponse resp;
    (void)DecodeResponse(mutated, MsgType::kReadPathsXor, &resp);
  }
  // Truncations at every boundary (short headers, cut body_xor, half an
  // entry): all must be rejected cleanly.
  for (size_t cut = 0; cut < resp_base.size(); cut += 7) {
    Bytes truncated(resp_base.begin(), resp_base.begin() + static_cast<ptrdiff_t>(cut));
    NetResponse resp;
    EXPECT_FALSE(DecodeResponse(truncated, MsgType::kReadPathsXor, &resp).ok());
  }

  NetRequest fused;
  fused.type = MsgType::kLogAppendSync;
  fused.record = Bytes(128, 0x55);
  Bytes fused_base = EncodeRequest(fused);
  std::uniform_int_distribution<size_t> fused_pos(0, fused_base.size() - 1);
  for (int i = 0; i < 10000; ++i) {
    Bytes mutated = fused_base;
    for (int flips = 0; flips < 3; ++flips) {
      mutated[fused_pos(rng)] = static_cast<uint8_t>(byte(rng));
    }
    NetRequest req;
    Status st = DecodeRequest(mutated, &req);
    if (st.ok()) {
      // A type-byte flip can legally land on kLogAppend: the two append
      // forms share the `bytes record` body. Anything else must not parse.
      EXPECT_TRUE(req.type == MsgType::kLogAppendSync || req.type == MsgType::kLogAppend);
    }
  }
}

// ---------------------------------------------------------------------------
// Loopback server fixture
// ---------------------------------------------------------------------------

struct LoopbackEnv {
  std::shared_ptr<MemoryBucketStore> buckets;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<StorageServer> server;

  RemoteStoreOptions ClientOptions(size_t pool = 4) const {
    RemoteStoreOptions opts;
    opts.port = server->port();
    opts.pool_size = pool;
    return opts;
  }
};

LoopbackEnv StartLoopback(size_t num_buckets = 64, size_t slots = 4,
                          std::shared_ptr<BucketStore> backend = nullptr) {
  LoopbackEnv env;
  env.buckets = std::make_shared<MemoryBucketStore>(num_buckets, slots);
  env.log = std::make_shared<MemoryLogStore>();
  StorageServerOptions opts;
  env.server = std::make_unique<StorageServer>(
      backend ? backend : std::static_pointer_cast<BucketStore>(env.buckets), env.log, opts);
  Status st = env.server->Start();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return env;
}

TEST(StorageServerTest, UnaryRoundTrips) {
  auto env = StartLoopback();
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_buckets(), 64u);

  std::vector<Bytes> slots(4, BytesFromString("ciphertext"));
  ASSERT_TRUE((*store)->WriteBucket(3, 1, slots).ok());
  auto read = (*store)->ReadSlot(3, 1, 2);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(StringFromBytes(*read), "ciphertext");

  // The write really landed in the server's backing store.
  EXPECT_TRUE(env.buckets->ReadSlot(3, 1, 0).ok());

  ASSERT_TRUE((*store)->TruncateBucket(3, 2).ok());
  EXPECT_FALSE((*store)->ReadSlot(3, 1, 2).ok());
}

TEST(StorageServerTest, ServerSideErrorsPropagateWithCodeAndMessage) {
  auto env = StartLoopback();
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok());

  auto missing = (*store)->ReadSlot(0, 99, 0);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(missing.status().message(), "bucket version not present");

  Status bad = (*store)->WriteBucket(9999, 0, std::vector<Bytes>(4));
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);

  // Log RPCs against a server without a log store.
  auto bucket_only = std::make_unique<StorageServer>(env.buckets, nullptr);
  ASSERT_TRUE(bucket_only->Start().ok());
  RemoteStoreOptions opts;
  opts.port = bucket_only->port();
  auto log = RemoteLogStore::Connect(opts);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->Append(BytesFromString("x")).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(StorageServerTest, BatchedRpcIsOneRoundTrip) {
  auto env = StartLoopback(128, 4);
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok());
  (*store)->stats().Reset();

  std::vector<BucketImage> images;
  for (BucketIndex b = 0; b < 32; ++b) {
    BucketImage image;
    image.bucket = b;
    image.version = 0;
    image.slots = std::vector<Bytes>(4, Bytes(128, static_cast<uint8_t>(b)));
    images.push_back(std::move(image));
  }
  ASSERT_TRUE((*store)->WriteBucketsBatch(std::move(images)).ok());
  EXPECT_EQ((*store)->stats().writes.load(), 32u);
  EXPECT_EQ((*store)->stats().round_trips.load(), 1u);

  std::vector<SlotRef> refs;
  for (BucketIndex b = 0; b < 32; ++b) {
    refs.push_back({b, 0, b % 4});
  }
  auto results = (*store)->ReadSlotsBatch(refs);
  ASSERT_EQ(results.size(), 32u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    ASSERT_FALSE((*results[i]).empty());
    EXPECT_EQ((*results[i])[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ((*store)->stats().reads.load(), 32u);
  EXPECT_EQ((*store)->stats().round_trips.load(), 2u);
  EXPECT_EQ((*store)->stats().bytes_read.load(), 32u * 128u);
  EXPECT_EQ((*store)->stats().bytes_written.load(), 32u * 4u * 128u);
}

// The tentpole claim, measured on a real socket: a path read via
// kReadPathsXor downloads one body + per-slot headers instead of every slot
// ciphertext. With 1 KB slots and 11-slot paths that is ~an order of
// magnitude fewer bytes received for the same slots touched.
TEST(XorPathReadTest, ShrinksDownloadBytesOnTheWire) {
  const size_t kSlotBytes = 1024;
  const size_t kPathLen = 11;
  auto env = StartLoopback(kPathLen + 1, 4);
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok());
  for (BucketIndex b = 0; b < kPathLen; ++b) {
    std::vector<Bytes> slots(4, Bytes(kSlotBytes, static_cast<uint8_t>(b)));
    ASSERT_TRUE((*store)->WriteBucket(b, 0, std::move(slots)).ok());
  }
  PathSlots path;
  for (BucketIndex b = 0; b < kPathLen; ++b) {
    path.slots.push_back(SlotRef{b, 0, b % 4});
  }

  (*store)->stats().Reset();
  auto plain = (*store)->ReadSlotsBatch(path.slots);
  for (const auto& r : plain) {
    ASSERT_TRUE(r.ok());
  }
  uint64_t plain_bytes = (*store)->stats().bytes_received.load();

  const uint32_t h = 12, t = 32;
  (*store)->stats().Reset();
  auto xr = (*store)->ReadPathsXor({path}, h, t);
  ASSERT_EQ(xr.size(), 1u);
  ASSERT_TRUE(xr[0].ok()) << xr[0].status().ToString();
  uint64_t xor_bytes = (*store)->stats().bytes_received.load();

  // Reconstruction agrees with the local fold of the slot-by-slot reads.
  auto expected = BucketStore::XorCombineSlots(plain, h, t);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(xr[0]->headers, expected->headers);
  EXPECT_EQ(xr[0]->body_xor, expected->body_xor);

  EXPECT_GE(plain_bytes, kPathLen * kSlotBytes);
  EXPECT_LE(xor_bytes, kSlotBytes + kPathLen * (h + t) + 128);
  EXPECT_LT(xor_bytes * 5, plain_bytes) << "XOR read did not shrink the download";
}

// Fused append: one round trip makes the record durable (the server syncs
// before replying), vs two for Append + Sync.
TEST(StorageServerTest, FusedAppendSyncIsOneDurableRoundTrip) {
  auto env = StartLoopback();
  auto log = RemoteLogStore::Connect(env.ClientOptions());
  ASSERT_TRUE(log.ok());

  size_t syncs_before = env.log->SyncCount();
  (*log)->stats().Reset();
  auto lsn = (*log)->AppendSync(BytesFromString("plan-record"));
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  EXPECT_EQ((*log)->stats().round_trips.load(), 1u);
  EXPECT_EQ(env.log->SyncCount(), syncs_before + 1);
  auto all = env.log->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(StringFromBytes(all->back()), "plan-record");
}

TEST(StorageServerTest, PooledConnectionsOverlapRequests) {
  // The legacy blocking NetClient: put a 20 ms latency decorator *behind*
  // the server, then issue 8 concurrent unary reads. A pool of 8 should
  // finish in ~1 latency, a pool of 1 in ~8 — its overlap is capped by pool
  // slots, which is exactly what the async client removes (next test).
  auto slow = std::make_shared<MemoryBucketStore>(16, 2);
  ASSERT_TRUE(slow->WriteBucket(0, 0, std::vector<Bytes>(2, Bytes(8, 1))).ok());
  LatencyProfile profile{"test", 20000, 20000, 0};
  auto env = StartLoopback(16, 2, std::make_shared<LatencyBucketStore>(slow, profile));

  auto timed_reads = [&](size_t pool) {
    auto client = NetClient::Connect(env.ClientOptions(pool));
    EXPECT_TRUE(client.ok());
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
      threads.emplace_back([&] {
        NetRequest req;
        req.type = MsgType::kReadSlots;
        req.reads = {{0, 0, 0}};
        auto resp = (*client)->Call(std::move(req));
        EXPECT_TRUE(resp.ok() && resp->ToStatus().ok());
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  auto serial_ms = timed_reads(1);
  auto pooled_ms = timed_reads(8);
  EXPECT_GE(serial_ms, 8 * 20);
  EXPECT_LT(pooled_ms, serial_ms / 2) << "pooled connections did not overlap";
}

TEST(AsyncClientTest, OneConnectionOverlapsConcurrentRequests) {
  // Same 20 ms storage node, but ONE multiplexed connection and zero extra
  // client threads: 8 submissions overlap because the server dispatches
  // concurrent frames from a single connection to its worker pool.
  auto slow = std::make_shared<MemoryBucketStore>(16, 2);
  ASSERT_TRUE(slow->WriteBucket(0, 0, std::vector<Bytes>(2, Bytes(8, 1))).ok());
  LatencyProfile profile{"test", 20000, 20000, 0};
  auto env = StartLoopback(16, 2, std::make_shared<LatencyBucketStore>(slow, profile));

  auto opts = env.ClientOptions();
  opts.num_connections = 1;
  auto store = RemoteBucketStore::Connect(opts);
  ASSERT_TRUE(store.ok());

  auto start = std::chrono::steady_clock::now();
  CompletionQueue cq;
  for (uint64_t i = 0; i < 8; ++i) {
    NetRequest req;
    req.type = MsgType::kReadSlots;
    req.reads = {{0, 0, 0}};
    (*store)->client()->Submit(std::move(req), &cq, i);
  }
  auto completions = cq.Drain(8);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  for (const auto& c : completions) {
    ASSERT_TRUE(c.result.ok()) << c.result.status().ToString();
    EXPECT_TRUE(c.result->ToStatus().ok());
  }
  // Serial would be >= 160 ms; multiplexed should be a small multiple of
  // one 20 ms service time.
  EXPECT_LT(elapsed_ms, 120) << "requests on one connection did not overlap";
}

// ---------------------------------------------------------------------------
// Multiplexing edge cases
// ---------------------------------------------------------------------------

// ReadSlot against bucket 0 stalls; every other bucket answers immediately.
// Forces deterministic response reordering on one connection.
class StallBucket0Store : public BucketStore {
 public:
  StallBucket0Store(std::shared_ptr<BucketStore> base, int delay_ms)
      : base_(std::move(base)), delay_ms_(delay_ms) {}

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override {
    if (bucket == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    }
    return base_->ReadSlot(bucket, version, slot);
  }
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override {
    return base_->WriteBucket(bucket, version, std::move(slots));
  }
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override {
    return base_->TruncateBucket(bucket, keep_from_version);
  }
  size_t num_buckets() const override { return base_->num_buckets(); }

 private:
  std::shared_ptr<BucketStore> base_;
  int delay_ms_;
};

TEST(AsyncClientTest, OutOfOrderResponsesOnOneConnection) {
  auto backing = std::make_shared<MemoryBucketStore>(16, 2);
  ASSERT_TRUE(backing->WriteBucket(0, 0, std::vector<Bytes>(2, Bytes(8, 0xaa))).ok());
  ASSERT_TRUE(backing->WriteBucket(1, 0, std::vector<Bytes>(2, Bytes(8, 0xbb))).ok());
  auto env = StartLoopback(16, 2, std::make_shared<StallBucket0Store>(backing, 200));

  AsyncClientOptions opts;
  opts.port = env.server->port();
  opts.num_connections = 1;
  auto client = AsyncNetClient::Connect(opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Submit the slow read FIRST, then the fast one, on the same socket. The
  // fast response must overtake the slow one.
  CompletionQueue cq;
  NetRequest slow;
  slow.type = MsgType::kReadSlots;
  slow.reads = {{0, 0, 0}};
  (*client)->Submit(std::move(slow), &cq, /*tag=*/0);
  NetRequest fast;
  fast.type = MsgType::kReadSlots;
  fast.reads = {{1, 0, 0}};
  (*client)->Submit(std::move(fast), &cq, /*tag=*/1);

  auto completions = cq.Drain(2);
  ASSERT_TRUE(completions[0].result.ok());
  ASSERT_TRUE(completions[1].result.ok());
  EXPECT_EQ(completions[0].tag, 1u) << "fast response did not overtake the stalled one";
  EXPECT_EQ(completions[1].tag, 0u);
  EXPECT_EQ(completions[0].result->reads[0].payload[0], 0xbb);
  EXPECT_EQ(completions[1].result->reads[0].payload[0], 0xaa);
  EXPECT_GE(env.server->stats().out_of_order_replies.load(), 1u);
}

TEST(AsyncClientTest, InterleavedBatchAndUnaryFramesStayPairedById) {
  // Batches and unary requests from several threads share ONE multiplexed
  // connection; every response must land with its own request, whatever
  // order the server finishes them in.
  auto env = StartLoopback(128, 4);
  for (BucketIndex b = 0; b < 128; ++b) {
    ASSERT_TRUE(
        env.buckets->WriteBucket(b, 0, std::vector<Bytes>(4, Bytes(8, static_cast<uint8_t>(b))))
            .ok());
  }
  auto opts = env.ClientOptions();
  opts.num_connections = 1;
  auto store = RemoteBucketStore::Connect(opts);
  ASSERT_TRUE(store.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(0x5eed + static_cast<uint64_t>(t));
      for (int iter = 0; iter < 25; ++iter) {
        // One batch of 16 random slots...
        std::vector<SlotRef> refs;
        for (int i = 0; i < 16; ++i) {
          refs.push_back({static_cast<BucketIndex>(rng() % 128), 0,
                          static_cast<SlotIndex>(rng() % 4)});
        }
        auto results = (*store)->ReadSlotsBatch(refs);
        for (size_t i = 0; i < refs.size(); ++i) {
          if (!results[i].ok() || (*results[i])[0] != static_cast<uint8_t>(refs[i].bucket)) {
            failures.fetch_add(1);
          }
        }
        // ...interleaved with a unary read.
        BucketIndex b = static_cast<BucketIndex>(rng() % 128);
        auto one = (*store)->ReadSlot(b, 0, 0);
        if (!one.ok() || (*one)[0] != static_cast<uint8_t>(b)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// Append stalls before hitting the backing log: lets the test catch the
// server mid-append when the connection dies.
class SlowAppendLog : public LogStore {
 public:
  SlowAppendLog(std::shared_ptr<LogStore> base, int delay_ms)
      : base_(std::move(base)), delay_ms_(delay_ms) {}

  StatusOr<uint64_t> Append(Bytes record) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return base_->Append(std::move(record));
  }
  Status Sync() override { return base_->Sync(); }
  StatusOr<std::vector<Bytes>> ReadAll() override { return base_->ReadAll(); }
  Status Truncate(uint64_t upto_lsn) override { return base_->Truncate(upto_lsn); }
  uint64_t NextLsn() const override { return base_->NextLsn(); }

 private:
  std::shared_ptr<LogStore> base_;
  int delay_ms_;
};

TEST(AsyncClientTest, RedialWithRequestsInFlightFailsFastAndAppendsStayAtMostOnce) {
  auto buckets = std::make_shared<MemoryBucketStore>(16, 2);
  ASSERT_TRUE(buckets->WriteBucket(1, 0, std::vector<Bytes>(2, Bytes(8, 0x77))).ok());
  auto log = std::make_shared<MemoryLogStore>();
  auto slow_backend = std::make_shared<StallBucket0Store>(buckets, 600);
  auto slow_log = std::make_shared<SlowAppendLog>(log, 600);

  auto server = std::make_unique<StorageServer>(slow_backend, slow_log);
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();

  RemoteStoreOptions opts;
  opts.port = port;
  auto store = RemoteBucketStore::Connect(opts);
  ASSERT_TRUE(store.ok());
  auto log_client = AsyncNetClient::Connect(opts.ToAsyncOptions());
  ASSERT_TRUE(log_client.ok());
  RemoteLogStore remote_log(*log_client);

  // Put requests in flight that the server will be holding when it dies:
  // reads stalled 600 ms in the backend and one stalled WAL append.
  std::vector<NetFuture> inflight;
  for (int i = 0; i < 4; ++i) {
    NetRequest req;
    req.type = MsgType::kReadSlots;
    req.reads = {{0, 0, 0}};
    inflight.push_back((*store)->client()->Submit(std::move(req)));
  }
  NetRequest append;
  append.type = MsgType::kLogAppend;
  append.record = BytesFromString("wal-record-in-flight");
  NetFuture append_fut = (*log_client)->Submit(std::move(append));

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto kill_start = std::chrono::steady_clock::now();
  // Stop() itself blocks ~550 ms draining the stalled backend workers, so
  // run it off-thread; the client's completions must not wait for it.
  std::thread stopper([&] { server->Stop(); });
  for (auto& fut : inflight) {
    const auto& result = fut.Wait();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  }
  ASSERT_FALSE(append_fut.Wait().ok());
  auto fail_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - kill_start)
                     .count();
  // Fail-fast: completions fire the moment the socket dies, not after the
  // backend's 600 ms stall drains.
  EXPECT_LT(fail_ms, 500) << "lost-connection completions waited out the server drain";
  stopper.join();
  server.reset();

  // Restart over the same (durable) backing state: the stale async slots
  // redial transparently for idempotent requests.
  StorageServerOptions server_opts;
  server_opts.port = port;
  auto restarted = std::make_unique<StorageServer>(slow_backend, slow_log, server_opts);
  ASSERT_TRUE(restarted->Start().ok());
  auto after = (*store)->ReadSlot(1, 0, 0);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)[0], 0x77);
  EXPECT_GE((*store)->stats().reconnects.load(), 1u);

  // At-most-once append: the client reported the in-flight append as failed
  // and must NOT have resent it. The server may or may not have committed
  // the original before dying — one copy at most, never two.
  auto records = remote_log.ReadAll();
  ASSERT_TRUE(records.ok());
  EXPECT_LE(records->size(), 1u) << "a failed LogAppend was retried into a duplicate";
}

// ---------------------------------------------------------------------------
// Transport hardening: deadlines, stragglers, circuit breaker, heartbeats
// ---------------------------------------------------------------------------

TEST(AsyncClientTest, RequestDeadlineExpiresAndConnectionRedials) {
  // Bucket 0 stalls 600 ms in the backend; the per-request deadline is
  // 150 ms, so the request must complete kDeadlineExceeded from the timer
  // wheel — bounded by the deadline, not the backend stall.
  auto backing = std::make_shared<MemoryBucketStore>(16, 2);
  ASSERT_TRUE(backing->WriteBucket(0, 0, std::vector<Bytes>(2, Bytes(8, 0xaa))).ok());
  ASSERT_TRUE(backing->WriteBucket(1, 0, std::vector<Bytes>(2, Bytes(8, 0xbb))).ok());
  auto env = StartLoopback(16, 2, std::make_shared<StallBucket0Store>(backing, 600));

  AsyncClientOptions opts;
  opts.port = env.server->port();
  opts.default_deadline_ms = 150;
  auto client = AsyncNetClient::Connect(opts);
  ASSERT_TRUE(client.ok());

  NetRequest req;
  req.type = MsgType::kReadSlots;
  req.reads = {{0, 0, 0}};
  auto start = std::chrono::steady_clock::now();
  NetFuture fut = (*client)->Submit(std::move(req));
  const auto& result = fut.Wait();
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  EXPECT_LT(elapsed_ms, 500) << "deadline did not bound the stalled request";
  EXPECT_GE((*client)->stats().deadline_exceeded.load(), 1u);

  // The expired request tore its connection down so the 600 ms straggler
  // reply cannot be mispaired; a fresh request redials and succeeds.
  NetRequest fast;
  fast.type = MsgType::kReadSlots;
  fast.reads = {{1, 0, 0}};
  auto after = (*client)->Call(std::move(fast));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_TRUE(after->ToStatus().ok());
  ASSERT_EQ(after->reads.size(), 1u);
  EXPECT_EQ(after->reads[0].payload[0], 0xbb);
}

TEST(AsyncClientTest, StragglerReplyAfterTeardownDoesNotPoisonTheStream) {
  auto backing = std::make_shared<MemoryBucketStore>(16, 2);
  for (uint32_t b = 0; b < 8; ++b) {
    ASSERT_TRUE(
        backing->WriteBucket(b, 0, std::vector<Bytes>(2, Bytes(8, 0x10 + b))).ok());
  }
  auto env = StartLoopback(16, 2, std::make_shared<StallBucket0Store>(backing, 400));

  AsyncClientOptions opts;
  opts.port = env.server->port();
  opts.num_connections = 1;  // every request shares the torn-down socket
  auto client = AsyncNetClient::Connect(opts);
  ASSERT_TRUE(client.ok());

  NetRequest stalled;
  stalled.type = MsgType::kReadSlots;
  stalled.reads = {{0, 0, 0}};
  NetFuture stalled_fut = (*client)->Submit(std::move(stalled), /*deadline_ms=*/100);
  ASSERT_FALSE(stalled_fut.Wait().ok());

  // While the server still holds the stalled request (its reply will land
  // on a dead socket), drive fresh requests through the redialed
  // connection: every response must pair with ITS request id and carry the
  // right bucket's byte.
  for (uint32_t b = 1; b < 8; ++b) {
    NetRequest req;
    req.type = MsgType::kReadSlots;
    req.reads = {{b, 0, 0}};
    auto resp = (*client)->Call(std::move(req));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp->ToStatus().ok());
    ASSERT_EQ(resp->reads.size(), 1u);
    EXPECT_EQ(resp->reads[0].payload[0], 0x10 + b) << "mispaired response";
  }
  // Let the straggler reply fire against the torn-down connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  NetRequest last;
  last.type = MsgType::kReadSlots;
  last.reads = {{7, 0, 0}};
  auto resp = (*client)->Call(std::move(last));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->reads.size(), 1u);
  EXPECT_EQ(resp->reads[0].payload[0], 0x17);
}

TEST(AsyncClientTest, CircuitBreakerOpensFailsFastAndClosesAfterProbe) {
  auto env = StartLoopback();
  uint16_t port = env.server->port();

  AsyncClientOptions opts;
  opts.port = port;
  opts.retry.max_attempts = 1;  // count breaker failures deterministically
  opts.retry.breaker_failure_threshold = 3;
  opts.retry.breaker_open_ms = 200;
  auto client = AsyncNetClient::Connect(opts);
  ASSERT_TRUE(client.ok());

  auto ping = [&]() {
    NetRequest req;
    req.type = MsgType::kPing;
    return (*client)->Call(std::move(req));
  };
  ASSERT_TRUE(ping().ok());

  env.server->Stop();
  env.server.reset();

  // Three consecutive transport failures trip the breaker...
  for (int i = 0; i < 3; ++i) {
    ASSERT_FALSE(ping().ok());
  }
  EXPECT_GE((*client)->stats().breaker_open.load(), 1u);
  // ...after which calls fail fast without touching the network.
  auto start = std::chrono::steady_clock::now();
  auto rejected = ping();
  auto fast_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().ToString().find("circuit breaker open"),
            std::string::npos)
      << rejected.status().ToString();
  EXPECT_LT(fast_ms, 50);

  // Restart the node; once the open window lapses, the single half-open
  // probe succeeds and the breaker closes for good.
  StorageServerOptions server_opts;
  server_opts.port = port;
  env.server = std::make_unique<StorageServer>(env.buckets, env.log, server_opts);
  ASSERT_TRUE(env.server->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  auto probe = ping();
  EXPECT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_TRUE(ping().ok());
}

TEST(AsyncClientTest, HeartbeatDetectsHalfOpenConnection) {
  auto env = StartLoopback();
  auto relay = FaultRelay::Start("127.0.0.1", env.server->port());
  ASSERT_TRUE(relay.ok());

  AsyncClientOptions opts;
  opts.port = (*relay)->port();
  opts.heartbeat_interval_ms = 50;
  opts.heartbeat_timeout_ms = 100;
  auto client = AsyncNetClient::Connect(opts);
  ASSERT_TRUE(client.ok());

  NetRequest req;
  req.type = MsgType::kPing;
  ASSERT_TRUE((*client)->Call(std::move(req)).ok());

  // A blackholed link looks established to both endpoints; only the
  // application-level heartbeat can notice nothing comes back.
  (*relay)->Partition();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_GE((*client)->stats().heartbeats_sent.load(), 2u);
  EXPECT_GE((*client)->stats().heartbeat_failures.load(), 1u);

  (*relay)->Heal();
  NetRequest again;
  again.type = MsgType::kPing;
  auto healed = (*client)->Call(std::move(again));
  EXPECT_TRUE(healed.ok()) << healed.status().ToString();
}

TEST(EventLoopTest, SlowReaderBackpressureBoundsTheWriteQueue) {
  auto listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto client_sock = TcpSocket::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client_sock.ok());
  auto peer = listener->Accept();
  ASSERT_TRUE(peer.ok());

  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  constexpr size_t kCap = 64 * 1024;
  auto conn = loop.AddConnection(std::move(*client_sock), {}, /*max_frame_bytes=*/1 << 20,
                                 /*write_queue_cap=*/kCap);
  ASSERT_TRUE(conn.ok());

  // 6.4 MB of frames vs. a 64 KB queue cap and a peer that reads nothing:
  // the sender MUST block long before finishing.
  constexpr size_t kFrames = 400;
  constexpr size_t kFrameBytes = 16 * 1024;
  std::atomic<size_t> sent{0};
  std::thread sender([&] {
    for (size_t i = 0; i < kFrames; ++i) {
      Bytes payload(kFrameBytes, static_cast<uint8_t>(i));
      if (!loop.SendFrame(*conn, payload).ok()) {
        return;
      }
      sent.fetch_add(1);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  size_t sent_while_stalled = sent.load();
  EXPECT_LT(sent_while_stalled, kFrames) << "sender never felt backpressure";
  // The queue never grows past cap + one frame (a single frame is always
  // admitted to avoid deadlock).
  EXPECT_LE(loop.QueuedBytes(*conn), kCap + kFrameBytes + 4);

  // Drain the peer: the sender unblocks and every frame arrives intact and
  // in order.
  size_t received = 0;
  while (received < kFrames) {
    auto frame = peer->RecvFrame(1 << 20);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->size(), kFrameBytes);
    EXPECT_EQ((*frame)[0], static_cast<uint8_t>(received));
    ++received;
  }
  sender.join();
  EXPECT_EQ(sent.load(), kFrames);
  loop.Stop();
}

// ---------------------------------------------------------------------------
// Batched GC round trips
// ---------------------------------------------------------------------------

TEST(BatchedTruncateTest, EpochGcIsOneRoundTripPerShard) {
  // K=4 shards over one remote store: TruncateStaleVersions must cost
  // exactly K round trips (one kTruncateBucketsBatch per shard), not one
  // per bucket. Shared probe with bench_net_storage's JSON emitter.
  GcProbeResult gc = RunGcRoundTripProbe(4);
  ASSERT_TRUE(gc.ok);
  EXPECT_EQ(gc.round_trips, 4u) << "GC round trips must equal the shard count";
  EXPECT_GT(gc.buckets, 4u);  // i.e. strictly fewer than per-bucket
}

TEST(StorageServerTest, GarbageFrameGetsErrorResponseAndClose) {
  auto env = StartLoopback();
  auto sock = TcpSocket::Connect("127.0.0.1", env.server->port());
  ASSERT_TRUE(sock.ok());
  // A frame of pure garbage (valid length prefix, junk payload).
  Bytes junk(32, 0xa5);
  ASSERT_TRUE(sock->SendFrame(junk).ok());
  auto resp_frame = sock->RecvFrame(kDefaultMaxFrameBytes);
  ASSERT_TRUE(resp_frame.ok()) << resp_frame.status().ToString();
  NetResponse resp;
  ASSERT_TRUE(DecodeResponse(*resp_frame, MsgType::kPing, &resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kInvalidArgument);
  // The server then closes the (untrustworthy) connection.
  auto next = sock->RecvFrame(kDefaultMaxFrameBytes);
  EXPECT_FALSE(next.ok());
  EXPECT_GE(env.server->stats().protocol_errors.load(), 1u);

  // An oversized frame is rejected without a 4 GiB allocation: the server
  // just drops the connection.
  auto sock2 = TcpSocket::Connect("127.0.0.1", env.server->port());
  ASSERT_TRUE(sock2.ok());
  Bytes huge_len = {0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(sock2->SendAll(huge_len.data(), huge_len.size()).ok());
  auto dropped = sock2->RecvFrame(kDefaultMaxFrameBytes);
  EXPECT_FALSE(dropped.ok());
}

// ---------------------------------------------------------------------------
// Conformance over the wire
// ---------------------------------------------------------------------------

TEST(RemoteConformanceTest, RemoteBucketStoreMatchesLocalSemantics) {
  auto env = StartLoopback(16, 3);
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok());
  RunBucketStoreConformance(**store, 3);
}

TEST(RemoteConformanceTest, RemoteLogStoreMatchesLocalSemantics) {
  auto env = StartLoopback();
  auto log = RemoteLogStore::Connect(env.ClientOptions());
  ASSERT_TRUE(log.ok());
  RunLogStoreConformance(**log);
}

// ---------------------------------------------------------------------------
// Replicated tier over the wire
// ---------------------------------------------------------------------------

TEST(RemoteConformanceTest, ReplicatedRemoteStoresMatchLocalSemantics) {
  auto env0 = StartLoopback(16, 3);
  auto env1 = StartLoopback(16, 3);
  auto r0 = RemoteBucketStore::Connect(env0.ClientOptions());
  auto r1 = RemoteBucketStore::Connect(env1.ClientOptions());
  ASSERT_TRUE(r0.ok() && r1.ok());
  ReplicatedStoreOptions opts;
  opts.write_quorum = 2;
  std::vector<std::shared_ptr<BucketStore>> bucket_reps;
  bucket_reps.push_back(std::move(*r0));
  bucket_reps.push_back(std::move(*r1));
  ReplicatedBucketStore store(std::move(bucket_reps), opts);
  RunBucketStoreConformance(store, 3);

  auto l0 = RemoteLogStore::Connect(env0.ClientOptions());
  auto l1 = RemoteLogStore::Connect(env1.ClientOptions());
  ASSERT_TRUE(l0.ok() && l1.ok());
  std::vector<std::shared_ptr<LogStore>> log_reps;
  log_reps.push_back(std::move(*l0));
  log_reps.push_back(std::move(*l1));
  ReplicatedLogStore log(std::move(log_reps), opts);
  RunLogStoreConformance(log);
}

// Failover racing the circuit breaker's half-open probe: the primary's node
// dies (deadline failures trip the breaker, whose open state surfaces as
// kUnavailable), reads fail over to the follower, the node comes back on
// the same port, and heal attempts — some of which land while the breaker
// is open or half-open and fail retriably — must eventually promote the
// replica without ever surfacing an error to readers.
TEST(ReplicatedRemoteTest, FailoverRacesBreakerHalfOpenProbe) {
  auto env0 = StartLoopback(16, 4);
  auto env1 = StartLoopback(16, 4);
  uint16_t port0 = env0.server->port();

  auto client_opts = [&](uint16_t port) {
    RemoteStoreOptions opts;
    opts.port = port;
    opts.default_deadline_ms = 200;
    opts.retry.max_attempts = 1;
    opts.retry.breaker_failure_threshold = 2;
    opts.retry.breaker_open_ms = 100;
    return opts;
  };
  auto r0 = RemoteBucketStore::Connect(client_opts(port0));
  auto r1 = RemoteBucketStore::Connect(client_opts(env1.server->port()));
  ASSERT_TRUE(r0.ok() && r1.ok());
  std::vector<std::shared_ptr<BucketStore>> reps;
  reps.push_back(std::move(*r0));
  reps.push_back(std::move(*r1));
  ReplicatedBucketStore store(std::move(reps));

  std::vector<Bytes> image(4, Bytes(16, 0x5A));
  ASSERT_TRUE(store.WriteBucket(2, 1, image).ok());
  ASSERT_EQ(store.PrimaryIndexForTest(), 0);

  // Kill the primary's node. The next read must fail over, not error out.
  env0.server->Stop();
  env0.server.reset();
  auto slot = store.ReadSlot(2, 1, 0);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_EQ((*slot)[0], 0x5A);
  EXPECT_EQ(store.PrimaryIndexForTest(), 1);

  // Write while the replica is down so catch-up has real work.
  ASSERT_TRUE(store.WriteBucket(5, 2, image).ok());

  // Drive the dead client until its breaker opens, so heal attempts race
  // the half-open probe cycle instead of only clean connections.
  for (int i = 0; i < 3; ++i) {
    (void)store.TryHealReplicas();
  }

  // Node restarts on the same port; heal until the breaker's half-open
  // probe lets a catch-up pass complete and the replica is promoted.
  StorageServerOptions server_opts;
  server_opts.port = port0;
  env0.server =
      std::make_unique<StorageServer>(env0.buckets, env0.log, server_opts);
  ASSERT_TRUE(env0.server->Start().ok());

  bool promoted = false;
  for (int attempt = 0; attempt < 100 && !promoted; ++attempt) {
    (void)store.TryHealReplicas();
    ReplicationStats stats = store.replication_stats();
    promoted = stats.replicas[0].health == ReplicaHealth::kCurrent;
    if (!promoted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(promoted);
  ReplicationStats stats = store.replication_stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.resyncs, 1u);

  // The resynced replica holds the write it missed, straight from its
  // backing store — epoch replay rebuilt the live version.
  auto healed = env0.buckets->ReadSlot(5, 2, 0);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ((*healed)[0], 0x5A);
}

// ---------------------------------------------------------------------------
// Storage-node restart
// ---------------------------------------------------------------------------

TEST(StorageServerTest, ClientSurvivesServerRestart) {
  auto buckets = std::make_shared<MemoryBucketStore>(16, 2);
  auto log = std::make_shared<MemoryLogStore>();
  auto server = std::make_unique<StorageServer>(buckets, log);
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();

  RemoteStoreOptions opts;
  opts.port = port;
  opts.pool_size = 2;
  auto store = RemoteBucketStore::Connect(opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->WriteBucket(1, 0, std::vector<Bytes>(2, Bytes(8, 0x77))).ok());
  ASSERT_TRUE((*store)->ReadSlot(1, 0, 0).ok());

  // Kill the storage node. In-flight/new requests fail Unavailable.
  server->Stop();
  server.reset();
  auto while_down = (*store)->ReadSlot(1, 0, 0);
  ASSERT_FALSE(while_down.ok());
  EXPECT_EQ(while_down.status().code(), StatusCode::kUnavailable);

  // Restart on the same port over the same (durable) backing state: the
  // client's stale pooled connections redial transparently and the
  // shadow-paged data is still there.
  StorageServerOptions server_opts;
  server_opts.port = port;
  auto restarted = std::make_unique<StorageServer>(buckets, log, server_opts);
  ASSERT_TRUE(restarted->Start().ok());
  auto after = (*store)->ReadSlot(1, 0, 0);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)[0], 0x77);
  EXPECT_GE((*store)->stats().reconnects.load(), 1u);
}

// ---------------------------------------------------------------------------
// Full proxy epoch pipeline over loopback
// ---------------------------------------------------------------------------

struct RemoteProxyEnv {
  std::shared_ptr<MemoryBucketStore> buckets;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<StorageServer> server;
  ObladiConfig config;
  std::unique_ptr<ObladiStore> proxy;
};

RemoteProxyEnv MakeRemoteProxy(uint32_t shards) {
  RemoteProxyEnv env;
  env.config = ObladiConfig::ForCapacity(256, /*z=*/4, /*payload=*/128);
  env.config.num_shards = shards;
  env.config.read_batches_per_epoch = 3;
  env.config.read_batch_size = 16;
  env.config.write_batch_size = 16;
  env.config.recovery.enabled = true;
  env.config.recovery.full_checkpoint_interval = 4;
  env.config.oram_options.io_threads = 8;

  env.buckets = std::make_shared<MemoryBucketStore>(
      env.config.StoreBuckets(), env.config.MakeLayout().shard_config.slots_per_bucket());
  env.log = std::make_shared<MemoryLogStore>();
  env.server = std::make_unique<StorageServer>(env.buckets, env.log);
  EXPECT_TRUE(env.server->Start().ok());

  RemoteStoreOptions opts;
  opts.port = env.server->port();
  opts.pool_size = 8;
  auto remote_buckets = RemoteBucketStore::Connect(opts);
  auto remote_log = RemoteLogStore::Connect(opts);
  EXPECT_TRUE(remote_buckets.ok() && remote_log.ok());
  env.proxy = std::make_unique<ObladiStore>(env.config, std::move(*remote_buckets),
                                            std::move(*remote_log));
  return env;
}

std::vector<std::pair<Key, std::string>> NetRecords(int n) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  return records;
}

class RemoteProxyPipelineTest : public testing::TestWithParam<uint32_t> {};

TEST_P(RemoteProxyPipelineTest, EpochPipelineRunsUnchangedOverLoopback) {
  auto env = MakeRemoteProxy(GetParam());
  ASSERT_TRUE(env.proxy->Load(NetRecords(64)).ok());

  for (int i = 0; i < 6; ++i) {
    CommitWrite(*env.proxy, "key" + std::to_string(i), "net" + std::to_string(i));
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(i)),
              "net" + std::to_string(i));
  }
  // Untouched keys still serve their loaded values through the ORAM.
  for (int i = 40; i < 44; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(i)),
              "value" + std::to_string(i));
  }
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
  // All of it actually crossed the socket.
  EXPECT_GT(env.server->stats().requests_served.load(), 0u);
  EXPECT_GT(env.server->stats().bytes_received.load(), 0u);
}

TEST_P(RemoteProxyPipelineTest, ProxyCrashRecoveryReplaysOverTheNetwork) {
  auto env = MakeRemoteProxy(GetParam());
  ASSERT_TRUE(env.proxy->Load(NetRecords(64)).ok());
  for (int i = 0; i < 4; ++i) {
    CommitWrite(*env.proxy, "key" + std::to_string(i), "durable" + std::to_string(i));
  }

  // The proxy dies; its volatile state (position maps, stashes, version
  // cache) is gone. Everything needed to rebuild lives across the network
  // in the bucket store + WAL.
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(i)),
              "durable" + std::to_string(i));
  }
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(KShards, RemoteProxyPipelineTest, testing::Values(1u, 4u),
                         [](const testing::TestParamInfo<uint32_t>& info) {
                           return "K" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Graceful degradation: partition of one shard's storage node
// ---------------------------------------------------------------------------

// The PR-level acceptance scenario, deterministic: a per-shard deployment
// (one storage node per shard, a fault relay in front of shard 1's node)
// with the hardened transport. Blackholing that one link mid-run must
// convert into bounded-time retriable aborts for clients — never a hung
// proxy — and after the link heals, crash recovery replays over the healed
// link and the pipeline resumes.
TEST(PartitionedShardTest, PartitionFailsClientsRetriablyThenHealsAndRecovers) {
  ObladiConfig config = ObladiConfig::ForCapacity(256, /*z=*/4, /*payload=*/128);
  config.num_shards = 4;
  config.read_batches_per_epoch = 3;
  config.read_batch_size = 16;
  config.write_batch_size = 16;
  config.batch_interval_us = 300;
  config.timed_mode = true;
  config.pipeline_epochs = true;
  config.recovery.enabled = true;
  config.recovery.full_checkpoint_interval = 4;
  config.oram_options.io_threads = 8;
  // The degradation contract: an unreachable shard turns the retirement
  // wait into a bounded-time epoch abort instead of an indefinite hang.
  config.retire_timeout_ms = 1000;

  const ShardLayout layout = config.MakeLayout();
  auto log = std::make_shared<MemoryLogStore>();
  std::vector<std::shared_ptr<MemoryBucketStore>> shard_mem;
  std::vector<std::unique_ptr<StorageServer>> servers;
  for (uint32_t s = 0; s < config.num_shards; ++s) {
    shard_mem.push_back(std::make_shared<MemoryBucketStore>(
        layout.shard_config.num_buckets(), layout.shard_config.slots_per_bucket()));
    servers.push_back(std::make_unique<StorageServer>(shard_mem[s], log));
    ASSERT_TRUE(servers[s]->Start().ok());
  }
  auto relay = FaultRelay::Start("127.0.0.1", servers[1]->port());
  ASSERT_TRUE(relay.ok()) << relay.status().ToString();

  RemoteStoreOptions opts;
  opts.default_deadline_ms = 200;
  opts.heartbeat_interval_ms = 100;
  opts.heartbeat_timeout_ms = 200;
  opts.retry.max_attempts = 2;
  opts.retry.initial_backoff_us = 1000;
  std::vector<std::shared_ptr<BucketStore>> shard_stores;
  for (uint32_t s = 0; s < config.num_shards; ++s) {
    RemoteStoreOptions so = opts;
    so.port = s == 1 ? (*relay)->port() : servers[s]->port();
    auto rb = RemoteBucketStore::Connect(so);
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    shard_stores.push_back(std::move(*rb));
  }
  RemoteStoreOptions lo = opts;
  lo.port = servers[0]->port();  // the WAL's node is NOT partitioned
  auto remote_log = RemoteLogStore::Connect(lo);
  ASSERT_TRUE(remote_log.ok());

  ObladiStore proxy(config, std::move(shard_stores), std::move(*remote_log));
  ASSERT_TRUE(proxy.Load(NetRecords(64)).ok());
  proxy.Start();

  // Healthy baseline commit.
  Status warm = RunTransaction(proxy, [](Txn& txn) -> Status {
    return txn.Write("key0", "before-partition");
  });
  ASSERT_TRUE(warm.ok()) << warm.ToString();

  // Cut shard 1's link. Every epoch's padded read batches touch every
  // shard, so all in-flight work now depends on a blackholed socket; only
  // the request deadlines can unblock it.
  (*relay)->Partition();
  auto start = std::chrono::steady_clock::now();
  int failed_attempts = 0;
  for (int i = 0; i < 4; ++i) {
    Status st = RunTransaction(
        proxy,
        [&](Txn& txn) -> Status { return txn.Write("key1", "during-partition"); },
        /*max_attempts=*/1);
    if (!st.ok()) {
      // kAborted = blocked client failed retriably when its epoch aborted;
      // kUnavailable("proxy crashed") = the bounded retirement wait expired
      // and the pacer stopped fatally — the failover signal. Either way the
      // attempt came back promptly instead of hanging.
      EXPECT_TRUE(st.code() == StatusCode::kAborted ||
                  st.code() == StatusCode::kUnavailable)
          << st.ToString();
      ++failed_attempts;
    }
  }
  auto elapsed_s = std::chrono::duration_cast<std::chrono::seconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_GT(failed_attempts, 0) << "partitioned shard never failed a commit";
  // Bounded by the deadline budget (deadline x retries + retire timeout per
  // epoch), nowhere near a hang.
  EXPECT_LT(elapsed_s, 30) << "clients hung during the partition";

  // Heal, then fail over: the partition failed background retirement
  // sticky, so crash recovery over the healed link is the designed path.
  (*relay)->Heal();
  proxy.SimulateCrash();
  Status recovered;
  for (int attempt = 0; attempt < 50; ++attempt) {
    recovered = proxy.RecoverFromCrash();
    if (recovered.ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  proxy.Start();

  // Pipeline resumed: new commits land, pre-partition state survived the
  // replay, and the ORAM invariants hold across all shards.
  Status after = RunTransaction(proxy, [](Txn& txn) -> Status {
    return txn.Write("key2", "after-heal");
  });
  ASSERT_TRUE(after.ok()) << after.ToString();
  Status check = RunTransaction(proxy, [&](Txn& txn) -> Status {
    auto v0 = txn.Read("key0");
    if (!v0.ok()) {
      return v0.status();
    }
    EXPECT_EQ(*v0, "before-partition");
    auto v2 = txn.Read("key2");
    if (!v2.ok()) {
      return v2.status();
    }
    EXPECT_EQ(*v2, "after-heal");
    return Status::Ok();
  });
  ASSERT_TRUE(check.ok()) << check.ToString();
  EXPECT_TRUE(proxy.oram()->CheckInvariants().ok());

  proxy.Stop();
  (*relay)->Stop();
  for (auto& s : servers) {
    s->Stop();
  }
}

}  // namespace
}  // namespace obladi
