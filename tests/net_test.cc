// Tests for the src/net/ remote storage subsystem: wire-protocol framing
// (including fuzzed garbage), loopback unary/batched round trips, error
// propagation through the server, connection-pool overlap, storage-node
// restart, and the full K-shard proxy epoch pipeline over a loopback
// RemoteBucketStore + RemoteLogStore.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>

#include "src/net/remote_store.h"
#include "src/net/storage_server.h"
#include "src/net/wire.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/latency_store.h"
#include "src/storage/memory_store.h"
#include "tests/paced_proxy.h"
#include "tests/store_conformance.h"

namespace obladi {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(WireTest, RequestRoundTripsEveryType) {
  NetRequest read;
  read.type = MsgType::kReadSlots;
  read.id = 42;
  read.reads = {{3, 1, 7}, {0, 0, 0}, {9999, 0xffffffff, 11}};

  NetRequest write;
  write.type = MsgType::kWriteBuckets;
  write.id = 43;
  BucketImage image;
  image.bucket = 5;
  image.version = 2;
  image.slots = {BytesFromString("slot-a"), Bytes{}, Bytes(300, 0xee)};
  write.writes.push_back(image);

  NetRequest trunc;
  trunc.type = MsgType::kTruncateBucket;
  trunc.id = 44;
  trunc.bucket = 17;
  trunc.keep_from_version = 6;

  NetRequest append;
  append.type = MsgType::kLogAppend;
  append.id = 45;
  append.record = BytesFromString("wal record");

  NetRequest log_trunc;
  log_trunc.type = MsgType::kLogTruncate;
  log_trunc.id = 46;
  log_trunc.lsn = 0xdeadbeefcafe;

  for (const NetRequest* req :
       {&read, &write, &trunc, &append, &log_trunc}) {
    Bytes payload = EncodeRequest(*req);
    NetRequest decoded;
    ASSERT_TRUE(DecodeRequest(payload, &decoded).ok()) << MsgTypeName(req->type);
    EXPECT_EQ(decoded.type, req->type);
    EXPECT_EQ(decoded.id, req->id);
  }

  // Spot-check field fidelity on the interesting ones.
  NetRequest decoded;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(read), &decoded).ok());
  ASSERT_EQ(decoded.reads.size(), 3u);
  EXPECT_EQ(decoded.reads[2].bucket, 9999u);
  EXPECT_EQ(decoded.reads[2].version, 0xffffffffu);

  ASSERT_TRUE(DecodeRequest(EncodeRequest(write), &decoded).ok());
  ASSERT_EQ(decoded.writes.size(), 1u);
  EXPECT_EQ(decoded.writes[0].slots, image.slots);

  ASSERT_TRUE(DecodeRequest(EncodeRequest(log_trunc), &decoded).ok());
  EXPECT_EQ(decoded.lsn, 0xdeadbeefcafeull);
}

TEST(WireTest, ResponseRoundTripsResultBodies) {
  NetResponse reads;
  reads.id = 7;
  reads.request_type = MsgType::kReadSlots;
  reads.reads.push_back(ReadResult{StatusCode::kOk, "", BytesFromString("payload")});
  reads.reads.push_back(ReadResult{StatusCode::kNotFound, "bucket version not present", {}});

  Bytes payload = EncodeResponse(reads);
  NetResponse decoded;
  ASSERT_TRUE(DecodeResponse(payload, MsgType::kReadSlots, &decoded).ok());
  EXPECT_EQ(decoded.id, 7u);
  ASSERT_EQ(decoded.reads.size(), 2u);
  EXPECT_TRUE(decoded.reads[0].ToStatusOr().ok());
  auto missing = decoded.reads[1].ToStatusOr();
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(missing.status().message(), "bucket version not present");

  NetResponse err;
  err.id = 8;
  err.request_type = MsgType::kWriteBuckets;
  err.code = StatusCode::kInvalidArgument;
  err.message = "bucket out of range";
  ASSERT_TRUE(DecodeResponse(EncodeResponse(err), MsgType::kWriteBuckets, &decoded).ok());
  EXPECT_EQ(decoded.ToStatus().code(), StatusCode::kInvalidArgument);

  NetResponse records;
  records.id = 9;
  records.request_type = MsgType::kLogReadAll;
  records.records = {BytesFromString("a"), Bytes{}, BytesFromString("ccc")};
  ASSERT_TRUE(DecodeResponse(EncodeResponse(records), MsgType::kLogReadAll, &decoded).ok());
  ASSERT_EQ(decoded.records.size(), 3u);
  EXPECT_TRUE(decoded.records[1].empty());
}

TEST(WireTest, RejectsMalformedPayloads) {
  NetRequest req;
  // Empty and sub-header payloads.
  EXPECT_FALSE(DecodeRequest(Bytes{}, &req).ok());
  EXPECT_FALSE(DecodeRequest(Bytes{kWireVersion}, &req).ok());
  // Wrong version.
  Bytes good = EncodeRequest(NetRequest{});
  Bytes bad_version = good;
  bad_version[0] = kWireVersion + 1;
  EXPECT_FALSE(DecodeRequest(bad_version, &req).ok());
  // Unknown message type.
  Bytes bad_type = good;
  bad_type[1] = 200;
  EXPECT_FALSE(DecodeRequest(bad_type, &req).ok());
  // Trailing garbage after a valid body.
  Bytes trailing = good;
  trailing.push_back(0x5a);
  EXPECT_FALSE(DecodeRequest(trailing, &req).ok());
  // A batch whose element count exceeds the payload (would otherwise
  // reserve gigabytes).
  NetRequest batch;
  batch.type = MsgType::kReadSlots;
  batch.reads = {{1, 1, 1}};
  Bytes huge_count = EncodeRequest(batch);
  huge_count[10] = 0xff;  // count field starts right after the 10-byte header
  huge_count[11] = 0xff;
  huge_count[12] = 0xff;
  huge_count[13] = 0xff;
  EXPECT_FALSE(DecodeRequest(huge_count, &req).ok());
  // Responses must not decode as requests and vice versa.
  NetResponse resp;
  EXPECT_FALSE(DecodeRequest(EncodeResponse(NetResponse{}), &req).ok());
  EXPECT_FALSE(DecodeResponse(good, MsgType::kPing, &resp).ok());
}

TEST(WireTest, FuzzedBytesNeverCrashTheDecoder) {
  std::mt19937_64 rng(0x0b1ad1f00d);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<size_t> len(0, 512);
  for (int i = 0; i < 20000; ++i) {
    Bytes payload(len(rng));
    for (auto& b : payload) {
      b = static_cast<uint8_t>(byte(rng));
    }
    NetRequest req;
    (void)DecodeRequest(payload, &req);
    NetResponse resp;
    (void)DecodeResponse(payload, MsgType::kReadSlots, &resp);
    (void)DecodeResponse(payload, MsgType::kLogReadAll, &resp);
  }
  // Mutated valid frames: flip bytes of real messages.
  NetRequest write;
  write.type = MsgType::kWriteBuckets;
  BucketImage image;
  image.bucket = 1;
  image.version = 1;
  image.slots = {Bytes(64, 0xab), Bytes(64, 0xcd)};
  write.writes = {image, image};
  Bytes base = EncodeRequest(write);
  std::uniform_int_distribution<size_t> pos(0, base.size() - 1);
  for (int i = 0; i < 20000; ++i) {
    Bytes mutated = base;
    for (int flips = 0; flips < 3; ++flips) {
      mutated[pos(rng)] = static_cast<uint8_t>(byte(rng));
    }
    NetRequest req;
    Status st = DecodeRequest(mutated, &req);
    if (st.ok()) {
      // A surviving decode must at least be internally consistent.
      EXPECT_EQ(req.type, MsgType::kWriteBuckets);
    }
  }
}

// ---------------------------------------------------------------------------
// Loopback server fixture
// ---------------------------------------------------------------------------

struct LoopbackEnv {
  std::shared_ptr<MemoryBucketStore> buckets;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<StorageServer> server;

  RemoteStoreOptions ClientOptions(size_t pool = 4) const {
    RemoteStoreOptions opts;
    opts.port = server->port();
    opts.pool_size = pool;
    return opts;
  }
};

LoopbackEnv StartLoopback(size_t num_buckets = 64, size_t slots = 4,
                          std::shared_ptr<BucketStore> backend = nullptr) {
  LoopbackEnv env;
  env.buckets = std::make_shared<MemoryBucketStore>(num_buckets, slots);
  env.log = std::make_shared<MemoryLogStore>();
  StorageServerOptions opts;
  env.server = std::make_unique<StorageServer>(
      backend ? backend : std::static_pointer_cast<BucketStore>(env.buckets), env.log, opts);
  Status st = env.server->Start();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return env;
}

TEST(StorageServerTest, UnaryRoundTrips) {
  auto env = StartLoopback();
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_buckets(), 64u);

  std::vector<Bytes> slots(4, BytesFromString("ciphertext"));
  ASSERT_TRUE((*store)->WriteBucket(3, 1, slots).ok());
  auto read = (*store)->ReadSlot(3, 1, 2);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(StringFromBytes(*read), "ciphertext");

  // The write really landed in the server's backing store.
  EXPECT_TRUE(env.buckets->ReadSlot(3, 1, 0).ok());

  ASSERT_TRUE((*store)->TruncateBucket(3, 2).ok());
  EXPECT_FALSE((*store)->ReadSlot(3, 1, 2).ok());
}

TEST(StorageServerTest, ServerSideErrorsPropagateWithCodeAndMessage) {
  auto env = StartLoopback();
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok());

  auto missing = (*store)->ReadSlot(0, 99, 0);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(missing.status().message(), "bucket version not present");

  Status bad = (*store)->WriteBucket(9999, 0, std::vector<Bytes>(4));
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);

  // Log RPCs against a server without a log store.
  auto bucket_only = std::make_unique<StorageServer>(env.buckets, nullptr);
  ASSERT_TRUE(bucket_only->Start().ok());
  RemoteStoreOptions opts;
  opts.port = bucket_only->port();
  auto log = RemoteLogStore::Connect(opts);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->Append(BytesFromString("x")).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(StorageServerTest, BatchedRpcIsOneRoundTrip) {
  auto env = StartLoopback(128, 4);
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok());
  (*store)->stats().Reset();

  std::vector<BucketImage> images;
  for (BucketIndex b = 0; b < 32; ++b) {
    BucketImage image;
    image.bucket = b;
    image.version = 0;
    image.slots = std::vector<Bytes>(4, Bytes(128, static_cast<uint8_t>(b)));
    images.push_back(std::move(image));
  }
  ASSERT_TRUE((*store)->WriteBucketsBatch(std::move(images)).ok());
  EXPECT_EQ((*store)->stats().writes.load(), 32u);
  EXPECT_EQ((*store)->stats().round_trips.load(), 1u);

  std::vector<SlotRef> refs;
  for (BucketIndex b = 0; b < 32; ++b) {
    refs.push_back({b, 0, b % 4});
  }
  auto results = (*store)->ReadSlotsBatch(refs);
  ASSERT_EQ(results.size(), 32u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    ASSERT_FALSE((*results[i]).empty());
    EXPECT_EQ((*results[i])[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ((*store)->stats().reads.load(), 32u);
  EXPECT_EQ((*store)->stats().round_trips.load(), 2u);
  EXPECT_EQ((*store)->stats().bytes_read.load(), 32u * 128u);
  EXPECT_EQ((*store)->stats().bytes_written.load(), 32u * 4u * 128u);
}

TEST(StorageServerTest, PooledConnectionsOverlapRequests) {
  // Put a 20 ms latency decorator *behind* the server, then issue 8
  // concurrent unary reads: a pool of 8 should finish in ~1 latency, a pool
  // of 1 in ~8. This is the genuine overlap LatencyStore only simulates.
  auto slow = std::make_shared<MemoryBucketStore>(16, 2);
  ASSERT_TRUE(slow->WriteBucket(0, 0, std::vector<Bytes>(2, Bytes(8, 1))).ok());
  LatencyProfile profile{"test", 20000, 20000, 0};
  auto env = StartLoopback(16, 2, std::make_shared<LatencyBucketStore>(slow, profile));

  auto timed_reads = [&](size_t pool) {
    auto store = RemoteBucketStore::Connect(env.ClientOptions(pool));
    EXPECT_TRUE(store.ok());
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
      threads.emplace_back([&] { EXPECT_TRUE((*store)->ReadSlot(0, 0, 0).ok()); });
    }
    for (auto& t : threads) {
      t.join();
    }
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  auto serial_ms = timed_reads(1);
  auto pooled_ms = timed_reads(8);
  EXPECT_GE(serial_ms, 8 * 20);
  EXPECT_LT(pooled_ms, serial_ms / 2) << "pooled connections did not overlap";
}

TEST(StorageServerTest, GarbageFrameGetsErrorResponseAndClose) {
  auto env = StartLoopback();
  auto sock = TcpSocket::Connect("127.0.0.1", env.server->port());
  ASSERT_TRUE(sock.ok());
  // A frame of pure garbage (valid length prefix, junk payload).
  Bytes junk(32, 0xa5);
  ASSERT_TRUE(sock->SendFrame(junk).ok());
  auto resp_frame = sock->RecvFrame(kDefaultMaxFrameBytes);
  ASSERT_TRUE(resp_frame.ok()) << resp_frame.status().ToString();
  NetResponse resp;
  ASSERT_TRUE(DecodeResponse(*resp_frame, MsgType::kPing, &resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kInvalidArgument);
  // The server then closes the (untrustworthy) connection.
  auto next = sock->RecvFrame(kDefaultMaxFrameBytes);
  EXPECT_FALSE(next.ok());
  EXPECT_GE(env.server->stats().protocol_errors.load(), 1u);

  // An oversized frame is rejected without a 4 GiB allocation: the server
  // just drops the connection.
  auto sock2 = TcpSocket::Connect("127.0.0.1", env.server->port());
  ASSERT_TRUE(sock2.ok());
  Bytes huge_len = {0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(sock2->SendAll(huge_len.data(), huge_len.size()).ok());
  auto dropped = sock2->RecvFrame(kDefaultMaxFrameBytes);
  EXPECT_FALSE(dropped.ok());
}

// ---------------------------------------------------------------------------
// Conformance over the wire
// ---------------------------------------------------------------------------

TEST(RemoteConformanceTest, RemoteBucketStoreMatchesLocalSemantics) {
  auto env = StartLoopback(16, 3);
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok());
  RunBucketStoreConformance(**store, 3);
}

TEST(RemoteConformanceTest, RemoteLogStoreMatchesLocalSemantics) {
  auto env = StartLoopback();
  auto log = RemoteLogStore::Connect(env.ClientOptions());
  ASSERT_TRUE(log.ok());
  RunLogStoreConformance(**log);
}

// ---------------------------------------------------------------------------
// Storage-node restart
// ---------------------------------------------------------------------------

TEST(StorageServerTest, ClientSurvivesServerRestart) {
  auto buckets = std::make_shared<MemoryBucketStore>(16, 2);
  auto log = std::make_shared<MemoryLogStore>();
  auto server = std::make_unique<StorageServer>(buckets, log);
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();

  RemoteStoreOptions opts;
  opts.port = port;
  opts.pool_size = 2;
  auto store = RemoteBucketStore::Connect(opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->WriteBucket(1, 0, std::vector<Bytes>(2, Bytes(8, 0x77))).ok());
  ASSERT_TRUE((*store)->ReadSlot(1, 0, 0).ok());

  // Kill the storage node. In-flight/new requests fail Unavailable.
  server->Stop();
  server.reset();
  auto while_down = (*store)->ReadSlot(1, 0, 0);
  ASSERT_FALSE(while_down.ok());
  EXPECT_EQ(while_down.status().code(), StatusCode::kUnavailable);

  // Restart on the same port over the same (durable) backing state: the
  // client's stale pooled connections redial transparently and the
  // shadow-paged data is still there.
  StorageServerOptions server_opts;
  server_opts.port = port;
  auto restarted = std::make_unique<StorageServer>(buckets, log, server_opts);
  ASSERT_TRUE(restarted->Start().ok());
  auto after = (*store)->ReadSlot(1, 0, 0);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)[0], 0x77);
  EXPECT_GE((*store)->stats().reconnects.load(), 1u);
}

// ---------------------------------------------------------------------------
// Full proxy epoch pipeline over loopback
// ---------------------------------------------------------------------------

struct RemoteProxyEnv {
  std::shared_ptr<MemoryBucketStore> buckets;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<StorageServer> server;
  ObladiConfig config;
  std::unique_ptr<ObladiStore> proxy;
};

RemoteProxyEnv MakeRemoteProxy(uint32_t shards) {
  RemoteProxyEnv env;
  env.config = ObladiConfig::ForCapacity(256, /*z=*/4, /*payload=*/128);
  env.config.num_shards = shards;
  env.config.read_batches_per_epoch = 3;
  env.config.read_batch_size = 16;
  env.config.write_batch_size = 16;
  env.config.recovery.enabled = true;
  env.config.recovery.full_checkpoint_interval = 4;
  env.config.oram_options.io_threads = 8;

  env.buckets = std::make_shared<MemoryBucketStore>(
      env.config.StoreBuckets(), env.config.MakeLayout().shard_config.slots_per_bucket());
  env.log = std::make_shared<MemoryLogStore>();
  env.server = std::make_unique<StorageServer>(env.buckets, env.log);
  EXPECT_TRUE(env.server->Start().ok());

  RemoteStoreOptions opts;
  opts.port = env.server->port();
  opts.pool_size = 8;
  auto remote_buckets = RemoteBucketStore::Connect(opts);
  auto remote_log = RemoteLogStore::Connect(opts);
  EXPECT_TRUE(remote_buckets.ok() && remote_log.ok());
  env.proxy = std::make_unique<ObladiStore>(env.config, std::move(*remote_buckets),
                                            std::move(*remote_log));
  return env;
}

std::vector<std::pair<Key, std::string>> NetRecords(int n) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  return records;
}

class RemoteProxyPipelineTest : public testing::TestWithParam<uint32_t> {};

TEST_P(RemoteProxyPipelineTest, EpochPipelineRunsUnchangedOverLoopback) {
  auto env = MakeRemoteProxy(GetParam());
  ASSERT_TRUE(env.proxy->Load(NetRecords(64)).ok());

  for (int i = 0; i < 6; ++i) {
    CommitWrite(*env.proxy, "key" + std::to_string(i), "net" + std::to_string(i));
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(i)),
              "net" + std::to_string(i));
  }
  // Untouched keys still serve their loaded values through the ORAM.
  for (int i = 40; i < 44; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(i)),
              "value" + std::to_string(i));
  }
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
  // All of it actually crossed the socket.
  EXPECT_GT(env.server->stats().requests_served.load(), 0u);
  EXPECT_GT(env.server->stats().bytes_received.load(), 0u);
}

TEST_P(RemoteProxyPipelineTest, ProxyCrashRecoveryReplaysOverTheNetwork) {
  auto env = MakeRemoteProxy(GetParam());
  ASSERT_TRUE(env.proxy->Load(NetRecords(64)).ok());
  for (int i = 0; i < 4; ++i) {
    CommitWrite(*env.proxy, "key" + std::to_string(i), "durable" + std::to_string(i));
  }

  // The proxy dies; its volatile state (position maps, stashes, version
  // cache) is gone. Everything needed to rebuild lives across the network
  // in the bucket store + WAL.
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(i)),
              "durable" + std::to_string(i));
  }
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(KShards, RemoteProxyPipelineTest, testing::Values(1u, 4u),
                         [](const testing::TestParamInfo<uint32_t>& info) {
                           return "K" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace obladi
