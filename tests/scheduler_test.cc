// Sub-epoch scheduler + depth-D pipeline invariants:
//   * the scheduler reorders work only in time — the wire request multiset
//     per epoch is identical at pipeline depth 1 and depth 2,
//   * early answers deliver correct values before the batch drains,
//   * the explicit stash budget backpressures batch dispatch while a
//     retirement is in flight,
//   * a crash with two epochs retiring replays exactly those two epochs'
//     logged plans, oldest first,
//   * the trace-shape watchdog stays green while epochs overlap at depth 2.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <tuple>

#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"
#include "tests/paced_proxy.h"

namespace obladi {
namespace {

struct SchedEnv {
  ObladiConfig config;
  std::shared_ptr<MemoryBucketStore> store;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<ObladiStore> proxy;
};

SchedEnv MakeSchedEnv(size_t pipeline_depth, bool recovery, uint32_t shards = 1,
                      bool watchdog = false) {
  SchedEnv env;
  env.config = ObladiConfig::ForCapacity(128, /*z=*/4, /*payload=*/128);
  env.config.num_shards = shards;
  env.config.read_batches_per_epoch = 2;
  env.config.read_batch_size = 6 * shards;
  env.config.write_batch_size = 6 * shards;
  env.config.pipeline_depth = pipeline_depth;
  env.config.recovery.enabled = recovery;
  env.config.recovery.full_checkpoint_interval = 3;
  env.config.oram_options.io_threads = 4;
  env.config.obs.watchdog = watchdog;
  env.store = std::make_shared<MemoryBucketStore>(env.config.StoreBuckets(),
                                                  env.config.oram.slots_per_bucket());
  env.log = std::make_shared<MemoryLogStore>();
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  return env;
}

std::vector<std::pair<Key, std::string>> SimpleRecords(int n) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  return records;
}

// One read-only transaction, paced from the calling thread. Read-only so no
// commit waiter blocks on a retirement the test is deliberately holding.
void PacedReadAbort(ObladiStore& proxy, const Key& key) {
  ObladiStats before = proxy.stats();
  uint64_t admitted_before = before.oram_fetches + before.cache_hits + before.fetch_dedups;
  std::promise<void> done;
  std::thread client([&] {
    Timestamp t = proxy.Begin();
    auto v = proxy.Read(t, key);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    proxy.Abort(t);
    done.set_value();
  });
  auto fut = done.get_future();
  // Deterministic batch assignment: wait until the read is admitted (or
  // served from the cache) before dispatching anything, so it always rides
  // the epoch's first batch — which batch a request lands in changes the
  // leaf-remap RNG draw order and therefore the (legitimately random) trace.
  while (fut.wait_for(std::chrono::milliseconds(1)) != std::future_status::ready) {
    ObladiStats now = proxy.stats();
    if (now.oram_fetches + now.cache_hits + now.fetch_dedups > admitted_before) {
      break;
    }
  }
  while (fut.wait_for(std::chrono::milliseconds(2)) != std::future_status::ready) {
    (void)proxy.StepReadBatch();
  }
  client.join();
}

// Run `epochs` one-read epochs at the given depth and return each epoch's
// physical-op multiset (sorted). Retirement is drained before each trace cut:
// a path level whose bucket is still in the retiring set is legitimately
// served from the in-flight buffer with no physical read (Lemma 2), and how
// long a bucket stays retiring depends on write-back timing — workload
// independent, but not run-to-run deterministic. Draining pins that variable
// so the cross-depth comparison is exact; the depth-2 machinery (BeginRetire
// -> retire FIFO -> collect) and the sub-epoch scheduler (early answers,
// eager evict dispatch) still run in full.
std::vector<std::vector<PhysicalOp>> EpochTraces(size_t depth, int epochs) {
  auto env = MakeSchedEnv(depth, /*recovery=*/false);
  env.config.oram_options.enable_trace = true;
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  EXPECT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());
  env.proxy->oram()->trace().Clear();

  std::vector<std::vector<PhysicalOp>> out;
  auto op_key = [](const PhysicalOp& op) {
    return std::make_tuple(static_cast<int>(op.type), op.bucket, op.version, op.slot);
  };
  for (int e = 0; e < epochs; ++e) {
    PacedReadAbort(*env.proxy, "key" + std::to_string((e * 7) % 40));
    EXPECT_TRUE(env.proxy->CloseEpochNow().ok());
    EXPECT_TRUE(env.proxy->DrainRetirement().ok());
    auto ops = env.proxy->oram()->trace().Take();
    std::sort(ops.begin(), ops.end(),
              [&](const PhysicalOp& a, const PhysicalOp& b) { return op_key(a) < op_key(b); });
    out.push_back(std::move(ops));
  }
  return out;
}

TEST(SchedulerTest, WireRequestMultisetPerEpochIsDepthInvariant) {
  // Identical config, seed, and workload: the scheduler and the deeper
  // pipeline may reorder requests in time, but each epoch must put exactly
  // the same request multiset on the wire (the oblivious trace shape).
  const int kEpochs = 5;
  auto depth1 = EpochTraces(1, kEpochs);
  auto depth2 = EpochTraces(2, kEpochs);
  ASSERT_EQ(depth1.size(), depth2.size());
  for (int e = 0; e < kEpochs; ++e) {
    ASSERT_FALSE(depth1[e].empty()) << "epoch " << e << " recorded nothing";
    EXPECT_EQ(depth1[e].size(), depth2[e].size()) << "epoch " << e;
    EXPECT_TRUE(depth1[e] == depth2[e])
        << "epoch " << e << ": wire request multiset changed with pipeline depth";
  }
}

TEST(SchedulerTest, DepthZeroAndSerialModeClampToDepthOne) {
  auto env = MakeSchedEnv(/*pipeline_depth=*/0, /*recovery=*/false);
  EXPECT_EQ(env.proxy->config().pipeline_depth, 1u);

  auto serial = MakeSchedEnv(/*pipeline_depth=*/3, /*recovery=*/false);
  serial.config.pipeline_epochs = false;
  serial.proxy = std::make_unique<ObladiStore>(serial.config, serial.store, serial.log);
  EXPECT_EQ(serial.proxy->config().pipeline_depth, 1u);
}

TEST(SchedulerTest, EarlyAnswersDeliverCorrectValues) {
  auto env = MakeSchedEnv(/*pipeline_depth=*/2, /*recovery=*/false);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());

  // Several distinct reads share one batch; each is answered by the read
  // stage as soon as its path group decrypts, and each must see its own
  // committed value.
  constexpr int kReaders = 4;
  std::atomic<int> done{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      Timestamp t = env.proxy->Begin();
      auto v = env.proxy->Read(t, "key" + std::to_string(i));
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      EXPECT_EQ(*v, "value" + std::to_string(i));
      env.proxy->Abort(t);
      done.fetch_add(1);
    });
  }
  while (done.load() < kReaders) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (void)env.proxy->StepReadBatch();
  }
  for (auto& r : readers) {
    r.join();
  }
  ASSERT_TRUE(env.proxy->FinishEpochNow().ok());
  EXPECT_GE(env.proxy->stats().sched_overlapped_accesses,
            static_cast<uint64_t>(kReaders));
}

TEST(SchedulerTest, StashBudgetBackpressuresDispatch) {
  auto env = MakeSchedEnv(/*pipeline_depth=*/2, /*recovery=*/false);
  env.config.max_stash_blocks = 1;  // tiny: any retiring epoch exceeds it
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());

  // Park the retirement after its write-back: the retiring generation keeps
  // its blocks in flight until the worker collects them.
  std::promise<void> release;
  std::shared_future<void> release_fut = release.get_future().share();
  std::atomic<int> hook_calls{0};
  env.proxy->SetRetireHookForTest([&] {
    if (hook_calls.fetch_add(1) == 0) {
      release_fut.wait();
    }
  });

  std::thread writer([&] {
    Timestamp t = env.proxy->Begin();
    ASSERT_TRUE(env.proxy->Write(t, "key1", "stash-filler").ok());
    (void)env.proxy->Commit(t);  // decision arrives once retirement completes
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());
  EXPECT_GT(env.proxy->oram()->InflightBlocks(), 1u)
      << "retiring epoch holds no blocks; the budget has nothing to bound";

  // Next epoch's dispatch must stall: in-flight blocks exceed the budget and
  // a retirement is in flight to shrink them.
  std::atomic<bool> read_done{false};
  std::thread reader([&] {
    Timestamp t = env.proxy->Begin();
    auto v = env.proxy->Read(t, "key2");
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    env.proxy->Abort(t);
    read_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::atomic<bool> step_done{false};
  std::thread dispatcher([&] {
    (void)env.proxy->StepReadBatch();
    step_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(step_done.load()) << "dispatch ignored the stash budget";
  EXPECT_FALSE(read_done.load());

  release.set_value();
  dispatcher.join();
  reader.join();
  writer.join();
  ASSERT_TRUE(env.proxy->FinishEpochNow().ok());

  ObladiStats stats = env.proxy->stats();
  EXPECT_GE(stats.stash_budget_stalls, 1u);
  EXPECT_GE(stats.stash_budget_stall_us, 1000u);
  EXPECT_TRUE(read_done.load());
}

TEST(SchedulerTest, CrashWithTwoRetiringEpochsReplaysBothInOrder) {
  // Depth 2: epochs N and N+1 both close and neither checkpoint lands
  // (the worker is parked on N). A crash here must recover to the last
  // durable epoch and replay exactly both unretired epochs' logged plans —
  // N's before N+1's.
  auto env = MakeSchedEnv(/*pipeline_depth=*/2, /*recovery=*/true);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());
  CommitWrite(*env.proxy, "key1", "durable-A");

  std::promise<void> hook_entered;
  std::promise<void> release;
  std::shared_future<void> release_fut = release.get_future().share();
  std::atomic<int> hook_calls{0};
  env.proxy->SetRetireHookForTest([&] {
    if (hook_calls.fetch_add(1) == 0) {
      hook_entered.set_value();
      release_fut.wait();
    }
  });

  // Epoch N writes key1; its commit decision never arrives.
  Status w1_status;
  std::thread writer1([&] {
    Timestamp t = env.proxy->Begin();
    ASSERT_TRUE(env.proxy->Write(t, "key1", "doomed-B").ok());
    w1_status = env.proxy->Commit(t);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());
  hook_entered.get_future().wait();  // N parked before its checkpoint append

  // Epoch N+1 writes key2 and closes too: at depth 2 the close takes the
  // second retirement slot instead of waiting for N.
  Status w2_status;
  std::thread writer2([&] {
    Timestamp t = env.proxy->Begin();
    ASSERT_TRUE(env.proxy->Write(t, "key2", "doomed-C").ok());
    w2_status = env.proxy->Commit(t);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());

  std::thread crasher([&] { env.proxy->SimulateCrash(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // abandon flag set
  release.set_value();
  crasher.join();
  writer1.join();
  writer2.join();
  EXPECT_FALSE(w1_status.ok()) << "epoch N's decision survived the crash";
  EXPECT_FALSE(w2_status.ok()) << "epoch N+1's decision survived the crash";

  RecoveryBreakdown breakdown;
  ASSERT_TRUE(env.proxy->RecoverFromCrash(&breakdown).ok());
  // The replay window is exactly the two unretired epochs — all of N's and
  // N+1's batches, nothing older (durable) and nothing newer (never ran).
  EXPECT_EQ(breakdown.replayed_batches, 2 * env.config.read_batches_per_epoch);

  EXPECT_EQ(ReadCommitted(*env.proxy, "key1"), "durable-A");
  EXPECT_EQ(ReadCommitted(*env.proxy, "key2"), "value2");
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());

  // The recovered proxy pipelines again at depth 2.
  CommitWrite(*env.proxy, "key2", "durable-C");
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  EXPECT_EQ(ReadCommitted(*env.proxy, "key2"), "durable-C");
}

TEST(SchedulerTest, WatchdogStaysGreenWithOverlappingEpochsAtDepthTwo) {
  auto env = MakeSchedEnv(/*pipeline_depth=*/2, /*recovery=*/false, /*shards=*/2,
                          /*watchdog=*/true);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(48)).ok());
  ASSERT_NE(env.proxy->watchdog(), nullptr);

  // Hold epoch 1's retirement while epoch 2 executes and closes: genuine
  // depth-2 overlap, observed by the watchdog at every close.
  std::promise<void> release;
  std::shared_future<void> release_fut = release.get_future().share();
  std::atomic<int> hook_calls{0};
  env.proxy->SetRetireHookForTest([&] {
    if (hook_calls.fetch_add(1) == 0) {
      release_fut.wait();
    }
  });

  PacedReadAbort(*env.proxy, "key3");
  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());  // epoch 1 parked, retiring
  PacedReadAbort(*env.proxy, "key7");
  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());  // closes inside epoch 1's retirement
  release.set_value();

  for (int e = 0; e < 4; ++e) {
    PacedReadAbort(*env.proxy, "key" + std::to_string(11 + 5 * e));
    ASSERT_TRUE(env.proxy->CloseEpochNow().ok());
  }
  ASSERT_TRUE(env.proxy->DrainRetirement().ok());

  // Every epoch kept the padded shape despite overlap, early answers, and
  // eager evict dispatch.
  EXPECT_EQ(env.proxy->watchdog()->violations(), 0u)
      << (env.proxy->watchdog()->recent_violations().empty()
              ? std::string("(no messages)")
              : env.proxy->watchdog()->recent_violations().back());
  EXPECT_GE(env.proxy->watchdog()->epochs_checked(), 6u);

  ObladiStats stats = env.proxy->stats();
  EXPECT_GE(stats.epochs_overlapped, 1u);
  EXPECT_GE(stats.sched_overlapped_accesses, 1u);
}

}  // namespace
}  // namespace obladi
