// Serializability audit subsystem tests: trace serde round trips, the
// verifier's violation taxonomy on hand-built histories, violation
// injection (the verifier's own self-test), the recorder's retry-interval
// semantics, and honest end-to-end runs against the real pipelined proxy.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/audit/audit_workload.h"
#include "src/audit/history.h"
#include "src/audit/recorder.h"
#include "src/audit/verifier.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"
#include "src/workload/driver.h"

namespace obladi {
namespace {

// --- hand-built history helpers ---------------------------------------------

TxnTraceRecord MakeTxn(Timestamp ts, TxnOutcome outcome, uint64_t invoke,
                       uint64_t response, uint32_t client = 0) {
  TxnTraceRecord txn;
  txn.ts = ts;
  txn.client = client;
  txn.invoke_us = invoke;
  txn.response_us = response;
  txn.outcome = outcome;
  return txn;
}

void ReadSaw(TxnTraceRecord& txn, const Key& key, const std::string& value) {
  txn.reads.push_back({key, true, value});
}

void ReadMissed(TxnTraceRecord& txn, const Key& key) {
  txn.reads.push_back({key, false, ""});
}

void Wrote(TxnTraceRecord& txn, const Key& key, const std::string& value) {
  txn.writes.emplace_back(key, value);
}

bool HasViolation(const AuditReport& report, ViolationKind kind) {
  for (const Violation& v : report.violations) {
    if (v.kind == kind) {
      return true;
    }
  }
  return false;
}

// --- trace serde -------------------------------------------------------------

TEST(AuditHistoryTest, TraceRoundTripsThroughBytes) {
  std::vector<TxnTraceRecord> txns;
  TxnTraceRecord a = MakeTxn(7, TxnOutcome::kCommitted, 100, 230, 3);
  ReadSaw(a, "x", "v7:x");
  ReadMissed(a, "zzz");
  Wrote(a, "x", "v7:x2");
  txns.push_back(a);
  txns.push_back(MakeTxn(9, TxnOutcome::kAborted, 240, 250, 3));

  Bytes encoded = EncodeTrace(3, txns, {{"x", "init"}});
  History decoded;
  ASSERT_TRUE(DecodeTrace(encoded, decoded).ok());
  ASSERT_EQ(decoded.txns.size(), 2u);
  EXPECT_EQ(decoded.txns[0], txns[0]);
  EXPECT_EQ(decoded.txns[1], txns[1]);
  ASSERT_EQ(decoded.initial.size(), 1u);
  EXPECT_EQ(decoded.initial[0].first, "x");
}

TEST(AuditHistoryTest, TruncatedTraceIsRejected) {
  std::vector<TxnTraceRecord> txns;
  TxnTraceRecord a = MakeTxn(7, TxnOutcome::kCommitted, 100, 230);
  ReadSaw(a, "key-with-some-length", "value-with-some-length");
  txns.push_back(a);
  Bytes encoded = EncodeTrace(0, txns, {});
  encoded.resize(encoded.size() - 5);
  History decoded;
  EXPECT_FALSE(DecodeTrace(encoded, decoded).ok());
  History garbage;
  EXPECT_FALSE(DecodeTrace(BytesFromString("not a trace"), garbage).ok());
}

TEST(AuditHistoryTest, WriteTracesAndLoadHistoryRoundTrip) {
  HistoryRecorder recorder(2);
  recorder.RecordInitialDb({{"x", "init:x"}});
  recorder.Client(0).OpenTxn(5, 100);
  recorder.Client(0).AddRead(5, "x", true, "init:x");
  recorder.Client(0).AddWrite(5, "x", "v5:x");
  recorder.Client(0).CloseTxn(5, TxnOutcome::kCommitted, 180);
  recorder.Client(1).OpenTxn(6, 120);
  recorder.Client(1).CloseTxn(6, TxnOutcome::kAborted, 140);

  std::string dir = testing::TempDir() + "/obladi_audit_roundtrip";
  auto bytes = recorder.WriteTraces(dir);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_EQ(*bytes, recorder.TraceBytes());

  auto loaded = LoadHistory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->txns.size(), 2u);
  EXPECT_EQ(loaded->txns[0].ts, 5u);        // merged in timestamp order
  EXPECT_EQ(loaded->txns[0].client, 0u);
  EXPECT_EQ(loaded->txns[1].client, 1u);
  ASSERT_EQ(loaded->initial.size(), 1u);

  auto report = VerifyHistory(*loaded);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->serializable);
}

// --- verifier taxonomy -------------------------------------------------------

TEST(AuditVerifierTest, HonestHistoryIsSerializable) {
  History h;
  h.initial = {{"x", "init:x"}, {"y", "init:y"}};
  TxnTraceRecord w = MakeTxn(10, TxnOutcome::kCommitted, 100, 200);
  ReadSaw(w, "x", "init:x");
  Wrote(w, "x", "v10:x");
  TxnTraceRecord r = MakeTxn(20, TxnOutcome::kCommitted, 210, 300);
  ReadSaw(r, "x", "v10:x");
  ReadMissed(r, "nokey");
  h.txns = {w, r};

  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->serializable) << report->Summary();
  EXPECT_EQ(report->committed, 2u);
  EXPECT_EQ(report->reads_checked, 3u);
  EXPECT_GT(report->graph_edges, 0u);
}

TEST(AuditVerifierTest, FlagsStaleRead) {
  History h;
  h.initial = {{"x", "init:x"}};
  TxnTraceRecord w = MakeTxn(10, TxnOutcome::kCommitted, 100, 200);
  Wrote(w, "x", "v10:x");
  TxnTraceRecord r = MakeTxn(20, TxnOutcome::kCommitted, 210, 300);
  ReadSaw(r, "x", "init:x");  // should have seen v10:x
  h.txns = {w, r};
  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->serializable);
  EXPECT_TRUE(HasViolation(*report, ViolationKind::kStaleRead)) << report->Summary();
}

TEST(AuditVerifierTest, FlagsNotFoundStaleRead) {
  History h;
  h.initial = {{"x", "init:x"}};
  TxnTraceRecord r = MakeTxn(20, TxnOutcome::kCommitted, 210, 300);
  ReadMissed(r, "x");  // the key exists in the initial image
  h.txns = {r};
  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(HasViolation(*report, ViolationKind::kStaleRead));
}

TEST(AuditVerifierTest, FlagsFutureRead) {
  History h;
  h.initial = {{"x", "init:x"}};
  TxnTraceRecord r = MakeTxn(20, TxnOutcome::kCommitted, 100, 200);
  ReadSaw(r, "x", "v30:x");  // a write with a larger claimed timestamp
  TxnTraceRecord w = MakeTxn(30, TxnOutcome::kCommitted, 110, 210);
  Wrote(w, "x", "v30:x");
  h.txns = {r, w};
  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(HasViolation(*report, ViolationKind::kFutureRead)) << report->Summary();
}

TEST(AuditVerifierTest, FlagsDirtyRead) {
  History h;
  TxnTraceRecord w = MakeTxn(10, TxnOutcome::kAborted, 100, 200);
  Wrote(w, "x", "v10:x");
  TxnTraceRecord r = MakeTxn(20, TxnOutcome::kCommitted, 210, 300);
  ReadSaw(r, "x", "v10:x");
  h.txns = {w, r};
  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(HasViolation(*report, ViolationKind::kDirtyRead));
}

TEST(AuditVerifierTest, FlagsCorruptRead) {
  History h;
  TxnTraceRecord r = MakeTxn(20, TxnOutcome::kCommitted, 210, 300);
  ReadSaw(r, "x", "out-of-thin-air");
  h.txns = {r};
  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(HasViolation(*report, ViolationKind::kCorruptRead));
}

TEST(AuditVerifierTest, FlagsCycleWithMinimalWitness) {
  // A and B each observe the other's write: wr edges both ways, a cycle no
  // serial order can satisfy.
  History h;
  h.initial = {{"x", "init:x"}, {"y", "init:y"}};
  TxnTraceRecord a = MakeTxn(10, TxnOutcome::kCommitted, 100, 200);
  ReadSaw(a, "x", "v20:x");  // B's write
  Wrote(a, "y", "v10:y");
  TxnTraceRecord b = MakeTxn(20, TxnOutcome::kCommitted, 110, 210);
  ReadSaw(b, "y", "v10:y");  // A's write
  Wrote(b, "x", "v20:x");
  h.txns = {a, b};
  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->serializable);
  ASSERT_TRUE(HasViolation(*report, ViolationKind::kCycle)) << report->Summary();
  for (const Violation& v : report->violations) {
    if (v.kind == ViolationKind::kCycle) {
      EXPECT_EQ(v.cycle.size(), 2u) << v.ToString();  // minimal: two wr edges
    }
  }
}

TEST(AuditVerifierTest, FlagsRealTimeViolation) {
  // ts=20 was acked before ts=10 was even invoked: the claimed order
  // contradicts real time (what a fractured epoch visibility would produce).
  History h;
  h.txns = {MakeTxn(20, TxnOutcome::kCommitted, 100, 200),
            MakeTxn(10, TxnOutcome::kCommitted, 300, 310)};
  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->serializable);
  EXPECT_TRUE(HasViolation(*report, ViolationKind::kRealTime));
  // Overlapping intervals in either order are fine.
  History ok;
  ok.txns = {MakeTxn(20, TxnOutcome::kCommitted, 100, 300),
             MakeTxn(10, TxnOutcome::kCommitted, 200, 400)};
  auto ok_report = VerifyHistory(ok);
  ASSERT_TRUE(ok_report.ok());
  EXPECT_TRUE(ok_report->serializable);
}

TEST(AuditVerifierTest, IndeterminateOutcomeIsAdjudicatedByReaders) {
  // W's commit ack was lost. A committed reader observed its write, so W
  // must have committed (MVTSO cascades make the reader's commit proof).
  History h;
  TxnTraceRecord w = MakeTxn(10, TxnOutcome::kIndeterminate, 100, 200);
  Wrote(w, "x", "v10:x");
  TxnTraceRecord r = MakeTxn(20, TxnOutcome::kCommitted, 210, 300);
  ReadSaw(r, "x", "v10:x");
  h.txns = {w, r};
  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->serializable) << report->Summary();
  EXPECT_EQ(report->inferred_committed, 1u);

  // Unobserved, the same transaction stays excluded — readers seeing the
  // older version are not punished for a write that may never have landed.
  History h2;
  h2.initial = {{"x", "init:x"}};
  TxnTraceRecord w2 = MakeTxn(10, TxnOutcome::kIndeterminate, 100, 200);
  Wrote(w2, "x", "v10:x");
  TxnTraceRecord r2 = MakeTxn(20, TxnOutcome::kCommitted, 210, 300);
  ReadSaw(r2, "x", "init:x");
  h2.txns = {w2, r2};
  auto report2 = VerifyHistory(h2);
  ASSERT_TRUE(report2.ok());
  EXPECT_TRUE(report2->serializable) << report2->Summary();
  EXPECT_EQ(report2->indeterminate, 1u);
}

TEST(AuditVerifierTest, AmbiguousDuplicateWritesAreUnauditable) {
  History h;
  TxnTraceRecord a = MakeTxn(10, TxnOutcome::kCommitted, 100, 200);
  Wrote(a, "x", "same-value");
  TxnTraceRecord b = MakeTxn(20, TxnOutcome::kCommitted, 210, 300);
  Wrote(b, "x", "same-value");
  h.txns = {a, b};
  auto report = VerifyHistory(h);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// --- violation injection (self-test) ----------------------------------------

// A small honest history rich enough for every injection class: a chain of
// committed writers and readers over two keys, plus abort noise.
History RichHonestHistory() {
  History h;
  h.initial = {{"x", "init:x"}, {"y", "init:y"}};
  TxnTraceRecord w1 = MakeTxn(10, TxnOutcome::kCommitted, 100, 200, 0);
  ReadSaw(w1, "x", "init:x");
  Wrote(w1, "x", "v10:x");
  TxnTraceRecord r1 = MakeTxn(20, TxnOutcome::kCommitted, 210, 300, 1);
  ReadSaw(r1, "x", "v10:x");
  ReadSaw(r1, "y", "init:y");
  TxnTraceRecord w2 = MakeTxn(30, TxnOutcome::kCommitted, 310, 400, 0);
  ReadSaw(w2, "x", "v10:x");
  Wrote(w2, "x", "v30:x");
  Wrote(w2, "y", "v30:y");
  TxnTraceRecord r2 = MakeTxn(40, TxnOutcome::kCommitted, 410, 500, 1);
  ReadSaw(r2, "x", "v30:x");
  ReadSaw(r2, "y", "v30:y");
  TxnTraceRecord noise = MakeTxn(35, TxnOutcome::kAborted, 330, 340, 2);
  Wrote(noise, "y", "v35:y");
  h.txns = {w1, r1, w2, r2, noise};
  return h;
}

TEST(AuditInjectionTest, HonestBaselinePasses) {
  History h = RichHonestHistory();
  auto report = VerifyHistory(h);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->serializable) << report->Summary();
}

class AuditInjectionClassTest : public testing::TestWithParam<InjectKind> {};

TEST_P(AuditInjectionClassTest, InjectedViolationIsFlagged) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    History h = RichHonestHistory();
    auto mutation = InjectViolation(h, GetParam(), seed);
    ASSERT_TRUE(mutation.ok()) << mutation.status().ToString();
    auto report = VerifyHistory(h);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report->serializable)
        << "seed " << seed << ": " << *mutation << " slipped through";
    bool expected_kind = false;
    for (ViolationKind kind : ExpectedViolationsFor(GetParam())) {
      expected_kind = expected_kind || HasViolation(*report, kind);
    }
    EXPECT_TRUE(expected_kind) << "seed " << seed << ": " << report->Summary();
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, AuditInjectionClassTest,
                         testing::Values(InjectKind::kDropCommittedWrite,
                                         InjectKind::kSwapReadResults,
                                         InjectKind::kFractureEpoch),
                         [](const testing::TestParamInfo<InjectKind>& info) {
                           return InjectKindName(info.param);
                         });

// --- recorder semantics ------------------------------------------------------

// A store whose first commit attempt aborts: the retry path must record the
// *final* attempt's interval, not the first invocation's — otherwise every
// retried transaction would carry a spuriously wide real-time interval.
class FlakyCommitKv : public TransactionalKv {
 public:
  Timestamp Begin() override { return next_ts_++; }
  StatusOr<std::string> Read(Timestamp, const Key&) override {
    return Status::NotFound("empty store");
  }
  Status Write(Timestamp, const Key&, std::string) override { return Status::Ok(); }
  Status Commit(Timestamp) override {
    if (!failed_once_) {
      failed_once_ = true;
      return Status::Aborted("epoch aborted");
    }
    return Status::Ok();
  }
  void Abort(Timestamp) override {}

 private:
  Timestamp next_ts_ = 1;
  bool failed_once_ = false;
};

TEST(AuditRecorderTest, RetryRecordsFinalAttemptInterval) {
  FlakyCommitKv flaky;
  ClientHistory history(0);
  RecordingKv kv(flaky, history);
  Status st = RunTransaction(kv, [](Txn& txn) -> Status {
    return txn.Write("x", "v" + std::to_string(txn.ts()) + ":x");
  });
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(history.records().size(), 2u);
  const TxnTraceRecord& first = history.records()[0];
  const TxnTraceRecord& final = history.records()[1];
  // The failed attempt's ack never arrived: indeterminate, not committed.
  EXPECT_EQ(first.outcome, TxnOutcome::kIndeterminate);
  EXPECT_EQ(final.outcome, TxnOutcome::kCommitted);
  EXPECT_NE(first.ts, final.ts);
  // The committed record's interval belongs entirely to the final attempt.
  EXPECT_GT(final.invoke_us, first.response_us);
  EXPECT_GE(final.response_us, final.invoke_us);
}

TEST(AuditRecorderTest, OutcomeAccounting) {
  FlakyCommitKv flaky;
  HistoryRecorder recorder(1);
  RecordingKv kv(flaky, recorder.Client(0));
  Timestamp t1 = kv.Begin();
  ASSERT_TRUE(kv.Write(t1, "x", "v1").ok());
  EXPECT_FALSE(kv.Commit(t1).ok());  // first commit fails -> indeterminate
  Timestamp t2 = kv.Begin();
  kv.Abort(t2);  // explicit abort before commit -> definite abort
  Timestamp t3 = kv.Begin();
  ASSERT_TRUE(kv.Commit(t3).ok());

  auto totals = recorder.totals();
  EXPECT_EQ(totals.attempts, 3u);
  EXPECT_EQ(totals.committed, 1u);
  EXPECT_EQ(totals.aborted, 1u);
  EXPECT_EQ(totals.indeterminate, 1u);
}

// --- honest end-to-end runs against the real proxy ---------------------------

struct HonestRunParam {
  uint32_t shards;
  double zipf_theta;
};

class AuditHonestRunTest : public testing::TestWithParam<HonestRunParam> {};

TEST_P(AuditHonestRunTest, PipelinedProxyHistoryAuditsClean) {
  ObladiConfig config = ObladiConfig::ForCapacity(256, /*z=*/4, /*payload=*/128);
  config.num_shards = GetParam().shards;
  config.read_batches_per_epoch = 8;
  config.read_batch_size = 64;
  config.write_batch_size = 160;
  config.batch_interval_us = 300;
  config.timed_mode = true;
  config.pipeline_epochs = true;
  config.recovery.enabled = false;
  config.oram_options.io_threads = 8;

  auto store = std::make_shared<MemoryBucketStore>(
      config.StoreBuckets(), config.MakeLayout().shard_config.slots_per_bucket());
  ObladiStore proxy(config, store, nullptr);

  AuditWorkloadConfig wl_cfg;
  wl_cfg.num_keys = 192;
  wl_cfg.zipf_theta = GetParam().zipf_theta;
  AuditWorkload workload(wl_cfg);
  auto initial = workload.InitialRecords();
  ASSERT_TRUE(proxy.Load(initial).ok());

  HistoryRecorder recorder(8);
  recorder.RecordInitialDb(initial);
  proxy.Start();

  DriverOptions opts;
  opts.num_threads = 8;
  opts.duration_ms = 300;
  opts.warmup_ms = 100;
  opts.recorder = &recorder;
  DriverResult result = RunWorkload(proxy, workload, opts);
  proxy.Stop();

  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.attempts, 0u);
  EXPECT_GT(result.audit_trace_bytes, 0u);

  auto report = VerifyHistory(recorder.Merge());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->serializable) << report->Summary();
  EXPECT_GT(report->committed, 0u);
  EXPECT_GT(report->reads_checked, 0u);

  // The proxy-side abort/retry accounting is populated and consistent.
  ObladiStats stats = proxy.stats();
  EXPECT_GT(stats.txn_begun, 0u);
  EXPECT_GT(stats.txn_committed, 0u);
  EXPECT_EQ(stats.txn_begun, result.attempts);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndSkew, AuditHonestRunTest,
    testing::Values(HonestRunParam{1, 0.0}, HonestRunParam{1, 0.9},
                    HonestRunParam{4, 0.0}, HonestRunParam{4, 0.9}),
    [](const testing::TestParamInfo<HonestRunParam>& info) {
      return "K" + std::to_string(info.param.shards) +
             (info.param.zipf_theta > 0 ? "_zipf" : "_uniform");
    });

}  // namespace
}  // namespace obladi
