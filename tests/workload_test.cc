#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/baseline/nopriv_store.h"
#include "src/common/rng.h"
#include "src/workload/driver.h"
#include "src/workload/freehealth.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"
#include "src/workload/ycsb.h"

namespace obladi {
namespace {

std::unique_ptr<NoPrivStore> LoadedStore(Workload& workload) {
  auto storage = std::make_shared<RemoteKv>(LatencyProfile::Dummy());
  auto store = std::make_unique<NoPrivStore>(storage);
  EXPECT_TRUE(store->Load(workload.InitialRecords()).ok());
  return store;
}

// --- SmallBank ---

TEST(SmallBankTest, LoaderCreatesBothAccounts) {
  SmallBankConfig cfg;
  cfg.num_accounts = 10;
  SmallBankWorkload wl(cfg);
  auto records = wl.InitialRecords();
  EXPECT_EQ(records.size(), 20u);
}

TEST(SmallBankTest, SendPaymentMovesMoney) {
  SmallBankConfig cfg;
  cfg.num_accounts = 4;
  SmallBankWorkload wl(cfg);
  auto store = LoadedStore(wl);
  ASSERT_TRUE(wl.SendPayment(*store, 0, 1, 500).ok());

  auto read_balance = [&](const Key& key) {
    std::string out;
    EXPECT_TRUE(RunTransaction(*store, [&](Txn& txn) -> Status {
                  auto v = txn.Read(key);
                  if (!v.ok()) {
                    return v.status();
                  }
                  out = *v;
                  return Status::Ok();
                }).ok());
    return SmallBankWorkload::DecodeBalance(out);
  };
  EXPECT_EQ(read_balance(SmallBankWorkload::CheckingKey(0)),
            SmallBankWorkload::kInitialBalanceCents - 500);
  EXPECT_EQ(read_balance(SmallBankWorkload::CheckingKey(1)),
            SmallBankWorkload::kInitialBalanceCents + 500);
}

TEST(SmallBankTest, AmalgamateZerosSource) {
  SmallBankConfig cfg;
  cfg.num_accounts = 4;
  SmallBankWorkload wl(cfg);
  auto store = LoadedStore(wl);
  ASSERT_TRUE(wl.Amalgamate(*store, 2, 3).ok());
  auto total = wl.TotalBalance(*store, 4);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 8 * SmallBankWorkload::kInitialBalanceCents);  // conserved
}

// Money conservation under concurrency: the transfer-style transactions
// (SendPayment, Amalgamate) preserve the bank's total balance.
TEST(SmallBankTest, MoneyConservedUnderConcurrentTransfers) {
  SmallBankConfig cfg;
  cfg.num_accounts = 16;
  SmallBankWorkload wl(cfg);
  auto store = LoadedStore(wl);

  std::vector<std::thread> threads;
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&, th] {
      Rng rng(th + 11);
      for (int i = 0; i < 40; ++i) {
        uint64_t a = rng.Uniform(16);
        uint64_t b = (a + 1 + rng.Uniform(15)) % 16;
        if (rng.Bernoulli(0.7)) {
          wl.SendPayment(*store, a, b, rng.UniformInt(1, 500));
        } else {
          wl.Amalgamate(*store, a, b);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  auto total = wl.TotalBalance(*store, 16);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 32 * SmallBankWorkload::kInitialBalanceCents);
}

TEST(SmallBankTest, MixRunsAllTransactionTypes) {
  SmallBankConfig cfg;
  cfg.num_accounts = 32;
  SmallBankWorkload wl(cfg);
  auto store = LoadedStore(wl);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(wl.RunOne(*store, rng).ok());
  }
}

// --- TPC-C ---

TpccConfig TinyTpcc() {
  TpccConfig cfg;
  cfg.num_warehouses = 1;
  cfg.customers_per_district = 30;
  cfg.num_items = 100;
  cfg.initial_orders_per_district = 10;
  cfg.stock_level_orders = 3;
  return cfg;
}

TEST(TpccTest, LoaderProducesAllTables) {
  TpccWorkload wl(TinyTpcc());
  auto records = wl.InitialRecords();
  size_t warehouses = 0, districts = 0, customers = 0, stocks = 0, orders = 0, queues = 0;
  for (const auto& [key, value] : records) {
    if (key.rfind("tpcc:w:", 0) == 0) {
      warehouses++;
    } else if (key.rfind("tpcc:d:", 0) == 0) {
      districts++;
    } else if (key.rfind("tpcc:c:", 0) == 0) {
      customers++;
    } else if (key.rfind("tpcc:s:", 0) == 0) {
      stocks++;
    } else if (key.rfind("tpcc:o:", 0) == 0) {
      orders++;
    } else if (key.rfind("tpcc:noq:", 0) == 0) {
      queues++;
    }
  }
  EXPECT_EQ(warehouses, 1u);
  EXPECT_EQ(districts, 10u);
  EXPECT_EQ(customers, 300u);
  EXPECT_EQ(stocks, 100u);
  EXPECT_EQ(orders, 100u);
  EXPECT_EQ(queues, 10u);
}

TEST(TpccTest, RowCodecsRoundTrip) {
  TpccDistrict d;
  d.tax_bp = 150;
  d.ytd_cents = 123456;
  d.next_o_id = 42;
  auto d2 = TpccDistrict::Decode(d.Encode());
  EXPECT_EQ(d2.tax_bp, 150);
  EXPECT_EQ(d2.next_o_id, 42u);

  TpccCustomer c;
  c.first = "Alice";
  c.last = "BAROUGHTABLE";
  c.balance_cents = -1000;
  auto c2 = TpccCustomer::Decode(c.Encode());
  EXPECT_EQ(c2.first, "Alice");
  EXPECT_EQ(c2.balance_cents, -1000);

  TpccOrderLine l;
  l.item = 7;
  l.quantity = 3;
  l.amount_cents = 999;
  auto l2 = TpccOrderLine::Decode(l.Encode());
  EXPECT_EQ(l2.item, 7u);
  EXPECT_EQ(l2.amount_cents, 999);

  EXPECT_EQ(DecodeIdList(EncodeIdList({1, 2, 3})), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(DecodeIdList("").empty());
}

TEST(TpccTest, LastNameGeneration) {
  EXPECT_EQ(TpccWorkload::LastName(0), "BARBARBAR");
  EXPECT_EQ(TpccWorkload::LastName(371), "PRICALLYOUGHT");
  EXPECT_EQ(TpccWorkload::LastName(999), "EINGEINGEING");
}

TEST(TpccTest, NuRandStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = TpccWorkload::NuRand(rng, 255, 10, 50);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 50u);
  }
}

TEST(TpccTest, NewOrderAdvancesDistrictAndQueue) {
  TpccWorkload wl(TinyTpcc());
  auto store = LoadedStore(wl);
  Rng rng(1);
  ASSERT_TRUE(wl.NewOrder(*store, rng).ok());

  // next_o_id advanced in some district and a new order landed in a queue.
  uint32_t total_next = 0;
  for (uint32_t d = 0; d < 10; ++d) {
    std::string row;
    ASSERT_TRUE(RunTransaction(*store, [&](Txn& txn) -> Status {
                  auto v = txn.Read(TpccWorkload::DistrictKey(0, d));
                  if (!v.ok()) {
                    return v.status();
                  }
                  row = *v;
                  return Status::Ok();
                }).ok());
    total_next += TpccDistrict::Decode(row).next_o_id;
  }
  // 10 districts each started at 10; exactly one new order (or a 1% rollback
  // left it unchanged — the stats tell us which).
  auto stats = wl.stats();
  EXPECT_EQ(total_next, 100 + stats.new_order);
}

TEST(TpccTest, AllTransactionTypesSucceed) {
  TpccWorkload wl(TinyTpcc());
  auto store = LoadedStore(wl);
  Rng rng(2);
  EXPECT_TRUE(wl.NewOrder(*store, rng).ok());
  EXPECT_TRUE(wl.Payment(*store, rng).ok());
  EXPECT_TRUE(wl.OrderStatus(*store, rng).ok());
  EXPECT_TRUE(wl.Delivery(*store, rng).ok());
  EXPECT_TRUE(wl.StockLevel(*store, rng).ok());
  auto stats = wl.stats();
  EXPECT_EQ(stats.payment, 1u);
  EXPECT_EQ(stats.delivery, 1u);
  EXPECT_EQ(stats.stock_level, 1u);
}

TEST(TpccTest, MixedLoadRunsConcurrently) {
  TpccWorkload wl(TinyTpcc());
  auto store = LoadedStore(wl);
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&, th] {
      Rng rng(th + 31);
      for (int i = 0; i < 25; ++i) {
        if (wl.RunOne(*store, rng).ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(committed.load(), 90);  // near-universal success with retries
}

// --- FreeHealth ---

FreeHealthConfig TinyFreeHealth() {
  FreeHealthConfig cfg;
  cfg.num_patients = 50;
  cfg.num_users = 10;
  cfg.num_drugs = 30;
  return cfg;
}

TEST(FreeHealthTest, LoaderBuildsFigure8Schema) {
  FreeHealthWorkload wl(TinyFreeHealth());
  auto records = wl.InitialRecords();
  bool has_patient = false, has_user = false, has_drug = false, has_episode = false,
       has_rx = false, has_pmh = false;
  for (const auto& [key, value] : records) {
    has_patient |= key.rfind("fh:p:", 0) == 0;
    has_user |= key.rfind("fh:u:", 0) == 0;
    has_drug |= key.rfind("fh:drug:", 0) == 0;
    has_episode |= key.rfind("fh:e:", 0) == 0;
    has_rx |= key.rfind("fh:rx:", 0) == 0;
    has_pmh |= key.rfind("fh:pmh:", 0) == 0;
  }
  EXPECT_TRUE(has_patient && has_user && has_drug && has_episode && has_rx && has_pmh);
}

TEST(FreeHealthTest, AllTwentyOneTransactionTypesSucceed) {
  FreeHealthWorkload wl(TinyFreeHealth());
  auto store = LoadedStore(wl);
  Rng rng(9);
  for (int t = 0; t < static_cast<int>(FreeHealthTxn::kNumTxnTypes); ++t) {
    Status st = wl.RunType(static_cast<FreeHealthTxn>(t), *store, rng);
    EXPECT_TRUE(st.ok()) << "transaction type " << t << ": " << st.ToString();
    EXPECT_EQ(wl.CountOf(static_cast<FreeHealthTxn>(t)), 1u) << "type " << t;
  }
}

TEST(FreeHealthTest, CreateEpisodeBumpsCounter) {
  FreeHealthWorkload wl(TinyFreeHealth());
  auto store = LoadedStore(wl);
  Rng rng(12);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(wl.RunType(FreeHealthTxn::kCreateEpisode, *store, rng).ok());
  }
  // Total episode count across patients grew by exactly 5.
  uint32_t total = 0;
  for (uint32_t p = 0; p < 50; ++p) {
    std::string row;
    ASSERT_TRUE(RunTransaction(*store, [&](Txn& txn) -> Status {
                  auto v = txn.Read(FreeHealthWorkload::PatientCountersKey(p));
                  if (!v.ok()) {
                    return v.status();
                  }
                  row = *v;
                  return Status::Ok();
                }).ok());
    total += FhCounters::Decode(row).episodes;
  }
  EXPECT_EQ(total, 50 * 4 + 5);
}

TEST(FreeHealthTest, MixIsReadHeavy) {
  FreeHealthWorkload wl(TinyFreeHealth());
  auto store = LoadedStore(wl);
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(wl.RunOne(*store, rng).ok());
  }
  uint64_t reads = wl.CountOf(FreeHealthTxn::kGetPatient) +
                   wl.CountOf(FreeHealthTxn::kSearchPatientByName) +
                   wl.CountOf(FreeHealthTxn::kGetEpisode) +
                   wl.CountOf(FreeHealthTxn::kListPatientEpisodes) +
                   wl.CountOf(FreeHealthTxn::kGetPrescriptions);
  uint64_t writes = wl.CountOf(FreeHealthTxn::kCreatePatient) +
                    wl.CountOf(FreeHealthTxn::kCreateEpisode) +
                    wl.CountOf(FreeHealthTxn::kAddPmhEntry);
  EXPECT_GT(reads, writes);
}

// --- YCSB & driver ---

TEST(YcsbTest, GeneratorRespectsConfig) {
  YcsbConfig cfg;
  cfg.num_objects = 100;
  cfg.read_fraction = 1.0;
  YcsbGenerator gen(cfg);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(gen.NextKey(rng), 100u);
    EXPECT_TRUE(gen.NextIsRead(rng));
  }
}

TEST(YcsbTest, ZipfianModeSkews) {
  YcsbConfig cfg;
  cfg.num_objects = 1000;
  cfg.zipf_theta = 0.99;
  YcsbGenerator gen(cfg);
  Rng rng(2);
  std::map<BlockId, int> counts;
  for (int i = 0; i < 10000; ++i) {
    counts[gen.NextKey(rng)]++;
  }
  int max_count = 0;
  for (auto& [id, c] : counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, 100);  // a uniform draw would give ~10 per key
}

TEST(DriverTest, RunsYcsbAgainstNoPriv) {
  YcsbConfig cfg;
  cfg.num_objects = 200;
  cfg.ops_per_txn = 2;
  YcsbWorkload wl(cfg);
  auto store = LoadedStore(wl);
  DriverOptions opts;
  opts.num_threads = 4;
  opts.duration_ms = 200;
  opts.warmup_ms = 50;
  DriverResult result = RunWorkload(*store, wl, opts);
  EXPECT_GT(result.committed, 100u);
  EXPECT_GT(result.throughput_tps, 0.0);
  EXPECT_GT(result.mean_latency_us, 0.0);
}

}  // namespace
}  // namespace obladi
