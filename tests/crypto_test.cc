#include <gtest/gtest.h>

#include "src/crypto/chacha20.h"
#include "src/crypto/csprng.h"
#include "src/crypto/encryptor.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"

namespace obladi {
namespace {

std::string HexOf(const uint8_t* data, size_t n) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

// FIPS 180-4 test vectors.
TEST(Sha256Test, EmptyString) {
  auto d = Sha256::Hash(nullptr, 0);
  EXPECT_EQ(HexOf(d.data(), d.size()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  Bytes msg = BytesFromString("abc");
  auto d = Sha256::Hash(msg);
  EXPECT_EQ(HexOf(d.data(), d.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  Bytes msg = BytesFromString("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  auto d = Sha256::Hash(msg);
  EXPECT_EQ(HexOf(d.data(), d.size()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes msg;
  for (int i = 0; i < 1000; ++i) {
    msg.push_back(static_cast<uint8_t>(i * 7));
  }
  Sha256 h;
  h.Update(msg.data(), 100);
  h.Update(msg.data() + 100, 900);
  auto incremental = h.Finalize();
  auto oneshot = Sha256::Hash(msg);
  EXPECT_EQ(incremental, oneshot);
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  auto d = h.Finalize();
  EXPECT_EQ(HexOf(d.data(), d.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = BytesFromString("Hi There");
  auto tag = HmacSha256::Compute(key, msg);
  EXPECT_EQ(HexOf(tag.data(), tag.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  Bytes key = BytesFromString("Jefe");
  Bytes msg = BytesFromString("what do ya want for nothing?");
  auto tag = HmacSha256::Compute(key, msg);
  EXPECT_EQ(HexOf(tag.data(), tag.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xaa key, 0xdd data).
TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  auto tag = HmacSha256::Compute(key, msg);
  EXPECT_EQ(HexOf(tag.data(), tag.size()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes key(131, 0xaa);
  Bytes msg = BytesFromString("Test Using Larger Than Block-Size Key - Hash Key First");
  auto tag = HmacSha256::Compute(key, msg);
  EXPECT_EQ(HexOf(tag.data(), tag.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, ConstantTimeEqual) {
  HmacSha256::Tag a{}, b{};
  EXPECT_TRUE(HmacSha256::Equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(HmacSha256::Equal(a, b));
}

// RFC 7539 §2.4.2 test vector.
TEST(ChaCha20Test, Rfc7539Encryption) {
  uint8_t key[32];
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  uint8_t nonce[12] = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Bytes data(plaintext.begin(), plaintext.end());
  ChaCha20 cipher(key, nonce, /*counter=*/1);
  cipher.Crypt(data.data(), data.size());
  EXPECT_EQ(HexOf(data.data(), 16), "6e2e359a2568f98041ba0728dd0d6981");
  // Decryption = encryption.
  ChaCha20 cipher2(key, nonce, 1);
  cipher2.Crypt(data.data(), data.size());
  EXPECT_EQ(std::string(data.begin(), data.end()), plaintext);
}

TEST(CsprngTest, DeterministicForSameSeed) {
  Csprng a(42), b(42), c(43);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(CsprngTest, UniformBoundRespected) {
  Csprng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(CsprngTest, RandomPermutationIsPermutation) {
  Csprng rng(9);
  auto perm = rng.RandomPermutation(257);
  std::vector<bool> seen(257, false);
  for (uint32_t v : perm) {
    ASSERT_LT(v, 257u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(CsprngTest, PermutationsDiffer) {
  Csprng rng(10);
  EXPECT_NE(rng.RandomPermutation(64), rng.RandomPermutation(64));
}

TEST(EncryptorTest, RoundTrip) {
  Encryptor enc = Encryptor::FromMasterKey(BytesFromString("secret"), false, 1);
  Bytes pt = BytesFromString("hello oblivious world");
  Bytes ct = enc.Encrypt(pt);
  EXPECT_EQ(ct.size(), pt.size() + enc.Overhead());
  auto back = enc.Decrypt(ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

TEST(EncryptorTest, RandomizedEncryption) {
  Encryptor enc = Encryptor::FromMasterKey(BytesFromString("secret"), false, 1);
  Bytes pt(128, 0x42);
  EXPECT_NE(enc.Encrypt(pt), enc.Encrypt(pt));
}

TEST(EncryptorTest, AuthenticatedModeDetectsTampering) {
  Encryptor enc = Encryptor::FromMasterKey(BytesFromString("secret"), true, 1);
  Bytes pt = BytesFromString("patient record");
  Bytes ct = enc.Encrypt(pt);
  ct[enc.Overhead() / 2] ^= 0x01;
  auto back = enc.Decrypt(ct);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kIntegrityViolation);
}

TEST(EncryptorTest, AuthenticatedModeBindsAad) {
  Encryptor enc = Encryptor::FromMasterKey(BytesFromString("secret"), true, 1);
  Bytes pt = BytesFromString("bucket contents");
  Bytes aad1 = BytesFromString("bucket=1,version=7");
  Bytes aad2 = BytesFromString("bucket=1,version=8");
  Bytes ct = enc.Encrypt(pt, aad1);
  EXPECT_TRUE(enc.Decrypt(ct, aad1).ok());
  // Replaying a stale version under a different freshness tag must fail.
  EXPECT_EQ(enc.Decrypt(ct, aad2).status().code(), StatusCode::kIntegrityViolation);
}

TEST(EncryptorTest, UnauthenticatedModeHasNoTag) {
  Encryptor plain = Encryptor::FromMasterKey(BytesFromString("k"), false, 1);
  Encryptor authed = Encryptor::FromMasterKey(BytesFromString("k"), true, 1);
  EXPECT_EQ(plain.Overhead(), Encryptor::kNonceSize);
  EXPECT_EQ(authed.Overhead(), Encryptor::kNonceSize + Encryptor::kTagSize);
}

TEST(EncryptorTest, DecryptRejectsShortCiphertext) {
  Encryptor enc = Encryptor::FromMasterKey(BytesFromString("k"), false, 1);
  EXPECT_FALSE(enc.Decrypt(Bytes(4, 0)).ok());
}

}  // namespace
}  // namespace obladi
