// Observability subsystem: flight-recorder tracer, metrics registry +
// Prometheus/JSON rendering, admin scrape listener (real TCP), and the
// oblivious trace-shape watchdog — unit level plus integration through
// ObladiStore (watchdog silent on uniform/Zipf, fires on injection;
// pipelined run leaves overlapping epoch spans in the trace).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <thread>

#include "src/common/rng.h"
#include "src/net/socket.h"
#include "src/obs/admin_server.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"

namespace obladi {
namespace {

// The tracer is process-global: every test that arms it restores the
// disarmed, empty state on the way out.
struct TracerCleanup {
  ~TracerCleanup() {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
};

TEST(TracerTest, RecordsSpansInstantsAndCounters) {
  TracerCleanup cleanup;
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.Enable();

  { OBS_SPAN("test", "span.plain"); }
  { OBS_SPAN_ARG("test", "span.arg", 42u); }
  tracer.RecordInstant("test", "instant");
  tracer.RecordCounter("test", "counter", 7);

  auto events = tracer.Collect();
  ASSERT_EQ(events.size(), 4u);
  bool saw_arg = false;
  bool saw_instant = false;
  bool saw_counter = false;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "span.arg") {
      saw_arg = true;
      EXPECT_TRUE(ev.has_arg);
      EXPECT_EQ(ev.arg, 42u);
      EXPECT_EQ(ev.kind, ObsEvent::Kind::kSpan);
    }
    if (std::string(ev.name) == "instant") {
      saw_instant = true;
      EXPECT_EQ(ev.kind, ObsEvent::Kind::kInstant);
    }
    if (std::string(ev.name) == "counter") {
      saw_counter = true;
      EXPECT_EQ(ev.kind, ObsEvent::Kind::kCounter);
      EXPECT_EQ(ev.arg, 7u);
    }
  }
  EXPECT_TRUE(saw_arg);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST(TracerTest, DisabledSpansCostNothingAndRecordNothing) {
  TracerCleanup cleanup;
  Tracer& tracer = Tracer::Get();
  tracer.Disable();
  tracer.Clear();

  SpanGuard guard("test", "never");
  EXPECT_FALSE(guard.armed());
  { OBS_SPAN("test", "never2"); }
  tracer.RecordInstant("test", "never3");
  EXPECT_EQ(tracer.CollectedCount(), 0u);
}

TEST(TracerTest, SpanArmedAtConstructionDoesNotResurrect) {
  TracerCleanup cleanup;
  Tracer& tracer = Tracer::Get();
  tracer.Disable();
  tracer.Clear();
  {
    SpanGuard guard("test", "pre-enable");
    tracer.Enable();  // flipped on mid-scope: the span stays dead
  }
  EXPECT_EQ(tracer.CollectedCount(), 0u);
}

TEST(TracerTest, RingWrapsKeepingMostRecent) {
  TracerCleanup cleanup;
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.Disable();
  tracer.Enable(/*ring_capacity=*/16);  // 16 is the enforced minimum

  // All from one fresh thread so a single ring (with the small capacity in
  // force at creation) absorbs all 50 records.
  std::thread([&] {
    for (int i = 0; i < 50; ++i) {
      tracer.RecordCounter("test", "wrap", static_cast<uint64_t>(i));
    }
  }).join();

  auto events = tracer.Collect();
  ASSERT_EQ(events.size(), 16u);
  // Flight-recorder semantics: the survivors are the newest 16 (34..49).
  for (const auto& ev : events) {
    EXPECT_GE(ev.arg, 34u);
  }
}

TEST(TracerTest, ChromeTraceJsonShape) {
  TracerCleanup cleanup;
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.Enable();
  tracer.SetThreadName("obs-test-main");
  { OBS_SPAN_ARG("epoch", "epoch.close", 3u); }
  tracer.RecordCounter("net", "net.rpc_inflight", 5);

  std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch.close\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("obs-test-main"), std::string::npos);
  EXPECT_EQ(json.back(), '}');

  std::string path = ::testing::TempDir() + "obs_trace_shape_test.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::remove(path.c_str());
}

namespace {
std::string ReadFileOrDie(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  std::string body;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, n);
  }
  std::fclose(f);
  return body;
}
}  // namespace

TEST(TracerTest, StreamingOutlivesRingWrapAndSurvivesClear) {
  TracerCleanup cleanup;
  Tracer& tracer = Tracer::Get();
  tracer.Clear();
  tracer.Enable(/*ring_capacity=*/16);
  std::string path = ::testing::TempDir() + "obs_trace_stream_test.json";
  ASSERT_TRUE(tracer.StartStreaming(path).ok());
  EXPECT_TRUE(tracer.streaming());
  // A second start must refuse rather than clobber the live stream.
  EXPECT_FALSE(tracer.StartStreaming(path).ok());

  std::thread([&] {
    for (int i = 0; i < 50; ++i) {
      tracer.RecordCounter("test", "stream.wrap", static_cast<uint64_t>(i));
    }
  }).join();
  tracer.Clear();  // drops the rings, not the stream
  tracer.RecordInstant("test", "stream.after_clear");
  tracer.StopStreaming();
  EXPECT_FALSE(tracer.streaming());
  tracer.StopStreaming();  // idempotent
  // Records after stop go to the rings only.
  tracer.RecordInstant("test", "stream.after_stop");

  std::string body = ReadFileOrDie(path);
  std::remove(path.c_str());
  // The ring kept 16; the stream kept all 50 wrap counters plus the
  // post-Clear instant, and the array is closed for strict parsers.
  size_t wraps = 0;
  for (size_t pos = 0; (pos = body.find("stream.wrap", pos)) != std::string::npos; ++pos) {
    ++wraps;
  }
  EXPECT_EQ(wraps, 50u);
  EXPECT_NE(body.find("\"value\":49"), std::string::npos);
  EXPECT_NE(body.find("stream.after_clear"), std::string::npos);
  EXPECT_EQ(body.find("stream.after_stop"), std::string::npos);
  EXPECT_EQ(body.front(), '[');
  EXPECT_EQ(body[body.size() - 2], ']');  // "...\n]\n"
}

TEST(MetricsTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", {{"op", "read"}}, "requests served").Inc(3);
  registry.GetGauge("queue_depth", {}, "pending requests").Set(2.5);
  Histogram& h = registry.GetHistogram("latency_us", {{"op", "read"}}, "latency");
  h.Record(10);
  h.Record(20);

  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total{op=\"read\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 2.5"), std::string::npos);
  // Registered histograms scrape as native Prometheus histogram families.
  EXPECT_NE(text.find("# TYPE latency_us histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{op=\"read\",le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{op=\"read\",le=\"25\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{op=\"read\",le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_us_sum{op=\"read\"} 30"), std::string::npos);
  EXPECT_NE(text.find("latency_us_count{op=\"read\"} 2"), std::string::npos);
}

TEST(MetricsTest, HistogramFamilyScrapeFormat) {
  // The wire format Prometheus actually parses: every bucket of the fixed
  // bound set appears exactly once, cumulative counts are monotone, the
  // +Inf bucket equals _count, and bounds are shared across families.
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("flush_us", {{"stage", "close"}}, "flush time");
  h.Record(3);       // le=5
  h.Record(40);      // le=50
  h.Record(40);      // le=50
  h.Record(999999);  // le=1000000
  std::string text = registry.PrometheusText();

  const auto& bounds = Histogram::DefaultBucketBounds();
  size_t bucket_lines = 0;
  uint64_t prev = 0;
  for (uint64_t bound : bounds) {
    std::string needle =
        "flush_us_bucket{stage=\"close\",le=\"" + std::to_string(bound) + "\"} ";
    size_t pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos) << "missing bucket le=" << bound;
    uint64_t count = std::stoull(text.substr(pos + needle.size()));
    EXPECT_GE(count, prev) << "cumulative counts must be monotone at le=" << bound;
    prev = count;
    ++bucket_lines;
  }
  EXPECT_EQ(bucket_lines, bounds.size());
  EXPECT_EQ(prev, 4u) << "largest finite bucket must hold every sample";
  EXPECT_NE(text.find("flush_us_bucket{stage=\"close\",le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("flush_us_sum{stage=\"close\"} 1000082"), std::string::npos);
  EXPECT_NE(text.find("flush_us_count{stage=\"close\"} 4"), std::string::npos);
  // Spot-check the cumulative semantics at interior bounds.
  EXPECT_NE(text.find("le=\"5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"50\"} 3"), std::string::npos);
  EXPECT_NE(text.find("le=\"500000\"} 3"), std::string::npos);
  EXPECT_NE(text.find("le=\"1000000\"} 4"), std::string::npos);

  // The JSON rendering carries the same buckets.
  std::string json = registry.JsonLines();
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[{\"le\":1,\"count\":0}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":50,\"count\":3}"), std::string::npos);
}

TEST(MetricsTest, InstrumentsAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("c", {{"k", "v"}});
  Counter& b = registry.GetCounter("c", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  Counter& other = registry.GetCounter("c", {{"k", "w"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsTest, SourcesSnapshotIntoScrape) {
  MetricsRegistry registry;
  uint64_t epochs = 17;
  registry.AddSource([&](MetricsSink& sink) {
    sink.Counter("obladi_epochs_total", {}, epochs, "epochs closed");
    sink.Gauge("obladi_live", {{"role", "proxy"}}, 1.0, "liveness");
  });
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("obladi_epochs_total 17"), std::string::npos);
  EXPECT_NE(text.find("obladi_live{role=\"proxy\"} 1"), std::string::npos);

  epochs = 18;
  EXPECT_NE(registry.PrometheusText().find("obladi_epochs_total 18"), std::string::npos);
}

TEST(MetricsTest, JsonLinesOnePerMetric) {
  MetricsRegistry registry;
  registry.GetCounter("a_total", {}, "a").Inc();
  registry.GetHistogram("b_us", {}, "b").Record(5);
  std::string lines = registry.JsonLines();
  // Every non-empty line is a JSON object naming its metric.
  size_t count = 0;
  size_t pos = 0;
  while (pos < lines.size()) {
    size_t end = lines.find('\n', pos);
    std::string line = lines.substr(pos, end - pos);
    if (!line.empty()) {
      EXPECT_EQ(line.front(), '{');
      EXPECT_EQ(line.back(), '}');
      EXPECT_NE(line.find("\"metric\""), std::string::npos);
      ++count;
    }
    pos = end == std::string::npos ? lines.size() : end + 1;
  }
  EXPECT_EQ(count, 2u);
}

// Minimal HTTP/1.0 GET against the admin listener over a real socket.
std::string HttpGet(uint16_t port, const std::string& path) {
  auto sock = TcpSocket::Connect("127.0.0.1", port);
  if (!sock.ok()) {
    return "";
  }
  std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!sock->SendAll(reinterpret_cast<const uint8_t*>(req.data()), req.size()).ok()) {
    return "";
  }
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(sock->fd(), buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

TEST(AdminServerTest, ServesMetricsHealthAndCustomHandlers) {
  MetricsRegistry registry;
  registry.GetCounter("scraped_total", {}, "scrapes").Inc(9);

  AdminServer server({}, &registry);
  server.AddHandler("/trace", "application/json", [] { return std::string("{\"traceEvents\": []}\n"); });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("scraped_total 9"), std::string::npos);

  std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("ok"), std::string::npos);

  std::string trace = HttpGet(server.port(), "/trace");
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);

  std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

WatchdogSpec TwoShardSpec() {
  WatchdogSpec spec;
  spec.num_shards = 2;
  spec.read_quota = 4;
  spec.batches_per_epoch = 3;
  spec.write_quota = 4;
  spec.wire_byte_tolerance = 0;  // byte band exercised separately
  return spec;
}

void FeedCleanEpoch(TraceShapeWatchdog& dog, const WatchdogSpec& spec) {
  for (size_t b = 0; b < spec.batches_per_epoch; ++b) {
    for (uint32_t s = 0; s < spec.num_shards; ++s) {
      dog.ObserveShardBatch(s, spec.read_quota);
    }
  }
  for (uint32_t s = 0; s < spec.num_shards; ++s) {
    dog.ObserveShardAdvance(s, spec.write_quota);
  }
  dog.ObserveEpochClose();
}

TEST(WatchdogTest, SilentOnExactShape) {
  WatchdogSpec spec = TwoShardSpec();
  TraceShapeWatchdog dog(spec);
  for (int e = 0; e < 5; ++e) {
    FeedCleanEpoch(dog, spec);
  }
  EXPECT_EQ(dog.violations(), 0u);
  EXPECT_EQ(dog.epochs_checked(), 5u);
}

TEST(WatchdogTest, FiresOnShortSubBatch) {
  WatchdogSpec spec = TwoShardSpec();
  TraceShapeWatchdog dog(spec);
  std::string seen;
  dog.SetOnViolation([&](const std::string& msg) { seen = msg; });
  dog.ObserveShardBatch(0, spec.read_quota - 1);  // under-padded
  EXPECT_EQ(dog.violations(), 1u);
  EXPECT_NE(seen.find("padded shape requires exactly"), std::string::npos);
}

TEST(WatchdogTest, FiresOnMissingSubBatchAtEpochClose) {
  WatchdogSpec spec = TwoShardSpec();
  TraceShapeWatchdog dog(spec);
  // Shard 1 runs one sub-batch short.
  for (size_t b = 0; b < spec.batches_per_epoch; ++b) {
    dog.ObserveShardBatch(0, spec.read_quota);
  }
  for (size_t b = 0; b + 1 < spec.batches_per_epoch; ++b) {
    dog.ObserveShardBatch(1, spec.read_quota);
  }
  for (uint32_t s = 0; s < spec.num_shards; ++s) {
    dog.ObserveShardAdvance(s, spec.write_quota);
  }
  dog.ObserveEpochClose();
  EXPECT_EQ(dog.violations(), 1u);
  ASSERT_FALSE(dog.recent_violations().empty());
  EXPECT_NE(dog.recent_violations().back().find("shard 1"), std::string::npos);
}

TEST(WatchdogTest, FiresOnWriteQuotaMismatch) {
  WatchdogSpec spec = TwoShardSpec();
  TraceShapeWatchdog dog(spec);
  for (size_t b = 0; b < spec.batches_per_epoch; ++b) {
    for (uint32_t s = 0; s < spec.num_shards; ++s) {
      dog.ObserveShardBatch(s, spec.read_quota);
    }
  }
  dog.ObserveShardAdvance(0, spec.write_quota);
  dog.ObserveShardAdvance(1, spec.write_quota + 1);  // over-advanced
  dog.ObserveEpochClose();
  EXPECT_EQ(dog.violations(), 1u);
}

TEST(WatchdogTest, WireByteBandFiresOutsideToleranceOnly) {
  WatchdogSpec spec;
  spec.num_shards = 1;
  spec.read_quota = 0;  // shape checks off; bytes only
  spec.write_quota = 0;
  spec.batches_per_epoch = 0;
  spec.wire_byte_tolerance = 0.25;
  spec.byte_warmup_epochs = 0;
  TraceShapeWatchdog dog(spec);
  uint64_t sent = 0;
  dog.SetWireByteSource([&] { return std::make_pair(sent, sent); });

  sent = 1000;  // seed sample
  dog.ObserveEpochClose();
  sent = 2000;  // reference delta = 1000
  dog.ObserveEpochClose();
  sent = 3100;  // delta 1100, inside +-25%
  dog.ObserveEpochClose();
  EXPECT_EQ(dog.violations(), 0u);
  sent = 4700;  // delta 1600, outside the band in both directions
  dog.ObserveEpochClose();
  EXPECT_EQ(dog.violations(), 2u);
  ASSERT_FALSE(dog.recent_violations().empty());
  EXPECT_NE(dog.recent_violations().back().find("wire bytes"), std::string::npos);
}

TEST(WatchdogTest, ResetEpochForgivesRecoveryTraffic) {
  WatchdogSpec spec = TwoShardSpec();
  spec.wire_byte_tolerance = 0.25;
  spec.byte_warmup_epochs = 0;
  TraceShapeWatchdog dog(spec);
  uint64_t sent = 0;
  dog.SetWireByteSource([&] { return std::make_pair(sent, sent); });

  FeedCleanEpoch(dog, spec);  // seed
  sent += 1000;
  FeedCleanEpoch(dog, spec);  // reference
  // Mid-epoch crash: partial tallies + a storm of recovery bytes.
  dog.ObserveShardBatch(0, spec.read_quota);
  sent += 50000;
  dog.ResetEpoch();
  // Next full epoch re-seeds the byte sample instead of flagging the storm.
  sent += 1000;
  FeedCleanEpoch(dog, spec);
  sent += 1000;
  FeedCleanEpoch(dog, spec);
  EXPECT_EQ(dog.violations(), 0u);
}

// --- integration through ObladiStore ---------------------------------------

struct ProxyEnv {
  ObladiConfig config;
  std::shared_ptr<MemoryBucketStore> store;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<ObladiStore> proxy;
};

ProxyEnv MakeObsProxy(uint32_t shards, bool trace, bool watchdog, bool metrics) {
  ProxyEnv env;
  env.config = ObladiConfig::ForCapacity(256, /*z=*/4, /*payload=*/128);
  env.config.num_shards = shards;
  env.config.read_batches_per_epoch = 2;
  env.config.read_batch_size = 8;
  env.config.write_batch_size = 8;
  env.config.recovery.enabled = false;
  env.config.oram_options.io_threads = 4;
  env.config.obs.trace = trace;
  env.config.obs.watchdog = watchdog;
  env.config.obs.metrics = metrics;
  env.store = std::make_shared<MemoryBucketStore>(env.config.oram.num_buckets(),
                                                  env.config.oram.slots_per_bucket());
  env.log = std::make_shared<MemoryLogStore>();
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  return env;
}

std::vector<std::pair<Key, std::string>> SimpleRecords(int n) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  return records;
}

// Drive `txns` single-read transactions through manually paced epochs,
// drawing keys from `next_key`.
void DriveWorkload(ObladiStore& proxy, int txns, const std::function<uint64_t()>& next_key) {
  for (int i = 0; i < txns; ++i) {
    Timestamp t = proxy.Begin();
    std::string key = "key" + std::to_string(next_key());
    std::promise<void> read_done;
    std::thread client([&] {
      auto v = proxy.Read(t, key);
      if (v.ok()) {
        (void)proxy.Write(t, key, *v + "x");
        (void)proxy.Commit(t);
      } else {
        proxy.Abort(t);
      }
      read_done.set_value();
    });
    // Pace until the read lands (one step serves the whole batch).
    auto fut = read_done.get_future();
    while (fut.wait_for(std::chrono::milliseconds(2)) != std::future_status::ready) {
      Status st = proxy.StepReadBatch();
      if (!st.ok()) {
        ASSERT_TRUE(proxy.FinishEpochNow().ok());
      }
    }
    client.join();
    ASSERT_TRUE(proxy.FinishEpochNow().ok());
  }
}

TEST(ObladiStoreObsTest, WatchdogSilentOnUniformAndZipfWorkloads) {
  TracerCleanup cleanup;
  auto env = MakeObsProxy(/*shards=*/4, /*trace=*/false, /*watchdog=*/true,
                          /*metrics=*/true);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(64)).ok());
  ASSERT_NE(env.proxy->watchdog(), nullptr);

  Rng rng(123);
  DriveWorkload(*env.proxy, 6, [&] { return rng.Uniform(64); });

  ZipfianGenerator zipf(64, 0.99);
  Rng zrng(321);
  DriveWorkload(*env.proxy, 6, [&] { return zipf.NextScrambled(zrng); });

  // Quota padding makes the observable shape workload independent: zero
  // violations across both distributions, and every epoch was audited.
  EXPECT_EQ(env.proxy->watchdog()->violations(), 0u);
  EXPECT_GE(env.proxy->watchdog()->epochs_checked(), 12u);

  // The scrape surfaces the verdict.
  ASSERT_NE(env.proxy->metrics(), nullptr);
  std::string text = env.proxy->metrics()->PrometheusText();
  EXPECT_NE(text.find("obs_watchdog_violations_total 0"), std::string::npos);
  EXPECT_NE(text.find("obladi_epochs_total"), std::string::npos);
  EXPECT_NE(text.find("oram_xor_path_reads_total"), std::string::npos);
}

TEST(ObladiStoreObsTest, WatchdogCatchesInjectedQuotaViolation) {
  TracerCleanup cleanup;
  auto env = MakeObsProxy(/*shards=*/2, /*trace=*/false, /*watchdog=*/true,
                          /*metrics=*/false);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(32)).ok());

  Rng rng(7);
  DriveWorkload(*env.proxy, 3, [&] { return rng.Uniform(32); });
  ASSERT_EQ(env.proxy->watchdog()->violations(), 0u);

  std::atomic<int> fired{0};
  env.proxy->watchdog()->SetOnViolation([&](const std::string&) { fired.fetch_add(1); });

  // Inject a shard batch that dodges the padded quota — exactly what a
  // regression in the padding planner (or a compromised coordinator) would
  // emit. The watchdog flags it at observation time.
  size_t quota = env.config.read_quota();
  env.proxy->watchdog()->ObserveShardBatch(0, quota - 1);
  EXPECT_EQ(env.proxy->watchdog()->violations(), 1u);
  EXPECT_EQ(fired.load(), 1);
  ASSERT_FALSE(env.proxy->watchdog()->recent_violations().empty());

  // Recover the tally so the teardown epoch does not double-report.
  env.proxy->watchdog()->ResetEpoch();
}

TEST(ObladiStoreObsTest, PipelinedRunLeavesOverlappingEpochSpans) {
  TracerCleanup cleanup;
  auto env = MakeObsProxy(/*shards=*/4, /*trace=*/true, /*watchdog=*/false,
                          /*metrics=*/false);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(48)).ok());
  ASSERT_TRUE(Tracer::Get().enabled());

  // Park epoch N's retirement while epoch N+1 executes a read batch: the
  // trace must show the retire span enclosing the next epoch's read span.
  std::promise<void> release;
  std::shared_future<void> release_fut = release.get_future().share();
  std::atomic<int> hook_calls{0};
  env.proxy->SetRetireHookForTest([&] {
    if (hook_calls.fetch_add(1) == 0) {
      release_fut.wait();
    }
  });

  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::promise<void> read_done;
  std::thread reader([&] {
    Timestamp t = env.proxy->Begin();
    auto v = env.proxy->Read(t, "key3");
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    env.proxy->Abort(t);
    read_done.set_value();
  });
  auto fut = read_done.get_future();
  while (fut.wait_for(std::chrono::milliseconds(2)) != std::future_status::ready) {
    (void)env.proxy->StepReadBatch();
  }
  reader.join();
  release.set_value();
  ASSERT_TRUE(env.proxy->DrainRetirement().ok());
  ASSERT_TRUE(env.proxy->FinishEpochNow().ok());

  auto events = Tracer::Get().Collect();
  const ObsEvent* retire = nullptr;
  std::vector<const ObsEvent*> reads;
  for (const auto& ev : events) {
    std::string name = ev.name;
    if (name == "epoch.retire" && (retire == nullptr || ev.dur_ns > retire->dur_ns)) {
      retire = &ev;
    }
    if (name == "epoch.read_batch") {
      reads.push_back(&ev);
    }
  }
  ASSERT_NE(retire, nullptr) << "no retire span recorded";
  ASSERT_FALSE(reads.empty()) << "no read batch spans recorded";
  bool overlapped = false;
  for (const ObsEvent* r : reads) {
    if (r->ts_ns >= retire->ts_ns && r->ts_ns < retire->ts_ns + retire->dur_ns) {
      overlapped = true;
    }
  }
  EXPECT_TRUE(overlapped)
      << "no read batch span started inside the parked retire span";

  // The same overlap must survive the Perfetto export.
  std::string path = ::testing::TempDir() + "obs_overlap_trace.json";
  ASSERT_TRUE(Tracer::Get().WriteChromeTrace(path).ok());
  std::remove(path.c_str());
}

TEST(ObladiStoreObsTest, TraceStreamPathCapturesWorkloadSpans) {
  TracerCleanup cleanup;
  std::string path = ::testing::TempDir() + "obs_proxy_stream.json";
  auto env = MakeObsProxy(/*shards=*/1, /*trace=*/true, /*watchdog=*/false,
                          /*metrics=*/false);
  env.config.obs.trace_stream_path = path;
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(16)).ok());

  Rng rng(7);
  DriveWorkload(*env.proxy, 4, [&] { return rng.Uniform(16); });
  env.proxy.reset();  // teardown closes the stream

  EXPECT_FALSE(Tracer::Get().streaming());
  std::string body = ReadFileOrDie(path);
  std::remove(path.c_str());
  EXPECT_NE(body.find("epoch.close"), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(body.front(), '[');
  EXPECT_EQ(body[body.size() - 2], ']');
}

TEST(ObladiStoreObsTest, ConcurrentScrapesRaceFreeWithLiveTraffic) {
  // TSan target: stats()/PrometheusText()/watchdog counters hammered from
  // scrape threads while epochs execute, close, and retire.
  TracerCleanup cleanup;
  auto env = MakeObsProxy(/*shards=*/2, /*trace=*/true, /*watchdog=*/true,
                          /*metrics=*/true);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(32)).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 3; ++i) {
    scrapers.emplace_back([&, i] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (i == 0) {
          std::string text = env.proxy->metrics()->PrometheusText();
          EXPECT_FALSE(text.empty());
        } else if (i == 1) {
          ObladiStats s = env.proxy->stats();
          (void)s;
          (void)Tracer::Get().CollectedCount();
        } else {
          (void)env.proxy->watchdog()->violations();
          (void)env.proxy->metrics()->JsonLines();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  Rng rng(99);
  DriveWorkload(*env.proxy, 8, [&] { return rng.Uniform(32); });

  stop.store(true);
  for (auto& t : scrapers) {
    t.join();
  }
  EXPECT_EQ(env.proxy->watchdog()->violations(), 0u);
}

}  // namespace
}  // namespace obladi
