// Tests for the Appendix A trusted-counter hardening and the Appendix B
// ideal-functionality simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/crypto/encryptor.h"
#include "src/oram/ring_oram.h"
#include "src/oram/simulator.h"
#include "src/recovery/recovery_unit.h"
#include "src/storage/memory_store.h"
#include "src/storage/trusted_counter.h"

namespace obladi {
namespace {

TEST(TrustedCounterTest, MemoryCounterIsMonotonic) {
  MemoryTrustedCounter counter;
  EXPECT_EQ(*counter.Read(), 0u);
  ASSERT_TRUE(counter.Advance(5).ok());
  ASSERT_TRUE(counter.Advance(3).ok());  // lower values ignored
  EXPECT_EQ(*counter.Read(), 5u);
}

TEST(TrustedCounterTest, FileCounterSurvivesReopen) {
  std::string path = testing::TempDir() + "/obladi_counter_test.bin";
  std::remove(path.c_str());
  {
    FileTrustedCounter counter(path);
    ASSERT_TRUE(counter.Advance(42).ok());
  }
  FileTrustedCounter counter(path);
  EXPECT_EQ(*counter.Read(), 42u);
  std::remove(path.c_str());
}

struct RecoverySetup {
  RingOramConfig config = RingOramConfig::ForCapacity(64, 4, 32);
  std::shared_ptr<MemoryBucketStore> store;
  std::shared_ptr<Encryptor> encryptor;
  std::shared_ptr<MemoryLogStore> log;
  std::shared_ptr<MemoryTrustedCounter> counter;
  std::unique_ptr<RingOram> oram;
  std::unique_ptr<RecoveryUnit> recovery;
};

RecoverySetup MakeDurableOram(bool authenticated) {
  RecoverySetup s;
  s.config.authenticated = authenticated;
  RingOramOptions options;
  options.io_threads = 4;
  s.store = std::make_shared<MemoryBucketStore>(s.config.num_buckets(),
                                                s.config.slots_per_bucket());
  s.encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("k"), authenticated, 11));
  s.log = std::make_shared<MemoryLogStore>();
  s.counter = std::make_shared<MemoryTrustedCounter>();
  s.oram = std::make_unique<RingOram>(s.config, options, s.store, s.encryptor, 11);
  EXPECT_TRUE(s.oram->Initialize(std::vector<Bytes>(64)).ok());
  RecoveryConfig rcfg;
  rcfg.full_checkpoint_interval = 100;
  rcfg.posmap_delta_pad_entries = 8;
  s.recovery = std::make_unique<RecoveryUnit>(rcfg, s.log, s.encryptor);
  s.recovery->SetTrustedCounter(s.counter);
  EXPECT_TRUE(s.recovery->LogFullCheckpoint(*s.oram).ok());
  return s;
}

TEST(TrustedCounterTest, RolledBackLogIsRejected) {
  auto s = MakeDurableOram(/*authenticated=*/true);
  s.oram->SetBatchPlannedHook(
      [&](const BatchPlan& plan) { return s.recovery->LogReadBatchPlan(plan); });
  ASSERT_TRUE(s.oram->ReadBatch({1, 2}).ok());
  ASSERT_TRUE(s.oram->FinishEpoch().ok());
  ASSERT_TRUE(s.recovery->LogEpochCommit(*s.oram).ok());

  // A malicious server serves a stale prefix of the log (drops the tail).
  auto all = s.log->ReadAll();
  ASSERT_TRUE(all.ok());
  auto tampered = std::make_shared<MemoryLogStore>();
  for (size_t i = 0; i + 1 < all->size(); ++i) {
    ASSERT_TRUE(tampered->Append((*all)[i]).ok());
  }
  RecoveryConfig rcfg;
  rcfg.posmap_delta_pad_entries = 8;
  RecoveryUnit fresh(rcfg, tampered, s.encryptor);
  fresh.SetTrustedCounter(s.counter);
  auto recovered = fresh.Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kIntegrityViolation);
}

TEST(TrustedCounterTest, IntactLogRecoversWithCounter) {
  auto s = MakeDurableOram(true);
  ASSERT_TRUE(s.oram->ReadBatch({3}).ok());
  ASSERT_TRUE(s.oram->FinishEpoch().ok());
  ASSERT_TRUE(s.recovery->LogEpochCommit(*s.oram).ok());

  RecoveryConfig rcfg;
  rcfg.posmap_delta_pad_entries = 8;
  RecoveryUnit fresh(rcfg, s.log, s.encryptor);
  fresh.SetTrustedCounter(s.counter);
  auto recovered = fresh.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->has_state);
}

TEST(TrustedCounterTest, SwappedRecordsFailAuthentication) {
  auto s = MakeDurableOram(true);
  s.oram->SetBatchPlannedHook(
      [&](const BatchPlan& plan) { return s.recovery->LogReadBatchPlan(plan); });
  ASSERT_TRUE(s.oram->ReadBatch({1}).ok());
  ASSERT_TRUE(s.oram->ReadBatch({2}).ok());

  // Swap the two plan records' ciphertexts but keep the (plaintext) sequence
  // headers in order: the AAD binding must catch it.
  auto all = s.log->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_GE(all->size(), 3u);
  auto tampered = std::make_shared<MemoryLogStore>();
  std::vector<Bytes> records = *all;
  // Records: [full checkpoint, plan seq1, plan seq2]. Graft seq2's ciphertext
  // onto seq1's header.
  Bytes r1 = records[1];
  Bytes r2 = records[2];
  Bytes hybrid(r1.begin(), r1.begin() + 9);  // type + seq of record 1
  hybrid.insert(hybrid.end(), r2.begin() + 9, r2.end());  // ciphertext of record 2
  ASSERT_TRUE(tampered->Append(records[0]).ok());
  ASSERT_TRUE(tampered->Append(hybrid).ok());
  RecoveryConfig rcfg;
  rcfg.posmap_delta_pad_entries = 8;
  RecoveryUnit fresh(rcfg, tampered, s.encryptor);
  auto recovered = fresh.Recover();
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kIntegrityViolation);
}

// ---------------------------------------------------------------------------
// Appendix B simulator
// ---------------------------------------------------------------------------

TEST(SimulatorTest, EvictionScheduleMatchesRealOram) {
  RingOramConfig config = RingOramConfig::ForCapacity(128, 4, 32);
  IdealTraceSimulator sim(config, 1);
  SimulatedEpoch epoch = sim.SimulateEpoch(/*read_batches=*/3, /*read_batch_size=*/5,
                                           /*write_batch_size=*/4, 0, 0);
  // 3*5 + 4 = 19 accesses, A=3 => 6 evictions, at the deterministic leaves.
  EXPECT_EQ(epoch.access_count_after, 19u);
  EXPECT_EQ(epoch.evict_count_after, 6u);
  ASSERT_EQ(epoch.eviction_leaves.size(), 6u);
  for (size_t g = 0; g < 6; ++g) {
    EXPECT_EQ(epoch.eviction_leaves[g], EvictionLeaf(g, config.num_levels));
  }
}

TEST(SimulatorTest, RealTraceIsStatisticallyIndistinguishableFromIdeal) {
  // Run the real ORAM under a *skewed* workload and compare its observable
  // leaf distribution with the workload-oblivious simulator's.
  RingOramConfig config = RingOramConfig::ForCapacity(256, 4, 32);
  RingOramOptions options;
  options.parallel = true;
  options.defer_writes = true;
  options.io_threads = 4;
  auto store = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                   config.slots_per_bucket());
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("k"), false, 21));
  RingOram oram(config, options, store, encryptor, 21);
  ASSERT_TRUE(oram.Initialize(std::vector<Bytes>(256)).ok());

  std::vector<uint64_t> real_counts(config.num_leaves(), 0);
  oram.SetBatchPlannedHook([&](const BatchPlan& plan) {
    for (const auto& req : plan.requests) {
      real_counts[req.leaf]++;
    }
    return Status::Ok();
  });

  const size_t kEpochs = 1500;
  Rng rng(17);
  for (size_t e = 0; e < kEpochs; ++e) {
    std::vector<BlockId> ids;
    while (ids.size() < 5) {
      // 80% hot traffic on 6 blocks.
      BlockId id = rng.Bernoulli(0.8) ? rng.Uniform(6) : rng.Uniform(256);
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    ASSERT_TRUE(oram.ReadBatch(ids).ok());
    ASSERT_TRUE(oram.FinishEpoch().ok());
  }

  IdealTraceSimulator sim(config, 99);
  std::vector<uint64_t> ideal_counts = sim.LeafHistogram(kEpochs, 1, 5, 0);

  double chi2 = ChiSquareDistance(real_counts, ideal_counts);
  double dof = config.num_leaves() - 1;
  EXPECT_LT(chi2, dof + 6 * std::sqrt(2 * dof))
      << "real trace distinguishable from the ideal simulator's";
}

// ---------------------------------------------------------------------------
// XOR path reads fail closed under tampering
// ---------------------------------------------------------------------------

// Forwards everything to the base store but corrupts XOR read replies on
// demand: a malicious server flipping one bit in the XORed body or in any
// returned tag.
class XorTamperStore : public BucketStore {
 public:
  enum class Mode { kNone, kFlipBody, kFlipTag };

  explicit XorTamperStore(std::shared_ptr<BucketStore> base) : base_(std::move(base)) {}

  void set_mode(Mode m) { mode_.store(m, std::memory_order_relaxed); }

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override {
    return base_->ReadSlot(bucket, version, slot);
  }
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override {
    return base_->WriteBucket(bucket, version, std::move(slots));
  }
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override {
    return base_->TruncateBucket(bucket, keep_from_version);
  }
  size_t num_buckets() const override { return base_->num_buckets(); }

  std::vector<StatusOr<PathXorResult>> ReadPathsXor(const std::vector<PathSlots>& paths,
                                                    uint32_t header_bytes,
                                                    uint32_t trailer_bytes) override {
    auto out = base_->ReadPathsXor(paths, header_bytes, trailer_bytes);
    Mode m = mode_.load(std::memory_order_relaxed);
    for (auto& result : out) {
      if (!result.ok()) {
        continue;
      }
      if (m == Mode::kFlipBody && !result->body_xor.empty()) {
        result->body_xor[0] ^= 0x01;
      } else if (m == Mode::kFlipTag && !result->headers.empty()) {
        // Last header byte = final byte of the last slot's tag.
        result->headers.back() ^= 0x01;
      }
    }
    return out;
  }

 private:
  std::shared_ptr<BucketStore> base_;
  std::atomic<Mode> mode_{Mode::kNone};
};

struct XorTamperEnv {
  RingOramConfig config;
  std::shared_ptr<XorTamperStore> store;
  std::unique_ptr<RingOram> oram;
};

XorTamperEnv MakeXorOram(bool authenticated) {
  XorTamperEnv env;
  env.config = RingOramConfig::ForCapacity(64, 4, 32);
  env.config.authenticated = authenticated;
  env.store = std::make_shared<XorTamperStore>(std::make_shared<MemoryBucketStore>(
      env.config.num_buckets(), env.config.slots_per_bucket()));
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("tamper"), authenticated, 5));
  RingOramOptions opts;
  opts.parallel = true;
  opts.defer_writes = true;
  opts.io_threads = 4;
  env.oram = std::make_unique<RingOram>(env.config, opts, env.store, encryptor, 5);
  return env;
}

TEST(XorReadTamperTest, FlippedBodyIsDetectedInAuthenticatedMode) {
  auto env = MakeXorOram(/*authenticated=*/true);
  ASSERT_TRUE(env.oram->Initialize(std::vector<Bytes>(64, Bytes(32, 0xab))).ok());
  ASSERT_TRUE(env.oram->ReadBatch({3}).ok());
  env.store->set_mode(XorTamperStore::Mode::kFlipBody);
  auto tampered = env.oram->ReadBatch({17});
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kIntegrityViolation);
}

TEST(XorReadTamperTest, FlippedTagIsDetectedInAuthenticatedMode) {
  auto env = MakeXorOram(/*authenticated=*/true);
  ASSERT_TRUE(env.oram->Initialize(std::vector<Bytes>(64, Bytes(32, 0xcd))).ok());
  env.store->set_mode(XorTamperStore::Mode::kFlipTag);
  auto tampered = env.oram->ReadBatch({9});
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kIntegrityViolation);
}

TEST(XorReadTamperTest, PlainModeDetectsTheseTampers) {
  // Without MACs there is no general integrity (that is what authenticated
  // mode is for — payload-region corruption can pass silently on either
  // read path), but the reconstruction still cross-checks what it can: a
  // tampered body surfaces as a nonzero residue on an all-dummy path, and
  // as a decoded-id mismatch when it hits the id region of a real read.
  auto env = MakeXorOram(/*authenticated=*/false);
  ASSERT_TRUE(env.oram->Initialize(std::vector<Bytes>(64, Bytes(32, 0xef))).ok());
  env.store->set_mode(XorTamperStore::Mode::kFlipBody);
  auto dummy_path = env.oram->ReadBatch({kInvalidBlockId});
  ASSERT_FALSE(dummy_path.ok());
  EXPECT_EQ(dummy_path.status().code(), StatusCode::kIntegrityViolation);

  auto fresh = MakeXorOram(/*authenticated=*/false);
  ASSERT_TRUE(fresh.oram->Initialize(std::vector<Bytes>(64, Bytes(32, 0xef))).ok());
  fresh.store->set_mode(XorTamperStore::Mode::kFlipBody);
  auto real_read = fresh.oram->ReadBatch({21});
  ASSERT_FALSE(real_read.ok());
  EXPECT_EQ(real_read.status().code(), StatusCode::kIntegrityViolation);
}

}  // namespace
}  // namespace obladi
