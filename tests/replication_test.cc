// Replicated store tier: conformance at R in {1,2,3}, quorum semantics,
// automatic failover/demotion, and epoch-replay catch-up — all over memory
// stores so every replica's state can be inspected directly. The remote
// (wire) variant, including failover racing the circuit breaker's half-open
// probe, lives in net_test.cc.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/fault/faulty_store.h"
#include "src/net/replicated_store.h"
#include "src/storage/memory_store.h"
#include "tests/store_conformance.h"

namespace obladi {
namespace {

constexpr size_t kBuckets = 16;
constexpr size_t kSlots = 4;

std::vector<Bytes> Image(uint8_t fill) {
  return std::vector<Bytes>(kSlots, Bytes(16, fill));
}

std::vector<std::shared_ptr<BucketStore>> MemoryReplicas(uint32_t r) {
  std::vector<std::shared_ptr<BucketStore>> out;
  for (uint32_t i = 0; i < r; ++i) {
    out.push_back(std::make_shared<MemoryBucketStore>(kBuckets, kSlots));
  }
  return out;
}

// Parks a thread at a closed gate and reports it parked; shared by the
// wrappers below that hold one operation's wire phase open mid-flight.
class Gate {
 public:
  void Close() {
    std::lock_guard<std::mutex> lk(mu_);
    open_ = false;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void AwaitParked() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return parked_ > 0; });
  }
  void Pass() {
    std::unique_lock<std::mutex> lk(mu_);
    parked_++;
    cv_.notify_all();
    cv_.wait(lk, [this] { return open_; });
    parked_--;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = true;
  int parked_ = 0;
};

// Delegating bucket store whose writes park at the gate: lets a test hold a
// replicated write's wire phase open while heal/observer paths run.
class GatedBucketStore : public BucketStore {
 public:
  explicit GatedBucketStore(std::shared_ptr<BucketStore> base) : base_(std::move(base)) {}
  Gate& gate() { return gate_; }

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override {
    return base_->ReadSlot(bucket, version, slot);
  }
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override {
    gate_.Pass();
    return base_->WriteBucket(bucket, version, std::move(slots));
  }
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override {
    return base_->TruncateBucket(bucket, keep_from_version);
  }
  size_t num_buckets() const override { return base_->num_buckets(); }

 private:
  std::shared_ptr<BucketStore> base_;
  Gate gate_;
};

// Delegating log store whose appends park at the gate.
class GatedLogStore : public LogStore {
 public:
  explicit GatedLogStore(std::shared_ptr<LogStore> base) : base_(std::move(base)) {}
  Gate& gate() { return gate_; }

  StatusOr<uint64_t> Append(Bytes record) override {
    gate_.Pass();
    return base_->Append(std::move(record));
  }
  Status Sync() override { return base_->Sync(); }
  StatusOr<std::vector<Bytes>> ReadAll() override { return base_->ReadAll(); }
  Status Truncate(uint64_t upto_lsn) override { return base_->Truncate(upto_lsn); }
  uint64_t NextLsn() const override { return base_->NextLsn(); }

 private:
  std::shared_ptr<LogStore> base_;
  Gate gate_;
};

// Delegating bucket store that rejects every truncate with a semantic error
// — stands in for a replica with nothing truncatable (e.g. zero buckets),
// which a mutating reachability probe could never promote.
class TruncateRejectingStore : public BucketStore {
 public:
  explicit TruncateRejectingStore(std::shared_ptr<BucketStore> base)
      : base_(std::move(base)) {}

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override {
    return base_->ReadSlot(bucket, version, slot);
  }
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override {
    return base_->WriteBucket(bucket, version, std::move(slots));
  }
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override {
    (void)bucket;
    (void)keep_from_version;
    return Status::InvalidArgument("store holds no truncatable state");
  }
  size_t num_buckets() const override { return base_->num_buckets(); }

 private:
  std::shared_ptr<BucketStore> base_;
};

std::vector<std::shared_ptr<LogStore>> MemoryLogReplicas(uint32_t r) {
  std::vector<std::shared_ptr<LogStore>> out;
  for (uint32_t i = 0; i < r; ++i) {
    out.push_back(std::make_shared<MemoryLogStore>());
  }
  return out;
}

TEST(ReplicatedBucketStoreConformance, SingleReplica) {
  ReplicatedBucketStore store(MemoryReplicas(1));
  RunBucketStoreConformance(store, kSlots);
}

TEST(ReplicatedBucketStoreConformance, TwoReplicasFullQuorum) {
  ReplicatedStoreOptions opts;
  opts.write_quorum = 2;
  ReplicatedBucketStore store(MemoryReplicas(2), opts);
  RunBucketStoreConformance(store, kSlots);
  // A healthy run demotes nobody: semantic errors (missing versions, bad
  // slots) must not shrink the replica set.
  ReplicationStats stats = store.replication_stats();
  EXPECT_EQ(stats.failovers, 0u);
  for (const ReplicaInfo& r : stats.replicas) {
    EXPECT_EQ(r.health, ReplicaHealth::kCurrent);
  }
}

TEST(ReplicatedBucketStoreConformance, ThreeReplicasMajorityQuorum) {
  ReplicatedStoreOptions opts;
  opts.write_quorum = 2;
  ReplicatedBucketStore store(MemoryReplicas(3), opts);
  RunBucketStoreConformance(store, kSlots);
}

// R=3 / quorum=2 with a hard-down minority replica: the suite must pass
// unchanged — the faulty replica is demoted on first contact and the
// majority carries every operation.
TEST(ReplicatedBucketStoreConformance, FaultyMinorityReplica) {
  auto replicas = MemoryReplicas(3);
  FaultPlan down;
  down.unavailable_every_n = 1;
  replicas[2] = std::make_shared<FaultyBucketStore>(replicas[2], down);
  ReplicatedStoreOptions opts;
  opts.write_quorum = 2;
  ReplicatedBucketStore store(replicas, opts);
  RunBucketStoreConformance(store, kSlots);
  ReplicationStats stats = store.replication_stats();
  EXPECT_EQ(stats.replicas[2].health, ReplicaHealth::kLagging);
  EXPECT_EQ(stats.replicas[0].health, ReplicaHealth::kCurrent);
  EXPECT_EQ(stats.replicas[1].health, ReplicaHealth::kCurrent);
}

TEST(ReplicatedLogStoreConformance, VariousReplicaCounts) {
  for (uint32_t r : {1u, 2u, 3u}) {
    SCOPED_TRACE(r);
    ReplicatedStoreOptions opts;
    opts.write_quorum = r;
    ReplicatedLogStore log(MemoryLogReplicas(r), opts);
    RunLogStoreConformance(log);
    ReplicationStats stats = log.replication_stats();
    for (const ReplicaInfo& info : stats.replicas) {
      EXPECT_EQ(info.health, ReplicaHealth::kCurrent);
    }
  }
}

// Read failover: the primary starts failing retriably, reads move to the
// follower without surfacing an error, and the demoted primary is healed
// back by epoch replay once it recovers.
TEST(ReplicatedBucketStore, ReadFailoverThenResync) {
  auto base0 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto base1 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto faulty0 = std::make_shared<FaultyBucketStore>(base0);
  ReplicatedStoreOptions opts;
  opts.write_quorum = 1;
  ReplicatedBucketStore store({faulty0, base1}, opts);

  ASSERT_TRUE(store.WriteBucket(3, 7, Image(0xAB)).ok());
  EXPECT_EQ(store.PrimaryIndexForTest(), 0);

  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty0->SetPlan(down);
  auto slot = store.ReadSlot(3, 7, 0);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_EQ((*slot)[0], 0xAB);
  EXPECT_EQ(store.PrimaryIndexForTest(), 1);
  ReplicationStats stats = store.replication_stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.replicas[0].health, ReplicaHealth::kLagging);

  // Writes while replica 0 is down accumulate its catch-up obligation.
  ASSERT_TRUE(store.WriteBucket(4, 9, Image(0xCD)).ok());
  ASSERT_TRUE(store.TruncateBucket(3, 7).ok());
  store.NoteEpochRetired(5);

  faulty0->SetPlan(FaultPlan{});
  ASSERT_TRUE(store.TryHealReplicas().ok());
  stats = store.replication_stats();
  EXPECT_EQ(stats.replicas[0].health, ReplicaHealth::kCurrent);
  EXPECT_GE(stats.resyncs, 1u);
  EXPECT_GE(stats.resync_epochs, 1u);

  // The healed replica holds exactly the live state (epoch replay, not op
  // shipping): the missed write landed, direct from the base store.
  auto healed = base0->ReadSlot(4, 9, 0);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ((*healed)[0], 0xCD);
}

// A write that cannot reach quorum fails the call (and demotes the broken
// replica) instead of acking below the caller's durability requirement.
TEST(ReplicatedBucketStore, WriteQuorumNotReachedFails) {
  auto base0 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto base1 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto faulty1 = std::make_shared<FaultyBucketStore>(base1);
  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty1->SetPlan(down);
  ReplicatedStoreOptions opts;
  opts.write_quorum = 2;
  ReplicatedBucketStore store({base0, faulty1}, opts);

  Status st = store.WriteBucket(0, 0, Image(0x11));
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(IsReplicaRetryable(st)) << st.ToString();
  EXPECT_EQ(store.replication_stats().replicas[1].health, ReplicaHealth::kLagging);

  // Quorum 1 over the same topology succeeds: the surviving replica acks.
  ReplicatedStoreOptions relaxed;
  relaxed.write_quorum = 1;
  ReplicatedBucketStore store1({base0, faulty1}, relaxed);
  EXPECT_TRUE(store1.WriteBucket(0, 0, Image(0x11)).ok());
}

// The last current replica is never demoted on the bucket tier — bucket
// state is idempotent, so it keeps serving and errors simply propagate.
TEST(ReplicatedBucketStore, LastReplicaKeepsServing) {
  auto base = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto faulty = std::make_shared<FaultyBucketStore>(base);
  ReplicatedBucketStore store({std::static_pointer_cast<BucketStore>(faulty)});
  ASSERT_TRUE(store.WriteBucket(1, 1, Image(0x22)).ok());

  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty->SetPlan(down);
  EXPECT_FALSE(store.ReadSlot(1, 1, 0).ok());
  EXPECT_EQ(store.PrimaryIndexForTest(), 0);

  faulty->SetPlan(FaultPlan{});
  auto slot = store.ReadSlot(1, 1, 0);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ((*slot)[0], 0x22);
}

// Lag accounting: a demoted replica's lag grows with each retired epoch and
// resync_epochs credits the replay that cleared it.
TEST(ReplicatedBucketStore, LagEpochsTrackRetirement) {
  auto base0 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto base1 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto faulty0 = std::make_shared<FaultyBucketStore>(base0);
  ReplicatedBucketStore store({faulty0, base1});
  store.NoteEpochRetired(10);

  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty0->SetPlan(down);
  ASSERT_TRUE(store.ReadSlotsBatch({{0, 0, 0}}).size() == 1);  // demotes 0
  ASSERT_EQ(store.replication_stats().replicas[0].health, ReplicaHealth::kLagging);

  store.NoteEpochRetired(13);
  ReplicationStats stats = store.replication_stats();
  EXPECT_EQ(stats.replicas[0].lag_epochs, 3u);

  faulty0->SetPlan(FaultPlan{});
  ASSERT_TRUE(store.TryHealReplicas().ok());
  stats = store.replication_stats();
  EXPECT_EQ(stats.replicas[0].lag_epochs, 0u);
  EXPECT_GE(stats.resync_epochs, 3u);
}

// WAL ambiguous-append catch-up, case 1: the in-doubt record never landed.
// The NextLsn probe sees the replica exactly at the in-doubt LSN, clears the
// ambiguity, and replay reissues the record.
TEST(ReplicatedLogStore, AmbiguousAppendReplayed) {
  auto base0 = std::make_shared<MemoryLogStore>();
  auto base1 = std::make_shared<MemoryLogStore>();
  auto faulty1 = std::make_shared<FaultyLogStore>(base1);
  ReplicatedLogStore log({std::static_pointer_cast<LogStore>(base0), faulty1});

  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty1->SetPlan(down);
  auto lsn = log.Append(BytesFromString("in-doubt"));
  ASSERT_TRUE(lsn.ok());  // quorum 1: the healthy replica acked
  EXPECT_EQ(*lsn, 0u);
  EXPECT_EQ(log.replication_stats().replicas[1].health, ReplicaHealth::kLagging);

  auto lsn2 = log.Append(BytesFromString("next"));
  ASSERT_TRUE(lsn2.ok());
  EXPECT_EQ(*lsn2, 1u);

  faulty1->SetPlan(FaultPlan{});
  ASSERT_TRUE(log.TryHealReplicas().ok());
  EXPECT_EQ(log.replication_stats().replicas[1].health, ReplicaHealth::kCurrent);
  auto replayed = base1->ReadAll();
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 2u);
  EXPECT_EQ(StringFromBytes((*replayed)[0]), "in-doubt");
  EXPECT_EQ(StringFromBytes((*replayed)[1]), "next");
}

// Case 2: the in-doubt record DID land (the failure hit the ack, not the
// write). The probe sees the replica past the in-doubt LSN and advances the
// cursor without re-appending — at-most-once is preserved.
TEST(ReplicatedLogStore, AmbiguousAppendNotDuplicated) {
  auto base0 = std::make_shared<MemoryLogStore>();
  auto base1 = std::make_shared<MemoryLogStore>();
  auto faulty1 = std::make_shared<FaultyLogStore>(base1);
  ReplicatedLogStore log({std::static_pointer_cast<LogStore>(base0), faulty1});

  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty1->SetPlan(down);
  auto lsn = log.Append(BytesFromString("landed"));
  ASSERT_TRUE(lsn.ok());
  // Simulate "the record reached the replica but the ack was lost".
  ASSERT_TRUE(base1->Append(BytesFromString("landed")).ok());

  faulty1->SetPlan(FaultPlan{});
  ASSERT_TRUE(log.TryHealReplicas().ok());
  EXPECT_EQ(log.replication_stats().replicas[1].health, ReplicaHealth::kCurrent);
  auto records = base1->ReadAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);  // probe prevented the duplicate
}

// A replica whose LSN sequence diverged from the acknowledged history (it
// lost data) is marked dead, never silently resynced.
TEST(ReplicatedLogStore, DivergentReplicaMarkedDead) {
  auto base0 = std::make_shared<MemoryLogStore>();
  auto base1 = std::make_shared<MemoryLogStore>();
  ReplicatedLogStore log(
      {std::static_pointer_cast<LogStore>(base0), std::static_pointer_cast<LogStore>(base1)});
  ASSERT_TRUE(log.Append(BytesFromString("rec0")).ok());

  // base1 grows a record the replicated log never assigned: its next LSN no
  // longer matches the acknowledged sequence.
  ASSERT_TRUE(base1->Append(BytesFromString("phantom")).ok());
  auto lsn = log.Append(BytesFromString("rec1"));
  ASSERT_TRUE(lsn.ok());  // quorum 1 via the consistent replica

  ReplicationStats stats = log.replication_stats();
  EXPECT_EQ(stats.replicas[1].health, ReplicaHealth::kDead);
  // Heal passes do not resurrect dead replicas.
  ASSERT_TRUE(log.TryHealReplicas().ok());
  EXPECT_EQ(log.replication_stats().replicas[1].health, ReplicaHealth::kDead);
}

// Log read failover mirrors the bucket tier: ReadAll moves to a follower
// when the primary fails retriably.
TEST(ReplicatedLogStore, ReadAllFailsOver) {
  auto base0 = std::make_shared<MemoryLogStore>();
  auto base1 = std::make_shared<MemoryLogStore>();
  auto faulty0 = std::make_shared<FaultyLogStore>(base0);
  ReplicatedLogStore log({faulty0, std::static_pointer_cast<LogStore>(base1)});
  ASSERT_TRUE(log.Append(BytesFromString("rec0")).ok());
  ASSERT_TRUE(log.Sync().ok());

  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty0->SetPlan(down);
  auto all = log.ReadAll();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ(StringFromBytes((*all)[0]), "rec0");
}

// Generation bumps on every topology change so watchdog byte-sources can
// re-reference their baselines across demote/promote cycles.
TEST(ReplicatedBucketStore, GenerationTracksTopologyChanges) {
  auto base0 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto base1 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto faulty0 = std::make_shared<FaultyBucketStore>(base0);
  ReplicatedBucketStore store({faulty0, base1});
  const uint64_t g0 = store.replication_stats().generation;

  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty0->SetPlan(down);
  (void)store.ReadSlot(0, 0, 0);
  const uint64_t g1 = store.replication_stats().generation;
  EXPECT_GT(g1, g0);

  faulty0->SetPlan(FaultPlan{});
  ASSERT_TRUE(store.TryHealReplicas().ok());
  EXPECT_GT(store.replication_stats().generation, g1);
}

// Regression (heal/write race): a heal pass overlapping a write's wire
// phase must not promote the healing replica past that write. Dirty marks
// land only after the replica stores have the data, so promotion has to
// wait out writes in flight — the failure mode was a promoted replica
// silently missing an acknowledged version (NotFound after the next
// failover).
TEST(ReplicatedBucketStore, HealDoesNotPromotePastInFlightWrite) {
  auto base0 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto base1 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto gated0 = std::make_shared<GatedBucketStore>(base0);
  auto faulty1 = std::make_shared<FaultyBucketStore>(base1);
  ReplicatedStoreOptions opts;
  opts.write_quorum = 1;
  ReplicatedBucketStore store({gated0, faulty1}, opts);

  ASSERT_TRUE(store.WriteBucket(2, 1, Image(0x01)).ok());

  // Replica 1 misses v2 of bucket 2 and is demoted with that bucket dirty.
  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty1->SetPlan(down);
  ASSERT_TRUE(store.WriteBucket(2, 2, Image(0x02)).ok());
  faulty1->SetPlan(FaultPlan{});
  ASSERT_EQ(store.replication_stats().replicas[1].health, ReplicaHealth::kLagging);

  // Hold v3's wire phase open on the primary while a heal pass replays the
  // stale dirty set and reaches its promotion decision.
  gated0->gate().Close();
  std::thread writer([&] { EXPECT_TRUE(store.WriteBucket(2, 3, Image(0x03)).ok()); });
  gated0->gate().AwaitParked();
  std::thread healer([&] { EXPECT_TRUE(store.TryHealReplicas().ok()); });
  // Widen the race window; correctness must not depend on this sleep — the
  // in-flight write is registered before its wire phase starts, so the heal
  // pass can never observe a promotable state mid-write.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gated0->gate().Open();
  writer.join();
  healer.join();

  ReplicationStats stats = store.replication_stats();
  ASSERT_EQ(stats.replicas[1].health, ReplicaHealth::kCurrent);
  // The promoted replica must hold the acknowledged v3, whichever way the
  // interleaving resolved.
  auto healed = base1->ReadSlot(2, 3, 0);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ((*healed)[0], 0x03);
}

// Regression: the pre-promotion reachability probe is a READ. A mutating
// probe appended a truncate record to file-backed replicas on every
// promotion attempt and failed outright on a replica with no truncatable
// state, leaving it permanently lagging.
TEST(ReplicatedBucketStore, PromotionProbeIsARead) {
  auto base0 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto base1 = std::make_shared<MemoryBucketStore>(kBuckets, kSlots);
  auto reject0 = std::make_shared<TruncateRejectingStore>(base0);
  auto faulty0 = std::make_shared<FaultyBucketStore>(reject0);
  ReplicatedBucketStore store({faulty0, base1});

  // Demote the primary on a read failure: it lags with an EMPTY dirty set,
  // so heal goes straight to the reachability probe.
  FaultPlan down;
  down.unavailable_every_n = 1;
  faulty0->SetPlan(down);
  (void)store.ReadSlot(0, 0, 0);
  ASSERT_EQ(store.replication_stats().replicas[0].health, ReplicaHealth::kLagging);

  faulty0->SetPlan(FaultPlan{});
  // Nothing was ever written: the probe must also cope with a store holding
  // no live version (NotFound is still the replica speaking).
  ASSERT_TRUE(store.TryHealReplicas().ok());
  EXPECT_EQ(store.replication_stats().replicas[0].health, ReplicaHealth::kCurrent);
}

// Regression: the WAL's wire phase must not hold the bookkeeping lock —
// NextLsn() and replication_stats() answer while an append is stuck on a
// slow replica (previously they blocked for up to the transport deadline,
// hiding replica health exactly when it mattered). A hang here IS the
// failure: the test deadlocks against its timeout.
TEST(ReplicatedLogStore, ObserversNotBlockedByInFlightAppend) {
  auto base0 = std::make_shared<MemoryLogStore>();
  auto gated0 = std::make_shared<GatedLogStore>(base0);
  ReplicatedLogStore log({std::static_pointer_cast<LogStore>(gated0)});
  ASSERT_TRUE(log.Append(BytesFromString("first")).ok());

  gated0->gate().Close();
  std::thread appender([&] { EXPECT_TRUE(log.Append(BytesFromString("second")).ok()); });
  gated0->gate().AwaitParked();
  EXPECT_EQ(log.NextLsn(), 2u);  // the in-flight record's LSN is assigned
  ReplicationStats stats = log.replication_stats();
  ASSERT_EQ(stats.replicas.size(), 1u);
  EXPECT_EQ(stats.replicas[0].health, ReplicaHealth::kCurrent);
  gated0->gate().Open();
  appender.join();
  EXPECT_EQ(log.NextLsn(), 2u);
}

}  // namespace
}  // namespace obladi
