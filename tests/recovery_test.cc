#include <gtest/gtest.h>

#include <thread>

#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"
#include "tests/paced_proxy.h"

namespace obladi {
namespace {

struct RecoveryEnv {
  ObladiConfig config;
  std::shared_ptr<MemoryBucketStore> store;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<ObladiStore> proxy;
};

RecoveryEnv MakeEnv(uint64_t capacity = 128) {
  RecoveryEnv env;
  env.config = ObladiConfig::ForCapacity(capacity, /*z=*/4, /*payload=*/128);
  env.config.read_batches_per_epoch = 2;
  env.config.read_batch_size = 6;
  env.config.write_batch_size = 6;
  env.config.recovery.enabled = true;
  env.config.recovery.full_checkpoint_interval = 3;
  env.config.oram_options.io_threads = 4;
  env.store = std::make_shared<MemoryBucketStore>(env.config.oram.num_buckets(),
                                                  env.config.oram.slots_per_bucket());
  env.log = std::make_shared<MemoryLogStore>();
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  return env;
}

std::vector<std::pair<Key, std::string>> SimpleRecords(int n) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  return records;
}

TEST(RecoveryTest, CommittedDataSurvivesCrash) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());
  CommitWrite(*env.proxy, "key9", "before-crash");

  env.proxy->SimulateCrash();
  RecoveryBreakdown breakdown;
  ASSERT_TRUE(env.proxy->RecoverFromCrash(&breakdown).ok());
  EXPECT_GT(breakdown.log_records, 0u);

  EXPECT_EQ(ReadCommitted(*env.proxy, "key9"), "before-crash");
  EXPECT_EQ(ReadCommitted(*env.proxy, "key3"), "value3");
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
}

TEST(RecoveryTest, UncommittedEpochIsRolledBack) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());
  CommitWrite(*env.proxy, "key5", "committed-version");

  // Start a write in a fresh epoch but crash before the epoch ends: the
  // client never learns a commit decision, so the write must vanish.
  Timestamp t = env.proxy->Begin();
  ASSERT_TRUE(env.proxy->Write(t, "key5", "doomed").ok());
  ASSERT_TRUE(env.proxy->Write(t, "key6", "also-doomed").ok());

  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());

  EXPECT_EQ(ReadCommitted(*env.proxy, "key5"), "committed-version");
  EXPECT_EQ(ReadCommitted(*env.proxy, "key6"), "value6");
}

TEST(RecoveryTest, CrashAfterDispatchedBatchesReplaysLoggedPaths) {
  auto env = MakeEnv();
  // Tracing must be part of the configuration so the recovered ORAM instance
  // records its replay too.
  env.config.oram_options.enable_trace = true;
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());

  // Issue reads that get batched, dispatch one batch, then crash. The logged
  // batch must be replayed: the same (bucket, version, slot) trace repeats.
  Timestamp t = env.proxy->Begin();
  std::thread reader([&] { (void)env.proxy->Read(t, "key11"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  env.proxy->oram()->trace().Clear();
  ASSERT_TRUE(env.proxy->StepReadBatch().ok());
  auto pre_crash_trace = env.proxy->oram()->trace().Take();
  ASSERT_FALSE(pre_crash_trace.empty());
  reader.join();

  env.proxy->SimulateCrash();
  RecoveryBreakdown breakdown;
  ASSERT_TRUE(env.proxy->RecoverFromCrash(&breakdown).ok());
  EXPECT_EQ(breakdown.replayed_batches, 1u);

  // The replayed prefix of the recovery trace must exactly match the
  // pre-crash physical reads (§8: the adversary sees the same paths again).
  auto replay_trace = env.proxy->oram()->trace().Take();
  ASSERT_GE(replay_trace.size(), pre_crash_trace.size());
  for (size_t i = 0; i < pre_crash_trace.size(); ++i) {
    if (pre_crash_trace[i].type != PhysicalOpType::kReadSlot) {
      continue;
    }
    EXPECT_EQ(replay_trace[i], pre_crash_trace[i]) << "replay diverged at op " << i;
  }
  env.proxy->oram()->trace().Disable();

  EXPECT_EQ(ReadCommitted(*env.proxy, "key11"), "value11");
}

TEST(RecoveryTest, RepeatedCrashesAndRecoveries) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());

  for (int round = 0; round < 5; ++round) {
    std::string value = "round-" + std::to_string(round);
    CommitWrite(*env.proxy, "key" + std::to_string(round), value);
    env.proxy->SimulateCrash();
    ASSERT_TRUE(env.proxy->RecoverFromCrash().ok()) << "round " << round;
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(round)), value);
  }
  // Everything committed in any round is still there.
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(round)),
              "round-" + std::to_string(round));
  }
  EXPECT_EQ(env.proxy->stats().recoveries, 5u);
}

TEST(RecoveryTest, FullCheckpointsTruncateTheLog) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(20)).ok());
  // Run enough epochs to cross several full-checkpoint intervals.
  for (int i = 0; i < 10; ++i) {
    CommitWrite(*env.proxy, "key1", "v" + std::to_string(i));
  }
  auto records = env.log->ReadAll();
  ASSERT_TRUE(records.ok());
  // Without truncation we would have >= 10 epochs * (plans + delta) records.
  EXPECT_LT(records->size(), 40u);
  // And recovery still works from the truncated log.
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  EXPECT_EQ(ReadCommitted(*env.proxy, "key1"), "v9");
}

TEST(RecoveryTest, InFlightClientsSeeAbortOnCrash) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(20)).ok());

  Timestamp t = env.proxy->Begin();
  std::atomic<bool> observed_abort{false};
  std::thread reader([&] {
    auto v = env.proxy->Read(t, "key1");
    if (!v.ok() && v.status().code() == StatusCode::kAborted) {
      observed_abort.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  env.proxy->SimulateCrash();
  reader.join();
  EXPECT_TRUE(observed_abort.load());
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  EXPECT_EQ(ReadCommitted(*env.proxy, "key1"), "value1");
}

TEST(RecoveryTest, KeyDirectorySurvivesCrash) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(10)).ok());
  CommitWrite(*env.proxy, "brand-new-key", "created-after-load");
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  EXPECT_EQ(ReadCommitted(*env.proxy, "brand-new-key"), "created-after-load");
}

TEST(RecoveryTest, CrashDuringRetirementRecoversLastDurableEpoch) {
  // The pipelined window the ordering rule exists for: epoch N has closed
  // and is retiring (write-back submitted, checkpoint captured but NOT yet
  // appended) while epoch N+1 is already executing and trying to dispatch
  // batches. Killing the proxy here must (a) fail N's commit waiters, (b)
  // keep N+1's records out of the log, and (c) recover to the last durable
  // epoch, replaying exactly N's logged read batches. At depth > 1 the
  // ordering gate admits N+1's plans while N retires, so pin depth 1: this
  // test encodes the single-epoch replay window.
  auto env = MakeEnv();
  env.config.pipeline_depth = 1;
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());
  CommitWrite(*env.proxy, "key1", "durable-A");

  std::promise<void> hook_entered;
  std::promise<void> release;
  std::shared_future<void> release_fut = release.get_future().share();
  std::atomic<int> hook_calls{0};
  env.proxy->SetRetireHookForTest([&] {
    if (hook_calls.fetch_add(1) == 0) {
      hook_entered.set_value();
      release_fut.wait();
    }
  });

  // Epoch N: a client writes key1 and waits for the (never-arriving)
  // decision.
  std::atomic<bool> writer_done{false};
  Status writer_status;
  std::thread writer([&] {
    Timestamp t = env.proxy->Begin();
    ASSERT_TRUE(env.proxy->Write(t, "key1", "doomed-B").ok());
    writer_status = env.proxy->Commit(t);
    writer_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());
  hook_entered.get_future().wait();  // epoch N parked before checkpoint append
  EXPECT_FALSE(writer_done.load()) << "decision released before the epoch was durable";

  // Epoch N+1 dispatches: the recovery unit's ordering gate holds its plan
  // record out of the log while N's checkpoint is pending, so the dispatch
  // blocks and then fails with the crash.
  Status dispatch_status;
  std::thread dispatcher([&] { dispatch_status = env.proxy->StepReadBatch(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread crasher([&] { env.proxy->SimulateCrash(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // abandon flag set
  release.set_value();
  crasher.join();
  dispatcher.join();
  writer.join();
  EXPECT_FALSE(dispatch_status.ok()) << "epoch N+1's dispatch survived the crash";
  EXPECT_FALSE(writer_status.ok()) << "epoch N's commit decision survived the crash";

  RecoveryBreakdown breakdown;
  ASSERT_TRUE(env.proxy->RecoverFromCrash(&breakdown).ok());
  // Exactly epoch N's batches replay (read_batches_per_epoch on one shard);
  // epoch N+1 contributed nothing to the log.
  EXPECT_EQ(breakdown.replayed_batches, env.config.read_batches_per_epoch);

  // Epoch N was not durable: its write rolls back to the last committed
  // value, and everything older is intact.
  EXPECT_EQ(ReadCommitted(*env.proxy, "key1"), "durable-A");
  EXPECT_EQ(ReadCommitted(*env.proxy, "key5"), "value5");
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());

  // The recovered proxy pipelines again: a fresh write commits and survives
  // a second (clean) crash.
  CommitWrite(*env.proxy, "key1", "durable-C");
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  EXPECT_EQ(ReadCommitted(*env.proxy, "key1"), "durable-C");
}

TEST(RecoveryTest, CrashAfterRetirementDurableKeepsEpoch) {
  // Complement of the above: once DrainRetirement returns, the epoch's
  // checkpoint is in the log and a crash immediately afterwards loses
  // nothing.
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(20)).ok());

  std::thread writer([&] {
    Timestamp t = env.proxy->Begin();
    ASSERT_TRUE(env.proxy->Write(t, "key3", "retired-durably").ok());
    EXPECT_TRUE(env.proxy->Commit(t).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(env.proxy->CloseEpochNow().ok());
  ASSERT_TRUE(env.proxy->DrainRetirement().ok());
  writer.join();

  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  EXPECT_EQ(ReadCommitted(*env.proxy, "key3"), "retired-durably");
}

TEST(RecoveryTest, RecoveryWithoutLogFailsCleanly) {
  ObladiConfig config = ObladiConfig::ForCapacity(32, 4, 64);
  config.recovery.enabled = false;
  auto store = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                   config.oram.slots_per_bucket());
  ObladiStore proxy(config, store, nullptr);
  EXPECT_EQ(proxy.RecoverFromCrash().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, StashSurvivesCrash) {
  // Force blocks into the stash (writes stay stash-resident until evicted to
  // a fitting bucket), then crash and verify values come back from the
  // checkpointed stash.
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(60)).ok());
  for (int i = 0; i < 6; ++i) {
    CommitWrite(*env.proxy, "key" + std::to_string(20 + i), "stashed-" + std::to_string(i));
  }
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(20 + i)),
              "stashed-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace obladi
