#include <gtest/gtest.h>

#include <thread>

#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"
#include "tests/paced_proxy.h"

namespace obladi {
namespace {

struct RecoveryEnv {
  ObladiConfig config;
  std::shared_ptr<MemoryBucketStore> store;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<ObladiStore> proxy;
};

RecoveryEnv MakeEnv(uint64_t capacity = 128) {
  RecoveryEnv env;
  env.config = ObladiConfig::ForCapacity(capacity, /*z=*/4, /*payload=*/128);
  env.config.read_batches_per_epoch = 2;
  env.config.read_batch_size = 6;
  env.config.write_batch_size = 6;
  env.config.recovery.enabled = true;
  env.config.recovery.full_checkpoint_interval = 3;
  env.config.oram_options.io_threads = 4;
  env.store = std::make_shared<MemoryBucketStore>(env.config.oram.num_buckets(),
                                                  env.config.oram.slots_per_bucket());
  env.log = std::make_shared<MemoryLogStore>();
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  return env;
}

std::vector<std::pair<Key, std::string>> SimpleRecords(int n) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  return records;
}

TEST(RecoveryTest, CommittedDataSurvivesCrash) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());
  CommitWrite(*env.proxy, "key9", "before-crash");

  env.proxy->SimulateCrash();
  RecoveryBreakdown breakdown;
  ASSERT_TRUE(env.proxy->RecoverFromCrash(&breakdown).ok());
  EXPECT_GT(breakdown.log_records, 0u);

  EXPECT_EQ(ReadCommitted(*env.proxy, "key9"), "before-crash");
  EXPECT_EQ(ReadCommitted(*env.proxy, "key3"), "value3");
  EXPECT_TRUE(env.proxy->oram()->CheckInvariants().ok());
}

TEST(RecoveryTest, UncommittedEpochIsRolledBack) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());
  CommitWrite(*env.proxy, "key5", "committed-version");

  // Start a write in a fresh epoch but crash before the epoch ends: the
  // client never learns a commit decision, so the write must vanish.
  Timestamp t = env.proxy->Begin();
  ASSERT_TRUE(env.proxy->Write(t, "key5", "doomed").ok());
  ASSERT_TRUE(env.proxy->Write(t, "key6", "also-doomed").ok());

  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());

  EXPECT_EQ(ReadCommitted(*env.proxy, "key5"), "committed-version");
  EXPECT_EQ(ReadCommitted(*env.proxy, "key6"), "value6");
}

TEST(RecoveryTest, CrashAfterDispatchedBatchesReplaysLoggedPaths) {
  auto env = MakeEnv();
  // Tracing must be part of the configuration so the recovered ORAM instance
  // records its replay too.
  env.config.oram_options.enable_trace = true;
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());

  // Issue reads that get batched, dispatch one batch, then crash. The logged
  // batch must be replayed: the same (bucket, version, slot) trace repeats.
  Timestamp t = env.proxy->Begin();
  std::thread reader([&] { (void)env.proxy->Read(t, "key11"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  env.proxy->oram()->trace().Clear();
  ASSERT_TRUE(env.proxy->StepReadBatch().ok());
  auto pre_crash_trace = env.proxy->oram()->trace().Take();
  ASSERT_FALSE(pre_crash_trace.empty());
  reader.join();

  env.proxy->SimulateCrash();
  RecoveryBreakdown breakdown;
  ASSERT_TRUE(env.proxy->RecoverFromCrash(&breakdown).ok());
  EXPECT_EQ(breakdown.replayed_batches, 1u);

  // The replayed prefix of the recovery trace must exactly match the
  // pre-crash physical reads (§8: the adversary sees the same paths again).
  auto replay_trace = env.proxy->oram()->trace().Take();
  ASSERT_GE(replay_trace.size(), pre_crash_trace.size());
  for (size_t i = 0; i < pre_crash_trace.size(); ++i) {
    if (pre_crash_trace[i].type != PhysicalOpType::kReadSlot) {
      continue;
    }
    EXPECT_EQ(replay_trace[i], pre_crash_trace[i]) << "replay diverged at op " << i;
  }
  env.proxy->oram()->trace().Disable();

  EXPECT_EQ(ReadCommitted(*env.proxy, "key11"), "value11");
}

TEST(RecoveryTest, RepeatedCrashesAndRecoveries) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(40)).ok());

  for (int round = 0; round < 5; ++round) {
    std::string value = "round-" + std::to_string(round);
    CommitWrite(*env.proxy, "key" + std::to_string(round), value);
    env.proxy->SimulateCrash();
    ASSERT_TRUE(env.proxy->RecoverFromCrash().ok()) << "round " << round;
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(round)), value);
  }
  // Everything committed in any round is still there.
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(round)),
              "round-" + std::to_string(round));
  }
  EXPECT_EQ(env.proxy->stats().recoveries, 5u);
}

TEST(RecoveryTest, FullCheckpointsTruncateTheLog) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(20)).ok());
  // Run enough epochs to cross several full-checkpoint intervals.
  for (int i = 0; i < 10; ++i) {
    CommitWrite(*env.proxy, "key1", "v" + std::to_string(i));
  }
  auto records = env.log->ReadAll();
  ASSERT_TRUE(records.ok());
  // Without truncation we would have >= 10 epochs * (plans + delta) records.
  EXPECT_LT(records->size(), 40u);
  // And recovery still works from the truncated log.
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  EXPECT_EQ(ReadCommitted(*env.proxy, "key1"), "v9");
}

TEST(RecoveryTest, InFlightClientsSeeAbortOnCrash) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(20)).ok());

  Timestamp t = env.proxy->Begin();
  std::atomic<bool> observed_abort{false};
  std::thread reader([&] {
    auto v = env.proxy->Read(t, "key1");
    if (!v.ok() && v.status().code() == StatusCode::kAborted) {
      observed_abort.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  env.proxy->SimulateCrash();
  reader.join();
  EXPECT_TRUE(observed_abort.load());
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  EXPECT_EQ(ReadCommitted(*env.proxy, "key1"), "value1");
}

TEST(RecoveryTest, KeyDirectorySurvivesCrash) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(10)).ok());
  CommitWrite(*env.proxy, "brand-new-key", "created-after-load");
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  EXPECT_EQ(ReadCommitted(*env.proxy, "brand-new-key"), "created-after-load");
}

TEST(RecoveryTest, RecoveryWithoutLogFailsCleanly) {
  ObladiConfig config = ObladiConfig::ForCapacity(32, 4, 64);
  config.recovery.enabled = false;
  auto store = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                   config.oram.slots_per_bucket());
  ObladiStore proxy(config, store, nullptr);
  EXPECT_EQ(proxy.RecoverFromCrash().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, StashSurvivesCrash) {
  // Force blocks into the stash (writes stay stash-resident until evicted to
  // a fitting bucket), then crash and verify values come back from the
  // checkpointed stash.
  auto env = MakeEnv();
  ASSERT_TRUE(env.proxy->Load(SimpleRecords(60)).ok());
  for (int i = 0; i < 6; ++i) {
    CommitWrite(*env.proxy, "key" + std::to_string(20 + i), "stashed-" + std::to_string(i));
  }
  env.proxy->SimulateCrash();
  ASSERT_TRUE(env.proxy->RecoverFromCrash().ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ReadCommitted(*env.proxy, "key" + std::to_string(20 + i)),
              "stashed-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace obladi
