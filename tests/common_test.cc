#include <gtest/gtest.h>

#include <atomic>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace obladi {
namespace {

TEST(SerdeTest, RoundTripScalars) {
  BinaryWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-42);
  w.PutDouble(3.25);
  w.PutBool(true);
  Bytes buf = w.Take();

  BinaryReader r(buf);
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU16(), 0xbeef);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_EQ(r.GetDouble(), 3.25);
  EXPECT_TRUE(r.GetBool());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerdeTest, RoundTripStringsAndBytes) {
  BinaryWriter w;
  w.PutString("hello");
  w.PutBytes(Bytes{1, 2, 3});
  w.PutString("");
  Bytes buf = w.Take();

  BinaryReader r(buf);
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_EQ(r.GetBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.GetString(), "");
  EXPECT_TRUE(r.ok());
}

TEST(SerdeTest, TruncatedReadSetsNotOk) {
  BinaryWriter w;
  w.PutU32(12);
  Bytes buf = w.Take();
  BinaryReader r(buf);
  r.GetU64();  // more than available
  EXPECT_FALSE(r.ok());
}

TEST(StatusTest, CodesAndMessages) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status nf = Status::NotFound("missing row");
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ(nf.code(), StatusCode::kNotFound);
  EXPECT_NE(nf.ToString().find("missing row"), std::string::npos);
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::Aborted("conflict");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kAborted);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, UniformIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversRangeRoughly) {
  Rng rng(4);
  std::vector<int> counts(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.Uniform(10)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kSamples / 10 * 0.9);
    EXPECT_LT(c, kSamples / 10 * 1.1);
  }
}

TEST(RngTest, ZipfianSkewsTowardLowRanks) {
  Rng rng(5);
  ZipfianGenerator zipf(1000, 0.99);
  int rank0 = 0, tail = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t r = zipf.Next(rng);
    ASSERT_LT(r, 1000u);
    if (r == 0) {
      rank0++;
    }
    if (r >= 500) {
      tail++;
    }
  }
  EXPECT_GT(rank0, tail);  // head rank beats the entire upper half
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndexSpace) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(HistogramTest, PercentilesAndMean) {
  Histogram h;
  for (uint64_t i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 99.0, 2.0);
  EXPECT_EQ(h.Max(), 100u);
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p999, 0u);
}

TEST(HistogramTest, MergeThenQuantileAccessors) {
  // Regression for the quantile accessors across Merge: two disjoint
  // thread-local histograms must yield the same tail as one combined set.
  Histogram a;
  Histogram b;
  for (uint64_t i = 1; i <= 500; ++i) {
    a.Record(i);
  }
  for (uint64_t i = 501; i <= 1000; ++i) {
    b.Record(i);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), 1000u);
  EXPECT_NEAR(static_cast<double>(a.P50()), 500.0, 2.0);
  EXPECT_NEAR(static_cast<double>(a.P90()), 900.0, 2.0);
  EXPECT_NEAR(static_cast<double>(a.P99()), 990.0, 2.0);
  EXPECT_NEAR(static_cast<double>(a.P999()), 999.0, 2.0);
  // Merging an empty histogram and self-merge are both no-ops.
  Histogram empty;
  a.Merge(empty);
  a.Merge(a);
  EXPECT_EQ(a.Count(), 1000u);
}

TEST(HistogramTest, SummaryIsOneConsistentCut) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Record(i);
  }
  HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_DOUBLE_EQ(s.mean, 500.5);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_NEAR(static_cast<double>(s.p50), 500.0, 2.0);
  EXPECT_NEAR(static_cast<double>(s.p90), 900.0, 2.0);
  EXPECT_NEAR(static_cast<double>(s.p99), 990.0, 2.0);
  EXPECT_NEAR(static_cast<double>(s.p999), 999.0, 2.0);
  // The struct agrees with the per-accessor views taken while quiescent.
  EXPECT_EQ(s.p50, h.P50());
  EXPECT_EQ(s.p999, h.P999());
}

}  // namespace
}  // namespace obladi
