#include <gtest/gtest.h>

#include <thread>

#include "src/baseline/nopriv_store.h"
#include "src/baseline/twopl_store.h"
#include "src/common/rng.h"

namespace obladi {
namespace {

std::vector<std::pair<Key, std::string>> SimpleRecords(int n) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(i), "value" + std::to_string(i));
  }
  return records;
}

template <typename StoreT>
std::unique_ptr<StoreT> MakeStore() {
  auto storage = std::make_shared<RemoteKv>(LatencyProfile::Dummy());
  auto store = std::make_unique<StoreT>(storage);
  EXPECT_TRUE(store->Load(SimpleRecords(50)).ok());
  return store;
}

template <typename StoreT>
class BaselineTest : public testing::Test {};

using StoreTypes = testing::Types<NoPrivStore, TwoPlStore>;
TYPED_TEST_SUITE(BaselineTest, StoreTypes);

TYPED_TEST(BaselineTest, ReadCommittedData) {
  auto store = MakeStore<TypeParam>();
  Status st = RunTransaction(*store, [&](Txn& txn) -> Status {
    auto v = txn.Read("key7");
    if (!v.ok()) {
      return v.status();
    }
    EXPECT_EQ(*v, "value7");
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TYPED_TEST(BaselineTest, WriteThenReadBack) {
  auto store = MakeStore<TypeParam>();
  ASSERT_TRUE(RunTransaction(*store, [&](Txn& txn) -> Status {
                return txn.Write("key3", "updated");
              }).ok());
  Status st = RunTransaction(*store, [&](Txn& txn) -> Status {
    auto v = txn.Read("key3");
    if (!v.ok()) {
      return v.status();
    }
    EXPECT_EQ(*v, "updated");
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
}

TYPED_TEST(BaselineTest, ReadYourOwnWrite) {
  auto store = MakeStore<TypeParam>();
  Status st = RunTransaction(*store, [&](Txn& txn) -> Status {
    OBLADI_RETURN_IF_ERROR(txn.Write("key1", "mine"));
    auto v = txn.Read("key1");
    if (!v.ok()) {
      return v.status();
    }
    EXPECT_EQ(*v, "mine");
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
}

TYPED_TEST(BaselineTest, AbortDiscardsWrites) {
  auto store = MakeStore<TypeParam>();
  Timestamp t = store->Begin();
  ASSERT_TRUE(store->Write(t, "key2", "discarded").ok());
  store->Abort(t);
  Status st = RunTransaction(*store, [&](Txn& txn) -> Status {
    auto v = txn.Read("key2");
    if (!v.ok()) {
      return v.status();
    }
    EXPECT_EQ(*v, "value2");
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
}

// Counter increments from many threads must all be preserved (lost-update
// freedom = serializability on this schedule) for both baselines.
TYPED_TEST(BaselineTest, ConcurrentCountersAreSerializable) {
  auto storage = std::make_shared<RemoteKv>(LatencyProfile::Dummy());
  TypeParam store(storage);
  ASSERT_TRUE(store.Load({{"counter:a", "0"}, {"counter:b", "0"}}).ok());

  const int kThreads = 8;
  const int kIncrementsPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      Rng rng(th + 7);
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        std::string key = rng.Bernoulli(0.5) ? "counter:a" : "counter:b";
        Status st = RunTransaction(
            store,
            [&](Txn& txn) -> Status {
              auto v = txn.Read(key);
              if (!v.ok()) {
                return v.status();
              }
              return txn.Write(key, std::to_string(std::stoll(*v) + 1));
            },
            /*max_attempts=*/1000);
        if (st.ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  int64_t total = 0;
  ASSERT_TRUE(RunTransaction(store, [&](Txn& txn) -> Status {
                auto a = txn.Read("counter:a");
                auto b = txn.Read("counter:b");
                if (!a.ok() || !b.ok()) {
                  return Status::Aborted("retry");
                }
                total = std::stoll(*a) + std::stoll(*b);
                return Status::Ok();
              }).ok());
  // Serializability = lost-update freedom: every commit is reflected,
  // exactly. (This must hold unconditionally.)
  EXPECT_EQ(total, committed.load());
  // Liveness: wait-die restarts get fresh, younger timestamps, so under
  // heavy CPU contention a thread can exhaust its attempt budget; require
  // strong progress rather than full completion.
  EXPECT_GE(committed.load(), kThreads * kIncrementsPerThread / 2);
}

TEST(NoPrivTest, DependencyCommitOrderIsRespected) {
  auto storage = std::make_shared<RemoteKv>(LatencyProfile::Dummy());
  NoPrivStore store(storage);
  ASSERT_TRUE(store.Load({{"x", "base"}}).ok());

  Timestamp t1 = store.Begin();
  ASSERT_TRUE(store.Write(t1, "x", "from-t1").ok());
  Timestamp t2 = store.Begin();
  auto v = store.Read(t2, "x");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "from-t1");  // uncommitted write visible (MVTSO)

  std::thread c1([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(store.Commit(t1).ok());
  });
  EXPECT_TRUE(store.Commit(t2).ok());  // waits for t1
  c1.join();
}

TEST(TwoPlTest, WaitDieBreaksDeadlocks) {
  auto storage = std::make_shared<RemoteKv>(LatencyProfile::Dummy());
  TwoPlStore store(storage);
  ASSERT_TRUE(store.Load({{"a", "1"}, {"b", "2"}}).ok());

  // Classic crossing writers; wait-die guarantees someone aborts and both
  // threads terminate.
  std::atomic<int> done{0};
  std::thread t1([&] {
    RunTransaction(store, [&](Txn& txn) -> Status {
      OBLADI_RETURN_IF_ERROR(txn.Write("a", "t1"));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      OBLADI_RETURN_IF_ERROR(txn.Write("b", "t1"));
      return Status::Ok();
    });
    done.fetch_add(1);
  });
  std::thread t2([&] {
    RunTransaction(store, [&](Txn& txn) -> Status {
      OBLADI_RETURN_IF_ERROR(txn.Write("b", "t2"));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      OBLADI_RETURN_IF_ERROR(txn.Write("a", "t2"));
      return Status::Ok();
    });
    done.fetch_add(1);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(done.load(), 2);
}

TEST(TwoPlTest, SharedLocksAllowConcurrentReaders) {
  auto storage = std::make_shared<RemoteKv>(LatencyProfile::Dummy());
  TwoPlStore store(storage);
  ASSERT_TRUE(store.Load({{"k", "v"}}).ok());
  Timestamp t1 = store.Begin();
  Timestamp t2 = store.Begin();
  EXPECT_TRUE(store.Read(t1, "k").ok());
  EXPECT_TRUE(store.Read(t2, "k").ok());  // no blocking
  EXPECT_TRUE(store.Commit(t1).ok());
  EXPECT_TRUE(store.Commit(t2).ok());
}

TEST(RemoteKvTest, VersionedPutsAreLastWriterWins) {
  RemoteKv kv(LatencyProfile::Dummy());
  ASSERT_TRUE(kv.Put("k", "newer", 10).ok());
  ASSERT_TRUE(kv.Put("k", "older", 5).ok());  // applied out of order
  auto v = kv.Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "newer");
}

TEST(RemoteKvTest, MissingKeyIsNotFound) {
  RemoteKv kv(LatencyProfile::Dummy());
  EXPECT_EQ(kv.Get("nope").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace obladi
