// Chaos-primitive tests (src/fault): the fault decorators must be perfectly
// transparent with a zero-fault plan (the full store-conformance suites run
// against them), deterministic when injecting, and the TCP fault relay must
// reproduce the partition/half-open/slow-link failure shapes the hardened
// transport is designed to survive.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "src/common/clock.h"
#include "src/fault/fault_relay.h"
#include "src/fault/faulty_store.h"
#include "src/fault/skew_clock.h"
#include "src/net/remote_store.h"
#include "src/net/storage_server.h"
#include "src/storage/memory_store.h"
#include "tests/store_conformance.h"

namespace obladi {
namespace {

std::vector<Bytes> MakeBucket(size_t slots, uint8_t fill) {
  return std::vector<Bytes>(slots, Bytes(8, fill));
}

// ---------------------------------------------------------------------------
// Faulty store decorators
// ---------------------------------------------------------------------------

TEST(FaultyStoreTest, ZeroFaultBucketStoreIsConformant) {
  FaultyBucketStore store(std::make_shared<MemoryBucketStore>(16, 3));
  RunBucketStoreConformance(store, 3);
  EXPECT_EQ(store.faults_injected(), 0u);
}

TEST(FaultyStoreTest, ZeroFaultLogStoreIsConformant) {
  FaultyLogStore log(std::make_shared<MemoryLogStore>());
  RunLogStoreConformance(log);
  EXPECT_EQ(log.faults_injected(), 0u);
}

TEST(FaultyStoreTest, TransientUnavailableFiresEveryNthDeterministically) {
  FaultyBucketStore store(std::make_shared<MemoryBucketStore>(8, 2));
  FaultPlan plan;
  plan.unavailable_every_n = 3;
  store.SetPlan(plan);
  int failures = 0;
  for (int i = 1; i <= 9; ++i) {
    Status st = store.WriteBucket(0, static_cast<uint32_t>(i), MakeBucket(2, 0x5a));
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
      EXPECT_EQ(i % 3, 0) << "fault fired off-schedule at op " << i;
      ++failures;
    }
  }
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(store.faults_injected(), 3u);
  // The injected error never reached the base store: the skipped versions
  // are simply absent.
  EXPECT_FALSE(store.ReadSlot(0, 3, 0).ok());
  EXPECT_TRUE(store.ReadSlot(0, 4, 0).ok());
}

TEST(FaultyStoreTest, AsyncInjectionCompletesTheCallbackWithTheError) {
  FaultyBucketStore store(std::make_shared<MemoryBucketStore>(8, 2));
  FaultPlan plan;
  plan.unavailable_every_n = 1;  // every operation fails
  store.SetPlan(plan);
  bool done_ran = false;
  store.ReadSlotsBatchAsync({{0, 0, 0}}, [&](std::vector<StatusOr<Bytes>> results) {
    done_ran = true;
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status().code(), StatusCode::kUnavailable);
  });
  EXPECT_TRUE(done_ran);
}

TEST(FaultyStoreTest, FsyncStallDelaysDurabilityPathOnly) {
  FaultyLogStore log(std::make_shared<MemoryLogStore>());
  FaultPlan plan;
  plan.fsync_stall_us = 30000;
  log.SetPlan(plan);
  uint64_t start = NowMicros();
  ASSERT_TRUE(log.AppendSync(Bytes{1, 2, 3}).ok());
  EXPECT_GE(NowMicros() - start, 30000u);
  // Non-durability reads are unaffected.
  start = NowMicros();
  ASSERT_TRUE(log.ReadAll().ok());
  EXPECT_LT(NowMicros() - start, 30000u);
  // Plans swap at runtime: clearing the plan removes the stall.
  log.SetPlan(FaultPlan{});
  start = NowMicros();
  ASSERT_TRUE(log.AppendSync(Bytes{4, 5, 6}).ok());
  EXPECT_LT(NowMicros() - start, 30000u);
}

// ---------------------------------------------------------------------------
// SkewClock
// ---------------------------------------------------------------------------

TEST(SkewClockTest, OffsetShiftsClaimedTimestamps) {
  SkewClock clock;
  clock.SetOffset(100);
  EXPECT_EQ(clock.Skew(1), 101u);
  EXPECT_EQ(clock.Skew(2), 102u);
}

TEST(SkewClockTest, StaysStrictlyIncreasingAcrossBackwardJumps) {
  SkewClock clock;
  uint64_t prev = 0;
  uint64_t internal = 1;
  for (int round = 0; round < 4; ++round) {
    // Jump the offset forwards then sharply backwards mid-stream.
    clock.AdvanceOffset(round % 2 == 0 ? 1000000 : -2000000);
    for (int i = 0; i < 16; ++i) {
      uint64_t claimed = clock.Skew(internal++);
      EXPECT_GT(claimed, prev) << "claimed order diverged from internal order";
      prev = claimed;
    }
  }
}

TEST(SkewClockTest, NeverClaimsZeroEvenUnderNegativeOffset) {
  SkewClock clock(-1000000);
  EXPECT_GE(clock.Skew(1), 1u);
}

// ---------------------------------------------------------------------------
// FaultRelay
// ---------------------------------------------------------------------------

struct RelayEnv {
  std::shared_ptr<MemoryBucketStore> buckets;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<StorageServer> server;
  std::unique_ptr<FaultRelay> relay;

  // Client options pointed at the RELAY (not the server), with a short
  // request deadline so blackholed requests expire instead of hanging.
  RemoteStoreOptions ClientOptions(uint64_t deadline_ms = 300) const {
    RemoteStoreOptions opts;
    opts.port = relay->port();
    opts.default_deadline_ms = deadline_ms;
    opts.retry.max_attempts = 2;
    opts.retry.initial_backoff_us = 1000;
    return opts;
  }
};

RelayEnv StartRelayEnv(size_t num_buckets = 32, size_t slots = 3) {
  RelayEnv env;
  env.buckets = std::make_shared<MemoryBucketStore>(num_buckets, slots);
  env.log = std::make_shared<MemoryLogStore>();
  env.server = std::make_unique<StorageServer>(env.buckets, env.log);
  EXPECT_TRUE(env.server->Start().ok());
  auto relay = FaultRelay::Start("127.0.0.1", env.server->port());
  EXPECT_TRUE(relay.ok()) << relay.status().ToString();
  env.relay = std::move(*relay);
  return env;
}

TEST(FaultRelayTest, PassThroughIsTransparent) {
  RelayEnv env = StartRelayEnv();
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->WriteBucket(1, 0, MakeBucket(3, 0xab)).ok());
  auto slot = (*store)->ReadSlot(1, 0, 0);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ((*slot)[0], 0xab);
  FaultRelay::RelayStats stats = env.relay->stats();
  EXPECT_GE(stats.connections, 1u);
  EXPECT_GT(stats.bytes_relayed, 0u);
  EXPECT_EQ(stats.bytes_dropped, 0u);
}

TEST(FaultRelayTest, PartitionExpiresRequestsAndHealRestoresService) {
  RelayEnv env = StartRelayEnv();
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->WriteBucket(0, 0, MakeBucket(3, 0x01)).ok());

  // Blackhole: the connection stays established, so the request can only
  // fail via its deadline — the exact partition shape the timer wheel and
  // redial-on-expiry handle.
  env.relay->Partition();
  uint64_t start = NowMicros();
  Status st = (*store)->WriteBucket(0, 1, MakeBucket(3, 0x02));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.code() == StatusCode::kDeadlineExceeded ||
              st.code() == StatusCode::kUnavailable)
      << st.ToString();
  // Bounded by the deadline budget (attempts x deadline + backoff), far
  // below "hangs forever".
  EXPECT_LT(NowMicros() - start, 5u * 1000 * 1000);

  env.relay->Heal();
  // The expired request tore its connection down; the next call redials
  // through the healed relay and must succeed again.
  Status healed = (*store)->WriteBucket(0, 2, MakeBucket(3, 0x03));
  EXPECT_TRUE(healed.ok()) << healed.ToString();
  EXPECT_GE(env.relay->stats().faults_injected, 1u);
  EXPECT_GT(env.relay->stats().bytes_dropped, 0u);
}

TEST(FaultRelayTest, DripForwardsBudgetThenBlackholes) {
  RelayEnv env = StartRelayEnv();
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Allow only a few upstream bytes: the request header leaks through but
  // the frame never completes — a classic half-open/slow-peer shape.
  DirectionFault drip;
  drip.mode = RelayFaultMode::kDrip;
  drip.drip_bytes = 8;
  env.relay->SetClientToUpstream(drip);
  Status st = (*store)->WriteBucket(2, 0, MakeBucket(3, 0x04));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.code() == StatusCode::kDeadlineExceeded ||
              st.code() == StatusCode::kUnavailable)
      << st.ToString();

  env.relay->SetClientToUpstream(DirectionFault{});
  EXPECT_TRUE((*store)->WriteBucket(2, 1, MakeBucket(3, 0x05)).ok());
}

TEST(FaultRelayTest, DropConnectionsFailsFastAndRedialRecovers) {
  RelayEnv env = StartRelayEnv();
  auto store = RemoteBucketStore::Connect(env.ClientOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->WriteBucket(3, 0, MakeBucket(3, 0x06)).ok());

  env.relay->DropConnections();
  // Unlike Partition, the close is visible immediately: the client redials
  // (through the still-listening relay) and the retried call succeeds well
  // inside the deadline budget.
  uint64_t start = NowMicros();
  Status st = (*store)->WriteBucket(3, 1, MakeBucket(3, 0x07));
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_LT(NowMicros() - start, 2u * 1000 * 1000);
  EXPECT_GE(env.relay->stats().connections, 2u);
}

}  // namespace
}  // namespace obladi
