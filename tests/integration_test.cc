// End-to-end tests: the full Obladi stack (proxy + MVTSO + parallel Ring ORAM
// + recovery unit) running the paper's application workloads, plus the
// security-oriented whole-system properties (workload independence of the
// physical trace, integrity mode).
#include <gtest/gtest.h>

#include <thread>

#include "src/baseline/nopriv_store.h"
#include "src/common/rng.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"
#include "tests/paced_proxy.h"
#include "src/workload/freehealth.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"
#include "src/workload/ycsb.h"

namespace obladi {
namespace {

struct Env {
  ObladiConfig config;
  std::shared_ptr<MemoryBucketStore> store;
  std::shared_ptr<MemoryLogStore> log;
  std::unique_ptr<ObladiStore> proxy;
};

Env MakeObladi(uint64_t capacity, size_t read_batch = 24, size_t write_batch = 24,
               size_t batches = 4, bool recovery = false, bool authenticated = false) {
  Env env;
  env.config = ObladiConfig::ForCapacity(capacity, /*z=*/8, /*payload=*/512);
  env.config.oram.authenticated = authenticated;
  env.config.read_batches_per_epoch = batches;
  env.config.read_batch_size = read_batch;
  env.config.write_batch_size = write_batch;
  env.config.recovery.enabled = recovery;
  env.config.timed_mode = true;
  env.config.batch_interval_us = 300;
  env.config.oram_options.io_threads = 8;
  env.store = std::make_shared<MemoryBucketStore>(env.config.oram.num_buckets(),
                                                  env.config.oram.slots_per_bucket());
  env.log = std::make_shared<MemoryLogStore>();
  env.proxy = std::make_unique<ObladiStore>(env.config, env.store, env.log);
  return env;
}

void RunApp(Workload& workload, ObladiStore& proxy, int clients, int txns_per_client,
            int min_committed) {
  ASSERT_TRUE(proxy.Load(workload.InitialRecords()).ok());
  proxy.Start();
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(c * 97 + 13);
      for (int i = 0; i < txns_per_client; ++i) {
        // Epoch-boundary and conflict aborts are expected (§6); clients
        // retry, so give each logical transaction a few attempts. Back off
        // before retrying: once an epoch's read batches are full, immediate
        // retries abort instantly until the next epoch opens.
        for (int attempt = 0; attempt < 8; ++attempt) {
          if (workload.RunOne(proxy, rng).ok()) {
            committed.fetch_add(1);
            break;
          }
          std::this_thread::sleep_for(
              std::chrono::microseconds(proxy.config().batch_interval_us));
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  proxy.Stop();
  EXPECT_GE(committed.load(), min_committed);
  EXPECT_TRUE(proxy.oram()->CheckInvariants().ok());
}

TEST(ObladiAppTest, SmallBankEndToEnd) {
  SmallBankConfig cfg;
  cfg.num_accounts = 64;
  SmallBankWorkload wl(cfg);
  auto env = MakeObladi(256);
  // Aborts (write conflicts, unfinished epochs) are expected under
  // contention; the floor only checks that the system makes real progress.
  RunApp(wl, *env.proxy, /*clients=*/4, /*txns_per_client=*/6, /*min_committed=*/12);
}

TEST(ObladiAppTest, SmallBankConservesMoneyOnObladi) {
  SmallBankConfig cfg;
  cfg.num_accounts = 4;
  SmallBankWorkload wl(cfg);
  // A transaction's *sequential* reads each occupy one read batch (§6.4), so
  // the audit transaction (8 dependent reads) needs R >= 8.
  auto env = MakeObladi(32, /*read_batch=*/8, /*write_batch=*/8, /*batches=*/10);
  ASSERT_TRUE(env.proxy->Load(wl.InitialRecords()).ok());
  env.proxy->Start();

  std::vector<std::thread> threads;
  for (int th = 0; th < 3; ++th) {
    threads.emplace_back([&, th] {
      Rng rng(th + 5);
      for (int i = 0; i < 8; ++i) {
        uint64_t a = rng.Uniform(4);
        uint64_t b = (a + 1 + rng.Uniform(3)) % 4;
        wl.SendPayment(*env.proxy, a, b, rng.UniformInt(1, 300));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  auto total = wl.TotalBalance(*env.proxy, 4);
  env.proxy->Stop();
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_EQ(*total, 8 * SmallBankWorkload::kInitialBalanceCents);
}

TEST(ObladiAppTest, FreeHealthEndToEnd) {
  FreeHealthConfig cfg;
  cfg.num_patients = 20;
  cfg.num_users = 5;
  cfg.num_drugs = 20;
  FreeHealthWorkload wl(cfg);
  auto env = MakeObladi(1024, /*read_batch=*/24, /*write_batch=*/16, /*batches=*/5);
  RunApp(wl, *env.proxy, /*clients=*/3, /*txns_per_client=*/5, /*min_committed=*/12);
}

TEST(ObladiAppTest, TpccEndToEnd) {
  TpccConfig cfg;
  cfg.num_warehouses = 1;
  cfg.districts_per_warehouse = 2;  // bounds delivery's sequential read depth
  cfg.customers_per_district = 10;
  cfg.num_items = 50;
  cfg.initial_orders_per_district = 5;
  cfg.stock_level_orders = 1;
  cfg.max_order_lines = 4;
  TpccWorkload wl(cfg);
  // TPC-C transactions vary widely in length, so epochs must be provisioned
  // for the longest one (§6.4): each *sequentially dependent* read occupies
  // one read batch, so R must exceed the longest transaction's read depth.
  auto env = MakeObladi(1024, /*read_batch=*/24, /*write_batch=*/32, /*batches=*/24);
  RunApp(wl, *env.proxy, /*clients=*/3, /*txns_per_client=*/3, /*min_committed=*/6);
}

TEST(ObladiAppTest, YcsbWithRecoveryEnabled) {
  YcsbConfig cfg;
  cfg.num_objects = 128;
  cfg.ops_per_txn = 3;
  cfg.value_size = 32;
  YcsbWorkload wl(cfg);
  auto env = MakeObladi(256, 16, 16, 3, /*recovery=*/true);
  RunApp(wl, *env.proxy, /*clients=*/3, /*txns_per_client=*/5, /*min_committed=*/10);
  EXPECT_GT(env.log->NextLsn(), 0u);
}

// Workload independence (§3.3): two very different logical workloads with the
// same shape (same epoch/batch structure) must produce physical traces with
// identical op-type sequences — the adversary sees only shape, never content.
TEST(ObliviousnessTest, TraceShapeIndependentOfWorkload) {
  auto run_one = [](bool hot_workload) {
    ObladiConfig config = ObladiConfig::ForCapacity(256, 4, 64);
    config.read_batches_per_epoch = 2;
    config.read_batch_size = 4;
    config.write_batch_size = 4;
    config.recovery.enabled = false;
    config.oram_options.enable_trace = true;
    auto store = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                     config.oram.slots_per_bucket());
    ObladiStore proxy(config, store, nullptr);
    std::vector<std::pair<Key, std::string>> records;
    for (int i = 0; i < 200; ++i) {
      records.emplace_back("k" + std::to_string(i), "v");
    }
    EXPECT_TRUE(proxy.Load(records).ok());

    Rng rng(42);
    for (int epoch = 0; epoch < 6; ++epoch) {
      std::atomic<bool> done{false};
      std::thread client([&] {
        for (int t = 0; t < 2; ++t) {
          Timestamp ts = proxy.Begin();
          // Hot workload hammers two keys; cold workload spreads uniformly.
          std::string key = hot_workload ? "k" + std::to_string(t)
                                         : "k" + std::to_string(rng.Uniform(200));
          (void)proxy.Read(ts, key);
          (void)proxy.Write(ts, key, "x");
          (void)proxy.Commit(ts);
        }
        done.store(true);
      });
      while (!done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_TRUE(proxy.FinishEpochNow().ok());
      }
      client.join();
    }
    // Collect op-type counts plus the deterministic schedule counters. The
    // pacing loop above may run a variable number of epochs (it polls the
    // client thread), so every quantity is normalized per epoch — the
    // adversary-visible shape of *each* epoch is what §3.3 fixes.
    size_t reads = 0, writes = 0;
    for (const auto& op : proxy.oram()->trace().ops()) {
      if (op.type == PhysicalOpType::kReadSlot) {
        reads++;
      } else {
        writes++;
      }
    }
    uint64_t epochs = proxy.stats().epochs;
    EXPECT_GT(epochs, 0u);
    return std::make_tuple(reads, writes, proxy.oram()->access_count(),
                           proxy.oram()->evict_count(), epochs);
  };

  auto hot = run_one(true);
  auto cold = run_one(false);
  // The schedule-level quantities are *exactly* workload independent per
  // epoch: every epoch advances the access counter by R*b_read + b_write
  // (padding included), and evictions fire every A accesses.
  uint64_t hot_epochs = std::get<4>(hot);
  uint64_t cold_epochs = std::get<4>(cold);
  EXPECT_EQ(std::get<2>(hot) % hot_epochs, 0u);
  EXPECT_EQ(std::get<2>(hot) / hot_epochs, std::get<2>(cold) / cold_epochs);
  EXPECT_EQ(std::get<2>(cold) % cold_epochs, 0u);
  EXPECT_EQ(std::get<3>(hot) / hot_epochs, std::get<3>(cold) / cold_epochs);
  // Physical slot-read and bucket-write counts are random variables whose
  // distribution is workload independent (Lemma 1/2); exact values differ
  // with the coin flips, so compare per-epoch rates within a tolerance.
  double read_ratio = (static_cast<double>(std::get<0>(hot)) / hot_epochs) /
                      (static_cast<double>(std::get<0>(cold)) / cold_epochs);
  EXPECT_GT(read_ratio, 0.9);
  EXPECT_LT(read_ratio, 1.1);
  double write_ratio = (static_cast<double>(std::get<1>(hot)) / hot_epochs) /
                       (static_cast<double>(std::get<1>(cold)) / cold_epochs);
  EXPECT_GT(write_ratio, 0.8);
  EXPECT_LT(write_ratio, 1.2);
}

// Appendix A: with MACs + freshness enabled, a tampering storage server is
// detected rather than believed.
TEST(IntegrityTest, TamperedBucketIsDetected) {
  RingOramConfig config = RingOramConfig::ForCapacity(64, 4, 64);
  config.authenticated = true;
  RingOramOptions options;
  options.parallel = false;
  auto store = std::make_shared<MemoryBucketStore>(config.num_buckets(),
                                                   config.slots_per_bucket());
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("k"), true, 7));
  RingOram oram(config, options, store, encryptor, 7);
  std::vector<Bytes> values(64, BytesFromString("payload"));
  ASSERT_TRUE(oram.Initialize(values).ok());

  // Adversary rewrites every bucket's slots with garbage of the right size.
  size_t ct_size = config.slot_plaintext_size() + encryptor->Overhead();
  for (BucketIndex b = 0; b < config.num_buckets(); ++b) {
    std::vector<Bytes> garbage(config.slots_per_bucket(), Bytes(ct_size, 0x66));
    ASSERT_TRUE(store->WriteBucket(b, 0, std::move(garbage)).ok());
  }

  auto result = oram.ReadBatch({5});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIntegrityViolation);
}

TEST(IntegrityTest, ReplayedStaleVersionIsDetected) {
  // Freshness: ciphertexts are bound to (bucket, version, slot). Serving an
  // old version's ciphertext under a new version must fail.
  RingOramConfig config = RingOramConfig::ForCapacity(32, 4, 64);
  config.authenticated = true;
  auto encryptor = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(BytesFromString("k"), true, 9));
  Bytes plaintext(config.slot_plaintext_size(), 0x11);
  Bytes aad_v0 = BlockCodec::MakeAad(3, 0, 5);
  Bytes aad_v1 = BlockCodec::MakeAad(3, 1, 5);
  Bytes ct = encryptor->Encrypt(plaintext, aad_v0);
  EXPECT_TRUE(encryptor->Decrypt(ct, aad_v0).ok());
  EXPECT_EQ(encryptor->Decrypt(ct, aad_v1).status().code(),
            StatusCode::kIntegrityViolation);
}

// Obladi and NoPriv must agree on final database state for the same committed
// transaction sequence (differential test).
TEST(DifferentialTest, ObladiMatchesNoPrivOnSequentialWorkload) {
  std::vector<std::pair<Key, std::string>> records;
  for (int i = 0; i < 40; ++i) {
    records.emplace_back("k" + std::to_string(i), "init" + std::to_string(i));
  }

  // NoPriv reference run.
  auto storage = std::make_shared<RemoteKv>(LatencyProfile::Dummy());
  NoPrivStore reference(storage);
  ASSERT_TRUE(reference.Load(records).ok());

  auto env = MakeObladi(128, 16, 16, 3);
  ASSERT_TRUE(env.proxy->Load(records).ok());
  env.proxy->Start();

  Rng rng(314);
  for (int i = 0; i < 30; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(40));
    std::string other = "k" + std::to_string(rng.Uniform(40));
    auto body = [&](Txn& txn) -> Status {
      auto v = txn.Read(key);
      if (!v.ok()) {
        return v.status();
      }
      return txn.Write(other, *v + "+");
    };
    ASSERT_TRUE(RunTransaction(reference, body).ok());
    ASSERT_TRUE(RunPacedTransaction(*env.proxy, body).ok());
  }

  for (int i = 0; i < 40; ++i) {
    std::string key = "k" + std::to_string(i);
    std::string ref_value, obl_value;
    ASSERT_TRUE(RunTransaction(reference, [&](Txn& txn) -> Status {
                  auto v = txn.Read(key);
                  if (!v.ok()) {
                    return v.status();
                  }
                  ref_value = *v;
                  return Status::Ok();
                }).ok());
    ASSERT_TRUE(RunPacedTransaction(*env.proxy, [&](Txn& txn) -> Status {
                  auto v = txn.Read(key);
                  if (!v.ok()) {
                    return v.status();
                  }
                  obl_value = *v;
                  return Status::Ok();
                }).ok());
    EXPECT_EQ(ref_value, obl_value) << key;
  }
  env.proxy->Stop();
}

}  // namespace
}  // namespace obladi
