// Durability walkthrough (§8): commit data, kill the proxy (all volatile
// state — position map, stash, version cache — is lost), recover from the
// write-ahead log, and verify epoch fate sharing: committed epochs survive,
// the in-flight epoch vanishes, and the logged read paths are replayed so the
// post-crash trace leaks nothing.
//
//   ./build/examples/crash_recovery
#include <cstdio>
#include <thread>

#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"

using namespace obladi;

namespace {

Status CommitOne(ObladiStore& store, const Key& key, const std::string& value) {
  std::atomic<bool> done{false};
  Status result;
  std::thread client([&] {
    result = RunTransaction(store, [&](Txn& txn) { return txn.Write(key, value); });
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    (void)store.FinishEpochNow();
  }
  client.join();
  return result;
}

std::string ReadOne(ObladiStore& store, const Key& key) {
  std::string out = "<error>";
  std::atomic<bool> done{false};
  std::thread client([&] {
    (void)RunTransaction(store, [&](Txn& txn) -> Status {
      auto v = txn.Read(key);
      if (!v.ok()) {
        return v.status();
      }
      out = *v;
      return Status::Ok();
    });
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    (void)store.FinishEpochNow();
  }
  client.join();
  return out;
}

}  // namespace

int main() {
  ObladiConfig config = ObladiConfig::ForCapacity(512, 4, 128);
  config.read_batches_per_epoch = 2;
  config.read_batch_size = 8;
  config.write_batch_size = 8;
  config.recovery.enabled = true;
  config.recovery.full_checkpoint_interval = 4;

  auto tree = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                  config.oram.slots_per_bucket());
  auto log = std::make_shared<MemoryLogStore>();
  ObladiStore store(config, tree, log);
  if (!store.Load({{"chart:42", "dx=flu"}, {"chart:77", "dx=ok"}}).ok()) {
    return 1;
  }

  std::printf("1. committing an update to chart:42 ...\n");
  Status st = CommitOne(store, "chart:42", "dx=flu;rx=oseltamivir");
  std::printf("   commit: %s\n", st.ToString().c_str());

  std::printf("2. starting another update — but the proxy will die mid-epoch\n");
  Timestamp doomed = store.Begin();
  (void)store.Write(doomed, "chart:77", "dx=SHOULD-NOT-SURVIVE");

  std::printf("3. proxy crash: position map, stash, version cache all gone\n");
  store.SimulateCrash();

  std::printf("4. recovering from the write-ahead log ...\n");
  RecoveryBreakdown breakdown;
  st = store.RecoverFromCrash(&breakdown);
  if (!st.ok()) {
    std::fprintf(stderr, "   recovery failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("   recovered in %.1f ms (%zu log records, %zu replayed batches)\n",
              static_cast<double>(breakdown.total_us) / 1000.0, breakdown.log_records,
              breakdown.replayed_batches);

  std::printf("5. epoch fate sharing:\n");
  std::printf("   chart:42 = %s   (committed epoch survived)\n",
              ReadOne(store, "chart:42").c_str());
  std::printf("   chart:77 = %s   (in-flight epoch rolled back)\n",
              ReadOne(store, "chart:77").c_str());
  return 0;
}
