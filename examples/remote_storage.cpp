// Remote storage: the proxy and the untrusted cloud storage as two sides of
// a real TCP connection (the deployment split of §5).
//
//   ./build/example_remote_storage                  # demo: both halves in-process
//   ./build/example_remote_storage server [port]    # run a storage node
//   ./build/example_remote_storage client <port>    # run a proxy against it
//
// Run the server in one terminal and the client in another for a genuine
// two-process deployment: the client terminal holds every secret (keys,
// position maps, transaction state); the server terminal only ever sees
// fixed-shape batches of ciphertext reads and writes.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/net/remote_store.h"
#include "src/net/storage_server.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"

using namespace obladi;  // examples only; library code spells the namespace out

namespace {

// Both halves must agree on the tree geometry; in production this is the
// deployment config the operator provisions the storage table from.
ObladiConfig DemoConfig() {
  ObladiConfig config = ObladiConfig::ForCapacity(1024, /*z=*/4, /*payload=*/128);
  config.num_shards = 2;
  config.read_batches_per_epoch = 2;
  config.read_batch_size = 16;
  config.write_batch_size = 16;
  config.batch_interval_us = 2000;
  config.timed_mode = true;
  config.recovery.enabled = true;
  return config;
}

int RunServer(uint16_t port) {
  ObladiConfig config = DemoConfig();
  auto buckets = std::make_shared<MemoryBucketStore>(
      config.StoreBuckets(), config.MakeLayout().shard_config.slots_per_bucket());
  auto log = std::make_shared<MemoryLogStore>();

  StorageServerOptions opts;
  opts.port = port;
  StorageServer server(buckets, log, opts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("storage node listening on 127.0.0.1:%u (%zu buckets)\n", server.port(),
              buckets->num_buckets());
  std::printf("run: ./build/example_remote_storage client %u\n", server.port());

  // Serve until killed, reporting what the untrusted side observes.
  while (true) {
    std::this_thread::sleep_for(std::chrono::seconds(5));
    std::printf("observed: %llu requests, %.1f KB in, %.1f KB out, %llu connections\n",
                static_cast<unsigned long long>(server.stats().requests_served.load()),
                static_cast<double>(server.stats().bytes_received.load()) / 1e3,
                static_cast<double>(server.stats().bytes_sent.load()) / 1e3,
                static_cast<unsigned long long>(server.stats().connections_accepted.load()));
  }
}

int RunClient(uint16_t port) {
  ObladiConfig config = DemoConfig();

  RemoteStoreOptions opts;
  opts.port = port;
  // One multiplexed connection is enough: the async client's event loop
  // keeps every in-flight RPC of the epoch pipeline on it simultaneously.
  opts.num_connections = 1;
  auto buckets = RemoteBucketStore::Connect(opts);
  if (!buckets.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", buckets.status().ToString().c_str());
    return 1;
  }
  auto log = RemoteLogStore::Connect(opts);
  if (!log.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", log.status().ToString().c_str());
    return 1;
  }
  std::printf("connected to storage node on port %u (%zu buckets)\n", port,
              (*buckets)->num_buckets());

  // The proxy pipeline is byte-for-byte the one that runs over in-process
  // storage — it only sees the BucketStore/LogStore interfaces.
  NetworkStats& stats = (*buckets)->stats();
  ObladiStore store(config, std::move(*buckets), std::move(*log));
  Status st = store.Load({
      {"alice", "balance=100"},
      {"bob", "balance=250"},
      {"carol", "balance=75"},
  });
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  store.Start();

  st = RunTransaction(store, [&](Txn& txn) -> Status {
    auto alice = txn.Read("alice");
    if (!alice.ok()) {
      return alice.status();
    }
    std::printf("alice's record (read through the ORAM, over TCP): %s\n", alice->c_str());
    OBLADI_RETURN_IF_ERROR(txn.Write("alice", "balance=90"));
    return txn.Write("bob", "balance=260");
  });
  if (!st.ok()) {
    std::fprintf(stderr, "transaction failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("transfer committed (decision arrived at epoch end)\n");

  st = RunTransaction(store, [&](Txn& txn) -> Status {
    auto bob = txn.Read("bob");
    if (bob.ok()) {
      std::printf("bob's record after transfer: %s\n", bob->c_str());
    }
    return bob.status();
  });
  store.Stop();

  std::printf("wire traffic: %llu round trips, %.1f KB written, %.1f KB read, "
              "%llu reconnects\n",
              static_cast<unsigned long long>(stats.round_trips.load()),
              static_cast<double>(stats.bytes_written.load()) / 1e3,
              static_cast<double>(stats.bytes_read.load()) / 1e3,
              static_cast<unsigned long long>(stats.reconnects.load()));
  return st.ok() ? 0 : 1;
}

int RunDemo() {
  // Both halves in one process, still talking through a real socket.
  ObladiConfig config = DemoConfig();
  auto buckets = std::make_shared<MemoryBucketStore>(
      config.StoreBuckets(), config.MakeLayout().shard_config.slots_per_bucket());
  StorageServer server(buckets, std::make_shared<MemoryLogStore>());
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("in-process demo: storage node on 127.0.0.1:%u\n", server.port());
  return RunClient(server.port());
}

}  // namespace

int main(int argc, char** argv) {
  signal(SIGPIPE, SIG_IGN);
  if (argc >= 2 && std::string(argv[1]) == "server") {
    return RunServer(argc >= 3 ? static_cast<uint16_t>(std::atoi(argv[2])) : 0);
  }
  if (argc >= 3 && std::string(argv[1]) == "client") {
    return RunClient(static_cast<uint16_t>(std::atoi(argv[2])));
  }
  return RunDemo();
}
