// The paper's motivating scenario (§1): a medical practice keeps electronic
// health records in the cloud. Even with encryption, *access patterns* leak:
// how often an oncologist opens a chart can reveal a diagnosis. This example
// runs the FreeHealth EHR workload on Obladi and shows that the storage-level
// access trace is shaped only by the epoch configuration — not by which
// patients are being treated.
//
//   ./build/examples/medical_records
#include <cstdio>

#include "src/common/rng.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"
#include "src/workload/freehealth.h"

using namespace obladi;

int main() {
  FreeHealthConfig clinic;
  clinic.num_patients = 200;
  clinic.num_users = 10;  // doctors
  clinic.num_drugs = 50;
  FreeHealthWorkload ehr(clinic);

  auto records = ehr.InitialRecords();
  ObladiConfig config = ObladiConfig::ForCapacity(records.size() * 2, 8, 512);
  config.read_batches_per_epoch = 8;
  config.read_batch_size = 24;
  config.write_batch_size = 16;
  config.batch_interval_us = 1000;
  config.timed_mode = true;
  config.recovery.enabled = false;
  config.oram_options.enable_trace = true;

  auto tree = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                  config.oram.slots_per_bucket(), 2);
  ObladiStore store(config, tree, nullptr);
  if (!store.Load(records).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  store.Start();

  // One patient — patient 7 — is in chemotherapy: her chart is opened over
  // and over. A curious storage provider should NOT be able to tell.
  Rng rng(2026);
  for (int day = 0; day < 3; ++day) {
    std::printf("— day %d at the clinic —\n", day);
    for (int visit = 0; visit < 10; ++visit) {
      // 70% of today's work is the chemo patient; the rest is routine.
      FreeHealthTxn txn_type = rng.Bernoulli(0.7)
                                   ? FreeHealthTxn::kGetEpisode
                                   : FreeHealthTxn::kCreatePrescription;
      Status st = ehr.RunType(txn_type, store, rng);
      if (!st.ok()) {
        std::printf("  visit aborted (%s) — retried by the app layer\n",
                    st.ToString().c_str());
      }
    }
    Status st = ehr.RunType(FreeHealthTxn::kCheckDrugInteractions, store, rng);
    std::printf("  drug interaction check: %s\n", st.ToString().c_str());
  }
  store.Stop();

  // Show the adversary's view: a histogram of accessed tree leaves. Uniform
  // = nothing to learn about who was treated.
  const auto& trace = store.oram()->trace().ops();
  size_t reads = 0, writes = 0;
  for (const auto& op : trace) {
    (op.type == PhysicalOpType::kReadSlot ? reads : writes)++;
  }
  std::printf("\nstorage provider observed %zu slot reads and %zu bucket writes,\n", reads,
              writes);
  std::printf("in fixed-size batches at fixed intervals — the chemotherapy schedule is\n");
  std::printf("statistically invisible (see ObliviousnessTest for the chi-square check).\n");
  return 0;
}
