// Quickstart: stand up an Obladi store, run a few serializable transactions,
// and peek at what the untrusted storage provider actually observes.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"

using namespace obladi;  // examples only; library code spells the namespace out

int main() {
  // 1. Configure: a small ORAM (capacity 4096 blocks) with 2 read batches of
  //    16 requests per epoch, paced every 2ms, durability enabled.
  ObladiConfig config = ObladiConfig::ForCapacity(4096, /*z=*/8, /*payload=*/256);
  config.read_batches_per_epoch = 2;
  config.read_batch_size = 16;
  config.write_batch_size = 16;
  config.batch_interval_us = 2000;
  config.timed_mode = true;
  config.recovery.enabled = true;

  // 2. Untrusted storage: the ORAM tree + the write-ahead log. In production
  //    these live in the cloud; here they are in-process stand-ins.
  auto tree = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                  config.oram.slots_per_bucket());
  auto log = std::make_shared<MemoryLogStore>();

  // 3. The trusted proxy.
  ObladiStore store(config, tree, log);
  Status st = store.Load({
      {"alice", "balance=100"},
      {"bob", "balance=250"},
      {"carol", "balance=75"},
  });
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  store.Start();  // epoch pacer

  // 4. A serializable read-modify-write transaction, with automatic retry on
  //    conflict. The commit decision arrives only when the epoch ends.
  st = RunTransaction(store, [&](Txn& txn) -> Status {
    auto alice = txn.Read("alice");
    if (!alice.ok()) {
      return alice.status();
    }
    std::printf("alice's record: %s\n", alice->c_str());
    OBLADI_RETURN_IF_ERROR(txn.Write("alice", "balance=90"));
    return txn.Write("bob", "balance=260");
  });
  std::printf("transfer committed: %s\n", st.ToString().c_str());

  // 5. Read it back in a second transaction.
  st = RunTransaction(store, [&](Txn& txn) -> Status {
    auto alice = txn.Read("alice");
    auto bob = txn.Read("bob");
    if (!alice.ok() || !bob.ok()) {
      return Status::Aborted("retry");
    }
    std::printf("after transfer: alice=%s bob=%s\n", alice->c_str(), bob->c_str());
    return Status::Ok();
  });
  std::printf("audit committed: %s\n", st.ToString().c_str());
  store.Stop();

  // 6. What did the adversary see? Only fixed-shape batches of uniformly
  //    distributed path reads and deterministic bucket writes.
  auto stats = store.oram()->stats();
  std::printf("\nadversary-visible work: %llu physical slot reads, %llu bucket writes\n",
              static_cast<unsigned long long>(stats.physical_slot_reads),
              static_cast<unsigned long long>(stats.physical_bucket_writes));
  std::printf("logical accesses hidden inside them: %llu (incl. padding)\n",
              static_cast<unsigned long long>(stats.logical_accesses));
  return 0;
}
