// SmallBank on Obladi: concurrent clients transferring money with full
// serializability, plus an audit transaction demonstrating that the invariant
// (total money is conserved) holds under contention — Obladi's MVTSO + epochs
// never admit a non-serializable schedule.
//
//   ./build/examples/banking
#include <cstdio>
#include <thread>

#include "src/common/rng.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/memory_store.h"
#include "src/workload/smallbank.h"

using namespace obladi;

int main() {
  SmallBankConfig bank;
  bank.num_accounts = 8;
  SmallBankWorkload workload(bank);

  ObladiConfig config = ObladiConfig::ForCapacity(256, 8, 128);
  // The audit transaction reads every balance sequentially (2 reads per
  // account), so epochs need at least that many read batches (§6.4).
  config.read_batches_per_epoch = 18;
  config.read_batch_size = 24;
  config.write_batch_size = 24;
  config.batch_interval_us = 500;
  config.timed_mode = true;
  config.recovery.enabled = false;

  auto tree = std::make_shared<MemoryBucketStore>(config.oram.num_buckets(),
                                                  config.oram.slots_per_bucket(), 2);
  ObladiStore store(config, tree, nullptr);
  if (!store.Load(workload.InitialRecords()).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  store.Start();

  const int64_t expected_total =
      2 * static_cast<int64_t>(bank.num_accounts) * SmallBankWorkload::kInitialBalanceCents;
  std::printf("bank opened with %u accounts, total %ld cents\n",
              static_cast<unsigned>(bank.num_accounts),
              static_cast<long>(expected_total));

  // Four concurrent tellers hammer transfers and amalgamations.
  std::vector<std::thread> tellers;
  std::atomic<int> committed{0};
  for (int t = 0; t < 4; ++t) {
    tellers.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 12; ++i) {
        uint64_t from = rng.Uniform(bank.num_accounts);
        uint64_t to = (from + 1 + rng.Uniform(bank.num_accounts - 1)) % bank.num_accounts;
        Status st = rng.Bernoulli(0.8)
                        ? workload.SendPayment(store, from, to, rng.UniformInt(1, 2000))
                        : workload.Amalgamate(store, from, to);
        if (st.ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : tellers) {
    t.join();
  }
  std::printf("%d transfer transactions committed\n", committed.load());

  // Audit: one big serializable read of every balance.
  auto total = workload.TotalBalance(store, bank.num_accounts);
  store.Stop();
  if (!total.ok()) {
    std::fprintf(stderr, "audit failed: %s\n", total.status().ToString().c_str());
    return 1;
  }
  std::printf("audit total: %ld cents — %s\n", static_cast<long>(*total),
              *total == expected_total ? "conserved, serializable" : "VIOLATION");
  return *total == expected_total ? 0 : 1;
}
