// Trusted monotonic counter (Appendix A's F_epc).
//
// Against a fully malicious storage server, MACs alone cannot stop rollback:
// the server can serve a stale-but-validly-MAC'd log prefix. Appendix A fixes
// this with a small trusted counter that persists across proxy crashes (e.g.
// a few bytes of local NVM): the proxy bumps it after each durable write, and
// recovery refuses any log whose record count lags the counter.
#ifndef OBLADI_SRC_STORAGE_TRUSTED_COUNTER_H_
#define OBLADI_SRC_STORAGE_TRUSTED_COUNTER_H_

#include <cstdio>
#include <mutex>
#include <string>

#include "src/common/status.h"

namespace obladi {

class TrustedCounter {
 public:
  virtual ~TrustedCounter() = default;
  // Durably advance to `value` (monotonic; lower values are ignored).
  virtual Status Advance(uint64_t value) = 0;
  virtual StatusOr<uint64_t> Read() = 0;
};

// In-memory counter that survives proxy "crashes" (which lose the proxy
// object, not the process) — the moral equivalent of local NVM in tests.
class MemoryTrustedCounter : public TrustedCounter {
 public:
  Status Advance(uint64_t value) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (value > value_) {
      value_ = value;
    }
    return Status::Ok();
  }
  StatusOr<uint64_t> Read() override {
    std::lock_guard<std::mutex> lk(mu_);
    return value_;
  }

 private:
  std::mutex mu_;
  uint64_t value_ = 0;
};

// File-backed counter for cross-process durability.
class FileTrustedCounter : public TrustedCounter {
 public:
  explicit FileTrustedCounter(std::string path) : path_(std::move(path)) {}

  Status Advance(uint64_t value) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto current = ReadLocked();
    if (current.ok() && *current >= value) {
      return Status::Ok();
    }
    FILE* f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr) {
      return Status::Unavailable("cannot open trusted counter file");
    }
    std::fwrite(&value, sizeof(value), 1, f);
    std::fflush(f);
    std::fclose(f);
    return Status::Ok();
  }

  StatusOr<uint64_t> Read() override {
    std::lock_guard<std::mutex> lk(mu_);
    return ReadLocked();
  }

 private:
  StatusOr<uint64_t> ReadLocked() {
    FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) {
      return static_cast<uint64_t>(0);  // never written yet
    }
    uint64_t value = 0;
    size_t n = std::fread(&value, sizeof(value), 1, f);
    std::fclose(f);
    if (n != 1) {
      return Status::DataLoss("trusted counter file corrupt");
    }
    return value;
  }

  std::mutex mu_;
  std::string path_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_STORAGE_TRUSTED_COUNTER_H_
