// Latency-injecting decorators that model the paper's four storage backends
// (§11.2): dummy (0 latency), local server (0.3 ms), WAN server (10 ms), and
// DynamoDB (1 ms reads / 3 ms writes behind a blocking HTTP client pool).
//
// Latencies are injected on the calling thread, so concurrency behaves like a
// real remote store: N outstanding requests overlap if issued from N threads.
// `scale` lets benchmarks shrink all latencies proportionally so runs finish
// quickly while preserving relative shapes; scale=1.0 reproduces the paper's
// absolute latencies.
#ifndef OBLADI_SRC_STORAGE_LATENCY_STORE_H_
#define OBLADI_SRC_STORAGE_LATENCY_STORE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>

#include "src/storage/bucket_store.h"

namespace obladi {

struct LatencyProfile {
  std::string name = "dummy";
  uint64_t read_latency_us = 0;
  uint64_t write_latency_us = 0;
  // Max concurrently-served requests; 0 = unlimited. Models Dynamo's blocking
  // HTTP connection pool, which caps effective parallelism.
  size_t max_inflight = 0;
  // Per-direction link capacity in bytes/second; 0 = unlimited. When set,
  // each transfer reserves bytes/bandwidth of serialized time on that
  // direction's pipe — latency overlaps across concurrent requests,
  // bandwidth does not, exactly like a real (full-duplex) link. Download =
  // server->proxy (responses: slot ciphertexts), upload = proxy->server
  // (requests: bucket images). The directions are modeled separately
  // because they are separate resources in the cloud: egress (download) is
  // the direction providers meter and charge, and it is the one the XOR
  // path reads shrink — bench_xor_read caps it to show what the reduction
  // buys once round trips are already batched.
  uint64_t download_bandwidth_bytes_per_sec = 0;
  uint64_t upload_bandwidth_bytes_per_sec = 0;

  static LatencyProfile Dummy() { return LatencyProfile{"dummy", 0, 0, 0}; }
  static LatencyProfile LocalServer(double scale = 1.0) {
    return LatencyProfile{"server", Scale(300, scale), Scale(300, scale), 0};
  }
  static LatencyProfile WanServer(double scale = 1.0) {
    return LatencyProfile{"server_wan", Scale(10000, scale), Scale(10000, scale), 0};
  }
  static LatencyProfile Dynamo(double scale = 1.0) {
    return LatencyProfile{"dynamo", Scale(1000, scale), Scale(3000, scale), 64};
  }

 private:
  static uint64_t Scale(uint64_t us, double scale) {
    return static_cast<uint64_t>(static_cast<double>(us) * scale);
  }
};

// Request/byte accounting, shared by the latency decorators and the real
// remote stores (src/net/remote_store.h), so a bench can line the simulated
// wire traffic up against what actually crossed a socket.
//
// reads/writes count logical operations (slots read, buckets written);
// round_trips counts network round trips — a batched request is many logical
// operations but one round trip. bytes_read/bytes_written count payload
// bytes (slot ciphertexts, log records), not framing overhead.
//
// bytes_sent/bytes_received are charged at the *wire* layer — whole frames
// including headers and length prefixes, from the client's perspective — by
// the real transports (AsyncNetClient, NetClient) and, as a model, by the
// latency decorators. They are what the bandwidth-capped link meters and
// what bench_xor_read reports, so bandwidth claims are measured on the same
// counter the real socket path charges.
struct NetworkStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> round_trips{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  // Real transport only: connections re-established after a failure.
  std::atomic<uint64_t> reconnects{0};
  // Requests that completed with kDeadlineExceeded (the connection is torn
  // down alongside, so stragglers cannot poison the socket).
  std::atomic<uint64_t> deadline_exceeded{0};
  // Call()-path resubmissions under the retry policy.
  std::atomic<uint64_t> retries{0};
  // Circuit-breaker closed->open (and half-open->open) transitions.
  std::atomic<uint64_t> breaker_open{0};
  // Application-level heartbeat pings sent / heartbeats whose deadline
  // expired (each failure tears the connection down).
  std::atomic<uint64_t> heartbeats_sent{0};
  std::atomic<uint64_t> heartbeat_failures{0};

  void Reset() {
    reads = 0;
    writes = 0;
    round_trips = 0;
    bytes_read = 0;
    bytes_written = 0;
    bytes_sent = 0;
    bytes_received = 0;
    reconnects = 0;
    deadline_exceeded = 0;
    retries = 0;
    breaker_open = 0;
    heartbeats_sent = 0;
    heartbeat_failures = 0;
  }
};

class LatencyBucketStore : public BucketStore {
 public:
  LatencyBucketStore(std::shared_ptr<BucketStore> base, LatencyProfile profile);

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override;
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override;
  // Batched requests pay one round trip per max_inflight-sized wave (one
  // round trip total when in-flight requests are unlimited).
  std::vector<StatusOr<Bytes>> ReadSlotsBatch(const std::vector<SlotRef>& refs) override;
  Status WriteBucketsBatch(std::vector<BucketImage> images) override;
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override;
  // One round trip for the whole GC batch, mirroring kTruncateBucketsBatch.
  Status TruncateBucketsBatch(const std::vector<TruncateRef>& refs) override;
  // Same latency/wave model as ReadSlotsBatch (the server still touches
  // every named slot), but the modeled download shrinks to headers + one
  // body per path — which is the entire point of kReadPathsXor.
  std::vector<StatusOr<PathXorResult>> ReadPathsXor(const std::vector<PathSlots>& paths,
                                                    uint32_t header_bytes,
                                                    uint32_t trailer_bytes) override;
  size_t num_buckets() const override { return base_->num_buckets(); }

  const NetworkStats& stats() const { return stats_; }
  NetworkStats& mutable_stats() { return stats_; }
  NetworkStats* network_stats() override { return &stats_; }
  const LatencyProfile& profile() const { return profile_; }

  // Disable latency injection temporarily (bulk loading in benchmarks).
  void SetBypass(bool bypass) { bypass_.store(bypass, std::memory_order_relaxed); }

 private:
  class InflightGuard;
  void AcquireSlot();
  void ReleaseSlot();
  // Reserve `bytes` of serialized time on one direction of the modeled
  // link (no-op when that direction is uncapped or bypass is on) and sleep
  // it out.
  enum class LinkDir { kUpload, kDownload };
  void ChargeLink(LinkDir dir, size_t bytes);

  std::shared_ptr<BucketStore> base_;
  LatencyProfile profile_;
  NetworkStats stats_;
  std::atomic<bool> bypass_{false};

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;

  // Virtual clocks of the modeled full-duplex pipe: the time at which each
  // direction finishes draining previously reserved transfers.
  std::mutex link_mu_;
  uint64_t up_free_at_us_ = 0;
  uint64_t down_free_at_us_ = 0;
};

class LatencyLogStore : public LogStore {
 public:
  LatencyLogStore(std::shared_ptr<LogStore> base, LatencyProfile profile)
      : base_(std::move(base)), profile_(std::move(profile)) {}

  StatusOr<uint64_t> Append(Bytes record) override;
  Status Sync() override;
  // Fused form: ONE durable round trip instead of Append's + Sync's.
  StatusOr<uint64_t> AppendSync(Bytes record) override;
  StatusOr<std::vector<Bytes>> ReadAll() override;
  Status Truncate(uint64_t upto_lsn) override { return base_->Truncate(upto_lsn); }
  uint64_t NextLsn() const override { return base_->NextLsn(); }

  const NetworkStats& stats() const { return stats_; }
  NetworkStats* network_stats() override { return &stats_; }

 private:
  std::shared_ptr<LogStore> base_;
  LatencyProfile profile_;
  NetworkStats stats_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_STORAGE_LATENCY_STORE_H_
