// File-backed BucketStore: a single append-only file of bucket-image and
// truncate records plus an in-memory offset index rebuilt by scanning on
// open. Shadow paging maps naturally onto an append-only layout — every
// WriteBucket is a new record, reads pread() straight from the indexed
// offset, and reopening the same path after a storage-node restart recovers
// exactly the versions that reached the file (a torn tail from a mid-write
// crash is cut off, mirroring FileLogStore's tolerant scan).
//
// TruncateBucket drops versions from the index and logs a truncate record so
// the drop survives reopen; file space is not reclaimed (the nemesis and
// conformance workloads are bounded, and compaction is a non-goal here).
//
// File format v2 stamps a magic+version header on fresh files and appends a
// CRC32 after every record, so the open-time scan can distinguish a *torn*
// tail (crash mid-append; cut off and repaired, as before) from a
// *corrupted* record (all bytes present, checksum wrong; the store fails
// closed with DataLoss). Headerless v1 files remain readable and keep v1
// framing for their own appends.
#ifndef OBLADI_SRC_STORAGE_FILE_BUCKET_STORE_H_
#define OBLADI_SRC_STORAGE_FILE_BUCKET_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/bucket_store.h"

namespace obladi {

class FileBucketStore : public BucketStore {
 public:
  // Opens (creating if needed) the store file at `path` and scans it to
  // rebuild the version index. `sync_writes` fsyncs after every append —
  // the restart tests survive process lifetimes either way, so it defaults
  // off to keep the nemesis fast.
  FileBucketStore(std::string path, size_t num_buckets, size_t slots_per_bucket,
                  bool sync_writes = false);
  ~FileBucketStore() override;

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override;
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override;
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override;
  size_t num_buckets() const override { return num_buckets_; }

  // Test hooks.
  size_t TotalVersions() const;
  uint64_t FileBytes() const;
  // 1 = legacy headerless/no-CRC layout, 2 = current checksummed layout.
  uint32_t FileFormatVersion() const;

 private:
  struct SlotLocation {
    uint64_t offset = 0;
    uint32_t length = 0;
  };
  // version -> per-slot file locations. Ordered so truncation erases a prefix.
  using VersionIndex = std::map<uint32_t, std::vector<SlotLocation>>;

  Status ScanFile();
  // Appends the record's CRC trailer (v2 files) and writes it out.
  Status AppendRecord(std::vector<uint8_t>& record);

  const std::string path_;
  const size_t num_buckets_;
  const size_t slots_per_bucket_;
  const bool sync_writes_;

  mutable std::mutex mu_;
  int fd_ = -1;
  Status open_status_;        // non-OK when the file could not be opened/scanned
  uint64_t end_offset_ = 0;   // append position (file size after tail repair)
  uint32_t file_version_ = 2;
  std::vector<VersionIndex> buckets_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_STORAGE_FILE_BUCKET_STORE_H_
