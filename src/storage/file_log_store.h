// File-backed LogStore: length-prefixed records appended to a single file,
// fsync'd on Sync(). Used by the durability examples and crash tests that
// survive process boundaries; the in-memory variant is used elsewhere.
#ifndef OBLADI_SRC_STORAGE_FILE_LOG_STORE_H_
#define OBLADI_SRC_STORAGE_FILE_LOG_STORE_H_

#include <cstdio>
#include <mutex>
#include <string>

#include "src/storage/bucket_store.h"

namespace obladi {

class FileLogStore : public LogStore {
 public:
  // Opens (creating if needed) the log file at `path` and scans it to find
  // the next LSN.
  explicit FileLogStore(std::string path);
  ~FileLogStore() override;

  StatusOr<uint64_t> Append(Bytes record) override;
  Status Sync() override;
  StatusOr<std::vector<Bytes>> ReadAll() override;
  Status Truncate(uint64_t upto_lsn) override;
  uint64_t NextLsn() const override;

 private:
  Status RewriteFromRecords(const std::vector<std::pair<uint64_t, Bytes>>& records);
  StatusOr<std::vector<std::pair<uint64_t, Bytes>>> ScanAll();

  std::string path_;
  mutable std::mutex mu_;
  FILE* file_ = nullptr;
  uint64_t next_lsn_ = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_STORAGE_FILE_LOG_STORE_H_
