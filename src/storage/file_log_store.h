// File-backed LogStore: length-prefixed records appended to a single file,
// fsync'd on Sync(). Used by the durability examples and crash tests that
// survive process boundaries; the in-memory variant is used elsewhere.
//
// File format v2 stamps a magic+version header on fresh files and a CRC32
// after every record, letting the scan distinguish a *torn* tail (crash
// mid-append; truncated away on open) from a *corrupted* record (checksum
// mismatch; ReadAll fails closed with DataLoss so recovery never replays a
// silently shortened log, and the open latches the error so Append/Sync
// refuse to write behind the corrupt region). Headerless v1 files remain
// readable; a Truncate() rewrite upgrades them to v2.
#ifndef OBLADI_SRC_STORAGE_FILE_LOG_STORE_H_
#define OBLADI_SRC_STORAGE_FILE_LOG_STORE_H_

#include <cstdio>
#include <mutex>
#include <string>

#include "src/storage/bucket_store.h"

namespace obladi {

class FileLogStore : public LogStore {
 public:
  // Opens (creating if needed) the log file at `path` and scans it to find
  // the next LSN.
  explicit FileLogStore(std::string path);
  ~FileLogStore() override;

  StatusOr<uint64_t> Append(Bytes record) override;
  Status Sync() override;
  StatusOr<std::vector<Bytes>> ReadAll() override;
  Status Truncate(uint64_t upto_lsn) override;
  uint64_t NextLsn() const override;

  // Test hook: 1 = legacy no-CRC layout, 2 = current checksummed layout.
  uint32_t FileFormatVersion() const;

 private:
  Status RewriteFromRecords(const std::vector<std::pair<uint64_t, Bytes>>& records);
  // Parses every intact record; `good_end_out` (optional) receives the file
  // offset just past the last intact record (the torn-tail repair point).
  StatusOr<std::vector<std::pair<uint64_t, Bytes>>> ScanAll(uint64_t* good_end_out = nullptr);

  std::string path_;
  mutable std::mutex mu_;
  FILE* file_ = nullptr;
  // Latched when the open-time scan fails (CRC-corrupt record, unsupported
  // version): next_lsn_ is unknown, so Append/Sync fail closed with this
  // status instead of writing duplicate LSNs behind the corrupt region.
  Status open_error_ = Status::Ok();
  uint64_t next_lsn_ = 0;
  uint32_t file_version_ = 2;
};

}  // namespace obladi

#endif  // OBLADI_SRC_STORAGE_FILE_LOG_STORE_H_
