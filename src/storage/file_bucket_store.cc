#include "src/storage/file_bucket_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "src/common/crc32.h"

namespace obladi {

namespace {

constexpr uint8_t kRecordWrite = 1;
constexpr uint8_t kRecordTruncate = 2;

// Format v2 header: magic + version, then records each followed by a CRC32
// of the record bytes. Headerless files are v1 (the pre-checksum layout):
// their first byte is a record type (1 or 2), never 'O', so the formats are
// distinguishable and old files stay readable (and are appended to in v1
// framing, keeping one file internally consistent).
constexpr uint8_t kMagic[4] = {'O', 'B', 'K', 'T'};
constexpr uint32_t kFormatV2 = 2;
constexpr size_t kHeaderBytes = 8;
constexpr size_t kCrcBytes = 4;

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

FileBucketStore::FileBucketStore(std::string path, size_t num_buckets,
                                 size_t slots_per_bucket, bool sync_writes)
    : path_(std::move(path)),
      num_buckets_(num_buckets),
      slots_per_bucket_(slots_per_bucket),
      sync_writes_(sync_writes),
      buckets_(num_buckets) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    open_status_ = Status::Unavailable("cannot open bucket store file: " + path_);
    return;
  }
  open_status_ = ScanFile();
}

FileBucketStore::~FileBucketStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status FileBucketStore::ScanFile() {
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::Unavailable("cannot stat bucket store file: " + path_);
  }
  std::vector<uint8_t> data(static_cast<size_t>(size));
  if (!data.empty()) {
    ssize_t got = ::pread(fd_, data.data(), data.size(), 0);
    if (got != static_cast<ssize_t>(data.size())) {
      return Status::Unavailable("short read scanning bucket store file: " + path_);
    }
  }
  size_t pos = 0;
  if (data.empty()) {
    // Fresh file: stamp the v2 header so every record it ever holds is
    // checksummed.
    file_version_ = kFormatV2;
    std::vector<uint8_t> header(kMagic, kMagic + 4);
    PutU32(header, kFormatV2);
    if (::pwrite(fd_, header.data(), header.size(), 0) !=
        static_cast<ssize_t>(header.size())) {
      return Status::Unavailable("cannot write header of " + path_);
    }
    end_offset_ = kHeaderBytes;
    return Status::Ok();
  }
  if (data.size() >= kHeaderBytes && std::memcmp(data.data(), kMagic, 4) == 0) {
    uint32_t version = GetU32(&data[4]);
    if (version != kFormatV2) {
      return Status::DataLoss("unsupported bucket store format version " +
                              std::to_string(version) + " in " + path_);
    }
    file_version_ = kFormatV2;
    pos = kHeaderBytes;
  } else {
    file_version_ = 1;  // legacy headerless file: records carry no CRC
  }
  const size_t trailer = file_version_ >= kFormatV2 ? kCrcBytes : 0;
  uint64_t good_end = pos;
  while (pos < data.size()) {
    const size_t start = pos;
    uint8_t type = data[pos++];
    if (type == kRecordWrite) {
      if (pos + 12 > data.size()) {
        break;  // torn tail
      }
      uint32_t bucket = GetU32(&data[pos]);
      uint32_t version = GetU32(&data[pos + 4]);
      uint32_t nslots = GetU32(&data[pos + 8]);
      pos += 12;
      if (bucket >= num_buckets_ || nslots != slots_per_bucket_) {
        return Status::DataLoss("corrupt bucket store record in " + path_);
      }
      std::vector<SlotLocation> slots;
      slots.reserve(nslots);
      bool torn = false;
      for (uint32_t s = 0; s < nslots; ++s) {
        if (pos + 4 > data.size()) {
          torn = true;
          break;
        }
        uint32_t len = GetU32(&data[pos]);
        pos += 4;
        if (pos + len > data.size()) {
          torn = true;
          break;
        }
        slots.push_back({static_cast<uint64_t>(pos), len});
        pos += len;
      }
      if (!torn && pos + trailer > data.size()) {
        torn = true;
      }
      if (torn) {
        pos = start;
        break;
      }
      if (trailer > 0) {
        uint32_t want = GetU32(&data[pos]);
        uint32_t got = Crc32(&data[start], pos - start);
        pos += kCrcBytes;
        if (want != got) {
          // Every byte of the record is present but the checksum disagrees:
          // this is corruption, not a crash-torn append — refuse the store.
          return Status::DataLoss(
              "bucket store record CRC mismatch at offset " + std::to_string(start) +
              " in " + path_ + " (corrupted record, not a torn tail)");
        }
      }
      buckets_[bucket][version] = std::move(slots);
      good_end = pos;
    } else if (type == kRecordTruncate) {
      if (pos + 8 + trailer > data.size()) {
        break;  // torn tail
      }
      uint32_t bucket = GetU32(&data[pos]);
      uint32_t keep_from = GetU32(&data[pos + 4]);
      pos += 8;
      if (trailer > 0) {
        uint32_t want = GetU32(&data[pos]);
        uint32_t got = Crc32(&data[start], pos - start);
        pos += kCrcBytes;
        if (want != got) {
          return Status::DataLoss(
              "bucket store record CRC mismatch at offset " + std::to_string(start) +
              " in " + path_ + " (corrupted record, not a torn tail)");
        }
      }
      if (bucket >= num_buckets_) {
        return Status::DataLoss("corrupt bucket store record in " + path_);
      }
      VersionIndex& versions = buckets_[bucket];
      versions.erase(versions.begin(), versions.lower_bound(keep_from));
      good_end = pos;
    } else {
      return Status::DataLoss("unknown bucket store record type in " + path_);
    }
  }
  // Cut off a torn tail so future appends cannot leave stale bytes that a
  // later scan would misparse.
  if (good_end < data.size() && ::ftruncate(fd_, static_cast<off_t>(good_end)) != 0) {
    return Status::Unavailable("cannot repair torn tail of " + path_);
  }
  end_offset_ = good_end;
  return Status::Ok();
}

Status FileBucketStore::AppendRecord(std::vector<uint8_t>& record) {
  if (file_version_ >= kFormatV2) {
    PutU32(record, Crc32(record.data(), record.size()));
  }
  ssize_t put = ::pwrite(fd_, record.data(), record.size(),
                         static_cast<off_t>(end_offset_));
  if (put != static_cast<ssize_t>(record.size())) {
    return Status::Unavailable("short write to bucket store file: " + path_);
  }
  if (sync_writes_ && ::fsync(fd_) != 0) {
    return Status::Unavailable("fsync failed on bucket store file: " + path_);
  }
  end_offset_ += record.size();
  return Status::Ok();
}

StatusOr<Bytes> FileBucketStore::ReadSlot(BucketIndex bucket, uint32_t version,
                                          SlotIndex slot) {
  if (bucket >= num_buckets_ || slot >= slots_per_bucket_) {
    return Status::InvalidArgument("slot address out of range");
  }
  SlotLocation loc;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!open_status_.ok()) {
      return open_status_;
    }
    const VersionIndex& versions = buckets_[bucket];
    auto it = versions.find(version);
    if (it == versions.end()) {
      return Status::NotFound("bucket version not present");
    }
    loc = it->second[slot];
  }
  // pread is position-independent and thread-safe: the actual I/O runs
  // outside the index lock.
  Bytes out(loc.length);
  if (loc.length > 0) {
    ssize_t got = ::pread(fd_, out.data(), out.size(), static_cast<off_t>(loc.offset));
    if (got != static_cast<ssize_t>(out.size())) {
      return Status::DataLoss("short read from bucket store file: " + path_);
    }
  }
  return out;
}

Status FileBucketStore::WriteBucket(BucketIndex bucket, uint32_t version,
                                    std::vector<Bytes> slots) {
  if (bucket >= num_buckets_) {
    return Status::InvalidArgument("bucket out of range");
  }
  if (slots.size() != slots_per_bucket_) {
    return Status::InvalidArgument("bucket image has wrong slot count");
  }
  std::vector<uint8_t> record;
  size_t payload = 0;
  for (const Bytes& s : slots) {
    payload += 4 + s.size();
  }
  record.reserve(13 + payload + kCrcBytes);
  record.push_back(kRecordWrite);
  PutU32(record, bucket);
  PutU32(record, version);
  PutU32(record, static_cast<uint32_t>(slots.size()));
  std::vector<SlotLocation> locations;
  locations.reserve(slots.size());
  std::lock_guard<std::mutex> lk(mu_);
  if (!open_status_.ok()) {
    return open_status_;
  }
  for (const Bytes& s : slots) {
    PutU32(record, static_cast<uint32_t>(s.size()));
    locations.push_back(
        {end_offset_ + record.size(), static_cast<uint32_t>(s.size())});
    record.insert(record.end(), s.begin(), s.end());
  }
  OBLADI_RETURN_IF_ERROR(AppendRecord(record));
  buckets_[bucket][version] = std::move(locations);  // overwrite = replay
  return Status::Ok();
}

Status FileBucketStore::TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) {
  if (bucket >= num_buckets_) {
    return Status::InvalidArgument("bucket out of range");
  }
  std::vector<uint8_t> record;
  record.reserve(9 + kCrcBytes);
  record.push_back(kRecordTruncate);
  PutU32(record, bucket);
  PutU32(record, keep_from_version);
  std::lock_guard<std::mutex> lk(mu_);
  if (!open_status_.ok()) {
    return open_status_;
  }
  OBLADI_RETURN_IF_ERROR(AppendRecord(record));
  VersionIndex& versions = buckets_[bucket];
  versions.erase(versions.begin(), versions.lower_bound(keep_from_version));
  return Status::Ok();
}

size_t FileBucketStore::TotalVersions() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t total = 0;
  for (const VersionIndex& versions : buckets_) {
    total += versions.size();
  }
  return total;
}

uint64_t FileBucketStore::FileBytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return end_offset_;
}

uint32_t FileBucketStore::FileFormatVersion() const {
  std::lock_guard<std::mutex> lk(mu_);
  return file_version_;
}

}  // namespace obladi
