// Interfaces to the untrusted cloud storage.
//
// The ORAM tree lives in a BucketStore: a heap-ordered array of buckets, each
// holding Z+S fixed-size slot ciphertexts. Writes are shadow-paged (§8): every
// bucket write creates a new *version* instead of updating in place, and the
// version number of a bucket is a deterministic function of the number of
// prior evict-path operations, which lets recovery revert to the last
// committed epoch by simply reading buckets at their committed versions.
//
// The recovery unit's write-ahead log lives in a LogStore.
#ifndef OBLADI_SRC_STORAGE_BUCKET_STORE_H_
#define OBLADI_SRC_STORAGE_BUCKET_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace obladi {

struct SlotAddress {
  BucketIndex bucket = 0;
  SlotIndex slot = 0;

  bool operator==(const SlotAddress&) const = default;
};

struct SlotRef {
  BucketIndex bucket = 0;
  uint32_t version = 0;
  SlotIndex slot = 0;
};

struct BucketImage {
  BucketIndex bucket = 0;
  uint32_t version = 0;
  std::vector<Bytes> slots;
};

struct TruncateRef {
  BucketIndex bucket = 0;
  uint32_t keep_from_version = 0;
};

class BucketStore {
 public:
  virtual ~BucketStore() = default;

  // Read one slot ciphertext of the given bucket version.
  virtual StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) = 0;

  // Write a complete bucket (all slot ciphertexts) as the given version.
  // Writing an existing version overwrites it (recovery replays do this).
  virtual Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) = 0;

  // Batched forms: one request carrying many independent slot reads / bucket
  // writes, as a real remote store's batched RPC would. Latency decorators
  // charge round trips per *request*, which is what lets the parallel ORAM
  // overlap an entire batch's I/O (§7). Defaults loop over the unary forms.
  virtual std::vector<StatusOr<Bytes>> ReadSlotsBatch(const std::vector<SlotRef>& refs) {
    std::vector<StatusOr<Bytes>> out;
    out.reserve(refs.size());
    for (const SlotRef& ref : refs) {
      out.push_back(ReadSlot(ref.bucket, ref.version, ref.slot));
    }
    return out;
  }
  virtual Status WriteBucketsBatch(std::vector<BucketImage> images) {
    for (auto& image : images) {
      OBLADI_RETURN_IF_ERROR(WriteBucket(image.bucket, image.version, std::move(image.slots)));
    }
    return Status::Ok();
  }

  // Garbage-collect versions strictly below `keep_from_version`. Called after
  // an epoch commits: only the committed version (and newer) must survive.
  virtual Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) = 0;

  // Batched GC: truncate many buckets in one request, so an epoch's
  // shadow-paging cleanup is one round trip per shard instead of one per
  // bucket. Default loops over the unary form.
  virtual Status TruncateBucketsBatch(const std::vector<TruncateRef>& refs) {
    for (const TruncateRef& ref : refs) {
      OBLADI_RETURN_IF_ERROR(TruncateBucket(ref.bucket, ref.keep_from_version));
    }
    return Status::Ok();
  }

  // --- asynchronous batched forms -----------------------------------------
  //
  // A store whose I/O is completion-driven (the remote stores over the epoll
  // event loop) answers true and implements the *Async entry points as real
  // submissions: the call returns once the request is queued on the wire and
  // `done` fires from the transport's completion path when the response
  // lands. Callers that overlap many batches (the parallel ORAM's epoch
  // pipeline) submit them all and wait on one completion set, instead of
  // parking one blocked thread per in-flight request.
  //
  // The defaults execute synchronously and invoke `done` inline on the
  // calling thread, so callers MUST check SupportsAsyncBatches() before
  // relying on submission being non-blocking. `done` may fire on an internal
  // transport thread: keep it cheap and hand heavy work (decryption) to a
  // worker pool.
  using ReadSlotsDone = std::function<void(std::vector<StatusOr<Bytes>>)>;
  using WriteBucketsDone = std::function<void(Status)>;

  virtual bool SupportsAsyncBatches() const { return false; }
  virtual void ReadSlotsBatchAsync(std::vector<SlotRef> refs, ReadSlotsDone done) {
    done(ReadSlotsBatch(refs));
  }
  virtual void WriteBucketsBatchAsync(std::vector<BucketImage> images, WriteBucketsDone done) {
    done(WriteBucketsBatch(std::move(images)));
  }

  virtual size_t num_buckets() const = 0;
};

// Append-only durable log used by the recovery unit (§8).
class LogStore {
 public:
  virtual ~LogStore() = default;

  // Append a record; returns its log sequence number.
  virtual StatusOr<uint64_t> Append(Bytes record) = 0;

  // Force all appended records to durable storage.
  virtual Status Sync() = 0;

  // Read every record in append order (recovery).
  virtual StatusOr<std::vector<Bytes>> ReadAll() = 0;

  // Drop records with LSN < upto (after a full checkpoint supersedes them).
  virtual Status Truncate(uint64_t upto_lsn) = 0;

  virtual uint64_t NextLsn() const = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_STORAGE_BUCKET_STORE_H_
