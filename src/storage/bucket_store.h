// Interfaces to the untrusted cloud storage.
//
// The ORAM tree lives in a BucketStore: a heap-ordered array of buckets, each
// holding Z+S fixed-size slot ciphertexts. Writes are shadow-paged (§8): every
// bucket write creates a new *version* instead of updating in place, and the
// version number of a bucket is a deterministic function of the number of
// prior evict-path operations, which lets recovery revert to the last
// committed epoch by simply reading buckets at their committed versions.
//
// The recovery unit's write-ahead log lives in a LogStore.
#ifndef OBLADI_SRC_STORAGE_BUCKET_STORE_H_
#define OBLADI_SRC_STORAGE_BUCKET_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace obladi {

struct NetworkStats;  // src/storage/latency_store.h

// --- replication ------------------------------------------------------------
// Health of one replica behind a replicated store (src/net/replicated_store).
enum class ReplicaHealth : uint8_t {
  kCurrent = 0,  // serving; holds every acknowledged write
  kLagging = 1,  // fell behind (unreachable or failed a write); resync pending
  kDead = 2,     // excluded: cannot be caught up (LSN misalignment / overflow)
};

inline const char* ReplicaHealthName(ReplicaHealth h) {
  switch (h) {
    case ReplicaHealth::kCurrent: return "current";
    case ReplicaHealth::kLagging: return "lagging";
    case ReplicaHealth::kDead: return "dead";
  }
  return "unknown";
}

struct ReplicaInfo {
  uint32_t index = 0;
  bool primary = false;
  ReplicaHealth health = ReplicaHealth::kCurrent;
  // Epochs retired since this replica fell behind (0 when current).
  uint64_t lag_epochs = 0;
  // Transport counters of the replica's own store, when it has any.
  NetworkStats* stats = nullptr;
};

struct ReplicationStats {
  uint64_t failovers = 0;      // primary moves forced by read-path failures
  uint64_t resyncs = 0;        // completed catch-up passes
  uint64_t resync_epochs = 0;  // cumulative epochs of lag cleared by resyncs
  // Bumps on every topology change (failover, demote, promote): consumers
  // whose per-replica baselines become stale across a change (the trace
  // watchdog's wire-byte bands) key re-referencing off this.
  uint64_t generation = 0;
  std::vector<ReplicaInfo> replicas;  // empty for unreplicated stores
};

struct SlotAddress {
  BucketIndex bucket = 0;
  SlotIndex slot = 0;

  bool operator==(const SlotAddress&) const = default;
};

struct SlotRef {
  BucketIndex bucket = 0;
  uint32_t version = 0;
  SlotIndex slot = 0;
};

struct BucketImage {
  BucketIndex bucket = 0;
  uint32_t version = 0;
  std::vector<Bytes> slots;
};

struct TruncateRef {
  BucketIndex bucket = 0;
  uint32_t keep_from_version = 0;
};

// One XOR path read: the slot refs of a single ORAM path access. The server
// answers with every slot's header/trailer bytes verbatim plus the XOR of
// the ciphertext *bodies* — Ring ORAM's XOR technique. The client knows all
// but (at most) one of the touched slots hold deterministic dummy
// plaintexts, so it regenerates those bodies from the returned nonces, XORs
// them back out, and recovers the one real ciphertext — downloading one
// body instead of |slots| of them.
struct PathSlots {
  std::vector<SlotRef> slots;
};

struct PathXorResult {
  // Per slot, in request order: the first header_bytes of the ciphertext
  // followed by its last trailer_bytes (nonce and MAC tag, for the ORAM's
  // encryption format), concatenated into one flat buffer of
  // slots.size() * (header_bytes + trailer_bytes) bytes.
  Bytes headers;
  // XOR of the ciphertext bodies (the bytes between header and trailer).
  // All bodies in one path must have equal length or the path fails.
  Bytes body_xor;
};

class BucketStore {
 public:
  virtual ~BucketStore() = default;

  // Read one slot ciphertext of the given bucket version.
  virtual StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) = 0;

  // Write a complete bucket (all slot ciphertexts) as the given version.
  // Writing an existing version overwrites it (recovery replays do this).
  virtual Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) = 0;

  // Batched forms: one request carrying many independent slot reads / bucket
  // writes, as a real remote store's batched RPC would. Latency decorators
  // charge round trips per *request*, which is what lets the parallel ORAM
  // overlap an entire batch's I/O (§7). Defaults loop over the unary forms.
  virtual std::vector<StatusOr<Bytes>> ReadSlotsBatch(const std::vector<SlotRef>& refs) {
    std::vector<StatusOr<Bytes>> out;
    out.reserve(refs.size());
    for (const SlotRef& ref : refs) {
      out.push_back(ReadSlot(ref.bucket, ref.version, ref.slot));
    }
    return out;
  }
  virtual Status WriteBucketsBatch(std::vector<BucketImage> images) {
    for (auto& image : images) {
      OBLADI_RETURN_IF_ERROR(WriteBucket(image.bucket, image.version, std::move(image.slots)));
    }
    return Status::Ok();
  }

  // Garbage-collect versions strictly below `keep_from_version`. Called after
  // an epoch commits: only the committed version (and newer) must survive.
  virtual Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) = 0;

  // Batched GC: truncate many buckets in one request, so an epoch's
  // shadow-paging cleanup is one round trip per shard instead of one per
  // bucket. Default loops over the unary form.
  virtual Status TruncateBucketsBatch(const std::vector<TruncateRef>& refs) {
    for (const TruncateRef& ref : refs) {
      OBLADI_RETURN_IF_ERROR(TruncateBucket(ref.bucket, ref.keep_from_version));
    }
    return Status::Ok();
  }

  // XOR path reads: one request carrying many independent path reads; per
  // path the reply is the slots' header/trailer bytes plus the XOR of the
  // bodies (see PathSlots). The server-visible touch pattern is identical to
  // reading every named slot individually — only the reply shrinks. The
  // default computes the reduction locally over the unary reads, so every
  // store supports the operation; remote stores override it with the real
  // single-round-trip RPC, which is where the bandwidth saving is physical.
  virtual std::vector<StatusOr<PathXorResult>> ReadPathsXor(const std::vector<PathSlots>& paths,
                                                            uint32_t header_bytes,
                                                            uint32_t trailer_bytes) {
    std::vector<StatusOr<PathXorResult>> out;
    out.reserve(paths.size());
    for (const PathSlots& path : paths) {
      out.push_back(XorCombineSlots(ReadSlotsBatch(path.slots), header_bytes, trailer_bytes));
    }
    return out;
  }

  // Fold one path's slot ciphertexts into a PathXorResult (shared by the
  // default above, the storage server, and the latency decorator). header/
  // trailer sizes come off the wire untrusted, so nothing here allocates
  // proportionally to them — the headers buffer only ever grows by bytes
  // that exist in actual slots, and an edge larger than a slot fails first.
  static StatusOr<PathXorResult> XorCombineSlots(const std::vector<StatusOr<Bytes>>& slots,
                                                 uint32_t header_bytes, uint32_t trailer_bytes) {
    PathXorResult result;
    const size_t edge = static_cast<size_t>(header_bytes) + trailer_bytes;
    bool first = true;
    for (const StatusOr<Bytes>& slot : slots) {
      if (!slot.ok()) {
        return slot.status();
      }
      if (slot->size() < edge) {
        return Status::InvalidArgument("slot ciphertext shorter than header + trailer");
      }
      size_t body_len = slot->size() - edge;
      if (first) {
        result.body_xor.resize(body_len);
        first = false;
      }
      if (body_len != result.body_xor.size()) {
        return Status::InvalidArgument("slot ciphertext sizes differ within one path");
      }
      result.headers.insert(result.headers.end(), slot->begin(), slot->begin() + header_bytes);
      result.headers.insert(result.headers.end(), slot->end() - trailer_bytes, slot->end());
      for (size_t i = 0; i < body_len; ++i) {
        result.body_xor[i] ^= (*slot)[header_bytes + i];
      }
    }
    return result;
  }

  // --- asynchronous batched forms -----------------------------------------
  //
  // A store whose I/O is completion-driven (the remote stores over the epoll
  // event loop) answers true and implements the *Async entry points as real
  // submissions: the call returns once the request is queued on the wire and
  // `done` fires from the transport's completion path when the response
  // lands. Callers that overlap many batches (the parallel ORAM's epoch
  // pipeline) submit them all and wait on one completion set, instead of
  // parking one blocked thread per in-flight request.
  //
  // The defaults execute synchronously and invoke `done` inline on the
  // calling thread, so callers MUST check SupportsAsyncBatches() before
  // relying on submission being non-blocking. `done` may fire on an internal
  // transport thread: keep it cheap and hand heavy work (decryption) to a
  // worker pool.
  using ReadSlotsDone = std::function<void(std::vector<StatusOr<Bytes>>)>;
  using WriteBucketsDone = std::function<void(Status)>;
  using ReadPathsXorDone = std::function<void(std::vector<StatusOr<PathXorResult>>)>;

  virtual bool SupportsAsyncBatches() const { return false; }
  virtual void ReadSlotsBatchAsync(std::vector<SlotRef> refs, ReadSlotsDone done) {
    done(ReadSlotsBatch(refs));
  }
  virtual void WriteBucketsBatchAsync(std::vector<BucketImage> images, WriteBucketsDone done) {
    done(WriteBucketsBatch(std::move(images)));
  }
  virtual void ReadPathsXorAsync(std::vector<PathSlots> paths, uint32_t header_bytes,
                                 uint32_t trailer_bytes, ReadPathsXorDone done) {
    done(ReadPathsXor(paths, header_bytes, trailer_bytes));
  }

  virtual size_t num_buckets() const = 0;

  // Transport/link counters of the store, when it has any (remote stores,
  // latency decorators). Lets the proxy export deadline/retry/breaker
  // metrics without knowing which concrete store it was built over.
  // In-memory stores return nullptr.
  virtual NetworkStats* network_stats() { return nullptr; }

  // --- replication hooks ----------------------------------------------------
  // No-ops on unreplicated stores; ReplicatedBucketStore overrides all three.
  // Replica-set health and counters (empty `replicas` when unreplicated).
  virtual ReplicationStats replication_stats() { return {}; }
  // The proxy's retire loop reports each retired epoch so lag is measured in
  // epochs (the unit catch-up replays in), not wall time.
  virtual void NoteEpochRetired(EpochId epoch) { (void)epoch; }
  // Attempt one catch-up pass over lagging replicas (epoch-replay resync).
  // Safe to call when nothing lags; returns the first replay error.
  virtual Status TryHealReplicas() { return Status::Ok(); }
};

// Append-only durable log used by the recovery unit (§8).
class LogStore {
 public:
  virtual ~LogStore() = default;

  // Append a record; returns its log sequence number.
  virtual StatusOr<uint64_t> Append(Bytes record) = 0;

  // Force all appended records to durable storage.
  virtual Status Sync() = 0;

  // Fused append + sync: the record is durable when this returns. Remote
  // logs implement it as ONE round trip (kLogAppendSync), halving the
  // latency a plan/checkpoint record puts on the batch critical path; the
  // default composes the two unary calls. Like Append over a network, the
  // fused form is at-most-once: a transport failure leaves the record's
  // fate unknown.
  virtual StatusOr<uint64_t> AppendSync(Bytes record) {
    auto lsn = Append(std::move(record));
    if (!lsn.ok()) {
      return lsn;
    }
    OBLADI_RETURN_IF_ERROR(Sync());
    return lsn;
  }

  // Read every record in append order (recovery).
  virtual StatusOr<std::vector<Bytes>> ReadAll() = 0;

  // Drop records with LSN < upto (after a full checkpoint supersedes them).
  virtual Status Truncate(uint64_t upto_lsn) = 0;

  virtual uint64_t NextLsn() const = 0;

  // See BucketStore::network_stats().
  virtual NetworkStats* network_stats() { return nullptr; }

  // See the BucketStore replication hooks; ReplicatedLogStore overrides.
  virtual ReplicationStats replication_stats() { return {}; }
  virtual void NoteEpochRetired(EpochId epoch) { (void)epoch; }
  virtual Status TryHealReplicas() { return Status::Ok(); }
};

}  // namespace obladi

#endif  // OBLADI_SRC_STORAGE_BUCKET_STORE_H_
