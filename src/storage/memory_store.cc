#include "src/storage/memory_store.h"

namespace obladi {

MemoryBucketStore::MemoryBucketStore(size_t num_buckets, size_t slots_per_bucket,
                                     size_t max_versions)
    : buckets_(num_buckets), slots_per_bucket_(slots_per_bucket), max_versions_(max_versions) {}

StatusOr<Bytes> MemoryBucketStore::ReadSlot(BucketIndex bucket, uint32_t version,
                                            SlotIndex slot) {
  if (bucket >= buckets_.size() || slot >= slots_per_bucket_) {
    return Status::InvalidArgument("slot address out of range");
  }
  std::lock_guard<std::mutex> lk(locks_[bucket % kStripes]);
  const auto& versions = buckets_[bucket].versions;
  auto it = versions.find(version);
  if (it == versions.end()) {
    return Status::NotFound("bucket version not present");
  }
  return it->second[slot];
}

Status MemoryBucketStore::WriteBucket(BucketIndex bucket, uint32_t version,
                                      std::vector<Bytes> slots) {
  if (bucket >= buckets_.size()) {
    return Status::InvalidArgument("bucket out of range");
  }
  if (slots.size() != slots_per_bucket_) {
    return Status::InvalidArgument("bucket image has wrong slot count");
  }
  std::lock_guard<std::mutex> lk(locks_[bucket % kStripes]);
  auto& versions = buckets_[bucket].versions;
  versions[version] = std::move(slots);
  if (max_versions_ > 0) {
    while (versions.size() > max_versions_) {
      versions.erase(versions.begin());
    }
  }
  return Status::Ok();
}

Status MemoryBucketStore::TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) {
  if (bucket >= buckets_.size()) {
    return Status::InvalidArgument("bucket out of range");
  }
  std::lock_guard<std::mutex> lk(locks_[bucket % kStripes]);
  auto& versions = buckets_[bucket].versions;
  versions.erase(versions.begin(), versions.lower_bound(keep_from_version));
  return Status::Ok();
}

size_t MemoryBucketStore::TotalVersions() const {
  size_t total = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    std::lock_guard<std::mutex> lk(locks_[b % kStripes]);
    total += buckets_[b].versions.size();
  }
  return total;
}

StatusOr<uint64_t> MemoryLogStore::Append(Bytes record) {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t lsn = next_lsn_++;
  records_.emplace_back(lsn, std::move(record));
  return lsn;
}

Status MemoryLogStore::Sync() {
  std::lock_guard<std::mutex> lk(mu_);
  ++sync_count_;
  return Status::Ok();
}

StatusOr<std::vector<Bytes>> MemoryLogStore::ReadAll() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Bytes> out;
  out.reserve(records_.size());
  for (const auto& [lsn, rec] : records_) {
    out.push_back(rec);
  }
  return out;
}

Status MemoryLogStore::Truncate(uint64_t upto_lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  size_t keep_from = 0;
  while (keep_from < records_.size() && records_[keep_from].first < upto_lsn) {
    ++keep_from;
  }
  records_.erase(records_.begin(), records_.begin() + static_cast<ptrdiff_t>(keep_from));
  return Status::Ok();
}

uint64_t MemoryLogStore::NextLsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_;
}

size_t MemoryLogStore::SyncCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sync_count_;
}

}  // namespace obladi
