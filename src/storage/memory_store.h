// In-memory implementations of the storage interfaces.
//
// MemoryBucketStore keeps, per bucket, a short version history (shadow
// paging). To bound memory for large trees it stores only the slots that were
// actually written; buckets are written whole, so this is simply the bucket
// image per version.
//
// DummyBucketStore models the paper's "dummy" backend: it stores nothing,
// answers every read with a static ciphertext-sized value, and ignores
// writes. The ORAM's control flow is entirely client-metadata-driven, so it
// runs correctly on top of it (values read back are garbage, which the
// microbenchmarks do not inspect).
#ifndef OBLADI_SRC_STORAGE_MEMORY_STORE_H_
#define OBLADI_SRC_STORAGE_MEMORY_STORE_H_

#include <map>
#include <mutex>
#include <vector>

#include "src/storage/bucket_store.h"

namespace obladi {

class MemoryBucketStore : public BucketStore {
 public:
  // max_versions > 0 bounds the retained version history per bucket (oldest
  // dropped on write). Two versions suffice when at most one epoch is ever
  // uncommitted; 0 keeps everything until explicit truncation.
  MemoryBucketStore(size_t num_buckets, size_t slots_per_bucket, size_t max_versions = 0);

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override;
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override;
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override;
  size_t num_buckets() const override { return buckets_.size(); }

  // Test hook: total retained bucket versions across the store.
  size_t TotalVersions() const;

 private:
  struct BucketVersions {
    // version -> full bucket image. Ordered so Truncate can erase a prefix.
    std::map<uint32_t, std::vector<Bytes>> versions;
  };

  // Striped locking: bucket i is guarded by locks_[i % kStripes].
  static constexpr size_t kStripes = 64;
  mutable std::mutex locks_[kStripes];
  std::vector<BucketVersions> buckets_;
  size_t slots_per_bucket_;
  size_t max_versions_;
};

class DummyBucketStore : public BucketStore {
 public:
  DummyBucketStore(size_t num_buckets, size_t slot_ciphertext_size)
      : num_buckets_(num_buckets), static_value_(slot_ciphertext_size, 0xd0) {}

  StatusOr<Bytes> ReadSlot(BucketIndex, uint32_t, SlotIndex) override { return static_value_; }
  Status WriteBucket(BucketIndex, uint32_t, std::vector<Bytes>) override { return Status::Ok(); }
  Status TruncateBucket(BucketIndex, uint32_t) override { return Status::Ok(); }
  size_t num_buckets() const override { return num_buckets_; }

 private:
  size_t num_buckets_;
  Bytes static_value_;
};

class MemoryLogStore : public LogStore {
 public:
  StatusOr<uint64_t> Append(Bytes record) override;
  Status Sync() override;
  StatusOr<std::vector<Bytes>> ReadAll() override;
  Status Truncate(uint64_t upto_lsn) override;
  uint64_t NextLsn() const override;

  size_t SyncCount() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<uint64_t, Bytes>> records_;
  uint64_t next_lsn_ = 0;
  size_t sync_count_ = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_STORAGE_MEMORY_STORE_H_
