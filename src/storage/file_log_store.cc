#include "src/storage/file_log_store.h"

#include <unistd.h>

#include <cstring>

#include "src/common/crc32.h"
#include "src/common/serde.h"

namespace obladi {

namespace {

// Format v2 header: magic + version; each record is then
// u64 lsn | u32 len | payload | u32 crc(header + payload). Headerless files
// are v1 (no CRC): their first 8 bytes are a little-endian LSN of the first
// record (always small), never the magic, so the formats are
// distinguishable and old WALs stay readable.
constexpr uint8_t kMagic[4] = {'O', 'B', 'L', 'G'};
constexpr uint32_t kFormatV2 = 2;
constexpr size_t kHeaderBytes = 8;
constexpr size_t kCrcBytes = 4;

}  // namespace

FileLogStore::FileLogStore(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "ab+");
  if (file_ == nullptr) {
    return;
  }
  std::fseek(file_, 0, SEEK_END);
  if (std::ftell(file_) == 0) {
    // Fresh file: stamp the v2 header so every record is checksummed.
    BinaryWriter header;
    header.PutRaw(kMagic, 4);
    header.PutU32(kFormatV2);
    std::fwrite(header.bytes().data(), 1, header.size(), file_);
    std::fflush(file_);
    file_version_ = kFormatV2;
    return;
  }
  uint64_t good_end = 0;
  auto existing = ScanAll(&good_end);
  if (existing.ok()) {
    if (!existing->empty()) {
      next_lsn_ = existing->back().first + 1;
    }
    // Repair a torn tail left by a crash mid-append, so "ab+" appends land
    // right after the last intact record instead of behind unparseable
    // bytes that would shadow them from every future scan.
    std::fseek(file_, 0, SEEK_END);
    long size = std::ftell(file_);
    if (size > 0 && good_end < static_cast<uint64_t>(size)) {
      std::fflush(file_);
      if (::ftruncate(fileno(file_), static_cast<off_t>(good_end)) == 0) {
        std::fseek(file_, 0, SEEK_END);
      }
    }
  } else {
    // A CRC-corrupt log is left untouched on disk, and the store latches
    // the diagnostic: the scan could not establish next_lsn_, so an append
    // would write duplicate/low LSNs behind the corrupt region. Append and
    // Sync fail with the same DataLoss that ReadAll (recovery's entry
    // point) reports, until an operator repairs or replaces the file.
    open_error_ = existing.status();
  }
}

FileLogStore::~FileLogStore() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

StatusOr<uint64_t> FileLogStore::Append(Bytes record) {
  std::lock_guard<std::mutex> lk(mu_);
  if (file_ == nullptr) {
    return Status::Unavailable("log file not open");
  }
  if (!open_error_.ok()) {
    return open_error_;
  }
  uint64_t lsn = next_lsn_++;
  BinaryWriter framed;
  framed.PutU64(lsn);
  framed.PutU32(static_cast<uint32_t>(record.size()));
  framed.PutRaw(record.data(), record.size());
  if (file_version_ >= kFormatV2) {
    framed.PutU32(Crc32(framed.bytes()));
  }
  std::fseek(file_, 0, SEEK_END);
  if (std::fwrite(framed.bytes().data(), 1, framed.size(), file_) != framed.size()) {
    return Status::Unavailable("log append failed");
  }
  return lsn;
}

Status FileLogStore::Sync() {
  std::lock_guard<std::mutex> lk(mu_);
  if (file_ == nullptr) {
    return Status::Unavailable("log file not open");
  }
  if (!open_error_.ok()) {
    return open_error_;
  }
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return Status::Unavailable("log sync failed");
  }
  return Status::Ok();
}

StatusOr<std::vector<std::pair<uint64_t, Bytes>>> FileLogStore::ScanAll(
    uint64_t* good_end_out) {
  if (file_ == nullptr) {
    return Status::Unavailable("log file not open");
  }
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_END);
  long size = std::ftell(file_);
  std::fseek(file_, 0, SEEK_SET);
  Bytes contents(static_cast<size_t>(size));
  if (size > 0 && std::fread(contents.data(), 1, contents.size(), file_) != contents.size()) {
    return Status::DataLoss("log read failed");
  }

  size_t pos = 0;
  if (contents.size() >= kHeaderBytes && std::memcmp(contents.data(), kMagic, 4) == 0) {
    BinaryReader version(contents.data() + 4, 4);
    uint32_t v = version.GetU32();
    if (v != kFormatV2) {
      return Status::DataLoss("unsupported WAL format version " + std::to_string(v) +
                              " in " + path_);
    }
    file_version_ = kFormatV2;
    pos = kHeaderBytes;
  } else if (!contents.empty()) {
    file_version_ = 1;  // legacy headerless file: records carry no CRC
  }
  const size_t trailer = file_version_ >= kFormatV2 ? kCrcBytes : 0;

  std::vector<std::pair<uint64_t, Bytes>> records;
  if (good_end_out != nullptr) {
    *good_end_out = pos;
  }
  while (pos + 12 <= contents.size()) {
    BinaryReader header(contents.data() + pos, 12);
    uint64_t lsn = header.GetU64();
    uint32_t len = header.GetU32();
    if (pos + 12 + len + trailer > contents.size()) {
      break;  // torn tail record from a crash mid-append: repairable
    }
    if (trailer > 0) {
      BinaryReader crc_reader(contents.data() + pos + 12 + len, kCrcBytes);
      uint32_t want = crc_reader.GetU32();
      uint32_t got = Crc32(contents.data() + pos, 12 + len);
      if (want != got) {
        // The record is fully present but its checksum disagrees: corruption
        // rather than a torn append — recovery must fail closed, not
        // silently replay a shortened log.
        return Status::DataLoss("WAL record CRC mismatch at lsn " + std::to_string(lsn) +
                                " in " + path_ + " (corrupted record, not a torn tail)");
      }
    }
    records.emplace_back(lsn, Bytes(contents.begin() + static_cast<ptrdiff_t>(pos + 12),
                                    contents.begin() + static_cast<ptrdiff_t>(pos + 12 + len)));
    pos += 12 + len + trailer;
    if (good_end_out != nullptr) {
      *good_end_out = pos;
    }
  }
  return records;
}

StatusOr<std::vector<Bytes>> FileLogStore::ReadAll() {
  std::lock_guard<std::mutex> lk(mu_);
  auto records = ScanAll();
  if (!records.ok()) {
    return records.status();
  }
  std::vector<Bytes> out;
  out.reserve(records->size());
  for (auto& [lsn, rec] : *records) {
    out.push_back(std::move(rec));
  }
  return out;
}

Status FileLogStore::RewriteFromRecords(const std::vector<std::pair<uint64_t, Bytes>>& records) {
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb+");
  if (file_ == nullptr) {
    return Status::Unavailable("log reopen failed");
  }
  // Rewrites always emit the current checksummed layout — a truncation is
  // the natural upgrade point for a legacy file.
  file_version_ = kFormatV2;
  BinaryWriter file_header;
  file_header.PutRaw(kMagic, 4);
  file_header.PutU32(kFormatV2);
  std::fwrite(file_header.bytes().data(), 1, file_header.size(), file_);
  for (const auto& [lsn, rec] : records) {
    BinaryWriter framed;
    framed.PutU64(lsn);
    framed.PutU32(static_cast<uint32_t>(rec.size()));
    framed.PutRaw(rec.data(), rec.size());
    framed.PutU32(Crc32(framed.bytes()));
    std::fwrite(framed.bytes().data(), 1, framed.size(), file_);
  }
  std::fflush(file_);
  fsync(fileno(file_));
  return Status::Ok();
}

Status FileLogStore::Truncate(uint64_t upto_lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto records = ScanAll();
  if (!records.ok()) {
    return records.status();
  }
  std::vector<std::pair<uint64_t, Bytes>> keep;
  for (auto& r : *records) {
    if (r.first >= upto_lsn) {
      keep.push_back(std::move(r));
    }
  }
  return RewriteFromRecords(keep);
}

uint64_t FileLogStore::NextLsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_;
}

uint32_t FileLogStore::FileFormatVersion() const {
  std::lock_guard<std::mutex> lk(mu_);
  return file_version_;
}

}  // namespace obladi
