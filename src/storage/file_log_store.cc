#include "src/storage/file_log_store.h"

#include <unistd.h>

#include <cstring>

#include "src/common/serde.h"

namespace obladi {

FileLogStore::FileLogStore(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "ab+");
  auto existing = ScanAll();
  if (existing.ok() && !existing->empty()) {
    next_lsn_ = existing->back().first + 1;
  }
}

FileLogStore::~FileLogStore() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

StatusOr<uint64_t> FileLogStore::Append(Bytes record) {
  std::lock_guard<std::mutex> lk(mu_);
  if (file_ == nullptr) {
    return Status::Unavailable("log file not open");
  }
  uint64_t lsn = next_lsn_++;
  BinaryWriter header;
  header.PutU64(lsn);
  header.PutU32(static_cast<uint32_t>(record.size()));
  std::fseek(file_, 0, SEEK_END);
  if (std::fwrite(header.bytes().data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::Unavailable("log append failed");
  }
  return lsn;
}

Status FileLogStore::Sync() {
  std::lock_guard<std::mutex> lk(mu_);
  if (file_ == nullptr) {
    return Status::Unavailable("log file not open");
  }
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return Status::Unavailable("log sync failed");
  }
  return Status::Ok();
}

StatusOr<std::vector<std::pair<uint64_t, Bytes>>> FileLogStore::ScanAll() {
  if (file_ == nullptr) {
    return Status::Unavailable("log file not open");
  }
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_END);
  long size = std::ftell(file_);
  std::fseek(file_, 0, SEEK_SET);
  Bytes contents(static_cast<size_t>(size));
  if (size > 0 && std::fread(contents.data(), 1, contents.size(), file_) != contents.size()) {
    return Status::DataLoss("log read failed");
  }

  std::vector<std::pair<uint64_t, Bytes>> records;
  size_t pos = 0;
  while (pos + 12 <= contents.size()) {
    BinaryReader header(contents.data() + pos, 12);
    uint64_t lsn = header.GetU64();
    uint32_t len = header.GetU32();
    if (pos + 12 + len > contents.size()) {
      break;  // torn tail record from a crash mid-append: ignore it
    }
    records.emplace_back(lsn, Bytes(contents.begin() + static_cast<ptrdiff_t>(pos + 12),
                                    contents.begin() + static_cast<ptrdiff_t>(pos + 12 + len)));
    pos += 12 + len;
  }
  return records;
}

StatusOr<std::vector<Bytes>> FileLogStore::ReadAll() {
  std::lock_guard<std::mutex> lk(mu_);
  auto records = ScanAll();
  if (!records.ok()) {
    return records.status();
  }
  std::vector<Bytes> out;
  out.reserve(records->size());
  for (auto& [lsn, rec] : *records) {
    out.push_back(std::move(rec));
  }
  return out;
}

Status FileLogStore::RewriteFromRecords(const std::vector<std::pair<uint64_t, Bytes>>& records) {
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb+");
  if (file_ == nullptr) {
    return Status::Unavailable("log reopen failed");
  }
  for (const auto& [lsn, rec] : records) {
    BinaryWriter header;
    header.PutU64(lsn);
    header.PutU32(static_cast<uint32_t>(rec.size()));
    std::fwrite(header.bytes().data(), 1, header.size(), file_);
    std::fwrite(rec.data(), 1, rec.size(), file_);
  }
  std::fflush(file_);
  fsync(fileno(file_));
  return Status::Ok();
}

Status FileLogStore::Truncate(uint64_t upto_lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto records = ScanAll();
  if (!records.ok()) {
    return records.status();
  }
  std::vector<std::pair<uint64_t, Bytes>> keep;
  for (auto& r : *records) {
    if (r.first >= upto_lsn) {
      keep.push_back(std::move(r));
    }
  }
  return RewriteFromRecords(keep);
}

uint64_t FileLogStore::NextLsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_;
}

}  // namespace obladi
