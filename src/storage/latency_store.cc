#include "src/storage/latency_store.h"

#include "src/common/clock.h"

namespace obladi {

LatencyBucketStore::LatencyBucketStore(std::shared_ptr<BucketStore> base, LatencyProfile profile)
    : base_(std::move(base)), profile_(std::move(profile)) {}

void LatencyBucketStore::AcquireSlot() {
  if (profile_.max_inflight == 0) {
    return;
  }
  std::unique_lock<std::mutex> lk(inflight_mu_);
  inflight_cv_.wait(lk, [&] { return inflight_ < profile_.max_inflight; });
  ++inflight_;
}

void LatencyBucketStore::ReleaseSlot() {
  if (profile_.max_inflight == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.notify_one();
}

StatusOr<Bytes> LatencyBucketStore::ReadSlot(BucketIndex bucket, uint32_t version,
                                             SlotIndex slot) {
  if (bypass_.load(std::memory_order_relaxed)) {
    return base_->ReadSlot(bucket, version, slot);
  }
  AcquireSlot();
  PreciseSleepMicros(profile_.read_latency_us);
  auto result = base_->ReadSlot(bucket, version, slot);
  ReleaseSlot();
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  if (result.ok()) {
    stats_.bytes_read.fetch_add(result->size(), std::memory_order_relaxed);
  }
  return result;
}

Status LatencyBucketStore::WriteBucket(BucketIndex bucket, uint32_t version,
                                       std::vector<Bytes> slots) {
  if (bypass_.load(std::memory_order_relaxed)) {
    return base_->WriteBucket(bucket, version, std::move(slots));
  }
  size_t bytes = 0;
  for (const auto& s : slots) {
    bytes += s.size();
  }
  AcquireSlot();
  PreciseSleepMicros(profile_.write_latency_us);
  Status st = base_->WriteBucket(bucket, version, std::move(slots));
  ReleaseSlot();
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  return st;
}

std::vector<StatusOr<Bytes>> LatencyBucketStore::ReadSlotsBatch(
    const std::vector<SlotRef>& refs) {
  uint64_t waves = 1;
  if (profile_.max_inflight > 0 && !refs.empty()) {
    waves = (refs.size() + profile_.max_inflight - 1) / profile_.max_inflight;
  }
  if (!bypass_.load(std::memory_order_relaxed) && !refs.empty()) {
    PreciseSleepMicros(profile_.read_latency_us * waves);
  }
  auto out = base_->ReadSlotsBatch(refs);
  stats_.reads.fetch_add(refs.size(), std::memory_order_relaxed);
  if (!refs.empty()) {
    stats_.round_trips.fetch_add(waves, std::memory_order_relaxed);
  }
  for (const auto& r : out) {
    if (r.ok()) {
      stats_.bytes_read.fetch_add(r->size(), std::memory_order_relaxed);
    }
  }
  return out;
}

Status LatencyBucketStore::WriteBucketsBatch(std::vector<BucketImage> images) {
  size_t bytes = 0;
  for (const auto& image : images) {
    for (const auto& s : image.slots) {
      bytes += s.size();
    }
  }
  uint64_t waves = 1;
  if (profile_.max_inflight > 0 && !images.empty()) {
    waves = (images.size() + profile_.max_inflight - 1) / profile_.max_inflight;
  }
  if (!bypass_.load(std::memory_order_relaxed) && !images.empty()) {
    PreciseSleepMicros(profile_.write_latency_us * waves);
  }
  stats_.writes.fetch_add(images.size(), std::memory_order_relaxed);
  if (!images.empty()) {
    stats_.round_trips.fetch_add(waves, std::memory_order_relaxed);
  }
  stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  return base_->WriteBucketsBatch(std::move(images));
}

Status LatencyBucketStore::TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) {
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  return base_->TruncateBucket(bucket, keep_from_version);
}

Status LatencyBucketStore::TruncateBucketsBatch(const std::vector<TruncateRef>& refs) {
  if (!refs.empty()) {
    stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  }
  return base_->TruncateBucketsBatch(refs);
}

StatusOr<uint64_t> LatencyLogStore::Append(Bytes record) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(record.size(), std::memory_order_relaxed);
  return base_->Append(std::move(record));
}

Status LatencyLogStore::Sync() {
  // One durable round trip per sync, matching a remote WAL.
  PreciseSleepMicros(profile_.write_latency_us);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  return base_->Sync();
}

StatusOr<std::vector<Bytes>> LatencyLogStore::ReadAll() {
  PreciseSleepMicros(profile_.read_latency_us);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  auto all = base_->ReadAll();
  if (all.ok()) {
    stats_.reads.fetch_add(all->size(), std::memory_order_relaxed);
    for (const auto& r : *all) {
      stats_.bytes_read.fetch_add(r.size(), std::memory_order_relaxed);
    }
  }
  return all;
}

}  // namespace obladi
