#include "src/storage/latency_store.h"

#include "src/common/clock.h"

namespace obladi {
namespace {

// Modeled wire overheads, approximating src/net/wire.h framing: a 4-byte
// length prefix + 10-byte message header per frame, 12 bytes per slot ref,
// and a 9-byte per-entry status envelope on read results. Close enough that
// the simulated bytes_sent/bytes_received line up with what the real
// transport charges for the same operation mix.
constexpr size_t kFrameOverhead = 14;
constexpr size_t kSlotRefBytes = 12;
constexpr size_t kReadEnvelopeBytes = 9;

}  // namespace

LatencyBucketStore::LatencyBucketStore(std::shared_ptr<BucketStore> base, LatencyProfile profile)
    : base_(std::move(base)), profile_(std::move(profile)) {}

void LatencyBucketStore::AcquireSlot() {
  if (profile_.max_inflight == 0) {
    return;
  }
  std::unique_lock<std::mutex> lk(inflight_mu_);
  inflight_cv_.wait(lk, [&] { return inflight_ < profile_.max_inflight; });
  ++inflight_;
}

void LatencyBucketStore::ReleaseSlot() {
  if (profile_.max_inflight == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.notify_one();
}

void LatencyBucketStore::ChargeLink(LinkDir dir, size_t bytes) {
  uint64_t bw = dir == LinkDir::kDownload ? profile_.download_bandwidth_bytes_per_sec
                                          : profile_.upload_bandwidth_bytes_per_sec;
  if (bw == 0 || bytes == 0 || bypass_.load(std::memory_order_relaxed)) {
    return;
  }
  uint64_t transfer_us = static_cast<uint64_t>(bytes) * 1000000 / bw;
  uint64_t drain_at;
  {
    // Each direction's pipe serializes transfers: a request parks behind
    // whatever is already draining, then occupies the link for its own
    // bytes. Latency (charged separately by the callers) still overlaps
    // across requests, and the two directions never block each other
    // (full duplex).
    std::lock_guard<std::mutex> lk(link_mu_);
    uint64_t now = NowMicros();
    uint64_t& free_at = dir == LinkDir::kDownload ? down_free_at_us_ : up_free_at_us_;
    uint64_t start = free_at > now ? free_at : now;
    drain_at = start + transfer_us;
    free_at = drain_at;
  }
  PreciseSleepUntilMicros(drain_at);
}

StatusOr<Bytes> LatencyBucketStore::ReadSlot(BucketIndex bucket, uint32_t version,
                                             SlotIndex slot) {
  if (bypass_.load(std::memory_order_relaxed)) {
    return base_->ReadSlot(bucket, version, slot);
  }
  ChargeLink(LinkDir::kUpload, kFrameOverhead + kSlotRefBytes);
  AcquireSlot();
  PreciseSleepMicros(profile_.read_latency_us);
  auto result = base_->ReadSlot(bucket, version, slot);
  ReleaseSlot();
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(kFrameOverhead + kSlotRefBytes, std::memory_order_relaxed);
  size_t resp = kFrameOverhead + kReadEnvelopeBytes + (result.ok() ? result->size() : 0);
  ChargeLink(LinkDir::kDownload, resp);
  stats_.bytes_received.fetch_add(resp, std::memory_order_relaxed);
  if (result.ok()) {
    stats_.bytes_read.fetch_add(result->size(), std::memory_order_relaxed);
  }
  return result;
}

Status LatencyBucketStore::WriteBucket(BucketIndex bucket, uint32_t version,
                                       std::vector<Bytes> slots) {
  if (bypass_.load(std::memory_order_relaxed)) {
    return base_->WriteBucket(bucket, version, std::move(slots));
  }
  size_t bytes = 0;
  for (const auto& s : slots) {
    bytes += s.size();
  }
  size_t req = kFrameOverhead + kSlotRefBytes + bytes;
  ChargeLink(LinkDir::kUpload, req);
  AcquireSlot();
  PreciseSleepMicros(profile_.write_latency_us);
  Status st = base_->WriteBucket(bucket, version, std::move(slots));
  ReleaseSlot();
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(req, std::memory_order_relaxed);
  stats_.bytes_received.fetch_add(kFrameOverhead, std::memory_order_relaxed);
  return st;
}

std::vector<StatusOr<Bytes>> LatencyBucketStore::ReadSlotsBatch(
    const std::vector<SlotRef>& refs) {
  uint64_t waves = 1;
  if (profile_.max_inflight > 0 && !refs.empty()) {
    waves = (refs.size() + profile_.max_inflight - 1) / profile_.max_inflight;
  }
  size_t req = kFrameOverhead + refs.size() * kSlotRefBytes;
  if (!bypass_.load(std::memory_order_relaxed) && !refs.empty()) {
    ChargeLink(LinkDir::kUpload, req);
    PreciseSleepMicros(profile_.read_latency_us * waves);
  }
  auto out = base_->ReadSlotsBatch(refs);
  stats_.reads.fetch_add(refs.size(), std::memory_order_relaxed);
  if (!refs.empty()) {
    stats_.round_trips.fetch_add(waves, std::memory_order_relaxed);
    stats_.bytes_sent.fetch_add(req, std::memory_order_relaxed);
  }
  size_t resp = refs.empty() ? 0 : kFrameOverhead;
  for (const auto& r : out) {
    resp += kReadEnvelopeBytes;
    if (r.ok()) {
      resp += r->size();
      stats_.bytes_read.fetch_add(r->size(), std::memory_order_relaxed);
    }
  }
  if (!refs.empty()) {
    ChargeLink(LinkDir::kDownload, resp);
    stats_.bytes_received.fetch_add(resp, std::memory_order_relaxed);
  }
  return out;
}

std::vector<StatusOr<PathXorResult>> LatencyBucketStore::ReadPathsXor(
    const std::vector<PathSlots>& paths, uint32_t header_bytes, uint32_t trailer_bytes) {
  size_t total_slots = 0;
  size_t req = kFrameOverhead + 8;
  for (const PathSlots& path : paths) {
    total_slots += path.slots.size();
    req += 4 + path.slots.size() * kSlotRefBytes;
  }
  uint64_t waves = 1;
  if (profile_.max_inflight > 0 && total_slots > 0) {
    // The storage node still touches every named slot; its service
    // parallelism caps waves exactly as it does for slot-by-slot reads.
    waves = (total_slots + profile_.max_inflight - 1) / profile_.max_inflight;
  }
  if (!bypass_.load(std::memory_order_relaxed) && !paths.empty()) {
    ChargeLink(LinkDir::kUpload, req);
    PreciseSleepMicros(profile_.read_latency_us * waves);
  }
  auto out = base_->ReadPathsXor(paths, header_bytes, trailer_bytes);
  stats_.reads.fetch_add(total_slots, std::memory_order_relaxed);
  if (!paths.empty()) {
    stats_.round_trips.fetch_add(waves, std::memory_order_relaxed);
    stats_.bytes_sent.fetch_add(req, std::memory_order_relaxed);
  }
  size_t resp = paths.empty() ? 0 : kFrameOverhead;
  for (const auto& r : out) {
    resp += kReadEnvelopeBytes;
    if (r.ok()) {
      resp += r->headers.size() + r->body_xor.size();
      stats_.bytes_read.fetch_add(r->headers.size() + r->body_xor.size(),
                                  std::memory_order_relaxed);
    }
  }
  if (!paths.empty()) {
    ChargeLink(LinkDir::kDownload, resp);
    stats_.bytes_received.fetch_add(resp, std::memory_order_relaxed);
  }
  return out;
}

Status LatencyBucketStore::WriteBucketsBatch(std::vector<BucketImage> images) {
  size_t bytes = 0;
  for (const auto& image : images) {
    for (const auto& s : image.slots) {
      bytes += s.size();
    }
  }
  uint64_t waves = 1;
  if (profile_.max_inflight > 0 && !images.empty()) {
    waves = (images.size() + profile_.max_inflight - 1) / profile_.max_inflight;
  }
  size_t req = kFrameOverhead + images.size() * kSlotRefBytes + bytes;
  if (!bypass_.load(std::memory_order_relaxed) && !images.empty()) {
    ChargeLink(LinkDir::kUpload, req);
    PreciseSleepMicros(profile_.write_latency_us * waves);
  }
  stats_.writes.fetch_add(images.size(), std::memory_order_relaxed);
  if (!images.empty()) {
    stats_.round_trips.fetch_add(waves, std::memory_order_relaxed);
    stats_.bytes_sent.fetch_add(req, std::memory_order_relaxed);
    stats_.bytes_received.fetch_add(kFrameOverhead, std::memory_order_relaxed);
  }
  stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  return base_->WriteBucketsBatch(std::move(images));
}

Status LatencyBucketStore::TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) {
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  return base_->TruncateBucket(bucket, keep_from_version);
}

Status LatencyBucketStore::TruncateBucketsBatch(const std::vector<TruncateRef>& refs) {
  if (!refs.empty()) {
    stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  }
  return base_->TruncateBucketsBatch(refs);
}

StatusOr<uint64_t> LatencyLogStore::Append(Bytes record) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(record.size(), std::memory_order_relaxed);
  return base_->Append(std::move(record));
}

StatusOr<uint64_t> LatencyLogStore::AppendSync(Bytes record) {
  // The fused RPC: one durable round trip carries the record AND the sync,
  // vs. Append (free here) + Sync (one write latency).
  PreciseSleepMicros(profile_.write_latency_us);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(record.size(), std::memory_order_relaxed);
  return base_->AppendSync(std::move(record));
}

Status LatencyLogStore::Sync() {
  // One durable round trip per sync, matching a remote WAL.
  PreciseSleepMicros(profile_.write_latency_us);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  return base_->Sync();
}

StatusOr<std::vector<Bytes>> LatencyLogStore::ReadAll() {
  PreciseSleepMicros(profile_.read_latency_us);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  auto all = base_->ReadAll();
  if (all.ok()) {
    stats_.reads.fetch_add(all->size(), std::memory_order_relaxed);
    for (const auto& r : *all) {
      stats_.bytes_read.fetch_add(r.size(), std::memory_order_relaxed);
    }
  }
  return all;
}

}  // namespace obladi
