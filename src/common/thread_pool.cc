#include "src/common/thread_pool.h"

namespace obladi {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  CountdownLatch latch(n);
  for (size_t i = 0; i < n; ++i) {
    Enqueue([&, i] {
      fn(i);
      latch.CountDown();
    });
  }
  latch.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace obladi
