// Fast non-cryptographic PRNG (xoshiro256**) plus workload-generation helpers
// (uniform ints, Fisher-Yates shuffle, YCSB-style scrambled zipfian). Crypto-
// sensitive randomness (path remapping, permutations, nonces) uses
// crypto/csprng.h instead.
#ifndef OBLADI_SRC_COMMON_RNG_H_
#define OBLADI_SRC_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace obladi {

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x0b1ad1d00dull) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) {
      w = SplitMix64(sm);
    }
  }

  uint64_t NextU64() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Debiased via rejection.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(hi >= lo);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  double UniformDouble() {  // [0, 1)
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// YCSB-style zipfian generator over [0, n) with scrambling so that hot keys
// are spread across the keyspace.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99) : n_(n), theta_(theta) {
    assert(n > 0);
    zetan_ = Zeta(n, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next(Rng& rng) {
    double u = rng.UniformDouble();
    double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    auto rank = static_cast<uint64_t>(static_cast<double>(n_) *
                                      std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_) {
      rank = n_ - 1;
    }
    return rank;
  }

  // Scrambled variant: spreads the popular ranks over the keyspace via a hash.
  uint64_t NextScrambled(Rng& rng) {
    uint64_t rank = Next(rng);
    uint64_t h = rank;
    return (SplitMix64(h)) % n_;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_COMMON_RNG_H_
