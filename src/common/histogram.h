// Latency/throughput statistics for the benchmark harness and tests.
#ifndef OBLADI_SRC_COMMON_HISTOGRAM_H_
#define OBLADI_SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

namespace obladi {

// Prometheus-style cumulative bucket counts: counts[i] is the number of
// samples <= upper_bounds[i] (the "le" label); the implicit +Inf bucket is
// `count`. Computed from one consistent cut of the sample set.
struct HistogramBuckets {
  std::vector<uint64_t> upper_bounds;  // ascending, exclusive of +Inf
  std::vector<uint64_t> counts;        // cumulative, same length as upper_bounds
  uint64_t count = 0;                  // total samples (the +Inf bucket)
  uint64_t sum = 0;
};

// One consistent cut of a Histogram: every field computed from the same
// sample set under one lock acquisition (per-accessor calls can interleave
// with writers between them; Summary() cannot).
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  double mean = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

// Thread-safe collection of sample values (microseconds, counts, ...).
class Histogram {
 public:
  void Record(uint64_t value) {
    std::lock_guard<std::mutex> lk(mu_);
    samples_.push_back(value);
    sum_ += value;
  }

  void Merge(const Histogram& other) {
    if (this == &other) {
      return;
    }
    // Lock both sides deadlock-free: two threads merging in opposite
    // directions would deadlock with ordered lock_guards.
    std::scoped_lock lk(mu_, other.mu_);
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sum_ += other.sum_;
  }

  size_t Count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return samples_.size();
  }

  double Mean() const {
    std::lock_guard<std::mutex> lk(mu_);
    if (samples_.empty()) {
      return 0;
    }
    return static_cast<double>(sum_) / static_cast<double>(samples_.size());
  }

  // q in [0, 1]; e.g. 0.5 for median, 0.99 for p99.
  uint64_t Percentile(double q) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (samples_.empty()) {
      return 0;
    }
    std::vector<uint64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    return PickPercentile(sorted, q);
  }

  uint64_t P50() const { return Percentile(0.50); }
  uint64_t P90() const { return Percentile(0.90); }
  uint64_t P99() const { return Percentile(0.99); }
  uint64_t P999() const { return Percentile(0.999); }

  HistogramSummary Summary() const {
    std::lock_guard<std::mutex> lk(mu_);
    HistogramSummary s;
    if (samples_.empty()) {
      return s;
    }
    std::vector<uint64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.sum = sum_;
    s.mean = static_cast<double>(sum_) / static_cast<double>(sorted.size());
    s.min = sorted.front();
    s.max = sorted.back();
    s.p50 = PickPercentile(sorted, 0.50);
    s.p90 = PickPercentile(sorted, 0.90);
    s.p99 = PickPercentile(sorted, 0.99);
    s.p999 = PickPercentile(sorted, 0.999);
    return s;
  }

  // Fixed exponential bounds shared by every scraped histogram family, so
  // dashboards can aggregate across instances (values are microseconds for
  // latency series; counts reuse the low end harmlessly).
  static const std::vector<uint64_t>& DefaultBucketBounds() {
    static const std::vector<uint64_t> kBounds = {
        1,      2,      5,      10,      25,      50,      100,     250,
        500,    1000,   2500,   5000,    10000,   25000,   50000,   100000,
        250000, 500000, 1000000, 2500000, 5000000, 10000000};
    return kBounds;
  }

  // Cumulative counts against `bounds` (must be ascending). One lock
  // acquisition: the buckets, count, and sum describe the same sample set.
  HistogramBuckets BucketCounts(
      const std::vector<uint64_t>& bounds = DefaultBucketBounds()) const {
    std::lock_guard<std::mutex> lk(mu_);
    HistogramBuckets b;
    b.upper_bounds = bounds;
    b.counts.assign(bounds.size(), 0);
    for (uint64_t v : samples_) {
      auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
      if (it != bounds.end()) {
        b.counts[static_cast<size_t>(it - bounds.begin())]++;
      }
    }
    // Make per-bound tallies cumulative (Prometheus "le" semantics).
    for (size_t i = 1; i < b.counts.size(); ++i) {
      b.counts[i] += b.counts[i - 1];
    }
    b.count = samples_.size();
    b.sum = sum_;
    return b;
  }

  uint64_t Max() const {
    std::lock_guard<std::mutex> lk(mu_);
    if (samples_.empty()) {
      return 0;
    }
    return *std::max_element(samples_.begin(), samples_.end());
  }

  void Reset() {
    std::lock_guard<std::mutex> lk(mu_);
    samples_.clear();
    sum_ = 0;
  }

 private:
  static uint64_t PickPercentile(const std::vector<uint64_t>& sorted, double q) {
    size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    if (idx >= sorted.size()) {
      idx = sorted.size() - 1;
    }
    return sorted[idx];
  }

  mutable std::mutex mu_;
  std::vector<uint64_t> samples_;
  uint64_t sum_ = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_COMMON_HISTOGRAM_H_
