// Latency/throughput statistics for the benchmark harness and tests.
#ifndef OBLADI_SRC_COMMON_HISTOGRAM_H_
#define OBLADI_SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

namespace obladi {

// Thread-safe collection of sample values (microseconds, counts, ...).
class Histogram {
 public:
  void Record(uint64_t value) {
    std::lock_guard<std::mutex> lk(mu_);
    samples_.push_back(value);
    sum_ += value;
  }

  void Merge(const Histogram& other) {
    if (this == &other) {
      return;
    }
    // Lock both sides deadlock-free: two threads merging in opposite
    // directions would deadlock with ordered lock_guards.
    std::scoped_lock lk(mu_, other.mu_);
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sum_ += other.sum_;
  }

  size_t Count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return samples_.size();
  }

  double Mean() const {
    std::lock_guard<std::mutex> lk(mu_);
    if (samples_.empty()) {
      return 0;
    }
    return static_cast<double>(sum_) / static_cast<double>(samples_.size());
  }

  // q in [0, 1]; e.g. 0.5 for median, 0.99 for p99.
  uint64_t Percentile(double q) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (samples_.empty()) {
      return 0;
    }
    std::vector<uint64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    if (idx >= sorted.size()) {
      idx = sorted.size() - 1;
    }
    return sorted[idx];
  }

  uint64_t Max() const {
    std::lock_guard<std::mutex> lk(mu_);
    if (samples_.empty()) {
      return 0;
    }
    return *std::max_element(samples_.begin(), samples_.end());
  }

  void Reset() {
    std::lock_guard<std::mutex> lk(mu_);
    samples_.clear();
    sum_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> samples_;
  uint64_t sum_ = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_COMMON_HISTOGRAM_H_
