// Fixed-size worker pool used by the async storage layer and the parallel
// ORAM executor. Tasks are plain std::function<void()>; completion is tracked
// either by futures (Submit) or by a WaitGroup-style counter (Dispatch/Wait).
#ifndef OBLADI_SRC_COMMON_THREAD_POOL_H_
#define OBLADI_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace obladi {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueue a task; returns a future completed when it finishes.
  template <typename F>
  auto Submit(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task]() { (*task)(); });
    return fut;
  }

  // Fire-and-forget enqueue; pair with a CountdownLatch for completion.
  void Enqueue(std::function<void()> fn);

  // Run fn(i) for i in [0, n) across the pool and wait for all to finish.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

// Simple countdown latch usable with fire-and-forget pool tasks.
class CountdownLatch {
 public:
  explicit CountdownLatch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lk(mu_);
    if (count_ > 0 && --count_ == 0) {
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_COMMON_THREAD_POOL_H_
