// Little-endian binary serialization used for block payloads, WAL records, and
// checkpoint images. Deliberately schema-free: callers read fields in the
// order they wrote them.
#ifndef OBLADI_SRC_COMMON_SERDE_H_
#define OBLADI_SRC_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"

namespace obladi {

class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLe(v); }
  void PutU32(uint32_t v) { PutLe(v); }
  void PutU64(uint64_t v) { PutLe(v); }
  void PutI64(int64_t v) { PutLe(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLe(bits);
  }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  // Length-prefixed byte string.
  void PutBytes(const Bytes& b) {
    PutU32(static_cast<uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  // Raw bytes, no length prefix (fixed-size fields).
  void PutRaw(const uint8_t* data, size_t n) { buf_.insert(buf_.end(), data, data + n); }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  BinaryReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t GetU8() { return GetLe<uint8_t>(); }
  uint16_t GetU16() { return GetLe<uint16_t>(); }
  uint32_t GetU32() { return GetLe<uint32_t>(); }
  uint64_t GetU64() { return GetLe<uint64_t>(); }
  int64_t GetI64() { return static_cast<int64_t>(GetLe<uint64_t>()); }
  double GetDouble() {
    uint64_t bits = GetLe<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool GetBool() { return GetU8() != 0; }

  Bytes GetBytes() {
    uint32_t n = GetU32();
    if (!Check(n)) {
      return {};
    }
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  std::string GetString() {
    uint32_t n = GetU32();
    if (!Check(n)) {
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }
  void GetRaw(uint8_t* out, size_t n) {
    if (!Check(n)) {
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

 private:
  template <typename T>
  T GetLe() {
    if (!Check(sizeof(T))) {
      return T{};
    }
    T v{};
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  bool Check(size_t n) {
    if (pos_ + n > size_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace obladi

#endif  // OBLADI_SRC_COMMON_SERDE_H_
