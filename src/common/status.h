// Minimal Status / StatusOr error-handling vocabulary (absl-like, no deps).
#ifndef OBLADI_SRC_COMMON_STATUS_H_
#define OBLADI_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace obladi {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAborted,            // transaction aborted (MVTSO conflict, cascade, or epoch end)
  kInvalidArgument,
  kFailedPrecondition,
  kResourceExhausted,  // batch/epoch capacity exceeded
  kDataLoss,
  kUnavailable,        // storage unreachable / crashed
  kIntegrityViolation, // MAC or freshness check failed (Appendix A mode)
  kInternal,
  kDeadlineExceeded,   // request deadline expired before a response landed
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kIntegrityViolation: return "INTEGRITY_VIOLATION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status Aborted(std::string m = "") { return Status(StatusCode::kAborted, std::move(m)); }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m = "") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DataLoss(std::string m = "") { return Status(StatusCode::kDataLoss, std::move(m)); }
  static Status Unavailable(std::string m = "") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status IntegrityViolation(std::string m = "") {
    return Status(StatusCode::kIntegrityViolation, std::move(m));
  }
  static Status Internal(std::string m = "") { return Status(StatusCode::kInternal, std::move(m)); }
  static Status DeadlineExceeded(std::string m = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error holder. Intentionally small: exactly what this codebase needs.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define OBLADI_RETURN_IF_ERROR(expr)      \
  do {                                    \
    ::obladi::Status _st = (expr);        \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

}  // namespace obladi

#endif  // OBLADI_SRC_COMMON_STATUS_H_
