// Monotonic time helpers.
#ifndef OBLADI_SRC_COMMON_CLOCK_H_
#define OBLADI_SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace obladi {

inline uint64_t NowMicros() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

inline uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Hybrid wait. Virtualized timers on this class of machine make nanosleep
// overshoot sub-millisecond deadlines by ~1 ms, which would swamp the latency
// model, so short waits spin on the clock (callers keep the number of
// concurrent spinners near the core count) and only long waits sleep.
inline void PreciseSleepMicros(uint64_t micros) {
  if (micros == 0) {
    return;
  }
  if (micros <= 500) {
    uint64_t deadline = NowNanos() + micros * 1000;
    while (NowNanos() < deadline) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
    return;
  }
  std::this_thread::sleep_until(std::chrono::steady_clock::now() +
                                std::chrono::microseconds(micros));
}

// Absolute-deadline variant of PreciseSleepMicros for drift-free pacing: a
// loop that sleeps *relative* intervals accumulates every iteration's work
// time into its period, so e.g. an epoch pacer's cadence would leak the
// (network-bound) epoch-change duration. Sleeping to absolute deadlines
// keeps the dispatch schedule independent of how long the work between
// ticks took. Returns immediately if the deadline already passed.
inline void PreciseSleepUntilMicros(uint64_t deadline_us) {
  uint64_t now = NowMicros();
  if (deadline_us <= now) {
    return;
  }
  PreciseSleepMicros(deadline_us - now);
}

// Simple scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(NowMicros()) {}
  uint64_t ElapsedMicros() const { return NowMicros() - start_; }
  void Restart() { start_ = NowMicros(); }

 private:
  uint64_t start_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_COMMON_CLOCK_H_
