// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges.
//
// Used by the file-backed stores' record framing (format v2) so a scan can
// tell a *corrupted* record (all bytes present, checksum wrong — fail
// closed) apart from a *torn* record (bytes missing at EOF after a crash
// mid-append — repairable). Table-driven, no dependencies; not a MAC — the
// encryptor owns integrity against an adversary, this catches disk/fs bit
// rot and half-written sectors.
#ifndef OBLADI_SRC_COMMON_CRC32_H_
#define OBLADI_SRC_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace obladi {

namespace crc32_internal {
inline const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace crc32_internal

// CRC of [data, data+len). Chain blocks by passing the previous result as
// `seed` (Crc32(b, Crc32(a)) == Crc32(a ++ b)).
inline uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0) {
  const auto& table = crc32_internal::Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

template <typename Container>
  requires requires(const Container& c) {
    c.size();
    c.empty();
  }
inline uint32_t Crc32(const Container& bytes, uint32_t seed = 0) {
  return Crc32(bytes.empty() ? nullptr : &bytes[0], bytes.size(), seed);
}

}  // namespace obladi

#endif  // OBLADI_SRC_COMMON_CRC32_H_
