// Core scalar types shared across the Obladi codebase.
#ifndef OBLADI_SRC_COMMON_TYPES_H_
#define OBLADI_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace obladi {

// Logical identifier of a data block stored in the ORAM. Application keys are
// mapped to BlockIds by the proxy's KeyDirectory.
using BlockId = uint64_t;
inline constexpr BlockId kInvalidBlockId = std::numeric_limits<BlockId>::max();

// A leaf of the ORAM tree; a block mapped to leaf l lives on the root→l path.
using Leaf = uint32_t;
inline constexpr Leaf kInvalidLeaf = std::numeric_limits<Leaf>::max();

// Index of a bucket in the heap-ordered ORAM tree (root = 0).
using BucketIndex = uint32_t;

// Physical slot index inside a bucket (0 .. Z+S-1).
using SlotIndex = uint32_t;
inline constexpr SlotIndex kInvalidSlot = std::numeric_limits<SlotIndex>::max();

// MVTSO transaction timestamp; also serves as the transaction id.
using Timestamp = uint64_t;
inline constexpr Timestamp kInvalidTimestamp = 0;

// Identifier of an epoch (monotonically increasing).
using EpochId = uint64_t;

// Raw byte buffer used for block payloads, ciphertexts, and log records.
using Bytes = std::vector<uint8_t>;

inline Bytes BytesFromString(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

inline std::string StringFromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace obladi

#endif  // OBLADI_SRC_COMMON_TYPES_H_
