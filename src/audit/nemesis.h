// Fault-injecting nemesis: runs the audit workload against a full
// loopback deployment (timed pipelined proxy -> remote stores -> storage
// server -> file-backed buckets + WAL) while a fault thread kills and
// restarts the storage node and crashes the proxy mid-epoch. The surviving
// client history is the subsystem's end-to-end input: if Obladi's epoch
// visibility, shadow paging, or crash recovery ever let a stale or phantom
// version slip out, the offline verifier fails the run.
//
// Faults are serialized on one thread, mirroring a deployment where at most
// one component is down at a time:
//   * storage kill/restart — the server stops, the FileBucketStore and
//     FileLogStore objects are destroyed, and both are *reopened from the
//     same files* before a new server binds the same port (durability is
//     proven on every restart, not just at the end). The proxy is then
//     crash-recovered: a storage outage fails its background retirement
//     sticky, so failover is the designed response.
//   * proxy crash — SimulateCrash mid-epoch, then recovery from the WAL and
//     a pacer restart. Commit acks lost to the crash surface as
//     indeterminate outcomes for the verifier to adjudicate.
//   * shard partition (partition_shard) — the deployment becomes one
//     StorageServer per shard with a FaultRelay (src/fault) in front of one
//     of them; the fault thread blackholes that link mid-epoch, holds it past
//     the deadline budget, heals it, and crash-recovers the proxy. Clients
//     blocked on the partitioned shard must fail retriably within the
//     deadline budget (hardened transport: per-request deadlines,
//     heartbeats, retry policy, bounded retirement waits) — never hang.
//   * WAL fsync stall (slow_disk) — the storage node's FileLogStore is
//     wrapped in a FaultyLogStore and the fault thread turns a large
//     fsync_stall_us on during retirement and off again.
//   * clock skew (clock_skew) — the proxy's claimed timestamps are passed
//     through a SkewClock whose offset the fault thread jumps forwards and
//     backwards. The mapping is order-preserving, so the audit must still
//     pass — that is the property the scenario demonstrates.
//   * replica kill (kill_primary / kill_replica) — the deployment becomes
//     R replicas per shard behind ReplicatedBucketStore/ReplicatedLogStore,
//     with one victim replica (the initial primary, or a follower) fronted
//     by a FaultRelay. The fault thread blackholes the victim mid-epoch,
//     holds, and heals — WITHOUT crashing the proxy: quorum writes and
//     automatic read failover must carry commits through the loss, and the
//     retire loop's catch-up must resync the healed node, all audited
//     serializable. The run tracks the longest commit stall so the driver
//     can assert the unavailability window stayed inside the failover
//     deadline budget.
#ifndef OBLADI_SRC_AUDIT_NEMESIS_H_
#define OBLADI_SRC_AUDIT_NEMESIS_H_

#include <cstdint>
#include <string>

#include "src/audit/history.h"
#include "src/workload/driver.h"

namespace obladi {

struct NemesisOptions {
  uint32_t num_shards = 4;
  size_t num_clients = 12;
  uint64_t duration_ms = 3000;
  uint64_t warmup_ms = 200;
  uint64_t fault_period_ms = 700;  // gap between consecutive faults
  bool kill_storage = true;
  bool crash_proxy = true;
  // Workload shape (AuditWorkload).
  uint64_t num_keys = 192;
  double zipf_theta = 0.0;
  size_t ops_per_txn = 4;
  // Where the file-backed stores live (created; must be writable).
  std::string data_dir = "/tmp/obladi_nemesis";
  // When non-empty, the recorded traces are written here for audit_check.
  std::string trace_dir;
  // When > 0, a progress line (epochs, commits, recoveries) is printed every
  // heartbeat_ms so long runs are observably alive, not hung.
  uint64_t heartbeat_ms = 0;
  // Final proxy metrics as JSON lines. Empty with a trace_dir set defaults
  // to <trace_dir>/nemesis_metrics.json; "-" disables the dump.
  std::string metrics_out;
  uint64_t seed = 7;
  // --- chaos palette (src/fault) ---
  // Partition proxy <-> one shard's storage node mid-epoch through a fault
  // relay, hold past the deadline budget, heal, crash-recover. Forces the
  // per-shard deployment (K storage servers) and the hardened transport;
  // kill_storage is ignored in this mode (there is no single node to kill).
  bool partition_shard = false;
  uint64_t partition_hold_ms = 600;
  // Epoch pipeline depth for the proxy under test (clamped to >= 1). At 2+
  // a partition can land with multiple epochs' retirements in flight — the
  // depth-D ordering gate and bounded-failure path are what the chaos
  // scenario then exercises.
  size_t pipeline_depth = 2;
  // fsync-stall the storage node's WAL (FaultyLogStore decorator), then
  // release after the stall window.
  bool slow_disk = false;
  uint64_t wal_stall_us = 150000;
  // Jump the proxy's claimed-timestamp offset forwards/backwards through an
  // order-preserving SkewClock.
  bool clock_skew = false;
  int64_t skew_jump = 5000000;
  // --- replicated storage tier (src/net/replicated_store) ---
  // Replicas per shard (and WAL columns). > 1 forces the per-shard
  // deployment with every shard's stores wrapped in a replicated store.
  uint32_t replicas = 1;
  // Replica successes a write needs before acknowledging.
  uint32_t write_quorum = 1;
  // Blackhole the victim replica mid-epoch (relay partition), hold, heal —
  // with NO proxy crash. kill_primary fronts the initial primary (replica 0
  // of shard 0, which also hosts WAL column 0, so both tiers fail over);
  // kill_replica fronts the last replica (a follower). Either forces
  // replicas >= 2.
  bool kill_primary = false;
  bool kill_replica = false;
  // Liveness watchdog: if ANY client thread finishes no attempt (commit,
  // abort, or failure) for this long, print the scenario seed to stderr and
  // _Exit(3) — a hung client is a bug the run must not mask. 0 = off.
  uint64_t progress_timeout_ms = 0;
};

struct NemesisResult {
  DriverResult driver;
  uint64_t storage_restarts = 0;
  uint64_t proxy_recoveries = 0;
  // Chaos-palette accounting (zero unless the matching scenario ran).
  uint64_t partitions = 0;       // Partition()+Heal() cycles on the relay
  uint64_t wal_stalls = 0;       // fsync-stall windows opened on the WAL
  uint64_t skew_jumps = 0;       // claimed-timestamp offset jumps
  uint64_t faults_injected = 0;  // relay activations + store-level injections
  // Replicated-tier accounting (zero unless replicas > 1).
  uint64_t failovers = 0;             // automatic primary moves (all stores)
  uint64_t replica_resyncs = 0;       // completed catch-up passes
  uint64_t replica_resync_epochs = 0; // epochs of lag cleared by catch-up
  // Longest observed gap between successful commits after warmup (only
  // measured in replicated mode): the client-visible unavailability window.
  uint64_t max_commit_stall_ms = 0;
  History history;  // merged client-observable history (pass to VerifyHistory)
};

StatusOr<NemesisResult> RunNemesis(const NemesisOptions& options);

}  // namespace obladi

#endif  // OBLADI_SRC_AUDIT_NEMESIS_H_
