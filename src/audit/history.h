// Client-observable transaction histories for the serializability audit
// subsystem ("Detecting Incorrect Behavior of Cloud Databases as an
// Outsider", Tan et al. — see PAPERS.md).
//
// The audit trusts nothing inside the proxy: a history is exactly what a
// client can see at the TransactionalKv boundary — per transaction attempt,
// the invocation/response interval, the timestamp handle Begin() returned
// (Obladi's claimed position in the serialization order), the values reads
// observed, the write set, and the outcome. Each client records its own
// attempts to a private buffer (no cross-client synchronization on the hot
// path); traces are serialized per client in src/common/serde.h style and
// merged offline by the verifier.
//
// Outcome semantics match the system's acknowledgment contract:
//   * kCommitted      — Commit() returned OK. Decisions release only after the
//                       epoch is durable, so an acked commit survives crashes.
//   * kAborted        — the client abandoned the attempt before requesting
//                       commit (explicit Abort, MVTSO conflict mid-run). Its
//                       writes were never admitted to a write batch: definite.
//   * kIndeterminate  — Commit() returned an error. Usually a real epoch-end
//                       abort, but a proxy crash can lose the ack after the
//                       epoch became durable, so the verifier must not assume
//                       either way: such a transaction is treated as committed
//                       iff a committed reader observed one of its writes.
#ifndef OBLADI_SRC_AUDIT_HISTORY_H_
#define OBLADI_SRC_AUDIT_HISTORY_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/txn/kv_interface.h"

namespace obladi {

enum class TxnOutcome : uint8_t {
  kCommitted = 0,
  kAborted = 1,
  kIndeterminate = 2,
};

const char* TxnOutcomeName(TxnOutcome outcome);

// One read as the client saw it: either a value or an explicit not-found.
struct ObservedRead {
  Key key;
  bool found = false;
  std::string value;

  bool operator==(const ObservedRead&) const = default;
};

// One transaction attempt. Retries of a client-level transaction are separate
// attempts with separate Begin() handles and separate intervals — the audited
// real-time edges of a committed retry come from its *final* attempt, never
// from the first invocation.
struct TxnTraceRecord {
  Timestamp ts = 0;           // Begin() handle = claimed serialization position
  uint32_t client = 0;
  uint64_t invoke_us = 0;     // taken immediately before Begin()
  uint64_t response_us = 0;   // taken immediately after Commit()/Abort() returned
  TxnOutcome outcome = TxnOutcome::kIndeterminate;
  std::vector<ObservedRead> reads;
  std::vector<std::pair<Key, std::string>> writes;  // final value per key

  bool operator==(const TxnTraceRecord&) const = default;
};

// A merged multi-client history plus the initial database image (needed to
// resolve reads that observe pre-loaded values).
struct History {
  std::vector<std::pair<Key, std::string>> initial;
  std::vector<TxnTraceRecord> txns;
};

// --- binary trace serde ------------------------------------------------------
//
// Per-client trace file layout (little endian, serde.h primitives):
//   magic u32 "OBA1" | format u8 | client u32 | record*
//   record: u8 kind (1 = txn, 2 = initial key/value)
// A directory of traces is the unit the offline tools operate on: one
// `client<N>.trace` per client plus `initial.trace` for the loaded database.

// Serializes one client's records (initial pairs may be empty; they normally
// live only in the client-0 / initial trace).
Bytes EncodeTrace(uint32_t client, const std::vector<TxnTraceRecord>& txns,
                  const std::vector<std::pair<Key, std::string>>& initial);

// Parses one trace buffer, appending into `out` (txns keep the file's client
// id; initial pairs accumulate).
Status DecodeTrace(const Bytes& buf, History& out);

// Reads and merges every `*.trace` file in `dir` (or a single trace file).
StatusOr<History> LoadHistory(const std::string& path);
StatusOr<History> LoadHistoryFiles(const std::vector<std::string>& paths);

}  // namespace obladi

#endif  // OBLADI_SRC_AUDIT_HISTORY_H_
