// History recorder: a thin tracing decorator at the TransactionalKv boundary.
//
// Each client thread owns a private ClientHistory and wraps the shared store
// in a RecordingKv — recording is a few vector pushes and two clock reads per
// attempt, with no cross-client locks, so it stays on even in benchmarks
// (bench_audit_overhead gates the cost). The workload driver attaches one
// RecordingKv per thread when DriverOptions.recorder is set.
//
// Retries: RunTransaction begins a fresh transaction per attempt, so every
// attempt is its own TxnTraceRecord with its own invocation/response
// interval. A committed retry's audited real-time edges therefore come from
// the final attempt — using the first attempt's invocation would make
// real-time constraints spuriously tight (audit_test pins this).
#ifndef OBLADI_SRC_AUDIT_RECORDER_H_
#define OBLADI_SRC_AUDIT_RECORDER_H_

#include <memory>
#include <vector>

#include "src/audit/history.h"
#include "src/common/clock.h"

namespace obladi {

// One client's attempt records. Thread-confined while its client runs; the
// recorder reads it only after the run (driver threads are joined).
class ClientHistory {
 public:
  explicit ClientHistory(uint32_t client) : client_(client) {}

  uint32_t client() const { return client_; }
  const std::vector<TxnTraceRecord>& records() const { return records_; }

  // --- called by RecordingKv -----------------------------------------------
  void OpenTxn(Timestamp ts, uint64_t invoke_us);
  void AddRead(Timestamp ts, const Key& key, bool found, const std::string& value);
  void AddWrite(Timestamp ts, const Key& key, const std::string& value);
  void CloseTxn(Timestamp ts, TxnOutcome outcome, uint64_t response_us);

 private:
  TxnTraceRecord* Open(Timestamp ts);

  uint32_t client_;
  std::vector<TxnTraceRecord> records_;
  // Closed-loop clients have at most one open attempt; keep a tiny open set
  // anyway so interleaved handles are not silently mis-attributed.
  std::vector<TxnTraceRecord> open_;
};

// TransactionalKv decorator that records every attempt to a ClientHistory.
// NOT thread-safe: one instance per client thread, like the history itself.
class RecordingKv : public TransactionalKv {
 public:
  RecordingKv(TransactionalKv& inner, ClientHistory& history)
      : inner_(inner), history_(history) {}

  Timestamp Begin() override;
  StatusOr<std::string> Read(Timestamp txn, const Key& key) override;
  Status Write(Timestamp txn, const Key& key, std::string value) override;
  Status Commit(Timestamp txn) override;
  void Abort(Timestamp txn) override;

 private:
  TransactionalKv& inner_;
  ClientHistory& history_;
};

// Owns the per-client histories for one run and serializes them afterwards.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(size_t num_clients);

  size_t num_clients() const { return clients_.size(); }
  ClientHistory& Client(size_t i) { return *clients_[i]; }

  // The loaded database image, recorded once before the run.
  void RecordInitialDb(const std::vector<std::pair<Key, std::string>>& records);

  // Merge every client's records into one history (sorted by claimed ts).
  History Merge() const;

  // Serialized size of all traces (what WriteTraces would emit).
  uint64_t TraceBytes() const;

  // Write `initial.trace` + one `client<N>.trace` per client into `dir`
  // (created if missing). Returns total bytes written.
  StatusOr<uint64_t> WriteTraces(const std::string& dir) const;

  struct Totals {
    uint64_t attempts = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t indeterminate = 0;
  };
  Totals totals() const;

 private:
  std::vector<std::unique_ptr<ClientHistory>> clients_;
  std::vector<std::pair<Key, std::string>> initial_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_AUDIT_RECORDER_H_
