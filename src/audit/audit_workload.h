// Workload purpose-built for serializability auditing: every value embeds
// the writing attempt's Begin() timestamp, so each (key, value) pair in a
// history has exactly one possible writer and the offline verifier can
// reconstruct write->read dependencies from observed values alone. (A retry
// is a fresh attempt with a fresh timestamp, so even "the same" logical
// write stays globally unique.)
//
// Each transaction touches `ops_per_txn` distinct keys; per key it reads,
// then (with write_fraction probability, at least one write per txn) writes
// the unique value. Keys are drawn uniformly or Zipf-skewed — skew is what
// makes the history dense enough in per-key version chains for the audit to
// have real dependencies to check.
#ifndef OBLADI_SRC_AUDIT_AUDIT_WORKLOAD_H_
#define OBLADI_SRC_AUDIT_AUDIT_WORKLOAD_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/workload.h"

namespace obladi {

struct AuditWorkloadConfig {
  uint64_t num_keys = 256;
  double zipf_theta = 0.0;   // 0 = uniform
  size_t ops_per_txn = 4;    // distinct keys touched per transaction
  double write_fraction = 0.5;
  size_t value_size = 64;    // values are padded up to this size
};

class AuditWorkload : public Workload {
 public:
  explicit AuditWorkload(AuditWorkloadConfig cfg) : cfg_(cfg) {
    if (cfg_.zipf_theta > 0) {
      zipf_ = std::make_unique<ZipfianGenerator>(cfg_.num_keys, cfg_.zipf_theta);
    }
  }

  std::string name() const override { return "audit"; }

  static Key MakeKey(uint64_t id) { return "ak" + std::to_string(id); }

  std::vector<std::pair<Key, std::string>> InitialRecords() override {
    std::vector<std::pair<Key, std::string>> out;
    out.reserve(cfg_.num_keys);
    for (uint64_t i = 0; i < cfg_.num_keys; ++i) {
      out.emplace_back(MakeKey(i), Pad("init:" + std::to_string(i)));
    }
    return out;
  }

  Status RunOne(TransactionalKv& kv, Rng& rng) override {
    // Pre-draw distinct keys and the read/write mix so retries replay the
    // same logical transaction (only the embedded timestamp differs).
    std::vector<uint64_t> keys;
    while (keys.size() < cfg_.ops_per_txn) {
      uint64_t id = NextKey(rng);
      if (std::find(keys.begin(), keys.end(), id) == keys.end()) {
        keys.push_back(id);
      }
    }
    std::vector<bool> writes(keys.size());
    bool any_write = false;
    for (size_t i = 0; i < keys.size(); ++i) {
      writes[i] = rng.Bernoulli(cfg_.write_fraction);
      any_write = any_write || writes[i];
    }
    if (!any_write) {
      writes[rng.Uniform(writes.size())] = true;  // keep histories value-dense
    }
    return RunTransaction(kv, [&](Txn& txn) -> Status {
      for (size_t i = 0; i < keys.size(); ++i) {
        auto v = txn.Read(MakeKey(keys[i]));
        if (!v.ok() && v.status().code() != StatusCode::kNotFound) {
          return v.status();
        }
        if (writes[i]) {
          Status st = txn.Write(
              MakeKey(keys[i]),
              Pad("a" + std::to_string(txn.ts()) + ":" + std::to_string(keys[i])));
          if (!st.ok()) {
            return st;
          }
        }
      }
      return Status::Ok();
    });
  }

 private:
  uint64_t NextKey(Rng& rng) {
    if (zipf_ != nullptr) {
      return zipf_->NextScrambled(rng);
    }
    return rng.Uniform(cfg_.num_keys);
  }

  std::string Pad(std::string s) const {
    if (s.size() < cfg_.value_size) {
      s.resize(cfg_.value_size, '.');
    }
    return s;
  }

  AuditWorkloadConfig cfg_;
  std::unique_ptr<ZipfianGenerator> zipf_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_AUDIT_AUDIT_WORKLOAD_H_
