#include "src/audit/verifier.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace obladi {

namespace {

constexpr size_t kMaxViolations = 20;
constexpr size_t kMaxRealTimeViolations = 5;
constexpr int32_t kInitSource = -1;  // "writer" id of the initial image

std::string NodeName(const History& h, int32_t txn_idx) {
  if (txn_idx < 0) {
    return "INIT";
  }
  const TxnTraceRecord& t = h.txns[static_cast<size_t>(txn_idx)];
  return "T" + std::to_string(t.ts) + "(c" + std::to_string(t.client) + ")";
}

std::string Step(const History& h, int32_t from, const std::string& label, int32_t to) {
  return NodeName(h, from) + " --" + label + "--> " + NodeName(h, to);
}

// Effective outcome after the inferred-commit fixpoint.
enum class Eff : uint8_t { kUnknown, kCommitted, kAborted };

struct ValueIndex {
  // (key, value) -> index of the writing transaction, or kInitSource.
  std::unordered_map<Key, std::unordered_map<std::string, int32_t>> by_key;
  // key -> initial value (keys absent here started nonexistent).
  std::unordered_map<Key, std::string> initial;
};

// Unique writes are the whole basis of dependency reconstruction, so a
// duplicate (key, value) across writers makes the history unauditable.
Status BuildValueIndex(const History& h, ValueIndex& out) {
  for (const auto& [key, value] : h.initial) {
    if (!out.initial.emplace(key, value).second) {
      return Status::InvalidArgument("ambiguous history: duplicate initial key " + key);
    }
    out.by_key[key].emplace(value, kInitSource);
  }
  for (size_t i = 0; i < h.txns.size(); ++i) {
    for (const auto& [key, value] : h.txns[i].writes) {
      auto [it, inserted] = out.by_key[key].emplace(value, static_cast<int32_t>(i));
      if (!inserted) {
        return Status::InvalidArgument(
            "ambiguous history: duplicate write of key " + key + " by " +
            NodeName(h, it->second) + " and " + NodeName(h, static_cast<int32_t>(i)) +
            " (audit workloads must embed the txn timestamp in every value)");
      }
    }
  }
  return Status::Ok();
}

// Resolves an observed value to its writer; nullopt-style: returns false when
// nothing ever wrote it.
bool Resolve(const ValueIndex& idx, const Key& key, const std::string& value,
             int32_t& source) {
  auto kit = idx.by_key.find(key);
  if (kit == idx.by_key.end()) {
    return false;
  }
  auto vit = kit->second.find(value);
  if (vit == kit->second.end()) {
    return false;
  }
  source = vit->second;
  return true;
}

// Indeterminate transactions become committed iff a committed reader observed
// one of their writes. Sound under MVTSO cascades: a reader that observed an
// uncommitted write can only commit after (and if) the writer does, so a
// committed reader is proof of the writer's commit. Iterate to fixpoint since
// each inferred commit can vouch for further writers it read from.
uint64_t InferCommits(const History& h, const ValueIndex& idx, std::vector<Eff>& eff) {
  uint64_t inferred = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < h.txns.size(); ++i) {
      if (eff[i] != Eff::kCommitted) {
        continue;
      }
      for (const ObservedRead& read : h.txns[i].reads) {
        int32_t source = kInitSource;
        if (!read.found || !Resolve(idx, read.key, read.value, source) || source < 0) {
          continue;
        }
        Eff& src = eff[static_cast<size_t>(source)];
        if (src == Eff::kUnknown) {
          src = Eff::kCommitted;
          ++inferred;
          changed = true;
        }
      }
    }
  }
  return inferred;
}

// One committed version of a key, in claimed-timestamp order.
struct Version {
  Timestamp ts;
  int32_t txn;  // index into history.txns
};

class ViolationSink {
 public:
  explicit ViolationSink(AuditReport& report) : report_(report) {}

  void Add(ViolationKind kind, std::string description,
           std::vector<std::string> cycle = {}) {
    if (report_.violations.size() >= kMaxViolations) {
      report_.truncated = true;
      return;
    }
    report_.violations.push_back(
        {kind, std::move(description), std::move(cycle)});
  }

 private:
  AuditReport& report_;
};

// Serialization graph over committed transactions + INIT (node 0). Parallel
// edges between the same pair are collapsed (one suffices for cycles).
struct Graph {
  std::vector<std::string> names;
  std::vector<std::vector<std::pair<int, std::string>>> adj;
  std::unordered_map<int64_t, char> edge_set;

  int AddNode(std::string name) {
    names.push_back(std::move(name));
    adj.emplace_back();
    return static_cast<int>(names.size()) - 1;
  }

  void AddEdge(int from, int to, const std::string& label) {
    if (from == to) {
      return;
    }
    int64_t id = (static_cast<int64_t>(from) << 32) | static_cast<uint32_t>(to);
    if (!edge_set.emplace(id, 1).second) {
      return;
    }
    adj[static_cast<size_t>(from)].emplace_back(to, label);
  }

  size_t num_edges() const { return edge_set.size(); }
};

// Finds a shortest cycle through some node that provably lies on one, or
// returns an empty vector if the graph is acyclic. Iterative throughout —
// per-key write chains make recursion-depth proportional to history length.
std::vector<std::string> FindCycle(const Graph& g) {
  const size_t n = g.names.size();
  // Forward prune: repeatedly drop nodes with no incoming edges.
  std::vector<int> indeg(n, 0);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& [v, label] : g.adj[u]) {
      ++indeg[static_cast<size_t>(v)];
    }
  }
  std::deque<int> queue;
  std::vector<char> alive(n, 1);
  for (size_t u = 0; u < n; ++u) {
    if (indeg[u] == 0) {
      queue.push_back(static_cast<int>(u));
    }
  }
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    alive[static_cast<size_t>(u)] = 0;
    for (const auto& [v, label] : g.adj[static_cast<size_t>(u)]) {
      if (--indeg[static_cast<size_t>(v)] == 0) {
        queue.push_back(v);
      }
    }
  }
  // Backward prune on survivors: drop nodes with no outgoing live edges.
  std::vector<int> outdeg(n, 0);
  for (size_t u = 0; u < n; ++u) {
    if (!alive[u]) {
      continue;
    }
    for (const auto& [v, label] : g.adj[u]) {
      if (alive[static_cast<size_t>(v)]) {
        ++outdeg[u];
      }
    }
  }
  bool pruned = true;
  while (pruned) {
    pruned = false;
    for (size_t u = 0; u < n; ++u) {
      if (alive[u] && outdeg[u] == 0) {
        alive[u] = 0;
        pruned = true;
        for (size_t w = 0; w < n; ++w) {
          if (!alive[w]) {
            continue;
          }
          for (const auto& [v, label] : g.adj[w]) {
            if (static_cast<size_t>(v) == u) {
              --outdeg[w];
              break;
            }
          }
        }
      }
    }
  }
  int start = -1;
  for (size_t u = 0; u < n; ++u) {
    if (alive[u]) {
      start = static_cast<int>(u);
      break;
    }
  }
  if (start < 0) {
    return {};
  }
  // Walk live edges until a node repeats: that node is on a cycle.
  std::vector<char> visited(n, 0);
  int cur = start;
  while (!visited[static_cast<size_t>(cur)]) {
    visited[static_cast<size_t>(cur)] = 1;
    int next = -1;
    for (const auto& [v, label] : g.adj[static_cast<size_t>(cur)]) {
      if (alive[static_cast<size_t>(v)]) {
        next = v;
        break;
      }
    }
    if (next < 0) {
      return {};  // cannot happen after the backward prune; stay safe
    }
    cur = next;
  }
  const int anchor = cur;
  // BFS from the anchor over live nodes for the shortest cycle through it.
  std::vector<int> parent(n, -1);
  std::vector<std::string> via(n);
  std::vector<char> reached(n, 0);
  std::deque<int> bfs{anchor};
  reached[static_cast<size_t>(anchor)] = 1;
  int closer = -1;          // node whose edge closes the cycle back to anchor
  std::string closer_label;
  while (!bfs.empty() && closer < 0) {
    int u = bfs.front();
    bfs.pop_front();
    for (const auto& [v, label] : g.adj[static_cast<size_t>(u)]) {
      if (!alive[static_cast<size_t>(v)]) {
        continue;
      }
      if (v == anchor) {
        closer = u;
        closer_label = label;
        break;
      }
      if (!reached[static_cast<size_t>(v)]) {
        reached[static_cast<size_t>(v)] = 1;
        parent[static_cast<size_t>(v)] = u;
        via[static_cast<size_t>(v)] = label;
        bfs.push_back(v);
      }
    }
  }
  if (closer < 0) {
    return {};  // unreachable, but do not crash on a malformed graph
  }
  std::vector<int> path;  // anchor .. closer
  for (int u = closer; u != -1; u = parent[static_cast<size_t>(u)]) {
    path.push_back(u);
  }
  std::reverse(path.begin(), path.end());
  std::vector<std::string> steps;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    steps.push_back(g.names[static_cast<size_t>(path[i])] + " --" +
                    via[static_cast<size_t>(path[i + 1])] + "--> " +
                    g.names[static_cast<size_t>(path[i + 1])]);
  }
  steps.push_back(g.names[static_cast<size_t>(closer)] + " --" + closer_label +
                  "--> " + g.names[static_cast<size_t>(anchor)]);
  return steps;
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kDirtyRead: return "dirty-read";
    case ViolationKind::kCorruptRead: return "corrupt-read";
    case ViolationKind::kStaleRead: return "stale-read";
    case ViolationKind::kFutureRead: return "future-read";
    case ViolationKind::kCycle: return "cycle";
    case ViolationKind::kRealTime: return "real-time";
  }
  return "unknown";
}

std::string Violation::ToString() const {
  std::string out = std::string(ViolationKindName(kind)) + ": " + description;
  for (const std::string& step : cycle) {
    out += "\n    " + step;
  }
  return out;
}

std::string AuditReport::Summary() const {
  std::string out = serializable ? "serializable" : "NOT serializable";
  out += ": " + std::to_string(txns) + " txns (" + std::to_string(committed) +
         " committed, " + std::to_string(inferred_committed) + " inferred, " +
         std::to_string(aborted) + " aborted, " + std::to_string(indeterminate) +
         " indeterminate), " + std::to_string(reads_checked) + " reads checked, " +
         std::to_string(graph_edges) + " graph edges";
  if (!violations.empty()) {
    out += ", " + std::to_string(violations.size()) + " violation(s)";
    if (truncated) {
      out += " (truncated)";
    }
  }
  return out;
}

StatusOr<AuditReport> VerifyHistory(const History& history) {
  AuditReport report;
  report.txns = history.txns.size();

  ValueIndex index;
  OBLADI_RETURN_IF_ERROR(BuildValueIndex(history, index));

  std::vector<Eff> eff(history.txns.size(), Eff::kUnknown);
  for (size_t i = 0; i < history.txns.size(); ++i) {
    switch (history.txns[i].outcome) {
      case TxnOutcome::kCommitted:
        eff[i] = Eff::kCommitted;
        ++report.committed;
        break;
      case TxnOutcome::kAborted:
        eff[i] = Eff::kAborted;
        ++report.aborted;
        break;
      case TxnOutcome::kIndeterminate:
        break;
    }
  }
  report.inferred_committed = InferCommits(history, index, eff);
  report.indeterminate = history.txns.size() - report.committed -
                         report.inferred_committed - report.aborted;

  // Claimed timestamps must be unique: they are Begin() handles from one
  // global counter, so a collision means the traces are corrupt.
  {
    std::unordered_map<Timestamp, size_t> by_ts;
    for (size_t i = 0; i < history.txns.size(); ++i) {
      auto [it, inserted] = by_ts.emplace(history.txns[i].ts, i);
      if (!inserted) {
        return Status::InvalidArgument(
            "corrupt history: duplicate claimed timestamp " +
            std::to_string(history.txns[i].ts));
      }
    }
  }

  // Committed versions of every key, in claimed order.
  std::unordered_map<Key, std::vector<Version>> versions;
  for (size_t i = 0; i < history.txns.size(); ++i) {
    if (eff[i] != Eff::kCommitted) {
      continue;
    }
    for (const auto& [key, value] : history.txns[i].writes) {
      versions[key].push_back({history.txns[i].ts, static_cast<int32_t>(i)});
    }
  }
  for (auto& [key, list] : versions) {
    std::sort(list.begin(), list.end(),
              [](const Version& a, const Version& b) { return a.ts < b.ts; });
  }

  Graph graph;
  graph.AddNode("INIT");  // node 0
  std::vector<int> node_of(history.txns.size(), -1);
  for (size_t i = 0; i < history.txns.size(); ++i) {
    if (eff[i] == Eff::kCommitted) {
      node_of[i] = graph.AddNode(NodeName(history, static_cast<int32_t>(i)));
    }
  }
  for (const auto& [key, list] : versions) {
    int prev = 0;  // INIT wrote (or left absent) the pre-history version
    for (const Version& v : list) {
      graph.AddEdge(prev, node_of[static_cast<size_t>(v.txn)], "ww[" + key + "]");
      prev = node_of[static_cast<size_t>(v.txn)];
    }
  }

  ViolationSink sink(report);

  // Read checks: resolve every committed read, add wr/rw edges, and compare
  // against what the claimed order promises (the latest committed write with
  // a smaller timestamp, else the initial image, else not-found).
  for (size_t i = 0; i < history.txns.size(); ++i) {
    if (eff[i] != Eff::kCommitted) {
      continue;
    }
    const TxnTraceRecord& txn = history.txns[i];
    const int reader_node = node_of[i];
    for (const ObservedRead& read : txn.reads) {
      ++report.reads_checked;
      auto vit = versions.find(read.key);
      const std::vector<Version>* list =
          vit == versions.end() ? nullptr : &vit->second;
      // Position of the expected version: index into `list`, or -1 for the
      // initial image / pre-history absence.
      int expected = -1;
      if (list != nullptr) {
        auto it = std::upper_bound(
            list->begin(), list->end(), txn.ts,
            [](Timestamp ts, const Version& v) { return ts <= v.ts; });
        expected = static_cast<int>(it - list->begin()) - 1;
        // Never expect the reader's own write: it does not precede itself.
        while (expected >= 0 &&
               (*list)[static_cast<size_t>(expected)].txn == static_cast<int32_t>(i)) {
          --expected;
        }
      }
      const bool initial_exists = index.initial.count(read.key) > 0;

      if (!read.found) {
        // Keys are never deleted, so not-found is only honest before the
        // first committed write and absent any initial value.
        graph.AddEdge(0, reader_node, "wr[" + read.key + "]");
        if (list != nullptr && !list->empty()) {
          graph.AddEdge(reader_node, node_of[static_cast<size_t>((*list)[0].txn)],
                        "rw[" + read.key + "]");
        }
        if (expected >= 0) {
          const Version& want = (*list)[static_cast<size_t>(expected)];
          sink.Add(ViolationKind::kStaleRead,
                   NodeName(history, static_cast<int32_t>(i)) + " read " + read.key +
                       " as not-found but " + NodeName(history, want.txn) +
                       " committed a write with a smaller timestamp",
                   {Step(history, static_cast<int32_t>(i), "rw[" + read.key + "]",
                         want.txn),
                    Step(history, want.txn, "ts", static_cast<int32_t>(i))});
        } else if (initial_exists) {
          sink.Add(ViolationKind::kStaleRead,
                   NodeName(history, static_cast<int32_t>(i)) + " read " + read.key +
                       " as not-found but the key exists in the initial database");
        }
        continue;
      }

      int32_t source = kInitSource;
      if (!Resolve(index, read.key, read.value, source)) {
        sink.Add(ViolationKind::kCorruptRead,
                 NodeName(history, static_cast<int32_t>(i)) + " read " + read.key +
                     " = a value no transaction (and no initial load) ever wrote");
        continue;
      }
      if (source == static_cast<int32_t>(i)) {
        continue;  // read its own earlier write: internal, not an edge
      }
      if (source >= 0 && eff[static_cast<size_t>(source)] == Eff::kAborted) {
        sink.Add(ViolationKind::kDirtyRead,
                 NodeName(history, static_cast<int32_t>(i)) + " read " + read.key +
                     " = a value written only by aborted " +
                     NodeName(history, source));
        continue;
      }
      if (source >= 0 && eff[static_cast<size_t>(source)] != Eff::kCommitted) {
        // Unreachable: a committed reader makes its writer inferred-committed.
        continue;
      }
      const int source_node = source < 0 ? 0 : node_of[static_cast<size_t>(source)];
      graph.AddEdge(source_node, reader_node, "wr[" + read.key + "]");
      // Anti-dependency: the reader precedes whichever committed write
      // replaced the version it observed.
      int source_pos = -1;
      if (source >= 0 && list != nullptr) {
        for (size_t p = 0; p < list->size(); ++p) {
          if ((*list)[p].txn == source) {
            source_pos = static_cast<int>(p);
            break;
          }
        }
      }
      if (list != nullptr &&
          static_cast<size_t>(source_pos + 1) < list->size()) {
        graph.AddEdge(reader_node,
                      node_of[static_cast<size_t>(
                          (*list)[static_cast<size_t>(source_pos + 1)].txn)],
                      "rw[" + read.key + "]");
      }

      // Claimed-order comparison.
      const int32_t expected_src =
          expected >= 0 ? (*list)[static_cast<size_t>(expected)].txn
                        : (initial_exists ? kInitSource : kInitSource - 1);
      const int32_t observed_src = source;
      if (observed_src == expected_src) {
        continue;
      }
      const Timestamp src_ts =
          source < 0 ? 0 : history.txns[static_cast<size_t>(source)].ts;
      if (source >= 0 && src_ts > txn.ts) {
        sink.Add(ViolationKind::kFutureRead,
                 NodeName(history, static_cast<int32_t>(i)) + " read " + read.key +
                     " = the write of " + NodeName(history, source) +
                     ", whose claimed timestamp is larger",
                 {Step(history, static_cast<int32_t>(i), "ts", source),
                  Step(history, source, "wr[" + read.key + "]",
                       static_cast<int32_t>(i))});
      } else {
        const std::string want =
            expected >= 0
                ? "the write of " +
                      NodeName(history, (*list)[static_cast<size_t>(expected)].txn)
                : (initial_exists ? std::string("the initial value")
                                  : std::string("not-found"));
        std::vector<std::string> cycle;
        if (expected >= 0) {
          cycle = {Step(history, static_cast<int32_t>(i), "rw[" + read.key + "]",
                        (*list)[static_cast<size_t>(expected)].txn),
                   Step(history, (*list)[static_cast<size_t>(expected)].txn, "ts",
                        static_cast<int32_t>(i))};
        }
        sink.Add(ViolationKind::kStaleRead,
                 NodeName(history, static_cast<int32_t>(i)) + " read " + read.key +
                     " = the write of " + NodeName(history, source) +
                     " but the claimed order promises " + want,
                 std::move(cycle));
      }
    }
  }
  report.graph_edges = graph.num_edges();

  // Cycle check over the full serialization graph.
  std::vector<std::string> cycle = FindCycle(graph);
  if (!cycle.empty()) {
    sink.Add(ViolationKind::kCycle,
             "serialization graph contains a cycle of length " +
                 std::to_string(cycle.size()),
             std::move(cycle));
  }

  // Real-time check, acked commits only: an ack releases after epoch
  // durability, so a transaction that finished before another began must
  // precede it in the claimed order. Inferred commits are excluded — their
  // response instants report an error, not an ack.
  {
    struct RtTxn {
      Timestamp ts;
      uint64_t invoke;
      uint64_t response;
      int32_t idx;
    };
    std::vector<RtTxn> acked;
    for (size_t i = 0; i < history.txns.size(); ++i) {
      if (history.txns[i].outcome == TxnOutcome::kCommitted) {
        acked.push_back({history.txns[i].ts, history.txns[i].invoke_us,
                         history.txns[i].response_us, static_cast<int32_t>(i)});
      }
    }
    std::sort(acked.begin(), acked.end(),
              [](const RtTxn& a, const RtTxn& b) { return a.ts < b.ts; });
    size_t reported = 0;
    if (!acked.empty()) {
      // suffix_min[j] = the earliest response among acked txns with a larger
      // claimed timestamp than acked[j].
      std::vector<size_t> argmin(acked.size());
      size_t best = acked.size() - 1;
      for (size_t j = acked.size(); j-- > 0;) {
        if (acked[j].response < acked[best].response) {
          best = j;
        }
        argmin[j] = best;
      }
      for (size_t j = 0; j + 1 < acked.size(); ++j) {
        const RtTxn& b = acked[j];
        const RtTxn& a = acked[argmin[j + 1]];
        if (a.response < b.invoke) {
          if (reported++ < kMaxRealTimeViolations) {
            sink.Add(ViolationKind::kRealTime,
                     NodeName(history, a.idx) + " was acked before " +
                         NodeName(history, b.idx) +
                         " was invoked, yet claims a larger timestamp",
                     {Step(history, a.idx, "rt", b.idx),
                      Step(history, b.idx, "ts", a.idx)});
          } else {
            report.truncated = true;
          }
        }
      }
    }
  }

  report.serializable = report.violations.empty() && !report.truncated;
  return report;
}

// --- violation injection -----------------------------------------------------

const char* InjectKindName(InjectKind kind) {
  switch (kind) {
    case InjectKind::kDropCommittedWrite: return "drop_write";
    case InjectKind::kSwapReadResults: return "swap_reads";
    case InjectKind::kFractureEpoch: return "fracture_epoch";
  }
  return "unknown";
}

StatusOr<InjectKind> ParseInjectKind(const std::string& name) {
  if (name == "drop_write") return InjectKind::kDropCommittedWrite;
  if (name == "swap_reads") return InjectKind::kSwapReadResults;
  if (name == "fracture_epoch") return InjectKind::kFractureEpoch;
  return Status::InvalidArgument(
      "unknown injection kind '" + name +
      "' (expected drop_write, swap_reads or fracture_epoch)");
}

std::vector<ViolationKind> ExpectedViolationsFor(InjectKind kind) {
  switch (kind) {
    case InjectKind::kDropCommittedWrite:
      return {ViolationKind::kCorruptRead};
    case InjectKind::kSwapReadResults:
      return {ViolationKind::kStaleRead, ViolationKind::kFutureRead,
              ViolationKind::kCycle};
    case InjectKind::kFractureEpoch:
      return {ViolationKind::kRealTime};
  }
  return {};
}

StatusOr<std::string> InjectViolation(History& history, InjectKind kind,
                                      uint64_t seed) {
  Rng rng(seed);
  ValueIndex index;
  OBLADI_RETURN_IF_ERROR(BuildValueIndex(history, index));

  auto committed = [&](size_t i) {
    return history.txns[i].outcome == TxnOutcome::kCommitted;
  };

  switch (kind) {
    case InjectKind::kDropCommittedWrite: {
      // Only a write some *other* committed transaction observed is worth
      // dropping — an unobserved write vanishes without a trace.
      std::vector<std::pair<size_t, size_t>> sites;  // (writer txn, write idx)
      for (size_t i = 0; i < history.txns.size(); ++i) {
        if (!committed(i)) {
          continue;
        }
        for (size_t w = 0; w < history.txns[i].writes.size(); ++w) {
          const auto& [key, value] = history.txns[i].writes[w];
          bool observed = false;
          for (size_t r = 0; r < history.txns.size() && !observed; ++r) {
            if (r == i || !committed(r)) {
              continue;
            }
            for (const ObservedRead& read : history.txns[r].reads) {
              if (read.found && read.key == key && read.value == value) {
                observed = true;
                break;
              }
            }
          }
          if (observed) {
            sites.emplace_back(i, w);
          }
        }
      }
      if (sites.empty()) {
        return Status::NotFound("no committed write was observed by another txn");
      }
      auto [ti, wi] = sites[rng.Uniform(sites.size())];
      TxnTraceRecord& txn = history.txns[ti];
      std::string desc = "dropped committed write of " + txn.writes[wi].first +
                         " by " + NodeName(history, static_cast<int32_t>(ti));
      txn.writes.erase(txn.writes.begin() + static_cast<ptrdiff_t>(wi));
      return desc;
    }

    case InjectKind::kSwapReadResults: {
      // Two committed reads of the same key observing different, non-own
      // values: after the swap at least one observes the wrong version.
      struct Site {
        size_t txn;
        size_t read;
        int32_t source;
      };
      std::unordered_map<Key, std::vector<Site>> by_key;
      for (size_t i = 0; i < history.txns.size(); ++i) {
        if (!committed(i)) {
          continue;
        }
        for (size_t r = 0; r < history.txns[i].reads.size(); ++r) {
          const ObservedRead& read = history.txns[i].reads[r];
          int32_t source = kInitSource;
          if (!read.found || !Resolve(index, read.key, read.value, source)) {
            continue;
          }
          if (source == static_cast<int32_t>(i)) {
            continue;  // own-write observations are skipped by the verifier
          }
          by_key[read.key].push_back({i, r, source});
        }
      }
      std::vector<std::pair<Site, Site>> pairs;
      for (const auto& [key, sites] : by_key) {
        for (size_t a = 0; a < sites.size(); ++a) {
          for (size_t b = a + 1; b < sites.size(); ++b) {
            if (sites[a].source == sites[b].source) {
              continue;  // same value: swapping would change nothing
            }
            // Neither value may become an own-write of its new reader.
            if (sites[a].source == static_cast<int32_t>(sites[b].txn) ||
                sites[b].source == static_cast<int32_t>(sites[a].txn)) {
              continue;
            }
            pairs.emplace_back(sites[a], sites[b]);
          }
        }
      }
      if (pairs.empty()) {
        return Status::NotFound("no two committed reads of a key saw different values");
      }
      auto [sa, sb] = pairs[rng.Uniform(pairs.size())];
      ObservedRead& ra = history.txns[sa.txn].reads[sa.read];
      ObservedRead& rb = history.txns[sb.txn].reads[sb.read];
      std::swap(ra.value, rb.value);
      std::swap(ra.found, rb.found);
      return "swapped reads of " + ra.key + " between " +
             NodeName(history, static_cast<int32_t>(sa.txn)) + " and " +
             NodeName(history, static_cast<int32_t>(sb.txn));
    }

    case InjectKind::kFractureEpoch: {
      // Move one acked transaction's interval after another acked
      // transaction with a *larger* timestamp has already responded — as if
      // an epoch's visibility barrier had been fractured.
      size_t last = history.txns.size();
      for (size_t i = 0; i < history.txns.size(); ++i) {
        if (committed(i) &&
            (last == history.txns.size() ||
             history.txns[i].response_us > history.txns[last].response_us)) {
          last = i;
        }
      }
      if (last == history.txns.size()) {
        return Status::NotFound("no acked commit in history");
      }
      std::vector<size_t> earlier;
      for (size_t i = 0; i < history.txns.size(); ++i) {
        if (committed(i) && history.txns[i].ts < history.txns[last].ts) {
          earlier.push_back(i);
        }
      }
      if (earlier.empty()) {
        return Status::NotFound("no acked commit with a smaller timestamp");
      }
      size_t victim = earlier[rng.Uniform(earlier.size())];
      TxnTraceRecord& b = history.txns[victim];
      b.invoke_us = history.txns[last].response_us + 1;
      b.response_us = b.invoke_us + 10;
      return "moved the interval of " +
             NodeName(history, static_cast<int32_t>(victim)) + " after the ack of " +
             NodeName(history, static_cast<int32_t>(last)) +
             ", which claims a larger timestamp";
    }
  }
  return Status::InvalidArgument("unknown injection kind");
}

}  // namespace obladi
