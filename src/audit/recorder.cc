#include "src/audit/recorder.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace obladi {

// --- ClientHistory -----------------------------------------------------------

TxnTraceRecord* ClientHistory::Open(Timestamp ts) {
  for (TxnTraceRecord& rec : open_) {
    if (rec.ts == ts) {
      return &rec;
    }
  }
  return nullptr;
}

void ClientHistory::OpenTxn(Timestamp ts, uint64_t invoke_us) {
  TxnTraceRecord rec;
  rec.ts = ts;
  rec.client = client_;
  rec.invoke_us = invoke_us;
  open_.push_back(std::move(rec));
}

void ClientHistory::AddRead(Timestamp ts, const Key& key, bool found,
                            const std::string& value) {
  if (TxnTraceRecord* rec = Open(ts)) {
    rec->reads.push_back({key, found, found ? value : std::string()});
  }
}

void ClientHistory::AddWrite(Timestamp ts, const Key& key, const std::string& value) {
  TxnTraceRecord* rec = Open(ts);
  if (rec == nullptr) {
    return;
  }
  for (auto& [k, v] : rec->writes) {
    if (k == key) {
      v = value;  // last write per key wins, matching the MVTSO write set
      return;
    }
  }
  rec->writes.emplace_back(key, value);
}

void ClientHistory::CloseTxn(Timestamp ts, TxnOutcome outcome, uint64_t response_us) {
  for (size_t i = 0; i < open_.size(); ++i) {
    if (open_[i].ts != ts) {
      continue;
    }
    TxnTraceRecord rec = std::move(open_[i]);
    open_.erase(open_.begin() + static_cast<ptrdiff_t>(i));
    rec.outcome = outcome;
    rec.response_us = response_us;
    records_.push_back(std::move(rec));
    return;
  }
}

// --- RecordingKv -------------------------------------------------------------

Timestamp RecordingKv::Begin() {
  uint64_t invoke = NowMicros();  // before Begin: the interval covers ts assignment
  Timestamp ts = inner_.Begin();
  history_.OpenTxn(ts, invoke);
  return ts;
}

StatusOr<std::string> RecordingKv::Read(Timestamp txn, const Key& key) {
  auto result = inner_.Read(txn, key);
  if (result.ok()) {
    history_.AddRead(txn, key, /*found=*/true, *result);
  } else if (result.status().code() == StatusCode::kNotFound) {
    history_.AddRead(txn, key, /*found=*/false, std::string());
  }
  // kAborted & co: the attempt is abandoned; Abort() will close the record.
  return result;
}

Status RecordingKv::Write(Timestamp txn, const Key& key, std::string value) {
  std::string observed = value;  // the store takes ownership of the original
  Status st = inner_.Write(txn, key, std::move(value));
  if (st.ok()) {
    history_.AddWrite(txn, key, observed);
  }
  return st;
}

Status RecordingKv::Commit(Timestamp txn) {
  Status st = inner_.Commit(txn);
  uint64_t response = NowMicros();
  // A commit ack is definite (decisions release only after epoch
  // durability); any commit error is indeterminate — an epoch-end abort
  // usually, but a crashed proxy may have lost the ack of a durable epoch,
  // so the verifier decides from observations instead of trusting the error.
  history_.CloseTxn(txn, st.ok() ? TxnOutcome::kCommitted : TxnOutcome::kIndeterminate,
                    response);
  return st;
}

void RecordingKv::Abort(Timestamp txn) {
  inner_.Abort(txn);
  // Abort before a commit request is a definite abort: the writes were never
  // eligible for a write batch. (Abort after Commit already closed the
  // record; CloseTxn is a no-op then.)
  history_.CloseTxn(txn, TxnOutcome::kAborted, NowMicros());
}

// --- HistoryRecorder ---------------------------------------------------------

HistoryRecorder::HistoryRecorder(size_t num_clients) {
  clients_.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    clients_.push_back(std::make_unique<ClientHistory>(static_cast<uint32_t>(i)));
  }
}

void HistoryRecorder::RecordInitialDb(const std::vector<std::pair<Key, std::string>>& records) {
  initial_ = records;
}

History HistoryRecorder::Merge() const {
  History history;
  history.initial = initial_;
  for (const auto& client : clients_) {
    for (const TxnTraceRecord& rec : client->records()) {
      history.txns.push_back(rec);
    }
  }
  std::sort(history.txns.begin(), history.txns.end(),
            [](const TxnTraceRecord& a, const TxnTraceRecord& b) { return a.ts < b.ts; });
  return history;
}

uint64_t HistoryRecorder::TraceBytes() const {
  uint64_t total = EncodeTrace(0, {}, initial_).size();
  for (const auto& client : clients_) {
    total += EncodeTrace(client->client(), client->records(), {}).size();
  }
  return total;
}

StatusOr<uint64_t> HistoryRecorder::WriteTraces(const std::string& dir) const {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Unavailable("cannot create trace directory: " + dir);
  }
  uint64_t total = 0;
  auto write_file = [&](const std::string& name, const Bytes& contents) -> Status {
    std::string path = dir + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::Unavailable("cannot open trace file: " + path);
    }
    size_t put = contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
    std::fclose(f);
    if (put != contents.size()) {
      return Status::Unavailable("short write on trace file: " + path);
    }
    total += contents.size();
    return Status::Ok();
  };
  OBLADI_RETURN_IF_ERROR(write_file("initial.trace", EncodeTrace(0, {}, initial_)));
  for (const auto& client : clients_) {
    OBLADI_RETURN_IF_ERROR(
        write_file("client" + std::to_string(client->client()) + ".trace",
                   EncodeTrace(client->client(), client->records(), {})));
  }
  return total;
}

HistoryRecorder::Totals HistoryRecorder::totals() const {
  Totals totals;
  for (const auto& client : clients_) {
    for (const TxnTraceRecord& rec : client->records()) {
      totals.attempts++;
      switch (rec.outcome) {
        case TxnOutcome::kCommitted: totals.committed++; break;
        case TxnOutcome::kAborted: totals.aborted++; break;
        case TxnOutcome::kIndeterminate: totals.indeterminate++; break;
      }
    }
  }
  return totals;
}

}  // namespace obladi
