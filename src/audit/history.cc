#include "src/audit/history.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>

#include "src/common/serde.h"

namespace obladi {

namespace {

constexpr uint32_t kTraceMagic = 0x3141424fu;  // "OBA1" little endian
constexpr uint8_t kTraceFormat = 1;
constexpr uint8_t kRecordTxn = 1;
constexpr uint8_t kRecordInitial = 2;

}  // namespace

const char* TxnOutcomeName(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted: return "committed";
    case TxnOutcome::kAborted: return "aborted";
    case TxnOutcome::kIndeterminate: return "indeterminate";
  }
  return "unknown";
}

Bytes EncodeTrace(uint32_t client, const std::vector<TxnTraceRecord>& txns,
                  const std::vector<std::pair<Key, std::string>>& initial) {
  BinaryWriter w(64 + txns.size() * 64 + initial.size() * 32);
  w.PutU32(kTraceMagic);
  w.PutU8(kTraceFormat);
  w.PutU32(client);
  for (const auto& [key, value] : initial) {
    w.PutU8(kRecordInitial);
    w.PutString(key);
    w.PutString(value);
  }
  for (const TxnTraceRecord& txn : txns) {
    w.PutU8(kRecordTxn);
    w.PutU64(txn.ts);
    w.PutU64(txn.invoke_us);
    w.PutU64(txn.response_us);
    w.PutU8(static_cast<uint8_t>(txn.outcome));
    w.PutU32(static_cast<uint32_t>(txn.reads.size()));
    for (const ObservedRead& r : txn.reads) {
      w.PutString(r.key);
      w.PutBool(r.found);
      w.PutString(r.value);
    }
    w.PutU32(static_cast<uint32_t>(txn.writes.size()));
    for (const auto& [key, value] : txn.writes) {
      w.PutString(key);
      w.PutString(value);
    }
  }
  return w.Take();
}

Status DecodeTrace(const Bytes& buf, History& out) {
  BinaryReader r(buf);
  if (r.GetU32() != kTraceMagic) {
    return Status::InvalidArgument("not an audit trace (bad magic)");
  }
  if (r.GetU8() != kTraceFormat) {
    return Status::InvalidArgument("unsupported audit trace format");
  }
  uint32_t client = r.GetU32();
  if (!r.ok()) {
    return Status::DataLoss("truncated trace header");
  }
  while (r.remaining() > 0) {
    uint8_t kind = r.GetU8();
    if (kind == kRecordInitial) {
      Key key = r.GetString();
      std::string value = r.GetString();
      if (!r.ok()) {
        return Status::DataLoss("truncated initial record");
      }
      out.initial.emplace_back(std::move(key), std::move(value));
      continue;
    }
    if (kind != kRecordTxn) {
      return Status::InvalidArgument("unknown trace record kind");
    }
    TxnTraceRecord txn;
    txn.client = client;
    txn.ts = r.GetU64();
    txn.invoke_us = r.GetU64();
    txn.response_us = r.GetU64();
    uint8_t outcome = r.GetU8();
    if (outcome > static_cast<uint8_t>(TxnOutcome::kIndeterminate)) {
      return Status::InvalidArgument("bad transaction outcome in trace");
    }
    txn.outcome = static_cast<TxnOutcome>(outcome);
    uint32_t nreads = r.GetU32();
    if (!r.ok() || nreads > r.remaining()) {
      return Status::DataLoss("truncated transaction record");
    }
    txn.reads.reserve(nreads);
    for (uint32_t i = 0; i < nreads; ++i) {
      ObservedRead read;
      read.key = r.GetString();
      read.found = r.GetBool();
      read.value = r.GetString();
      txn.reads.push_back(std::move(read));
    }
    uint32_t nwrites = r.GetU32();
    if (!r.ok() || nwrites > r.remaining()) {
      return Status::DataLoss("truncated transaction record");
    }
    txn.writes.reserve(nwrites);
    for (uint32_t i = 0; i < nwrites; ++i) {
      Key key = r.GetString();
      std::string value = r.GetString();
      txn.writes.emplace_back(std::move(key), std::move(value));
    }
    if (!r.ok()) {
      return Status::DataLoss("truncated transaction record");
    }
    out.txns.push_back(std::move(txn));
  }
  return Status::Ok();
}

namespace {

StatusOr<Bytes> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes contents(size > 0 ? static_cast<size_t>(size) : 0);
  size_t got = contents.empty() ? 0 : std::fread(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  if (got != contents.size()) {
    return Status::DataLoss("short read on trace file: " + path);
  }
  return contents;
}

bool IsDirectory(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace

StatusOr<History> LoadHistoryFiles(const std::vector<std::string>& paths) {
  History history;
  for (const std::string& path : paths) {
    auto contents = ReadWholeFile(path);
    if (!contents.ok()) {
      return contents.status();
    }
    Status st = DecodeTrace(*contents, history);
    if (!st.ok()) {
      return Status(st.code(), path + ": " + st.message());
    }
  }
  // Deterministic order regardless of file enumeration: merged histories are
  // processed in claimed serialization order anyway, but stable input makes
  // violation reports reproducible.
  std::sort(history.txns.begin(), history.txns.end(),
            [](const TxnTraceRecord& a, const TxnTraceRecord& b) { return a.ts < b.ts; });
  return history;
}

StatusOr<History> LoadHistory(const std::string& path) {
  if (!IsDirectory(path)) {
    return LoadHistoryFiles({path});
  }
  std::vector<std::string> files;
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return Status::NotFound("cannot open trace directory: " + path);
  }
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name.size() > 6 && name.substr(name.size() - 6) == ".trace") {
      files.push_back(path + "/" + name);
    }
  }
  ::closedir(dir);
  if (files.empty()) {
    return Status::NotFound("no .trace files in " + path);
  }
  std::sort(files.begin(), files.end());
  return LoadHistoryFiles(files);
}

}  // namespace obladi
