#include "src/audit/nemesis.h"

#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <memory>
#include <thread>

#include "src/audit/audit_workload.h"
#include "src/audit/recorder.h"
#include "src/common/clock.h"
#include "src/net/remote_store.h"
#include "src/net/storage_server.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/file_bucket_store.h"
#include "src/storage/file_log_store.h"

namespace obladi {

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Unavailable("cannot create directory: " + dir);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<NemesisResult> RunNemesis(const NemesisOptions& options) {
  OBLADI_RETURN_IF_ERROR(EnsureDir(options.data_dir));
  const std::string bucket_path = options.data_dir + "/buckets.dat";
  const std::string log_path = options.data_dir + "/wal.dat";
  // Fresh files per run: a nemesis run is a new deployment, not a reopen.
  std::remove(bucket_path.c_str());
  std::remove(log_path.c_str());

  ObladiConfig config = ObladiConfig::ForCapacity(256, /*z=*/4, /*payload=*/128);
  config.num_shards = options.num_shards;
  // Generous batch budget at a fast cadence (the bench app configs' shape):
  // a closed loop of clients must never be starved of read-batch slots, or
  // the run degenerates into unfinished-epoch aborts.
  config.read_batches_per_epoch = 8;
  config.read_batch_size = 64;
  config.write_batch_size = 160;
  config.batch_interval_us = 300;
  config.timed_mode = true;
  config.pipeline_epochs = true;
  config.recovery.enabled = true;
  config.recovery.full_checkpoint_interval = 4;
  config.oram_options.io_threads = 8;
  // The run's final state is dumped as metrics JSON (and feeds the
  // heartbeat), so the registry is always on here.
  config.obs.metrics = true;

  const size_t store_buckets = config.StoreBuckets();
  const size_t slots_per_bucket = config.MakeLayout().shard_config.slots_per_bucket();

  auto buckets = std::make_shared<FileBucketStore>(bucket_path, store_buckets,
                                                   slots_per_bucket);
  auto log = std::make_shared<FileLogStore>(log_path);
  auto server = std::make_unique<StorageServer>(buckets, log);
  OBLADI_RETURN_IF_ERROR(server->Start());
  const uint16_t port = server->port();

  RemoteStoreOptions remote_opts;
  remote_opts.port = port;
  remote_opts.pool_size = 8;
  auto remote_buckets = RemoteBucketStore::Connect(remote_opts);
  OBLADI_RETURN_IF_ERROR(remote_buckets.status());
  auto remote_log = RemoteLogStore::Connect(remote_opts);
  OBLADI_RETURN_IF_ERROR(remote_log.status());

  ObladiStore proxy(config, std::move(*remote_buckets), std::move(*remote_log));

  AuditWorkloadConfig wl_cfg;
  wl_cfg.num_keys = options.num_keys;
  wl_cfg.zipf_theta = options.zipf_theta;
  wl_cfg.ops_per_txn = options.ops_per_txn;
  AuditWorkload workload(wl_cfg);

  auto initial = workload.InitialRecords();
  OBLADI_RETURN_IF_ERROR(proxy.Load(initial));
  HistoryRecorder recorder(options.num_clients);
  recorder.RecordInitialDb(initial);
  proxy.Start();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> storage_restarts{0};
  std::atomic<uint64_t> proxy_recoveries{0};
  Status nemesis_status;  // first hard failure inside the fault thread

  // Recover the proxy from a (simulated or storage-induced) crash, retrying
  // while the storage side settles, then restart the pacer.
  auto recover_proxy = [&]() -> Status {
    Status last;
    for (int attempt = 0; attempt < 50; ++attempt) {
      last = proxy.RecoverFromCrash();
      if (last.ok()) {
        proxy.Start();
        proxy_recoveries.fetch_add(1);
        return last;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return last;
  };

  std::thread nemesis([&] {
    bool next_is_storage = options.kill_storage;
    while (!stop.load(std::memory_order_relaxed)) {
      for (uint64_t waited = 0;
           waited < options.fault_period_ms && !stop.load(std::memory_order_relaxed);
           waited += 10) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (stop.load(std::memory_order_relaxed)) {
        return;
      }
      if (next_is_storage && options.kill_storage) {
        // Kill the storage node and reopen its state from the files.
        server->Stop();
        server.reset();
        buckets.reset();
        log.reset();
        buckets = std::make_shared<FileBucketStore>(bucket_path, store_buckets,
                                                    slots_per_bucket);
        log = std::make_shared<FileLogStore>(log_path);
        StorageServerOptions server_opts;
        server_opts.port = port;
        server = std::make_unique<StorageServer>(buckets, log, server_opts);
        Status started;
        for (int attempt = 0; attempt < 100; ++attempt) {
          started = server->Start();
          if (started.ok()) {
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        if (!started.ok()) {
          nemesis_status = started;
          return;
        }
        storage_restarts.fetch_add(1);
        // The outage fails the proxy's background retirement sticky; crash
        // recovery is the designed failover.
        proxy.SimulateCrash();
        Status recovered = recover_proxy();
        if (!recovered.ok()) {
          nemesis_status = recovered;
          return;
        }
      } else if (options.crash_proxy) {
        proxy.SimulateCrash();
        Status recovered = recover_proxy();
        if (!recovered.ok()) {
          nemesis_status = recovered;
          return;
        }
      }
      if (options.kill_storage && options.crash_proxy) {
        next_is_storage = !next_is_storage;
      }
    }
  });

  // Liveness heartbeat: fault injection makes long runs look hung from the
  // outside (commits stall during recovery), so narrate progress. Reads
  // only proxy.stats() — the ORAM object is replaced across recoveries.
  std::thread heartbeat;
  const uint64_t run_start_us = NowMicros();
  if (options.heartbeat_ms > 0) {
    heartbeat = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint64_t waited = 0;
             waited < options.heartbeat_ms && !stop.load(std::memory_order_relaxed);
             waited += 10) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (stop.load(std::memory_order_relaxed)) {
          return;
        }
        ObladiStats s = proxy.stats();
        std::printf(
            "[nemesis %6.1fs] epochs=%llu committed=%llu aborted=%llu "
            "proxy_recoveries=%llu storage_restarts=%llu\n",
            static_cast<double>(NowMicros() - run_start_us) / 1e6,
            static_cast<unsigned long long>(s.epochs),
            static_cast<unsigned long long>(s.txn_committed),
            static_cast<unsigned long long>(s.txn_aborted),
            static_cast<unsigned long long>(proxy_recoveries.load()),
            static_cast<unsigned long long>(storage_restarts.load()));
        std::fflush(stdout);
      }
    });
  }

  DriverOptions driver_opts;
  driver_opts.num_threads = options.num_clients;
  driver_opts.duration_ms = options.duration_ms;
  driver_opts.warmup_ms = options.warmup_ms;
  driver_opts.seed = options.seed;
  driver_opts.recorder = &recorder;

  NemesisResult result;
  result.driver = RunWorkload(proxy, workload, driver_opts);

  stop.store(true);
  nemesis.join();
  if (heartbeat.joinable()) {
    heartbeat.join();
  }
  // Final metrics snapshot before teardown, next to the traces by default.
  std::string metrics_path = options.metrics_out;
  if (metrics_path.empty() && !options.trace_dir.empty()) {
    metrics_path = options.trace_dir + "/nemesis_metrics.json";
  }
  if (!metrics_path.empty() && metrics_path != "-" && proxy.metrics() != nullptr) {
    OBLADI_RETURN_IF_ERROR(EnsureDir(options.trace_dir.empty() ? options.data_dir
                                                               : options.trace_dir));
    Status wrote = proxy.metrics()->WriteJsonLines(metrics_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "nemesis: metrics dump failed: %s\n",
                   wrote.ToString().c_str());
    } else {
      std::printf("wrote %s\n", metrics_path.c_str());
    }
  }
  proxy.Stop();
  if (server != nullptr) {
    server->Stop();
  }
  if (!nemesis_status.ok()) {
    return nemesis_status;
  }

  result.storage_restarts = storage_restarts.load();
  result.proxy_recoveries = proxy_recoveries.load();
  result.history = recorder.Merge();
  if (!options.trace_dir.empty()) {
    OBLADI_RETURN_IF_ERROR(recorder.WriteTraces(options.trace_dir).status());
  }
  return result;
}

}  // namespace obladi
