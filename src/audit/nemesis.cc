#include "src/audit/nemesis.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/audit/audit_workload.h"
#include "src/audit/recorder.h"
#include "src/common/clock.h"
#include "src/fault/fault_relay.h"
#include "src/fault/faulty_store.h"
#include "src/fault/skew_clock.h"
#include "src/net/remote_store.h"
#include "src/net/replicated_store.h"
#include "src/net/storage_server.h"
#include "src/proxy/obladi_store.h"
#include "src/storage/file_bucket_store.h"
#include "src/storage/file_log_store.h"

namespace obladi {

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Unavailable("cannot create directory: " + dir);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<NemesisResult> RunNemesis(const NemesisOptions& options) {
  OBLADI_RETURN_IF_ERROR(EnsureDir(options.data_dir));
  const std::string log_path = options.data_dir + "/wal.dat";
  std::remove(log_path.c_str());

  // The shard-partition scenario deploys one storage node per shard so a
  // single shard's link can be cut; the replica-kill scenarios add R storage
  // nodes per shard behind replicated stores; the classic deployment keeps
  // all shards on one node so it can be killed and restarted whole.
  const bool kill_replica_mode = options.kill_primary || options.kill_replica;
  const uint32_t replicas =
      std::max<uint32_t>(options.replicas, kill_replica_mode ? 2 : 1);
  const bool replicated = replicas > 1;
  const bool per_shard_mode = options.partition_shard || replicated;
  const bool kill_storage = options.kill_storage && !per_shard_mode;

  ObladiConfig config = ObladiConfig::ForCapacity(256, /*z=*/4, /*payload=*/128);
  config.num_shards = options.num_shards;
  // Generous batch budget at a fast cadence (the bench app configs' shape):
  // a closed loop of clients must never be starved of read-batch slots, or
  // the run degenerates into unfinished-epoch aborts.
  config.read_batches_per_epoch = 8;
  config.read_batch_size = 64;
  config.write_batch_size = 160;
  config.batch_interval_us = 300;
  config.timed_mode = true;
  config.pipeline_epochs = true;
  config.pipeline_depth = options.pipeline_depth;
  config.recovery.enabled = true;
  config.recovery.full_checkpoint_interval = 4;
  config.oram_options.io_threads = 8;
  // The run's final state is dumped as metrics JSON (and feeds the
  // heartbeat), so the registry is always on here.
  config.obs.metrics = true;
  if (per_shard_mode) {
    // A partitioned shard must convert into a bounded-time epoch abort, not
    // a hung retirement wait.
    config.retire_timeout_ms = 1500;
  }

  const size_t store_buckets = config.StoreBuckets();
  const ShardLayout layout = config.MakeLayout();
  const size_t shard_buckets = layout.shard_config.num_buckets();
  const size_t slots_per_bucket = layout.shard_config.slots_per_bucket();

  RemoteStoreOptions remote_opts;
  remote_opts.pool_size = 8;
  if (per_shard_mode) {
    // Hardened transport: the partition scenario's whole point is that
    // blocked requests expire within the deadline budget instead of hanging,
    // half-open links are detected by heartbeats, and retries are bounded.
    remote_opts.default_deadline_ms = 300;
    remote_opts.heartbeat_interval_ms = 100;
    remote_opts.heartbeat_timeout_ms = 300;
    remote_opts.retry.max_attempts = 3;
  }

  // Chaos handles. Declared before the proxy: the metrics source registered
  // on the proxy's registry reads them at snapshot time, so they must
  // outlive it. chaos_mu_ guards faulty_log, which the storage-restart
  // branch swaps while the registry may snapshot.
  std::mutex chaos_mu;
  std::shared_ptr<FaultyLogStore> faulty_log;
  std::unique_ptr<FaultRelay> relay;
  SkewClock skew;
  std::atomic<uint64_t> partitions{0};
  std::atomic<uint64_t> wal_stalls{0};
  std::atomic<uint64_t> skew_jumps{0};

  // Wrap a fresh FileLogStore for the storage node, decorated for the
  // slow-disk scenario so its fsync stalls can be toggled at runtime.
  auto make_log = [&]() -> std::shared_ptr<LogStore> {
    auto file_log = std::make_shared<FileLogStore>(log_path);
    if (!options.slow_disk) {
      return file_log;
    }
    auto wrapped = std::make_shared<FaultyLogStore>(file_log);
    std::lock_guard<std::mutex> lk(chaos_mu);
    faulty_log = wrapped;
    return wrapped;
  };

  // --- storage tier -------------------------------------------------------
  // Single-node deployment state:
  std::shared_ptr<FileBucketStore> buckets;
  std::shared_ptr<LogStore> log;
  std::unique_ptr<StorageServer> server;
  uint16_t server_port = 0;
  std::string bucket_path = options.data_dir + "/buckets.dat";
  // Per-shard deployment state:
  std::vector<std::shared_ptr<FileBucketStore>> shard_files;
  std::vector<std::unique_ptr<StorageServer>> servers;
  uint32_t victim_shard = 0;
  // Replicated deployment state (kept so the run can read failover/resync
  // stats after the driver stops):
  std::vector<std::shared_ptr<ReplicatedBucketStore>> replicated_buckets;
  std::shared_ptr<ReplicatedLogStore> replicated_log;
  uint32_t victim_replica = 0;

  std::unique_ptr<ObladiStore> proxy;
  if (!per_shard_mode) {
    std::remove(bucket_path.c_str());
    buckets = std::make_shared<FileBucketStore>(bucket_path, store_buckets,
                                                slots_per_bucket);
    log = make_log();
    server = std::make_unique<StorageServer>(buckets, log);
    OBLADI_RETURN_IF_ERROR(server->Start());
    server_port = server->port();

    remote_opts.port = server_port;
    auto remote_buckets = RemoteBucketStore::Connect(remote_opts);
    OBLADI_RETURN_IF_ERROR(remote_buckets.status());
    auto remote_log = RemoteLogStore::Connect(remote_opts);
    OBLADI_RETURN_IF_ERROR(remote_log.status());
    proxy = std::make_unique<ObladiStore>(config, std::move(*remote_buckets),
                                          std::move(*remote_log));
  } else if (!replicated) {
    // One storage node per shard; the WAL lives on node 0. Every server
    // shares the log object, but only node 0 receives log RPCs.
    const uint32_t num_shards = config.num_shards;
    victim_shard = num_shards > 1 ? 1 : 0;
    log = make_log();
    shard_files.reserve(num_shards);
    servers.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      std::string path = options.data_dir + "/buckets." + std::to_string(s) + ".dat";
      std::remove(path.c_str());
      shard_files.push_back(std::make_shared<FileBucketStore>(path, shard_buckets,
                                                              slots_per_bucket));
      servers.push_back(std::make_unique<StorageServer>(shard_files[s], log));
      OBLADI_RETURN_IF_ERROR(servers[s]->Start());
    }
    auto relay_or = FaultRelay::Start("127.0.0.1", servers[victim_shard]->port());
    OBLADI_RETURN_IF_ERROR(relay_or.status());
    relay = std::move(*relay_or);

    std::vector<std::shared_ptr<BucketStore>> shard_stores;
    shard_stores.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      RemoteStoreOptions so = remote_opts;
      so.port = s == victim_shard ? relay->port() : servers[s]->port();
      auto rb = RemoteBucketStore::Connect(so);
      OBLADI_RETURN_IF_ERROR(rb.status());
      shard_stores.push_back(std::move(*rb));
    }
    RemoteStoreOptions lo = remote_opts;
    lo.port = servers[0]->port();
    auto remote_log = RemoteLogStore::Connect(lo);
    OBLADI_RETURN_IF_ERROR(remote_log.status());
    proxy = std::make_unique<ObladiStore>(config, std::move(shard_stores),
                                          std::move(*remote_log));
  } else {
    // Replicated tier: R storage nodes per shard (node (s, r) holds shard
    // s's bucket replica r) plus R WAL columns riding on shard 0's row
    // (node (0, r) also serves WAL replica r). The victim replica of shard
    // 0 is fronted by the fault relay: killing replica 0 therefore cuts the
    // bucket primary AND the WAL primary at once — the strongest loss —
    // while kill_replica targets the last replica (a pure follower).
    const uint32_t num_shards = config.num_shards;
    victim_shard = 0;
    victim_replica = options.kill_replica && !options.kill_primary ? replicas - 1 : 0;
    std::vector<std::shared_ptr<LogStore>> log_columns;
    for (uint32_t r = 0; r < replicas; ++r) {
      std::string wal_path = options.data_dir + "/wal." + std::to_string(r) + ".dat";
      std::remove(wal_path.c_str());
      log_columns.push_back(std::make_shared<FileLogStore>(wal_path));
    }
    shard_files.reserve(static_cast<size_t>(num_shards) * replicas);
    servers.reserve(static_cast<size_t>(num_shards) * replicas);
    for (uint32_t s = 0; s < num_shards; ++s) {
      for (uint32_t r = 0; r < replicas; ++r) {
        std::string path = options.data_dir + "/buckets." + std::to_string(s) + "." +
                           std::to_string(r) + ".dat";
        std::remove(path.c_str());
        shard_files.push_back(
            std::make_shared<FileBucketStore>(path, shard_buckets, slots_per_bucket));
        servers.push_back(
            std::make_unique<StorageServer>(shard_files.back(), log_columns[r]));
        OBLADI_RETURN_IF_ERROR(servers.back()->Start());
      }
    }
    auto server_at = [&](uint32_t s, uint32_t r) -> StorageServer& {
      return *servers[static_cast<size_t>(s) * replicas + r];
    };
    auto relay_or =
        FaultRelay::Start("127.0.0.1", server_at(victim_shard, victim_replica).port());
    OBLADI_RETURN_IF_ERROR(relay_or.status());
    relay = std::move(*relay_or);

    ReplicatedStoreOptions rep_opts;
    rep_opts.write_quorum = options.write_quorum;
    std::vector<std::shared_ptr<BucketStore>> shard_stores;
    shard_stores.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      std::vector<std::shared_ptr<BucketStore>> reps;
      reps.reserve(replicas);
      for (uint32_t r = 0; r < replicas; ++r) {
        RemoteStoreOptions so = remote_opts;
        so.port = (s == victim_shard && r == victim_replica) ? relay->port()
                                                             : server_at(s, r).port();
        auto rb = RemoteBucketStore::Connect(so);
        OBLADI_RETURN_IF_ERROR(rb.status());
        reps.push_back(std::move(*rb));
      }
      auto rep_store = std::make_shared<ReplicatedBucketStore>(std::move(reps), rep_opts);
      replicated_buckets.push_back(rep_store);
      shard_stores.push_back(rep_store);
    }
    std::vector<std::shared_ptr<LogStore>> log_reps;
    log_reps.reserve(replicas);
    for (uint32_t r = 0; r < replicas; ++r) {
      RemoteStoreOptions lo = remote_opts;
      lo.port = (victim_shard == 0 && r == victim_replica) ? relay->port()
                                                           : server_at(0, r).port();
      auto rl = RemoteLogStore::Connect(lo);
      OBLADI_RETURN_IF_ERROR(rl.status());
      log_reps.push_back(std::move(*rl));
    }
    replicated_log = std::make_shared<ReplicatedLogStore>(std::move(log_reps), rep_opts);
    proxy = std::make_unique<ObladiStore>(config, std::move(shard_stores), replicated_log);
  }

  if (options.clock_skew) {
    proxy->SetClaimedTimestampHook([&skew](uint64_t internal) {
      return skew.Skew(internal);
    });
  }

  // Every chaos activation in one counter, pulled at scrape/dump time so
  // nemesis_metrics.json carries it without the proxy depending on src/fault.
  if (proxy->metrics() != nullptr) {
    proxy->metrics()->AddSource([&](MetricsSink& sink) {
      uint64_t total = skew_jumps.load(std::memory_order_relaxed);
      if (relay != nullptr) {
        total += relay->stats().faults_injected;
      }
      {
        std::lock_guard<std::mutex> lk(chaos_mu);
        if (faulty_log != nullptr) {
          total += faulty_log->faults_injected();
        }
      }
      sink.Counter("faults_injected_total", {}, total,
                   "chaos faults injected (relay activations + store-level "
                   "injections + clock jumps)");
    });
  }

  AuditWorkloadConfig wl_cfg;
  wl_cfg.num_keys = options.num_keys;
  wl_cfg.zipf_theta = options.zipf_theta;
  wl_cfg.ops_per_txn = options.ops_per_txn;
  AuditWorkload workload(wl_cfg);

  auto initial = workload.InitialRecords();
  OBLADI_RETURN_IF_ERROR(proxy->Load(initial));
  HistoryRecorder recorder(options.num_clients);
  recorder.RecordInitialDb(initial);
  proxy->Start();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> storage_restarts{0};
  std::atomic<uint64_t> proxy_recoveries{0};
  Status nemesis_status;  // first hard failure inside the fault thread

  // Stop-aware sleep for the fault thread.
  auto nap = [&stop](uint64_t ms) {
    for (uint64_t waited = 0; waited < ms && !stop.load(std::memory_order_relaxed);
         waited += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };

  // Recover the proxy from a (simulated or storage-induced) crash, retrying
  // while the storage side settles, then restart the pacer.
  auto recover_proxy = [&]() -> Status {
    Status last;
    for (int attempt = 0; attempt < 50; ++attempt) {
      last = proxy->RecoverFromCrash();
      if (last.ok()) {
        proxy->Start();
        proxy_recoveries.fetch_add(1);
        return last;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return last;
  };

  // The fault palette: each entry is one serialized fault episode; the
  // nemesis thread rotates through the enabled entries one per period.
  std::vector<std::function<Status()>> palette;
  if (kill_storage) {
    palette.push_back([&]() -> Status {
      // Kill the storage node and reopen its state from the files.
      server->Stop();
      server.reset();
      buckets.reset();
      log.reset();
      buckets = std::make_shared<FileBucketStore>(bucket_path, store_buckets,
                                                  slots_per_bucket);
      log = make_log();
      StorageServerOptions server_opts;
      server_opts.port = server_port;
      server = std::make_unique<StorageServer>(buckets, log, server_opts);
      Status started;
      for (int attempt = 0; attempt < 100; ++attempt) {
        started = server->Start();
        if (started.ok()) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      OBLADI_RETURN_IF_ERROR(started);
      storage_restarts.fetch_add(1);
      // The outage fails the proxy's background retirement sticky; crash
      // recovery is the designed failover.
      proxy->SimulateCrash();
      return recover_proxy();
    });
  }
  if (options.crash_proxy) {
    palette.push_back([&]() -> Status {
      proxy->SimulateCrash();
      return recover_proxy();
    });
  }
  if (options.partition_shard) {
    palette.push_back([&]() -> Status {
      // Cut one shard's link mid-epoch. The connection stays "up" (blackhole,
      // not close): in-flight requests must expire via their deadlines and
      // blocked clients must be failed retriably, never hung.
      relay->Partition();
      nap(options.partition_hold_ms);
      relay->Heal();
      partitions.fetch_add(1);
      // The partition failed the victim shard's batches / retirement sticky;
      // recovery replay across the healed link is the scenario's proof.
      proxy->SimulateCrash();
      return recover_proxy();
    });
  }
  if (kill_replica_mode) {
    palette.push_back([&]() -> Status {
      // Blackhole the victim replica mid-epoch, hold past the deadline
      // budget, heal — and deliberately do NOT crash the proxy: quorum
      // writes plus automatic read failover must carry commits through the
      // loss, and the retire loop's epoch-replay catch-up must resync the
      // healed replica on its own.
      relay->Partition();
      nap(options.partition_hold_ms);
      relay->Heal();
      partitions.fetch_add(1);
      return Status::Ok();
    });
  }
  if (options.slow_disk) {
    palette.push_back([&]() -> Status {
      std::shared_ptr<FaultyLogStore> wal;
      {
        std::lock_guard<std::mutex> lk(chaos_mu);
        wal = faulty_log;
      }
      if (wal == nullptr) {
        return Status::Ok();  // storage node mid-restart; skip this episode
      }
      FaultPlan stall;
      stall.fsync_stall_us = options.wal_stall_us;
      wal->SetPlan(stall);
      wal_stalls.fetch_add(1);
      // Hold through at least one retirement (epochs close every few ms
      // here), then release.
      nap(400);
      wal->SetPlan(FaultPlan{});
      return Status::Ok();
    });
  }
  if (options.clock_skew) {
    palette.push_back([&]() -> Status {
      // Alternate forward and backward jumps; SkewClock flattens a backward
      // jump into +1 steps, so claimed order is preserved and the audit
      // must still pass.
      uint64_t n = skew_jumps.fetch_add(1);
      skew.AdvanceOffset(n % 2 == 0 ? options.skew_jump : -options.skew_jump);
      return Status::Ok();
    });
  }

  std::thread nemesis([&] {
    size_t next = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      nap(options.fault_period_ms);
      if (stop.load(std::memory_order_relaxed) || palette.empty()) {
        return;
      }
      Status st = palette[next++ % palette.size()]();
      if (!st.ok()) {
        nemesis_status = st;
        return;
      }
    }
  });

  // Liveness heartbeat: fault injection makes long runs look hung from the
  // outside (commits stall during recovery), so narrate progress. Reads
  // only proxy->stats() — the ORAM object is replaced across recoveries.
  std::thread heartbeat;
  const uint64_t run_start_us = NowMicros();
  if (options.heartbeat_ms > 0) {
    heartbeat = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint64_t waited = 0;
             waited < options.heartbeat_ms && !stop.load(std::memory_order_relaxed);
             waited += 10) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (stop.load(std::memory_order_relaxed)) {
          return;
        }
        ObladiStats s = proxy->stats();
        std::printf(
            "[nemesis %6.1fs] epochs=%llu committed=%llu aborted=%llu "
            "proxy_recoveries=%llu storage_restarts=%llu faults=%llu\n",
            static_cast<double>(NowMicros() - run_start_us) / 1e6,
            static_cast<unsigned long long>(s.epochs),
            static_cast<unsigned long long>(s.txn_committed),
            static_cast<unsigned long long>(s.txn_aborted),
            static_cast<unsigned long long>(proxy_recoveries.load()),
            static_cast<unsigned long long>(storage_restarts.load()),
            static_cast<unsigned long long>(
                partitions.load() + wal_stalls.load() + skew_jumps.load()));
        std::fflush(stdout);
      }
    });
  }

  // Per-client liveness feed for the progress watchdog: the driver bumps
  // slot t after every finished attempt, so a slot that stops moving is a
  // client stuck INSIDE a transaction — the hang class the transport
  // hardening exists to prevent. The watchdog hard-exits (not a returned
  // error): a hung client thread can never be joined, so the only honest
  // reporting channel left is the process exit code.
  std::vector<std::atomic<uint64_t>> progress(options.num_clients);
  std::thread progress_watchdog;
  if (options.progress_timeout_ms > 0) {
    progress_watchdog = std::thread([&] {
      std::vector<uint64_t> last(options.num_clients, 0);
      std::vector<uint64_t> last_change_us(options.num_clients, NowMicros());
      const uint64_t budget_us = options.progress_timeout_ms * 1000;
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        const uint64_t now = NowMicros();
        for (size_t c = 0; c < progress.size(); ++c) {
          uint64_t cur = progress[c].load(std::memory_order_relaxed);
          if (cur != last[c]) {
            last[c] = cur;
            last_change_us[c] = now;
          } else if (now - last_change_us[c] > budget_us) {
            std::fprintf(stderr,
                         "audit_nemesis: client %zu made no progress for "
                         "%llu ms (seed=%llu) — hung client, aborting run\n",
                         c,
                         static_cast<unsigned long long>(options.progress_timeout_ms),
                         static_cast<unsigned long long>(options.seed));
            std::fflush(stderr);
            std::_Exit(3);
          }
        }
      }
    });
  }

  // Commit-stall monitor (replicated mode only): sample the committed
  // counter and track the longest post-warmup gap between increments — the
  // client-visible unavailability window the failover budget bounds.
  std::atomic<uint64_t> max_commit_stall_us{0};
  std::thread stall_monitor;
  if (replicated) {
    stall_monitor = std::thread([&] {
      const uint64_t warmup_end_us = run_start_us + options.warmup_ms * 1000;
      uint64_t last_committed = 0;
      uint64_t last_change_us = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        const uint64_t now = NowMicros();
        if (now < warmup_end_us) {
          continue;
        }
        const uint64_t committed = proxy->stats().txn_committed;
        if (last_change_us == 0 || committed != last_committed) {
          last_committed = committed;
          last_change_us = now;
          continue;
        }
        const uint64_t stall = now - last_change_us;
        if (stall > max_commit_stall_us.load(std::memory_order_relaxed)) {
          max_commit_stall_us.store(stall, std::memory_order_relaxed);
        }
      }
    });
  }

  DriverOptions driver_opts;
  driver_opts.num_threads = options.num_clients;
  driver_opts.duration_ms = options.duration_ms;
  driver_opts.warmup_ms = options.warmup_ms;
  driver_opts.seed = options.seed;
  driver_opts.recorder = &recorder;
  driver_opts.progress = progress.data();

  NemesisResult result;
  result.driver = RunWorkload(*proxy, workload, driver_opts);

  stop.store(true);
  nemesis.join();
  if (heartbeat.joinable()) {
    heartbeat.join();
  }
  if (progress_watchdog.joinable()) {
    progress_watchdog.join();
  }
  if (stall_monitor.joinable()) {
    stall_monitor.join();
  }
  // Final metrics snapshot before teardown, next to the traces by default.
  std::string metrics_path = options.metrics_out;
  if (metrics_path.empty() && !options.trace_dir.empty()) {
    metrics_path = options.trace_dir + "/nemesis_metrics.json";
  }
  if (!metrics_path.empty() && metrics_path != "-" && proxy->metrics() != nullptr) {
    OBLADI_RETURN_IF_ERROR(EnsureDir(options.trace_dir.empty() ? options.data_dir
                                                               : options.trace_dir));
    Status wrote = proxy->metrics()->WriteJsonLines(metrics_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "nemesis: metrics dump failed: %s\n",
                   wrote.ToString().c_str());
    } else {
      std::printf("wrote %s\n", metrics_path.c_str());
    }
  }
  result.partitions = partitions.load();
  result.wal_stalls = wal_stalls.load();
  result.skew_jumps = skew_jumps.load();
  // Mirror the faults_injected_total metric: clock jumps count too.
  result.faults_injected += result.skew_jumps;
  if (relay != nullptr) {
    result.faults_injected += relay->stats().faults_injected;
  }
  {
    std::lock_guard<std::mutex> lk(chaos_mu);
    if (faulty_log != nullptr) {
      result.faults_injected += faulty_log->faults_injected();
    }
  }
  result.max_commit_stall_ms = max_commit_stall_us.load() / 1000;
  for (const auto& rb : replicated_buckets) {
    ReplicationStats rs = rb->replication_stats();
    result.failovers += rs.failovers;
    result.replica_resyncs += rs.resyncs;
    result.replica_resync_epochs += rs.resync_epochs;
  }
  if (replicated_log != nullptr) {
    ReplicationStats rs = replicated_log->replication_stats();
    result.failovers += rs.failovers;
    result.replica_resyncs += rs.resyncs;
    result.replica_resync_epochs += rs.resync_epochs;
  }
  proxy->Stop();
  proxy.reset();
  if (relay != nullptr) {
    relay->Stop();
  }
  if (server != nullptr) {
    server->Stop();
  }
  for (auto& s : servers) {
    s->Stop();
  }
  if (!nemesis_status.ok()) {
    return nemesis_status;
  }

  result.storage_restarts = storage_restarts.load();
  result.proxy_recoveries = proxy_recoveries.load();
  result.history = recorder.Merge();
  if (!options.trace_dir.empty()) {
    OBLADI_RETURN_IF_ERROR(recorder.WriteTraces(options.trace_dir).status());
  }
  return result;
}

}  // namespace obladi
