// Offline serializability verifier over client-observable histories.
//
// What is checked (only committed transactions participate; an attempt the
// client definitively aborted never constrains the history, and an
// indeterminate attempt counts as committed iff a committed reader observed
// one of its writes — sound under MVTSO, because a committed reader of an
// uncommitted write is a dependent that could only have committed if the
// writer did):
//
//   1. Read resolution. Every observed value must be the unique product of
//      the initial database or some transaction's write (unique writes are
//      the audit workload's job); a value only a definitely-aborted attempt
//      wrote is a dirty read, a value nobody wrote is a corrupt read.
//   2. Claimed-order consistency. Obladi hands every client its MVTSO
//      timestamp — a *claim* of the transaction's serialization position.
//      Each committed read must observe the latest committed write of its
//      key with a smaller claimed timestamp (or its own earlier write, or
//      the initial value). A mismatch is a stale or future read; either
//      yields a two-edge cycle through the claimed order.
//   3. Serialization graph. Nodes are committed transactions (+ INIT);
//      edges are observed write->read dependencies, per-key write order,
//      and inferred anti-dependencies (reader -> next writer of the version
//      it observed). Any cycle refutes serializability outright; the
//      shortest cycle is reported with labeled edges.
//   4. Real-time (strict serializability under epoch visibility). Commit
//      acks release only after the epoch is durable, so if A's response
//      precedes B's invocation, A must precede B in the claimed order.
//
// Verification never trusts proxy internals: timestamps, values, and
// intervals all crossed the client boundary.
#ifndef OBLADI_SRC_AUDIT_VERIFIER_H_
#define OBLADI_SRC_AUDIT_VERIFIER_H_

#include <string>
#include <vector>

#include "src/audit/history.h"

namespace obladi {

enum class ViolationKind : uint8_t {
  kDirtyRead,    // observed a value only a definitely-aborted attempt wrote
  kCorruptRead,  // observed a value nothing wrote (e.g. a dropped write)
  kStaleRead,    // observed an older version than the claimed order requires
  kFutureRead,   // observed a write with a larger claimed timestamp
  kCycle,        // serialization graph has a cycle
  kRealTime,     // claimed order contradicts real time (fractured epoch)
};

const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::string description;
  // Minimal violating cycle as printable steps, e.g.
  //   "T42(c3) --rw[ak17]--> T57(c0)", closing back at the first node.
  // Empty for violation kinds that are direct evidence, not cycles.
  std::vector<std::string> cycle;

  std::string ToString() const;
};

struct AuditReport {
  bool serializable = false;
  std::vector<Violation> violations;
  bool truncated = false;  // more violations existed than were reported

  // Census of the audited history.
  uint64_t txns = 0;
  uint64_t committed = 0;           // acked commits
  uint64_t inferred_committed = 0;  // indeterminate, proven committed by reads
  uint64_t aborted = 0;
  uint64_t indeterminate = 0;       // remained unknown; excluded from the graph
  uint64_t reads_checked = 0;
  uint64_t graph_edges = 0;

  std::string Summary() const;
};

// Verifies the merged history. A non-OK status means the history itself is
// unauditable (duplicate (key, value) writes, missing data) — distinct from
// an auditable history that fails, which returns OK with serializable=false.
StatusOr<AuditReport> VerifyHistory(const History& history);

// --- violation injection (verifier self-test) --------------------------------
//
// Mutates an honest history so the auditor must flag it; a verifier that
// never fails is untested. Returns a description of the mutation, or
// NotFound if the history has no applicable site.

enum class InjectKind : uint8_t {
  kDropCommittedWrite,  // erase an observed committed write -> corrupt read
  kSwapReadResults,     // swap two reads' observed values -> stale/future read
  kFractureEpoch,       // shift an interval across an epoch -> real-time cycle
};

const char* InjectKindName(InjectKind kind);
StatusOr<InjectKind> ParseInjectKind(const std::string& name);

StatusOr<std::string> InjectViolation(History& history, InjectKind kind, uint64_t seed = 1);

// The violation kinds an injection of `kind` may legitimately surface as.
std::vector<ViolationKind> ExpectedViolationsFor(InjectKind kind);

}  // namespace obladi

#endif  // OBLADI_SRC_AUDIT_VERIFIER_H_
