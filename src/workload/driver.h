// Closed-loop multi-threaded workload driver with throughput/latency stats.
#ifndef OBLADI_SRC_WORKLOAD_DRIVER_H_
#define OBLADI_SRC_WORKLOAD_DRIVER_H_

#include <cstdint>

#include "src/common/histogram.h"
#include "src/txn/kv_interface.h"
#include "src/workload/workload.h"

namespace obladi {

struct DriverOptions {
  size_t num_threads = 8;
  uint64_t duration_ms = 2000;
  uint64_t warmup_ms = 200;
  uint64_t seed = 7;
};

struct DriverResult {
  double throughput_tps = 0;
  uint64_t committed = 0;
  uint64_t failed = 0;  // transactions that exhausted retries
  double mean_latency_us = 0;
  uint64_t p50_latency_us = 0;
  uint64_t p99_latency_us = 0;
};

// Runs `workload` against `kv` from num_threads closed-loop clients for
// duration_ms (after warmup_ms of unmeasured warmup).
DriverResult RunWorkload(TransactionalKv& kv, Workload& workload, const DriverOptions& options);

}  // namespace obladi

#endif  // OBLADI_SRC_WORKLOAD_DRIVER_H_
