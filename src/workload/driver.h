// Closed-loop multi-threaded workload driver with throughput/latency stats.
#ifndef OBLADI_SRC_WORKLOAD_DRIVER_H_
#define OBLADI_SRC_WORKLOAD_DRIVER_H_

#include <atomic>
#include <cstdint>

#include "src/common/histogram.h"
#include "src/txn/kv_interface.h"
#include "src/workload/workload.h"

namespace obladi {

class HistoryRecorder;

struct DriverOptions {
  size_t num_threads = 8;
  uint64_t duration_ms = 2000;
  uint64_t warmup_ms = 200;
  uint64_t seed = 7;
  // When set, thread t < recorder->num_clients() runs through a RecordingKv
  // bound to recorder->Client(t), capturing the client-observable history
  // (all attempts, warmup included) for offline serializability auditing.
  HistoryRecorder* recorder = nullptr;
  // Optional liveness feed: when non-null, points at an array of at least
  // num_threads counters; thread t bumps slot t after every finished attempt
  // (committed, aborted, or failed alike). A chaos harness watches the slots
  // to tell a hung client thread from one that is merely aborting a lot.
  std::atomic<uint64_t>* progress = nullptr;
};

struct DriverResult {
  double throughput_tps = 0;
  uint64_t committed = 0;
  uint64_t failed = 0;  // transactions that exhausted retries
  double mean_latency_us = 0;
  uint64_t p50_latency_us = 0;
  uint64_t p99_latency_us = 0;
  // Attempt-level accounting, recorder runs only (zero otherwise). Counts
  // cover the whole run including warmup, unlike the measured fields above.
  uint64_t attempts = 0;               // Begin() calls across all clients
  uint64_t retries = 0;                // attempts that ended aborted/unacked
  double aborts_per_committed_txn = 0; // retries / committed attempts
  uint64_t audit_trace_bytes = 0;      // serialized size of the history
};

// Runs `workload` against `kv` from num_threads closed-loop clients for
// duration_ms (after warmup_ms of unmeasured warmup).
DriverResult RunWorkload(TransactionalKv& kv, Workload& workload, const DriverOptions& options);

}  // namespace obladi

#endif  // OBLADI_SRC_WORKLOAD_DRIVER_H_
