// TPC-C (§11): the standard OLTP benchmark, with the five canonical
// transaction types (new-order 45%, payment 43%, order-status 4%, delivery
// 4%, stock-level 4%), NURand skew, and the two secondary indices the paper
// calls out (customers by last name, customer's latest order).
//
// Scale knobs default to a "lite" configuration so benchmarks load fast;
// TpccConfig::PaperScale() reproduces the paper's 10-warehouse setup.
#ifndef OBLADI_SRC_WORKLOAD_TPCC_H_
#define OBLADI_SRC_WORKLOAD_TPCC_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/common/serde.h"
#include "src/workload/workload.h"

namespace obladi {

struct TpccConfig {
  uint32_t num_warehouses = 2;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 300;    // spec: 3000
  uint32_t num_items = 10000;               // spec: 100000
  uint32_t initial_orders_per_district = 30;
  uint32_t stock_level_orders = 5;          // spec: 20
  uint32_t max_order_lines = 15;

  static TpccConfig PaperScale() {
    TpccConfig cfg;
    cfg.num_warehouses = 10;
    cfg.customers_per_district = 3000;
    cfg.num_items = 100000;
    cfg.stock_level_orders = 20;
    return cfg;
  }
};

struct TpccStats {
  uint64_t new_order = 0;
  uint64_t payment = 0;
  uint64_t order_status = 0;
  uint64_t delivery = 0;
  uint64_t stock_level = 0;
  uint64_t user_rollbacks = 0;  // 1% new-order invalid-item rollbacks
};

class TpccWorkload : public Workload {
 public:
  explicit TpccWorkload(TpccConfig cfg) : cfg_(cfg) {}

  std::string name() const override { return "tpcc"; }
  std::vector<std::pair<Key, std::string>> InitialRecords() override;
  Status RunOne(TransactionalKv& kv, Rng& rng) override;

  Status NewOrder(TransactionalKv& kv, Rng& rng);
  Status Payment(TransactionalKv& kv, Rng& rng);
  Status OrderStatus(TransactionalKv& kv, Rng& rng);
  Status Delivery(TransactionalKv& kv, Rng& rng);
  Status StockLevel(TransactionalKv& kv, Rng& rng);

  TpccStats stats() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
  }

  const TpccConfig& config() const { return cfg_; }

  // --- keys ---
  static Key WarehouseKey(uint32_t w);
  static Key DistrictKey(uint32_t w, uint32_t d);
  static Key CustomerKey(uint32_t w, uint32_t d, uint32_t c);
  static Key CustomerNameIndexKey(uint32_t w, uint32_t d, const std::string& last_name);
  static Key LatestOrderIndexKey(uint32_t w, uint32_t d, uint32_t c);
  static Key ItemKey(uint32_t i);
  static Key StockKey(uint32_t w, uint32_t i);
  static Key OrderKey(uint32_t w, uint32_t d, uint32_t o);
  static Key OrderLineKey(uint32_t w, uint32_t d, uint32_t o, uint32_t line);
  static Key NewOrderQueueKey(uint32_t w, uint32_t d);
  static Key HistoryKey(uint32_t w, uint32_t d, uint64_t seq);

  // TPC-C last-name generation from a 3-digit number.
  static std::string LastName(uint32_t num);
  // Non-uniform random per the spec.
  static uint32_t NuRand(Rng& rng, uint32_t a, uint32_t x, uint32_t y);

 private:
  uint32_t RandomCustomer(Rng& rng) {
    return NuRand(rng, 1023, 0, cfg_.customers_per_district - 1);
  }
  uint32_t RandomItem(Rng& rng) { return NuRand(rng, 8191, 0, cfg_.num_items - 1); }
  void Bump(uint64_t TpccStats::* field);

  TpccConfig cfg_;
  mutable std::mutex stats_mu_;
  TpccStats stats_;
};

// --- row codecs (exposed for tests) ---
struct TpccDistrict {
  int64_t tax_bp = 0;       // basis points
  int64_t ytd_cents = 0;
  uint32_t next_o_id = 0;
  std::string Encode() const;
  static TpccDistrict Decode(const std::string& value);
};

struct TpccCustomer {
  std::string first;
  std::string last;
  int64_t balance_cents = 0;
  int64_t ytd_payment_cents = 0;
  uint32_t payment_count = 0;
  uint32_t delivery_count = 0;
  std::string Encode() const;
  static TpccCustomer Decode(const std::string& value);
};

struct TpccStock {
  int64_t quantity = 0;
  int64_t ytd = 0;
  uint32_t order_count = 0;
  std::string Encode() const;
  static TpccStock Decode(const std::string& value);
};

struct TpccOrder {
  uint32_t customer = 0;
  uint64_t entry_ts = 0;
  uint32_t carrier = 0;  // 0 = undelivered
  uint32_t line_count = 0;
  std::string Encode() const;
  static TpccOrder Decode(const std::string& value);
};

struct TpccOrderLine {
  uint32_t item = 0;
  uint32_t supply_warehouse = 0;
  uint32_t quantity = 0;
  int64_t amount_cents = 0;
  uint64_t delivery_ts = 0;  // 0 = undelivered
  std::string Encode() const;
  static TpccOrderLine Decode(const std::string& value);
};

// Variable-length u32 list used by both indices and the new-order queue.
std::string EncodeIdList(const std::vector<uint32_t>& ids);
std::vector<uint32_t> DecodeIdList(const std::string& value);

}  // namespace obladi

#endif  // OBLADI_SRC_WORKLOAD_TPCC_H_
