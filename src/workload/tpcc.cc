#include "src/workload/tpcc.h"

#include <algorithm>
#include <unordered_set>

namespace obladi {

namespace {

std::string BytesToString(Bytes b) { return std::string(b.begin(), b.end()); }

Bytes StringToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

}  // namespace

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

Key TpccWorkload::WarehouseKey(uint32_t w) { return "tpcc:w:" + std::to_string(w); }
Key TpccWorkload::DistrictKey(uint32_t w, uint32_t d) {
  return "tpcc:d:" + std::to_string(w) + ":" + std::to_string(d);
}
Key TpccWorkload::CustomerKey(uint32_t w, uint32_t d, uint32_t c) {
  return "tpcc:c:" + std::to_string(w) + ":" + std::to_string(d) + ":" + std::to_string(c);
}
Key TpccWorkload::CustomerNameIndexKey(uint32_t w, uint32_t d, const std::string& last) {
  return "tpcc:ci:" + std::to_string(w) + ":" + std::to_string(d) + ":" + last;
}
Key TpccWorkload::LatestOrderIndexKey(uint32_t w, uint32_t d, uint32_t c) {
  return "tpcc:lo:" + std::to_string(w) + ":" + std::to_string(d) + ":" + std::to_string(c);
}
Key TpccWorkload::ItemKey(uint32_t i) { return "tpcc:i:" + std::to_string(i); }
Key TpccWorkload::StockKey(uint32_t w, uint32_t i) {
  return "tpcc:s:" + std::to_string(w) + ":" + std::to_string(i);
}
Key TpccWorkload::OrderKey(uint32_t w, uint32_t d, uint32_t o) {
  return "tpcc:o:" + std::to_string(w) + ":" + std::to_string(d) + ":" + std::to_string(o);
}
Key TpccWorkload::OrderLineKey(uint32_t w, uint32_t d, uint32_t o, uint32_t line) {
  return "tpcc:ol:" + std::to_string(w) + ":" + std::to_string(d) + ":" + std::to_string(o) +
         ":" + std::to_string(line);
}
Key TpccWorkload::NewOrderQueueKey(uint32_t w, uint32_t d) {
  return "tpcc:noq:" + std::to_string(w) + ":" + std::to_string(d);
}
Key TpccWorkload::HistoryKey(uint32_t w, uint32_t d, uint64_t seq) {
  return "tpcc:h:" + std::to_string(w) + ":" + std::to_string(d) + ":" + std::to_string(seq);
}

// ---------------------------------------------------------------------------
// Row codecs
// ---------------------------------------------------------------------------

std::string TpccDistrict::Encode() const {
  BinaryWriter w;
  w.PutI64(tax_bp);
  w.PutI64(ytd_cents);
  w.PutU32(next_o_id);
  return BytesToString(w.Take());
}
TpccDistrict TpccDistrict::Decode(const std::string& value) {
  Bytes b = StringToBytes(value);
  BinaryReader r(b);
  TpccDistrict d;
  d.tax_bp = r.GetI64();
  d.ytd_cents = r.GetI64();
  d.next_o_id = r.GetU32();
  return d;
}

std::string TpccCustomer::Encode() const {
  BinaryWriter w;
  w.PutString(first);
  w.PutString(last);
  w.PutI64(balance_cents);
  w.PutI64(ytd_payment_cents);
  w.PutU32(payment_count);
  w.PutU32(delivery_count);
  return BytesToString(w.Take());
}
TpccCustomer TpccCustomer::Decode(const std::string& value) {
  Bytes b = StringToBytes(value);
  BinaryReader r(b);
  TpccCustomer c;
  c.first = r.GetString();
  c.last = r.GetString();
  c.balance_cents = r.GetI64();
  c.ytd_payment_cents = r.GetI64();
  c.payment_count = r.GetU32();
  c.delivery_count = r.GetU32();
  return c;
}

std::string TpccStock::Encode() const {
  BinaryWriter w;
  w.PutI64(quantity);
  w.PutI64(ytd);
  w.PutU32(order_count);
  return BytesToString(w.Take());
}
TpccStock TpccStock::Decode(const std::string& value) {
  Bytes b = StringToBytes(value);
  BinaryReader r(b);
  TpccStock s;
  s.quantity = r.GetI64();
  s.ytd = r.GetI64();
  s.order_count = r.GetU32();
  return s;
}

std::string TpccOrder::Encode() const {
  BinaryWriter w;
  w.PutU32(customer);
  w.PutU64(entry_ts);
  w.PutU32(carrier);
  w.PutU32(line_count);
  return BytesToString(w.Take());
}
TpccOrder TpccOrder::Decode(const std::string& value) {
  Bytes b = StringToBytes(value);
  BinaryReader r(b);
  TpccOrder o;
  o.customer = r.GetU32();
  o.entry_ts = r.GetU64();
  o.carrier = r.GetU32();
  o.line_count = r.GetU32();
  return o;
}

std::string TpccOrderLine::Encode() const {
  BinaryWriter w;
  w.PutU32(item);
  w.PutU32(supply_warehouse);
  w.PutU32(quantity);
  w.PutI64(amount_cents);
  w.PutU64(delivery_ts);
  return BytesToString(w.Take());
}
TpccOrderLine TpccOrderLine::Decode(const std::string& value) {
  Bytes b = StringToBytes(value);
  BinaryReader r(b);
  TpccOrderLine l;
  l.item = r.GetU32();
  l.supply_warehouse = r.GetU32();
  l.quantity = r.GetU32();
  l.amount_cents = r.GetI64();
  l.delivery_ts = r.GetU64();
  return l;
}

std::string EncodeIdList(const std::vector<uint32_t>& ids) {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(ids.size()));
  for (uint32_t id : ids) {
    w.PutU32(id);
  }
  return BytesToString(w.Take());
}
std::vector<uint32_t> DecodeIdList(const std::string& value) {
  if (value.empty()) {
    return {};
  }
  Bytes b = StringToBytes(value);
  BinaryReader r(b);
  uint32_t n = r.GetU32();
  std::vector<uint32_t> ids(n);
  for (auto& id : ids) {
    id = r.GetU32();
  }
  return ids;
}

// ---------------------------------------------------------------------------
// Random helpers
// ---------------------------------------------------------------------------

std::string TpccWorkload::LastName(uint32_t num) {
  static const char* kSyllables[] = {"BAR", "OUGHT", "ABLE", "PRI",   "PRES",
                                     "ESE", "ANTI",  "CALLY", "ATION", "EING"};
  return std::string(kSyllables[(num / 100) % 10]) + kSyllables[(num / 10) % 10] +
         kSyllables[num % 10];
}

uint32_t TpccWorkload::NuRand(Rng& rng, uint32_t a, uint32_t x, uint32_t y) {
  uint32_t c = a / 2;  // fixed run constant
  uint32_t r1 = static_cast<uint32_t>(rng.Uniform(a + 1));
  uint32_t r2 = x + static_cast<uint32_t>(rng.Uniform(y - x + 1));
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

void TpccWorkload::Bump(uint64_t TpccStats::* field) {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.*field += 1;
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

std::vector<std::pair<Key, std::string>> TpccWorkload::InitialRecords() {
  std::vector<std::pair<Key, std::string>> out;
  Rng rng(0x79cc);

  for (uint32_t i = 0; i < cfg_.num_items; ++i) {
    BinaryWriter w;
    w.PutString("item-" + std::to_string(i));
    w.PutI64(rng.UniformInt(100, 10000));  // price in cents
    out.emplace_back(ItemKey(i), BytesToString(w.Take()));
  }

  for (uint32_t w_id = 0; w_id < cfg_.num_warehouses; ++w_id) {
    {
      BinaryWriter w;
      w.PutString("warehouse-" + std::to_string(w_id));
      w.PutI64(rng.UniformInt(0, 2000));  // tax bp
      w.PutI64(0);                        // ytd
      out.emplace_back(WarehouseKey(w_id), BytesToString(w.Take()));
    }
    for (uint32_t i = 0; i < cfg_.num_items; ++i) {
      TpccStock s;
      s.quantity = rng.UniformInt(10, 100);
      out.emplace_back(StockKey(w_id, i), s.Encode());
    }
    for (uint32_t d_id = 0; d_id < cfg_.districts_per_warehouse; ++d_id) {
      TpccDistrict d;
      d.tax_bp = rng.UniformInt(0, 2000);
      d.next_o_id = cfg_.initial_orders_per_district;
      out.emplace_back(DistrictKey(w_id, d_id), d.Encode());

      std::vector<std::vector<uint32_t>> by_name(1000);
      for (uint32_t c_id = 0; c_id < cfg_.customers_per_district; ++c_id) {
        TpccCustomer c;
        c.first = "first-" + std::to_string(c_id);
        uint32_t name_num = c_id < 1000 ? c_id : NuRand(rng, 255, 0, 999);
        c.last = LastName(name_num);
        c.balance_cents = -1000;
        out.emplace_back(CustomerKey(w_id, d_id, c_id), c.Encode());
        by_name[name_num].push_back(c_id);
      }
      for (uint32_t n = 0; n < 1000; ++n) {
        if (!by_name[n].empty()) {
          out.emplace_back(CustomerNameIndexKey(w_id, d_id, LastName(n)),
                           EncodeIdList(by_name[n]));
        }
      }

      std::vector<uint32_t> undelivered;
      for (uint32_t o_id = 0; o_id < cfg_.initial_orders_per_district; ++o_id) {
        TpccOrder o;
        o.customer = static_cast<uint32_t>(rng.Uniform(cfg_.customers_per_district));
        o.entry_ts = o_id;
        o.line_count = static_cast<uint32_t>(
            rng.UniformInt(std::min(5u, cfg_.max_order_lines), cfg_.max_order_lines));
        // The most recent ~1/3 of orders are undelivered per the spec.
        bool delivered = o_id < cfg_.initial_orders_per_district * 2 / 3;
        o.carrier = delivered ? static_cast<uint32_t>(rng.UniformInt(1, 10)) : 0;
        out.emplace_back(OrderKey(w_id, d_id, o_id), o.Encode());
        out.emplace_back(LatestOrderIndexKey(w_id, d_id, o.customer),
                         EncodeIdList({o_id}));
        for (uint32_t l = 0; l < o.line_count; ++l) {
          TpccOrderLine line;
          line.item = static_cast<uint32_t>(rng.Uniform(cfg_.num_items));
          line.supply_warehouse = w_id;
          line.quantity = 5;
          line.amount_cents = delivered ? 0 : rng.UniformInt(1, 999999);
          line.delivery_ts = delivered ? 1 : 0;
          out.emplace_back(OrderLineKey(w_id, d_id, o_id, l), line.Encode());
        }
        if (!delivered) {
          undelivered.push_back(o_id);
        }
      }
      out.emplace_back(NewOrderQueueKey(w_id, d_id), EncodeIdList(undelivered));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Status TpccWorkload::NewOrder(TransactionalKv& kv, Rng& rng) {
  uint32_t w_id = static_cast<uint32_t>(rng.Uniform(cfg_.num_warehouses));
  uint32_t d_id = static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  uint32_t c_id = RandomCustomer(rng);
  uint32_t ol_cnt = static_cast<uint32_t>(
      rng.UniformInt(std::min(5u, cfg_.max_order_lines), cfg_.max_order_lines));
  bool rollback = rng.Uniform(100) == 0;  // 1% user rollback per the spec

  struct Line {
    uint32_t item;
    uint32_t supply_w;
    uint32_t quantity;
  };
  std::vector<Line> lines(ol_cnt);
  for (auto& l : lines) {
    l.item = RandomItem(rng);
    // 1% remote warehouse when there is more than one.
    l.supply_w = (cfg_.num_warehouses > 1 && rng.Uniform(100) == 0)
                     ? static_cast<uint32_t>(rng.Uniform(cfg_.num_warehouses))
                     : w_id;
    l.quantity = static_cast<uint32_t>(rng.UniformInt(1, 10));
  }

  Status st = RunTransaction(kv, [&](Txn& txn) -> Status {
    auto warehouse = txn.Read(WarehouseKey(w_id));
    if (!warehouse.ok()) {
      return warehouse.status();
    }
    auto district_raw = txn.Read(DistrictKey(w_id, d_id));
    if (!district_raw.ok()) {
      return district_raw.status();
    }
    TpccDistrict district = TpccDistrict::Decode(*district_raw);
    uint32_t o_id = district.next_o_id;
    district.next_o_id++;
    OBLADI_RETURN_IF_ERROR(txn.Write(DistrictKey(w_id, d_id), district.Encode()));

    auto customer = txn.Read(CustomerKey(w_id, d_id, c_id));
    if (!customer.ok()) {
      return customer.status();
    }

    int64_t total = 0;
    for (uint32_t l = 0; l < lines.size(); ++l) {
      auto item_raw = txn.Read(ItemKey(lines[l].item));
      if (!item_raw.ok()) {
        return item_raw.status();
      }
      if (rollback && l == lines.size() - 1) {
        // Simulated invalid item: the spec requires a user-initiated rollback.
        return Status::InvalidArgument("unused item number");
      }
      Bytes item_bytes(item_raw->begin(), item_raw->end());
      BinaryReader ir(item_bytes);
      ir.GetString();  // name
      int64_t price = ir.GetI64();

      auto stock_raw = txn.Read(StockKey(lines[l].supply_w, lines[l].item));
      if (!stock_raw.ok()) {
        return stock_raw.status();
      }
      TpccStock stock = TpccStock::Decode(*stock_raw);
      if (stock.quantity >= lines[l].quantity + 10) {
        stock.quantity -= lines[l].quantity;
      } else {
        stock.quantity = stock.quantity - lines[l].quantity + 91;
      }
      stock.ytd += lines[l].quantity;
      stock.order_count++;
      OBLADI_RETURN_IF_ERROR(
          txn.Write(StockKey(lines[l].supply_w, lines[l].item), stock.Encode()));

      TpccOrderLine ol;
      ol.item = lines[l].item;
      ol.supply_warehouse = lines[l].supply_w;
      ol.quantity = lines[l].quantity;
      ol.amount_cents = price * lines[l].quantity;
      total += ol.amount_cents;
      OBLADI_RETURN_IF_ERROR(txn.Write(OrderLineKey(w_id, d_id, o_id, l), ol.Encode()));
    }

    TpccOrder order;
    order.customer = c_id;
    order.entry_ts = txn.ts();
    order.line_count = static_cast<uint32_t>(lines.size());
    OBLADI_RETURN_IF_ERROR(txn.Write(OrderKey(w_id, d_id, o_id), order.Encode()));
    OBLADI_RETURN_IF_ERROR(
        txn.Write(LatestOrderIndexKey(w_id, d_id, c_id), EncodeIdList({o_id})));

    auto queue_raw = txn.Read(NewOrderQueueKey(w_id, d_id));
    if (!queue_raw.ok()) {
      return queue_raw.status();
    }
    std::vector<uint32_t> queue = DecodeIdList(*queue_raw);
    queue.push_back(o_id);
    return txn.Write(NewOrderQueueKey(w_id, d_id), EncodeIdList(queue));
  });

  if (!st.ok() && st.code() == StatusCode::kInvalidArgument) {
    Bump(&TpccStats::user_rollbacks);
    return Status::Ok();  // expected 1% rollback counts as a completed request
  }
  if (st.ok()) {
    Bump(&TpccStats::new_order);
  }
  return st;
}

Status TpccWorkload::Payment(TransactionalKv& kv, Rng& rng) {
  uint32_t w_id = static_cast<uint32_t>(rng.Uniform(cfg_.num_warehouses));
  uint32_t d_id = static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  bool by_name = rng.Uniform(100) < 60;
  uint32_t c_id = RandomCustomer(rng);
  std::string last = LastName(NuRand(rng, 255, 0, 999));
  int64_t amount = rng.UniformInt(100, 500000);

  Status st = RunTransaction(kv, [&](Txn& txn) -> Status {
    auto warehouse_raw = txn.Read(WarehouseKey(w_id));
    if (!warehouse_raw.ok()) {
      return warehouse_raw.status();
    }
    Bytes wb(warehouse_raw->begin(), warehouse_raw->end());
    BinaryReader wr(wb);
    std::string w_name = wr.GetString();
    int64_t w_tax = wr.GetI64();
    int64_t w_ytd = wr.GetI64() + amount;
    BinaryWriter ww;
    ww.PutString(w_name);
    ww.PutI64(w_tax);
    ww.PutI64(w_ytd);
    OBLADI_RETURN_IF_ERROR(
        txn.Write(WarehouseKey(w_id), std::string(ww.bytes().begin(), ww.bytes().end())));

    auto district_raw = txn.Read(DistrictKey(w_id, d_id));
    if (!district_raw.ok()) {
      return district_raw.status();
    }
    TpccDistrict district = TpccDistrict::Decode(*district_raw);
    district.ytd_cents += amount;
    OBLADI_RETURN_IF_ERROR(txn.Write(DistrictKey(w_id, d_id), district.Encode()));

    uint32_t customer_id = c_id;
    if (by_name) {
      auto index_raw = txn.Read(CustomerNameIndexKey(w_id, d_id, last));
      if (index_raw.ok()) {
        std::vector<uint32_t> matches = DecodeIdList(*index_raw);
        if (!matches.empty()) {
          customer_id = matches[matches.size() / 2];  // spec: middle match
        }
      } else if (index_raw.status().code() != StatusCode::kNotFound) {
        return index_raw.status();
      }
      // A missing index entry means no customer carries this last name at
      // the current scale: fall back to lookup by id.
    }
    auto customer_raw = txn.Read(CustomerKey(w_id, d_id, customer_id));
    if (!customer_raw.ok()) {
      return customer_raw.status();
    }
    TpccCustomer customer = TpccCustomer::Decode(*customer_raw);
    customer.balance_cents -= amount;
    customer.ytd_payment_cents += amount;
    customer.payment_count++;
    OBLADI_RETURN_IF_ERROR(
        txn.Write(CustomerKey(w_id, d_id, customer_id), customer.Encode()));

    BinaryWriter h;
    h.PutU32(customer_id);
    h.PutI64(amount);
    return txn.Write(HistoryKey(w_id, d_id, txn.ts()),
                     std::string(h.bytes().begin(), h.bytes().end()));
  });
  if (st.ok()) {
    Bump(&TpccStats::payment);
  }
  return st;
}

Status TpccWorkload::OrderStatus(TransactionalKv& kv, Rng& rng) {
  uint32_t w_id = static_cast<uint32_t>(rng.Uniform(cfg_.num_warehouses));
  uint32_t d_id = static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  bool by_name = rng.Uniform(100) < 60;
  uint32_t c_id = RandomCustomer(rng);
  std::string last = LastName(NuRand(rng, 255, 0, 999));

  Status st = RunTransaction(kv, [&](Txn& txn) -> Status {
    uint32_t customer_id = c_id;
    if (by_name) {
      auto index_raw = txn.Read(CustomerNameIndexKey(w_id, d_id, last));
      if (index_raw.ok()) {
        std::vector<uint32_t> matches = DecodeIdList(*index_raw);
        if (!matches.empty()) {
          customer_id = matches[matches.size() / 2];
        }
      } else if (index_raw.status().code() != StatusCode::kNotFound) {
        return index_raw.status();
      }
    }
    auto customer = txn.Read(CustomerKey(w_id, d_id, customer_id));
    if (!customer.ok()) {
      return customer.status();
    }
    auto latest_raw = txn.Read(LatestOrderIndexKey(w_id, d_id, customer_id));
    if (!latest_raw.ok()) {
      if (latest_raw.status().code() == StatusCode::kNotFound) {
        return Status::Ok();  // customer has never ordered
      }
      return latest_raw.status();
    }
    std::vector<uint32_t> latest = DecodeIdList(*latest_raw);
    if (latest.empty()) {
      return Status::Ok();  // customer has no orders yet
    }
    auto order_raw = txn.Read(OrderKey(w_id, d_id, latest[0]));
    if (!order_raw.ok()) {
      return order_raw.status();
    }
    TpccOrder order = TpccOrder::Decode(*order_raw);
    for (uint32_t l = 0; l < order.line_count; ++l) {
      auto line = txn.Read(OrderLineKey(w_id, d_id, latest[0], l));
      if (!line.ok()) {
        return line.status();
      }
    }
    return Status::Ok();
  });
  if (st.ok()) {
    Bump(&TpccStats::order_status);
  }
  return st;
}

Status TpccWorkload::Delivery(TransactionalKv& kv, Rng& rng) {
  uint32_t w_id = static_cast<uint32_t>(rng.Uniform(cfg_.num_warehouses));
  uint32_t carrier = static_cast<uint32_t>(rng.UniformInt(1, 10));

  Status st = RunTransaction(kv, [&](Txn& txn) -> Status {
    for (uint32_t d_id = 0; d_id < cfg_.districts_per_warehouse; ++d_id) {
      auto queue_raw = txn.Read(NewOrderQueueKey(w_id, d_id));
      if (!queue_raw.ok()) {
        return queue_raw.status();
      }
      std::vector<uint32_t> queue = DecodeIdList(*queue_raw);
      if (queue.empty()) {
        continue;
      }
      uint32_t o_id = queue.front();
      queue.erase(queue.begin());
      OBLADI_RETURN_IF_ERROR(txn.Write(NewOrderQueueKey(w_id, d_id), EncodeIdList(queue)));

      auto order_raw = txn.Read(OrderKey(w_id, d_id, o_id));
      if (!order_raw.ok()) {
        return order_raw.status();
      }
      TpccOrder order = TpccOrder::Decode(*order_raw);
      order.carrier = carrier;
      OBLADI_RETURN_IF_ERROR(txn.Write(OrderKey(w_id, d_id, o_id), order.Encode()));

      int64_t total = 0;
      for (uint32_t l = 0; l < order.line_count; ++l) {
        auto line_raw = txn.Read(OrderLineKey(w_id, d_id, o_id, l));
        if (!line_raw.ok()) {
          return line_raw.status();
        }
        TpccOrderLine line = TpccOrderLine::Decode(*line_raw);
        line.delivery_ts = txn.ts();
        total += line.amount_cents;
        OBLADI_RETURN_IF_ERROR(txn.Write(OrderLineKey(w_id, d_id, o_id, l), line.Encode()));
      }

      auto customer_raw = txn.Read(CustomerKey(w_id, d_id, order.customer));
      if (!customer_raw.ok()) {
        return customer_raw.status();
      }
      TpccCustomer customer = TpccCustomer::Decode(*customer_raw);
      customer.balance_cents += total;
      customer.delivery_count++;
      OBLADI_RETURN_IF_ERROR(
          txn.Write(CustomerKey(w_id, d_id, order.customer), customer.Encode()));
    }
    return Status::Ok();
  });
  if (st.ok()) {
    Bump(&TpccStats::delivery);
  }
  return st;
}

Status TpccWorkload::StockLevel(TransactionalKv& kv, Rng& rng) {
  uint32_t w_id = static_cast<uint32_t>(rng.Uniform(cfg_.num_warehouses));
  uint32_t d_id = static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  int64_t threshold = rng.UniformInt(10, 20);

  Status st = RunTransaction(kv, [&](Txn& txn) -> Status {
    auto district_raw = txn.Read(DistrictKey(w_id, d_id));
    if (!district_raw.ok()) {
      return district_raw.status();
    }
    TpccDistrict district = TpccDistrict::Decode(*district_raw);
    uint32_t from = district.next_o_id > cfg_.stock_level_orders
                        ? district.next_o_id - cfg_.stock_level_orders
                        : 0;
    std::unordered_set<uint32_t> items;
    for (uint32_t o_id = from; o_id < district.next_o_id; ++o_id) {
      auto order_raw = txn.Read(OrderKey(w_id, d_id, o_id));
      if (!order_raw.ok()) {
        return order_raw.status();
      }
      TpccOrder order = TpccOrder::Decode(*order_raw);
      for (uint32_t l = 0; l < order.line_count; ++l) {
        auto line_raw = txn.Read(OrderLineKey(w_id, d_id, o_id, l));
        if (!line_raw.ok()) {
          return line_raw.status();
        }
        items.insert(TpccOrderLine::Decode(*line_raw).item);
      }
    }
    int low = 0;
    for (uint32_t item : items) {
      auto stock_raw = txn.Read(StockKey(w_id, item));
      if (!stock_raw.ok()) {
        return stock_raw.status();
      }
      if (TpccStock::Decode(*stock_raw).quantity < threshold) {
        ++low;
      }
    }
    (void)low;  // the count is the query's result; nothing to persist
    return Status::Ok();
  });
  if (st.ok()) {
    Bump(&TpccStats::stock_level);
  }
  return st;
}

Status TpccWorkload::RunOne(TransactionalKv& kv, Rng& rng) {
  uint64_t dice = rng.Uniform(100);
  if (dice < 45) {
    return NewOrder(kv, rng);
  }
  if (dice < 88) {
    return Payment(kv, rng);
  }
  if (dice < 92) {
    return OrderStatus(kv, rng);
  }
  if (dice < 96) {
    return Delivery(kv, rng);
  }
  return StockLevel(kv, rng);
}

}  // namespace obladi
