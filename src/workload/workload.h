// Abstract workload: initial database + a stream of transactions. Workloads
// are written against TransactionalKv, so the same code drives Obladi,
// NoPriv, and the 2PL baseline.
#ifndef OBLADI_SRC_WORKLOAD_WORKLOAD_H_
#define OBLADI_SRC_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/txn/kv_interface.h"

namespace obladi {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  // Records to bulk-load before the run.
  virtual std::vector<std::pair<Key, std::string>> InitialRecords() = 0;

  // Execute one transaction (with internal retry on conflicts). Returns the
  // final outcome: OK = committed.
  virtual Status RunOne(TransactionalKv& kv, Rng& rng) = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_WORKLOAD_WORKLOAD_H_
