#include "src/workload/driver.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/audit/recorder.h"
#include "src/common/clock.h"

namespace obladi {

DriverResult RunWorkload(TransactionalKv& kv, Workload& workload,
                         const DriverOptions& options) {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<bool> measuring{false};
  std::atomic<bool> running{true};
  Histogram latencies;

  std::vector<std::thread> threads;
  threads.reserve(options.num_threads);
  for (size_t t = 0; t < options.num_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(options.seed * 1000003 + t);
      // Recording clients observe the run through a private decorator; the
      // history buffers are thread-confined, so there is no shared state on
      // this path beyond the store itself.
      std::unique_ptr<RecordingKv> recording;
      if (options.recorder != nullptr && t < options.recorder->num_clients()) {
        recording = std::make_unique<RecordingKv>(kv, options.recorder->Client(t));
      }
      TransactionalKv& client_kv = recording ? *recording : kv;
      while (running.load(std::memory_order_relaxed)) {
        Stopwatch sw;
        Status st = workload.RunOne(client_kv, rng);
        if (options.progress != nullptr) {
          options.progress[t].fetch_add(1, std::memory_order_relaxed);
        }
        if (!measuring.load(std::memory_order_relaxed)) {
          continue;
        }
        if (st.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
          latencies.Record(sw.ElapsedMicros());
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(options.warmup_ms));
  measuring.store(true);
  uint64_t start = NowMicros();
  std::this_thread::sleep_for(std::chrono::milliseconds(options.duration_ms));
  measuring.store(false);
  uint64_t elapsed_us = NowMicros() - start;
  running.store(false);
  for (auto& t : threads) {
    t.join();
  }

  DriverResult result;
  result.committed = committed.load();
  result.failed = failed.load();
  result.throughput_tps =
      static_cast<double>(result.committed) / (static_cast<double>(elapsed_us) / 1e6);
  result.mean_latency_us = latencies.Mean();
  result.p50_latency_us = latencies.Percentile(0.5);
  result.p99_latency_us = latencies.Percentile(0.99);
  if (options.recorder != nullptr) {
    HistoryRecorder::Totals totals = options.recorder->totals();
    result.attempts = totals.attempts;
    result.retries = totals.aborted + totals.indeterminate;
    result.aborts_per_committed_txn =
        totals.committed == 0 ? 0
                              : static_cast<double>(result.retries) /
                                    static_cast<double>(totals.committed);
    result.audit_trace_bytes = options.recorder->TraceBytes();
  }
  return result;
}

}  // namespace obladi
