#include "src/workload/driver.h"

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/clock.h"

namespace obladi {

DriverResult RunWorkload(TransactionalKv& kv, Workload& workload,
                         const DriverOptions& options) {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<bool> measuring{false};
  std::atomic<bool> running{true};
  Histogram latencies;

  std::vector<std::thread> threads;
  threads.reserve(options.num_threads);
  for (size_t t = 0; t < options.num_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(options.seed * 1000003 + t);
      while (running.load(std::memory_order_relaxed)) {
        Stopwatch sw;
        Status st = workload.RunOne(kv, rng);
        if (!measuring.load(std::memory_order_relaxed)) {
          continue;
        }
        if (st.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
          latencies.Record(sw.ElapsedMicros());
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(options.warmup_ms));
  measuring.store(true);
  uint64_t start = NowMicros();
  std::this_thread::sleep_for(std::chrono::milliseconds(options.duration_ms));
  measuring.store(false);
  uint64_t elapsed_us = NowMicros() - start;
  running.store(false);
  for (auto& t : threads) {
    t.join();
  }

  DriverResult result;
  result.committed = committed.load();
  result.failed = failed.load();
  result.throughput_tps =
      static_cast<double>(result.committed) / (static_cast<double>(elapsed_us) / 1e6);
  result.mean_latency_us = latencies.Mean();
  result.p50_latency_us = latencies.Percentile(0.5);
  result.p99_latency_us = latencies.Percentile(0.99);
  return result;
}

}  // namespace obladi
