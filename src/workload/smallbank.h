// SmallBank benchmark (§11): a simple banking application with six short
// transaction types over savings and checking accounts. Transactions are
// homogeneous (3-6 operations), which is why the paper can run it with small
// epochs.
#ifndef OBLADI_SRC_WORKLOAD_SMALLBANK_H_
#define OBLADI_SRC_WORKLOAD_SMALLBANK_H_

#include <string>

#include "src/workload/workload.h"

namespace obladi {

struct SmallBankConfig {
  uint64_t num_accounts = 100000;  // paper: 1M
  // Fraction of accounts forming a contended hotspot (OLTP-Bench style).
  double hotspot_fraction = 0.0;
  double hotspot_probability = 0.0;
};

class SmallBankWorkload : public Workload {
 public:
  explicit SmallBankWorkload(SmallBankConfig cfg) : cfg_(cfg) {}

  std::string name() const override { return "smallbank"; }
  std::vector<std::pair<Key, std::string>> InitialRecords() override;
  Status RunOne(TransactionalKv& kv, Rng& rng) override;

  // Transaction bodies (public so tests can target them directly).
  Status Balance(TransactionalKv& kv, uint64_t account);
  Status DepositChecking(TransactionalKv& kv, uint64_t account, int64_t amount);
  Status TransactSavings(TransactionalKv& kv, uint64_t account, int64_t amount);
  Status Amalgamate(TransactionalKv& kv, uint64_t from, uint64_t to);
  Status WriteCheck(TransactionalKv& kv, uint64_t account, int64_t amount);
  Status SendPayment(TransactionalKv& kv, uint64_t from, uint64_t to, int64_t amount);

  // Invariant check support: total money in the bank (single big read txn).
  StatusOr<int64_t> TotalBalance(TransactionalKv& kv, uint64_t sample_accounts);

  static Key SavingsKey(uint64_t account) { return "sb:s:" + std::to_string(account); }
  static Key CheckingKey(uint64_t account) { return "sb:c:" + std::to_string(account); }
  static std::string EncodeBalance(int64_t cents);
  static int64_t DecodeBalance(const std::string& value);

  static constexpr int64_t kInitialBalanceCents = 1000000;

 private:
  uint64_t PickAccount(Rng& rng);

  SmallBankConfig cfg_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_WORKLOAD_SMALLBANK_H_
