// YCSB-style key/operation generator (§11 microbenchmarks) plus a
// transactional wrapper. The microbenchmarks drive the ORAM with raw block
// ids; the transactional form issues small read/write transactions through
// the TransactionalKv interface.
#ifndef OBLADI_SRC_WORKLOAD_YCSB_H_
#define OBLADI_SRC_WORKLOAD_YCSB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/workload/workload.h"

namespace obladi {

struct YcsbConfig {
  uint64_t num_objects = 100000;
  double read_fraction = 0.5;
  double zipf_theta = 0.0;  // 0 = uniform
  size_t value_size = 100;
  size_t ops_per_txn = 4;   // transactional form only
};

class YcsbGenerator {
 public:
  explicit YcsbGenerator(const YcsbConfig& cfg) : cfg_(cfg) {
    if (cfg_.zipf_theta > 0) {
      zipf_ = std::make_unique<ZipfianGenerator>(cfg_.num_objects, cfg_.zipf_theta);
    }
  }

  BlockId NextKey(Rng& rng) {
    if (zipf_ != nullptr) {
      return zipf_->NextScrambled(rng);
    }
    return rng.Uniform(cfg_.num_objects);
  }

  bool NextIsRead(Rng& rng) { return rng.Bernoulli(cfg_.read_fraction); }

  const YcsbConfig& config() const { return cfg_; }

 private:
  YcsbConfig cfg_;
  std::unique_ptr<ZipfianGenerator> zipf_;
};

class YcsbWorkload : public Workload {
 public:
  explicit YcsbWorkload(YcsbConfig cfg) : cfg_(cfg), gen_(cfg) {}

  std::string name() const override { return "ycsb"; }

  std::vector<std::pair<Key, std::string>> InitialRecords() override {
    std::vector<std::pair<Key, std::string>> out;
    out.reserve(cfg_.num_objects);
    for (uint64_t i = 0; i < cfg_.num_objects; ++i) {
      out.emplace_back(MakeKey(i), std::string(cfg_.value_size, 'v'));
    }
    return out;
  }

  Status RunOne(TransactionalKv& kv, Rng& rng) override {
    // Pre-draw the op list so retries replay the same logical transaction.
    std::vector<std::pair<BlockId, bool>> ops;
    ops.reserve(cfg_.ops_per_txn);
    for (size_t i = 0; i < cfg_.ops_per_txn; ++i) {
      ops.emplace_back(gen_.NextKey(rng), gen_.NextIsRead(rng));
    }
    return RunTransaction(kv, [&](Txn& txn) -> Status {
      for (const auto& [id, is_read] : ops) {
        Key key = MakeKey(id);
        if (is_read) {
          auto v = txn.Read(key);
          if (!v.ok()) {
            return v.status();
          }
        } else {
          OBLADI_RETURN_IF_ERROR(txn.Write(key, std::string(cfg_.value_size, 'w')));
        }
      }
      return Status::Ok();
    });
  }

  static Key MakeKey(BlockId id) { return "ycsb:" + std::to_string(id); }

 private:
  YcsbConfig cfg_;
  YcsbGenerator gen_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_WORKLOAD_YCSB_H_
