#include "src/workload/freehealth.h"

#include <sstream>

namespace obladi {

std::string FhCounters::Encode() const {
  return std::to_string(episodes) + "|" + std::to_string(prescriptions) + "|" +
         std::to_string(pmh);
}

FhCounters FhCounters::Decode(const std::string& value) {
  FhCounters c;
  if (value.empty()) {
    return c;
  }
  std::istringstream in(value);
  std::string field;
  std::getline(in, field, '|');
  c.episodes = static_cast<uint32_t>(std::stoul(field));
  std::getline(in, field, '|');
  c.prescriptions = static_cast<uint32_t>(std::stoul(field));
  std::getline(in, field, '|');
  c.pmh = static_cast<uint32_t>(std::stoul(field));
  return c;
}

std::vector<std::pair<Key, std::string>> FreeHealthWorkload::InitialRecords() {
  std::vector<std::pair<Key, std::string>> out;
  Rng rng(0xf4ee);

  for (uint32_t u = 0; u < cfg_.num_users; ++u) {
    out.emplace_back(UserKey(u), "doctor|login" + std::to_string(u) + "|active");
    out.emplace_back(UserLoginIndexKey("login" + std::to_string(u)), std::to_string(u));
  }
  for (uint32_t d = 0; d < cfg_.num_drugs; ++d) {
    // "name|interactions" where interactions is a comma list of drug ids.
    std::string interactions;
    for (int i = 0; i < 3; ++i) {
      interactions += std::to_string(rng.Uniform(cfg_.num_drugs)) + ",";
    }
    out.emplace_back(DrugKey(d), "drug" + std::to_string(d) + "|" + interactions);
  }
  for (uint32_t p = 0; p < cfg_.num_patients; ++p) {
    out.emplace_back(PatientKey(p),
                     PatientName(p) + "|creator" + std::to_string(rng.Uniform(cfg_.num_users)) +
                         "|active");
    out.emplace_back(PatientNameIndexKey(PatientName(p)), std::to_string(p));
    FhCounters counters;
    counters.episodes = cfg_.episodes_per_patient;
    counters.prescriptions = cfg_.prescriptions_per_patient;
    counters.pmh = 1;
    out.emplace_back(PatientCountersKey(p), counters.Encode());
    for (uint32_t e = 0; e < cfg_.episodes_per_patient; ++e) {
      out.emplace_back(EpisodeKey(p, e), "episode|open|" + std::to_string(e));
      out.emplace_back(EpisodeContentKey(p, e, 0), "<xml>initial consultation</xml>");
    }
    for (uint32_t rx = 0; rx < cfg_.prescriptions_per_patient; ++rx) {
      out.emplace_back(PrescriptionKey(p, rx),
                       std::to_string(rng.Uniform(cfg_.num_drugs)) + "|active");
    }
    out.emplace_back(PmhKey(p, 0), "history|none");
  }
  return out;
}

Status FreeHealthWorkload::RunType(FreeHealthTxn type, TransactionalKv& kv, Rng& rng) {
  uint32_t p = PickPatient(rng);
  uint32_t user = static_cast<uint32_t>(rng.Uniform(cfg_.num_users));
  uint32_t drug = static_cast<uint32_t>(rng.Uniform(cfg_.num_drugs));

  Status st;
  switch (type) {
    case FreeHealthTxn::kCreatePatient: {
      uint32_t new_id = cfg_.num_patients + static_cast<uint32_t>(rng.Uniform(1u << 20));
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        OBLADI_RETURN_IF_ERROR(txn.Write(
            PatientKey(new_id), PatientName(new_id) + "|creator" + std::to_string(user) +
                                    "|active"));
        OBLADI_RETURN_IF_ERROR(
            txn.Write(PatientNameIndexKey(PatientName(new_id)), std::to_string(new_id)));
        return txn.Write(PatientCountersKey(new_id), FhCounters{}.Encode());
      });
      break;
    }
    case FreeHealthTxn::kGetPatient: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto v = txn.Read(PatientKey(p));
        return v.ok() ? Status::Ok() : v.status();
      });
      break;
    }
    case FreeHealthTxn::kSearchPatientByName: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto id_raw = txn.Read(PatientNameIndexKey(PatientName(p)));
        if (!id_raw.ok()) {
          return id_raw.status();
        }
        auto v = txn.Read(PatientKey(static_cast<uint32_t>(std::stoul(*id_raw))));
        return v.ok() ? Status::Ok() : v.status();
      });
      break;
    }
    case FreeHealthTxn::kUpdatePatientMetadata: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto v = txn.Read(PatientKey(p));
        if (!v.ok()) {
          return v.status();
        }
        return txn.Write(PatientKey(p), *v + "|updated");
      });
      break;
    }
    case FreeHealthTxn::kDeactivatePatient: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto v = txn.Read(PatientKey(p));
        if (!v.ok()) {
          return v.status();
        }
        return txn.Write(PatientKey(p), PatientName(p) + "|creator0|inactive");
      });
      break;
    }
    case FreeHealthTxn::kGetUser: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto v = txn.Read(UserKey(user));
        return v.ok() ? Status::Ok() : v.status();
      });
      break;
    }
    case FreeHealthTxn::kAuthenticateUser: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto id_raw = txn.Read(UserLoginIndexKey("login" + std::to_string(user)));
        if (!id_raw.ok()) {
          return id_raw.status();
        }
        auto v = txn.Read(UserKey(static_cast<uint32_t>(std::stoul(*id_raw))));
        return v.ok() ? Status::Ok() : v.status();
      });
      break;
    }
    case FreeHealthTxn::kUpdateUserMetadata: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto v = txn.Read(UserKey(user));
        if (!v.ok()) {
          return v.status();
        }
        return txn.Write(UserKey(user), *v + "|seen");
      });
      break;
    }
    case FreeHealthTxn::kCreateEpisode: {
      // The paper's contention point: bumps the patient's episode counter.
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        uint32_t e = counters.episodes++;
        OBLADI_RETURN_IF_ERROR(txn.Write(PatientCountersKey(p), counters.Encode()));
        OBLADI_RETURN_IF_ERROR(
            txn.Write(EpisodeKey(p, e), "episode|open|" + std::to_string(e)));
        return txn.Write(EpisodeContentKey(p, e, 0), "<xml>new episode</xml>");
      });
      break;
    }
    case FreeHealthTxn::kGetEpisode: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        if (counters.episodes == 0) {
          return Status::Ok();
        }
        auto v = txn.Read(EpisodeKey(p, static_cast<uint32_t>(rng.Uniform(counters.episodes))));
        return v.ok() ? Status::Ok() : v.status();
      });
      break;
    }
    case FreeHealthTxn::kListPatientEpisodes: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        uint32_t limit = std::min(counters.episodes, 5u);
        for (uint32_t e = 0; e < limit; ++e) {
          auto v = txn.Read(EpisodeKey(p, e));
          if (!v.ok()) {
            return v.status();
          }
        }
        return Status::Ok();
      });
      break;
    }
    case FreeHealthTxn::kAddEpisodeContent: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        if (counters.episodes == 0) {
          return Status::Ok();
        }
        uint32_t e = static_cast<uint32_t>(rng.Uniform(counters.episodes));
        uint32_t c = static_cast<uint32_t>(rng.UniformInt(1, 8));
        return txn.Write(EpisodeContentKey(p, e, c), "<xml>follow-up note</xml>");
      });
      break;
    }
    case FreeHealthTxn::kGetEpisodeContent: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        if (counters.episodes == 0) {
          return Status::Ok();
        }
        auto v = txn.Read(
            EpisodeContentKey(p, static_cast<uint32_t>(rng.Uniform(counters.episodes)), 0));
        return v.ok() ? Status::Ok() : v.status();
      });
      break;
    }
    case FreeHealthTxn::kValidateEpisode: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        if (counters.episodes == 0) {
          return Status::Ok();
        }
        uint32_t e = static_cast<uint32_t>(rng.Uniform(counters.episodes));
        auto v = txn.Read(EpisodeKey(p, e));
        if (!v.ok()) {
          return v.status();
        }
        return txn.Write(EpisodeKey(p, e), "episode|validated|" + std::to_string(e));
      });
      break;
    }
    case FreeHealthTxn::kCreatePrescription: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        uint32_t rx = counters.prescriptions++;
        OBLADI_RETURN_IF_ERROR(txn.Write(PatientCountersKey(p), counters.Encode()));
        auto drug_raw = txn.Read(DrugKey(drug));
        if (!drug_raw.ok()) {
          return drug_raw.status();
        }
        return txn.Write(PrescriptionKey(p, rx), std::to_string(drug) + "|active");
      });
      break;
    }
    case FreeHealthTxn::kGetPrescriptions: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        uint32_t limit = std::min(counters.prescriptions, 5u);
        for (uint32_t rx = 0; rx < limit; ++rx) {
          auto v = txn.Read(PrescriptionKey(p, rx));
          if (!v.ok()) {
            return v.status();
          }
        }
        return Status::Ok();
      });
      break;
    }
    case FreeHealthTxn::kRenewPrescription: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        if (counters.prescriptions == 0) {
          return Status::Ok();
        }
        uint32_t rx = static_cast<uint32_t>(rng.Uniform(counters.prescriptions));
        auto v = txn.Read(PrescriptionKey(p, rx));
        if (!v.ok()) {
          return v.status();
        }
        return txn.Write(PrescriptionKey(p, rx), *v + "|renewed");
      });
      break;
    }
    case FreeHealthTxn::kGetDrug: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto v = txn.Read(DrugKey(drug));
        return v.ok() ? Status::Ok() : v.status();
      });
      break;
    }
    case FreeHealthTxn::kCheckDrugInteractions: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto drug_raw = txn.Read(DrugKey(drug));
        if (!drug_raw.ok()) {
          return drug_raw.status();
        }
        // Read the listed interaction partners.
        size_t bar = drug_raw->find('|');
        std::string list = bar == std::string::npos ? "" : drug_raw->substr(bar + 1);
        std::istringstream in(list);
        std::string id;
        int checked = 0;
        while (std::getline(in, id, ',') && checked < 3) {
          if (id.empty()) {
            continue;
          }
          auto v = txn.Read(DrugKey(static_cast<uint32_t>(std::stoul(id))));
          if (!v.ok()) {
            return v.status();
          }
          ++checked;
        }
        return Status::Ok();
      });
      break;
    }
    case FreeHealthTxn::kAddPmhEntry: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        uint32_t entry = counters.pmh++;
        OBLADI_RETURN_IF_ERROR(txn.Write(PatientCountersKey(p), counters.Encode()));
        return txn.Write(PmhKey(p, entry), "history|chronic condition");
      });
      break;
    }
    case FreeHealthTxn::kGetPmh: {
      st = RunTransaction(kv, [&](Txn& txn) -> Status {
        auto counters_raw = txn.Read(PatientCountersKey(p));
        if (!counters_raw.ok()) {
          return counters_raw.status();
        }
        FhCounters counters = FhCounters::Decode(*counters_raw);
        uint32_t limit = std::min(counters.pmh, 3u);
        for (uint32_t entry = 0; entry < limit; ++entry) {
          auto v = txn.Read(PmhKey(p, entry));
          if (!v.ok()) {
            return v.status();
          }
        }
        return Status::Ok();
      });
      break;
    }
    case FreeHealthTxn::kNumTxnTypes:
      return Status::InvalidArgument("not a transaction type");
  }
  if (st.ok()) {
    Bump(type);
  }
  return st;
}

Status FreeHealthWorkload::RunOne(TransactionalKv& kv, Rng& rng) {
  // Read-heavy mix (~75% reads): weights per transaction type, in enum order.
  static const int kWeights[] = {
      2,   // CreatePatient
      10,  // GetPatient
      8,   // SearchPatientByName
      2,   // UpdatePatientMetadata
      1,   // DeactivatePatient
      4,   // GetUser
      6,   // AuthenticateUser
      1,   // UpdateUserMetadata
      6,   // CreateEpisode
      10,  // GetEpisode
      8,   // ListPatientEpisodes
      4,   // AddEpisodeContent
      6,   // GetEpisodeContent
      2,   // ValidateEpisode
      4,   // CreatePrescription
      8,   // GetPrescriptions
      2,   // RenewPrescription
      6,   // GetDrug
      6,   // CheckDrugInteractions
      2,   // AddPmhEntry
      2,   // GetPmh
  };
  static_assert(sizeof(kWeights) / sizeof(kWeights[0]) ==
                static_cast<size_t>(FreeHealthTxn::kNumTxnTypes));
  int total = 0;
  for (int w : kWeights) {
    total += w;
  }
  int dice = static_cast<int>(rng.Uniform(total));
  for (size_t i = 0; i < static_cast<size_t>(FreeHealthTxn::kNumTxnTypes); ++i) {
    dice -= kWeights[i];
    if (dice < 0) {
      return RunType(static_cast<FreeHealthTxn>(i), kv, rng);
    }
  }
  return RunType(FreeHealthTxn::kGetPatient, kv, rng);
}

}  // namespace obladi
