#include "src/workload/smallbank.h"

namespace obladi {

std::string SmallBankWorkload::EncodeBalance(int64_t cents) { return std::to_string(cents); }

int64_t SmallBankWorkload::DecodeBalance(const std::string& value) {
  if (value.empty()) {
    return 0;
  }
  return std::stoll(value);
}

std::vector<std::pair<Key, std::string>> SmallBankWorkload::InitialRecords() {
  std::vector<std::pair<Key, std::string>> out;
  out.reserve(cfg_.num_accounts * 2);
  for (uint64_t a = 0; a < cfg_.num_accounts; ++a) {
    out.emplace_back(SavingsKey(a), EncodeBalance(kInitialBalanceCents));
    out.emplace_back(CheckingKey(a), EncodeBalance(kInitialBalanceCents));
  }
  return out;
}

uint64_t SmallBankWorkload::PickAccount(Rng& rng) {
  if (cfg_.hotspot_fraction > 0 && rng.Bernoulli(cfg_.hotspot_probability)) {
    auto hot = static_cast<uint64_t>(static_cast<double>(cfg_.num_accounts) *
                                     cfg_.hotspot_fraction);
    return rng.Uniform(hot == 0 ? 1 : hot);
  }
  return rng.Uniform(cfg_.num_accounts);
}

Status SmallBankWorkload::Balance(TransactionalKv& kv, uint64_t account) {
  return RunTransaction(kv, [&](Txn& txn) -> Status {
    auto savings = txn.Read(SavingsKey(account));
    if (!savings.ok()) {
      return savings.status();
    }
    auto checking = txn.Read(CheckingKey(account));
    return checking.ok() ? Status::Ok() : checking.status();
  });
}

Status SmallBankWorkload::DepositChecking(TransactionalKv& kv, uint64_t account,
                                          int64_t amount) {
  return RunTransaction(kv, [&](Txn& txn) -> Status {
    auto checking = txn.Read(CheckingKey(account));
    if (!checking.ok()) {
      return checking.status();
    }
    return txn.Write(CheckingKey(account), EncodeBalance(DecodeBalance(*checking) + amount));
  });
}

Status SmallBankWorkload::TransactSavings(TransactionalKv& kv, uint64_t account,
                                          int64_t amount) {
  return RunTransaction(kv, [&](Txn& txn) -> Status {
    auto savings = txn.Read(SavingsKey(account));
    if (!savings.ok()) {
      return savings.status();
    }
    int64_t balance = DecodeBalance(*savings) + amount;
    if (balance < 0) {
      return Status::Ok();  // insufficient funds: no-op per the benchmark spec
    }
    return txn.Write(SavingsKey(account), EncodeBalance(balance));
  });
}

Status SmallBankWorkload::Amalgamate(TransactionalKv& kv, uint64_t from, uint64_t to) {
  return RunTransaction(kv, [&](Txn& txn) -> Status {
    auto savings = txn.Read(SavingsKey(from));
    if (!savings.ok()) {
      return savings.status();
    }
    auto checking = txn.Read(CheckingKey(from));
    if (!checking.ok()) {
      return checking.status();
    }
    auto to_checking = txn.Read(CheckingKey(to));
    if (!to_checking.ok()) {
      return to_checking.status();
    }
    int64_t moved = DecodeBalance(*savings) + DecodeBalance(*checking);
    OBLADI_RETURN_IF_ERROR(txn.Write(SavingsKey(from), EncodeBalance(0)));
    OBLADI_RETURN_IF_ERROR(txn.Write(CheckingKey(from), EncodeBalance(0)));
    return txn.Write(CheckingKey(to), EncodeBalance(DecodeBalance(*to_checking) + moved));
  });
}

Status SmallBankWorkload::WriteCheck(TransactionalKv& kv, uint64_t account, int64_t amount) {
  return RunTransaction(kv, [&](Txn& txn) -> Status {
    auto savings = txn.Read(SavingsKey(account));
    if (!savings.ok()) {
      return savings.status();
    }
    auto checking = txn.Read(CheckingKey(account));
    if (!checking.ok()) {
      return checking.status();
    }
    int64_t total = DecodeBalance(*savings) + DecodeBalance(*checking);
    // Overdraft penalty per the SmallBank spec.
    int64_t deducted = total < amount ? amount + 100 : amount;
    return txn.Write(CheckingKey(account), EncodeBalance(DecodeBalance(*checking) - deducted));
  });
}

Status SmallBankWorkload::SendPayment(TransactionalKv& kv, uint64_t from, uint64_t to,
                                      int64_t amount) {
  return RunTransaction(kv, [&](Txn& txn) -> Status {
    auto from_checking = txn.Read(CheckingKey(from));
    if (!from_checking.ok()) {
      return from_checking.status();
    }
    int64_t balance = DecodeBalance(*from_checking);
    if (balance < amount) {
      return Status::Ok();  // insufficient funds: no-op
    }
    auto to_checking = txn.Read(CheckingKey(to));
    if (!to_checking.ok()) {
      return to_checking.status();
    }
    OBLADI_RETURN_IF_ERROR(txn.Write(CheckingKey(from), EncodeBalance(balance - amount)));
    return txn.Write(CheckingKey(to), EncodeBalance(DecodeBalance(*to_checking) + amount));
  });
}

StatusOr<int64_t> SmallBankWorkload::TotalBalance(TransactionalKv& kv,
                                                  uint64_t sample_accounts) {
  int64_t total = 0;
  Status st = RunTransaction(kv, [&](Txn& txn) -> Status {
    total = 0;
    for (uint64_t a = 0; a < sample_accounts && a < cfg_.num_accounts; ++a) {
      auto savings = txn.Read(SavingsKey(a));
      if (!savings.ok()) {
        return savings.status();
      }
      auto checking = txn.Read(CheckingKey(a));
      if (!checking.ok()) {
        return checking.status();
      }
      total += DecodeBalance(*savings) + DecodeBalance(*checking);
    }
    return Status::Ok();
  });
  if (!st.ok()) {
    return st;
  }
  return total;
}

Status SmallBankWorkload::RunOne(TransactionalKv& kv, Rng& rng) {
  uint64_t a = PickAccount(rng);
  uint64_t b = PickAccount(rng);
  if (b == a) {
    b = (a + 1) % cfg_.num_accounts;
  }
  int64_t amount = rng.UniformInt(1, 10000);
  switch (rng.Uniform(100)) {
    case 0 ... 14:  return Balance(kv, a);
    case 15 ... 29: return DepositChecking(kv, a, amount);
    case 30 ... 44: return TransactSavings(kv, a, amount);
    case 45 ... 59: return Amalgamate(kv, a, b);
    case 60 ... 74: return WriteCheck(kv, a, amount);
    default:        return SendPayment(kv, a, b, amount);
  }
}

}  // namespace obladi
