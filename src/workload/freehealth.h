// FreeHealth (§11): a port of the cloud EHR application's storage layer,
// following the Figure 8 schema — Users, Patients, Episodes, EpisodeContents,
// Prescriptions, Drugs, and PMH (past medical history) — with the 21
// transaction types doctors use to create patients and look up medical
// history, prescriptions, and drug interactions.
//
// The workload is read-heavy (the paper exploits this with a small write
// batch), and its main write contention point is episode creation, which
// bumps the per-patient episode counter — "the core units of EHR systems".
#ifndef OBLADI_SRC_WORKLOAD_FREEHEALTH_H_
#define OBLADI_SRC_WORKLOAD_FREEHEALTH_H_

#include <mutex>
#include <string>

#include "src/workload/workload.h"

namespace obladi {

struct FreeHealthConfig {
  uint32_t num_patients = 2000;
  uint32_t num_users = 100;       // doctors/nurses
  uint32_t num_drugs = 500;
  uint32_t episodes_per_patient = 4;       // initial
  uint32_t prescriptions_per_patient = 2;  // initial
};

// The 21 transaction types (indices used by tests and the mix table).
enum class FreeHealthTxn : int {
  kCreatePatient = 0,
  kGetPatient,
  kSearchPatientByName,
  kUpdatePatientMetadata,
  kDeactivatePatient,
  kGetUser,
  kAuthenticateUser,
  kUpdateUserMetadata,
  kCreateEpisode,
  kGetEpisode,
  kListPatientEpisodes,
  kAddEpisodeContent,
  kGetEpisodeContent,
  kValidateEpisode,
  kCreatePrescription,
  kGetPrescriptions,
  kRenewPrescription,
  kGetDrug,
  kCheckDrugInteractions,
  kAddPmhEntry,
  kGetPmh,
  kNumTxnTypes,
};

class FreeHealthWorkload : public Workload {
 public:
  explicit FreeHealthWorkload(FreeHealthConfig cfg) : cfg_(cfg) {}

  std::string name() const override { return "freehealth"; }
  std::vector<std::pair<Key, std::string>> InitialRecords() override;
  Status RunOne(TransactionalKv& kv, Rng& rng) override;

  // Run one specific transaction type (tests drive these directly).
  Status RunType(FreeHealthTxn type, TransactionalKv& kv, Rng& rng);

  uint64_t CountOf(FreeHealthTxn type) const {
    std::lock_guard<std::mutex> lk(mu_);
    return counts_[static_cast<size_t>(type)];
  }

  // --- keys (Figure 8 tables) ---
  static Key PatientKey(uint32_t p) { return "fh:p:" + std::to_string(p); }
  static Key PatientNameIndexKey(const std::string& name) { return "fh:pi:" + name; }
  static Key UserKey(uint32_t u) { return "fh:u:" + std::to_string(u); }
  static Key UserLoginIndexKey(const std::string& login) { return "fh:ui:" + login; }
  static Key EpisodeKey(uint32_t p, uint32_t e) {
    return "fh:e:" + std::to_string(p) + ":" + std::to_string(e);
  }
  static Key EpisodeContentKey(uint32_t p, uint32_t e, uint32_t c) {
    return "fh:ec:" + std::to_string(p) + ":" + std::to_string(e) + ":" + std::to_string(c);
  }
  static Key PrescriptionKey(uint32_t p, uint32_t rx) {
    return "fh:rx:" + std::to_string(p) + ":" + std::to_string(rx);
  }
  static Key DrugKey(uint32_t d) { return "fh:drug:" + std::to_string(d); }
  static Key PmhKey(uint32_t p, uint32_t entry) {
    return "fh:pmh:" + std::to_string(p) + ":" + std::to_string(entry);
  }
  // Per-patient counters (episode/prescription/pmh sequence numbers).
  static Key PatientCountersKey(uint32_t p) { return "fh:pc:" + std::to_string(p); }

  static std::string PatientName(uint32_t p) { return "patient" + std::to_string(p % 977); }

 private:
  void Bump(FreeHealthTxn type) {
    std::lock_guard<std::mutex> lk(mu_);
    counts_[static_cast<size_t>(type)]++;
  }
  uint32_t PickPatient(Rng& rng) { return static_cast<uint32_t>(rng.Uniform(cfg_.num_patients)); }

  FreeHealthConfig cfg_;
  mutable std::mutex mu_;
  uint64_t counts_[static_cast<size_t>(FreeHealthTxn::kNumTxnTypes)] = {};
};

// Patient counters record: "episodes|prescriptions|pmh".
struct FhCounters {
  uint32_t episodes = 0;
  uint32_t prescriptions = 0;
  uint32_t pmh = 0;
  std::string Encode() const;
  static FhCounters Decode(const std::string& value);
};

}  // namespace obladi

#endif  // OBLADI_SRC_WORKLOAD_FREEHEALTH_H_
