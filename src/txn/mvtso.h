// Multiversioned timestamp ordering (MVTSO) concurrency control (§6.1).
//
// Obladi chooses MVTSO because uncommitted writes are immediately visible to
// concurrent transactions — essential when commit decisions are delayed to
// epoch boundaries (a pessimistic scheme would hold write locks for a whole
// epoch). The engine implements:
//   * version chains per key with read markers;
//   * the MVTSO write rule (abort a writer whose predecessor version was
//     already read by a later-timestamped transaction);
//   * write-read dependency tracking with cascading aborts;
//   * two commit disciplines: epoch commit (Obladi — Finish() registers the
//     request, EndEpoch() decides all transactions at once) and immediate
//     commit (NoPriv — TryCommitImmediate waits for dependencies).
//
// The engine is purely in-memory: callers fetch missing base values from
// their storage (ORAM or remote KV) and install them with InstallBase. For
// Obladi, the version chains double as the epoch's version cache (§6.2):
// EndEpoch clears them and returns the final write set for the write batch.
#ifndef OBLADI_SRC_TXN_MVTSO_H_
#define OBLADI_SRC_TXN_MVTSO_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/txn/kv_interface.h"

namespace obladi {

enum class TxnState : uint8_t {
  kActive,     // executing
  kFinished,   // commit requested, awaiting epoch decision
  kCommitted,
  kAborted,
};

struct ReadOutcome {
  enum Kind { kValue, kNeedBase, kAborted } kind = kAborted;
  std::string value;
};

struct EpochOutcome {
  std::vector<Timestamp> committed;
  std::vector<Timestamp> aborted;
  // Last committed version of every key written this epoch (the write batch).
  std::vector<std::pair<Key, std::string>> final_writes;
};

// Admission rule for the epoch's fixed-size write batch. A sharded proxy
// additionally caps the distinct write keys routed to each ORAM shard: the
// per-shard write batches are padded to a fixed quota, so a transaction
// whose writes would overflow any shard's quota aborts (the same "batch
// filling up" rule as the global cap, applied per partition).
struct WriteBatchAdmission {
  size_t max_write_keys = 0;                    // global cap; 0 = unlimited
  std::function<uint32_t(const Key&)> shard_of; // null = single shard
  std::vector<size_t> shard_quotas;             // per-shard distinct-key caps
  // Pipelined epochs: re-install the epoch's final committed writes as the
  // next epoch's base versions (writer ts 0) after the chains are cleared.
  // Epoch-commit *admission* is thereby decoupled from durability *release*:
  // the next epoch reads the committed values straight from the version
  // cache while the write batch is still being flushed to the ORAM in the
  // background — no client learns a commit decision any earlier (the proxy
  // still withholds those until the epoch's checkpoint is durable), and on a
  // crash the whole undurable epoch vanishes with the cache.
  bool install_committed_as_base = false;
};

struct MvtsoStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborts_write_conflict = 0;
  uint64_t aborts_cascade = 0;
  uint64_t aborts_unfinished_epoch = 0;
  uint64_t aborts_batch_overflow = 0;
  uint64_t aborts_explicit = 0;
};

class MvtsoEngine {
 public:
  MvtsoEngine() = default;

  Timestamp Begin();

  // Returns the latest version with writer timestamp <= ts, recording the
  // read marker and (if the writer is uncommitted) a write-read dependency.
  ReadOutcome Read(Timestamp ts, const Key& key);

  // MVTSO write rule; kAborted (with cascade) on conflict.
  Status Write(Timestamp ts, const Key& key, std::string value);

  // Install the committed base version fetched from storage (writer ts 0).
  void InstallBase(const Key& key, std::string value);
  bool HasAnyVersion(const Key& key) const;

  // Epoch mode: register a commit request; the decision comes from EndEpoch.
  Status Finish(Timestamp ts);

  // Immediate mode (NoPriv): wait until every dependency is decided, then
  // commit. Returns kAborted if the transaction or a dependency aborted.
  Status TryCommitImmediate(Timestamp ts);

  // Explicit abort with cascade. Idempotent.
  void Abort(Timestamp ts) { AbortWithReason(ts, AbortReason::kExplicit); }

  // Epoch mode: decide every live transaction. Finished transactions commit
  // in timestamp order while their combined distinct write-key count fits in
  // max_write_keys (0 = unlimited); everything else aborts. Clears all
  // version chains (the version cache lives one epoch, §6.2).
  EpochOutcome EndEpoch(size_t max_write_keys);

  // Same, with per-shard write-batch admission (sharded proxies).
  EpochOutcome EndEpoch(const WriteBatchAdmission& admission);

  TxnState GetState(Timestamp ts) const;
  std::vector<std::pair<Key, std::string>> WritesOf(Timestamp ts) const;

  // Drop all transactions and version chains (proxy crash). The timestamp
  // counter keeps advancing so handles stay unique across the crash.
  void Reset();

  MvtsoStats stats() const;

 private:
  enum class AbortReason { kWriteConflict, kCascade, kUnfinishedEpoch, kBatchOverflow, kExplicit };

  struct Version {
    Timestamp writer = 0;  // 0 = committed base from storage
    std::string value;
    Timestamp max_read = 0;  // read marker
  };
  struct Chain {
    std::vector<Version> versions;  // ascending writer timestamp
    Timestamp pruned_floor = 0;     // readers older than this must abort
  };
  struct TxnRecord {
    TxnState state = TxnState::kActive;
    std::unordered_set<Timestamp> deps;        // uncommitted writers observed
    std::unordered_set<Timestamp> dependents;  // who observed our writes
    std::map<Key, std::string> writes;
  };

  void AbortWithReason(Timestamp ts, AbortReason reason);
  void AbortLocked(Timestamp ts, AbortReason reason);
  void RemoveVersionsOf(Timestamp ts, const TxnRecord& rec);
  TxnRecord* FindTxn(Timestamp ts);
  const TxnRecord* FindTxn(Timestamp ts) const;

  mutable std::mutex mu_;
  std::condition_variable decided_cv_;
  std::atomic<Timestamp> next_ts_{1};
  std::map<Timestamp, TxnRecord> txns_;
  std::unordered_map<Key, Chain> chains_;
  MvtsoStats stats_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_TXN_MVTSO_H_
