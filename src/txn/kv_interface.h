// The transactional key-value interface shared by Obladi and the non-private
// baselines (NoPriv, two-phase locking). Workloads and benchmarks are written
// against this interface only.
#ifndef OBLADI_SRC_TXN_KV_INTERFACE_H_
#define OBLADI_SRC_TXN_KV_INTERFACE_H_

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/common/types.h"

namespace obladi {

using Key = std::string;

class TransactionalKv {
 public:
  virtual ~TransactionalKv() = default;

  // Start a transaction; the returned timestamp doubles as its handle and
  // determines its position in the serialization order (MVTSO).
  virtual Timestamp Begin() = 0;

  // Read `key` as of this transaction. May block (Obladi: until the read
  // batch containing the request executes). Errors:
  //   kAborted   – the transaction was aborted (conflict, cascade, or epoch end)
  //   kNotFound  – no such key
  virtual StatusOr<std::string> Read(Timestamp txn, const Key& key) = 0;

  // Buffer a write. Visible to concurrent transactions per MVTSO; durable
  // only after Commit succeeds.
  virtual Status Write(Timestamp txn, const Key& key, std::string value) = 0;

  // Request commit and block until the decision. Obladi defers the decision
  // to the end of the transaction's epoch (§6).
  virtual Status Commit(Timestamp txn) = 0;

  // Abort explicitly; safe to call on an already-decided transaction.
  virtual void Abort(Timestamp txn) = 0;
};

// Ergonomic wrapper passed to transaction bodies.
class Txn {
 public:
  Txn(TransactionalKv& kv, Timestamp ts) : kv_(kv), ts_(ts) {}

  Timestamp ts() const { return ts_; }
  StatusOr<std::string> Read(const Key& key) { return kv_.Read(ts_, key); }
  Status Write(const Key& key, std::string value) {
    return kv_.Write(ts_, key, std::move(value));
  }

 private:
  TransactionalKv& kv_;
  Timestamp ts_;
};

// Body returns OK to request commit or an error to abort. kAborted results
// (from the body or from Commit) are retried up to max_attempts times, with
// a small, capped exponential backoff between attempts: aborts are decided
// at batch/epoch granularity (an epoch whose read batches are all dispatched
// aborts every new fetch until the epoch turns over), so instant retries can
// burn the whole attempt budget inside one such window without ever giving
// the proxy's pacing a chance to open the next epoch.
inline Status RunTransaction(TransactionalKv& kv, const std::function<Status(Txn&)>& body,
                             int max_attempts = 100) {
  Status last = Status::Aborted("no attempts made");
  uint64_t backoff_us = 50;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = std::min<uint64_t>(backoff_us * 2, 2000);
    }
    Timestamp ts = kv.Begin();
    Txn txn(kv, ts);
    Status st = body(txn);
    if (!st.ok()) {
      kv.Abort(ts);
      if (st.code() == StatusCode::kAborted) {
        last = st;
        continue;  // conflict: retry
      }
      return st;  // application error: do not retry
    }
    st = kv.Commit(ts);
    if (st.ok()) {
      return st;
    }
    last = st;
    if (st.code() != StatusCode::kAborted) {
      return st;
    }
  }
  return last;
}

}  // namespace obladi

#endif  // OBLADI_SRC_TXN_KV_INTERFACE_H_
