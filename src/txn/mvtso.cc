#include "src/txn/mvtso.h"

#include <algorithm>
#include <cassert>

namespace obladi {

Timestamp MvtsoEngine::Begin() {
  Timestamp ts = next_ts_.fetch_add(1);
  std::lock_guard<std::mutex> lk(mu_);
  txns_[ts] = TxnRecord{};
  stats_.begun++;
  // Immediate-commit mode never calls EndEpoch, so decided records must be
  // garbage collected here: drop decided transactions older than the oldest
  // live one (nobody can still depend on their state once all dependents are
  // decided, and cascades resolve at abort time).
  if (txns_.size() > 8192) {
    Timestamp oldest_live = ts;
    for (const auto& [t, rec] : txns_) {
      if (rec.state == TxnState::kActive || rec.state == TxnState::kFinished) {
        oldest_live = t;
        break;
      }
    }
    for (auto it = txns_.begin(); it != txns_.end() && it->first < oldest_live;) {
      it = txns_.erase(it);
    }
  }
  return ts;
}

MvtsoEngine::TxnRecord* MvtsoEngine::FindTxn(Timestamp ts) {
  auto it = txns_.find(ts);
  return it == txns_.end() ? nullptr : &it->second;
}

const MvtsoEngine::TxnRecord* MvtsoEngine::FindTxn(Timestamp ts) const {
  auto it = txns_.find(ts);
  return it == txns_.end() ? nullptr : &it->second;
}

ReadOutcome MvtsoEngine::Read(Timestamp ts, const Key& key) {
  std::lock_guard<std::mutex> lk(mu_);
  TxnRecord* rec = FindTxn(ts);
  if (rec == nullptr || rec->state == TxnState::kAborted) {
    return ReadOutcome{ReadOutcome::kAborted, ""};
  }
  auto cit = chains_.find(key);
  if (cit == chains_.end() || cit->second.versions.empty()) {
    return ReadOutcome{ReadOutcome::kNeedBase, ""};
  }
  Chain& chain = cit->second;
  // Latest version with writer <= ts.
  Version* visible = nullptr;
  for (auto& v : chain.versions) {
    if (v.writer <= ts) {
      visible = &v;
    } else {
      break;
    }
  }
  if (visible == nullptr) {
    if (chain.pruned_floor > ts) {
      // The version this reader needed has been garbage collected.
      AbortLocked(ts, AbortReason::kWriteConflict);
      return ReadOutcome{ReadOutcome::kAborted, ""};
    }
    return ReadOutcome{ReadOutcome::kNeedBase, ""};
  }
  visible->max_read = std::max(visible->max_read, ts);
  if (visible->writer != 0 && visible->writer != ts) {
    TxnRecord* writer = FindTxn(visible->writer);
    if (writer != nullptr && writer->state != TxnState::kCommitted) {
      rec->deps.insert(visible->writer);
      writer->dependents.insert(ts);
    }
  }
  return ReadOutcome{ReadOutcome::kValue, visible->value};
}

Status MvtsoEngine::Write(Timestamp ts, const Key& key, std::string value) {
  std::lock_guard<std::mutex> lk(mu_);
  TxnRecord* rec = FindTxn(ts);
  if (rec == nullptr || rec->state == TxnState::kAborted) {
    return Status::Aborted("transaction not active");
  }
  Chain& chain = chains_[key];
  if (chain.pruned_floor > ts) {
    // The predecessor version (and its read marker) was garbage collected;
    // admitting this old write would be unsound.
    AbortLocked(ts, AbortReason::kWriteConflict);
    return Status::Aborted("MVTSO write too old: predecessor pruned");
  }
  // Locate predecessor (latest version with writer <= ts).
  size_t insert_at = 0;
  Version* predecessor = nullptr;
  for (size_t i = 0; i < chain.versions.size(); ++i) {
    if (chain.versions[i].writer <= ts) {
      predecessor = &chain.versions[i];
      insert_at = i + 1;
    } else {
      break;
    }
  }
  if (predecessor != nullptr && predecessor->writer == ts) {
    // Overwriting our own earlier write.
    predecessor->value = value;
    rec->writes[key] = std::move(value);
    return Status::Ok();
  }
  if (predecessor != nullptr && predecessor->max_read > ts) {
    // A later-timestamped transaction already read the predecessor: admitting
    // this write would make that read non-serializable. Abort the writer.
    AbortLocked(ts, AbortReason::kWriteConflict);
    return Status::Aborted("MVTSO write conflict: predecessor read by later transaction");
  }
  Version v;
  v.writer = ts;
  v.value = value;
  chain.versions.insert(chain.versions.begin() + static_cast<ptrdiff_t>(insert_at),
                        std::move(v));
  rec->writes[key] = std::move(value);
  return Status::Ok();
}

void MvtsoEngine::InstallBase(const Key& key, std::string value) {
  std::lock_guard<std::mutex> lk(mu_);
  Chain& chain = chains_[key];
  if (!chain.versions.empty() && chain.versions.front().writer == 0) {
    return;  // base already installed by a concurrent fetch
  }
  Version v;
  v.writer = 0;
  v.value = std::move(value);
  chain.versions.insert(chain.versions.begin(), std::move(v));
}

bool MvtsoEngine::HasAnyVersion(const Key& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = chains_.find(key);
  return it != chains_.end() && !it->second.versions.empty();
}

void MvtsoEngine::RemoveVersionsOf(Timestamp ts, const TxnRecord& rec) {
  for (const auto& [key, value] : rec.writes) {
    auto it = chains_.find(key);
    if (it == chains_.end()) {
      continue;
    }
    auto& versions = it->second.versions;
    versions.erase(std::remove_if(versions.begin(), versions.end(),
                                  [&](const Version& v) { return v.writer == ts; }),
                   versions.end());
  }
}

void MvtsoEngine::AbortLocked(Timestamp ts, AbortReason reason) {
  TxnRecord* rec = FindTxn(ts);
  if (rec == nullptr || rec->state == TxnState::kAborted) {
    return;
  }
  assert(rec->state != TxnState::kCommitted && "cannot abort a committed transaction");
  rec->state = TxnState::kAborted;
  switch (reason) {
    case AbortReason::kWriteConflict: stats_.aborts_write_conflict++; break;
    case AbortReason::kCascade: stats_.aborts_cascade++; break;
    case AbortReason::kUnfinishedEpoch: stats_.aborts_unfinished_epoch++; break;
    case AbortReason::kBatchOverflow: stats_.aborts_batch_overflow++; break;
    case AbortReason::kExplicit: stats_.aborts_explicit++; break;
  }
  RemoveVersionsOf(ts, *rec);
  // Cascade: everyone who observed our uncommitted writes must abort too.
  std::vector<Timestamp> dependents(rec->dependents.begin(), rec->dependents.end());
  for (Timestamp d : dependents) {
    AbortLocked(d, AbortReason::kCascade);
  }
  decided_cv_.notify_all();
}

void MvtsoEngine::AbortWithReason(Timestamp ts, AbortReason reason) {
  std::lock_guard<std::mutex> lk(mu_);
  AbortLocked(ts, reason);
}

Status MvtsoEngine::Finish(Timestamp ts) {
  std::lock_guard<std::mutex> lk(mu_);
  TxnRecord* rec = FindTxn(ts);
  if (rec == nullptr || rec->state == TxnState::kAborted) {
    return Status::Aborted("transaction already aborted");
  }
  rec->state = TxnState::kFinished;
  return Status::Ok();
}

Status MvtsoEngine::TryCommitImmediate(Timestamp ts) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    TxnRecord* rec = FindTxn(ts);
    if (rec == nullptr || rec->state == TxnState::kAborted) {
      return Status::Aborted("transaction aborted");
    }
    // Dependencies have strictly smaller timestamps (reads only observe
    // versions with writer < reader), so waiting cannot deadlock.
    bool pending = false;
    bool dep_aborted = false;
    for (Timestamp d : rec->deps) {
      const TxnRecord* dep = FindTxn(d);
      if (dep == nullptr) {
        // Dependency record pruned after commit: treat as committed.
        continue;
      }
      if (dep->state == TxnState::kAborted) {
        dep_aborted = true;
        break;
      }
      if (dep->state != TxnState::kCommitted) {
        pending = true;
      }
    }
    if (dep_aborted) {
      AbortLocked(ts, AbortReason::kCascade);
      return Status::Aborted("dependency aborted");
    }
    if (!pending) {
      rec->state = TxnState::kCommitted;
      stats_.committed++;
      // Prune superseded committed versions of the written keys.
      for (const auto& [key, value] : rec->writes) {
        Chain& chain = chains_[key];
        auto& versions = chain.versions;
        versions.erase(
            std::remove_if(versions.begin(), versions.end(),
                           [&](const Version& v) {
                             if (v.writer >= ts) {
                               return false;
                             }
                             // Only drop decided-committed predecessors/base.
                             if (v.writer == 0) {
                               return true;
                             }
                             const TxnRecord* w = FindTxn(v.writer);
                             return w == nullptr || w->state == TxnState::kCommitted;
                           }),
            versions.end());
        chain.pruned_floor = std::max(chain.pruned_floor, ts);
      }
      decided_cv_.notify_all();
      return Status::Ok();
    }
    decided_cv_.wait(lk);
  }
}

EpochOutcome MvtsoEngine::EndEpoch(size_t max_write_keys) {
  WriteBatchAdmission admission;
  admission.max_write_keys = max_write_keys;
  return EndEpoch(admission);
}

EpochOutcome MvtsoEngine::EndEpoch(const WriteBatchAdmission& admission) {
  std::lock_guard<std::mutex> lk(mu_);
  const size_t max_write_keys = admission.max_write_keys;
  EpochOutcome out;
  std::unordered_set<Key> write_keys;
  std::vector<size_t> shard_counts(admission.shard_quotas.size(), 0);
  std::map<Key, std::string> final_writes;

  for (auto& [ts, rec] : txns_) {
    if (rec.state == TxnState::kCommitted || rec.state == TxnState::kAborted) {
      if (rec.state == TxnState::kAborted) {
        out.aborted.push_back(ts);
      }
      continue;
    }
    if (rec.state == TxnState::kActive) {
      // Transactions never span epochs (§6).
      AbortLocked(ts, AbortReason::kUnfinishedEpoch);
      out.aborted.push_back(ts);
      continue;
    }
    // kFinished: commit iff every dependency committed (dependencies have
    // smaller timestamps, so they were decided earlier in this loop).
    bool dep_failed = false;
    for (Timestamp d : rec.deps) {
      const TxnRecord* dep = FindTxn(d);
      if (dep == nullptr || dep->state != TxnState::kCommitted) {
        dep_failed = true;
        break;
      }
    }
    if (dep_failed) {
      AbortLocked(ts, AbortReason::kCascade);
      out.aborted.push_back(ts);
      continue;
    }
    // Enforce the fixed-size write batch: if this transaction's writes don't
    // fit — globally or on any single ORAM shard — it aborts (the paper's
    // "batch filling up" aborts). Committing a timestamp-order prefix and
    // aborting everything past the first overflow preserves epoch ordering.
    bool overflow = false;
    if (max_write_keys != 0 || !shard_counts.empty()) {
      size_t new_keys = 0;
      std::vector<size_t> new_per_shard(shard_counts.size(), 0);
      for (const auto& [key, value] : rec.writes) {
        if (write_keys.count(key) != 0) {
          continue;
        }
        ++new_keys;
        if (!shard_counts.empty() && admission.shard_of) {
          ++new_per_shard[admission.shard_of(key)];
        }
      }
      if (max_write_keys != 0 && write_keys.size() + new_keys > max_write_keys) {
        overflow = true;
      }
      for (size_t s = 0; s < new_per_shard.size() && !overflow; ++s) {
        if (shard_counts[s] + new_per_shard[s] > admission.shard_quotas[s]) {
          overflow = true;
        }
      }
      if (overflow) {
        AbortLocked(ts, AbortReason::kBatchOverflow);
        out.aborted.push_back(ts);
        continue;
      }
    }
    rec.state = TxnState::kCommitted;
    stats_.committed++;
    out.committed.push_back(ts);
    for (const auto& [key, value] : rec.writes) {
      if (write_keys.insert(key).second && !shard_counts.empty() && admission.shard_of) {
        ++shard_counts[admission.shard_of(key)];
      }
      final_writes[key] = value;  // ascending ts order => last writer wins
    }
  }

  out.final_writes.assign(final_writes.begin(), final_writes.end());
  chains_.clear();
  txns_.clear();
  if (admission.install_committed_as_base) {
    // The write batch's values are the last committed versions; seeding them
    // as bases keeps the next epoch's reads of this epoch's writes out of
    // the ORAM read batches entirely (they are served from the cache while
    // the write-back is in flight).
    for (const auto& [key, value] : out.final_writes) {
      Version v;
      v.writer = 0;
      v.value = value;
      chains_[key].versions.push_back(std::move(v));
    }
  }
  decided_cv_.notify_all();
  return out;
}

TxnState MvtsoEngine::GetState(Timestamp ts) const {
  std::lock_guard<std::mutex> lk(mu_);
  const TxnRecord* rec = FindTxn(ts);
  return rec == nullptr ? TxnState::kAborted : rec->state;
}

std::vector<std::pair<Key, std::string>> MvtsoEngine::WritesOf(Timestamp ts) const {
  std::lock_guard<std::mutex> lk(mu_);
  const TxnRecord* rec = FindTxn(ts);
  std::vector<std::pair<Key, std::string>> out;
  if (rec != nullptr) {
    out.assign(rec->writes.begin(), rec->writes.end());
  }
  return out;
}

MvtsoStats MvtsoEngine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void MvtsoEngine::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  txns_.clear();
  chains_.clear();
  decided_cv_.notify_all();
}

}  // namespace obladi
