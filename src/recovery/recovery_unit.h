// Durability and crash recovery (§8), generalized over K ORAM shards.
//
// Obladi recovers to the last committed epoch using three ingredients:
//
//  1. Read-path logging: before a read batch's physical requests are issued,
//     its plan (block id + path leaf per request, padding included) is
//     appended to the write-ahead log and synced. After a crash the recovery
//     logic *replays* these paths so the adversary always observes the
//     aborted epoch's paths repeated — re-accessing the same objects after
//     recovery therefore leaks nothing. With sharding, every shard's
//     sub-batch logs its own plan tagged with the shard index (sub-batches
//     of one global batch execute concurrently, so their log order within
//     the batch is arbitrary but per-shard order is preserved).
//
//  2. Per-epoch delta checkpoints: at each epoch commit the proxy logs, for
//     *every shard*, the position-map delta (padded to the worst-case number
//     of changed entries per shard, R*read_quota + write_quota, so its size
//     leaks nothing), the metadata of every bucket touched this epoch, and
//     the full stash (padded to its analytic maximum), plus the shared
//     access/evict counters — all in ONE log record, so a multi-shard epoch
//     is durable atomically (epoch fate sharing extends across shards).
//
//  3. Shadow paging: bucket writes create new versions keyed by the bucket's
//     write count, so recovery simply reads buckets at their checkpointed
//     versions; versions from the aborted epoch are ignored and later
//     garbage collected.
//
// Every full_checkpoint_interval epochs a full checkpoint (complete position
// maps + all bucket metadata, all shards) supersedes the accumulated deltas
// and lets the log be truncated.
#ifndef OBLADI_SRC_RECOVERY_RECOVERY_UNIT_H_
#define OBLADI_SRC_RECOVERY_RECOVERY_UNIT_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/crypto/encryptor.h"
#include "src/oram/ring_oram.h"
#include "src/oram/trace.h"
#include "src/storage/bucket_store.h"
#include "src/storage/trusted_counter.h"

namespace obladi {

struct RecoveryConfig {
  bool enabled = true;
  size_t full_checkpoint_interval = 16;  // epochs between full checkpoints
  // Worst-case changed position-map entries per shard per epoch
  // (R*read_quota + write_quota); each shard's delta is padded to this.
  size_t posmap_delta_pad_entries = 0;
};

// Timing/size breakdown of one recovery, mirroring Table 11b's columns.
struct RecoveryBreakdown {
  uint64_t total_us = 0;
  uint64_t log_fetch_us = 0;    // reading the WAL back
  uint64_t pos_us = 0;          // decrypt + rebuild position maps
  uint64_t perm_us = 0;         // decrypt + rebuild bucket metadata
  uint64_t stash_us = 0;        // decrypt + rebuild stashes
  uint64_t path_replay_us = 0;  // re-executing logged read batches (set by caller)
  size_t replayed_batches = 0;  // shard sub-batches replayed
  size_t log_records = 0;
};

class RecoveryUnit {
 public:
  RecoveryUnit(RecoveryConfig config, std::shared_ptr<LogStore> log,
               std::shared_ptr<Encryptor> encryptor);

  const RecoveryConfig& config() const { return config_; }

  // §8: called (via the batch-planned hook) before a shard sub-batch's
  // physical requests are issued. Appends the encrypted, shard-tagged plan
  // and syncs. The single-argument form is the single-ORAM convenience
  // (shard 0).
  Status LogReadBatchPlan(uint32_t shard, const BatchPlan& plan);
  Status LogReadBatchPlan(const BatchPlan& plan) { return LogReadBatchPlan(0, plan); }

  // All of one *global* batch's shard sub-plans as ONE log record (one
  // append + one sync instead of K of each — the K appends would otherwise
  // serialize on the log and put K storage round trips on every batch's
  // critical path). The proxy's plan rendezvous collects the K concurrently
  // planned sub-batches and a single leader calls this.
  Status LogReadBatchPlans(const std::vector<std::pair<uint32_t, BatchPlan>>& plans);

  // Log the epoch's delta (or periodic full) checkpoint covering every shard
  // and sync. Call after the shards' FinishEpoch. Equivalent to
  // CaptureEpochCommit + AppendCaptured.
  Status LogEpochCommit(const std::vector<RingOram*>& shards);
  Status LogEpochCommit(RingOram& oram) {
    std::vector<RingOram*> one{&oram};
    return LogEpochCommit(one);
  }

  // --- pipelined epoch retirement split ---
  // The pipelined proxy closes epoch N and immediately starts executing
  // N+1, while N's checkpoint is appended by the retirement stage once N's
  // bucket writes are durable. Two obligations fall on the recovery unit:
  //
  //   * The checkpoint *payload* must snapshot the shards' state at N's
  //     close, before N+1 mutates position maps / stashes / metadata —
  //     CaptureEpochCommit runs synchronously in the close step.
  //   * Ordering rule, depth-D form: with a pipeline of depth D (see
  //     SetPipelineWindow) up to D captured checkpoints may be pending at
  //     once, appended strictly in capture order by the retirement stage.
  //     A read-batch plan may enter the log only while fewer than D
  //     checkpoints are pending, so a crash leaves at most D epochs of
  //     plans past the last durable checkpoint (D-1 closed-but-undurable
  //     epochs plus the partial one) — recovery replays exactly that
  //     window, grouping plans by their logged epoch. While the window is
  //     full, LogReadBatchPlan blocks until the oldest checkpoint lands —
  //     or fails if a pending checkpoint was abandoned (retirement failure
  //     or simulated crash). D=1 reproduces the original single-slot gate.
  //
  // A snapshot of one epoch's checkpoint, not yet in the log.
  struct PendingCheckpoint {
    bool valid = false;  // false when recovery is disabled (append is a no-op)
    bool full = false;
    Bytes payload;
  };
  StatusOr<PendingCheckpoint> CaptureEpochCommit(const std::vector<RingOram*>& shards);
  // Append + sync a captured checkpoint and release any gated plan writers.
  // Call only after the epoch's bucket writes are durable (shadow paging:
  // the checkpoint references the new bucket versions).
  Status AppendCaptured(PendingCheckpoint checkpoint);
  // Drop ONE pending capture without logging it (the epoch failed to retire
  // or the proxy is crashing); call once per abandoned checkpoint. Gated
  // plan writers fail with `reason`; the gate stays broken until Recover()
  // resets it (AppendCaptured also refuses once broken, so a later epoch's
  // checkpoint can never land after an earlier one was dropped).
  void AbandonPendingCheckpoint(Status reason);

  // Pipeline depth D: how many captured checkpoints may be pending at once
  // (default 1). Set at proxy construction, before any capture.
  void SetPipelineWindow(size_t window);

  // Force the next LogEpochCommit to be a full checkpoint (used right after
  // Initialize so recovery always has a base image).
  Status LogFullCheckpoint(const std::vector<RingOram*>& shards);
  Status LogFullCheckpoint(RingOram& oram) {
    std::vector<RingOram*> one{&oram};
    return LogFullCheckpoint(one);
  }

  // Optional proxy metadata (e.g. the key directory) carried inside the
  // checkpoints. The delta provider should pad its output to a fixed size if
  // its natural size is workload dependent.
  void SetMetadataProviders(std::function<Bytes()> full, std::function<Bytes()> delta) {
    metadata_full_ = std::move(full);
    metadata_delta_ = std::move(delta);
  }

  // Appendix A: bind every log record to a monotonically increasing sequence
  // number (as AAD, so a MAC-mode encryptor authenticates it) and mirror the
  // sequence into a trusted counter that survives crashes. Recovery then
  // rejects a log that a malicious server rolled back or truncated.
  void SetTrustedCounter(std::shared_ptr<TrustedCounter> counter) {
    trusted_counter_ = std::move(counter);
  }

  // Recovered image of one shard's volatile ORAM metadata.
  struct ShardState {
    PositionMap position_map{0};
    std::vector<BucketMeta> metas;
    Stash stash;
    uint64_t access_count = 0;
    uint64_t evict_count = 0;
  };

  // A read sub-batch logged after the last committed epoch, to be replayed
  // on its shard.
  struct PendingPlan {
    uint32_t shard = 0;
    BatchPlan plan;
  };

  struct RecoveredState {
    bool has_state = false;
    EpochId epoch = 0;
    std::vector<ShardState> shards;
    // Plans from the aborted epoch, in log order (per-shard order preserved).
    std::vector<PendingPlan> pending_plans;
    // Proxy metadata: the last full image plus newer deltas, in order.
    Bytes metadata_full;
    std::vector<Bytes> metadata_deltas;
    RecoveryBreakdown breakdown;
  };

  // Rebuild the last committed state from the log.
  StatusOr<RecoveredState> Recover();

 private:
  enum RecordType : uint8_t {
    kReadBatchPlan = 1,
    kEpochDelta = 2,
    kFullCheckpoint = 3,
  };

  Bytes BuildDeltaPayload(const std::vector<RingOram*>& shards);
  Bytes BuildFullPayload(const std::vector<RingOram*>& shards);
  // Durable-append half: assign the next sequence number and append + sync
  // the record in ONE fused log round trip (LogStore::AppendSync /
  // kLogAppendSync). mu_ must be held — append order defines the log and
  // must match seq order.
  Status AppendRecordLocked(RecordType type, const Bytes& plaintext_payload,
                            uint64_t* seq_out);
  // Trusted-counter half, called WITHOUT mu_: the record is already durable
  // when this runs; only the rollback-detection counter remains.
  Status FinishAppendUnlocked(uint64_t seq);

  RecoveryConfig config_;
  std::shared_ptr<LogStore> log_;
  std::shared_ptr<Encryptor> encryptor_;
  std::shared_ptr<TrustedCounter> trusted_counter_;
  std::function<Bytes()> metadata_full_;
  std::function<Bytes()> metadata_delta_;
  std::mutex mu_;
  std::condition_variable gate_cv_;
  size_t checkpoints_pending_ = 0;  // captured but not yet appended
  size_t pipeline_window_ = 1;      // max pending checkpoints (depth D)
  Status gate_error_;               // sticky after an abandon; reset by Recover
  size_t epochs_since_full_ = 0;
  uint64_t last_full_lsn_ = 0;
  uint64_t record_seq_ = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_RECOVERY_RECOVERY_UNIT_H_
