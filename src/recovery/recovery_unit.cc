#include "src/recovery/recovery_unit.h"

#include "src/common/clock.h"
#include "src/common/serde.h"
#include "src/obs/trace.h"

namespace obladi {

RecoveryUnit::RecoveryUnit(RecoveryConfig config, std::shared_ptr<LogStore> log,
                           std::shared_ptr<Encryptor> encryptor)
    : config_(config), log_(std::move(log)), encryptor_(std::move(encryptor)) {}

Status RecoveryUnit::AppendRecordLocked(RecordType type, const Bytes& plaintext_payload,
                                        uint64_t* seq_out) {
  uint64_t seq = record_seq_++;
  BinaryWriter aad;
  aad.PutU64(seq);
  Bytes ciphertext = encryptor_->Encrypt(plaintext_payload, aad.bytes());
  BinaryWriter w(ciphertext.size() + 16);
  w.PutU8(type);
  w.PutU64(seq);
  w.PutBytes(ciphertext);
  // Fused durable append (kLogAppendSync over the wire): the record is
  // synced when this returns, in the same round trip that carried it. The
  // trade vs the old append-under-lock + sync-off-lock split: one round
  // trip per record instead of two, at the cost of holding mu_ across the
  // sync — concurrent appenders no longer overlap their syncs. Since the
  // plan rendezvous collapsed K per-shard plan logs into one record per
  // global batch, appenders are rarely concurrent and the round-trip cut
  // wins on the batch critical path.
  StatusOr<uint64_t> lsn(0ull);
  {
    // The fused durable append is the log's fsync-equivalent: the one WAL
    // operation worth seeing on the epoch critical path in a trace.
    OBS_SPAN_ARG("wal", "wal.append_sync", type);
    lsn = log_->AppendSync(w.Take());
  }
  if (!lsn.ok()) {
    return lsn.status();
  }
  if (type == kFullCheckpoint) {
    last_full_lsn_ = *lsn;
  }
  *seq_out = seq;
  return Status::Ok();
}

Status RecoveryUnit::FinishAppendUnlocked(uint64_t seq) {
  // The record is already durable (AppendRecordLocked fuses the sync).
  // Appendix A: the write counts as complete only once the trusted counter
  // reflects it; recovery uses the counter to detect rollback. Advance is
  // monotonic, so out-of-order finishes cannot regress it.
  if (trusted_counter_ != nullptr) {
    return trusted_counter_->Advance(seq + 1);
  }
  return Status::Ok();
}

Status RecoveryUnit::LogReadBatchPlan(uint32_t shard, const BatchPlan& plan) {
  return LogReadBatchPlans({{shard, plan}});
}

Status RecoveryUnit::LogReadBatchPlans(
    const std::vector<std::pair<uint32_t, BatchPlan>>& plans) {
  if (!config_.enabled || plans.empty()) {
    return Status::Ok();
  }
  std::unique_lock<std::mutex> lk(mu_);
  // Ordering rule (pipelined epochs, depth-D form): this plan may enter the
  // log only while fewer than pipeline_window_ checkpoints are pending, so a
  // crash leaves at most D epochs of plans past the last durable checkpoint
  // — exactly the window recovery replays. Wait for the retirement stage to
  // land (or abandon) the oldest pending checkpoint.
  gate_cv_.wait(lk, [&] {
    return checkpoints_pending_ < pipeline_window_ || !gate_error_.ok();
  });
  OBLADI_RETURN_IF_ERROR(gate_error_);
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(plans.size()));
  for (const auto& [shard, plan] : plans) {
    w.PutU32(shard);
    w.PutBytes(plan.Serialize());
  }
  uint64_t seq = 0;
  OBLADI_RETURN_IF_ERROR(AppendRecordLocked(kReadBatchPlan, w.Take(), &seq));
  lk.unlock();
  // The fused append already synced; only the trusted counter runs off-lock.
  return FinishAppendUnlocked(seq);
}

Bytes RecoveryUnit::BuildDeltaPayload(const std::vector<RingOram*>& shards) {
  BinaryWriter w;
  w.PutU64(shards[0]->epoch());
  w.PutU32(static_cast<uint32_t>(shards.size()));
  for (RingOram* oram : shards) {
    w.PutU64(oram->access_count());
    w.PutU64(oram->evict_count());

    // Position-map delta, padded to the worst case so the record size does
    // not reveal how many requests in the epoch were real (§8). The pad is
    // per shard: each shard executes at most R*read_quota + write_quota real
    // accesses per epoch.
    Bytes delta = oram->position_map().SerializeDelta();
    BinaryReader peek(delta);
    uint32_t real_entries = peek.GetU32();
    BinaryWriter padded;
    size_t total =
        config_.posmap_delta_pad_entries > real_entries && config_.posmap_delta_pad_entries != 0
            ? config_.posmap_delta_pad_entries
            : real_entries;
    padded.PutU32(static_cast<uint32_t>(total));
    padded.PutRaw(delta.data() + 4, delta.size() - 4);
    for (size_t i = real_entries; i < total; ++i) {
      padded.PutU64(kInvalidBlockId);
      padded.PutU32(kInvalidLeaf);
    }
    w.PutBytes(padded.Take());

    // Metadata (permutations, valid maps, versions) of buckets touched this
    // epoch. The set of touched buckets is public information — it is
    // exactly the adversary-visible physical access set — so its count needs
    // no pad.
    std::vector<BucketIndex> dirty = oram->TakeDirtyBuckets();
    w.PutU32(static_cast<uint32_t>(dirty.size()));
    const auto& metas = oram->bucket_metas();
    for (BucketIndex b : dirty) {
      w.PutU32(b);
      metas[b].Serialize(w);
    }

    // Full stash, padded to the analytic bound.
    w.PutBytes(oram->stash().SerializePadded(oram->config().max_stash_blocks,
                                             oram->config().block_payload_size));
  }
  w.PutBytes(metadata_delta_ ? metadata_delta_() : Bytes{});
  return w.Take();
}

Bytes RecoveryUnit::BuildFullPayload(const std::vector<RingOram*>& shards) {
  BinaryWriter w;
  w.PutU64(shards[0]->epoch());
  w.PutU32(static_cast<uint32_t>(shards.size()));
  for (RingOram* oram : shards) {
    w.PutU64(oram->access_count());
    w.PutU64(oram->evict_count());
    w.PutBytes(oram->position_map().SerializeFull());
    const auto& metas = oram->bucket_metas();
    w.PutU32(static_cast<uint32_t>(metas.size()));
    for (const auto& m : metas) {
      m.Serialize(w);
    }
    w.PutBytes(oram->stash().SerializePadded(oram->config().max_stash_blocks,
                                             oram->config().block_payload_size));
    // Full image supersedes all dirty tracking so far.
    oram->TakeDirtyBuckets();
    oram->position_map().ClearDirty();
  }
  w.PutBytes(metadata_full_ ? metadata_full_() : Bytes{});
  return w.Take();
}

Status RecoveryUnit::LogFullCheckpoint(const std::vector<RingOram*>& shards) {
  if (!config_.enabled) {
    return Status::Ok();
  }
  // Serialize the shards *before* taking mu_: payload building acquires each
  // RingOram's internal lock, and a running read batch logs its plan via
  // LogReadBatchPlan (which takes mu_) while holding that lock — holding mu_
  // across the build would invert the order.
  Bytes payload = BuildFullPayload(shards);
  std::unique_lock<std::mutex> lk(mu_);
  uint64_t seq = 0;
  OBLADI_RETURN_IF_ERROR(AppendRecordLocked(kFullCheckpoint, payload, &seq));
  epochs_since_full_ = 0;
  // Older records are superseded; reclaim the log.
  OBLADI_RETURN_IF_ERROR(log_->Truncate(last_full_lsn_));
  lk.unlock();
  return FinishAppendUnlocked(seq);
}

StatusOr<RecoveryUnit::PendingCheckpoint> RecoveryUnit::CaptureEpochCommit(
    const std::vector<RingOram*>& shards) {
  PendingCheckpoint cp;
  if (!config_.enabled) {
    return cp;  // valid=false: AppendCaptured is a no-op
  }
  // As in LogFullCheckpoint: build the payload outside mu_. Epoch closes are
  // serialized by the proxy, so reading the interval counter first and
  // updating it at append time cannot interleave with another capture.
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (checkpoints_pending_ >= pipeline_window_) {
      return Status::FailedPrecondition("checkpoint window full: oldest still pending");
    }
    OBLADI_RETURN_IF_ERROR(gate_error_);
    cp.full = epochs_since_full_ + 1 >= config_.full_checkpoint_interval;
  }
  cp.payload = cp.full ? BuildFullPayload(shards) : BuildDeltaPayload(shards);
  cp.valid = true;
  std::lock_guard<std::mutex> lk(mu_);
  ++checkpoints_pending_;  // gate plan records once the window fills
  return cp;
}

Status RecoveryUnit::AppendCaptured(PendingCheckpoint checkpoint) {
  if (!checkpoint.valid) {
    return Status::Ok();
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (!gate_error_.ok()) {
    // A pending checkpoint older than this one was abandoned: appending this
    // one would put checkpoint N+1 in the log with N missing, corrupting the
    // replay window. Count it off and refuse; only Recover() resets the gate.
    if (checkpoints_pending_ > 0) {
      --checkpoints_pending_;
    }
    gate_cv_.notify_all();
    return gate_error_;
  }
  uint64_t seq = 0;
  Status st;
  if (checkpoint.full) {
    st = AppendRecordLocked(kFullCheckpoint, checkpoint.payload, &seq);
    if (st.ok()) {
      epochs_since_full_ = 0;
      st = log_->Truncate(last_full_lsn_);
    }
  } else {
    st = AppendRecordLocked(kEpochDelta, checkpoint.payload, &seq);
    if (st.ok()) {
      ++epochs_since_full_;
    }
  }
  if (!st.ok() && gate_error_.ok()) {
    // The checkpoint never reached the log: plans appended after it would
    // break the ordering rule, so the gate stays broken until recovery.
    gate_error_ = st;
  }
  // The gate opens at *append* time: the log's order now has the checkpoint
  // before any subsequently appended plan, which is what the ordering rule
  // protects (append order survives a crash; the sync below only bounds the
  // loss window). Clients still learn nothing early — the retirement stage
  // releases commit decisions only after this returns, i.e. after the sync.
  if (checkpoints_pending_ > 0) {
    --checkpoints_pending_;
  }
  gate_cv_.notify_all();
  lk.unlock();
  OBLADI_RETURN_IF_ERROR(st);
  return FinishAppendUnlocked(seq);
}

void RecoveryUnit::AbandonPendingCheckpoint(Status reason) {
  std::lock_guard<std::mutex> lk(mu_);
  if (gate_error_.ok()) {
    gate_error_ = reason.ok() ? Status::Unavailable("epoch checkpoint abandoned") : reason;
  }
  if (checkpoints_pending_ > 0) {
    --checkpoints_pending_;
  }
  gate_cv_.notify_all();
}

void RecoveryUnit::SetPipelineWindow(size_t window) {
  std::lock_guard<std::mutex> lk(mu_);
  pipeline_window_ = window == 0 ? 1 : window;
  gate_cv_.notify_all();
}

Status RecoveryUnit::LogEpochCommit(const std::vector<RingOram*>& shards) {
  auto cp = CaptureEpochCommit(shards);
  if (!cp.ok()) {
    return cp.status();
  }
  return AppendCaptured(std::move(*cp));
}

StatusOr<RecoveryUnit::RecoveredState> RecoveryUnit::Recover() {
  std::lock_guard<std::mutex> lk(mu_);
  // A crash mid-retirement leaves captured-but-unappended checkpoints and a
  // broken gate; recovery starts the log ordering over.
  checkpoints_pending_ = 0;
  gate_error_ = Status::Ok();
  gate_cv_.notify_all();
  RecoveredState state;
  Stopwatch total;

  Stopwatch fetch;
  // With a replicated WAL, recovery must not replay a lagging replica's
  // shortened history: drive catch-up first so the read below sees every
  // acknowledged record (no-op on unreplicated logs). Failure is fine —
  // ReadAll fails over to a replica holding the full acknowledged prefix.
  (void)log_->TryHealReplicas();
  auto records = log_->ReadAll();
  if (!records.ok()) {
    return records.status();
  }
  state.breakdown.log_fetch_us = fetch.ElapsedMicros();
  state.breakdown.log_records = records->size();
  if (records->empty()) {
    return state;  // nothing durable yet: fresh start
  }

  // Decrypt and index the records; find the last full checkpoint.
  struct Parsed {
    RecordType type;
    Bytes payload;
  };
  std::vector<Parsed> parsed;
  parsed.reserve(records->size());
  ptrdiff_t last_full = -1;
  uint64_t max_seq = 0;
  bool saw_any = false;
  for (const Bytes& rec : *records) {
    BinaryReader r(rec);
    auto type = static_cast<RecordType>(r.GetU8());
    uint64_t seq = r.GetU64();
    Bytes ct = r.GetBytes();
    BinaryWriter aad;
    aad.PutU64(seq);
    // MAC-mode encryptors authenticate the sequence binding here, so a
    // malicious server cannot reorder or substitute records.
    auto pt = encryptor_->Decrypt(ct, aad.bytes());
    if (!pt.ok()) {
      return pt.status();
    }
    if (saw_any && seq <= max_seq) {
      return Status::IntegrityViolation("log records out of sequence");
    }
    max_seq = seq;
    saw_any = true;
    parsed.push_back(Parsed{type, std::move(*pt)});
    if (type == kFullCheckpoint) {
      last_full = static_cast<ptrdiff_t>(parsed.size()) - 1;
    }
  }
  // Resume the sequence after the recovered prefix so future records extend
  // it monotonically.
  record_seq_ = saw_any ? max_seq + 1 : 0;
  if (trusted_counter_ != nullptr) {
    auto expected = trusted_counter_->Read();
    if (!expected.ok()) {
      return expected.status();
    }
    if (record_seq_ < *expected) {
      return Status::IntegrityViolation("storage served a rolled-back log");
    }
  }
  if (last_full < 0) {
    return Status::DataLoss("log contains no full checkpoint");
  }

  // Rebuild from the full checkpoint.
  {
    BinaryReader r(parsed[static_cast<size_t>(last_full)].payload);
    state.epoch = r.GetU64();
    uint32_t num_shards = r.GetU32();
    state.shards.resize(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      ShardState& shard = state.shards[s];
      shard.access_count = r.GetU64();
      shard.evict_count = r.GetU64();
      Stopwatch pos;
      Bytes posmap_bytes = r.GetBytes();
      shard.position_map = PositionMap::DeserializeFull(posmap_bytes);
      state.breakdown.pos_us += pos.ElapsedMicros();
      Stopwatch perm;
      uint32_t n = r.GetU32();
      shard.metas.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        shard.metas[i] = BucketMeta::Deserialize(r);
      }
      state.breakdown.perm_us += perm.ElapsedMicros();
      Stopwatch stash_sw;
      shard.stash = Stash::Deserialize(r.GetBytes());
      state.breakdown.stash_us += stash_sw.ElapsedMicros();
    }
    state.metadata_full = r.GetBytes();
  }

  // Apply newer epoch deltas in order; collect read plans logged after the
  // last committed epoch (the crashed epoch's prefix).
  for (size_t i = static_cast<size_t>(last_full) + 1; i < parsed.size(); ++i) {
    Parsed& p = parsed[i];
    if (p.type == kReadBatchPlan) {
      // One record per global batch: count shard-tagged sub-plans.
      BinaryReader r(p.payload);
      uint32_t count = r.GetU32();
      for (uint32_t i = 0; i < count; ++i) {
        PendingPlan pending;
        pending.shard = r.GetU32();
        pending.plan = BatchPlan::Deserialize(r.GetBytes());
        if (pending.shard >= state.shards.size()) {
          return Status::IntegrityViolation("logged plan names an unknown shard");
        }
        state.pending_plans.push_back(std::move(pending));
      }
      continue;
    }
    if (p.type == kFullCheckpoint) {
      return Status::Internal("unexpected full checkpoint after the last one");
    }
    // Epoch delta: every plan logged before a committed epoch belongs to that
    // epoch — drop them, they are durable in the checkpoint.
    state.pending_plans.clear();
    BinaryReader r(p.payload);
    state.epoch = r.GetU64();
    uint32_t num_shards = r.GetU32();
    if (num_shards != state.shards.size()) {
      return Status::IntegrityViolation("epoch delta shard count mismatch");
    }
    for (uint32_t s = 0; s < num_shards; ++s) {
      ShardState& shard = state.shards[s];
      shard.access_count = r.GetU64();
      shard.evict_count = r.GetU64();
      Stopwatch pos;
      Bytes delta = r.GetBytes();
      shard.position_map.ApplyDelta(delta);
      state.breakdown.pos_us += pos.ElapsedMicros();
      Stopwatch perm;
      uint32_t dirty = r.GetU32();
      for (uint32_t d = 0; d < dirty; ++d) {
        BucketIndex b = r.GetU32();
        shard.metas[b] = BucketMeta::Deserialize(r);
      }
      state.breakdown.perm_us += perm.ElapsedMicros();
      Stopwatch stash_sw;
      shard.stash = Stash::Deserialize(r.GetBytes());
      state.breakdown.stash_us += stash_sw.ElapsedMicros();
    }
    state.metadata_deltas.push_back(r.GetBytes());
  }

  for (ShardState& shard : state.shards) {
    shard.position_map.ClearDirty();
  }
  state.has_state = true;
  state.breakdown.replayed_batches = state.pending_plans.size();
  state.breakdown.total_us = total.ElapsedMicros();
  return state;
}

}  // namespace obladi
