// SkewClock: an order- and uniqueness-preserving skew on the proxy's
// *claimed* transaction timestamps.
//
// The audit verifier checks that the proxy's claimed commit order is
// serializable AND consistent with real time, so a correct proxy may not
// hand out arbitrary timestamps — but an adversarial or misconfigured one
// might drift. This hook lets the clock-skew nemesis shift the claimed
// timeline by a (possibly changing) offset while keeping the mapping a
// strictly increasing function of the internal MVTSO counter: claimed
// timestamps stay unique and order-identical to the internal ones, so a
// skewed-but-honest proxy still passes the audit — which is exactly the
// property the scenario demonstrates. (A mapping that *reordered*
// timestamps would be caught, and tests assert that separately by feeding
// the verifier a manually mangled history.)
//
// Thread-safe; deterministic (no wall clock, no RNG).
#ifndef OBLADI_SRC_FAULT_SKEW_CLOCK_H_
#define OBLADI_SRC_FAULT_SKEW_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace obladi {

class SkewClock {
 public:
  explicit SkewClock(int64_t offset = 0) : offset_(offset) {}

  // Change the skew mid-run (the nemesis jumps it forwards and backwards).
  void SetOffset(int64_t offset) {
    std::lock_guard<std::mutex> lk(mu_);
    offset_ = offset;
  }
  void AdvanceOffset(int64_t delta) {
    std::lock_guard<std::mutex> lk(mu_);
    offset_ += delta;
  }

  // Map an internal timestamp to a claimed one. Strictly increasing across
  // calls regardless of how the offset moves: a backwards offset jump
  // flattens into +1 steps instead of reordering, preserving both
  // uniqueness and the internal order.
  uint64_t Skew(uint64_t internal) {
    std::lock_guard<std::mutex> lk(mu_);
    int64_t shifted = static_cast<int64_t>(internal) + offset_;
    uint64_t claimed = shifted < 1 ? 1 : static_cast<uint64_t>(shifted);
    if (claimed <= last_claimed_) {
      claimed = last_claimed_ + 1;
    }
    last_claimed_ = claimed;
    skews_.fetch_add(1, std::memory_order_relaxed);
    return claimed;
  }

  uint64_t skews() const { return skews_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  int64_t offset_ = 0;
  uint64_t last_claimed_ = 0;
  std::atomic<uint64_t> skews_{0};
};

}  // namespace obladi

#endif  // OBLADI_SRC_FAULT_SKEW_CLOCK_H_
