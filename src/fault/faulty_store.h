// Storage-level fault decorators: wrap any BucketStore / LogStore and
// inject transient Unavailable errors, latency spikes, and fsync stalls
// according to a deterministic, counter-driven FaultPlan.
//
// Determinism: faults fire on every Nth eligible operation (per decorator,
// counted from construction), never from a clock or an unseeded RNG — the
// same workload over the same plan replays the same fault schedule, which
// is what lets the nemesis scenarios and the conformance tests assert exact
// outcomes. Plans can be swapped at runtime (SetPlan) so a scenario can
// turn a WAL stall on mid-epoch and off again after the watchdog fires.
//
// With a default-constructed FaultPlan both decorators are transparent
// pass-throughs — the conformance suite runs against that configuration to
// prove the wrappers themselves don't corrupt semantics.
#ifndef OBLADI_SRC_FAULT_FAULTY_STORE_H_
#define OBLADI_SRC_FAULT_FAULTY_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "src/storage/bucket_store.h"

namespace obladi {

struct FaultPlan {
  // Every Nth eligible operation fails with Unavailable before reaching the
  // base store (0 = never, 1 = every operation).
  uint64_t unavailable_every_n = 0;
  // Every Nth operation sleeps latency_spike_us before proceeding (0 = off).
  uint64_t latency_spike_every_n = 0;
  uint64_t latency_spike_us = 0;
  // Durability-path stall: added to every Sync / AppendSync / bucket write.
  // Models a disk whose fsync latency collapsed (slow-disk nemesis).
  uint64_t fsync_stall_us = 0;
};

class FaultyBucketStore : public BucketStore {
 public:
  FaultyBucketStore(std::shared_ptr<BucketStore> base, FaultPlan plan = {})
      : base_(std::move(base)), plan_(plan) {}

  void SetPlan(FaultPlan plan);
  FaultPlan plan() const;
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override;
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override;
  std::vector<StatusOr<Bytes>> ReadSlotsBatch(const std::vector<SlotRef>& refs) override;
  Status WriteBucketsBatch(std::vector<BucketImage> images) override;
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override;
  Status TruncateBucketsBatch(const std::vector<TruncateRef>& refs) override;
  std::vector<StatusOr<PathXorResult>> ReadPathsXor(const std::vector<PathSlots>& paths,
                                                    uint32_t header_bytes,
                                                    uint32_t trailer_bytes) override;
  size_t num_buckets() const override { return base_->num_buckets(); }

  // Async forms forward to the base (which may complete them on a transport
  // thread); an injected fault completes `done` inline without submitting.
  bool SupportsAsyncBatches() const override { return base_->SupportsAsyncBatches(); }
  void ReadSlotsBatchAsync(std::vector<SlotRef> refs, ReadSlotsDone done) override;
  void WriteBucketsBatchAsync(std::vector<BucketImage> images, WriteBucketsDone done) override;
  void ReadPathsXorAsync(std::vector<PathSlots> paths, uint32_t header_bytes,
                         uint32_t trailer_bytes, ReadPathsXorDone done) override;

  NetworkStats* network_stats() override { return base_->network_stats(); }

 private:
  // Counts the operation, applies spike/stall sleeps, and returns the
  // injected error if this operation is scheduled to fail.
  Status Inject(bool durability_path);

  std::shared_ptr<BucketStore> base_;
  mutable std::mutex plan_mu_;
  FaultPlan plan_;
  std::atomic<uint64_t> op_counter_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

class FaultyLogStore : public LogStore {
 public:
  FaultyLogStore(std::shared_ptr<LogStore> base, FaultPlan plan = {})
      : base_(std::move(base)), plan_(plan) {}

  void SetPlan(FaultPlan plan);
  FaultPlan plan() const;
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

  StatusOr<uint64_t> Append(Bytes record) override;
  Status Sync() override;
  StatusOr<uint64_t> AppendSync(Bytes record) override;
  StatusOr<std::vector<Bytes>> ReadAll() override;
  Status Truncate(uint64_t upto_lsn) override;
  uint64_t NextLsn() const override { return base_->NextLsn(); }

  NetworkStats* network_stats() override { return base_->network_stats(); }

 private:
  Status Inject(bool durability_path);

  std::shared_ptr<LogStore> base_;
  mutable std::mutex plan_mu_;
  FaultPlan plan_;
  std::atomic<uint64_t> op_counter_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace obladi

#endif  // OBLADI_SRC_FAULT_FAULTY_STORE_H_
