#include "src/fault/faulty_store.h"

#include <chrono>
#include <thread>

namespace obladi {

namespace {

// Shared counter-driven injection step for both decorators.
Status InjectWith(const FaultPlan& plan, uint64_t op, bool durability_path,
                  std::atomic<uint64_t>& faults_injected) {
  if (plan.latency_spike_every_n != 0 && plan.latency_spike_us != 0 &&
      op % plan.latency_spike_every_n == 0) {
    faults_injected.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(plan.latency_spike_us));
  }
  if (durability_path && plan.fsync_stall_us != 0) {
    faults_injected.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(plan.fsync_stall_us));
  }
  if (plan.unavailable_every_n != 0 && op % plan.unavailable_every_n == 0) {
    faults_injected.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected transient fault");
  }
  return Status::Ok();
}

}  // namespace

// --- FaultyBucketStore ------------------------------------------------------

void FaultyBucketStore::SetPlan(FaultPlan plan) {
  std::lock_guard<std::mutex> lk(plan_mu_);
  plan_ = plan;
}

FaultPlan FaultyBucketStore::plan() const {
  std::lock_guard<std::mutex> lk(plan_mu_);
  return plan_;
}

Status FaultyBucketStore::Inject(bool durability_path) {
  uint64_t op = op_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  FaultPlan plan;
  {
    std::lock_guard<std::mutex> lk(plan_mu_);
    plan = plan_;
  }
  return InjectWith(plan, op, durability_path, faults_injected_);
}

StatusOr<Bytes> FaultyBucketStore::ReadSlot(BucketIndex bucket, uint32_t version,
                                            SlotIndex slot) {
  OBLADI_RETURN_IF_ERROR(Inject(false));
  return base_->ReadSlot(bucket, version, slot);
}

Status FaultyBucketStore::WriteBucket(BucketIndex bucket, uint32_t version,
                                      std::vector<Bytes> slots) {
  OBLADI_RETURN_IF_ERROR(Inject(true));
  return base_->WriteBucket(bucket, version, std::move(slots));
}

std::vector<StatusOr<Bytes>> FaultyBucketStore::ReadSlotsBatch(
    const std::vector<SlotRef>& refs) {
  Status st = Inject(false);
  if (!st.ok()) {
    return std::vector<StatusOr<Bytes>>(refs.size(), StatusOr<Bytes>(st));
  }
  return base_->ReadSlotsBatch(refs);
}

Status FaultyBucketStore::WriteBucketsBatch(std::vector<BucketImage> images) {
  OBLADI_RETURN_IF_ERROR(Inject(true));
  return base_->WriteBucketsBatch(std::move(images));
}

Status FaultyBucketStore::TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) {
  OBLADI_RETURN_IF_ERROR(Inject(false));
  return base_->TruncateBucket(bucket, keep_from_version);
}

Status FaultyBucketStore::TruncateBucketsBatch(const std::vector<TruncateRef>& refs) {
  OBLADI_RETURN_IF_ERROR(Inject(false));
  return base_->TruncateBucketsBatch(refs);
}

std::vector<StatusOr<PathXorResult>> FaultyBucketStore::ReadPathsXor(
    const std::vector<PathSlots>& paths, uint32_t header_bytes, uint32_t trailer_bytes) {
  Status st = Inject(false);
  if (!st.ok()) {
    return std::vector<StatusOr<PathXorResult>>(paths.size(),
                                                StatusOr<PathXorResult>(st));
  }
  return base_->ReadPathsXor(paths, header_bytes, trailer_bytes);
}

void FaultyBucketStore::ReadSlotsBatchAsync(std::vector<SlotRef> refs, ReadSlotsDone done) {
  Status st = Inject(false);
  if (!st.ok()) {
    done(std::vector<StatusOr<Bytes>>(refs.size(), StatusOr<Bytes>(st)));
    return;
  }
  base_->ReadSlotsBatchAsync(std::move(refs), std::move(done));
}

void FaultyBucketStore::WriteBucketsBatchAsync(std::vector<BucketImage> images,
                                               WriteBucketsDone done) {
  Status st = Inject(true);
  if (!st.ok()) {
    done(st);
    return;
  }
  base_->WriteBucketsBatchAsync(std::move(images), std::move(done));
}

void FaultyBucketStore::ReadPathsXorAsync(std::vector<PathSlots> paths, uint32_t header_bytes,
                                          uint32_t trailer_bytes, ReadPathsXorDone done) {
  Status st = Inject(false);
  if (!st.ok()) {
    done(std::vector<StatusOr<PathXorResult>>(paths.size(),
                                              StatusOr<PathXorResult>(st)));
    return;
  }
  base_->ReadPathsXorAsync(std::move(paths), header_bytes, trailer_bytes, std::move(done));
}

// --- FaultyLogStore ---------------------------------------------------------

void FaultyLogStore::SetPlan(FaultPlan plan) {
  std::lock_guard<std::mutex> lk(plan_mu_);
  plan_ = plan;
}

FaultPlan FaultyLogStore::plan() const {
  std::lock_guard<std::mutex> lk(plan_mu_);
  return plan_;
}

Status FaultyLogStore::Inject(bool durability_path) {
  uint64_t op = op_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  FaultPlan plan;
  {
    std::lock_guard<std::mutex> lk(plan_mu_);
    plan = plan_;
  }
  return InjectWith(plan, op, durability_path, faults_injected_);
}

StatusOr<uint64_t> FaultyLogStore::Append(Bytes record) {
  OBLADI_RETURN_IF_ERROR(Inject(false));
  return base_->Append(std::move(record));
}

Status FaultyLogStore::Sync() {
  OBLADI_RETURN_IF_ERROR(Inject(true));
  return base_->Sync();
}

StatusOr<uint64_t> FaultyLogStore::AppendSync(Bytes record) {
  OBLADI_RETURN_IF_ERROR(Inject(true));
  return base_->AppendSync(std::move(record));
}

StatusOr<std::vector<Bytes>> FaultyLogStore::ReadAll() {
  OBLADI_RETURN_IF_ERROR(Inject(false));
  return base_->ReadAll();
}

Status FaultyLogStore::Truncate(uint64_t upto_lsn) {
  OBLADI_RETURN_IF_ERROR(Inject(false));
  return base_->Truncate(upto_lsn);
}

}  // namespace obladi
