#include "src/fault/fault_relay.h"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

namespace obladi {

StatusOr<std::unique_ptr<FaultRelay>> FaultRelay::Start(std::string upstream_host,
                                                        uint16_t upstream_port,
                                                        uint16_t listen_port) {
  auto listener = TcpListener::Listen("127.0.0.1", listen_port);
  if (!listener.ok()) {
    return listener.status();
  }
  std::unique_ptr<FaultRelay> relay(new FaultRelay());
  relay->upstream_host_ = std::move(upstream_host);
  relay->upstream_port_ = upstream_port;
  relay->listener_ = std::move(*listener);
  relay->accept_thread_ = std::thread([r = relay.get()] { r->AcceptLoop(); });
  return relay;
}

FaultRelay::~FaultRelay() { Stop(); }

void FaultRelay::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto client = listener_.Accept();
    if (!client.ok()) {
      return;  // listener shut down
    }
    auto upstream = TcpSocket::Connect(upstream_host_, upstream_port_);
    if (!upstream.ok()) {
      continue;  // upstream refused; drop the client, keep accepting
    }
    auto conn = std::make_shared<Conn>();
    conn->client = std::move(*client);
    conn->upstream = std::move(*upstream);
    connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        return;
      }
      conns_.push_back(conn);
    }
    conn->to_upstream = std::thread([this, conn] { Pump(conn, 0); });
    conn->to_client = std::thread([this, conn] { Pump(conn, 1); });
  }
}

DirectionFault FaultRelay::SnapshotFault(int dir) {
  std::lock_guard<std::mutex> lk(mu_);
  return faults_[dir];
}

void FaultRelay::Pump(std::shared_ptr<Conn> conn, int dir) {
  TcpSocket& src = dir == 0 ? conn->client : conn->upstream;
  TcpSocket& dst = dir == 0 ? conn->upstream : conn->client;
  uint8_t buf[4096];
  while (true) {
    ssize_t n = ::recv(src.fd(), buf, sizeof(buf), 0);
    if (n == 0 || (n < 0 && errno != EINTR)) {
      break;
    }
    if (n < 0) {
      continue;  // EINTR
    }
    DirectionFault f = SnapshotFault(dir);
    size_t forward = static_cast<size_t>(n);
    switch (f.mode) {
      case RelayFaultMode::kPass:
        break;
      case RelayFaultMode::kBlackhole:
        bytes_dropped_.fetch_add(forward, std::memory_order_relaxed);
        continue;  // swallow; the connection stays up
      case RelayFaultMode::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(f.delay_ms));
        break;
      case RelayFaultMode::kThrottle:
        if (f.bytes_per_sec > 0) {
          uint64_t us = forward * 1000000ull / f.bytes_per_sec;
          std::this_thread::sleep_for(std::chrono::microseconds(us));
        }
        break;
      case RelayFaultMode::kDrip: {
        std::lock_guard<std::mutex> lk(mu_);
        if (drip_left_[dir] == 0) {
          bytes_dropped_.fetch_add(forward, std::memory_order_relaxed);
          forward = 0;
        } else if (forward > drip_left_[dir]) {
          bytes_dropped_.fetch_add(forward - drip_left_[dir], std::memory_order_relaxed);
          forward = drip_left_[dir];
          drip_left_[dir] = 0;
        } else {
          drip_left_[dir] -= forward;
        }
        break;
      }
    }
    if (forward == 0) {
      continue;
    }
    // Re-check after any sleep so Heal()/Partition() flips apply to a chunk
    // that was parked in a delay.
    if (SnapshotFault(dir).mode == RelayFaultMode::kBlackhole) {
      bytes_dropped_.fetch_add(forward, std::memory_order_relaxed);
      continue;
    }
    if (!dst.SendAll(buf, forward).ok()) {
      break;
    }
    bytes_relayed_.fetch_add(forward, std::memory_order_relaxed);
  }
  CloseConn(*conn);
}

void FaultRelay::CloseConn(Conn& conn) {
  // First pump to exit shuts both sockets so its sibling unblocks too.
  if (!conn.closed.exchange(true)) {
    conn.client.Shutdown();
    conn.upstream.Shutdown();
  }
}

void FaultRelay::SetClientToUpstream(DirectionFault f) {
  std::lock_guard<std::mutex> lk(mu_);
  if (f.mode != RelayFaultMode::kPass) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (f.mode == RelayFaultMode::kDrip) {
    drip_left_[0] = f.drip_bytes;
  }
  faults_[0] = f;
}

void FaultRelay::SetUpstreamToClient(DirectionFault f) {
  std::lock_guard<std::mutex> lk(mu_);
  if (f.mode != RelayFaultMode::kPass) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (f.mode == RelayFaultMode::kDrip) {
    drip_left_[1] = f.drip_bytes;
  }
  faults_[1] = f;
}

void FaultRelay::Partition() {
  std::lock_guard<std::mutex> lk(mu_);
  faults_[0].mode = RelayFaultMode::kBlackhole;
  faults_[1].mode = RelayFaultMode::kBlackhole;
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
}

void FaultRelay::Heal() {
  std::lock_guard<std::mutex> lk(mu_);
  faults_[0] = DirectionFault{};
  faults_[1] = DirectionFault{};
  drip_left_[0] = drip_left_[1] = 0;
}

void FaultRelay::DropConnections() {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns = conns_;
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  for (auto& conn : conns) {
    CloseConn(*conn);
  }
}

FaultRelay::RelayStats FaultRelay::stats() const {
  RelayStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.bytes_relayed = bytes_relayed_.load(std::memory_order_relaxed);
  s.bytes_dropped = bytes_dropped_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  return s;
}

void FaultRelay::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  listener_.Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    CloseConn(*conn);
    if (conn->to_upstream.joinable()) {
      conn->to_upstream.join();
    }
    if (conn->to_client.joinable()) {
      conn->to_client.join();
    }
  }
  listener_.Close();
}

}  // namespace obladi
