// Toxiproxy-style TCP fault relay: a byte-level forwarder that sits between
// the proxy and a StorageServer and injects network faults on command.
//
// The relay listens on its own port; each accepted connection is paired with
// a fresh upstream connection and two pump threads (one per direction). Each
// direction independently consults its DirectionFault before forwarding a
// chunk, so tests and the nemesis can blackhole, delay, throttle, or
// drip-feed either half of the conversation mid-flight — the connection
// stays established from both endpoints' point of view, which is exactly
// the half-open/partition shape TCP gives you in production and the one a
// plain socket close cannot reproduce.
//
// All controls are programmatic and take effect on the next chunk; there is
// no background randomness, so a scenario seeded the same way replays the
// same fault schedule.
#ifndef OBLADI_SRC_FAULT_FAULT_RELAY_H_
#define OBLADI_SRC_FAULT_FAULT_RELAY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/net/socket.h"

namespace obladi {

enum class RelayFaultMode {
  kPass,       // forward chunks unmodified
  kBlackhole,  // swallow chunks silently; the connection stays "up"
  kDelay,      // forward each chunk after delay_ms
  kThrottle,   // forward at most bytes_per_sec
  kDrip,       // forward the first drip_bytes, then blackhole
};

struct DirectionFault {
  RelayFaultMode mode = RelayFaultMode::kPass;
  uint64_t delay_ms = 0;        // kDelay
  uint64_t bytes_per_sec = 0;   // kThrottle (0 = no throttle)
  uint64_t drip_bytes = 0;      // kDrip budget, consumed across chunks
};

class FaultRelay {
 public:
  struct RelayStats {
    uint64_t connections = 0;     // accepted client connections
    uint64_t bytes_relayed = 0;   // bytes actually forwarded (both dirs)
    uint64_t bytes_dropped = 0;   // bytes swallowed by blackhole/drip
    uint64_t faults_injected = 0; // fault-mode activations (Set*/Partition)
  };

  // Listens on 127.0.0.1:listen_port (0 = ephemeral; read back via port())
  // and forwards every accepted connection to upstream_host:upstream_port.
  static StatusOr<std::unique_ptr<FaultRelay>> Start(std::string upstream_host,
                                                     uint16_t upstream_port,
                                                     uint16_t listen_port = 0);

  ~FaultRelay();
  FaultRelay(const FaultRelay&) = delete;
  FaultRelay& operator=(const FaultRelay&) = delete;

  uint16_t port() const { return listener_.port(); }

  // Per-direction fault controls; effective from the next relayed chunk.
  void SetClientToUpstream(DirectionFault f);
  void SetUpstreamToClient(DirectionFault f);

  // Blackhole both directions / restore pass-through. A partitioned link
  // looks alive to both endpoints — requests hang until their deadline,
  // which is the failure shape the transport hardening exists for.
  void Partition();
  void Heal();

  // Hard-close every live relayed connection (both halves). Unlike
  // Partition this is visible immediately: pendings fail fast via OnClose.
  void DropConnections();

  RelayStats stats() const;

  // Stops accepting, closes all connections, joins every thread. Idempotent.
  void Stop();

 private:
  FaultRelay() = default;

  struct Conn {
    TcpSocket client;
    TcpSocket upstream;
    std::thread to_upstream;
    std::thread to_client;
    std::atomic<bool> closed{false};
  };

  void AcceptLoop();
  // Pump src -> dst until either side dies, applying `dir`'s fault (0 =
  // client->upstream, 1 = upstream->client) to each chunk.
  void Pump(std::shared_ptr<Conn> conn, int dir);
  DirectionFault SnapshotFault(int dir);
  void CloseConn(Conn& conn);

  std::string upstream_host_;
  uint16_t upstream_port_ = 0;
  TcpListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;
  DirectionFault faults_[2];
  // Remaining drip budget per direction (reset whenever kDrip is armed).
  uint64_t drip_left_[2] = {0, 0};
  std::vector<std::shared_ptr<Conn>> conns_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> bytes_relayed_{0};
  std::atomic<uint64_t> bytes_dropped_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace obladi

#endif  // OBLADI_SRC_FAULT_FAULT_RELAY_H_
