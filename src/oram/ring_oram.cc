#include "src/oram/ring_oram.h"

#include <algorithm>
#include <cassert>

#include "src/common/clock.h"

#include "src/obs/trace.h"
#include "src/oram/path.h"

namespace obladi {

RingOram::RingOram(RingOramConfig config, RingOramOptions options,
                   std::shared_ptr<BucketStore> store, std::shared_ptr<Encryptor> encryptor,
                   uint64_t seed)
    : config_(config),
      options_(options),
      store_(std::move(store)),
      encryptor_(std::move(encryptor)),
      codec_(config, Bytes{'d', 'u', 'm', 'm', 'y'}),
      rng_(seed),
      position_map_(config.capacity),
      loc_(config.capacity) {
  assert(config_.Validate().ok());
  if (!options_.parallel) {
    options_.defer_writes = false;
  }
  meta_.resize(config_.num_buckets());
  for (auto& m : meta_) {
    m.Init(config_.z, config_.s);
  }
  if (options_.enable_trace) {
    trace_.Enable();
  }
  pool_ = std::make_unique<ThreadPool>(options_.parallel ? options_.io_threads : 1);
  size_t cores = std::thread::hardware_concurrency();
  if (cores == 0) {
    cores = 8;
  }
  size_t crypto_threads = options_.parallel ? std::min(options_.io_threads, cores) : 1;
  crypto_pool_ = std::make_unique<ThreadPool>(crypto_threads);
}

RingOram::~RingOram() {
  // Ensure no worker task or retirement completion outlives the object.
  WaitOutstandingReads();
  std::unique_lock<std::mutex> rlk(retire_mu_);
  retire_cv_.wait(rlk, [&] { return retire_outstanding_ == 0; });
}

void RingOram::SetBatchPlannedHook(std::function<Status(const BatchPlan&)> hook) {
  std::lock_guard<std::mutex> lk(mu_);
  planned_hook_ = std::move(hook);
}

RingOramStats RingOram::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  RingOramStats out = stats_;
  // Encryption moved to the retirement stage still counts as materialization.
  out.materialize_us += bg_materialize_us_.load(std::memory_order_relaxed);
  out.early_results += early_results_.load(std::memory_order_relaxed);
  return out;
}

uint64_t RingOram::access_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return access_count_;
}

uint64_t RingOram::evict_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evict_count_;
}

EpochId RingOram::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

void RingOram::SetEpoch(EpochId e) {
  std::lock_guard<std::mutex> lk(mu_);
  epoch_ = e;
}

void RingOram::ResetStats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_ = RingOramStats{};
  bg_materialize_us_.store(0, std::memory_order_relaxed);
  early_results_.store(0, std::memory_order_relaxed);
}

std::vector<BucketIndex> RingOram::TakeDirtyBuckets() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<BucketIndex> out(dirty_buckets_.begin(), dirty_buckets_.end());
  dirty_buckets_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// Initialization
// ---------------------------------------------------------------------------

Status RingOram::Initialize(const std::vector<Bytes>& values) {
  std::lock_guard<std::mutex> lk(mu_);
  if (values.size() > config_.capacity) {
    return Status::InvalidArgument("more initial values than ORAM capacity");
  }

  // Assign uniform leaves, then pack bottom-up: each bucket takes up to Z of
  // the blocks whose paths pass through it, deepest placement first. This is
  // the densest valid packing; any residue at the root goes to the stash.
  uint32_t leaves = config_.num_leaves();
  std::vector<std::vector<PlannedBlock>> carry(leaves);
  for (BlockId id = 0; id < values.size(); ++id) {
    Leaf leaf = RandomLeaf();
    position_map_.Set(id, leaf);
    carry[leaf].push_back(PlannedBlock{id, leaf, values[id]});
  }

  for (uint32_t level = config_.num_levels; level-- > 0;) {
    uint32_t nodes = 1u << level;
    std::vector<std::vector<PlannedBlock>> next(level == 0 ? 1 : nodes / 2);
    for (uint32_t j = 0; j < nodes; ++j) {
      BucketIndex bucket = (nodes - 1) + j;
      auto& blocks = carry[j];
      std::vector<PlannedBlock> placed;
      while (!blocks.empty() && placed.size() < config_.z) {
        placed.push_back(std::move(blocks.back()));
        blocks.pop_back();
      }
      BucketMeta& mb = meta_[bucket];
      for (size_t i = 0; i < placed.size(); ++i) {
        mb.real_ids[i] = placed[i].id;
        mb.real_leaves[i] = placed[i].leaf;
        loc_[placed[i].id] = BlockLoc{bucket, static_cast<uint32_t>(i)};
      }
      mb.perm = rng_.RandomPermutation(config_.slots_per_bucket());
      buffered_[bucket].rewrite_planned = true;
      buffered_[bucket].blocks = std::move(placed);
      if (level > 0) {
        auto& up = next[j / 2];
        for (auto& b : blocks) {
          up.push_back(std::move(b));
        }
      } else {
        for (auto& b : blocks) {
          StashEntry e;
          e.leaf = b.leaf;
          e.value = std::move(b.value);
          e.value_ready = true;
          stash_.Put(b.id, std::move(e));
          loc_[b.id] = BlockLoc{kLocStash, 0};
        }
      }
      blocks.clear();
    }
    carry = std::move(next);
  }

  // Materialize every bucket at version 0, in parallel.
  std::vector<std::pair<BucketIndex, const std::vector<PlannedBlock>*>> all;
  all.reserve(buffered_.size());
  for (auto& [bucket, bb] : buffered_) {
    all.emplace_back(bucket, &bb.blocks);
  }
  crypto_pool_->ParallelFor(all.size(), [&](size_t i) {
    MaterializeBucket(all[i].first, *all[i].second, /*via_pool=*/true);
  });
  FlushPendingImages();
  buffered_.clear();
  position_map_.ClearDirty();
  dirty_buckets_.clear();
  {
    std::lock_guard<std::mutex> elk(err_mu_);
    OBLADI_RETURN_IF_ERROR(first_error_);
  }
  return Status::Ok();
}

Status RingOram::RestoreState(PositionMap position_map, std::vector<BucketMeta> metas,
                              Stash stash, uint64_t access_count, uint64_t evict_count,
                              EpochId epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  if (metas.size() != meta_.size() || position_map.capacity() != config_.capacity) {
    return Status::InvalidArgument("restored state shape mismatch");
  }
  position_map_ = std::move(position_map);
  meta_ = std::move(metas);
  stash_ = std::move(stash);
  access_count_ = access_count;
  evict_count_ = evict_count;
  epoch_ = epoch;
  batch_in_epoch_ = 0;
  buffered_.clear();
  retiring_.clear();
  retiring_gens_.clear();
  collected_floors_.reset();
  deferred_ops_.clear();
  pending_reads_.clear();
  dirty_buckets_.clear();
  position_map_.ClearDirty();

  // Rebuild the block location index from the recovered components.
  loc_.assign(config_.capacity, BlockLoc{});
  for (BucketIndex b = 0; b < meta_.size(); ++b) {
    const BucketMeta& mb = meta_[b];
    for (uint32_t i = 0; i < mb.z(); ++i) {
      if (mb.real_ids[i] != kInvalidBlockId) {
        loc_[mb.real_ids[i]] = BlockLoc{b, i};
      }
    }
  }
  for (const auto& [id, entry] : stash_.entries()) {
    loc_[id] = BlockLoc{kLocStash, 0};
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Physical IO
// ---------------------------------------------------------------------------

void RingOram::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lk(err_mu_);
  if (first_error_.ok()) {
    first_error_ = status;
  }
}

void RingOram::ExecuteReadNow(const PendingRead& read) {
  ProcessCiphertext(read, store_->ReadSlot(read.bucket, read.version, read.slot));
}

void RingOram::ProcessCiphertext(const PendingRead& read, StatusOr<Bytes> ciphertext) {
  if (!ciphertext.ok()) {
    RecordError(ciphertext.status());
    return;
  }
  StatusOr<Bytes> pt = Status::Internal("uninitialized");
  Bytes aad = config_.authenticated
                  ? BlockCodec::MakeAad(config_.aad_bucket_offset + read.bucket,
                                        read.version, read.slot)
                  : Bytes{};
  if (options_.parallel && !options_.parallel_crypto) {
    std::lock_guard<std::mutex> lk(crypto_mu_);
    pt = encryptor_->Decrypt(*ciphertext, aad);
  } else {
    pt = encryptor_->Decrypt(*ciphertext, aad);
  }
  if (!pt.ok()) {
    RecordError(pt.status());
    return;
  }
  if (read.deposit_id == kInvalidBlockId) {
    return;  // dummy slot: content discarded
  }
  DepositPlaintext(read, *pt);
}

void RingOram::DepositPlaintext(const PendingRead& read, const Bytes& plaintext) {
  DecodedBlock decoded = codec_.DecodeBlock(plaintext);
  if (options_.verify_decoded_ids && decoded.id != read.deposit_id) {
    RecordError(Status::IntegrityViolation("decoded block id mismatch"));
    return;
  }
  bool deliver_early = false;
  {
    std::lock_guard<std::mutex> lk(deposit_mu_);
    if (read.entry != nullptr && read.entry->gen == read.entry_gen &&
        !read.entry->value_ready) {
      read.entry->value = decoded.payload;
      read.entry->value_ready = true;
    }
    if (read.results != nullptr) {
      (*read.results)[read.result_slot] = decoded.payload;
      deliver_early = read.early != nullptr;
    }
  }
  if (deliver_early) {
    // access_r early answer: the client's value is known as soon as its path
    // group decrypts — hand it out before the rest of the batch lands. Fired
    // outside deposit_mu_ so a slow callback cannot stall other deposits.
    (*read.early)(read.result_slot, decoded.payload);
    early_results_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RingOram::EmitRead(BucketIndex bucket, SlotIndex phys_slot, BlockId deposit_id,
                        StashEntry* entry, std::vector<Bytes>* results, size_t result_slot,
                        uint32_t entry_gen, uint32_t path_group) {
  PendingRead read;
  read.bucket = bucket;
  read.version = meta_[bucket].write_count;
  read.slot = phys_slot;
  read.deposit_id = deposit_id;
  read.entry = entry;
  read.results = results;
  read.result_slot = result_slot;
  read.entry_gen = entry_gen;
  read.path_group = path_group;
  read.early = results != nullptr ? current_early_ : nullptr;
  trace_.Record(PhysicalOpType::kReadSlot, read.bucket, read.version, read.slot);
  stats_.physical_slot_reads++;

  if (!options_.parallel) {
    ExecuteReadNow(read);
    return;
  }
  if (options_.defer_writes) {
    pending_reads_.push_back(read);
    return;
  }
  // Eager mode (immediate write phases): dispatch each read as it is planned
  // so eviction barriers have something to wait on.
  {
    std::lock_guard<std::mutex> lk(io_mu_);
    ++outstanding_reads_;
  }
  pool_->Enqueue([this, read] {
    ExecuteReadNow(read);
    {
      // Notify while holding the lock: once the count hits zero the waiter
      // may destroy this object, so the broadcast must not touch io_cv_
      // after the waiter can wake.
      std::lock_guard<std::mutex> lk(io_mu_);
      --outstanding_reads_;
      io_cv_.notify_all();
    }
  });
}

void RingOram::ProcessReadGroup(const std::vector<PendingRead>& group,
                                std::vector<StatusOr<Bytes>> ciphertexts) {
  {
    OBS_SPAN_ARG("oram", "oram.decrypt", group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      ProcessCiphertext(group[i], std::move(ciphertexts[i]));
    }
  }
  {
    // Notify under the lock: the waiter may destroy this object as soon as
    // the count hits zero.
    std::lock_guard<std::mutex> lk(io_mu_);
    --outstanding_reads_;
    io_cv_.notify_all();
  }
}

void RingOram::DispatchPendingReads() {
  if (pending_reads_.empty()) {
    return;
  }
  OBS_SPAN_ARG("oram", "oram.dispatch", pending_reads_.size());
  if (!UseXorPathReads()) {
    DispatchPlainReads(std::move(pending_reads_));
    pending_reads_.clear();
    next_path_group_ = 0;
    return;
  }
  // Partition into per-access path groups (fetched via XOR path reads) and
  // plain slot reads (eviction/reshuffle bucket pulls — several real blocks
  // per bucket, nothing to XOR out).
  std::vector<PendingRead> plain;
  std::vector<std::vector<PendingRead>> groups;
  std::unordered_map<uint32_t, size_t> group_index;
  for (PendingRead& read : pending_reads_) {
    if (read.path_group == kNoPathGroup) {
      plain.push_back(read);
      continue;
    }
    auto [it, inserted] = group_index.emplace(read.path_group, groups.size());
    if (inserted) {
      groups.emplace_back();
    }
    groups[it->second].push_back(read);
  }
  pending_reads_.clear();
  next_path_group_ = 0;  // groups never span a dispatch
  if (!plain.empty()) {
    DispatchPlainReads(std::move(plain));
  }
  if (!groups.empty()) {
    DispatchXorReads(std::move(groups));
  }
}

void RingOram::DispatchPlainReads(std::vector<PendingRead> reads) {
  if (reads.empty()) {
    return;
  }
  // Split the batch's reads into chunks, each issued as one batched storage
  // request: inter- and intra-request parallelism. Against a blocking store
  // each in-flight chunk occupies a pool thread for its whole round trip,
  // so chunks are bounded by ~2x the crypto threads; an async store only
  // needs a thread at *completion* (to decrypt), so chunks scale with the
  // I/O width instead — one event loop keeps them all in flight at once.
  const bool async = options_.parallel && store_->SupportsAsyncBatches();
  size_t max_chunks = 2 * (async ? pool_->num_threads() : crypto_pool_->num_threads());
  size_t chunk = (reads.size() + max_chunks - 1) / max_chunks;
  size_t num_chunks = (reads.size() + chunk - 1) / chunk;
  {
    std::lock_guard<std::mutex> lk(io_mu_);
    outstanding_reads_ += num_chunks;
  }
  for (size_t start = 0; start < reads.size(); start += chunk) {
    size_t end = std::min(start + chunk, reads.size());
    std::vector<PendingRead> group(reads.begin() + static_cast<ptrdiff_t>(start),
                                   reads.begin() + static_cast<ptrdiff_t>(end));
    if (async) {
      // Submit now (non-blocking); the completion fires on the transport's
      // event-loop thread and hands the ciphertexts to the I/O pool for
      // decryption — the loop thread never does crypto.
      std::vector<SlotRef> refs;
      refs.reserve(group.size());
      for (const PendingRead& read : group) {
        refs.push_back(SlotRef{read.bucket, read.version, read.slot});
      }
      auto shared_group = std::make_shared<std::vector<PendingRead>>(std::move(group));
      store_->ReadSlotsBatchAsync(
          std::move(refs), [this, shared_group](std::vector<StatusOr<Bytes>> ciphertexts) {
            pool_->Enqueue([this, shared_group, cts = std::move(ciphertexts)]() mutable {
              ProcessReadGroup(*shared_group, std::move(cts));
            });
          });
    } else {
      pool_->Enqueue([this, group = std::move(group)] {
        std::vector<SlotRef> refs;
        refs.reserve(group.size());
        for (const PendingRead& read : group) {
          refs.push_back(SlotRef{read.bucket, read.version, read.slot});
        }
        ProcessReadGroup(group, store_->ReadSlotsBatch(refs));
      });
    }
  }
}

void RingOram::DispatchXorReads(std::vector<std::vector<PendingRead>> groups) {
  // Same chunking rationale as DispatchPlainReads, over paths instead of
  // slots: each chunk is one kReadPathsXor request carrying many paths.
  const bool async = options_.parallel && store_->SupportsAsyncBatches();
  const uint32_t header_bytes = Encryptor::kNonceSize;
  const uint32_t trailer_bytes = encryptor_->authenticated() ? Encryptor::kTagSize : 0;
  size_t max_chunks = 2 * (async ? pool_->num_threads() : crypto_pool_->num_threads());
  size_t chunk = (groups.size() + max_chunks - 1) / max_chunks;
  size_t num_chunks = (groups.size() + chunk - 1) / chunk;
  stats_.xor_path_reads += groups.size();
  {
    std::lock_guard<std::mutex> lk(io_mu_);
    outstanding_reads_ += num_chunks;
  }
  for (size_t start = 0; start < groups.size(); start += chunk) {
    size_t end = std::min(start + chunk, groups.size());
    auto sub = std::make_shared<std::vector<std::vector<PendingRead>>>(
        std::make_move_iterator(groups.begin() + static_cast<ptrdiff_t>(start)),
        std::make_move_iterator(groups.begin() + static_cast<ptrdiff_t>(end)));
    std::vector<PathSlots> paths;
    paths.reserve(sub->size());
    for (const auto& path : *sub) {
      PathSlots refs;
      refs.slots.reserve(path.size());
      for (const PendingRead& read : path) {
        refs.slots.push_back(SlotRef{read.bucket, read.version, read.slot});
      }
      paths.push_back(std::move(refs));
    }
    if (async) {
      store_->ReadPathsXorAsync(
          std::move(paths), header_bytes, trailer_bytes,
          [this, sub](std::vector<StatusOr<PathXorResult>> results) {
            pool_->Enqueue([this, sub, res = std::move(results)]() mutable {
              ProcessXorChunk(*sub, std::move(res));
            });
          });
    } else {
      pool_->Enqueue([this, sub, paths = std::move(paths), header_bytes, trailer_bytes] {
        ProcessXorChunk(*sub, store_->ReadPathsXor(paths, header_bytes, trailer_bytes));
      });
    }
  }
}

void RingOram::ProcessXorChunk(const std::vector<std::vector<PendingRead>>& paths,
                               std::vector<StatusOr<PathXorResult>> results) {
  if (results.size() != paths.size()) {
    RecordError(Status::IntegrityViolation("xor read reply has wrong path count"));
  } else {
    for (size_t i = 0; i < paths.size(); ++i) {
      ProcessPathXorGroup(paths[i], std::move(results[i]));
    }
  }
  {
    // Notify under the lock: the waiter may destroy this object as soon as
    // the count hits zero.
    std::lock_guard<std::mutex> lk(io_mu_);
    --outstanding_reads_;
    io_cv_.notify_all();
  }
}

void RingOram::ProcessPathXorGroup(const std::vector<PendingRead>& path,
                                   StatusOr<PathXorResult> result) {
  if (!result.ok()) {
    RecordError(result.status());
    return;
  }
  const size_t nonce_len = Encryptor::kNonceSize;
  const bool auth = encryptor_->authenticated();
  const size_t edge = nonce_len + (auth ? Encryptor::kTagSize : 0);
  const size_t body_len = codec_.plaintext_size();
  if (result->headers.size() != path.size() * edge || result->body_xor.size() != body_len) {
    RecordError(Status::IntegrityViolation("malformed xor path read reply"));
    return;
  }

  // XOR the regenerated dummy bodies back out; whatever survives is the
  // target's ciphertext body (or zero on an all-dummy path). Every slot's
  // tag is verified against its regenerated (or recovered) body, so
  // authenticated mode loses nothing to the reduction: a forged header,
  // body, or tag fails exactly as it would on the slot-by-slot path.
  Bytes body = std::move(result->body_xor);
  const PendingRead* target = nullptr;
  const uint8_t* target_header = nullptr;
  for (size_t i = 0; i < path.size(); ++i) {
    const uint8_t* header = result->headers.data() + i * edge;
    if (path[i].deposit_id != kInvalidBlockId) {
      target = &path[i];
      target_header = header;
      continue;
    }
    Bytes dummy_pt = codec_.DummyPlaintext(path[i].bucket, path[i].version, path[i].slot);
    // Keystream + MAC both count as crypto for the !parallel_crypto
    // ablation, exactly like the Decrypt call on the slot-by-slot path.
    Bytes dummy_body;
    bool tag_ok = true;
    auto regen_and_verify = [&] {
      dummy_body = encryptor_->ApplyKeystream(header, dummy_pt);
      if (auth) {
        Bytes aad = BlockCodec::MakeAad(config_.aad_bucket_offset + path[i].bucket,
                                        path[i].version, path[i].slot);
        tag_ok = encryptor_->VerifyBodyTag(header, dummy_body.data(), dummy_body.size(), aad,
                                           header + nonce_len);
      }
    };
    if (options_.parallel && !options_.parallel_crypto) {
      std::lock_guard<std::mutex> lk(crypto_mu_);
      regen_and_verify();
    } else {
      regen_and_verify();
    }
    if (!tag_ok) {
      RecordError(Status::IntegrityViolation("bucket MAC mismatch"));
      return;
    }
    for (size_t b = 0; b < body_len; ++b) {
      body[b] ^= dummy_body[b];
    }
  }

  if (target == nullptr) {
    // All-dummy path (padding request or stash-resident access): the
    // residue must cancel to zero. In authenticated mode the tags above
    // already pin every body; this check closes the gap in plain mode.
    for (uint8_t b : body) {
      if (b != 0) {
        RecordError(Status::IntegrityViolation("nonzero xor residue on dummy path"));
        return;
      }
    }
    return;
  }
  bool target_tag_ok = true;
  Bytes plaintext;
  auto verify_and_decrypt = [&] {
    if (auth) {
      Bytes aad = BlockCodec::MakeAad(config_.aad_bucket_offset + target->bucket,
                                      target->version, target->slot);
      target_tag_ok = encryptor_->VerifyBodyTag(target_header, body.data(), body.size(), aad,
                                                target_header + nonce_len);
      if (!target_tag_ok) {
        return;
      }
    }
    plaintext = encryptor_->ApplyKeystream(target_header, body);
  };
  if (options_.parallel && !options_.parallel_crypto) {
    std::lock_guard<std::mutex> lk(crypto_mu_);
    verify_and_decrypt();
  } else {
    verify_and_decrypt();
  }
  if (!target_tag_ok) {
    RecordError(Status::IntegrityViolation("bucket MAC mismatch"));
    return;
  }
  DepositPlaintext(*target, plaintext);
}

void RingOram::WaitOutstandingReads() {
  std::unique_lock<std::mutex> lk(io_mu_);
  io_cv_.wait(lk, [&] { return outstanding_reads_ == 0; });
}

// ---------------------------------------------------------------------------
// Access planning
// ---------------------------------------------------------------------------

Status RingOram::PlanAccess(BlockId id, std::optional<Leaf> forced_leaf, BatchPlan& plan,
                            std::vector<Bytes>* results, size_t result_slot) {
  bool is_real = id != kInvalidBlockId;
  Leaf path_leaf;
  BucketIndex target_bucket = kLocNone;
  uint32_t target_slot = 0;
  StashEntry* entry = nullptr;
  bool from_retiring = false;
  Bytes retiring_value;

  if (is_real) {
    if (id >= config_.capacity) {
      return Status::InvalidArgument("block id out of range");
    }
    if (!position_map_.Contains(id)) {
      return Status::NotFound("block was never written");
    }
    path_leaf = position_map_.Get(id);
    if (forced_leaf.has_value() && *forced_leaf != path_leaf) {
      // Multi-epoch replay: an earlier replayed epoch already re-accessed
      // this block and remapped it, so the logged leaf no longer matches the
      // position map. The original execution read the logged path, so this
      // replay must touch the same slots — execute it as a pure dummy path
      // read at the logged leaf and leave the block's current state alone
      // (the earlier replay already deposited its value).
      is_real = false;
      path_leaf = *forced_leaf;
    }
  }

  if (is_real) {
    BlockLoc loc = loc_[id];
    if (loc.bucket == kLocStash) {
      entry = stash_.Find(id);
      assert(entry != nullptr);
    } else if (loc.bucket == kLocNone) {
      return Status::NotFound("block has no physical location");
    } else {
      auto rit = retiring_.find(loc.bucket);
      if (rit != retiring_.end()) {
        // The block sits in a bucket whose new version is still in flight:
        // serve the value from the retiring buffer (the physical read of the
        // in-flight version is skipped, like any retiring path level below).
        // Any live generation's buffer can serve — loc_ points here only
        // while the buffered copy is the freshest.
        for (const PlannedBlock& blk : rit->second.blocks) {
          if (blk.id == id) {
            retiring_value = blk.value;
            from_retiring = true;
            break;
          }
        }
        if (!from_retiring) {
          return Status::Internal("retiring bucket lost a resident block");
        }
        target_bucket = loc.bucket;  // slot cleared below; no physical read
        target_slot = loc.slot;
      } else {
        target_bucket = loc.bucket;
        target_slot = loc.slot;
      }
    }

    // Remap to a fresh uniform leaf (path invariant).
    Leaf new_leaf = RandomLeaf();
    position_map_.Set(id, new_leaf);

    if (from_retiring) {
      // Move the block to the stash with its buffered value; the bucket slot
      // empties exactly as a physical pull would have (the server-side slot
      // becomes an unreferenced real slot the next rewrite discards).
      StashEntry fresh;
      fresh.leaf = new_leaf;
      fresh.value = std::move(retiring_value);
      fresh.value_ready = true;
      fresh.from_logical_access = true;
      entry = stash_.Put(id, std::move(fresh));
      loc_[id] = BlockLoc{kLocStash, 0};
      BucketMeta& mb = meta_[target_bucket];
      assert(mb.real_ids[target_slot] == id);
      mb.real_ids[target_slot] = kInvalidBlockId;
      mb.real_leaves[target_slot] = kInvalidLeaf;
      dirty_buckets_.insert(target_bucket);
      target_bucket = kLocNone;  // nothing to read physically
      if (results != nullptr) {
        (*results)[result_slot] = entry->value;
      }
    } else if (entry != nullptr) {
      // Stash-resident block. Physically this is a dummy path read along the
      // old leaf; logically the entry is now the product of a logical access.
      entry->leaf = new_leaf;
      entry->from_logical_access = true;
      if (results != nullptr) {
        if (entry->value_ready) {
          (*results)[result_slot] = entry->value;
        } else {
          // Value still in flight (pulled by an earlier eviction); copy it out
          // after the next read barrier, before any flush can move it.
          lazy_results_.push_back(LazyResult{id, results, result_slot});
        }
      }
    } else {
      // Block lives in the tree: pull it into the stash (value in flight).
      StashEntry fresh;
      fresh.leaf = new_leaf;
      fresh.value_ready = false;
      fresh.from_logical_access = true;
      entry = stash_.Put(id, std::move(fresh));
      loc_[id] = BlockLoc{kLocStash, 0};
      BucketMeta& mb = meta_[target_bucket];
      assert(mb.real_ids[target_slot] == id);
      mb.real_ids[target_slot] = kInvalidBlockId;
      mb.real_leaves[target_slot] = kInvalidLeaf;
      dirty_buckets_.insert(target_bucket);
    }
  } else {
    path_leaf = forced_leaf.has_value() ? *forced_leaf : RandomLeaf();
  }

  plan.requests.push_back(PlannedRequest{id, path_leaf});
  stats_.logical_accesses++;

  bool skip_physical = options_.cache_all_stash && is_real && target_bucket == kLocNone;
  if (skip_physical) {
    // INSECURE ablation (§6.3): serving stash-resident blocks without a dummy
    // path read skews the observable leaf distribution.
    stats_.stash_cache_skips++;
  } else {
    std::vector<BucketIndex> reshuffle_candidates;
    // All physical reads of this access form one path group: at most one of
    // them (the target) is a real slot, every other is a dummy slot with a
    // deterministic plaintext — exactly the shape the XOR read collapses.
    // Stash-resident and retiring-served accesses still emit a full dummy
    // path group, so the server-visible shape stays workload independent.
    uint32_t path_group = UseXorPathReads() ? next_path_group_++ : kNoPathGroup;
    for (uint32_t level = 0; level < config_.num_levels; ++level) {
      BucketIndex bucket = PathBucket(path_leaf, level, config_.num_levels);
      if (options_.defer_writes) {
        if (retiring_.count(bucket) != 0) {
          // The bucket's new version is still in flight from the previous
          // epoch's retirement: no physical read (the in-flight version has
          // been read zero times, so the Lemma 2 argument applies).
          stats_.retiring_bucket_skips++;
          continue;
        }
        auto it = buffered_.find(bucket);
        if (it != buffered_.end() && it->second.fully_read) {
          // Already consumed by an eviction/reshuffle this epoch: served from
          // the proxy's buffered copy, no physical read (Lemma 2).
          stats_.buffered_bucket_skips++;
          continue;
        }
      }
      BucketMeta& mb = meta_[bucket];
      SlotIndex phys;
      BlockId deposit = kInvalidBlockId;
      uint32_t gen = 0;
      if (bucket == target_bucket) {
        phys = mb.perm[target_slot];
        assert(mb.valid[phys]);
        deposit = id;
        gen = entry->gen;
      } else {
        assert(mb.dummies_used < config_.s);
        phys = mb.perm[config_.z + mb.dummies_used];
        assert(mb.valid[phys]);
        mb.dummies_used++;
      }
      mb.valid[phys] = 0;
      mb.reads_since_write++;
      dirty_buckets_.insert(bucket);
      EmitRead(bucket, phys, deposit, deposit != kInvalidBlockId ? entry : nullptr,
               deposit != kInvalidBlockId ? results : nullptr, result_slot, gen, path_group);
      if (mb.reads_since_write >= config_.s) {
        reshuffle_candidates.push_back(bucket);
      }
    }
    for (BucketIndex bucket : reshuffle_candidates) {
      ScheduleReshuffle(bucket);
    }
  }

  BumpAccessCounter();
  return Status::Ok();
}

void RingOram::BumpAccessCounter() {
  ++access_count_;
  if (access_count_ % config_.a == 0) {
    ScheduleEviction();
  }
}

void RingOram::BucketReadPhase(BucketIndex bucket) {
  BucketMeta& mb = meta_[bucket];
  uint32_t reads = 0;
  for (uint32_t i = 0; i < config_.z; ++i) {
    BlockId id = mb.real_ids[i];
    if (id == kInvalidBlockId) {
      continue;
    }
    SlotIndex phys = mb.perm[i];
    assert(mb.valid[phys]);
    mb.valid[phys] = 0;

    // Move the block to the stash *without* remapping (this is not a logical
    // access); value arrives with the physical read.
    StashEntry fresh;
    fresh.leaf = mb.real_leaves[i];
    fresh.value_ready = false;
    fresh.from_logical_access = false;
    StashEntry* entry = stash_.Put(id, std::move(fresh));
    loc_[id] = BlockLoc{kLocStash, 0};
    mb.real_ids[i] = kInvalidBlockId;
    mb.real_leaves[i] = kInvalidLeaf;
    EmitRead(bucket, phys, id, entry, nullptr, 0, entry->gen);
    ++reads;
  }
  // Pad with valid dummies up to Z total reads (canonical Ring ORAM).
  while (reads < config_.z && mb.dummies_used < config_.s) {
    SlotIndex phys = mb.perm[config_.z + mb.dummies_used];
    if (!mb.valid[phys]) {
      mb.dummies_used++;
      continue;
    }
    mb.valid[phys] = 0;
    mb.dummies_used++;
    EmitRead(bucket, phys, kInvalidBlockId, nullptr, nullptr, 0, 0);
    ++reads;
  }
  dirty_buckets_.insert(bucket);
}

bool RingOram::AbsorbRetiringBucket(BucketIndex bucket) {
  auto it = retiring_.find(bucket);
  if (it == retiring_.end()) {
    return false;
  }
  // Pull the buffered contents into the stash with no physical reads (the
  // in-flight version has never been read). Blocks that already moved out —
  // served to a logical access or overwritten — are skipped via loc_.
  BucketMeta& mb = meta_[bucket];
  for (auto& blk : it->second.blocks) {
    if (loc_[blk.id].bucket != bucket) {
      continue;
    }
    StashEntry fresh;
    fresh.leaf = blk.leaf;
    fresh.value = std::move(blk.value);
    fresh.value_ready = true;
    fresh.from_logical_access = false;
    stash_.Put(blk.id, std::move(fresh));
    loc_[blk.id] = BlockLoc{kLocStash, 0};
  }
  mb.real_ids.assign(config_.z, kInvalidBlockId);
  mb.real_leaves.assign(config_.z, kInvalidLeaf);
  dirty_buckets_.insert(bucket);
  retiring_.erase(it);
  stats_.retiring_bucket_skips++;
  return true;
}

void RingOram::ScheduleReshuffle(BucketIndex bucket) {
  if (options_.defer_writes) {
    auto& bb = buffered_[bucket];
    if (bb.fully_read) {
      return;  // already consumed this epoch; its rewrite is already planned
    }
    if (!AbsorbRetiringBucket(bucket)) {
      BucketReadPhase(bucket);
    }
    bb.fully_read = true;
    deferred_ops_.push_back(DeferredOp{DeferredOpType::kReshuffle, kInvalidLeaf, bucket});
  } else {
    BucketReadPhase(bucket);
    WaitOutstandingReads();
    ResolveLazyResults();
    FlushBucket(bucket);
    // Materialize immediately (write phase at the trigger point).
    auto it = buffered_.find(bucket);
    if (it != buffered_.end() && it->second.rewrite_planned) {
      trace_.Record(PhysicalOpType::kWriteBucket, bucket, meta_[bucket].write_count,
                    kInvalidSlot);
      stats_.physical_bucket_writes++;
      MaterializeBucket(bucket, it->second.blocks, /*via_pool=*/false);
      buffered_.erase(it);
    }
  }
  stats_.early_reshuffles++;
}

void RingOram::ScheduleEviction() {
  Leaf leaf = EvictionLeaf(evict_count_, config_.num_levels);
  ++evict_count_;
  stats_.evictions++;

  // Read phase: pull every remaining valid real block on the path into the
  // stash (buckets already consumed this epoch are skipped — their blocks are
  // in the stash or in planned buckets already).
  for (uint32_t level = 0; level < config_.num_levels; ++level) {
    BucketIndex bucket = PathBucket(leaf, level, config_.num_levels);
    if (options_.defer_writes) {
      auto& bb = buffered_[bucket];
      if (bb.fully_read) {
        stats_.buffered_bucket_skips++;
        continue;
      }
      if (!AbsorbRetiringBucket(bucket)) {
        BucketReadPhase(bucket);
      }
      bb.fully_read = true;
    } else {
      BucketReadPhase(bucket);
    }
  }

  if (options_.defer_writes) {
    deferred_ops_.push_back(DeferredOp{DeferredOpType::kEvictPath, leaf, 0});
  } else {
    WaitOutstandingReads();
    ResolveLazyResults();
    FlushPath(leaf);
    // Materialize the rewritten path immediately.
    std::vector<std::pair<BucketIndex, const std::vector<PlannedBlock>*>> to_write;
    for (auto& [bucket, bb] : buffered_) {
      if (bb.rewrite_planned) {
        to_write.emplace_back(bucket, &bb.blocks);
      }
    }
    for (const auto& [bucket, blocks] : to_write) {
      trace_.Record(PhysicalOpType::kWriteBucket, bucket, meta_[bucket].write_count,
                    kInvalidSlot);
      stats_.physical_bucket_writes++;
    }
    if (options_.parallel) {
      crypto_pool_->ParallelFor(to_write.size(), [&](size_t i) {
        MaterializeBucket(to_write[i].first, *to_write[i].second, /*via_pool=*/true);
      });
      FlushPendingImages();
    } else {
      for (const auto& [bucket, blocks] : to_write) {
        MaterializeBucket(bucket, *blocks, /*via_pool=*/false);
      }
    }
    buffered_.clear();
  }
}

void RingOram::ResolveLazyResults() {
  for (auto it = lazy_results_.begin(); it != lazy_results_.end();) {
    StashEntry* entry = stash_.Find(it->id);
    if (entry != nullptr && entry->value_ready) {
      (*it->results)[it->slot] = entry->value;
      it = lazy_results_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Flushing (eviction/reshuffle write phases)
// ---------------------------------------------------------------------------

void RingOram::PullPlannedBlocks(BucketIndex bucket) {
  auto it = buffered_.find(bucket);
  if (it == buffered_.end() || !it->second.rewrite_planned) {
    return;
  }
  BucketMeta& mb = meta_[bucket];
  for (auto& blk : it->second.blocks) {
    StashEntry e;
    e.leaf = blk.leaf;
    e.value = std::move(blk.value);
    e.value_ready = true;
    stash_.Put(blk.id, std::move(e));
    loc_[blk.id] = BlockLoc{kLocStash, 0};
  }
  it->second.blocks.clear();
  it->second.rewrite_planned = false;
  mb.real_ids.assign(config_.z, kInvalidBlockId);
  mb.real_leaves.assign(config_.z, kInvalidLeaf);
}

std::vector<RingOram::PlannedBlock> RingOram::SelectStashBlocksFor(BucketIndex bucket,
                                                                   Leaf target_leaf,
                                                                   uint32_t level) {
  std::vector<PlannedBlock> out;
  for (auto& [id, entry] : stash_.entries()) {
    if (out.size() >= config_.z) {
      break;
    }
    if (!entry.value_ready) {
      continue;  // should not happen after the pre-flush barrier
    }
    bool fits;
    if (target_leaf == kInvalidLeaf) {
      fits = PathContains(entry.leaf, bucket, config_.num_levels);
    } else {
      fits = CommonPathLevels(entry.leaf, target_leaf, config_.num_levels) > level;
    }
    if (fits) {
      out.push_back(PlannedBlock{id, entry.leaf, entry.value});
    }
  }
  for (const auto& blk : out) {
    stash_.Erase(blk.id);
  }
  return out;
}

void RingOram::PlaceAndRewrite(BucketIndex bucket, std::vector<PlannedBlock> blocks) {
  BucketMeta& mb = meta_[bucket];
  mb.real_ids.assign(config_.z, kInvalidBlockId);
  mb.real_leaves.assign(config_.z, kInvalidLeaf);
  for (size_t i = 0; i < blocks.size(); ++i) {
    mb.real_ids[i] = blocks[i].id;
    mb.real_leaves[i] = blocks[i].leaf;
    loc_[blocks[i].id] = BlockLoc{bucket, static_cast<uint32_t>(i)};
  }
  mb.perm = rng_.RandomPermutation(config_.slots_per_bucket());
  mb.valid.assign(config_.slots_per_bucket(), 1);
  mb.reads_since_write = 0;
  mb.dummies_used = 0;
  mb.write_count++;
  dirty_buckets_.insert(bucket);
  stats_.planned_bucket_rewrites++;

  auto& bb = buffered_[bucket];
  bb.rewrite_planned = true;
  bb.blocks = std::move(blocks);
}

void RingOram::FlushPath(Leaf leaf) {
  // A bucket rewritten earlier this epoch contributes its planned blocks back
  // to the stash so this flush can repack them (write deduplication).
  for (uint32_t level = 0; level < config_.num_levels; ++level) {
    PullPlannedBlocks(PathBucket(leaf, level, config_.num_levels));
  }
  // Deepest-first placement maximizes how far blocks descend.
  for (uint32_t level = config_.num_levels; level-- > 0;) {
    BucketIndex bucket = PathBucket(leaf, level, config_.num_levels);
    PlaceAndRewrite(bucket, SelectStashBlocksFor(bucket, leaf, level));
  }
}

void RingOram::FlushBucket(BucketIndex bucket) {
  PullPlannedBlocks(bucket);
  PlaceAndRewrite(bucket, SelectStashBlocksFor(bucket, kInvalidLeaf, 0));
}

// Shared slot-encryption loop for both materialization paths. A bucket's
// planned blocks always occupy the dense logical-slot prefix [0,
// blocks.size()) — PlaceAndRewrite/Initialize assign real_ids exactly from
// the blocks vector, and nothing clears a slot between planning and
// materialization (both run under mu_ in the same flush).
std::vector<Bytes> RingOram::EncryptBucketSlots(BucketIndex bucket, uint32_t version,
                                                const std::vector<SlotIndex>& perm,
                                                const std::vector<PlannedBlock>& blocks) {
  uint32_t num_slots = config_.slots_per_bucket();
  std::vector<Bytes> slots(num_slots);
  for (uint32_t logical = 0; logical < num_slots; ++logical) {
    SlotIndex phys = perm[logical];
    Bytes plaintext;
    if (logical < config_.z && logical < blocks.size()) {
      plaintext = codec_.EncodeBlock(blocks[logical].id, blocks[logical].leaf,
                                     blocks[logical].value);
    } else {
      plaintext = codec_.DummyPlaintext(bucket, version, phys);
    }
    Bytes aad = config_.authenticated
                    ? BlockCodec::MakeAad(config_.aad_bucket_offset + bucket, version, phys)
                    : Bytes{};
    if (options_.parallel && !options_.parallel_crypto) {
      std::lock_guard<std::mutex> lk(crypto_mu_);
      slots[phys] = encryptor_->Encrypt(plaintext, aad);
    } else {
      slots[phys] = encryptor_->Encrypt(plaintext, aad);
    }
  }
  return slots;
}

void RingOram::MaterializeBucket(BucketIndex bucket, const std::vector<PlannedBlock>& blocks,
                                 bool via_pool) {
  const BucketMeta& mb = meta_[bucket];
  uint32_t version = mb.write_count;
  assert(blocks.size() <= config_.z);
  std::vector<Bytes> slots = EncryptBucketSlots(bucket, version, mb.perm, blocks);
  // Buffer the encrypted image; the caller flushes all images of this write
  // phase as one batched storage request (the physical analogue of the
  // paper's parallel write-back).
  if (via_pool && options_.parallel) {
    std::lock_guard<std::mutex> lk(images_mu_);
    pending_images_.push_back(BucketImage{bucket, version, std::move(slots)});
    return;
  }
  Status st = store_->WriteBucket(bucket, version, std::move(slots));
  if (!st.ok()) {
    RecordError(st);
  }
}

void RingOram::FlushPendingImages() {
  std::vector<BucketImage> images;
  {
    std::lock_guard<std::mutex> lk(images_mu_);
    images.swap(pending_images_);
  }
  if (images.empty()) {
    return;
  }
  OBS_SPAN_ARG("oram", "oram.flush", images.size());
  if (options_.parallel && store_->SupportsAsyncBatches() && images.size() > 1) {
    // Submit the epoch's write-back as many concurrent sub-batches and wait
    // on one completion set: the event loop keeps them all in flight, the
    // server's worker pool executes them in parallel, and no proxy thread
    // blocks per request.
    size_t max_chunks = 2 * pool_->num_threads();
    size_t chunk = (images.size() + max_chunks - 1) / max_chunks;
    size_t num_chunks = (images.size() + chunk - 1) / chunk;
    CountdownLatch latch(num_chunks);
    std::vector<Status> results(num_chunks, Status::Ok());
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t start = c * chunk;
      size_t end = std::min(start + chunk, images.size());
      std::vector<BucketImage> sub(std::make_move_iterator(images.begin() +
                                                           static_cast<ptrdiff_t>(start)),
                                   std::make_move_iterator(images.begin() +
                                                           static_cast<ptrdiff_t>(end)));
      store_->WriteBucketsBatchAsync(std::move(sub), [&results, &latch, c](Status st) {
        results[c] = std::move(st);
        latch.CountDown();
      });
    }
    latch.Wait();
    for (const Status& st : results) {
      if (!st.ok()) {
        RecordError(st);
      }
    }
    return;
  }
  Status st = store_->WriteBucketsBatch(std::move(images));
  if (!st.ok()) {
    RecordError(st);
  }
}

void RingOram::RetireChunkDone(const std::shared_ptr<RetireTicket>& ticket, Status st) {
  // Notify under the lock: AwaitRetireDurable's caller may destroy this
  // object as soon as the count hits zero.
  std::lock_guard<std::mutex> rlk(retire_mu_);
  if (!st.ok() && ticket->error.ok()) {
    ticket->error = st;
  }
  --ticket->outstanding;
  --retire_outstanding_;
  retire_cv_.notify_all();
}

BucketImage RingOram::EncryptRetireImage(const RetireImagePlan& plan) {
  return BucketImage{plan.bucket, plan.version,
                     EncryptBucketSlots(plan.bucket, plan.version, plan.perm, plan.blocks)};
}

void RingOram::SubmitImagesAsync(std::vector<BucketImage> images,
                                 std::shared_ptr<RetireTicket> ticket) {
  if (images.empty()) {
    return;
  }
  if (options_.parallel && store_->SupportsAsyncBatches() && images.size() > 1) {
    // True submissions: the event loop keeps every sub-batch in flight and
    // the completions land on RetireChunkDone — no proxy thread blocks.
    size_t max_chunks = 2 * pool_->num_threads();
    size_t chunk = (images.size() + max_chunks - 1) / max_chunks;
    size_t num_chunks = (images.size() + chunk - 1) / chunk;
    {
      std::lock_guard<std::mutex> rlk(retire_mu_);
      ticket->outstanding += num_chunks;
      retire_outstanding_ += num_chunks;
    }
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t start = c * chunk;
      size_t end = std::min(start + chunk, images.size());
      std::vector<BucketImage> sub(
          std::make_move_iterator(images.begin() + static_cast<ptrdiff_t>(start)),
          std::make_move_iterator(images.begin() + static_cast<ptrdiff_t>(end)));
      store_->WriteBucketsBatchAsync(std::move(sub), [this, ticket](Status st) {
        RetireChunkDone(ticket, std::move(st));
      });
    }
    return;
  }
  // Blocking store: the batched write occupies one pool thread for its round
  // trip, but the caller still returns immediately — the overlap the epoch
  // pipeline needs survives a synchronous backend.
  {
    std::lock_guard<std::mutex> rlk(retire_mu_);
    ++ticket->outstanding;
    ++retire_outstanding_;
  }
  pool_->Enqueue([this, ticket, images = std::move(images)]() mutable {
    RetireChunkDone(ticket, store_->WriteBucketsBatch(std::move(images)));
  });
}

// ---------------------------------------------------------------------------
// Batched operations
// ---------------------------------------------------------------------------

StatusOr<std::vector<Bytes>> RingOram::RunReadBatch(const std::vector<BlockId>& ids,
                                                    const BatchPlan* replay_plan,
                                                    const EarlyResultFn* early) {
  std::lock_guard<std::mutex> lk(mu_);
  SpanGuard obs_span("oram", "oram.read_batch", epoch_);
  std::vector<Bytes> results(ids.size());
  BatchPlan plan;
  plan.epoch = epoch_;
  plan.batch_index = batch_in_epoch_++;

  current_early_ = early;
  for (size_t i = 0; i < ids.size(); ++i) {
    std::optional<Leaf> forced;
    if (replay_plan != nullptr) {
      forced = replay_plan->requests[i].leaf;
    }
    Status st = PlanAccess(ids[i], forced, plan, &results, i);
    if (!st.ok()) {
      current_early_ = nullptr;
      return st;
    }
  }
  current_early_ = nullptr;

  if (planned_hook_ && replay_plan == nullptr) {
    OBLADI_RETURN_IF_ERROR(planned_hook_(plan));
  }
  {
    // access_r stage: dispatch the batch's path reads and wait them out.
    // Early answers fire from the I/O threads inside this window.
    OBS_SPAN_ARG("sched", "sched.read_stage", ids.size());
    DispatchPendingReads();
    WaitOutstandingReads();
  }
  ResolveLazyResults();

  {
    std::lock_guard<std::mutex> elk(err_mu_);
    if (!first_error_.ok()) {
      Status err = first_error_;
      first_error_ = Status::Ok();
      return err;
    }
  }
  return results;
}

StatusOr<std::vector<Bytes>> RingOram::ReadBatch(const std::vector<BlockId>& ids) {
  return RunReadBatch(ids, nullptr, nullptr);
}

StatusOr<std::vector<Bytes>> RingOram::ReadBatch(const std::vector<BlockId>& ids,
                                                 const EarlyResultFn& early) {
  return RunReadBatch(ids, nullptr, early ? &early : nullptr);
}

StatusOr<std::vector<Bytes>> RingOram::ReplayReadBatch(const BatchPlan& plan) {
  std::vector<BlockId> ids;
  ids.reserve(plan.requests.size());
  for (const auto& req : plan.requests) {
    ids.push_back(req.id);
  }
  return RunReadBatch(ids, &plan, nullptr);
}

void RingOram::AdvanceWriteSchedule(size_t bumps) {
  std::lock_guard<std::mutex> lk(mu_);
  // Pure schedule movement: exactly what the write batch's padding bumps
  // would do at the close, shifted into the epoch. Triggered eviction/
  // reshuffle read phases land in pending_reads_ and — with the sub-epoch
  // scheduler — dispatch immediately (the decoupled access_w read stage),
  // overlapping the next batch's plan logging and answer delivery. These
  // pulls are schedule-derived, never plan-logged, so dispatching them
  // before the next batch's WAL append preserves §8's log-before-read
  // discipline; replay re-derives them from the same schedule. Without the
  // scheduler they park until the next batch's dispatch wave, as before.
  for (size_t i = 0; i < bumps; ++i) {
    BumpAccessCounter();
  }
  if (options_.eager_evict_dispatch && options_.parallel && options_.defer_writes &&
      !pending_reads_.empty()) {
    OBS_SPAN_ARG("sched", "sched.evict_stage", pending_reads_.size());
    stats_.eager_evict_dispatches++;
    DispatchPendingReads();
  }
}

Status RingOram::ApplyWriteValues(const std::vector<std::pair<BlockId, Bytes>>& writes) {
  return WriteBatchInternal(writes, /*padded_size=*/0, /*bump_schedule=*/false);
}

Status RingOram::WriteBatch(const std::vector<std::pair<BlockId, Bytes>>& writes,
                            size_t padded_size) {
  return WriteBatchInternal(writes, padded_size, /*bump_schedule=*/true);
}

Status RingOram::WriteBatchInternal(const std::vector<std::pair<BlockId, Bytes>>& writes,
                                    size_t padded_size, bool bump_schedule) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [id, value] : writes) {
    if (id >= config_.capacity) {
      return Status::InvalidArgument("block id out of range");
    }
    // Dummiless write (§6.3): place the new version directly in the stash.
    BlockLoc loc = loc_[id];
    if (loc.bucket != kLocStash && loc.bucket != kLocNone) {
      // Drop the stale tree copy; its slot becomes an unreferenced real slot
      // that the next rewrite of that bucket discards.
      BucketMeta& mb = meta_[loc.bucket];
      assert(mb.real_ids[loc.slot] == id);
      mb.real_ids[loc.slot] = kInvalidBlockId;
      mb.real_leaves[loc.slot] = kInvalidLeaf;
      dirty_buckets_.insert(loc.bucket);
      // Defensive: if this bucket has a planned-but-unmaterialized rewrite
      // naming the id (cannot happen mid-epoch by construction), keep the
      // block list aligned with the logical slots.
      auto it = buffered_.find(loc.bucket);
      if (it != buffered_.end() && it->second.rewrite_planned) {
        auto& blks = it->second.blocks;
        for (size_t i = 0; i < blks.size(); ++i) {
          if (blks[i].id == id) {
            blks.erase(blks.begin() + static_cast<ptrdiff_t>(i));
            mb.real_ids.assign(config_.z, kInvalidBlockId);
            mb.real_leaves.assign(config_.z, kInvalidLeaf);
            for (size_t j = 0; j < blks.size(); ++j) {
              mb.real_ids[j] = blks[j].id;
              mb.real_leaves[j] = blks[j].leaf;
              loc_[blks[j].id] = BlockLoc{loc.bucket, static_cast<uint32_t>(j)};
            }
            break;
          }
        }
      }
    }
    Leaf new_leaf = RandomLeaf();
    position_map_.Set(id, new_leaf);
    {
      std::lock_guard<std::mutex> dlk(deposit_mu_);
      StashEntry* entry = stash_.Find(id);
      if (entry != nullptr) {
        entry->leaf = new_leaf;
        entry->value = value;
        entry->value_ready = true;
        entry->from_logical_access = true;
        entry->gen++;  // invalidate any in-flight physical deposit
      } else {
        StashEntry fresh;
        fresh.leaf = new_leaf;
        fresh.value = value;
        fresh.value_ready = true;
        fresh.from_logical_access = true;
        stash_.Put(id, std::move(fresh));
      }
    }
    loc_[id] = BlockLoc{kLocStash, 0};
    stats_.logical_accesses++;
    if (bump_schedule) {
      BumpAccessCounter();
    }
  }
  // Padding writes advance the eviction schedule only, so the adversary sees
  // a fixed-size write batch regardless of the workload. (Skipped when the
  // schedule was pre-advanced through AdvanceWriteSchedule.)
  if (bump_schedule) {
    for (size_t i = writes.size(); i < padded_size; ++i) {
      BumpAccessCounter();
    }
  }
  DispatchPendingReads();
  return Status::Ok();
}

Status RingOram::BeginRetire() {
  std::lock_guard<std::mutex> lk(mu_);
  SpanGuard obs_span("oram", "oram.begin_retire", epoch_);
  size_t depth = std::max<size_t>(1, options_.retire_depth);
  if (retiring_gens_.size() >= depth) {
    return Status::FailedPrecondition("retirement window full: oldest epoch not collected");
  }
  DispatchPendingReads();
  WaitOutstandingReads();

  RetiringGeneration gen;
  gen.gen = next_retire_gen_++;
  auto ticket = std::make_shared<RetireTicket>();

  if (options_.defer_writes) {
    // Replay the deferred write phases in order; repeated touches of a bucket
    // repack it in place, so each bucket materializes exactly once below.
    uint64_t plan_start = NowMicros();
    for (const DeferredOp& op : deferred_ops_) {
      if (op.type == DeferredOpType::kEvictPath) {
        FlushPath(op.leaf);
      } else {
        FlushBucket(op.bucket);
      }
    }
    deferred_ops_.clear();
    stats_.flush_plan_us += NowMicros() - plan_start;

    std::vector<std::pair<BucketIndex, const std::vector<PlannedBlock>*>> to_write;
    for (auto& [bucket, bb] : buffered_) {
      if (bb.rewrite_planned) {
        to_write.emplace_back(bucket, &bb.blocks);
      }
    }
    for (const auto& [bucket, blocks] : to_write) {
      trace_.Record(PhysicalOpType::kWriteBucket, bucket, meta_[bucket].write_count,
                    kInvalidSlot);
      stats_.physical_bucket_writes++;
    }
    if (options_.parallel) {
      // Snapshot everything materialization needs, then hand encryption +
      // submission to the I/O pool immediately: the close step pays neither
      // the crypto nor the network, and the images are already in flight by
      // the time the retirement stage starts waiting — which also opens the
      // recovery unit's checkpoint gate (durability precedes the append) as
      // early as possible, minimizing the next epoch's first-batch stall.
      auto plan = std::make_shared<std::vector<RetireImagePlan>>();
      plan->reserve(to_write.size());
      for (const auto& [bucket, blocks] : to_write) {
        RetireImagePlan p;
        p.bucket = bucket;
        p.version = meta_[bucket].write_count;
        p.perm = meta_[bucket].perm;
        p.blocks = *blocks;
        plan->push_back(std::move(p));
      }
      if (!plan->empty()) {
        {
          // The encrypt+submit task itself holds one outstanding slot so
          // AwaitRetireDurable cannot observe zero before submission.
          std::lock_guard<std::mutex> rlk(retire_mu_);
          ++ticket->outstanding;
          ++retire_outstanding_;
        }
        pool_->Enqueue([this, plan, ticket] {
          uint64_t start = NowMicros();
          std::vector<BucketImage> images(plan->size());
          crypto_pool_->ParallelFor(plan->size(), [&](size_t i) {
            images[i] = EncryptRetireImage((*plan)[i]);
          });
          bg_materialize_us_.fetch_add(NowMicros() - start, std::memory_order_relaxed);
          SubmitImagesAsync(std::move(images), ticket);
          RetireChunkDone(ticket, Status::Ok());
        });
      }
    } else {
      uint64_t mat_start = NowMicros();
      for (const auto& [bucket, blocks] : to_write) {
        MaterializeBucket(bucket, *blocks, /*via_pool=*/false);
      }
      stats_.materialize_us += NowMicros() - mat_start;
    }
    // Keep the rewritten buckets' plaintext contents to serve the next
    // epoch's accesses while the flush is in flight. Each bucket is owned by
    // this generation; a bucket re-rewritten by a later epoch is re-owned
    // (CollectRetired erases only entries still carrying its generation id).
    for (auto& [bucket, bb] : buffered_) {
      if (bb.rewrite_planned) {
        gen.buckets.push_back(bucket);
        retiring_[bucket] = RetiringBucket{gen.gen, std::move(bb.blocks)};
      }
    }
    buffered_.clear();
  }

  // Snapshot every bucket's version at this close: exactly the versions the
  // epoch's checkpoint (captured right after BeginRetire) references, and
  // therefore the truncation floor once that checkpoint is durable. Live
  // counts at truncate time would include later, still-undurable epochs.
  gen.version_floors.reserve(meta_.size());
  for (const BucketMeta& mb : meta_) {
    gen.version_floors.push_back(mb.write_count);
  }
  retiring_gens_.push_back(std::move(gen));
  {
    std::lock_guard<std::mutex> rlk(retire_mu_);
    retire_tickets_.push_back(std::move(ticket));
  }

  stash_.ClearLogicalAccessFlags();
  ++epoch_;
  batch_in_epoch_ = 0;

  {
    std::lock_guard<std::mutex> elk(err_mu_);
    if (!first_error_.ok()) {
      Status err = first_error_;
      first_error_ = Status::Ok();
      return err;
    }
  }
  return Status::Ok();
}

Status RingOram::AwaitRetireDurable() {
  // Deliberately touches only retire_mu_ (never mu_): the retirement stage
  // calls this while a next-epoch batch may hold mu_ — possibly blocked on
  // the recovery unit's checkpoint-ordering gate, which opens only after
  // this returns — so taking mu_ here would deadlock.
  OBS_SPAN("oram", "oram.retire_wait");
  std::unique_lock<std::mutex> rlk(retire_mu_);
  if (retire_tickets_.empty()) {
    return Status::Ok();
  }
  std::shared_ptr<RetireTicket> ticket = retire_tickets_.front();
  retire_cv_.wait(rlk, [&] { return ticket->outstanding == 0; });
  retire_tickets_.pop_front();
  return ticket->error;
}

void RingOram::CollectRetired() {
  std::lock_guard<std::mutex> lk(mu_);
  if (retiring_gens_.empty()) {
    return;
  }
  RetiringGeneration gen = std::move(retiring_gens_.front());
  retiring_gens_.pop_front();
  for (BucketIndex b : gen.buckets) {
    auto it = retiring_.find(b);
    // Skip entries a later epoch re-owned (absorbed + re-rewritten while this
    // generation was still in flight): their buffers are still needed.
    if (it != retiring_.end() && it->second.gen == gen.gen) {
      retiring_.erase(it);
    }
  }
  collected_floors_ = std::move(gen.version_floors);
}

size_t RingOram::RetiringGenerations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retiring_gens_.size();
}

Status RingOram::FinishEpoch() {
  OBLADI_RETURN_IF_ERROR(BeginRetire());
  uint64_t drain_start = NowMicros();
  Status st = AwaitRetireDurable();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.write_drain_us += NowMicros() - drain_start;
  }
  CollectRetired();
  return st;
}

size_t RingOram::InflightBlocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = stash_.size();
  for (const auto& [bucket, rb] : retiring_) {
    n += rb.blocks.size();
  }
  return n;
}

Status RingOram::TruncateStaleVersions() {
  // Snapshot the per-bucket version floors under mu_, but keep the lock OUT
  // of the network round trip: GC used to hold mu_ across one truncate RPC
  // per bucket, stalling the next epoch's batch admission behind thousands
  // of sequential round trips. The snapshot is safe to apply lock-free —
  // write counts only grow, so a concurrent epoch can only make the floor
  // conservative, never wrong.
  std::vector<TruncateRef> refs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Prefer the floors banked by the last CollectRetired: they are the
    // versions that generation's (now durable) checkpoint references. Live
    // write counts may already include later, still-undurable epochs whose
    // checkpoints still need the older versions (depth > 1). Without banked
    // floors (truncate outside the retire cycle) live counts are safe: the
    // caller guarantees the covering checkpoint is durable.
    std::optional<std::vector<uint32_t>> floors = std::move(collected_floors_);
    collected_floors_.reset();
    refs.reserve(meta_.size());
    for (BucketIndex b = 0; b < meta_.size(); ++b) {
      uint32_t v = floors.has_value() && b < floors->size() ? (*floors)[b]
                                                            : meta_[b].write_count;
      refs.push_back(TruncateRef{b, v});
    }
  }
  // One batched request: a whole shard's GC is one round trip.
  return store_->TruncateBucketsBatch(refs);
}

// ---------------------------------------------------------------------------
// Invariant checking (tests)
// ---------------------------------------------------------------------------

Status RingOram::CheckInvariants() const {
  std::lock_guard<std::mutex> lk(mu_);
  // Per-bucket checks.
  for (BucketIndex b = 0; b < meta_.size(); ++b) {
    const BucketMeta& mb = meta_[b];
    if (mb.perm.size() != config_.slots_per_bucket()) {
      return Status::Internal("bucket perm has wrong size");
    }
    std::vector<bool> seen(mb.perm.size(), false);
    for (SlotIndex p : mb.perm) {
      if (p >= mb.perm.size() || seen[p]) {
        return Status::Internal("bucket perm is not a permutation");
      }
      seen[p] = true;
    }
    if (mb.dummies_used > config_.s) {
      return Status::Internal("more dummies consumed than exist");
    }
    for (uint32_t i = 0; i < config_.z; ++i) {
      if (mb.real_ids[i] == kInvalidBlockId) {
        continue;
      }
      if (!mb.valid[mb.perm[i]]) {
        return Status::Internal("occupied real slot marked invalid");
      }
      BlockId id = mb.real_ids[i];
      if (loc_[id].bucket != b || loc_[id].slot != i) {
        return Status::Internal("location index out of sync with bucket contents");
      }
    }
  }
  // Per-block checks: path invariant.
  for (BlockId id = 0; id < config_.capacity; ++id) {
    if (!position_map_.Contains(id)) {
      continue;
    }
    Leaf leaf = position_map_.Get(id);
    BlockLoc loc = loc_[id];
    if (loc.bucket == kLocStash) {
      if (!stash_.Contains(id)) {
        return Status::Internal("stash-located block missing from stash");
      }
    } else if (loc.bucket == kLocNone) {
      return Status::Internal("mapped block has no location");
    } else {
      if (meta_[loc.bucket].real_ids[loc.slot] != id) {
        return Status::Internal("tree-located block missing from bucket");
      }
      if (meta_[loc.bucket].real_leaves[loc.slot] != leaf) {
        return Status::Internal("bucket leaf tag disagrees with position map");
      }
      if (!PathContains(leaf, loc.bucket, config_.num_levels)) {
        return Status::Internal("path invariant violated: block off its mapped path");
      }
    }
  }
  return Status::Ok();
}

}  // namespace obladi
