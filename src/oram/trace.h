// Adversary-visible trace structures.
//
// BatchPlan is what the data handler commits to durable storage *before*
// issuing a read batch (§8): the logical request list (block id + path leaf)
// in batch order. Slot-level choices are a deterministic function of the
// metadata state, so recovery can replay the identical physical accesses from
// this plan alone.
//
// TraceRecorder captures the physical operations the storage server observes,
// in planning (deterministic) order; tests use it to check workload
// independence and replay determinism.
#ifndef OBLADI_SRC_ORAM_TRACE_H_
#define OBLADI_SRC_ORAM_TRACE_H_

#include <vector>

#include "src/common/serde.h"
#include "src/common/types.h"

namespace obladi {

struct PlannedRequest {
  BlockId id = kInvalidBlockId;  // kInvalidBlockId = padding request
  Leaf leaf = kInvalidLeaf;      // path that was (or will be) read
};

struct BatchPlan {
  EpochId epoch = 0;
  uint32_t batch_index = 0;
  std::vector<PlannedRequest> requests;

  Bytes Serialize() const {
    BinaryWriter w;
    w.PutU64(epoch);
    w.PutU32(batch_index);
    w.PutU32(static_cast<uint32_t>(requests.size()));
    for (const auto& req : requests) {
      w.PutU64(req.id);
      w.PutU32(req.leaf);
    }
    return w.Take();
  }

  static BatchPlan Deserialize(const Bytes& data) {
    BatchPlan p;
    BinaryReader r(data);
    p.epoch = r.GetU64();
    p.batch_index = r.GetU32();
    uint32_t n = r.GetU32();
    p.requests.resize(n);
    for (auto& req : p.requests) {
      req.id = r.GetU64();
      req.leaf = r.GetU32();
    }
    return p;
  }
};

enum class PhysicalOpType : uint8_t {
  kReadSlot = 0,
  kWriteBucket = 1,
};

struct PhysicalOp {
  PhysicalOpType type;
  BucketIndex bucket;
  uint32_t version;
  SlotIndex slot;  // kInvalidSlot for bucket writes

  bool operator==(const PhysicalOp&) const = default;
};

class TraceRecorder {
 public:
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void Record(PhysicalOpType type, BucketIndex bucket, uint32_t version, SlotIndex slot) {
    if (enabled_) {
      ops_.push_back(PhysicalOp{type, bucket, version, slot});
    }
  }

  const std::vector<PhysicalOp>& ops() const { return ops_; }
  std::vector<PhysicalOp> Take() { return std::move(ops_); }
  void Clear() { ops_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<PhysicalOp> ops_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_TRACE_H_
