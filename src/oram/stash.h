// The client-side stash: blocks that have been logically removed from the
// tree and not yet evicted back. Unlike a cache, the stash is part of Ring
// ORAM's correctness argument — a block is always either in the tree on its
// mapped path, or here.
//
// Entries distinguish *why* a block is present (§6.3): blocks here because of
// a logical access this epoch are mapped to fresh uniform paths and may be
// served from the proxy's version cache without skewing the observable path
// distribution; blocks left over because eviction could not flush them skew
// away from recently evicted paths and must still trigger dummy path reads.
#ifndef OBLADI_SRC_ORAM_STASH_H_
#define OBLADI_SRC_ORAM_STASH_H_

#include <unordered_map>
#include <vector>

#include "src/common/serde.h"
#include "src/common/types.h"

namespace obladi {

struct StashEntry {
  Leaf leaf = kInvalidLeaf;
  Bytes value;                      // block payload (plaintext)
  bool value_ready = false;         // false while the physical read is in flight
  bool from_logical_access = false; // §6.3 distinction
  // Bumped when a buffered write supersedes the entry's value; an in-flight
  // physical read captured the old generation and must not clobber the write.
  uint32_t gen = 0;
};

class Stash {
 public:
  using Map = std::unordered_map<BlockId, StashEntry>;

  bool Contains(BlockId id) const { return entries_.count(id) != 0; }

  StashEntry* Find(BlockId id) {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
  }

  // Inserts or overwrites; returns the (stable) entry pointer.
  StashEntry* Put(BlockId id, StashEntry entry) {
    return &(entries_[id] = std::move(entry));
  }

  void Erase(BlockId id) { entries_.erase(id); }

  size_t size() const { return entries_.size(); }
  Map& entries() { return entries_; }
  const Map& entries() const { return entries_; }

  // Mark every entry as an eviction leftover (run at epoch boundaries).
  void ClearLogicalAccessFlags() {
    for (auto& [id, e] : entries_) {
      e.from_logical_access = false;
    }
  }

  // Serialize, padded to max_blocks entries so the ciphertext length leaks
  // nothing about occupancy (§8). Values must all be ready.
  Bytes SerializePadded(size_t max_blocks, size_t payload_size) const {
    BinaryWriter w;
    w.PutU32(static_cast<uint32_t>(entries_.size()));
    for (const auto& [id, e] : entries_) {
      w.PutU64(id);
      w.PutU32(e.leaf);
      Bytes padded = e.value;
      padded.resize(payload_size, 0);
      w.PutBytes(padded);
    }
    size_t pad = max_blocks > entries_.size() ? max_blocks - entries_.size() : 0;
    for (size_t i = 0; i < pad; ++i) {
      w.PutU64(kInvalidBlockId);
      w.PutU32(kInvalidLeaf);
      w.PutBytes(Bytes(payload_size, 0));
    }
    return w.Take();
  }

  static Stash Deserialize(const Bytes& data) {
    Stash s;
    BinaryReader r(data);
    uint32_t n = r.GetU32();
    for (uint32_t i = 0; i < n; ++i) {
      BlockId id = r.GetU64();
      StashEntry e;
      e.leaf = r.GetU32();
      e.value = r.GetBytes();
      e.value_ready = true;
      e.from_logical_access = false;
      s.entries_[id] = std::move(e);
    }
    return s;
  }

 private:
  Map entries_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_STASH_H_
