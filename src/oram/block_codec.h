// Fixed-size slot plaintext encoding and deterministic dummy payloads.
//
// Slot plaintext layout: block id (u64) | leaf at write time (u32) | payload.
// Dummy slots and empty real slots carry id = kInvalidBlockId and a
// pseudo-random payload derived from (bucket, version, slot), so generating
// them is lock-free and costs one keystream pass — the same CPU work a real
// encryption pays, which keeps the simulated crypto cost honest.
#ifndef OBLADI_SRC_ORAM_BLOCK_CODEC_H_
#define OBLADI_SRC_ORAM_BLOCK_CODEC_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/oram/config.h"

namespace obladi {

struct DecodedBlock {
  BlockId id = kInvalidBlockId;
  Leaf leaf = kInvalidLeaf;
  Bytes payload;
};

class BlockCodec {
 public:
  explicit BlockCodec(const RingOramConfig& config, Bytes dummy_seed_key);

  size_t plaintext_size() const { return plaintext_size_; }

  // Encode a real block. The payload is zero-padded / truncated to the
  // configured payload size.
  Bytes EncodeBlock(BlockId id, Leaf leaf, const Bytes& payload) const;

  DecodedBlock DecodeBlock(const Bytes& plaintext) const;

  // Deterministic filler plaintext for dummy slots and empty real slots.
  Bytes DummyPlaintext(BucketIndex bucket, uint32_t version, SlotIndex slot) const;

  // Associated data binding a slot ciphertext to its location and version
  // (freshness; used in authenticated mode, Appendix A).
  static Bytes MakeAad(BucketIndex bucket, uint32_t version, SlotIndex slot);

 private:
  size_t payload_size_;
  size_t plaintext_size_;
  Bytes dummy_key_;  // 32-byte key for the dummy-payload PRF
};

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_BLOCK_CODEC_H_
